#!/usr/bin/env bash
# Tier-1 gate: configure + build + ctest in one command.
#
#   ./ci.sh             # normal mode (warnings allowed) + fig9/12/13/16/17 smokes
#   STRICT=1 ./ci.sh    # -Werror: any warning fails the build
#   TSAN=1 ./ci.sh      # ThreadSanitizer build; runs the threaded wasp/net tests
#   ASAN=1 ./ci.sh      # Address+UBSanitizer build; runs the snapshot/memory tests
#   SOAK=1 ./ci.sh      # default lane + the full fig17 chaos/soak run (longer)
#   BUILD_DIR=out ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

WERROR=OFF
if [[ "${STRICT:-0}" == "1" ]]; then
  WERROR=ON
fi

# Counts the gtest cases a binary would run (indented lines of --gtest_list_tests
# are cases; unindented ones are suites), so the per-lane summary makes a shrunk
# lane visible in the log.
count_gtests() {
  "$1" --gtest_list_tests 2>/dev/null | grep -c '^  ' || true
}

if [[ "${TSAN:-0}" == "1" ]]; then
  # ThreadSanitizer gate for the concurrent invocation engine (lock-free
  # shell fast path: lane caches + tagged Treiber stacks, cleaner crew,
  # executor, governance layer).  test_wasp_concurrency carries the PR 7
  # stress suite — the mixed-op conservation stress and the Treiber-stack
  # ABA/conservation regressions run under TSan here.  Separate build dir:
  # TSan objects don't mix.
  BUILD_DIR="${BUILD_DIR:-build-tsan}"
  TSAN_TESTS=(test_wasp test_wasp_concurrency test_snapshot_engine test_governance
              test_net test_http_server_concurrency test_fault_injection test_recovery
              test_listener)
  cmake -B "$BUILD_DIR" -S . -DVIRTINES_WERROR="$WERROR" \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target "${TSAN_TESTS[@]}"
  total=0
  for t in "${TSAN_TESTS[@]}"; do
    (cd "$BUILD_DIR" && "./$t")
    total=$((total + $(count_gtests "$BUILD_DIR/$t")))
  done
  echo "[ci] tsan lane: ${#TSAN_TESTS[@]} binaries, ${total} gtest cases"
  exit 0
fi

if [[ "${ASAN:-0}" == "1" ]]; then
  # Address+UBSan gate for the memory-heavy paths: COW extent buffers and
  # chains, write-privatization bitmaps, snapshot capture/restore, pool
  # residency accounting.  Separate build dir: sanitizer objects don't mix.
  BUILD_DIR="${BUILD_DIR:-build-asan}"
  ASAN_TESTS=(test_snapshot_engine test_wasp test_wasp_concurrency test_governance
              test_cpu test_isa test_fault_injection test_recovery test_listener)
  cmake -B "$BUILD_DIR" -S . -DVIRTINES_WERROR="$WERROR" \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target "${ASAN_TESTS[@]}"
  total=0
  for t in "${ASAN_TESTS[@]}"; do
    (cd "$BUILD_DIR" && "./$t")
    total=$((total + $(count_gtests "$BUILD_DIR/$t")))
  done
  echo "[ci] asan lane: ${#ASAN_TESTS[@]} binaries, ${total} gtest cases"
  exit 0
fi

BUILD_DIR="${BUILD_DIR:-build}"
cmake -B "$BUILD_DIR" -S . -DVIRTINES_WERROR="$WERROR"
cmake --build "$BUILD_DIR" -j"$(nproc)"
(cd "$BUILD_DIR" && ctest --output-on-failure -j"$(nproc)")
# Multicore throughput + lock-free acquire smoke, swept to 16 lanes: fails
# (non-zero) if pooled-async scaling drops below the 4x-at-8-threads floor,
# if fewer than 95% of steady-state acquires are served lock-free (lane
# cache + Treiber free-list), or if acquire p99 at 16 lanes grows past
# max(2x the 1-lane p99, the scheduler-noise floor) — the lock-free fast
# path cannot silently regress back onto the shard mutex.
(cd "$BUILD_DIR" && ./fig9_multicore_scaling --quick)
# Delta-restore + COW-density smoke: fails (non-zero) if affine warm snapshot
# restore cost ever scales with image size again (16 MB vs 64 KB image at a
# fixed working set must stay under 1.5x), or if 64 parked COW shells of one
# 16 MB generation ever cost 2x the 1-shell resident baseline (shared extents
# must keep fleet residency O(image + working sets)).
(cd "$BUILD_DIR" && ./fig12_image_size --quick)
# Concurrent-serving smoke: a small 2-lane run of the executor-backed HTTP
# server in all three modes, then a real-socket sweep through the epoll
# listener; fails (non-zero) on any wrong response, admission-counter
# mismatch, or if HTTP keep-alive stops paying (snapshot-mode socket RPS at
# 8 requests/connection must beat connection-per-request).
(cd "$BUILD_DIR" && ./fig13_http_server --quick)
# Governance smoke: the fig16 gates on a shortened trace — per-key quota
# bounds the interactive key's p99 queue wait within 2x of isolation at
# <10% aggregate RPS cost, COW extents keep 64 keys warm (>10x the
# full-copy capacity) under the same budget with zero evictions through a
# recapture/retire loop, and three-tier key_quota_overrides order admission
# monotonically (premium > standard > free) under one identical flood.
(cd "$BUILD_DIR" && ./fig16_multitenant --quick)
# Chaos smoke: fig17's containment/storm/soak/recovery gates on shortened
# runs — every injected FaultKind classifies and quarantines (no faulted
# shell is ever re-acquired affine, the quarantine ledger balances), a fault
# storm on one key keeps the co-tenant's p99 within 2x of fault-free, a
# paced soak leaves zero gauge drift and zero resident bytes after
# retirement, and the phase-4 recovery run gates the circuit breaker's
# goodput at >= 1.5x the breaker-off run under the same 33% storm (with
# retry-exactly-once accounting conserved at every observation).
(cd "$BUILD_DIR" && ./fig17_chaos --quick)
# SOAK=1: the full chaos + wall-clock soak run (minutes, not seconds) —
# same gates, more rounds, real pacing — plus a wall-clock-paced keep-alive
# soak of the socket front end in every serve mode.
if [[ "${SOAK:-0}" == "1" ]]; then
  (cd "$BUILD_DIR" && ./fig17_chaos --soak)
  (cd "$BUILD_DIR" && ./fig13_http_server --soak)
fi
# Per-lane coverage summary: the ctest suite count plus per-binary gtest
# case totals, so a lane silently losing tests shows up in the log.
suites=$(cd "$BUILD_DIR" && ctest -N | tail -n1 | tr -dc '0-9')
cases=0
for t in "$BUILD_DIR"/test_*; do
  [[ -x "$t" ]] || continue
  cases=$((cases + $(count_gtests "$t")))
done
echo "[ci] default lane: ${suites} ctest suites, ${cases} gtest cases, 5 bench smokes"
