#!/usr/bin/env bash
# Tier-1 gate: configure + build + ctest in one command.
#
#   ./ci.sh             # normal mode (warnings allowed) + fig9/fig12/fig13 smokes
#   STRICT=1 ./ci.sh    # -Werror: any warning fails the build
#   TSAN=1 ./ci.sh      # ThreadSanitizer build; runs the threaded wasp/net tests
#   BUILD_DIR=out ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

WERROR=OFF
if [[ "${STRICT:-0}" == "1" ]]; then
  WERROR=ON
fi

if [[ "${TSAN:-0}" == "1" ]]; then
  # ThreadSanitizer gate for the concurrent invocation engine (sharded pool,
  # cleaner crew, executor).  Separate build dir: TSan objects don't mix.
  BUILD_DIR="${BUILD_DIR:-build-tsan}"
  cmake -B "$BUILD_DIR" -S . -DVIRTINES_WERROR="$WERROR" \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build "$BUILD_DIR" -j"$(nproc)" \
    --target test_wasp test_wasp_concurrency test_snapshot_engine test_net \
    test_http_server_concurrency
  (cd "$BUILD_DIR" && ./test_wasp && ./test_wasp_concurrency && \
   ./test_snapshot_engine && ./test_net && ./test_http_server_concurrency)
  exit 0
fi

BUILD_DIR="${BUILD_DIR:-build}"
cmake -B "$BUILD_DIR" -S . -DVIRTINES_WERROR="$WERROR"
cmake --build "$BUILD_DIR" -j"$(nproc)"
(cd "$BUILD_DIR" && ctest --output-on-failure -j"$(nproc)")
# Multicore throughput smoke: fails (non-zero) if pooled-async scaling ever
# drops below the 4x-at-8-threads floor, so the concurrent path cannot rot.
(cd "$BUILD_DIR" && ./fig9_multicore_scaling --quick)
# Delta-restore smoke: fails (non-zero) if affine warm snapshot restore cost
# ever scales with image size again (16 MB vs 64 KB image at a fixed working
# set must stay under 1.5x).
(cd "$BUILD_DIR" && ./fig12_image_size --quick)
# Concurrent-serving smoke: a small 2-lane run of the executor-backed HTTP
# server in all three modes; fails (non-zero) on any wrong response or
# admission-counter mismatch.
(cd "$BUILD_DIR" && ./fig13_http_server --quick)
