#!/usr/bin/env bash
# Tier-1 gate: configure + build + ctest in one command.
#
#   ./ci.sh             # normal mode (warnings allowed)
#   STRICT=1 ./ci.sh    # -Werror: any warning fails the build
#   BUILD_DIR=out ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build}"
WERROR=OFF
if [[ "${STRICT:-0}" == "1" ]]; then
  WERROR=ON
fi

cmake -B "$BUILD_DIR" -S . -DVIRTINES_WERROR="$WERROR"
cmake --build "$BUILD_DIR" -j"$(nproc)"
(cd "$BUILD_DIR" && ctest --output-on-failure -j"$(nproc)")
