// vcc CLI driver: compiles a virtine C source file and emits a generated C++
// header with embedded images + invocation specs (the host-side stubs the
// paper's LLVM pass injects at call sites).
//
// Usage: vcc <input.vc> [-o out.h] [--env real16|prot32|long64] [--asm]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/vcc/vcc.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: vcc <input.vc> [-o out.h] [--env real16|prot32|long64] [--asm]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  std::string env_name = "long64";
  bool dump_asm = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--env" && i + 1 < argc) {
      env_name = argv[++i];
    } else if (arg == "--asm") {
      dump_asm = true;
    } else if (!arg.empty() && arg[0] != '-') {
      input = arg;
    } else {
      return Usage();
    }
  }
  if (input.empty()) {
    return Usage();
  }
  vrt::Env env = vrt::Env::kLong64;
  if (env_name == "real16") {
    env = vrt::Env::kReal16;
  } else if (env_name == "prot32") {
    env = vrt::Env::kProt32;
  } else if (env_name != "long64") {
    return Usage();
  }

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "vcc: cannot open %s\n", input.c_str());
    return 1;
  }
  std::stringstream source;
  source << in.rdbuf();

  auto virtines = vcc::CompileVirtines(source.str(), env);
  if (!virtines.ok()) {
    std::fprintf(stderr, "vcc: %s\n", virtines.status().ToString().c_str());
    return 1;
  }
  if (dump_asm) {
    for (const auto& cv : *virtines) {
      std::printf(";;; virtine %s (%d args, image %zu bytes)\n%s\n", cv.name.c_str(),
                  cv.num_args, cv.image.bytes.size(), cv.asm_text.c_str());
    }
    return 0;
  }
  const std::string header = vcc::EmitCppHeader(*virtines, "VCC_GENERATED_H_");
  if (output.empty()) {
    std::fputs(header.c_str(), stdout);
  } else {
    std::ofstream out(output);
    out << header;
    std::fprintf(stderr, "vcc: wrote %s (%zu virtines)\n", output.c_str(), virtines->size());
  }
  return 0;
}
