// Lexer + recursive-descent parser for the vcc C dialect.
#include <cctype>
#include <unordered_set>

#include "src/vcc/ast.h"

namespace vcc {
namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

}  // namespace

vbase::Result<std::vector<Token>> Lex(const std::string& src) {
  std::vector<Token> out;
  int line = 1;
  size_t i = 0;
  const size_t n = src.size();
  auto err = [&](const std::string& msg) {
    return vbase::InvalidArgument("lex error line " + std::to_string(line) + ": " + msg);
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          ++line;
        }
        ++i;
      }
      if (i + 1 >= n) {
        return err("unterminated block comment");
      }
      i += 2;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(src[j])) {
        ++j;
      }
      out.push_back({Tok::kIdent, src.substr(i, j - i), 0, line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      int base = 10;
      if (c == '0' && j + 1 < n && (src[j + 1] == 'x' || src[j + 1] == 'X')) {
        base = 16;
        j += 2;
      }
      int64_t v = 0;
      const size_t digits_start = j;
      while (j < n && std::isalnum(static_cast<unsigned char>(src[j]))) {
        const char d = static_cast<char>(std::tolower(static_cast<unsigned char>(src[j])));
        int dv;
        if (d >= '0' && d <= '9') {
          dv = d - '0';
        } else if (base == 16 && d >= 'a' && d <= 'f') {
          dv = d - 'a' + 10;
        } else {
          return err("bad digit in number");
        }
        v = v * base + dv;
        ++j;
      }
      if (j == digits_start) {
        return err("bad number");
      }
      out.push_back({Tok::kIntLit, src.substr(i, j - i), v, line});
      i = j;
      continue;
    }
    if (c == '\'') {
      ++i;
      if (i >= n) {
        return err("unterminated char literal");
      }
      int64_t v;
      if (src[i] == '\\') {
        ++i;
        if (i >= n) {
          return err("unterminated char escape");
        }
        switch (src[i]) {
          case 'n': v = '\n'; break;
          case 't': v = '\t'; break;
          case 'r': v = '\r'; break;
          case '0': v = '\0'; break;
          case '\\': v = '\\'; break;
          case '\'': v = '\''; break;
          case '"': v = '"'; break;
          default: return err("bad char escape");
        }
        ++i;
      } else {
        v = static_cast<unsigned char>(src[i]);
        ++i;
      }
      if (i >= n || src[i] != '\'') {
        return err("unterminated char literal");
      }
      ++i;
      out.push_back({Tok::kIntLit, "", v, line});
      continue;
    }
    if (c == '"') {
      ++i;
      std::string s;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < n) {
          ++i;
          switch (src[i]) {
            case 'n': s += '\n'; break;
            case 't': s += '\t'; break;
            case 'r': s += '\r'; break;
            case '0': s += '\0'; break;
            case '\\': s += '\\'; break;
            case '"': s += '"'; break;
            default: return err("bad string escape");
          }
          ++i;
        } else {
          if (src[i] == '\n') {
            ++line;
          }
          s += src[i++];
        }
      }
      if (i >= n) {
        return err("unterminated string literal");
      }
      ++i;
      out.push_back({Tok::kStrLit, std::move(s), 0, line});
      continue;
    }
    // Punctuation: longest match first.
    static const char* kPuncts[] = {
        "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=",
        "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
        "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=", "(", ")",
        "{", "}", "[", "]", ";", ",", "?", ":",
    };
    bool matched = false;
    for (const char* p : kPuncts) {
      const size_t len = std::char_traits<char>::length(p);
      if (src.compare(i, len, p) == 0) {
        out.push_back({Tok::kPunct, p, 0, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      return err(std::string("unexpected character '") + c + "'");
    }
  }
  out.push_back({Tok::kEof, "", 0, line});
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  vbase::Result<Program> Run() {
    Program prog;
    while (!AtEof()) {
      vbase::Status st = ParseTopLevel(&prog);
      if (!st.ok()) {
        return st;
      }
    }
    return prog;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    const size_t at = std::min(pos_ + static_cast<size_t>(ahead), toks_.size() - 1);
    return toks_[at];
  }
  const Token& Next() { return toks_[std::min(pos_++, toks_.size() - 1)]; }
  bool AtEof() const { return Peek().kind == Tok::kEof; }

  bool IsPunct(const char* p, int ahead = 0) const {
    return Peek(ahead).kind == Tok::kPunct && Peek(ahead).text == p;
  }
  bool IsIdent(const char* name, int ahead = 0) const {
    return Peek(ahead).kind == Tok::kIdent && Peek(ahead).text == name;
  }
  bool EatPunct(const char* p) {
    if (IsPunct(p)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool EatIdent(const char* name) {
    if (IsIdent(name)) {
      ++pos_;
      return true;
    }
    return false;
  }

  vbase::Status Err(const std::string& msg) {
    return vbase::InvalidArgument("parse error line " + std::to_string(Peek().line) + ": " +
                                  msg + " (near '" + Peek().text + "')");
  }

  vbase::Status ExpectPunct(const char* p) {
    if (!EatPunct(p)) {
      return Err(std::string("expected '") + p + "'");
    }
    return vbase::Status::Ok();
  }

  bool PeekType() const {
    return IsIdent("int") || IsIdent("char") || IsIdent("void");
  }

  // type := ("int" | "char" | "void") "*"*
  vbase::Result<Type> ParseType() {
    Type t;
    if (EatIdent("int")) {
      t.base = Type::Base::kInt;
    } else if (EatIdent("char")) {
      t.base = Type::Base::kChar;
    } else if (EatIdent("void")) {
      t.base = Type::Base::kVoid;
    } else {
      return Err("expected type");
    }
    while (EatPunct("*")) {
      ++t.ptr;
    }
    return t;
  }

  // Constant folding for global initializers and virtine_config masks.
  vbase::Result<int64_t> FoldConst(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return e.ival;
      case ExprKind::kUnary: {
        auto v = FoldConst(*e.a);
        if (!v.ok()) {
          return v;
        }
        if (e.op == "-") return -*v;
        if (e.op == "~") return ~*v;
        if (e.op == "!") return static_cast<int64_t>(*v == 0);
        return Err("non-constant unary");
      }
      case ExprKind::kBinary: {
        auto l = FoldConst(*e.a);
        auto r = FoldConst(*e.b);
        if (!l.ok()) return l;
        if (!r.ok()) return r;
        const int64_t a = *l;
        const int64_t b = *r;
        if (e.op == "+") return a + b;
        if (e.op == "-") return a - b;
        if (e.op == "*") return a * b;
        if (e.op == "/") return b == 0 ? vbase::Result<int64_t>(Err("div by zero")) : a / b;
        if (e.op == "%") return b == 0 ? vbase::Result<int64_t>(Err("mod by zero")) : a % b;
        if (e.op == "<<") return a << (b & 63);
        if (e.op == ">>") return a >> (b & 63);
        if (e.op == "&") return a & b;
        if (e.op == "|") return a | b;
        if (e.op == "^") return a ^ b;
        return Err("non-constant binary");
      }
      default:
        return Err("expression is not a compile-time constant");
    }
  }

  vbase::Status ParseTopLevel(Program* prog) {
    Annotation anno = Annotation::kNone;
    uint64_t config_mask = 0;
    if (EatIdent("virtine")) {
      anno = Annotation::kVirtine;
    } else if (EatIdent("virtine_permissive")) {
      anno = Annotation::kVirtinePermissive;
    } else if (EatIdent("virtine_config")) {
      anno = Annotation::kVirtineConfig;
      VB_RETURN_IF_ERROR(ExpectPunct("("));
      auto mask_expr = ParseExpr();
      if (!mask_expr.ok()) {
        return mask_expr.status();
      }
      auto mask = FoldConst(**mask_expr);
      if (!mask.ok()) {
        return mask.status();
      }
      config_mask = static_cast<uint64_t>(*mask);
      VB_RETURN_IF_ERROR(ExpectPunct(")"));
    }

    auto type = ParseType();
    if (!type.ok()) {
      return type.status();
    }
    if (Peek().kind != Tok::kIdent) {
      return Err("expected declarator name");
    }
    const int line = Peek().line;
    std::string name = Next().text;

    if (IsPunct("(")) {
      // Function definition.
      Next();
      Function fn;
      fn.name = std::move(name);
      fn.ret = *type;
      fn.anno = anno;
      fn.config_mask = config_mask;
      fn.line = line;
      if (!IsPunct(")")) {
        while (true) {
          if (EatIdent("void") && IsPunct(")")) {
            break;
          }
          auto pt = ParseType();
          if (!pt.ok()) {
            return pt.status();
          }
          if (Peek().kind != Tok::kIdent) {
            return Err("expected parameter name");
          }
          fn.params.push_back({*pt, Next().text});
          if (!EatPunct(",")) {
            break;
          }
        }
      }
      VB_RETURN_IF_ERROR(ExpectPunct(")"));
      auto body = ParseBlock();
      if (!body.ok()) {
        return body.status();
      }
      fn.body = std::move(*body);
      prog->functions.push_back(std::move(fn));
      return vbase::Status::Ok();
    }

    // Global variable.
    if (anno != Annotation::kNone) {
      return Err("virtine annotations apply to functions only");
    }
    Global g;
    g.type = *type;
    g.name = std::move(name);
    g.line = line;
    if (EatPunct("[")) {
      auto count_expr = ParseExpr();
      if (!count_expr.ok()) {
        return count_expr.status();
      }
      auto count = FoldConst(**count_expr);
      if (!count.ok()) {
        return count.status();
      }
      g.array_count = *count;
      VB_RETURN_IF_ERROR(ExpectPunct("]"));
    }
    if (EatPunct("=")) {
      if (Peek().kind == Tok::kStrLit) {
        g.init_string = Next().text;
        g.has_string_init = true;
      } else if (EatPunct("{")) {
        while (!IsPunct("}")) {
          auto e = ParseAssign();
          if (!e.ok()) {
            return e.status();
          }
          auto v = FoldConst(**e);
          if (!v.ok()) {
            return v.status();
          }
          g.init_values.push_back(*v);
          if (!EatPunct(",")) {
            break;
          }
        }
        VB_RETURN_IF_ERROR(ExpectPunct("}"));
      } else {
        auto e = ParseAssign();
        if (!e.ok()) {
          return e.status();
        }
        auto v = FoldConst(**e);
        if (!v.ok()) {
          return v.status();
        }
        g.init_values.push_back(*v);
      }
    }
    VB_RETURN_IF_ERROR(ExpectPunct(";"));
    prog->globals.push_back(std::move(g));
    return vbase::Status::Ok();
  }

  using ExprP = std::unique_ptr<Expr>;
  using StmtP = std::unique_ptr<Stmt>;

  static ExprP MakeExpr(ExprKind kind, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = line;
    return e;
  }

  // --- Statements -------------------------------------------------------

  vbase::Result<StmtP> ParseBlock() {
    VB_RETURN_IF_ERROR(ExpectPunct("{"));
    auto block = std::make_unique<Stmt>();
    block->kind = StmtKind::kBlock;
    block->line = Peek().line;
    while (!IsPunct("}")) {
      if (AtEof()) {
        return Err("unterminated block");
      }
      auto s = ParseStmt();
      if (!s.ok()) {
        return s.status();
      }
      block->body.push_back(std::move(*s));
    }
    Next();  // '}'
    return block;
  }

  vbase::Result<StmtP> ParseStmt() {
    const int line = Peek().line;
    if (IsPunct("{")) {
      return ParseBlock();
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->line = line;
    if (EatIdent("if")) {
      stmt->kind = StmtKind::kIf;
      VB_RETURN_IF_ERROR(ExpectPunct("("));
      auto cond = ParseExpr();
      if (!cond.ok()) return cond.status();
      stmt->e = std::move(*cond);
      VB_RETURN_IF_ERROR(ExpectPunct(")"));
      auto then = ParseStmt();
      if (!then.ok()) return then.status();
      stmt->s1 = std::move(*then);
      if (EatIdent("else")) {
        auto els = ParseStmt();
        if (!els.ok()) return els.status();
        stmt->s2 = std::move(*els);
      }
      return stmt;
    }
    if (EatIdent("while")) {
      stmt->kind = StmtKind::kWhile;
      VB_RETURN_IF_ERROR(ExpectPunct("("));
      auto cond = ParseExpr();
      if (!cond.ok()) return cond.status();
      stmt->e = std::move(*cond);
      VB_RETURN_IF_ERROR(ExpectPunct(")"));
      auto body = ParseStmt();
      if (!body.ok()) return body.status();
      stmt->s1 = std::move(*body);
      return stmt;
    }
    if (EatIdent("for")) {
      stmt->kind = StmtKind::kFor;
      VB_RETURN_IF_ERROR(ExpectPunct("("));
      if (!IsPunct(";")) {
        auto init = ParseSimpleStmt();
        if (!init.ok()) return init.status();
        stmt->s1 = std::move(*init);
      }
      VB_RETURN_IF_ERROR(ExpectPunct(";"));
      if (!IsPunct(";")) {
        auto cond = ParseExpr();
        if (!cond.ok()) return cond.status();
        stmt->e = std::move(*cond);
      }
      VB_RETURN_IF_ERROR(ExpectPunct(";"));
      if (!IsPunct(")")) {
        auto post = ParseExpr();
        if (!post.ok()) return post.status();
        stmt->e3 = std::move(*post);
      }
      VB_RETURN_IF_ERROR(ExpectPunct(")"));
      auto body = ParseStmt();
      if (!body.ok()) return body.status();
      stmt->s2 = std::move(*body);
      return stmt;
    }
    if (EatIdent("return")) {
      stmt->kind = StmtKind::kReturn;
      if (!IsPunct(";")) {
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        stmt->e = std::move(*e);
      }
      VB_RETURN_IF_ERROR(ExpectPunct(";"));
      return stmt;
    }
    if (EatIdent("break")) {
      stmt->kind = StmtKind::kBreak;
      VB_RETURN_IF_ERROR(ExpectPunct(";"));
      return stmt;
    }
    if (EatIdent("continue")) {
      stmt->kind = StmtKind::kContinue;
      VB_RETURN_IF_ERROR(ExpectPunct(";"));
      return stmt;
    }
    auto simple = ParseSimpleStmt();
    if (!simple.ok()) {
      return simple.status();
    }
    VB_RETURN_IF_ERROR(ExpectPunct(";"));
    return std::move(*simple);
  }

  // A declaration or expression statement without the trailing ';' (shared
  // with for-init).
  vbase::Result<StmtP> ParseSimpleStmt() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = Peek().line;
    if (PeekType()) {
      stmt->kind = StmtKind::kDecl;
      auto type = ParseType();
      if (!type.ok()) return type.status();
      stmt->type = *type;
      if (Peek().kind != Tok::kIdent) {
        return Err("expected variable name");
      }
      stmt->name = Next().text;
      if (EatPunct("[")) {
        auto count_expr = ParseExpr();
        if (!count_expr.ok()) return count_expr.status();
        auto count = FoldConst(**count_expr);
        if (!count.ok()) return count.status();
        stmt->array_count = *count;
        VB_RETURN_IF_ERROR(ExpectPunct("]"));
      }
      if (EatPunct("=")) {
        auto init = ParseAssign();
        if (!init.ok()) return init.status();
        stmt->init = std::move(*init);
      }
      return stmt;
    }
    stmt->kind = StmtKind::kExpr;
    auto e = ParseExpr();
    if (!e.ok()) return e.status();
    stmt->e = std::move(*e);
    return stmt;
  }

  // --- Expressions (precedence climbing) -----------------------------------

  vbase::Result<ExprP> ParseExpr() { return ParseAssign(); }

  vbase::Result<ExprP> ParseAssign() {
    auto lhs = ParseCond();
    if (!lhs.ok()) {
      return lhs;
    }
    static const std::unordered_set<std::string> kAssignOps = {
        "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
    if (Peek().kind == Tok::kPunct && kAssignOps.count(Peek().text) != 0) {
      const int line = Peek().line;
      std::string op = Next().text;
      auto rhs = ParseAssign();
      if (!rhs.ok()) {
        return rhs;
      }
      auto e = MakeExpr(ExprKind::kAssign, line);
      e->op = std::move(op);
      e->a = std::move(*lhs);
      e->b = std::move(*rhs);
      return e;
    }
    return lhs;
  }

  vbase::Result<ExprP> ParseCond() {
    auto cond = ParseBinary(0);
    if (!cond.ok()) {
      return cond;
    }
    if (IsPunct("?")) {
      const int line = Next().line;
      auto then = ParseAssign();
      if (!then.ok()) return then;
      VB_RETURN_IF_ERROR(ExpectPunct(":"));
      auto els = ParseCond();
      if (!els.ok()) return els;
      auto e = MakeExpr(ExprKind::kCond, line);
      e->a = std::move(*cond);
      e->b = std::move(*then);
      e->c = std::move(*els);
      return e;
    }
    return cond;
  }

  static int Precedence(const std::string& op) {
    if (op == "||") return 1;
    if (op == "&&") return 2;
    if (op == "|") return 3;
    if (op == "^") return 4;
    if (op == "&") return 5;
    if (op == "==" || op == "!=") return 6;
    if (op == "<" || op == "<=" || op == ">" || op == ">=") return 7;
    if (op == "<<" || op == ">>") return 8;
    if (op == "+" || op == "-") return 9;
    if (op == "*" || op == "/" || op == "%") return 10;
    return -1;
  }

  vbase::Result<ExprP> ParseBinary(int min_prec) {
    auto lhs = ParseUnary();
    if (!lhs.ok()) {
      return lhs;
    }
    while (Peek().kind == Tok::kPunct) {
      const int prec = Precedence(Peek().text);
      if (prec < 0 || prec < min_prec) {
        break;
      }
      const int line = Peek().line;
      std::string op = Next().text;
      auto rhs = ParseBinary(prec + 1);
      if (!rhs.ok()) {
        return rhs;
      }
      auto e = MakeExpr(ExprKind::kBinary, line);
      e->op = std::move(op);
      e->a = std::move(*lhs);
      e->b = std::move(*rhs);
      lhs = vbase::Result<ExprP>(std::move(e));
    }
    return lhs;
  }

  vbase::Result<ExprP> ParseUnary() {
    const int line = Peek().line;
    if (EatPunct("-")) {
      auto a = ParseUnary();
      if (!a.ok()) return a;
      auto e = MakeExpr(ExprKind::kUnary, line);
      e->op = "-";
      e->a = std::move(*a);
      return e;
    }
    if (EatPunct("!")) {
      auto a = ParseUnary();
      if (!a.ok()) return a;
      auto e = MakeExpr(ExprKind::kUnary, line);
      e->op = "!";
      e->a = std::move(*a);
      return e;
    }
    if (EatPunct("~")) {
      auto a = ParseUnary();
      if (!a.ok()) return a;
      auto e = MakeExpr(ExprKind::kUnary, line);
      e->op = "~";
      e->a = std::move(*a);
      return e;
    }
    if (EatPunct("*")) {
      auto a = ParseUnary();
      if (!a.ok()) return a;
      auto e = MakeExpr(ExprKind::kDeref, line);
      e->a = std::move(*a);
      return e;
    }
    if (EatPunct("&")) {
      auto a = ParseUnary();
      if (!a.ok()) return a;
      auto e = MakeExpr(ExprKind::kAddr, line);
      e->a = std::move(*a);
      return e;
    }
    if (EatPunct("++")) {
      auto a = ParseUnary();
      if (!a.ok()) return a;
      auto e = MakeExpr(ExprKind::kIncDec, line);
      e->op = "++";
      e->ival = 1;  // prefix
      e->a = std::move(*a);
      return e;
    }
    if (EatPunct("--")) {
      auto a = ParseUnary();
      if (!a.ok()) return a;
      auto e = MakeExpr(ExprKind::kIncDec, line);
      e->op = "--";
      e->ival = 1;
      e->a = std::move(*a);
      return e;
    }
    if (IsIdent("sizeof")) {
      Next();
      VB_RETURN_IF_ERROR(ExpectPunct("("));
      auto t = ParseType();
      if (!t.ok()) return t.status();
      VB_RETURN_IF_ERROR(ExpectPunct(")"));
      auto e = MakeExpr(ExprKind::kSizeof, line);
      e->type_arg = *t;
      return e;
    }
    return ParsePostfix();
  }

  vbase::Result<ExprP> ParsePostfix() {
    auto base = ParsePrimary();
    if (!base.ok()) {
      return base;
    }
    while (true) {
      const int line = Peek().line;
      if (EatPunct("[")) {
        auto idx = ParseExpr();
        if (!idx.ok()) return idx;
        VB_RETURN_IF_ERROR(ExpectPunct("]"));
        auto e = MakeExpr(ExprKind::kIndex, line);
        e->a = std::move(*base);
        e->b = std::move(*idx);
        base = vbase::Result<ExprP>(std::move(e));
        continue;
      }
      if (IsPunct("++") || IsPunct("--")) {
        auto e = MakeExpr(ExprKind::kIncDec, line);
        e->op = Next().text;
        e->ival = 0;  // postfix
        e->a = std::move(*base);
        base = vbase::Result<ExprP>(std::move(e));
        continue;
      }
      break;
    }
    return base;
  }

  vbase::Result<ExprP> ParsePrimary() {
    const Token& t = Peek();
    const int line = t.line;
    if (t.kind == Tok::kIntLit) {
      auto e = MakeExpr(ExprKind::kIntLit, line);
      e->ival = Next().value;
      return e;
    }
    if (t.kind == Tok::kStrLit) {
      auto e = MakeExpr(ExprKind::kStrLit, line);
      e->name = Next().text;
      return e;
    }
    if (EatPunct("(")) {
      auto e = ParseExpr();
      if (!e.ok()) return e;
      VB_RETURN_IF_ERROR(ExpectPunct(")"));
      return e;
    }
    if (t.kind == Tok::kIdent) {
      std::string name = Next().text;
      if (EatPunct("(")) {
        auto e = MakeExpr(ExprKind::kCall, line);
        e->name = std::move(name);
        if (!IsPunct(")")) {
          while (true) {
            auto arg = ParseAssign();
            if (!arg.ok()) return arg;
            e->args.push_back(std::move(*arg));
            if (!EatPunct(",")) {
              break;
            }
          }
        }
        VB_RETURN_IF_ERROR(ExpectPunct(")"));
        return e;
      }
      auto e = MakeExpr(ExprKind::kVar, line);
      e->name = std::move(name);
      return e;
    }
    return Err("expected expression");
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

vbase::Result<Program> Parse(const std::string& source) {
  auto toks = Lex(source);
  if (!toks.ok()) {
    return toks.status();
  }
  Parser parser(std::move(*toks));
  return parser.Run();
}

}  // namespace vcc
