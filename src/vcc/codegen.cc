// VBC code generation for the vcc dialect.
//
// A deliberately simple tree-walking backend: expression results live in r0,
// binary operands are staged through the guest stack (left operand pushed,
// right in r2), and every variable access goes through an address so char
// accesses get byte-accurate loads/stores.  Calling convention (shared with
// the vrt CRT): arguments pushed right-to-left as machine words, caller
// cleans, result in r0, fp-based frames.
//
// On top of that baseline the generator applies a few local fast paths that
// matter for tight guest loops: scalar locals/params load and store directly
// through their fp-relative slot, literal and scalar right operands skip the
// stack staging, and comparisons in branch position fuse into cmp + jcc
// instead of materializing a boolean.
#include <array>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "src/base/log.h"
#include "src/vcc/ast.h"

namespace vcc {
namespace {

bool IsBuiltin(const std::string& name) {
  return name == "__hc0" || name == "__hc1" || name == "__hc2" || name == "__hc3" ||
         name == "__rdtsc" || name == "__hlt";
}

// Collects names of functions called within an expression tree.
void CollectCalls(const Expr* e, std::set<std::string>* out) {
  if (e == nullptr) {
    return;
  }
  if (e->kind == ExprKind::kCall && !IsBuiltin(e->name)) {
    out->insert(e->name);
  }
  CollectCalls(e->a.get(), out);
  CollectCalls(e->b.get(), out);
  CollectCalls(e->c.get(), out);
  for (const auto& arg : e->args) {
    CollectCalls(arg.get(), out);
  }
}

void CollectCalls(const Stmt* s, std::set<std::string>* out) {
  if (s == nullptr) {
    return;
  }
  CollectCalls(s->e.get(), out);
  CollectCalls(s->e2.get(), out);
  CollectCalls(s->e3.get(), out);
  CollectCalls(s->init.get(), out);
  CollectCalls(s->s1.get(), out);
  CollectCalls(s->s2.get(), out);
  CollectCalls(s->s3.get(), out);
  for (const auto& sub : s->body) {
    CollectCalls(sub.get(), out);
  }
}

// Collects identifier references (for global inclusion).
void CollectVars(const Expr* e, std::set<std::string>* out) {
  if (e == nullptr) {
    return;
  }
  if (e->kind == ExprKind::kVar) {
    out->insert(e->name);
  }
  CollectVars(e->a.get(), out);
  CollectVars(e->b.get(), out);
  CollectVars(e->c.get(), out);
  for (const auto& arg : e->args) {
    CollectVars(arg.get(), out);
  }
}

void CollectVars(const Stmt* s, std::set<std::string>* out) {
  if (s == nullptr) {
    return;
  }
  CollectVars(s->e.get(), out);
  CollectVars(s->e2.get(), out);
  CollectVars(s->e3.get(), out);
  CollectVars(s->init.get(), out);
  CollectVars(s->s1.get(), out);
  CollectVars(s->s2.get(), out);
  CollectVars(s->s3.get(), out);
  for (const auto& sub : s->body) {
    CollectVars(sub.get(), out);
  }
}

class CodeGen {
 public:
  CodeGen(const Program& prog, int word_bytes) : prog_(prog), w_(word_bytes) {}

  vbase::Result<std::string> Run(const std::string& entry) {
    const Function* entry_fn = prog_.FindFunction(entry);
    if (entry_fn == nullptr) {
      return vbase::NotFound("entry function not found: " + entry);
    }
    // --- Call-graph cut: functions reachable from the entry -----------------
    std::vector<const Function*> reachable;
    std::set<std::string> visited;
    std::vector<const Function*> work{entry_fn};
    visited.insert(entry_fn->name);
    std::set<std::string> used_names;
    while (!work.empty()) {
      const Function* fn = work.back();
      work.pop_back();
      reachable.push_back(fn);
      std::set<std::string> calls;
      CollectCalls(fn->body.get(), &calls);
      CollectVars(fn->body.get(), &used_names);
      for (const std::string& callee : calls) {
        if (visited.count(callee) != 0) {
          continue;
        }
        const Function* f = prog_.FindFunction(callee);
        if (f == nullptr) {
          return vbase::NotFound("undefined function '" + callee + "' called from '" +
                                 fn->name + "'");
        }
        visited.insert(callee);
        work.push_back(f);
      }
    }

    // --- Code -----------------------------------------------------------------
    for (const Function* fn : reachable) {
      vbase::Status st = GenFunction(*fn);
      if (!st.ok()) {
        return st;
      }
    }
    if (entry != "virtine_main") {
      os_ << "virtine_main:\n  jmp " << entry << "\n";
    }

    // --- Data: referenced globals + string literals ----------------------------
    for (const Global& g : prog_.globals) {
      if (used_names.count(g.name) == 0) {
        continue;
      }
      EmitGlobal(g);
    }
    os_ << strings_.str();
    return os_.str();
  }

 private:
  struct VarInfo {
    Type type;
    bool is_array = false;
    int64_t array_count = 0;
    bool is_global = false;
    bool is_param = false;
    int64_t fp_offset = 0;  // locals: [fp - fp_offset]
    int param_index = 0;
  };

  const char* WordDirective() const { return w_ == 8 ? ".quad" : w_ == 4 ? ".dword" : ".word"; }

  int SizeOf(const Type& t) const {
    if (t.IsPtr()) {
      return w_;
    }
    switch (t.base) {
      case Type::Base::kChar:
        return 1;
      case Type::Base::kInt:
        return w_;
      case Type::Base::kVoid:
        return 1;  // void* arithmetic treats elements as bytes
    }
    return w_;
  }

  int ElemSize(const Type& ptr) const { return SizeOf(ptr.Pointee()); }

  int64_t Align(int64_t n) const { return (n + w_ - 1) & ~static_cast<int64_t>(w_ - 1); }

  vbase::Status Err(int line, const std::string& msg) {
    return vbase::InvalidArgument("codegen error line " + std::to_string(line) + ": " + msg);
  }

  std::string NewLabel() { return ".L" + std::to_string(label_counter_++); }

  void Emit(const std::string& text) { os_ << "  " << text << "\n"; }

  // --- Scopes ------------------------------------------------------------------

  void PushScope() { scopes_.emplace_back(); }
  void PopScope() { scopes_.pop_back(); }

  const VarInfo* Lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        return &found->second;
      }
    }
    return nullptr;
  }

  // --- Direct-slot fast paths ---------------------------------------------

  // A scalar (non-array) local or parameter lives in one fp-relative slot
  // and can be loaded/stored without staging its address through r0.
  // Returns the memory operand ("[fp-16]" / "[fp+24]") or empty when the
  // expression needs general address generation (globals, arrays,
  // non-variables).
  std::string DirectSlot(const Expr& e, Type* out) const {
    if (e.kind != ExprKind::kVar) {
      return "";
    }
    const VarInfo* v = Lookup(e.name);
    if (v == nullptr || v->is_array) {
      return "";
    }
    *out = v->type;
    if (v->is_param) {
      return "[fp+" + std::to_string(2 * w_ + v->param_index * w_) + "]";
    }
    return "[fp-" + std::to_string(v->fp_offset) + "]";
  }

  const char* LoadOp(const Type& t) const {
    return (!t.IsPtr() && t.base == Type::Base::kChar) ? "ld8" : "ldw";
  }

  const char* StoreOp(const Type& t) const {
    return (!t.IsPtr() && t.base == Type::Base::kChar) ? "st8" : "stw";
  }

  // Emits the right operand of a binary form into r2 without the push/pop
  // staging when it is an integer literal or a scalar variable (the
  // overwhelmingly common shapes in loop conditions and index math).
  // Returns false when the general stack-staged path must run.
  bool TryRhsInR2(const Expr& e, Type* out) {
    if (e.kind == ExprKind::kIntLit) {
      Emit("mov r2, " + std::to_string(e.ival));
      *out = Type{Type::Base::kInt, 0};
      return true;
    }
    Type t;
    const std::string slot = DirectSlot(e, &t);
    if (slot.empty()) {
      return false;
    }
    Emit(std::string(LoadOp(t)) + " r2, " + slot);
    *out = t;
    return true;
  }

  // --- Frame size pre-pass ------------------------------------------------------

  int64_t FrameBytes(const Stmt* s) const {
    if (s == nullptr) {
      return 0;
    }
    int64_t total = 0;
    if (s->kind == StmtKind::kDecl) {
      if (s->array_count >= 0) {
        total += Align(s->array_count * SizeOf(s->type));
      } else {
        total += w_;
      }
    }
    total += FrameBytes(s->s1.get()) + FrameBytes(s->s2.get()) + FrameBytes(s->s3.get());
    for (const auto& sub : s->body) {
      total += FrameBytes(sub.get());
    }
    return total;
  }

  // --- Functions ------------------------------------------------------------------

  vbase::Status GenFunction(const Function& fn) {
    cur_fn_ = &fn;
    cur_offset_ = 0;
    scopes_.clear();
    PushScope();
    for (size_t i = 0; i < fn.params.size(); ++i) {
      VarInfo v;
      v.type = fn.params[i].type;
      v.is_param = true;
      v.param_index = static_cast<int>(i);
      scopes_.back()[fn.params[i].name] = v;
    }
    os_ << fn.name << ":\n";
    Emit("push fp");
    Emit("mov fp, sp");
    const int64_t frame = FrameBytes(fn.body.get());
    if (frame > 0) {
      Emit("sub sp, " + std::to_string(frame));
    }
    VB_RETURN_IF_ERROR(GenStmt(*fn.body));
    // Implicit return (value 0) if control falls off the end.
    Emit("mov r0, 0");
    Emit("mov sp, fp");
    Emit("pop fp");
    Emit("ret");
    PopScope();
    return vbase::Status::Ok();
  }

  // --- Statements --------------------------------------------------------------------

  vbase::Status GenStmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock: {
        PushScope();
        for (const auto& sub : s.body) {
          VB_RETURN_IF_ERROR(GenStmt(*sub));
        }
        PopScope();
        return vbase::Status::Ok();
      }
      case StmtKind::kDecl: {
        VarInfo v;
        v.type = s.type;
        if (s.array_count >= 0) {
          v.is_array = true;
          v.array_count = s.array_count;
          cur_offset_ += Align(s.array_count * SizeOf(s.type));
        } else {
          cur_offset_ += w_;
        }
        v.fp_offset = cur_offset_;
        scopes_.back()[s.name] = v;
        if (s.init != nullptr) {
          if (v.is_array) {
            return Err(s.line, "local array initializers are not supported");
          }
          Type vt;
          VB_RETURN_IF_ERROR(GenExpr(*s.init, &vt));
          Emit(std::string(StoreOp(s.type)) + " [fp-" +
               std::to_string(v.fp_offset) + "], r0");
        }
        return vbase::Status::Ok();
      }
      case StmtKind::kIf: {
        const std::string lelse = NewLabel();
        const std::string lend = NewLabel();
        VB_RETURN_IF_ERROR(GenBranch(*s.e, lelse, /*jump_if_true=*/false));
        VB_RETURN_IF_ERROR(GenStmt(*s.s1));
        if (s.s2 != nullptr) {
          Emit("jmp " + lend);
        }
        os_ << lelse << ":\n";
        if (s.s2 != nullptr) {
          VB_RETURN_IF_ERROR(GenStmt(*s.s2));
          os_ << lend << ":\n";
        }
        return vbase::Status::Ok();
      }
      case StmtKind::kWhile: {
        const std::string lhead = NewLabel();
        const std::string lend = NewLabel();
        break_stack_.push_back(lend);
        continue_stack_.push_back(lhead);
        os_ << lhead << ":\n";
        VB_RETURN_IF_ERROR(GenBranch(*s.e, lend, /*jump_if_true=*/false));
        VB_RETURN_IF_ERROR(GenStmt(*s.s1));
        Emit("jmp " + lhead);
        os_ << lend << ":\n";
        break_stack_.pop_back();
        continue_stack_.pop_back();
        return vbase::Status::Ok();
      }
      case StmtKind::kFor: {
        PushScope();
        if (s.s1 != nullptr) {
          VB_RETURN_IF_ERROR(GenStmt(*s.s1));
        }
        const std::string lhead = NewLabel();
        const std::string lpost = NewLabel();
        const std::string lend = NewLabel();
        break_stack_.push_back(lend);
        continue_stack_.push_back(lpost);
        os_ << lhead << ":\n";
        if (s.e != nullptr) {
          VB_RETURN_IF_ERROR(GenBranch(*s.e, lend, /*jump_if_true=*/false));
        }
        VB_RETURN_IF_ERROR(GenStmt(*s.s2));
        os_ << lpost << ":\n";
        if (s.e3 != nullptr) {
          Type t;
          VB_RETURN_IF_ERROR(GenExpr(*s.e3, &t));
        }
        Emit("jmp " + lhead);
        os_ << lend << ":\n";
        break_stack_.pop_back();
        continue_stack_.pop_back();
        PopScope();
        return vbase::Status::Ok();
      }
      case StmtKind::kReturn: {
        if (s.e != nullptr) {
          Type t;
          VB_RETURN_IF_ERROR(GenExpr(*s.e, &t));
        } else {
          Emit("mov r0, 0");
        }
        Emit("mov sp, fp");
        Emit("pop fp");
        Emit("ret");
        return vbase::Status::Ok();
      }
      case StmtKind::kExpr: {
        Type t;
        return GenExpr(*s.e, &t);
      }
      case StmtKind::kBreak:
        if (break_stack_.empty()) {
          return Err(s.line, "break outside loop");
        }
        Emit("jmp " + break_stack_.back());
        return vbase::Status::Ok();
      case StmtKind::kContinue:
        if (continue_stack_.empty()) {
          return Err(s.line, "continue outside loop");
        }
        Emit("jmp " + continue_stack_.back());
        return vbase::Status::Ok();
    }
    return Err(s.line, "unhandled statement");
  }

  // --- Loads/stores ------------------------------------------------------------------

  // r0 = *[r0] typed.
  void EmitLoad(const Type& t) {
    if (!t.IsPtr() && t.base == Type::Base::kChar) {
      Emit("ld8 r0, [r0+0]");
    } else {
      Emit("ldw r0, [r0+0]");
    }
  }

  // *[r1] = r0 typed.
  void EmitStore(const Type& t) {
    if (!t.IsPtr() && t.base == Type::Base::kChar) {
      Emit("st8 [r1+0], r0");
    } else {
      Emit("stw [r1+0], r0");
    }
  }

  // --- Addresses: leaves address in r0, returns object type via *out ------------------

  vbase::Status GenAddr(const Expr& e, Type* out) {
    switch (e.kind) {
      case ExprKind::kVar: {
        const VarInfo* v = Lookup(e.name);
        if (v != nullptr) {
          if (v->is_param) {
            Emit("lea r0, [fp+" + std::to_string(2 * w_ + v->param_index * w_) + "]");
          } else {
            Emit("lea r0, [fp-" + std::to_string(v->fp_offset) + "]");
          }
          *out = v->type;
          return vbase::Status::Ok();
        }
        // Global?
        for (const Global& g : prog_.globals) {
          if (g.name == e.name) {
            Emit("mov r0, " + g.name);
            *out = g.type;
            return vbase::Status::Ok();
          }
        }
        return Err(e.line, "undefined variable '" + e.name + "'");
      }
      case ExprKind::kDeref: {
        Type pt;
        VB_RETURN_IF_ERROR(GenExpr(*e.a, &pt));
        if (!pt.IsPtr()) {
          return Err(e.line, "dereference of non-pointer");
        }
        *out = pt.Pointee();
        return vbase::Status::Ok();
      }
      case ExprKind::kIndex: {
        Type bt;
        VB_RETURN_IF_ERROR(GenExpr(*e.a, &bt));  // base pointer value (arrays decay)
        if (!bt.IsPtr()) {
          return Err(e.line, "indexing a non-pointer");
        }
        const int size = ElemSize(bt);
        if (e.b->kind == ExprKind::kIntLit && e.b->ival >= 0) {
          const int64_t off = e.b->ival * size;
          if (off != 0) {
            Emit("add r0, " + std::to_string(off));
          }
          *out = bt.Pointee();
          return vbase::Status::Ok();
        }
        Type it;
        if (TryRhsInR2(*e.b, &it)) {
          if (size > 1) {
            Emit("mov r3, " + std::to_string(size));
            Emit("mul r2, r3");
          }
          Emit("add r0, r2");
          *out = bt.Pointee();
          return vbase::Status::Ok();
        }
        Emit("push r0");
        VB_RETURN_IF_ERROR(GenExpr(*e.b, &it));
        if (size > 1) {
          Emit("mov r2, " + std::to_string(size));
          Emit("mul r0, r2");
        }
        Emit("mov r2, r0");
        Emit("pop r0");
        Emit("add r0, r2");
        *out = bt.Pointee();
        return vbase::Status::Ok();
      }
      default:
        return Err(e.line, "expression is not an lvalue");
    }
  }

  // Whether a variable reference denotes an array (which decays to a pointer
  // rvalue rather than being loaded).
  bool VarIsArray(const std::string& name) const {
    const VarInfo* v = Lookup(name);
    if (v != nullptr) {
      return v->is_array;
    }
    for (const Global& g : prog_.globals) {
      if (g.name == name) {
        return g.array_count >= 0;
      }
    }
    return false;
  }

  // --- Expressions: value in r0, type via *out ------------------------------------------

  vbase::Status GenExpr(const Expr& e, Type* out) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        Emit("mov r0, " + std::to_string(e.ival));
        *out = Type{Type::Base::kInt, 0};
        return vbase::Status::Ok();

      case ExprKind::kStrLit: {
        const std::string label = InternString(e.name);
        Emit("mov r0, " + label);
        *out = Type{Type::Base::kChar, 1};
        return vbase::Status::Ok();
      }

      case ExprKind::kSizeof:
        Emit("mov r0, " + std::to_string(SizeOf(e.type_arg)));
        *out = Type{Type::Base::kInt, 0};
        return vbase::Status::Ok();

      case ExprKind::kVar: {
        Type st;
        const std::string slot = DirectSlot(e, &st);
        if (!slot.empty()) {
          Emit(std::string(LoadOp(st)) + " r0, " + slot);
          *out = st;
          return vbase::Status::Ok();
        }
        Type ot;
        VB_RETURN_IF_ERROR(GenAddr(e, &ot));
        if (VarIsArray(e.name)) {
          *out = ot.PtrTo();  // decay: the address is the value
          return vbase::Status::Ok();
        }
        EmitLoad(ot);
        *out = ot;
        return vbase::Status::Ok();
      }

      case ExprKind::kIndex:
      case ExprKind::kDeref: {
        Type ot;
        VB_RETURN_IF_ERROR(GenAddr(e, &ot));
        EmitLoad(ot);
        *out = ot;
        return vbase::Status::Ok();
      }

      case ExprKind::kAddr: {
        Type ot;
        VB_RETURN_IF_ERROR(GenAddr(*e.a, &ot));
        *out = ot.PtrTo();
        return vbase::Status::Ok();
      }

      case ExprKind::kUnary: {
        Type t;
        VB_RETURN_IF_ERROR(GenExpr(*e.a, &t));
        if (e.op == "-") {
          Emit("neg r0");
        } else if (e.op == "~") {
          Emit("not r0");
        } else if (e.op == "!") {
          Emit("cmp r0, 0");
          Emit("cset r0, eq");
        } else {
          return Err(e.line, "bad unary operator " + e.op);
        }
        *out = Type{Type::Base::kInt, 0};
        return vbase::Status::Ok();
      }

      case ExprKind::kBinary:
        return GenBinary(e, out);

      case ExprKind::kCond: {
        const std::string lelse = NewLabel();
        const std::string lend = NewLabel();
        VB_RETURN_IF_ERROR(GenBranch(*e.a, lelse, /*jump_if_true=*/false));
        Type then_t;
        VB_RETURN_IF_ERROR(GenExpr(*e.b, &then_t));
        Emit("jmp " + lend);
        os_ << lelse << ":\n";
        Type else_t;
        VB_RETURN_IF_ERROR(GenExpr(*e.c, &else_t));
        os_ << lend << ":\n";
        *out = then_t;
        return vbase::Status::Ok();
      }

      case ExprKind::kAssign:
        return GenAssign(e, out);

      case ExprKind::kIncDec: {
        {
          Type st;
          const std::string slot = DirectSlot(*e.a, &st);
          if (!slot.empty()) {
            const int step = st.IsPtr() ? ElemSize(st) : 1;
            const bool prefix = e.ival == 1;
            const std::string op = e.op == "++" ? "add" : "sub";
            Emit(std::string(LoadOp(st)) + " r0, " + slot);
            if (!prefix) {
              Emit("mov r2, r0");  // save old
            }
            Emit(op + " r0, " + std::to_string(step));
            Emit(std::string(StoreOp(st)) + " " + slot + ", r0");
            if (!prefix) {
              Emit("mov r0, r2");
            }
            *out = st;
            return vbase::Status::Ok();
          }
        }
        Type ot;
        VB_RETURN_IF_ERROR(GenAddr(*e.a, &ot));
        Emit("push r0");  // address
        Emit("mov r1, r0");
        Emit("mov r0, r1");
        EmitLoad(ot);  // r0 = old value
        const int step = ot.IsPtr() ? ElemSize(ot) : 1;
        const bool prefix = e.ival == 1;
        const std::string op = e.op == "++" ? "add" : "sub";
        if (prefix) {
          Emit(op + " r0, " + std::to_string(step));
          Emit("pop r1");
          EmitStore(ot);
        } else {
          Emit("mov r2, r0");  // save old
          Emit(op + " r0, " + std::to_string(step));
          Emit("pop r1");
          EmitStore(ot);
          Emit("mov r0, r2");
        }
        *out = ot;
        return vbase::Status::Ok();
      }

      case ExprKind::kCall:
        return GenCall(e, out);
    }
    return Err(e.line, "unhandled expression");
  }

  vbase::Status GenBinary(const Expr& e, Type* out) {
    // Short-circuit forms first.
    if (e.op == "&&" || e.op == "||") {
      const std::string lshort = NewLabel();
      const std::string lend = NewLabel();
      Type t;
      VB_RETURN_IF_ERROR(GenExpr(*e.a, &t));
      Emit("cmp r0, 0");
      Emit(e.op == "&&" ? "je " + lshort : "jne " + lshort);
      VB_RETURN_IF_ERROR(GenExpr(*e.b, &t));
      Emit("cmp r0, 0");
      Emit(e.op == "&&" ? "je " + lshort : "jne " + lshort);
      Emit(e.op == "&&" ? "mov r0, 1" : "mov r0, 0");
      Emit("jmp " + lend);
      os_ << lshort << ":\n";
      Emit(e.op == "&&" ? "mov r0, 0" : "mov r0, 1");
      os_ << lend << ":\n";
      *out = Type{Type::Base::kInt, 0};
      return vbase::Status::Ok();
    }

    Type lt;
    VB_RETURN_IF_ERROR(GenExpr(*e.a, &lt));

    // Literal right operands fold into the immediate ALU/compare forms.
    if (e.b->kind == ExprKind::kIntLit) {
      const int64_t iv = e.b->ival;
      if ((e.op == "+" || e.op == "-") && lt.IsPtr()) {
        // Pointer arithmetic: fold the element scale into the immediate.
        Emit((e.op == "+" ? "add r0, " : "sub r0, ") +
             std::to_string(iv * ElemSize(lt)));
        *out = lt;
        return vbase::Status::Ok();
      }
      if (!lt.IsPtr()) {
        static const std::map<std::string, const char*> kImmAlu = {
            {"+", "add"}, {"-", "sub"}, {"&", "and"},  {"|", "or"},
            {"^", "xor"}, {"<<", "shl"}, {">>", "sar"},
        };
        if (auto it = kImmAlu.find(e.op); it != kImmAlu.end()) {
          Emit(std::string(it->second) + " r0, " + std::to_string(iv));
          *out = Type{Type::Base::kInt, 0};
          return vbase::Status::Ok();
        }
      }
      static const std::map<std::string, std::pair<const char*, const char*>>
          kCmpImm = {
              {"==", {"eq", "eq"}}, {"!=", {"ne", "ne"}}, {"<", {"lt", "b"}},
              {"<=", {"le", "be"}}, {">", {"gt", "a"}},   {">=", {"ge", "ae"}},
          };
      if (auto it = kCmpImm.find(e.op); it != kCmpImm.end()) {
        Emit("cmp r0, " + std::to_string(iv));
        Emit(std::string("cset r0, ") +
             (lt.IsPtr() ? it->second.second : it->second.first));
        *out = Type{Type::Base::kInt, 0};
        return vbase::Status::Ok();
      }
    }

    Type rt;
    if (!TryRhsInR2(*e.b, &rt)) {
      Emit("push r0");
      VB_RETURN_IF_ERROR(GenExpr(*e.b, &rt));
      Emit("mov r2, r0");
      Emit("pop r0");
    }
    // r0 = left, r2 = right.

    // Pointer arithmetic scaling.
    if ((e.op == "+" || e.op == "-") && lt.IsPtr() && !rt.IsPtr()) {
      const int size = ElemSize(lt);
      if (size > 1) {
        Emit("mov r3, " + std::to_string(size));
        Emit("mul r2, r3");
      }
      Emit(e.op == "+" ? "add r0, r2" : "sub r0, r2");
      *out = lt;
      return vbase::Status::Ok();
    }
    if (e.op == "+" && rt.IsPtr() && !lt.IsPtr()) {
      const int size = ElemSize(rt);
      if (size > 1) {
        Emit("mov r3, " + std::to_string(size));
        Emit("mul r0, r3");
      }
      Emit("add r0, r2");
      *out = rt;
      return vbase::Status::Ok();
    }
    if (e.op == "-" && lt.IsPtr() && rt.IsPtr()) {
      Emit("sub r0, r2");
      const int size = ElemSize(lt);
      if (size > 1) {
        Emit("mov r2, " + std::to_string(size));
        Emit("udiv r0, r2");
      }
      *out = Type{Type::Base::kInt, 0};
      return vbase::Status::Ok();
    }

    *out = Type{Type::Base::kInt, 0};
    if (e.op == "+") { Emit("add r0, r2"); return vbase::Status::Ok(); }
    if (e.op == "-") { Emit("sub r0, r2"); return vbase::Status::Ok(); }
    if (e.op == "*") { Emit("imul r0, r2"); return vbase::Status::Ok(); }
    if (e.op == "/") { Emit("idiv r0, r2"); return vbase::Status::Ok(); }
    if (e.op == "%") { Emit("imod r0, r2"); return vbase::Status::Ok(); }
    if (e.op == "&") { Emit("and r0, r2"); return vbase::Status::Ok(); }
    if (e.op == "|") { Emit("or r0, r2"); return vbase::Status::Ok(); }
    if (e.op == "^") { Emit("xor r0, r2"); return vbase::Status::Ok(); }
    if (e.op == "<<") { Emit("shl r0, r2"); return vbase::Status::Ok(); }
    if (e.op == ">>") { Emit("sar r0, r2"); return vbase::Status::Ok(); }

    static const std::map<std::string, std::pair<const char*, const char*>> kCmp = {
        {"==", {"eq", "eq"}}, {"!=", {"ne", "ne"}}, {"<", {"lt", "b"}},
        {"<=", {"le", "be"}}, {">", {"gt", "a"}},   {">=", {"ge", "ae"}},
    };
    if (auto it = kCmp.find(e.op); it != kCmp.end()) {
      const bool unsigned_cmp = lt.IsPtr() || rt.IsPtr();
      Emit("cmp r0, r2");
      Emit(std::string("cset r0, ") +
           (unsigned_cmp ? it->second.second : it->second.first));
      return vbase::Status::Ok();
    }
    return Err(e.line, "bad binary operator " + e.op);
  }

  // Emits a conditional jump to `target`, taken when `e` is true
  // (jump_if_true) or false.  Comparison operators fuse into a cmp + jcc
  // pair instead of materializing a boolean through cset; &&, || and !
  // decompose structurally.  Falls back to value + "cmp r0, 0".
  vbase::Status GenBranch(const Expr& e, const std::string& target,
                          bool jump_if_true) {
    if (e.kind == ExprKind::kUnary && e.op == "!") {
      return GenBranch(*e.a, target, !jump_if_true);
    }
    if (e.kind == ExprKind::kBinary && (e.op == "&&" || e.op == "||")) {
      const bool is_and = e.op == "&&";
      if (is_and != jump_if_true) {
        // jump-if-false of && / jump-if-true of ||: either clause decides.
        VB_RETURN_IF_ERROR(GenBranch(*e.a, target, jump_if_true));
        return GenBranch(*e.b, target, jump_if_true);
      }
      // jump-if-true of && / jump-if-false of ||: first clause can only veto.
      const std::string lskip = NewLabel();
      VB_RETURN_IF_ERROR(GenBranch(*e.a, lskip, !jump_if_true));
      VB_RETURN_IF_ERROR(GenBranch(*e.b, target, jump_if_true));
      os_ << lskip << ":\n";
      return vbase::Status::Ok();
    }
    if (e.kind == ExprKind::kBinary) {
      // {signed, unsigned, negated-signed, negated-unsigned}
      static const std::map<std::string, std::array<const char*, 4>> kJcc = {
          {"==", {{"je", "je", "jne", "jne"}}},
          {"!=", {{"jne", "jne", "je", "je"}}},
          {"<", {{"jl", "jb", "jge", "jae"}}},
          {"<=", {{"jle", "jbe", "jg", "ja"}}},
          {">", {{"jg", "ja", "jle", "jbe"}}},
          {">=", {{"jge", "jae", "jl", "jb"}}},
      };
      if (auto it = kJcc.find(e.op); it != kJcc.end()) {
        Type lt;
        VB_RETURN_IF_ERROR(GenExpr(*e.a, &lt));
        Type rt{Type::Base::kInt, 0};
        if (e.b->kind == ExprKind::kIntLit) {
          Emit("cmp r0, " + std::to_string(e.b->ival));
        } else if (TryRhsInR2(*e.b, &rt)) {
          Emit("cmp r0, r2");
        } else {
          Emit("push r0");
          VB_RETURN_IF_ERROR(GenExpr(*e.b, &rt));
          Emit("mov r2, r0");
          Emit("pop r0");
          Emit("cmp r0, r2");
        }
        const bool uns = lt.IsPtr() || rt.IsPtr();
        const int idx = (jump_if_true ? 0 : 2) + (uns ? 1 : 0);
        Emit(std::string(it->second[static_cast<size_t>(idx)]) + " " + target);
        return vbase::Status::Ok();
      }
    }
    Type t;
    VB_RETURN_IF_ERROR(GenExpr(e, &t));
    Emit("cmp r0, 0");
    Emit((jump_if_true ? "jne " : "je ") + target);
    return vbase::Status::Ok();
  }

  vbase::Status GenAssign(const Expr& e, Type* out) {
    if (e.op == "=") {
      Type st;
      const std::string slot = DirectSlot(*e.a, &st);
      if (!slot.empty()) {
        Type rt;
        VB_RETURN_IF_ERROR(GenExpr(*e.b, &rt));
        Emit(std::string(StoreOp(st)) + " " + slot + ", r0");
        *out = st;
        return vbase::Status::Ok();
      }
      Type rt;
      VB_RETURN_IF_ERROR(GenExpr(*e.b, &rt));
      Emit("push r0");
      Type ot;
      VB_RETURN_IF_ERROR(GenAddr(*e.a, &ot));
      Emit("mov r1, r0");
      Emit("pop r0");
      EmitStore(ot);
      *out = ot;
      return vbase::Status::Ok();
    }
    // Compound assignment: op= .
    Type ot;
    const std::string slot = DirectSlot(*e.a, &ot);
    if (slot.empty()) {
      VB_RETURN_IF_ERROR(GenAddr(*e.a, &ot));
      Emit("push r0");  // address
      Emit("mov r1, r0");
      Emit("mov r0, r1");
      EmitLoad(ot);     // r0 = old
      Emit("push r0");
      Type rt;
      VB_RETURN_IF_ERROR(GenExpr(*e.b, &rt));
      Emit("mov r2, r0");
      Emit("pop r0");   // old
    } else {
      Emit(std::string(LoadOp(ot)) + " r0, " + slot);  // old
      Type rt;
      if (!TryRhsInR2(*e.b, &rt)) {
        Emit("push r0");
        VB_RETURN_IF_ERROR(GenExpr(*e.b, &rt));
        Emit("mov r2, r0");
        Emit("pop r0");
      }
    }
    const std::string base_op = e.op.substr(0, e.op.size() - 1);
    if ((base_op == "+" || base_op == "-") && ot.IsPtr()) {
      const int size = ElemSize(ot);
      if (size > 1) {
        Emit("mov r3, " + std::to_string(size));
        Emit("mul r2, r3");
      }
    }
    if (base_op == "+") Emit("add r0, r2");
    else if (base_op == "-") Emit("sub r0, r2");
    else if (base_op == "*") Emit("imul r0, r2");
    else if (base_op == "/") Emit("idiv r0, r2");
    else if (base_op == "%") Emit("imod r0, r2");
    else if (base_op == "&") Emit("and r0, r2");
    else if (base_op == "|") Emit("or r0, r2");
    else if (base_op == "^") Emit("xor r0, r2");
    else if (base_op == "<<") Emit("shl r0, r2");
    else if (base_op == ">>") Emit("sar r0, r2");
    else return Err(e.line, "bad compound assignment " + e.op);
    if (slot.empty()) {
      Emit("pop r1");  // address
      EmitStore(ot);
    } else {
      Emit(std::string(StoreOp(ot)) + " " + slot + ", r0");
    }
    *out = ot;
    return vbase::Status::Ok();
  }

  vbase::Status GenCall(const Expr& e, Type* out) {
    *out = Type{Type::Base::kInt, 0};
    if (e.name == "__rdtsc") {
      Emit("rdtsc r0");
      return vbase::Status::Ok();
    }
    if (e.name == "__hlt") {
      Emit("hlt");
      return vbase::Status::Ok();
    }
    if (e.name == "__hc0" || e.name == "__hc1" || e.name == "__hc2" || e.name == "__hc3") {
      const int n = e.name[4] - '0';
      if (static_cast<int>(e.args.size()) != n + 1) {
        return Err(e.line, e.name + " expects " + std::to_string(n + 1) + " arguments");
      }
      // The port must be a compile-time constant (it is encoded in `out`).
      if (e.args[0]->kind != ExprKind::kIntLit) {
        return Err(e.line, "hypercall port must be an integer literal");
      }
      const int64_t port = e.args[0]->ival;
      // Evaluate hypercall operands right-to-left, then pop into r1..rN.
      for (int i = n; i >= 1; --i) {
        Type t;
        VB_RETURN_IF_ERROR(GenExpr(*e.args[static_cast<size_t>(i)], &t));
        Emit("push r0");
      }
      for (int i = 1; i <= n; ++i) {
        Emit("pop r" + std::to_string(i));
      }
      Emit("mov r0, 0");
      Emit("out " + std::to_string(port) + ", r0");
      return vbase::Status::Ok();
    }
    const Function* callee = prog_.FindFunction(e.name);
    if (callee == nullptr) {
      return Err(e.line, "call to undefined function '" + e.name + "'");
    }
    if (callee->params.size() != e.args.size()) {
      return Err(e.line, "call to '" + e.name + "' with " + std::to_string(e.args.size()) +
                             " args, expected " + std::to_string(callee->params.size()));
    }
    for (int i = static_cast<int>(e.args.size()) - 1; i >= 0; --i) {
      Type t;
      VB_RETURN_IF_ERROR(GenExpr(*e.args[static_cast<size_t>(i)], &t));
      Emit("push r0");
    }
    Emit("call " + e.name);
    if (!e.args.empty()) {
      Emit("add sp, " + std::to_string(e.args.size() * static_cast<size_t>(w_)));
    }
    *out = callee->ret;
    return vbase::Status::Ok();
  }

  // --- Data ---------------------------------------------------------------------------

  static std::string EscapeAsm(const std::string& s) {
    std::string out;
    for (char c : s) {
      switch (c) {
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        case '\0': out += "\\0"; break;
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        default: out += c;
      }
    }
    return out;
  }

  std::string InternString(const std::string& value) {
    auto it = string_labels_.find(value);
    if (it != string_labels_.end()) {
      return it->second;
    }
    const std::string label = ".Lstr" + std::to_string(string_labels_.size());
    string_labels_[value] = label;
    strings_ << label << ":\n  .asciz \"" << EscapeAsm(value) << "\"\n";
    return label;
  }

  void EmitGlobal(const Global& g) {
    const bool is_char = !g.type.IsPtr() && g.type.base == Type::Base::kChar;
    if (!is_char) {
      os_ << ".align " << w_ << "\n";
    }
    os_ << g.name << ":\n";
    const int64_t count = g.array_count >= 0 ? g.array_count : 1;
    const int unit = is_char ? 1 : w_;
    if (g.has_string_init) {
      os_ << "  .asciz \"" << EscapeAsm(g.init_string) << "\"\n";
      const int64_t used = static_cast<int64_t>(g.init_string.size()) + 1;
      if (count * unit > used) {
        os_ << "  .space " << (count * unit - used) << "\n";
      }
      return;
    }
    if (!g.init_values.empty()) {
      os_ << "  " << (is_char ? ".byte" : WordDirective());
      for (size_t i = 0; i < g.init_values.size(); ++i) {
        os_ << (i == 0 ? " " : ", ") << g.init_values[i];
      }
      os_ << "\n";
      const int64_t used = static_cast<int64_t>(g.init_values.size()) * unit;
      if (count * unit > used) {
        os_ << "  .space " << (count * unit - used) << "\n";
      }
      return;
    }
    os_ << "  .space " << count * unit << "\n";
  }

  const Program& prog_;
  const int w_;
  std::ostringstream os_;
  std::ostringstream strings_;
  std::map<std::string, std::string> string_labels_;
  std::vector<std::unordered_map<std::string, VarInfo>> scopes_;
  std::vector<std::string> break_stack_;
  std::vector<std::string> continue_stack_;
  const Function* cur_fn_ = nullptr;
  int64_t cur_offset_ = 0;
  int label_counter_ = 0;
};

}  // namespace

vbase::Result<std::string> Generate(const Program& program, const std::string& entry,
                                    int word_bytes) {
  CodeGen gen(program, word_bytes);
  return gen.Run(entry);
}

}  // namespace vcc
