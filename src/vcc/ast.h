// Internal AST, token, and type definitions for the vcc compiler.
#ifndef SRC_VCC_AST_H_
#define SRC_VCC_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/vcc/vcc.h"

namespace vcc {

// --- Tokens -----------------------------------------------------------------

enum class Tok : uint8_t {
  kEof,
  kIdent,
  kIntLit,
  kStrLit,
  kPunct,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;   // identifier / punctuation spelling / string contents
  int64_t value = 0;  // integer value for kIntLit
  int line = 0;
};

vbase::Result<std::vector<Token>> Lex(const std::string& source);

// --- Types ------------------------------------------------------------------

// The dialect's types: `int` (machine word, signed), `char` (unsigned byte),
// `void`, and pointers over them.  Arrays exist at declaration sites and
// decay to pointers in expressions.
struct Type {
  enum class Base : uint8_t { kVoid, kInt, kChar } base = Base::kInt;
  int ptr = 0;  // pointer depth

  bool IsPtr() const { return ptr > 0; }
  Type Pointee() const { return Type{base, ptr - 1}; }
  Type PtrTo() const { return Type{base, ptr + 1}; }
  bool operator==(const Type&) const = default;
};

// --- Expressions -------------------------------------------------------------

enum class ExprKind : uint8_t {
  kIntLit,
  kStrLit,    // name holds the literal contents
  kVar,
  kAssign,    // op: "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="
  kBinary,    // op: arithmetic/logical/comparison
  kUnary,     // op: "-", "!", "~"
  kCond,      // a ? b : c
  kCall,      // name + args
  kIndex,     // a[b]
  kDeref,     // *a
  kAddr,      // &a
  kIncDec,    // op: "++" / "--"; ival: 1 = prefix, 0 = postfix
  kSizeof,    // type in `type_arg`
};

struct Expr {
  ExprKind kind;
  int line = 0;
  int64_t ival = 0;
  std::string name;
  std::string op;
  Type type_arg;  // kSizeof
  std::unique_ptr<Expr> a, b, c;
  std::vector<std::unique_ptr<Expr>> args;  // kCall
};

// --- Statements ---------------------------------------------------------------

enum class StmtKind : uint8_t {
  kBlock,
  kIf,
  kWhile,
  kFor,
  kReturn,
  kExpr,
  kDecl,
  kBreak,
  kContinue,
};

struct Stmt {
  StmtKind kind;
  int line = 0;
  std::unique_ptr<Expr> e, e2, e3;          // condition / for-init is s1
  std::unique_ptr<Stmt> s1, s2, s3;         // then/else, for-init/post-stmt
  std::vector<std::unique_ptr<Stmt>> body;  // kBlock
  // kDecl:
  Type type;
  std::string name;
  int64_t array_count = -1;  // >= 0 for array declarations
  std::unique_ptr<Expr> init;
};

// --- Top level ------------------------------------------------------------------

struct Param {
  Type type;
  std::string name;
};

struct Function {
  std::string name;
  Type ret;
  std::vector<Param> params;
  std::unique_ptr<Stmt> body;
  Annotation anno = Annotation::kNone;
  uint64_t config_mask = 0;
  int line = 0;
};

struct Global {
  Type type;
  std::string name;
  int64_t array_count = -1;           // >= 0 for arrays
  std::vector<int64_t> init_values;   // scalar/array initializers
  std::string init_string;            // "..." initializer for char arrays
  bool has_string_init = false;
  int line = 0;
};

struct Program {
  std::vector<Global> globals;
  std::vector<Function> functions;

  const Function* FindFunction(const std::string& name) const {
    for (const Function& f : functions) {
      if (f.name == name) {
        return &f;
      }
    }
    return nullptr;
  }
};

vbase::Result<Program> Parse(const std::string& source);

// Generates VBC assembly for the subset of `program` reachable from `entry`
// (the call-graph cut), with a `virtine_main` alias for the CRT.
// `word_bytes` is the target environment word size.
vbase::Result<std::string> Generate(const Program& program, const std::string& entry,
                                    int word_bytes);

}  // namespace vcc

#endif  // SRC_VCC_AST_H_
