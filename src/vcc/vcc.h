// vcc — the virtine C compiler.
//
// This is the reproduction's substitute for the paper's clang wrapper +
// LLVM pass (Section 5.3): a from-scratch compiler for a C dialect that
//
//   1. detects functions annotated with the `virtine`, `virtine_permissive`,
//      or `virtine_config(mask)` keywords,
//   2. builds the program call graph and cuts it at each annotated function
//      (only the reachable subset of functions and globals is packaged, so
//      virtine images stay small),
//   3. generates VBC code, links it against the selected execution
//      environment's boot stub + CRT (vrt), and
//   4. derives the host-side invocation stub: argument counts, the policy
//      mask implied by the annotation, and (via the CLI driver) a generated
//      C++ header embedding the image.
//
// Language: a word-oriented C subset.  `int` is the natural machine word of
// the target environment (64-bit in long64, 32-bit in prot32, 16-bit in
// real16); `char` is an unsigned byte; pointers and arrays are supported
// with C semantics; no structs, floats, or function pointers.  Hypercalls
// are reachable through the `__hc0..__hc3(port, ...)` builtins plus
// `__rdtsc()`.  vlibc (src/vrt/vlibc.h) layers string/memory/malloc/printf
// helpers and POSIX-style wrappers on top of the builtins.
#ifndef SRC_VCC_VCC_H_
#define SRC_VCC_VCC_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/isa/image.h"
#include "src/vrt/env.h"
#include "src/wasp/abi.h"

namespace vcc {

// How a function was annotated in source.
enum class Annotation {
  kNone,
  kVirtine,            // `virtine` keyword: default-deny policy
  kVirtinePermissive,  // `virtine_permissive`: allow-all policy
  kVirtineConfig,      // `virtine_config(mask)`: explicit policy bits
};

// One compiled virtine: a bootable image for a single annotated function
// plus everything the host stub needs to invoke it.
struct CompiledVirtine {
  std::string name;            // the annotated function
  visa::Image image;           // boot stub + CRT + reachable code/data
  wasp::HypercallMask policy;  // from the annotation
  vrt::Env env;                // execution environment
  int num_args = 0;            // scalar/pointer parameter count
  std::string asm_text;        // generated assembly (debugging/tests)
};

// Compiles every `virtine`-annotated function in `source` into its own
// image targeting `env`.  Fails if the source has no annotated functions.
vbase::Result<std::vector<CompiledVirtine>> CompileVirtines(const std::string& source,
                                                            vrt::Env env = vrt::Env::kLong64);

// Compiles a whole program (entry point `entry`, default "main") to assembly
// with a `virtine_main` alias; for guest programs used as complete images
// (e.g. the microjs engine) rather than cut-out virtine functions.
vbase::Result<std::string> CompileToAsm(const std::string& source,
                                        const std::string& entry = "main",
                                        vrt::Env env = vrt::Env::kLong64);

// CompileToAsm + vrt::BuildImage in one step.
vbase::Result<visa::Image> CompileProgram(const std::string& source,
                                          const std::string& entry = "main",
                                          vrt::Env env = vrt::Env::kLong64);

// Renders a generated C++ header that embeds `virtines` (image bytes +
// typed wasp::VirtineFunc factories); what the CLI driver writes next to
// your build, mirroring the paper's compiler-generated invocation stubs.
std::string EmitCppHeader(const std::vector<CompiledVirtine>& virtines,
                          const std::string& guard);

}  // namespace vcc

#endif  // SRC_VCC_VCC_H_
