#include "src/vkvm/vkvm.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace vkvm {

bool KvmHardwareAvailable() {
  const int fd = ::open("/dev/kvm", O_RDWR | O_CLOEXEC);
  if (fd < 0) {
    return false;
  }
  ::close(fd);
  return true;
}

Vm::Vm(const VmConfig& config)
    : config_(config), mem_(config.mem_size), cpu_(&mem_, config.guest_costs) {}

std::unique_ptr<Vm> Vm::Create(const VmConfig& config) {
  auto vm = std::unique_ptr<Vm>(new Vm(config));
  vm->host_cycles_ += config.host_costs.vm_create;
  return vm;
}

vbase::Status Vm::LoadBlob(uint64_t gpa, const void* data, uint64_t len) {
  return mem_.Write(gpa, data, len);
}

RunResult Vm::Run(uint64_t max_insns) {
  host_cycles_ += config_.host_costs.vmrun;
  const vhw::Exit exit = cpu_.Run(max_insns);
  RunResult r;
  switch (exit.kind) {
    case vhw::ExitKind::kHlt:
      r.reason = ExitReason::kHlt;
      break;
    case vhw::ExitKind::kIo:
      r.reason = ExitReason::kIo;
      r.port = exit.port;
      r.io_is_in = exit.is_in;
      r.io_reg = exit.io_reg;
      break;
    case vhw::ExitKind::kBrk:
      r.reason = ExitReason::kBrk;
      break;
    case vhw::ExitKind::kFault:
      r.reason = ExitReason::kFault;
      r.fault = exit.fault;
      break;
    case vhw::ExitKind::kInsnLimit:
      r.reason = ExitReason::kInsnLimit;
      break;
  }
  return r;
}

vbase::Status Vm::ReadVirt(uint64_t va, void* dst, uint64_t len) {
  uint8_t* out = static_cast<uint8_t*>(dst);
  uint64_t done = 0;
  while (done < len) {
    const uint64_t page_off = (va + done) & (vhw::kPageSize - 1);
    const uint64_t chunk = std::min<uint64_t>(len - done, vhw::kPageSize - page_off);
    auto pa = cpu_.Translate(va + done);
    if (!pa.ok()) {
      return pa.status();
    }
    VB_RETURN_IF_ERROR(mem_.Read(*pa, out + done, chunk));
    done += chunk;
  }
  return vbase::Status::Ok();
}

vbase::Status Vm::WriteVirt(uint64_t va, const void* src, uint64_t len) {
  const uint8_t* in = static_cast<const uint8_t*>(src);
  uint64_t done = 0;
  while (done < len) {
    const uint64_t page_off = (va + done) & (vhw::kPageSize - 1);
    const uint64_t chunk = std::min<uint64_t>(len - done, vhw::kPageSize - page_off);
    auto pa = cpu_.Translate(va + done);
    if (!pa.ok()) {
      return pa.status();
    }
    VB_RETURN_IF_ERROR(mem_.Write(*pa, in + done, chunk));
    done += chunk;
  }
  return vbase::Status::Ok();
}

vbase::Result<std::string> Vm::ReadCString(uint64_t va, uint64_t max_len) {
  std::string out;
  for (uint64_t i = 0; i < max_len; ++i) {
    char c;
    VB_RETURN_IF_ERROR(ReadVirt(va + i, &c, 1));
    if (c == '\0') {
      return out;
    }
    out += c;
  }
  return vbase::OutOfRange("unterminated guest string");
}

}  // namespace vkvm
