// vkvm — a KVM-shaped hypervisor substrate.
//
// This layer mirrors the structure of the Linux KVM API the paper builds on:
// a VM object owning guest physical memory (KVM_CREATE_VM +
// KVM_SET_USER_MEMORY_REGION), a vCPU whose Run() drives the guest until the
// next exit (the KVM_RUN ioctl), and exit reasons for HLT, port I/O, and
// faults.  It is backed by the `vhw` software machine because this
// environment has no /dev/kvm (see DESIGN.md §2); `KvmHardwareAvailable()`
// reports whether a real KVM device exists so deployments with hardware
// virtualization can detect it.
//
// Host-side costs that the paper measures from userspace — VM-context
// creation and the per-KVM_RUN syscall/ring-transition/vmrun overhead — are
// charged here, against Figure 2/8-calibrated constants, and the real
// wall-clock cost of the actual host work (memory allocation and zeroing) is
// naturally incurred by the implementation.
#ifndef SRC_VKVM_VKVM_H_
#define SRC_VKVM_VKVM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/base/status.h"
#include "src/vhw/cost_model.h"
#include "src/vhw/cpu.h"
#include "src/vhw/mem.h"

namespace vkvm {

// Host-side modeled costs (cycles at the 2.69 GHz reference clock),
// calibrated to Figure 2 / Figure 8 / Table 2 of the paper.
struct HostCostModel {
  // KVM_CREATE_VM + KVM_CREATE_VCPU + memory-region setup: the host kernel
  // allocates VMCS/VMCB state and mappings ("we pay a higher cost to
  // construct a virtine due to the host kernel's internal allocation of the
  // VM state").
  uint64_t vm_create = 250000;
  // One KVM_RUN round trip observed from userspace: syscall entry, sanity
  // checks, vmrun, vmexit, syscall return.
  uint64_t vmrun = 4300;
  // Reference points (Figures 2 and 8).  pthread/process are also measured
  // for real on this host by the benchmarks; SGX rows have no hardware here
  // and are paper-reported constants.
  uint64_t pthread_create = 26000;
  uint64_t process_fork = 1200000;
  uint64_t sgx_create = 30000000;
  uint64_t sgx_ecall = 14000;
  // Host memcpy bandwidth for modeled image-load / snapshot-restore charges:
  // tinker measures 6.7 GB/s (Section 6.2), i.e. ~2.49 bytes per cycle at
  // 2.69 GHz.
  double memcpy_bytes_per_cycle = 2.49;
  // Mapping one snapshot extent as a shared COW range: page-table update
  // plus TLB shootdown-ish bookkeeping, charged per extent run rather than
  // per byte — a warm COW restore costs O(extents), not O(image).
  uint64_t cow_map_extent = 450;
};

// Returns true when a real /dev/kvm exists and is openable on this host.
bool KvmHardwareAvailable();

// Exit reasons surfaced to the embedder (mirrors kvm_run::exit_reason).
enum class ExitReason : uint8_t {
  kHlt,
  kIo,
  kFault,
  kBrk,
  kInsnLimit,
};

struct RunResult {
  ExitReason reason = ExitReason::kFault;
  uint16_t port = 0;
  bool io_is_in = false;
  uint8_t io_reg = 0;
  std::string fault;
};

struct VmConfig {
  uint64_t mem_size = 1ULL << 20;  // 1 MB default guest memory
  vhw::CostModel guest_costs;
  HostCostModel host_costs;
};

// A virtual machine: guest memory + one vCPU.
//
// Modeled-cycle accounting: `host_cycles()` accumulates host-side charges
// (creation, per-Run vmrun overhead); guest-side cycles accumulate on the
// CPU (`cpu().cycles()`).  `total_cycles()` is their sum.
class Vm {
 public:
  // Creates a VM: allocates zeroed guest memory (real work) and charges the
  // modeled creation cost.
  static std::unique_ptr<Vm> Create(const VmConfig& config);

  vhw::GuestMemory& memory() { return mem_; }
  const vhw::GuestMemory& memory() const { return mem_; }
  vhw::Cpu& cpu() { return cpu_; }
  const vhw::Cpu& cpu() const { return cpu_; }

  // Loads a binary blob at `gpa` (the embedder's KVM_SET_USER_MEMORY_REGION
  // + image copy step).
  vbase::Status LoadBlob(uint64_t gpa, const void* data, uint64_t len);

  // Resets the vCPU to real mode at `entry` (does not touch memory).
  void ResetVcpu(uint64_t entry) { cpu_.Reset(entry); }

  // Arms a synthetic guest fault delivered by the next Run() (chaos
  // testing); cleared by any vCPU reset or snapshot restore.
  void InjectGuestFault(std::string reason) { cpu_.InjectFault(std::move(reason)); }

  // Runs the vCPU until the next exit; the KVM_RUN analogue.  Charges the
  // vmrun host cost per call.
  RunResult Run(uint64_t max_insns = UINT64_MAX >> 1);

  // Guest-virtual-address accessors used by hypercall handlers; translation
  // happens under the *current* guest paging mode, and all accesses are
  // bounds-checked, so a hostile guest pointer cannot reach host memory.
  vbase::Status ReadVirt(uint64_t va, void* dst, uint64_t len);
  vbase::Status WriteVirt(uint64_t va, const void* src, uint64_t len);
  // Reads a NUL-terminated guest string (bounded by max_len).
  vbase::Result<std::string> ReadCString(uint64_t va, uint64_t max_len = 4096);

  uint64_t host_cycles() const { return host_cycles_; }
  void AddHostCycles(uint64_t c) { host_cycles_ += c; }
  uint64_t total_cycles() const { return host_cycles_ + cpu_.cycles(); }
  // Resets both cycle counters (used when a pooled shell is re-deployed and
  // accounting restarts for the new virtine).
  void ResetAccounting() {
    host_cycles_ = 0;
    cpu_.set_cycles(0);
  }

  const VmConfig& config() const { return config_; }

 private:
  explicit Vm(const VmConfig& config);

  VmConfig config_;
  vhw::GuestMemory mem_;
  vhw::Cpu cpu_;
  uint64_t host_cycles_ = 0;
};

}  // namespace vkvm

#endif  // SRC_VKVM_VKVM_H_
