#include "src/vrt/samples.h"

namespace vrt {

std::string FibSource() {
  return R"(
virtine_main:
  push fp
  mov fp, sp
  ldw r1, [fp+WORD+WORD]      ; n
  push r1
  call fib
  add sp, WORD                ; caller cleans the argument
  pop fp
  ret

; fib(n): classic recursive implementation.
fib:
  push fp
  mov fp, sp
  ldw r1, [fp+WORD+WORD]
  cmp r1, 2
  jge fib_rec
  mov r0, r1                  ; fib(0)=0, fib(1)=1
  pop fp
  ret
fib_rec:
  sub r1, 1
  push r1                     ; doubles as saved n-1 and the argument
  call fib                    ; r0 = fib(n-1)
  pop r1                      ; r1 = n-1 (also cleans the argument)
  sub r1, 1                   ; n-2
  push r0                     ; save fib(n-1)
  push r1
  call fib                    ; r0 = fib(n-2)
  add sp, WORD
  pop r1                      ; fib(n-1)
  add r0, r1
  pop fp
  ret
)";
}

std::string HaltSource() {
  return R"(
start:
  hlt
)";
}

std::string Add2Source() {
  return R"(
virtine_main:
  push fp
  mov fp, sp
  ldw r0, [fp+WORD+WORD]
  ldw r1, [fp+WORD+WORD+WORD]
  add r0, r1
  pop fp
  ret
)";
}

std::string EchoSource() {
  // Buffer at a fixed scratch address (0x600, between the argument page and
  // the real-mode stack; safely below the image).
  return R"(
virtine_main:
echo_loop:
  mov r1, 0x600               ; buf
  mov r2, 256                 ; cap
  mov r0, 0
  out HC_RECV, r0             ; r0 = bytes received
  cmp r0, 0
  je echo_done
  mov r2, r0                  ; len = received
  mov r1, 0x600
  mov r0, 0
  out HC_SEND, r0
  jmp echo_loop
echo_done:
  mov r0, 0
  ret
)";
}

}  // namespace vrt
