// Hand-written guest assembly samples shared by tests, examples, and the
// mode-latency benchmark (Figure 3 runs the same fib(20) workload in all
// three processor modes, so the sample must be mode-agnostic: it only uses
// word-sized operations).
#ifndef SRC_VRT_SAMPLES_H_
#define SRC_VRT_SAMPLES_H_

#include <string>

namespace vrt {

// Recursive Fibonacci: `virtine_main(n)` returns fib(n).  The "simple,
// recursive implementation" used throughout the paper's microbenchmarks.
std::string FibSource();

// A minimal virtine that halts immediately (Figure 12's padding baseline).
std::string HaltSource();

// `virtine_main(a, b)` returns a + b (marshalling smoke test).
std::string Add2Source();

// Echoes everything from recv back via send until EOF, then exits
// (Section 4.2's minimal echo server workload, adapted to one connection).
std::string EchoSource();

}  // namespace vrt

#endif  // SRC_VRT_SAMPLES_H_
