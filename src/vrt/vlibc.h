// vlibc — the virtine-specific C library (the paper's newlib port analogue,
// Section 5.3).
//
// vlibc is written in the vcc dialect and concatenated with user programs
// before compilation; the compiler's call-graph cut drops everything the
// virtine does not use, keeping images small.  Its "system calls" forward to
// Wasp hypercalls (ports from src/wasp/abi.h, hard-coded as literals because
// hypercall ports are immediate operands).
//
// Provided: hypercall wrappers (exit/console/snapshot/get_data/return_data/
// open/read/write/close/stat_size/send/recv), string and memory routines
// (strlen/strcmp/strcpy/strcat/memcpy/memset/memcmp/atoi/itoa/uitoa_hex),
// console printing helpers (puts/print_int), and a bump-pointer malloc with
// a trivial free list.
#ifndef SRC_VRT_VLIBC_H_
#define SRC_VRT_VLIBC_H_

#include <string>

namespace vrt {

// The vlibc source text (vcc dialect).  Prepend to user programs.
const std::string& VlibcSource();

}  // namespace vrt

#endif  // SRC_VRT_VLIBC_H_
