// Virtine execution environments (Section 5.4, Figure 10).
//
// The paper ships two default environments: (A) the full environment used
// by the C language extensions — boot to long mode, init the C runtime,
// optionally snapshot, then run the workload — and (B) a raw environment
// where the client supplies the whole binary.  This reproduction provides
// three staged environments (one per processor mode, so Figure 3's
// mode-latency experiment can run the same workload in each) plus the raw
// builder:
//
//   kReal16  — no mode transitions at all; cheapest bring-up, 16-bit words.
//   kProt32  — GDT + CR0.PE + far jump; no paging (the paper's echo server
//              environment, Figure 4).
//   kLong64  — full bring-up: GDT, protected mode, identity-mapped page
//              tables (512 x 2 MB), PAE/LME/PG, long mode.  The default for
//              compiler-generated virtines.
//
// Every staged environment ends in a shared CRT that optionally issues the
// snapshot hypercall (boot-info flag), unmarshals arguments from the
// argument page onto the stack, calls `virtine_main`, stores the result in
// argument-page word 0, and halts.
#ifndef SRC_VRT_ENV_H_
#define SRC_VRT_ENV_H_

#include <string>

#include "src/base/status.h"
#include "src/isa/image.h"
#include "src/isa/isa.h"

namespace vrt {

enum class Env {
  kReal16,
  kProt32,
  kLong64,
};

const char* EnvName(Env env);

// The processor mode the environment's workload runs in.
visa::Mode FinalMode(Env env);

// Natural word size (bytes) of the environment's final mode; also the
// argument-page slot size (see wasp/abi.h).
int WordBytes(Env env);

// Builds a complete bootable virtine image: boot stub for `env` + CRT +
// `user_source` (VBC assembly that must define `virtine_main`).
vbase::Result<visa::Image> BuildImage(Env env, const std::string& user_source);

// Builds a raw image (environment B): `source` is assembled as-is at the
// load address with no boot stub or CRT; execution starts in real mode at
// the `start` label.
vbase::Result<visa::Image> BuildRawImage(const std::string& source);

// The assembly prelude (`.equ` constants: WORD, BOOTINFO, hypercall ports)
// shared by all generated guest code; exposed for the compiler backend.
std::string AsmPrelude(Env env);

}  // namespace vrt

#endif  // SRC_VRT_ENV_H_
