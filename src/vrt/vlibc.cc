#include "src/vrt/vlibc.h"

namespace vrt {

const std::string& VlibcSource() {
  static const std::string kSource = R"vlibc(
// ======================= vlibc (vcc dialect) =========================
// Hypercall ports mirror src/wasp/abi.h; they must be integer literals.

int exit(int code)                    { return __hc1(1, code); }
int console_write(char *s, int n)     { return __hc2(2, s, n); }
int v_snapshot()                      { return __hc0(3); }
int get_data(char *buf, int cap)      { return __hc2(4, buf, cap); }
int return_data(char *buf, int n)     { return __hc2(5, buf, n); }
int open(char *path)                  { return __hc1(16, path); }
int read(int fd, char *buf, int n)    { return __hc3(17, fd, buf, n); }
int write(int fd, char *buf, int n)   { return __hc3(18, fd, buf, n); }
int close(int fd)                     { return __hc1(19, fd); }
int send(char *buf, int n)            { return __hc2(32, buf, n); }
int recv(char *buf, int cap)          { return __hc2(33, buf, cap); }

int stat_size(char *path) {
  int st[2];
  if (__hc2(20, path, st) < 0) {
    return -1;
  }
  return st[0];
}

// ---------------- string / memory ----------------

int strlen(char *s) {
  int n;
  n = 0;
  while (s[n]) {
    n = n + 1;
  }
  return n;
}

int strcmp(char *a, char *b) {
  int i;
  i = 0;
  while (a[i] && b[i] && a[i] == b[i]) {
    i = i + 1;
  }
  return a[i] - b[i];
}

char *strcpy(char *dst, char *src) {
  int i;
  i = 0;
  while (src[i]) {
    dst[i] = src[i];
    i = i + 1;
  }
  dst[i] = 0;
  return dst;
}

char *strcat(char *dst, char *src) {
  strcpy(dst + strlen(dst), src);
  return dst;
}

char *memcpy(char *dst, char *src, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    dst[i] = src[i];
  }
  return dst;
}

char *memset(char *dst, int value, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    dst[i] = value;
  }
  return dst;
}

int memcmp(char *a, char *b, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (a[i] != b[i]) {
      return a[i] - b[i];
    }
  }
  return 0;
}

int atoi(char *s) {
  int v;
  int neg;
  int i;
  v = 0;
  neg = 0;
  i = 0;
  if (s[0] == '-') {
    neg = 1;
    i = 1;
  }
  while (s[i] >= '0' && s[i] <= '9') {
    v = v * 10 + (s[i] - '0');
    i = i + 1;
  }
  if (neg) {
    return -v;
  }
  return v;
}

// Writes the decimal rendering of v into buf; returns its length.
int itoa(char *buf, int v) {
  char tmp[24];
  int i;
  int j;
  int neg;
  neg = 0;
  i = 0;
  if (v < 0) {
    neg = 1;
    v = -v;
  }
  if (v == 0) {
    tmp[i] = '0';
    i = i + 1;
  }
  while (v > 0) {
    tmp[i] = '0' + v % 10;
    i = i + 1;
    v = v / 10;
  }
  if (neg) {
    tmp[i] = '-';
    i = i + 1;
  }
  j = 0;
  while (i > 0) {
    i = i - 1;
    buf[j] = tmp[i];
    j = j + 1;
  }
  buf[j] = 0;
  return j;
}

// Hexadecimal rendering (lowercase, no 0x prefix); returns length.
int uitoa_hex(char *buf, int v) {
  char tmp[20];
  int i;
  int j;
  int d;
  i = 0;
  if (v == 0) {
    tmp[i] = '0';
    i = i + 1;
  }
  while (v) {
    d = v & 15;
    if (d < 10) {
      tmp[i] = '0' + d;
    } else {
      tmp[i] = 'a' + d - 10;
    }
    i = i + 1;
    v = (v >> 4) & 1152921504606846975;  // logical shift: clear sign bits
  }
  j = 0;
  while (i > 0) {
    i = i - 1;
    buf[j] = tmp[i];
    j = j + 1;
  }
  buf[j] = 0;
  return j;
}

int puts(char *s) { return console_write(s, strlen(s)); }

int print_int(int v) {
  char buf[24];
  int n;
  n = itoa(buf, v);
  return console_write(buf, n);
}

// ---------------- allocator ----------------
// Bump allocator over the guest heap (256 KB upward, below the stack), with
// recycling free list per size class kept deliberately simple: virtine
// heaps are wiped on every reset, so leak-freedom comes from the hypervisor
// cleaning pages, not from the allocator.

int __heap_ptr = 0;

char *malloc(int n) {
  char *p;
  if (__heap_ptr == 0) {
    __heap_ptr = 262144;
  }
  n = (n + 15) & ~15;
  p = __heap_ptr;
  __heap_ptr = __heap_ptr + n;
  return p;
}

int free(char *p) {
  // Reclamation is wholesale on virtine reset (pool clean); see above.
  return 0;
}
// ======================= end vlibc =========================
)vlibc";
  return kSource;
}

}  // namespace vrt
