#include "src/vrt/env.h"

#include <sstream>

#include "src/isa/assembler.h"
#include "src/wasp/abi.h"

namespace vrt {
namespace {

// GDT blobs + descriptors shared by the protected/long stubs.  The entries
// mirror real x86 flat code/data descriptors; the machine checks only that a
// GDT was loaded, but keeping authentic bytes preserves the image layout a
// real boot stub would carry.
constexpr char kGdtData[] = R"asm(
.align 8
gdt32:
  .quad 0
  .quad 0x00cf9a000000ffff    ; flat 32-bit code
  .quad 0x00cf92000000ffff    ; flat data
gdt32_end:
gdt_desc32:
  .word gdt32_end-gdt32-1
  .quad gdt32
gdt64:
  .quad 0
  .quad 0x00af9a000000ffff    ; flat 64-bit code
  .quad 0x00cf92000000ffff    ; flat data
gdt64_end:
gdt_desc64:
  .word gdt64_end-gdt64-1
  .quad gdt64
)asm";

// Shared CRT: optional snapshot point, argument unmarshalling, call, result
// store, halt.  Uses only word-sized operations so the same code runs in
// any final mode.
constexpr char kCrt[] = R"asm(
crt_begin:
  mov r8, BOOTINFO
  ld64 r9, [r8+8]             ; boot flags
  and r9, 1                   ; bit 0: snapshot requested
  je crt_nosnap
  mov r0, 0
  out HC_SNAPSHOT, r0         ; --- snapshot point: restores resume here ---
crt_nosnap:
  mov r8, 0
  ldw r9, [r8+WORD]           ; argc
crt_argloop:
  cmp r9, 0
  je crt_argdone
  sub r9, 1
  mov r10, r9
  mov r11, WORD
  mul r10, r11
  add r10, WORD+WORD
  ldw r11, [r10+0]            ; arg[r9]
  push r11                    ; pushed right-to-left
  jmp crt_argloop
crt_argdone:
  call virtine_main
  mov r8, 0
  stw [r8+0], r0              ; return value -> argument-page word 0
  hlt
)asm";

std::string Real16Stub() {
  return R"asm(
start:
  jmp crt_begin
)asm";
}

std::string Prot32Stub() {
  return std::string(R"asm(
start:
  mov r0, gdt_desc32
  lgdt r0
  mov r1, 1                   ; CR0.PE
  wrcr 0, r1
  ljmp prot32, pm_entry
)asm") + kGdtData + R"asm(
pm_entry:
  mov r8, BOOTINFO
  ld64 sp, [r8+0]             ; stack top = guest memory size
  jmp crt_begin
)asm";
}

std::string Long64Stub() {
  return std::string(R"asm(
start:
  mov r0, gdt_desc32
  lgdt r0                     ; Table 1: "Load 32-bit GDT"
  mov r1, 1
  wrcr 0, r1                  ; Table 1: "Protected transition"
  ljmp prot32, pm_entry       ; Table 1: "Jump to 32-bit"
)asm") + kGdtData + R"asm(
pm_entry:
  mov r0, gdt_desc64
  lgdt r0                     ; Table 1: "Long transition (lgdt)"
  ; Identity-map the first 1 GB with 2 MB pages: PML4 @ 0x1000,
  ; PDPT @ 0x2000, PD @ 0x3000 (512 entries).  These are real page-table
  ; stores the machine walks later; Table 1's "Paging identity mapping"
  ; emerges from this loop plus EPT construction at CR0.PG.
  mov r2, 0x1000
  mov r3, 0x2003              ; PDPT | present | write
  st64 [r2+0], r3
  mov r2, 0x2000
  mov r3, 0x3003              ; PD | present | write
  st64 [r2+0], r3
  mov r2, 0x3000
  mov r4, 0
  mov r5, 0x83                ; present | write | 2 MB page
pd_loop:
  st64 [r2+0], r5
  add r2, 8
  add r5, 0x200000
  add r4, 1
  cmp r4, 512
  jl pd_loop
  mov r1, 0x20                ; CR4.PAE
  wrcr 4, r1
  mov r1, 0x100               ; EFER.LME
  wrcr 8, r1
  mov r1, 0x1000              ; CR3 -> PML4
  wrcr 3, r1
  mov r1, 0x80000001          ; CR0.PG | CR0.PE
  wrcr 0, r1
  ljmp long64, lm_entry       ; Table 1: "Jump to 64-bit"
lm_entry:
  mov r8, BOOTINFO
  ld64 sp, [r8+0]
  jmp crt_begin
)asm";
}

}  // namespace

const char* EnvName(Env env) {
  switch (env) {
    case Env::kReal16:
      return "real16";
    case Env::kProt32:
      return "prot32";
    case Env::kLong64:
      return "long64";
  }
  return "?";
}

visa::Mode FinalMode(Env env) {
  switch (env) {
    case Env::kReal16:
      return visa::Mode::kReal16;
    case Env::kProt32:
      return visa::Mode::kProt32;
    case Env::kLong64:
      return visa::Mode::kLong64;
  }
  return visa::Mode::kLong64;
}

int WordBytes(Env env) { return visa::WordBytes(FinalMode(env)); }

std::string AsmPrelude(Env env) {
  std::ostringstream os;
  os << ".org 0x" << std::hex << wasp::kImageLoadAddr << std::dec << "\n";
  os << ".equ WORD, " << WordBytes(env) << "\n";
  os << ".equ BOOTINFO, " << wasp::kBootInfoAddr << "\n";
  os << ".equ HC_EXIT, " << wasp::kHcExit << "\n";
  os << ".equ HC_CONSOLE, " << wasp::kHcConsole << "\n";
  os << ".equ HC_SNAPSHOT, " << wasp::kHcSnapshot << "\n";
  os << ".equ HC_GET_DATA, " << wasp::kHcGetData << "\n";
  os << ".equ HC_RETURN_DATA, " << wasp::kHcReturnData << "\n";
  os << ".equ HC_OPEN, " << wasp::kHcOpen << "\n";
  os << ".equ HC_READ, " << wasp::kHcRead << "\n";
  os << ".equ HC_WRITE, " << wasp::kHcWrite << "\n";
  os << ".equ HC_CLOSE, " << wasp::kHcClose << "\n";
  os << ".equ HC_STAT, " << wasp::kHcStat << "\n";
  os << ".equ HC_SEND, " << wasp::kHcSend << "\n";
  os << ".equ HC_RECV, " << wasp::kHcRecv << "\n";
  return os.str();
}

vbase::Result<visa::Image> BuildImage(Env env, const std::string& user_source) {
  std::string source = AsmPrelude(env);
  switch (env) {
    case Env::kReal16:
      source += Real16Stub();
      break;
    case Env::kProt32:
      source += Prot32Stub();
      break;
    case Env::kLong64:
      source += Long64Stub();
      break;
  }
  source += kCrt;
  source += user_source;
  return visa::Assemble(source);
}

vbase::Result<visa::Image> BuildRawImage(const std::string& source) {
  return visa::Assemble(AsmPrelude(Env::kLong64) + source);
}

}  // namespace vrt
