// Lightweight error handling for the virtines codebase.
//
// Systems code in this repository does not throw exceptions on expected
// failure paths; fallible operations return `vbase::Status` or
// `vbase::Result<T>` (an expected-like value-or-status union).  This mirrors
// the style used by OS codebases (Fuchsia's zx_status_t, absl::Status).
#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace vbase {

// Error categories.  Kept deliberately small; detail goes in the message.
enum class Code : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kPermissionDenied,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kAborted,
};

// Returns a stable human-readable name for an error code.
const char* CodeName(Code code);

// A status: either OK or an error code plus a message.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;
  Status(Code code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Code code_ = Code::kOk;
  std::string message_;
};

// Convenience constructors, e.g. `return vbase::InvalidArgument("bad reg");`.
Status InvalidArgument(std::string msg);
Status NotFound(std::string msg);
Status OutOfRange(std::string msg);
Status FailedPrecondition(std::string msg);
Status PermissionDenied(std::string msg);
Status Unimplemented(std::string msg);
Status Internal(std::string msg);
Status ResourceExhausted(std::string msg);
Status Aborted(std::string msg);

// Value-or-Status.  `Result<T>` holds either a `T` or a non-OK `Status`.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : var_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : var_(std::move(status)) {}   // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(var_); }

  // Requires ok().
  T& value() & { return std::get<T>(var_); }
  const T& value() const& { return std::get<T>(var_); }
  T&& value() && { return std::get<T>(std::move(var_)); }

  // Requires !ok() for a meaningful code; returns OK status when ok().
  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(var_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> var_;
};

}  // namespace vbase

// Propagates errors: evaluates `expr` (a Status); returns it from the current
// function if not OK.
#define VB_RETURN_IF_ERROR(expr)          \
  do {                                    \
    ::vbase::Status vb_status__ = (expr); \
    if (!vb_status__.ok()) {              \
      return vb_status__;                 \
    }                                     \
  } while (0)

// Assigns the value of a Result to `lhs`, or returns its status on error.
#define VB_ASSIGN_OR_RETURN(lhs, expr)  \
  auto vb_result__##__LINE__ = (expr);  \
  if (!vb_result__##__LINE__.ok()) {    \
    return vb_result__##__LINE__.status(); \
  }                                     \
  lhs = std::move(vb_result__##__LINE__).value()

#endif  // SRC_BASE_STATUS_H_
