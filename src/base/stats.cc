#include "src/base/stats.h"

#include <algorithm>
#include <cmath>

namespace vbase {

double Quantile(std::vector<double> samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  if (q <= 0.0) {
    return samples.front();
  }
  if (q >= 1.0) {
    return samples.back();
  }
  const double pos = q * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

Summary Summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) {
    return s;
  }
  s.count = samples.size();
  double sum = 0.0;
  s.min = samples[0];
  s.max = samples[0];
  for (double v : samples) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(samples.size());
  double sq = 0.0;
  for (double v : samples) {
    sq += (v - s.mean) * (v - s.mean);
  }
  s.stddev = samples.size() > 1
                 ? std::sqrt(sq / static_cast<double>(samples.size() - 1))
                 : 0.0;
  s.p50 = Quantile(samples, 0.50);
  s.p90 = Quantile(samples, 0.90);
  s.p99 = Quantile(samples, 0.99);
  return s;
}

std::vector<double> TukeyFilter(const std::vector<double>& samples) {
  if (samples.size() < 4) {
    return samples;
  }
  const double q25 = Quantile(samples, 0.25);
  const double q75 = Quantile(samples, 0.75);
  const double iqr = q75 - q25;
  const double lo = q25 - 1.5 * iqr;
  const double hi = q75 + 1.5 * iqr;
  std::vector<double> out;
  out.reserve(samples.size());
  for (double v : samples) {
    if (v >= lo && v <= hi) {
      out.push_back(v);
    }
  }
  return out;
}

double HarmonicMean(const std::vector<double>& samples) {
  if (samples.empty()) {
    return 0.0;
  }
  double denom = 0.0;
  for (double v : samples) {
    if (v <= 0.0) {
      return 0.0;
    }
    denom += 1.0 / v;
  }
  return static_cast<double>(samples.size()) / denom;
}

}  // namespace vbase
