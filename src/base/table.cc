#include "src/base/table.h"

#include <cstdint>
#include <cstdio>
#include <sstream>

namespace vbase {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::Render() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << cell;
      if (i + 1 < widths.size()) {
        os << std::string(widths[i] - cell.size() + 2, ' ');
      }
    }
    os << "\n";
  };
  emit_row(header_);
  std::vector<std::string> sep;
  sep.reserve(header_.size());
  for (size_t w : widths) {
    sep.push_back(std::string(w, '-'));
  }
  emit_row(sep);
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

void Table::Print() const { std::fputs(Render().c_str(), stdout); }

std::string Fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string HumanBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= (1ULL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= (1ULL << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", static_cast<double>(bytes) / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace vbase
