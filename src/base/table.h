// Console table printer used by the benchmark binaries so every table/figure
// reproduction prints aligned, diffable rows.
#ifndef SRC_BASE_TABLE_H_
#define SRC_BASE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vbase {

// Collects rows of string cells and renders them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends one row; cell count may be <= header size.
  void AddRow(std::vector<std::string> cells);

  // Renders with a header separator, e.g.
  //   name        cycles    usec
  //   ---------   ------    ----
  //   vmrun       4500      1.67
  std::string Render() const;

  // Renders to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` fraction digits.
std::string Fmt(double value, int digits = 2);

// Formats byte counts human-readably ("16 KB", "2.0 MB").
std::string HumanBytes(uint64_t bytes);

}  // namespace vbase

#endif  // SRC_BASE_TABLE_H_
