// Minimal leveled logging plus CHECK-style assertions.
//
// Logging is intentionally tiny: benches and tests must stay quiet by
// default, so the default level is kWarn.
#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace vbase {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

// Sets/gets the global log threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Internal sink; use the VB_LOG/VB_CHECK macros below.
void LogMessage(LogLevel level, const char* file, int line, const std::string& msg);

// Aborts the process after logging; used by VB_CHECK on failure.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);

}  // namespace vbase

#define VB_LOG(level, msg)                                                               \
  do {                                                                                   \
    if (static_cast<int>(::vbase::LogLevel::level) >=                                    \
        static_cast<int>(::vbase::GetLogLevel())) {                                      \
      std::ostringstream vb_os__;                                                        \
      vb_os__ << msg; /* NOLINT */                                                       \
      ::vbase::LogMessage(::vbase::LogLevel::level, __FILE__, __LINE__, vb_os__.str());  \
    }                                                                                    \
  } while (0)

// Hard invariant check: aborts with a message when `cond` is false.  Used for
// programmer errors only; recoverable failures return vbase::Status instead.
#define VB_CHECK(cond, msg)                                   \
  do {                                                        \
    if (!(cond)) {                                            \
      std::ostringstream vb_os__;                             \
      vb_os__ << msg; /* NOLINT */                            \
      ::vbase::CheckFailed(__FILE__, __LINE__, #cond, vb_os__.str()); \
    }                                                         \
  } while (0)

#endif  // SRC_BASE_LOG_H_
