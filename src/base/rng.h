// Deterministic pseudo-random number generation (SplitMix64).  Benchmarks and
// property tests seed explicitly so runs are reproducible.
#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstdint>

namespace vbase {

// SplitMix64: tiny, fast, well-distributed; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Next 64 random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound).  bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

}  // namespace vbase

#endif  // SRC_BASE_RNG_H_
