#include "src/base/status.h"

namespace vbase {

const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Code::kNotFound:
      return "NOT_FOUND";
    case Code::kOutOfRange:
      return "OUT_OF_RANGE";
    case Code::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case Code::kPermissionDenied:
      return "PERMISSION_DENIED";
    case Code::kUnimplemented:
      return "UNIMPLEMENTED";
    case Code::kInternal:
      return "INTERNAL";
    case Code::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case Code::kAborted:
      return "ABORTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgument(std::string msg) { return Status(Code::kInvalidArgument, std::move(msg)); }
Status NotFound(std::string msg) { return Status(Code::kNotFound, std::move(msg)); }
Status OutOfRange(std::string msg) { return Status(Code::kOutOfRange, std::move(msg)); }
Status FailedPrecondition(std::string msg) {
  return Status(Code::kFailedPrecondition, std::move(msg));
}
Status PermissionDenied(std::string msg) { return Status(Code::kPermissionDenied, std::move(msg)); }
Status Unimplemented(std::string msg) { return Status(Code::kUnimplemented, std::move(msg)); }
Status Internal(std::string msg) { return Status(Code::kInternal, std::move(msg)); }
Status ResourceExhausted(std::string msg) {
  return Status(Code::kResourceExhausted, std::move(msg));
}
Status Aborted(std::string msg) { return Status(Code::kAborted, std::move(msg)); }

}  // namespace vbase
