// Wall-clock timing helpers and the modeled-cycle <-> time conversion used
// throughout the benchmarks.
//
// The paper reports most results in cycles measured with rdtsc on "tinker"
// (AMD EPYC 7281 @ 2.69 GHz).  Our emulated machine counts *modeled* guest
// cycles; to present them in familiar units we convert at the tinker clock
// rate.  Host-side work (allocation, zeroing, memcpy, dispatch) is measured
// with a real monotonic clock.
#ifndef SRC_BASE_CLOCK_H_
#define SRC_BASE_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace vbase {

// Reference clock rate for converting modeled cycles to seconds (tinker).
inline constexpr double kReferenceGhz = 2.69;

// Converts modeled cycles to microseconds at the reference clock rate.
inline double CyclesToMicros(uint64_t cycles) {
  return static_cast<double>(cycles) / (kReferenceGhz * 1e3);
}

// Converts microseconds to modeled cycles at the reference clock rate.
inline uint64_t MicrosToCycles(double micros) {
  return static_cast<uint64_t>(micros * kReferenceGhz * 1e3);
}

// Returns a monotonic timestamp in nanoseconds.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Scoped stopwatch over the host monotonic clock.
class WallTimer {
 public:
  WallTimer() : start_(NowNanos()) {}

  void Reset() { start_ = NowNanos(); }

  uint64_t ElapsedNanos() const { return NowNanos() - start_; }
  double ElapsedMicros() const { return static_cast<double>(ElapsedNanos()) / 1e3; }

 private:
  uint64_t start_;
};

}  // namespace vbase

#endif  // SRC_BASE_CLOCK_H_
