// Sample statistics used by the benchmark harnesses: mean/stddev/min/max,
// percentiles, and the Tukey outlier filter the paper applies in Section 4.2
// (footnote 3): samples outside [q25 - 1.5*IQR, q75 + 1.5*IQR] are dropped.
#ifndef SRC_BASE_STATS_H_
#define SRC_BASE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vbase {

// Summary statistics over a sample set.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

// Computes summary statistics.  Empty input yields a zeroed Summary.
Summary Summarize(const std::vector<double>& samples);

// Returns the q-th quantile (0 <= q <= 1) by linear interpolation on the
// sorted sample.  Empty input returns 0.
double Quantile(std::vector<double> samples, double q);

// Applies Tukey's method: removes samples outside
// [q25 - 1.5*IQR, q75 + 1.5*IQR].  Matches the paper's outlier handling.
std::vector<double> TukeyFilter(const std::vector<double>& samples);

// Harmonic mean (the paper reports harmonic-mean throughput in Figure 13b).
// Non-positive samples are rejected by returning 0.
double HarmonicMean(const std::vector<double>& samples);

}  // namespace vbase

#endif  // SRC_BASE_STATS_H_
