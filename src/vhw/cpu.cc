#include "src/vhw/cpu.h"

#include <cstring>

namespace vhw {

using visa::Cond;
using visa::Mode;
using visa::Op;

const char* BootEventName(BootEvent event) {
  switch (event) {
    case BootEvent::kFirstInsn:
      return "first_insn";
    case BootEvent::kLgdtReal:
      return "lgdt_32bit_gdt";
    case BootEvent::kCr0PeSet:
      return "protected_transition";
    case BootEvent::kJump32:
      return "jump_to_32bit";
    case BootEvent::kLgdtProt:
      return "long_transition_lgdt";
    case BootEvent::kEferLmeSet:
      return "efer_lme";
    case BootEvent::kCr0PgSet:
      return "paging_identity_map";
    case BootEvent::kJump64:
      return "jump_to_64bit";
    case BootEvent::kHlt:
      return "hlt";
  }
  return "?";
}

Cpu::Cpu(GuestMemory* mem, const CostModel& cost) : mem_(mem), cost_(cost) { FlushTlb(); }

void Cpu::Reset(uint64_t entry) {
  st_ = ArchState{};
  st_.rip = entry;
  cycles_ = 0;
  insns_ = 0;
  io_exits_ = 0;
  first_insn_pending_ = true;
  pending_entry_charge_ = false;
  fault_.clear();
  injected_fault_.clear();
  milestones_.clear();
  FlushTlb();
}

void Cpu::FlushTlb() {
  for (TlbEntry& e : tlb_) {
    e = TlbEntry{};
  }
}

bool Cpu::Walk(uint64_t va, uint64_t* pa) {
  // Software 4-level walk (PML4 -> PDPT -> PD [-> PT]); supports 4 KB pages
  // and 2 MB large pages (PS at the PD level), which is what the paper's
  // identity-map boot stub uses.
  const uint64_t kAddrMask = 0x000FFFFFFFFFF000ULL;
  auto read_entry = [&](uint64_t table, uint64_t idx, uint64_t* out) {
    const uint64_t addr = (table & kAddrMask) + idx * 8;
    if (!mem_->Contains(addr, 8)) {
      fault_ = "page-walk read out of physical bounds";
      return false;
    }
    *out = mem_->LoadRaw<uint64_t>(addr);
    return true;
  };
  uint64_t pml4e;
  if (!read_entry(st_.cr3, (va >> 39) & 511, &pml4e)) {
    return false;
  }
  if ((pml4e & visa::kPtePresent) == 0) {
    fault_ = "PML4E not present";
    return false;
  }
  uint64_t pdpte;
  if (!read_entry(pml4e, (va >> 30) & 511, &pdpte)) {
    return false;
  }
  if ((pdpte & visa::kPtePresent) == 0) {
    fault_ = "PDPTE not present";
    return false;
  }
  if ((pdpte & visa::kPteLarge) != 0) {
    fault_ = "1 GB pages not supported";
    return false;
  }
  uint64_t pde;
  if (!read_entry(pdpte, (va >> 21) & 511, &pde)) {
    return false;
  }
  if ((pde & visa::kPtePresent) == 0) {
    fault_ = "PDE not present";
    return false;
  }
  uint64_t page;  // 4 KB frame containing va
  if ((pde & visa::kPteLarge) != 0) {
    const uint64_t base = pde & kAddrMask & ~(kRegionSize - 1);
    page = base + (((va >> kPageBits) & 511) << kPageBits);
  } else {
    uint64_t pte;
    if (!read_entry(pde, (va >> 12) & 511, &pte)) {
      return false;
    }
    if ((pte & visa::kPtePresent) == 0) {
      fault_ = "PTE not present";
      return false;
    }
    page = pte & kAddrMask;
  }
  cycles_ += cost_.tlb_miss_walk;
  TlbEntry& e = tlb_[(va >> kPageBits) & (kTlbEntries - 1)];
  e.vpn = va >> kPageBits;
  e.page = page;
  *pa = page + (va & (kPageSize - 1));
  return true;
}

bool Cpu::TranslateInternal(uint64_t va, uint64_t* pa) {
  if (st_.mode != Mode::kLong64) {
    // Paging off: physical == virtual (width-masked by the caller's
    // effective-address computation).
    *pa = va;
  } else {
    TlbEntry& e = tlb_[(va >> kPageBits) & (kTlbEntries - 1)];
    if (e.vpn == (va >> kPageBits)) {
      *pa = e.page + (va & (kPageSize - 1));
    } else if (!Walk(va, pa)) {
      return false;
    }
  }
  if (*pa >= mem_->size()) {
    fault_ = "physical address out of bounds";
    return false;
  }
  return true;
}

vbase::Result<uint64_t> Cpu::Translate(uint64_t va) {
  uint64_t pa = 0;
  if (!TranslateInternal(va, &pa)) {
    std::string f = fault_;
    fault_.clear();
    return vbase::OutOfRange("translate(" + std::to_string(va) + "): " + f);
  }
  return pa;
}

bool Cpu::LoadVa(uint64_t va, int bytes, bool sign, uint64_t* out) {
  uint64_t pa = 0;
  if (!TranslateInternal(va, &pa)) {
    return false;
  }
  uint64_t v = 0;
  if ((pa & (kPageSize - 1)) + static_cast<uint64_t>(bytes) <= kPageSize &&
      mem_->Contains(pa, static_cast<uint64_t>(bytes))) {
    switch (bytes) {
      case 1: v = mem_->LoadRaw<uint8_t>(pa); break;
      case 2: v = mem_->LoadRaw<uint16_t>(pa); break;
      case 4: v = mem_->LoadRaw<uint32_t>(pa); break;
      case 8: v = mem_->LoadRaw<uint64_t>(pa); break;
      default: fault_ = "bad load size"; return false;
    }
  } else {
    // Page-crossing access: translate byte by byte.
    for (int i = 0; i < bytes; ++i) {
      uint64_t bpa = 0;
      if (!TranslateInternal(va + static_cast<uint64_t>(i), &bpa)) {
        return false;
      }
      v |= static_cast<uint64_t>(mem_->LoadRaw<uint8_t>(bpa)) << (8 * i);
    }
  }
  if (sign && bytes < 8) {
    const int shift = 64 - 8 * bytes;
    v = static_cast<uint64_t>(static_cast<int64_t>(v << shift) >> shift);
  }
  ChargeMem(pa);
  *out = v;
  return true;
}

bool Cpu::StoreVa(uint64_t va, int bytes, uint64_t value) {
  uint64_t pa = 0;
  if (!TranslateInternal(va, &pa)) {
    return false;
  }
  if ((pa & (kPageSize - 1)) + static_cast<uint64_t>(bytes) <= kPageSize &&
      mem_->Contains(pa, static_cast<uint64_t>(bytes))) {
    switch (bytes) {
      case 1: mem_->StoreRaw<uint8_t>(pa, static_cast<uint8_t>(value)); break;
      case 2: mem_->StoreRaw<uint16_t>(pa, static_cast<uint16_t>(value)); break;
      case 4: mem_->StoreRaw<uint32_t>(pa, static_cast<uint32_t>(value)); break;
      case 8: mem_->StoreRaw<uint64_t>(pa, value); break;
      default: fault_ = "bad store size"; return false;
    }
  } else {
    for (int i = 0; i < bytes; ++i) {
      uint64_t bpa = 0;
      if (!TranslateInternal(va + static_cast<uint64_t>(i), &bpa)) {
        return false;
      }
      mem_->StoreRaw<uint8_t>(bpa, static_cast<uint8_t>(value >> (8 * i)));
    }
  }
  ChargeMem(pa);
  return true;
}

void Cpu::SetFlagsLogic(uint64_t result) {
  const uint64_t mask = WidthMask();
  const int bits = WordSize() * 8;
  const uint64_t r = result & mask;
  st_.zf = r == 0;
  st_.sf = ((r >> (bits - 1)) & 1) != 0;
  st_.cf = false;
  st_.of = false;
}

void Cpu::SetFlagsAddSub(uint64_t a, uint64_t b, uint64_t result, bool is_sub) {
  const uint64_t mask = WidthMask();
  const int bits = WordSize() * 8;
  const uint64_t am = a & mask;
  const uint64_t bm = b & mask;
  const uint64_t r = result & mask;
  st_.zf = r == 0;
  st_.sf = ((r >> (bits - 1)) & 1) != 0;
  const bool sa = ((am >> (bits - 1)) & 1) != 0;
  const bool sb = ((bm >> (bits - 1)) & 1) != 0;
  const bool sr = ((r >> (bits - 1)) & 1) != 0;
  if (is_sub) {
    st_.cf = am < bm;
    st_.of = (sa != sb) && (sr != sa);
  } else {
    // Carry for addition: unsigned overflow at the mode width.  am + bm
    // cannot overflow uint64 here unless bits == 64, where wraparound makes
    // the `< am` comparison correct on its own.
    st_.cf = bits == 64 ? r < am : (am + bm) > mask;
    st_.of = (sa == sb) && (sr != sa);
  }
}

bool Cpu::EvalCond(Cond cc) const {
  switch (cc) {
    case Cond::kEq:
      return st_.zf;
    case Cond::kNe:
      return !st_.zf;
    case Cond::kLt:
      return st_.sf != st_.of;
    case Cond::kLe:
      return st_.zf || st_.sf != st_.of;
    case Cond::kGt:
      return !st_.zf && st_.sf == st_.of;
    case Cond::kGe:
      return st_.sf == st_.of;
    case Cond::kB:
      return st_.cf;
    case Cond::kBe:
      return st_.cf || st_.zf;
    case Cond::kA:
      return !st_.cf && !st_.zf;
    case Cond::kAe:
      return !st_.cf;
  }
  return false;
}

bool Cpu::DoLgdt(uint64_t va) {
  uint64_t limit = 0;
  uint64_t base = 0;
  if (!LoadVa(va, 2, false, &limit) || !LoadVa(va + 2, 8, false, &base)) {
    return false;
  }
  st_.gdtr_limit = static_cast<uint16_t>(limit);
  st_.gdtr_base = base;
  st_.gdt_loaded = true;
  if (st_.mode == Mode::kReal16) {
    cycles_ += cost_.lgdt_real;
    LogEvent(BootEvent::kLgdtReal);
  } else {
    cycles_ += cost_.lgdt_prot;
    LogEvent(BootEvent::kLgdtProt);
  }
  return true;
}

bool Cpu::DoWrcr(uint8_t cr, uint64_t value) {
  switch (cr) {
    case visa::kCr0: {
      const uint64_t old = st_.cr0;
      const bool pe_rising = (value & visa::kCr0Pe) != 0 && (old & visa::kCr0Pe) == 0;
      const bool pg_rising = (value & visa::kCr0Pg) != 0 && (old & visa::kCr0Pg) == 0;
      const bool pg_falling = (value & visa::kCr0Pg) == 0 && (old & visa::kCr0Pg) != 0;
      if (pe_rising && !st_.gdt_loaded) {
        fault_ = "CR0.PE set without a loaded GDT";
        return false;
      }
      if ((value & visa::kCr0Pg) != 0 && (value & visa::kCr0Pe) == 0) {
        fault_ = "CR0.PG requires CR0.PE";
        return false;
      }
      if (pg_falling && st_.mode == Mode::kLong64) {
        fault_ = "cannot clear CR0.PG in long mode";
        return false;
      }
      if (pg_rising) {
        if ((st_.efer & visa::kEferLme) == 0) {
          fault_ = "only long-mode (PAE+LME) paging is modeled";
          return false;
        }
        if ((st_.cr4 & visa::kCr4Pae) == 0) {
          fault_ = "CR0.PG with EFER.LME requires CR4.PAE";
          return false;
        }
        // Validate the root and price EPT construction for every present
        // mapping (the dominant "paging identity mapping" cost in Table 1).
        const uint64_t kAddrMask = 0x000FFFFFFFFFF000ULL;
        uint64_t mappings = 0;
        const uint64_t pml4 = st_.cr3 & kAddrMask;
        if (!mem_->Contains(pml4, 4096)) {
          fault_ = "CR3 points outside guest memory";
          return false;
        }
        for (uint64_t i = 0; i < 512; ++i) {
          const uint64_t pml4e = mem_->LoadRaw<uint64_t>(pml4 + i * 8);
          if ((pml4e & visa::kPtePresent) == 0) {
            continue;
          }
          const uint64_t pdpt = pml4e & kAddrMask;
          if (!mem_->Contains(pdpt, 4096)) {
            continue;
          }
          for (uint64_t j = 0; j < 512; ++j) {
            const uint64_t pdpte = mem_->LoadRaw<uint64_t>(pdpt + j * 8);
            if ((pdpte & visa::kPtePresent) == 0) {
              continue;
            }
            const uint64_t pd = pdpte & kAddrMask;
            if (!mem_->Contains(pd, 4096)) {
              continue;
            }
            for (uint64_t k = 0; k < 512; ++k) {
              const uint64_t pde = mem_->LoadRaw<uint64_t>(pd + k * 8);
              if ((pde & visa::kPtePresent) != 0) {
                ++mappings;
              }
            }
          }
        }
        cycles_ += cost_.pg_enable_base + mappings * cost_.ept_build_per_mapping;
        st_.efer |= visa::kEferLma;
        LogEvent(BootEvent::kCr0PgSet);
      }
      if (pg_falling) {
        st_.efer &= ~visa::kEferLma;
      }
      if (pe_rising) {
        cycles_ += cost_.cr0_pe_set;
        LogEvent(BootEvent::kCr0PeSet);
      }
      st_.cr0 = value;
      if (pg_rising || pg_falling) {
        FlushTlb();
      }
      return true;
    }
    case visa::kCr3:
      st_.cr3 = value & ~0xFFFULL;
      FlushTlb();
      return true;
    case visa::kCr4:
      st_.cr4 = value;
      return true;
    case visa::kCrEfer: {
      const bool lme_rising = (value & visa::kEferLme) != 0 && (st_.efer & visa::kEferLme) == 0;
      if (lme_rising && (st_.cr0 & visa::kCr0Pg) != 0) {
        fault_ = "cannot set EFER.LME while paging is enabled";
        return false;
      }
      // LMA is read-only; preserve it.
      const uint64_t lma = st_.efer & visa::kEferLma;
      st_.efer = (value & ~visa::kEferLma) | lma;
      if (lme_rising) {
        LogEvent(BootEvent::kEferLmeSet);
      }
      return true;
    }
    default:
      fault_ = "write to unsupported control register " + std::to_string(cr);
      return false;
  }
}

bool Cpu::DoLjmp(Mode target) {
  switch (target) {
    case Mode::kReal16:
      if (st_.mode != Mode::kReal16) {
        fault_ = "ljmp real16 only valid before CR0.PE";
        return false;
      }
      return true;
    case Mode::kProt32:
      if (st_.mode != Mode::kReal16) {
        fault_ = "ljmp prot32 must come from real mode";
        return false;
      }
      if ((st_.cr0 & visa::kCr0Pe) == 0 || !st_.gdt_loaded) {
        fault_ = "ljmp prot32 requires CR0.PE and a loaded GDT";
        return false;
      }
      st_.mode = Mode::kProt32;
      cycles_ += cost_.ljmp_to_32;
      LogEvent(BootEvent::kJump32);
      return true;
    case Mode::kLong64:
      if (st_.mode != Mode::kProt32) {
        fault_ = "ljmp long64 must come from protected mode";
        return false;
      }
      if ((st_.efer & visa::kEferLma) == 0) {
        fault_ = "ljmp long64 requires EFER.LMA (PAE+LME+PG)";
        return false;
      }
      st_.mode = Mode::kLong64;
      cycles_ += cost_.ljmp_to_64;
      LogEvent(BootEvent::kJump64);
      return true;
  }
  fault_ = "bad ljmp mode";
  return false;
}

Exit Cpu::Run(uint64_t max_insns) {
  if (pending_entry_charge_) {
    cycles_ += cost_.io_entry;
    pending_entry_charge_ = false;
  }
  if (first_insn_pending_) {
    cycles_ += cost_.first_insn;
    LogEvent(BootEvent::kFirstInsn);
    first_insn_pending_ = false;
  }
  fault_.clear();

  uint64_t last_fetch_vpn = ~0ULL;
  uint64_t last_fetch_page = 0;

  // Fetches `n` bytes of code at `va` into `out`; fast path when the whole
  // access stays within the last-fetched page.
  auto fetch = [&](uint64_t va, int n, uint8_t* out) -> bool {
    const uint64_t off = va & (kPageSize - 1);
    if ((va >> kPageBits) == last_fetch_vpn && off + static_cast<uint64_t>(n) <= kPageSize) {
      std::memcpy(out, mem_->data() + last_fetch_page + off, static_cast<size_t>(n));
      return true;
    }
    for (int i = 0; i < n; ++i) {
      uint64_t pa = 0;
      if (!TranslateInternal(va + static_cast<uint64_t>(i), &pa)) {
        return false;
      }
      const uint64_t vpn = (va + static_cast<uint64_t>(i)) >> kPageBits;
      if (vpn != last_fetch_vpn) {
        last_fetch_vpn = vpn;
        last_fetch_page = pa & ~(kPageSize - 1);
        if (mem_->TouchRegion(pa)) {
          cycles_ += cost_.ept_first_touch;
        }
      }
      out[i] = mem_->LoadRaw<uint8_t>(pa);
    }
    return true;
  };

  auto fault_exit = [&]() {
    Exit e;
    e.kind = ExitKind::kFault;
    e.fault = fault_.empty() ? "unknown fault" : fault_;
    return e;
  };

  // An injected fault (chaos testing) is delivered before the next
  // instruction retires, exactly where a real trap would surface.
  if (!injected_fault_.empty()) {
    fault_ = std::move(injected_fault_);
    injected_fault_.clear();
    return fault_exit();
  }

  for (uint64_t n = 0; n < max_insns; ++n) {
    const uint64_t pc = st_.rip;
    uint8_t code[10];
    if (!fetch(pc, 1, code)) {
      return fault_exit();
    }
    if (code[0] >= static_cast<uint8_t>(Op::kOpCount)) {
      fault_ = "invalid opcode " + std::to_string(code[0]) + " at rip " + std::to_string(pc);
      return fault_exit();
    }
    const Op op = static_cast<Op>(code[0]);
    const int size = visa::InsnSize(op);
    if (size > 1 && !fetch(pc + 1, size - 1, code + 1)) {
      return fault_exit();
    }
    const uint64_t next = pc + static_cast<uint64_t>(size);
    st_.rip = next;
    ++insns_;
    cycles_ += cost_.insn;

    const uint64_t mask = WidthMask();
    auto read_i32 = [&](int at) {
      int32_t v;
      std::memcpy(&v, code + at, 4);
      return static_cast<int64_t>(v);
    };
    auto read_i64 = [&](int at) {
      int64_t v;
      std::memcpy(&v, code + at, 8);
      return v;
    };
    const uint8_t ab = code[1];
    const int ra = ab >> 4;
    const int rb = ab & 0xf;

    switch (op) {
      case Op::kNop:
        break;
      case Op::kHlt: {
        cycles_ += cost_.hlt_exit;
        LogEvent(BootEvent::kHlt);
        Exit e;
        e.kind = ExitKind::kHlt;
        return e;
      }
      case Op::kBrk: {
        Exit e;
        e.kind = ExitKind::kBrk;
        return e;
      }
      case Op::kMovRr:
        st_.regs[ra] = st_.regs[rb] & mask;
        break;
      case Op::kMovRi:
        st_.regs[code[1]] = static_cast<uint64_t>(read_i64(2)) & mask;
        break;

      // --- Loads ---------------------------------------------------------
      case Op::kLd8:
      case Op::kLd8S:
      case Op::kLd16:
      case Op::kLd16S:
      case Op::kLd32:
      case Op::kLd32S:
      case Op::kLd64:
      case Op::kLdW: {
        int bytes;
        bool sign = false;
        switch (op) {
          case Op::kLd8: bytes = 1; break;
          case Op::kLd8S: bytes = 1; sign = true; break;
          case Op::kLd16: bytes = 2; break;
          case Op::kLd16S: bytes = 2; sign = true; break;
          case Op::kLd32: bytes = 4; break;
          case Op::kLd32S: bytes = 4; sign = true; break;
          case Op::kLd64: bytes = 8; break;
          default: bytes = WordSize(); break;
        }
        const uint64_t va = (st_.regs[rb] + static_cast<uint64_t>(read_i32(2))) & mask;
        uint64_t v = 0;
        if (!LoadVa(va, bytes, sign, &v)) {
          return fault_exit();
        }
        st_.regs[ra] = v & mask;
        break;
      }

      // --- Stores --------------------------------------------------------
      case Op::kSt8:
      case Op::kSt16:
      case Op::kSt32:
      case Op::kSt64:
      case Op::kStW: {
        int bytes;
        switch (op) {
          case Op::kSt8: bytes = 1; break;
          case Op::kSt16: bytes = 2; break;
          case Op::kSt32: bytes = 4; break;
          case Op::kSt64: bytes = 8; break;
          default: bytes = WordSize(); break;
        }
        // Store encoding: a = base register, b = source register.
        const uint64_t va = (st_.regs[ra] + static_cast<uint64_t>(read_i32(2))) & mask;
        if (!StoreVa(va, bytes, st_.regs[rb])) {
          return fault_exit();
        }
        break;
      }

      case Op::kLea:
        st_.regs[ra] = (st_.regs[rb] + static_cast<uint64_t>(read_i32(2))) & mask;
        break;

      // --- ALU -----------------------------------------------------------
      case Op::kAddRr:
      case Op::kAddRi: {
        const uint64_t a = st_.regs[ra];
        const uint64_t b = op == Op::kAddRr ? st_.regs[rb]
                                            : static_cast<uint64_t>(read_i32(2));
        const uint64_t r = (a + b) & mask;
        SetFlagsAddSub(a, b, r, /*is_sub=*/false);
        st_.regs[ra] = r;
        break;
      }
      case Op::kSubRr:
      case Op::kSubRi: {
        const uint64_t a = st_.regs[ra];
        const uint64_t b = op == Op::kSubRr ? st_.regs[rb]
                                            : static_cast<uint64_t>(read_i32(2));
        const uint64_t r = (a - b) & mask;
        SetFlagsAddSub(a, b, r, /*is_sub=*/true);
        st_.regs[ra] = r;
        break;
      }
      case Op::kAndRr:
      case Op::kAndRi: {
        const uint64_t b = op == Op::kAndRr ? st_.regs[rb]
                                            : static_cast<uint64_t>(read_i32(2));
        st_.regs[ra] = (st_.regs[ra] & b) & mask;
        SetFlagsLogic(st_.regs[ra]);
        break;
      }
      case Op::kOrRr:
      case Op::kOrRi: {
        const uint64_t b = op == Op::kOrRr ? st_.regs[rb]
                                           : static_cast<uint64_t>(read_i32(2));
        st_.regs[ra] = (st_.regs[ra] | b) & mask;
        SetFlagsLogic(st_.regs[ra]);
        break;
      }
      case Op::kXorRr:
      case Op::kXorRi: {
        const uint64_t b = op == Op::kXorRr ? st_.regs[rb]
                                            : static_cast<uint64_t>(read_i32(2));
        st_.regs[ra] = (st_.regs[ra] ^ b) & mask;
        SetFlagsLogic(st_.regs[ra]);
        break;
      }
      case Op::kShlRr:
      case Op::kShlRi: {
        const uint64_t c = (op == Op::kShlRr ? st_.regs[rb]
                                             : static_cast<uint64_t>(read_i32(2))) &
                           static_cast<uint64_t>(WordSize() * 8 - 1);
        st_.regs[ra] = (st_.regs[ra] << c) & mask;
        SetFlagsLogic(st_.regs[ra]);
        break;
      }
      case Op::kShrRr:
      case Op::kShrRi: {
        const uint64_t c = (op == Op::kShrRr ? st_.regs[rb]
                                             : static_cast<uint64_t>(read_i32(2))) &
                           static_cast<uint64_t>(WordSize() * 8 - 1);
        st_.regs[ra] = ((st_.regs[ra] & mask) >> c) & mask;
        SetFlagsLogic(st_.regs[ra]);
        break;
      }
      case Op::kSarRr:
      case Op::kSarRi: {
        const uint64_t c = (op == Op::kSarRr ? st_.regs[rb]
                                             : static_cast<uint64_t>(read_i32(2))) &
                           static_cast<uint64_t>(WordSize() * 8 - 1);
        const int bits = WordSize() * 8;
        int64_t v = static_cast<int64_t>(st_.regs[ra] << (64 - bits)) >> (64 - bits);
        st_.regs[ra] = static_cast<uint64_t>(v >> c) & mask;
        SetFlagsLogic(st_.regs[ra]);
        break;
      }
      case Op::kMulRr:
        cycles_ += cost_.mul;
        st_.regs[ra] = (st_.regs[ra] * st_.regs[rb]) & mask;
        SetFlagsLogic(st_.regs[ra]);
        break;
      case Op::kImulRr: {
        cycles_ += cost_.mul;
        const int bits = WordSize() * 8;
        auto sext = [&](uint64_t v) {
          return static_cast<int64_t>(v << (64 - bits)) >> (64 - bits);
        };
        st_.regs[ra] =
            static_cast<uint64_t>(sext(st_.regs[ra]) * sext(st_.regs[rb])) & mask;
        SetFlagsLogic(st_.regs[ra]);
        break;
      }
      case Op::kUdivRr:
      case Op::kUmodRr: {
        cycles_ += cost_.div;
        const uint64_t b = st_.regs[rb] & mask;
        if (b == 0) {
          fault_ = "division by zero";
          return fault_exit();
        }
        const uint64_t a = st_.regs[ra] & mask;
        st_.regs[ra] = (op == Op::kUdivRr ? a / b : a % b) & mask;
        SetFlagsLogic(st_.regs[ra]);
        break;
      }
      case Op::kIdivRr:
      case Op::kImodRr: {
        cycles_ += cost_.div;
        const int bits = WordSize() * 8;
        auto sext = [&](uint64_t v) {
          return static_cast<int64_t>(v << (64 - bits)) >> (64 - bits);
        };
        const int64_t b = sext(st_.regs[rb]);
        if (b == 0) {
          fault_ = "division by zero";
          return fault_exit();
        }
        const int64_t a = sext(st_.regs[ra]);
        int64_t r;
        if (b == -1) {
          // Avoid INT_MIN / -1 overflow: x86 faults; we wrap (documented).
          r = op == Op::kIdivRr ? -a : 0;
        } else {
          r = op == Op::kIdivRr ? a / b : a % b;
        }
        st_.regs[ra] = static_cast<uint64_t>(r) & mask;
        SetFlagsLogic(st_.regs[ra]);
        break;
      }
      case Op::kNotR:
        st_.regs[ra] = (~st_.regs[ra]) & mask;
        SetFlagsLogic(st_.regs[ra]);
        break;
      case Op::kNegR:
        st_.regs[ra] = (0 - st_.regs[ra]) & mask;
        SetFlagsLogic(st_.regs[ra]);
        break;
      case Op::kCmpRr:
      case Op::kCmpRi: {
        const uint64_t a = st_.regs[ra];
        const uint64_t b = op == Op::kCmpRr ? st_.regs[rb]
                                            : static_cast<uint64_t>(read_i32(2));
        SetFlagsAddSub(a, b, (a - b) & mask, /*is_sub=*/true);
        break;
      }
      case Op::kTestRr:
        SetFlagsLogic(st_.regs[ra] & st_.regs[rb]);
        break;
      case Op::kCset:
        st_.regs[ra] = EvalCond(static_cast<Cond>(rb)) ? 1 : 0;
        break;

      // --- Control flow ----------------------------------------------------
      case Op::kJmp:
        st_.rip = next + static_cast<uint64_t>(read_i32(1));
        cycles_ += cost_.branch_taken;
        break;
      case Op::kJcc:
        if (EvalCond(static_cast<Cond>(code[1]))) {
          st_.rip = next + static_cast<uint64_t>(read_i32(2));
          cycles_ += cost_.branch_taken;
        }
        break;
      case Op::kCall: {
        const int w = WordSize();
        const uint64_t sp = (st_.regs[visa::kSp] - static_cast<uint64_t>(w)) & mask;
        if (!StoreVa(sp, w, next)) {
          return fault_exit();
        }
        st_.regs[visa::kSp] = sp;
        st_.rip = next + static_cast<uint64_t>(read_i32(1));
        cycles_ += cost_.call_ret;
        break;
      }
      case Op::kCallR: {
        const int w = WordSize();
        const uint64_t sp = (st_.regs[visa::kSp] - static_cast<uint64_t>(w)) & mask;
        if (!StoreVa(sp, w, next)) {
          return fault_exit();
        }
        st_.regs[visa::kSp] = sp;
        st_.rip = st_.regs[ra] & mask;
        cycles_ += cost_.call_ret;
        break;
      }
      case Op::kRet: {
        const int w = WordSize();
        uint64_t ret = 0;
        if (!LoadVa(st_.regs[visa::kSp] & mask, w, false, &ret)) {
          return fault_exit();
        }
        st_.regs[visa::kSp] = (st_.regs[visa::kSp] + static_cast<uint64_t>(w)) & mask;
        st_.rip = ret;
        cycles_ += cost_.call_ret;
        break;
      }
      case Op::kPush: {
        const int w = WordSize();
        const uint64_t sp = (st_.regs[visa::kSp] - static_cast<uint64_t>(w)) & mask;
        if (!StoreVa(sp, w, st_.regs[ra])) {
          return fault_exit();
        }
        st_.regs[visa::kSp] = sp;
        break;
      }
      case Op::kPop: {
        const int w = WordSize();
        uint64_t v = 0;
        if (!LoadVa(st_.regs[visa::kSp] & mask, w, false, &v)) {
          return fault_exit();
        }
        st_.regs[visa::kSp] = (st_.regs[visa::kSp] + static_cast<uint64_t>(w)) & mask;
        st_.regs[ra] = v & mask;
        break;
      }

      // --- I/O (hypercalls) ------------------------------------------------
      case Op::kIn:
      case Op::kOut: {
        uint16_t port;
        std::memcpy(&port, code + 1, 2);
        ++io_exits_;
        cycles_ += cost_.io_exit;
        pending_entry_charge_ = true;
        Exit e;
        e.kind = ExitKind::kIo;
        e.port = port;
        e.is_in = op == Op::kIn;
        e.io_reg = code[3];
        return e;
      }

      case Op::kRdtsc:
        st_.regs[ra] = cycles_ & mask;
        break;

      // --- System ----------------------------------------------------------
      case Op::kLgdt:
        if (!DoLgdt(st_.regs[ra] & mask)) {
          return fault_exit();
        }
        break;
      case Op::kWrcr:
        if (!DoWrcr(static_cast<uint8_t>(ra), st_.regs[rb])) {
          return fault_exit();
        }
        break;
      case Op::kRdcr: {
        uint64_t v = 0;
        switch (rb) {
          case visa::kCr0: v = st_.cr0; break;
          case visa::kCr3: v = st_.cr3; break;
          case visa::kCr4: v = st_.cr4; break;
          case visa::kCrEfer: v = st_.efer; break;
          default:
            fault_ = "read of unsupported control register";
            return fault_exit();
        }
        st_.regs[ra] = v;
        break;
      }
      case Op::kLjmp: {
        const Mode target = static_cast<Mode>(code[1]);
        const uint64_t dest = next + static_cast<uint64_t>(read_i32(2));
        if (!DoLjmp(target)) {
          return fault_exit();
        }
        st_.rip = dest;
        // The mode just changed; drop the fetch fast path.
        last_fetch_vpn = ~0ULL;
        break;
      }
      case Op::kOpCount:
        fault_ = "invalid opcode";
        return fault_exit();
    }
  }
  Exit e;
  e.kind = ExitKind::kInsnLimit;
  return e;
}

}  // namespace vhw
