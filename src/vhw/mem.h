// Guest physical memory with dirty-page, snapshot-epoch, and EPT first-touch
// tracking.
//
// Dirty tracking (4 KB granularity) lets the Wasp pool clean a released
// virtine shell by zeroing only the pages it touched (the paper's
// `vm.clean()`), and lets snapshot restores copy only what changed.
// Epoch tracking is a second, independently resettable dirty bitmap: the
// snapshot engine begins an epoch right after laying a snapshot into a
// shell, so the next restore of the *same* snapshot repairs only the pages
// written since (delta restore) instead of re-copying the whole image.
// EPT first-touch tracking (2 MB granularity) feeds the cost model: the
// first access to a region models a KVM EPT-violation exit; a pooled shell
// that is reused keeps its EPT, which is precisely why reuse is cheap.
#ifndef SRC_VHW_MEM_H_
#define SRC_VHW_MEM_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "src/base/status.h"

namespace vhw {

inline constexpr uint64_t kPageBits = 12;
inline constexpr uint64_t kPageSize = 1ULL << kPageBits;  // 4 KB
inline constexpr uint64_t kRegionBits = 21;
inline constexpr uint64_t kRegionSize = 1ULL << kRegionBits;  // 2 MB

// An immutable, refcounted page store: the backing a copy-on-write guest
// memory maps instead of copying.  Pages are held as run-length extents
// (first page, page count, byte offset into one contiguous buffer), exactly
// the layout snapshots capture in.  A buffer may be a *delta child*: `parent`
// points at the layer underneath, and a page lookup walks child-to-root so a
// child's page overrides its ancestor's — that chain is how a re-captured
// snapshot shares its parent's image and pays only for the drift.
//
// Buffers are shared via shared_ptr (ExtentBufferRef) and never mutated
// after construction: shells, snapshots, and chains all hold references to
// the same bytes, so one generation's image is resident once no matter how
// many shells map it.  The refcount *is* the lifetime rule — a parent stays
// alive while any child chain references it, even after its own snapshot
// generation retires.
class ExtentBuffer {
 public:
  struct Extent {
    uint64_t first_page = 0;
    uint64_t page_count = 0;
    uint64_t byte_offset = 0;
  };

  std::vector<Extent> extents;  // sorted by first_page, non-overlapping
  std::vector<uint8_t> bytes;   // concatenated extent payloads
  std::shared_ptr<const ExtentBuffer> parent;  // nullptr for a root buffer

  // Pointer to `page` in *this* layer only, or nullptr when not captured
  // here.
  const uint8_t* FindPageLocal(uint64_t page) const;
  // Chain lookup: this layer first, then ancestors (a child's page shadows
  // its parent's).  Returns nullptr when no layer holds the page (it is
  // all-zero in the chained view).
  const uint8_t* FindPage(uint64_t page) const;

  uint64_t byte_size() const { return bytes.size(); }
  uint64_t page_count() const { return bytes.size() >> kPageBits; }
  // Totals across the whole chain.  chain_byte_size is what the chain keeps
  // resident (shadowed parent pages still occupy their parent's buffer);
  // CoveredBytes is the deduplicated view size — their ratio is the chain's
  // delta bloat, the flattening trigger.
  uint64_t chain_byte_size() const;
  uint64_t chain_extent_count() const;
  int chain_depth() const;  // 1 for a parentless buffer
  // One past the highest covered page across the chain.
  uint64_t end_page() const;
  uint64_t CoveredPages() const;
  uint64_t CoveredBytes() const { return CoveredPages() << kPageBits; }
};

using ExtentBufferRef = std::shared_ptr<const ExtentBuffer>;

// Collapses a chain into an equivalent depth-1 buffer: same page view, no
// parent, no shadowed bytes.
ExtentBufferRef FlattenChain(const ExtentBufferRef& chain);

class GuestMemory {
 public:
  // Allocates `size` bytes of zeroed guest-physical memory (rounded up to a
  // whole page).
  explicit GuestMemory(uint64_t size);

  uint64_t size() const { return bytes_.size(); }
  uint8_t* data() { return bytes_.data(); }
  const uint8_t* data() const { return bytes_.data(); }

  // Bounds check helper.
  bool Contains(uint64_t gpa, uint64_t len) const {
    return gpa + len >= gpa && gpa + len <= bytes_.size();
  }

  // Bulk accessors with bounds checks; Write marks dirty pages.
  vbase::Status Read(uint64_t gpa, void* dst, uint64_t len) const;
  vbase::Status Write(uint64_t gpa, const void* src, uint64_t len);

  // Hot-path unchecked accessors for the CPU (caller checked bounds).
  template <typename T>
  T LoadRaw(uint64_t gpa) const {
    T v;
    std::memcpy(&v, bytes_.data() + gpa, sizeof(T));
    return v;
  }
  template <typename T>
  void StoreRaw(uint64_t gpa, T v) {
    std::memcpy(bytes_.data() + gpa, &v, sizeof(T));
    // Interpreter stores cluster heavily (stack, locals): skip the bitmap
    // read-modify-write when this store hits the page the previous store
    // already dirtied.  A straddling store always takes the slow path.
    const uint64_t first = gpa >> kPageBits;
    const uint64_t last = (gpa + sizeof(T) - 1) >> kPageBits;
    if (first == last_dirty_page_ && last == first) {
      return;
    }
    MarkDirty(gpa, sizeof(T));
    last_dirty_page_ = last;
  }

  // --- Dirty tracking ------------------------------------------------------
  void MarkDirty(uint64_t gpa, uint64_t len) {
    const uint64_t first = gpa >> kPageBits;
    const uint64_t last = (gpa + len - 1) >> kPageBits;
    for (uint64_t p = first; p <= last; ++p) {
      dirty_[p >> 6] |= 1ULL << (p & 63);
      epoch_[p >> 6] |= 1ULL << (p & 63);
    }
    if (cow_base_ != nullptr) {
      // COW write-privatization: the first write to a page breaks its share
      // of the mapped base.  Privatized pages are what a parked shell is
      // charged for — everything else stays an uncounted view of the base.
      for (uint64_t p = first; p <= last; ++p) {
        const uint64_t mask = 1ULL << (p & 63);
        if ((cow_private_[p >> 6] & mask) == 0) {
          cow_private_[p >> 6] |= mask;
          ++cow_private_count_;
        }
      }
    }
  }
  bool PageDirty(uint64_t page) const { return (dirty_[page >> 6] >> (page & 63)) & 1; }
  uint64_t NumPages() const { return bytes_.size() >> kPageBits; }
  uint64_t CountDirtyPages() const;
  // Zeroes every dirty page and clears the dirty bitmap (pool Clean()) with
  // a word-granular bitmap scan: 64 clean pages are skipped per iteration.
  // Drops any mapped COW base (a cleaned shell shares nothing).  Returns the
  // number of bytes zeroed.
  uint64_t ZeroDirtyPages();
  void ClearDirty();

  // --- Snapshot epoch ------------------------------------------------------
  // Starts a new epoch: the epoch bitmap forgets all prior writes.  The
  // caller's contract is that memory at this instant matches some reference
  // state (a freshly laid-down snapshot); CollectDirtySince then names
  // exactly the pages that deviate from it.
  void BeginEpoch();
  bool EpochPageDirty(uint64_t page) const {
    return (epoch_[page >> 6] >> (page & 63)) & 1;
  }
  uint64_t CountEpochDirtyPages() const;
  // Pages written since BeginEpoch, in ascending order.
  std::vector<uint64_t> CollectDirtySince() const;

  // --- EPT first-touch model ----------------------------------------------
  // Returns true when this is the first access to the 2 MB region containing
  // `gpa` since the last EPT reset (fresh VM); marks it touched.
  bool TouchRegion(uint64_t gpa) {
    const uint64_t r = gpa >> kRegionBits;
    const uint64_t mask = 1ULL << (r & 63);
    if ((ept_[r >> 6] & mask) != 0) {
      return false;
    }
    ept_[r >> 6] |= mask;
    return true;
  }
  // Drops all EPT mappings (what a freshly created VM context looks like).
  void ResetEpt();

  // --- Copy-on-write backing ----------------------------------------------
  // A COW-backed memory maps a shared, immutable ExtentBuffer chain
  // read-only and privatizes pages on first write (MarkDirty above).  The
  // mapping is a modeled construct, like every cost in this machine: the
  // flat `bytes_` cache materializes the chained view eagerly (uncharged
  // simulator-side copies), while the *accounting* — what a parked shell
  // costs, what a restore must repair — follows the private-page bitmap.
  //
  // Maps `base` into clean (all-zero) memory: materializes every covered
  // page, marks it dirty, and prefaults its EPT region — byte-identical to a
  // full snapshot restore — then starts COW tracking with zero private
  // pages.  The caller charges the modeled cost of the map.
  void MapCowBase(ExtentBufferRef base);
  // Starts COW tracking against `base` when memory already equals the
  // chain's view byte-for-byte: at capture time (memory *is* what was just
  // captured) and at re-capture (the new chain folds in this shell's own
  // drift).  No copies; private pages reset to zero.
  void AdoptCowBase(ExtentBufferRef base);
  // Repairs the privatized pages back to the base view (copy covered pages
  // from the chain, zero uncovered ones) so memory equals the base again.
  // `pages` is the epoch-dirty set — identical to the private set whenever
  // the epoch began at the last map/adopt/repair point.  Clears private
  // bits; dirty/epoch handling matches a delta restore (caller re-begins the
  // epoch).
  void RepairPagesToBase(const std::vector<uint64_t>& pages);
  bool HasCowBase() const { return cow_base_ != nullptr; }
  const ExtentBufferRef& cow_base() const { return cow_base_; }
  uint64_t CowPrivatePages() const { return cow_private_count_; }
  uint64_t CowPrivateBytes() const { return cow_private_count_ << kPageBits; }

 private:
  static constexpr uint64_t kNoPage = ~0ULL;

  std::vector<uint8_t> bytes_;
  std::vector<uint64_t> dirty_;  // 1 bit per 4 KB page, since creation/clean
  std::vector<uint64_t> epoch_;  // 1 bit per 4 KB page, since BeginEpoch
  std::vector<uint64_t> ept_;    // 1 bit per 2 MB region
  // COW state: the mapped base chain (nullptr = plain memory) and the pages
  // written since it was mapped/adopted (allocated lazily on first map).
  // Invariant: a private page's bit is also set in dirty_ and epoch_ — the
  // same MarkDirty sets all three — except across RepairPagesToBase/
  // BeginEpoch boundaries, where private and epoch reset together.
  ExtentBufferRef cow_base_;
  std::vector<uint64_t> cow_private_;  // 1 bit per 4 KB page, since map
  uint64_t cow_private_count_ = 0;
  // Page dirtied by the most recent StoreRaw; invariant: when != kNoPage its
  // bit is set in *both* the dirty and epoch bitmaps (and the COW private
  // bitmap when a base is mapped), so the hot path may skip re-marking it.
  // Cleared whenever any of those bitmaps is cleared.
  uint64_t last_dirty_page_ = kNoPage;
};

}  // namespace vhw

#endif  // SRC_VHW_MEM_H_
