// Guest physical memory with dirty-page, snapshot-epoch, and EPT first-touch
// tracking.
//
// Dirty tracking (4 KB granularity) lets the Wasp pool clean a released
// virtine shell by zeroing only the pages it touched (the paper's
// `vm.clean()`), and lets snapshot restores copy only what changed.
// Epoch tracking is a second, independently resettable dirty bitmap: the
// snapshot engine begins an epoch right after laying a snapshot into a
// shell, so the next restore of the *same* snapshot repairs only the pages
// written since (delta restore) instead of re-copying the whole image.
// EPT first-touch tracking (2 MB granularity) feeds the cost model: the
// first access to a region models a KVM EPT-violation exit; a pooled shell
// that is reused keeps its EPT, which is precisely why reuse is cheap.
#ifndef SRC_VHW_MEM_H_
#define SRC_VHW_MEM_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/base/status.h"

namespace vhw {

inline constexpr uint64_t kPageBits = 12;
inline constexpr uint64_t kPageSize = 1ULL << kPageBits;  // 4 KB
inline constexpr uint64_t kRegionBits = 21;
inline constexpr uint64_t kRegionSize = 1ULL << kRegionBits;  // 2 MB

class GuestMemory {
 public:
  // Allocates `size` bytes of zeroed guest-physical memory (rounded up to a
  // whole page).
  explicit GuestMemory(uint64_t size);

  uint64_t size() const { return bytes_.size(); }
  uint8_t* data() { return bytes_.data(); }
  const uint8_t* data() const { return bytes_.data(); }

  // Bounds check helper.
  bool Contains(uint64_t gpa, uint64_t len) const {
    return gpa + len >= gpa && gpa + len <= bytes_.size();
  }

  // Bulk accessors with bounds checks; Write marks dirty pages.
  vbase::Status Read(uint64_t gpa, void* dst, uint64_t len) const;
  vbase::Status Write(uint64_t gpa, const void* src, uint64_t len);

  // Hot-path unchecked accessors for the CPU (caller checked bounds).
  template <typename T>
  T LoadRaw(uint64_t gpa) const {
    T v;
    std::memcpy(&v, bytes_.data() + gpa, sizeof(T));
    return v;
  }
  template <typename T>
  void StoreRaw(uint64_t gpa, T v) {
    std::memcpy(bytes_.data() + gpa, &v, sizeof(T));
    // Interpreter stores cluster heavily (stack, locals): skip the bitmap
    // read-modify-write when this store hits the page the previous store
    // already dirtied.  A straddling store always takes the slow path.
    const uint64_t first = gpa >> kPageBits;
    const uint64_t last = (gpa + sizeof(T) - 1) >> kPageBits;
    if (first == last_dirty_page_ && last == first) {
      return;
    }
    MarkDirty(gpa, sizeof(T));
    last_dirty_page_ = last;
  }

  // --- Dirty tracking ------------------------------------------------------
  void MarkDirty(uint64_t gpa, uint64_t len) {
    const uint64_t first = gpa >> kPageBits;
    const uint64_t last = (gpa + len - 1) >> kPageBits;
    for (uint64_t p = first; p <= last; ++p) {
      dirty_[p >> 6] |= 1ULL << (p & 63);
      epoch_[p >> 6] |= 1ULL << (p & 63);
    }
  }
  bool PageDirty(uint64_t page) const { return (dirty_[page >> 6] >> (page & 63)) & 1; }
  uint64_t NumPages() const { return bytes_.size() >> kPageBits; }
  uint64_t CountDirtyPages() const;
  // Zeroes every dirty page and clears the dirty bitmap (pool Clean()) with
  // a word-granular bitmap scan: 64 clean pages are skipped per iteration.
  // Returns the number of bytes zeroed.
  uint64_t ZeroDirtyPages();
  void ClearDirty();

  // --- Snapshot epoch ------------------------------------------------------
  // Starts a new epoch: the epoch bitmap forgets all prior writes.  The
  // caller's contract is that memory at this instant matches some reference
  // state (a freshly laid-down snapshot); CollectDirtySince then names
  // exactly the pages that deviate from it.
  void BeginEpoch();
  bool EpochPageDirty(uint64_t page) const {
    return (epoch_[page >> 6] >> (page & 63)) & 1;
  }
  uint64_t CountEpochDirtyPages() const;
  // Pages written since BeginEpoch, in ascending order.
  std::vector<uint64_t> CollectDirtySince() const;

  // --- EPT first-touch model ----------------------------------------------
  // Returns true when this is the first access to the 2 MB region containing
  // `gpa` since the last EPT reset (fresh VM); marks it touched.
  bool TouchRegion(uint64_t gpa) {
    const uint64_t r = gpa >> kRegionBits;
    const uint64_t mask = 1ULL << (r & 63);
    if ((ept_[r >> 6] & mask) != 0) {
      return false;
    }
    ept_[r >> 6] |= mask;
    return true;
  }
  // Drops all EPT mappings (what a freshly created VM context looks like).
  void ResetEpt();

 private:
  static constexpr uint64_t kNoPage = ~0ULL;

  std::vector<uint8_t> bytes_;
  std::vector<uint64_t> dirty_;  // 1 bit per 4 KB page, since creation/clean
  std::vector<uint64_t> epoch_;  // 1 bit per 4 KB page, since BeginEpoch
  std::vector<uint64_t> ept_;    // 1 bit per 2 MB region
  // Page dirtied by the most recent StoreRaw; invariant: when != kNoPage its
  // bit is set in *both* the dirty and epoch bitmaps, so the hot path may
  // skip re-marking it.  Cleared whenever either bitmap is cleared.
  uint64_t last_dirty_page_ = kNoPage;
};

}  // namespace vhw

#endif  // SRC_VHW_MEM_H_
