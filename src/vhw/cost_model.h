// Guest-cycle cost model.
//
// The machine counts "modeled cycles" from the operations the guest actually
// executes.  The constants below are calibrated to the paper's testbed
// ("tinker": AMD EPYC 7281 @ 2.69 GHz, Linux 5.9 KVM) — specifically Table 1
// (boot-component latencies), Figure 2 (context-creation lower bounds) and
// the measured 6.7 GB/s memcpy bandwidth (Section 6.2).  Counts of charged
// events (instructions retired, memory accesses, TLB misses, EPT
// first-touches, page-table entries validated) come from real executed
// behaviour; only the per-event prices are calibration constants.
//
// All prices are in cycles at the 2.69 GHz reference clock
// (vbase::kReferenceGhz); 1 microsecond ~= 2690 cycles.
#ifndef SRC_VHW_COST_MODEL_H_
#define SRC_VHW_COST_MODEL_H_

#include <cstdint>

namespace vhw {

struct CostModel {
  // --- Pipeline ---------------------------------------------------------
  uint32_t insn = 1;            // retired instruction baseline
  uint32_t branch_taken = 1;    // extra on taken branch
  uint32_t call_ret = 2;        // extra on call/ret (return stack)
  uint32_t mul = 3;             // extra on multiply
  uint32_t div = 20;            // extra on divide/modulo

  // --- Memory hierarchy ---------------------------------------------------
  uint32_t mem_access = 3;      // L1-hit load/store
  uint32_t tlb_miss_walk = 24;  // 4-level page walk on TLB miss
  // First access to a 2 MB guest-physical region models a KVM EPT violation
  // exit plus host-side allocation/mapping of the backing page.
  uint32_t ept_first_touch = 1800;

  // --- Boot components (Table 1 calibration) -----------------------------
  uint32_t first_insn = 74;     // "First Instruction": vmentry pipeline fill
  uint32_t lgdt_real = 4118;    // "Load 32-bit GDT (lgdt)" from real mode
  uint32_t lgdt_prot = 681;     // "Long transition (lgdt)" from protected mode
  uint32_t cr0_pe_set = 3217;   // "Protected transition": CR0.PE flip
  uint32_t ljmp_to_32 = 175;    // "Jump to 32-bit (ljmp)"
  uint32_t ljmp_to_64 = 190;    // "Jump to 64-bit (ljmp)"
  // CR0.PG enable: base CR3 validation plus per-present-mapping EPT
  // preparation.  The guest's identity map (512 x 2 MB PDEs for 1 GB)
  // therefore prices the "Paging identity mapping" Table 1 row at
  // ~pg_enable_base + 512 * ept_build_per_mapping + the actual page-table
  // store instructions executed by the boot stub (~28-30 K total).
  uint32_t pg_enable_base = 1500;
  uint32_t ept_build_per_mapping = 42;

  // --- VM exits -----------------------------------------------------------
  // Port-I/O hypercall exits are "doubly expensive due to the ring
  // transitions necessitated by KVM" (Section 6.3): guest->host exit plus
  // host->guest re-entry.
  uint32_t io_exit = 3000;
  uint32_t io_entry = 3000;
  uint32_t hlt_exit = 1000;
};

}  // namespace vhw

#endif  // SRC_VHW_COST_MODEL_H_
