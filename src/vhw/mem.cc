#include "src/vhw/mem.h"

#include <algorithm>

namespace vhw {

GuestMemory::GuestMemory(uint64_t size) {
  const uint64_t rounded = (size + kPageSize - 1) & ~(kPageSize - 1);
  bytes_.assign(rounded, 0);
  dirty_.assign((NumPages() + 63) / 64, 0);
  epoch_.assign(dirty_.size(), 0);
  const uint64_t regions = (rounded + kRegionSize - 1) >> kRegionBits;
  ept_.assign((regions + 63) / 64, 0);
}

vbase::Status GuestMemory::Read(uint64_t gpa, void* dst, uint64_t len) const {
  if (!Contains(gpa, len)) {
    return vbase::OutOfRange("guest read out of bounds");
  }
  std::memcpy(dst, bytes_.data() + gpa, len);
  return vbase::Status::Ok();
}

vbase::Status GuestMemory::Write(uint64_t gpa, const void* src, uint64_t len) {
  if (!Contains(gpa, len)) {
    return vbase::OutOfRange("guest write out of bounds");
  }
  if (len == 0) {
    return vbase::Status::Ok();
  }
  std::memcpy(bytes_.data() + gpa, src, len);
  MarkDirty(gpa, len);
  // Host-side writes prefault the EPT for the touched regions (the
  // hypervisor's image copy populates mappings before the guest runs, so
  // the guest does not eat EPT-violation charges for its own image).
  for (uint64_t r = gpa >> kRegionBits; r <= (gpa + len - 1) >> kRegionBits; ++r) {
    ept_[r >> 6] |= 1ULL << (r & 63);
  }
  return vbase::Status::Ok();
}

uint64_t GuestMemory::CountDirtyPages() const {
  uint64_t n = 0;
  for (uint64_t w : dirty_) {
    n += static_cast<uint64_t>(__builtin_popcountll(w));
  }
  return n;
}

uint64_t GuestMemory::ZeroDirtyPages() {
  // Word-granular scan: a zero word skips 64 clean pages in one compare; set
  // bits are peeled with ctz so work stays proportional to dirty pages.
  uint64_t zeroed = 0;
  for (size_t w = 0; w < dirty_.size(); ++w) {
    uint64_t word = dirty_[w];
    if (word == 0) {
      continue;
    }
    while (word != 0) {
      const uint64_t p = static_cast<uint64_t>(w) * 64 +
                         static_cast<uint64_t>(__builtin_ctzll(word));
      word &= word - 1;
      std::memset(bytes_.data() + (p << kPageBits), 0, kPageSize);
      zeroed += kPageSize;
    }
    dirty_[w] = 0;
    epoch_[w] = 0;  // the epoch bitmap is a subset of the dirty bitmap
  }
  last_dirty_page_ = kNoPage;
  return zeroed;
}

void GuestMemory::ClearDirty() {
  std::fill(dirty_.begin(), dirty_.end(), 0);
  std::fill(epoch_.begin(), epoch_.end(), 0);
  last_dirty_page_ = kNoPage;
}

void GuestMemory::BeginEpoch() {
  std::fill(epoch_.begin(), epoch_.end(), 0);
  last_dirty_page_ = kNoPage;  // its invariant spans both bitmaps
}

uint64_t GuestMemory::CountEpochDirtyPages() const {
  uint64_t n = 0;
  for (uint64_t w : epoch_) {
    n += static_cast<uint64_t>(__builtin_popcountll(w));
  }
  return n;
}

std::vector<uint64_t> GuestMemory::CollectDirtySince() const {
  std::vector<uint64_t> pages;
  for (size_t w = 0; w < epoch_.size(); ++w) {
    uint64_t word = epoch_[w];
    while (word != 0) {
      pages.push_back(static_cast<uint64_t>(w) * 64 +
                      static_cast<uint64_t>(__builtin_ctzll(word)));
      word &= word - 1;
    }
  }
  return pages;
}

void GuestMemory::ResetEpt() { std::fill(ept_.begin(), ept_.end(), 0); }

}  // namespace vhw
