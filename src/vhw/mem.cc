#include "src/vhw/mem.h"

#include <algorithm>

#include "src/base/log.h"

namespace vhw {

const uint8_t* ExtentBuffer::FindPageLocal(uint64_t page) const {
  // Extents are sorted by first_page: binary-search the run containing it.
  auto it = std::upper_bound(
      extents.begin(), extents.end(), page,
      [](uint64_t p, const Extent& e) { return p < e.first_page; });
  if (it == extents.begin()) {
    return nullptr;
  }
  --it;
  if (page >= it->first_page + it->page_count) {
    return nullptr;
  }
  return bytes.data() + it->byte_offset + ((page - it->first_page) << kPageBits);
}

const uint8_t* ExtentBuffer::FindPage(uint64_t page) const {
  for (const ExtentBuffer* layer = this; layer != nullptr; layer = layer->parent.get()) {
    if (const uint8_t* p = layer->FindPageLocal(page)) {
      return p;
    }
  }
  return nullptr;
}

uint64_t ExtentBuffer::chain_byte_size() const {
  uint64_t n = 0;
  for (const ExtentBuffer* layer = this; layer != nullptr; layer = layer->parent.get()) {
    n += layer->bytes.size();
  }
  return n;
}

uint64_t ExtentBuffer::chain_extent_count() const {
  uint64_t n = 0;
  for (const ExtentBuffer* layer = this; layer != nullptr; layer = layer->parent.get()) {
    n += layer->extents.size();
  }
  return n;
}

int ExtentBuffer::chain_depth() const {
  int d = 0;
  for (const ExtentBuffer* layer = this; layer != nullptr; layer = layer->parent.get()) {
    ++d;
  }
  return d;
}

uint64_t ExtentBuffer::end_page() const {
  uint64_t end = 0;
  for (const ExtentBuffer* layer = this; layer != nullptr; layer = layer->parent.get()) {
    if (!layer->extents.empty()) {
      const Extent& last = layer->extents.back();
      end = std::max(end, last.first_page + last.page_count);
    }
  }
  return end;
}

uint64_t ExtentBuffer::CoveredPages() const {
  // Union across layers: shadowed pages count once.
  std::vector<uint64_t> covered((end_page() + 63) / 64, 0);
  for (const ExtentBuffer* layer = this; layer != nullptr; layer = layer->parent.get()) {
    for (const Extent& e : layer->extents) {
      for (uint64_t p = e.first_page; p < e.first_page + e.page_count; ++p) {
        covered[p >> 6] |= 1ULL << (p & 63);
      }
    }
  }
  uint64_t n = 0;
  for (uint64_t w : covered) {
    n += static_cast<uint64_t>(__builtin_popcountll(w));
  }
  return n;
}

ExtentBufferRef FlattenChain(const ExtentBufferRef& chain) {
  VB_CHECK(chain != nullptr, "FlattenChain requires a chain");
  auto flat = std::make_shared<ExtentBuffer>();
  flat->bytes.reserve(chain->CoveredBytes());
  const uint64_t end = chain->end_page();
  uint64_t p = 0;
  while (p < end) {
    const uint8_t* src = chain->FindPage(p);
    if (src == nullptr) {
      ++p;
      continue;
    }
    // Open a run and extend it page by page: adjacent covered pages may live
    // in different layers, so the copy is per-page even when the extent is
    // one long run.
    ExtentBuffer::Extent extent;
    extent.first_page = p;
    extent.byte_offset = flat->bytes.size();
    while (p < end && (src = chain->FindPage(p)) != nullptr) {
      flat->bytes.insert(flat->bytes.end(), src, src + kPageSize);
      ++extent.page_count;
      ++p;
    }
    flat->extents.push_back(extent);
  }
  return flat;
}

GuestMemory::GuestMemory(uint64_t size) {
  const uint64_t rounded = (size + kPageSize - 1) & ~(kPageSize - 1);
  bytes_.assign(rounded, 0);
  dirty_.assign((NumPages() + 63) / 64, 0);
  epoch_.assign(dirty_.size(), 0);
  const uint64_t regions = (rounded + kRegionSize - 1) >> kRegionBits;
  ept_.assign((regions + 63) / 64, 0);
}

vbase::Status GuestMemory::Read(uint64_t gpa, void* dst, uint64_t len) const {
  if (!Contains(gpa, len)) {
    return vbase::OutOfRange("guest read out of bounds");
  }
  std::memcpy(dst, bytes_.data() + gpa, len);
  return vbase::Status::Ok();
}

vbase::Status GuestMemory::Write(uint64_t gpa, const void* src, uint64_t len) {
  if (!Contains(gpa, len)) {
    return vbase::OutOfRange("guest write out of bounds");
  }
  if (len == 0) {
    return vbase::Status::Ok();
  }
  std::memcpy(bytes_.data() + gpa, src, len);
  MarkDirty(gpa, len);
  // Host-side writes prefault the EPT for the touched regions (the
  // hypervisor's image copy populates mappings before the guest runs, so
  // the guest does not eat EPT-violation charges for its own image).
  for (uint64_t r = gpa >> kRegionBits; r <= (gpa + len - 1) >> kRegionBits; ++r) {
    ept_[r >> 6] |= 1ULL << (r & 63);
  }
  return vbase::Status::Ok();
}

uint64_t GuestMemory::CountDirtyPages() const {
  uint64_t n = 0;
  for (uint64_t w : dirty_) {
    n += static_cast<uint64_t>(__builtin_popcountll(w));
  }
  return n;
}

uint64_t GuestMemory::ZeroDirtyPages() {
  // Word-granular scan: a zero word skips 64 clean pages in one compare; set
  // bits are peeled with ctz so work stays proportional to dirty pages.
  uint64_t zeroed = 0;
  for (size_t w = 0; w < dirty_.size(); ++w) {
    uint64_t word = dirty_[w];
    if (word == 0) {
      continue;
    }
    while (word != 0) {
      const uint64_t p = static_cast<uint64_t>(w) * 64 +
                         static_cast<uint64_t>(__builtin_ctzll(word));
      word &= word - 1;
      std::memset(bytes_.data() + (p << kPageBits), 0, kPageSize);
      zeroed += kPageSize;
    }
    dirty_[w] = 0;
    epoch_[w] = 0;  // the epoch bitmap is a subset of the dirty bitmap
  }
  last_dirty_page_ = kNoPage;
  // A cleaned shell is all-zero plain memory: its share of any mapped base
  // ends here (the base's refcount drops; the buffer dies with its last
  // sharer).
  cow_base_ = nullptr;
  if (cow_private_count_ != 0) {
    std::fill(cow_private_.begin(), cow_private_.end(), 0);
    cow_private_count_ = 0;
  }
  return zeroed;
}

void GuestMemory::ClearDirty() {
  std::fill(dirty_.begin(), dirty_.end(), 0);
  std::fill(epoch_.begin(), epoch_.end(), 0);
  last_dirty_page_ = kNoPage;
}

void GuestMemory::BeginEpoch() {
  std::fill(epoch_.begin(), epoch_.end(), 0);
  last_dirty_page_ = kNoPage;  // its invariant spans both bitmaps
}

uint64_t GuestMemory::CountEpochDirtyPages() const {
  uint64_t n = 0;
  for (uint64_t w : epoch_) {
    n += static_cast<uint64_t>(__builtin_popcountll(w));
  }
  return n;
}

std::vector<uint64_t> GuestMemory::CollectDirtySince() const {
  std::vector<uint64_t> pages;
  for (size_t w = 0; w < epoch_.size(); ++w) {
    uint64_t word = epoch_[w];
    while (word != 0) {
      pages.push_back(static_cast<uint64_t>(w) * 64 +
                      static_cast<uint64_t>(__builtin_ctzll(word)));
      word &= word - 1;
    }
  }
  return pages;
}

void GuestMemory::ResetEpt() { std::fill(ept_.begin(), ept_.end(), 0); }

void GuestMemory::MapCowBase(ExtentBufferRef base) {
  VB_CHECK(base != nullptr, "MapCowBase requires a base");
  VB_CHECK(CountDirtyPages() == 0, "MapCowBase requires clean memory");
  VB_CHECK(base->end_page() <= NumPages(), "COW base exceeds guest memory");
  // Materialize the chained view, root first so a child's pages land on top
  // of the ancestor's.  Write() gives the exact restore semantics the mapped
  // view must be indistinguishable from: pages marked dirty, EPT regions
  // prefaulted.  These copies are simulator-internal cache fills — the
  // caller charges the (small, per-extent) modeled cost of a mapping, not a
  // memcpy of the image.
  std::vector<const ExtentBuffer*> layers;
  for (const ExtentBuffer* layer = base.get(); layer != nullptr;
       layer = layer->parent.get()) {
    layers.push_back(layer);
  }
  for (size_t i = layers.size(); i-- > 0;) {
    for (const ExtentBuffer::Extent& e : layers[i]->extents) {
      vbase::Status st = Write(e.first_page << kPageBits,
                               layers[i]->bytes.data() + e.byte_offset,
                               e.page_count << kPageBits);
      VB_CHECK(st.ok(), "COW map write failed: " << st.ToString());
    }
  }
  // Tracking starts *after* the fill: the materialization writes above must
  // not count as privatization.
  AdoptCowBase(std::move(base));
}

void GuestMemory::AdoptCowBase(ExtentBufferRef base) {
  VB_CHECK(base != nullptr, "AdoptCowBase requires a base");
  cow_base_ = std::move(base);
  if (cow_private_.empty()) {
    cow_private_.assign(dirty_.size(), 0);
  } else if (cow_private_count_ != 0) {
    std::fill(cow_private_.begin(), cow_private_.end(), 0);
  }
  cow_private_count_ = 0;
  // The fast-path cache's invariant now spans the private bitmap too.
  last_dirty_page_ = kNoPage;
}

void GuestMemory::RepairPagesToBase(const std::vector<uint64_t>& pages) {
  VB_CHECK(cow_base_ != nullptr, "RepairPagesToBase requires a mapped base");
  for (const uint64_t page : pages) {
    const uint8_t* src = cow_base_->FindPage(page);
    if (src != nullptr) {
      std::memcpy(bytes_.data() + (page << kPageBits), src, kPageSize);
    } else {
      std::memset(bytes_.data() + (page << kPageBits), 0, kPageSize);
    }
    const uint64_t mask = 1ULL << (page & 63);
    if ((cow_private_[page >> 6] & mask) != 0) {
      cow_private_[page >> 6] &= ~mask;
      --cow_private_count_;
    }
  }
  last_dirty_page_ = kNoPage;
}

}  // namespace vhw
