// The virtual CPU: a VBC interpreter implementing the x86 bring-up state
// machine (real -> protected -> long mode), control registers, GDT checks,
// a 4-level page-table walker with a software TLB, port-I/O exits, and
// modeled cycle accounting.
//
// The CPU starts in 16-bit real mode.  A guest reaches long mode the same
// way the paper's boot stub does:
//
//   lgdt  r0              ; load GDT descriptor (limit u16, base u64)
//   wrcr  0, rP           ; set CR0.PE            -> protected transition
//   ljmp  prot32, entry32 ; far jump to 32-bit code
//   ...write PML4/PDPT/PD into guest memory (identity map, 2 MB pages)...
//   wrcr  4, rA           ; set CR4.PAE
//   wrcr  8, rL           ; set EFER.LME
//   wrcr  3, rC           ; load CR3
//   wrcr  0, rG           ; set CR0.PG            -> EFER.LMA becomes 1
//   ljmp  long64, entry64 ; far jump to 64-bit code
//
// Boot milestones are recorded with their cycle timestamps so the Table 1
// breakdown can be computed from actually executed transitions.
#ifndef SRC_VHW_CPU_H_
#define SRC_VHW_CPU_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/isa/isa.h"
#include "src/vhw/cost_model.h"
#include "src/vhw/mem.h"

namespace vhw {

// Why Run() returned.
enum class ExitKind : uint8_t {
  kHlt,        // guest executed hlt
  kIo,         // port I/O (hypercall): see port/is_in/io_reg
  kBrk,        // debug break
  kFault,      // architectural fault (invalid op, bad mapping, ...)
  kInsnLimit,  // max_insns reached (watchdog)
};

struct Exit {
  ExitKind kind = ExitKind::kFault;
  uint16_t port = 0;    // kIo
  bool is_in = false;   // kIo: true for `in reg, port`
  uint8_t io_reg = 0;   // kIo: register operand
  std::string fault;    // kFault: description
};

// Architectural register state (snapshottable as a POD copy).
struct ArchState {
  uint64_t regs[visa::kNumRegs] = {};
  uint64_t rip = 0;
  visa::Mode mode = visa::Mode::kReal16;
  bool zf = false, sf = false, cf = false, of = false;
  uint64_t cr0 = 0, cr3 = 0, cr4 = 0, efer = 0;
  uint64_t gdtr_base = 0;
  uint16_t gdtr_limit = 0;
  bool gdt_loaded = false;
};

// Named boot milestones (Table 1 components).
enum class BootEvent : uint8_t {
  kFirstInsn,
  kLgdtReal,   // 32-bit GDT load from real mode
  kCr0PeSet,   // protected transition
  kJump32,
  kLgdtProt,   // long-transition GDT load from protected mode
  kEferLmeSet,
  kCr0PgSet,   // paging enabled: identity map installed + EPT built
  kJump64,
  kHlt,
};

const char* BootEventName(BootEvent event);

struct BootMilestone {
  BootEvent event;
  uint64_t cycles;  // CPU cycle counter right after the event's charge
};

class Cpu {
 public:
  Cpu(GuestMemory* mem, const CostModel& cost);

  // Resets to real mode at `entry` with zeroed registers and empty TLB.
  // Does not touch guest memory.
  void Reset(uint64_t entry);

  // Restores a previously captured architectural state (snapshot resume):
  // execution continues at the saved rip in the saved mode, with no
  // first-instruction charge (the vmrun entry cost is charged by the VMM).
  void RestoreArch(const ArchState& s) {
    st_ = s;
    FlushTlb();
    first_insn_pending_ = false;
    pending_entry_charge_ = false;
    fault_.clear();
    injected_fault_.clear();
    // A restore begins a fresh invocation; snapshot-affine shells skip the
    // pool's vCPU Reset, so the retire/exit/milestone counters restart here.
    insns_ = 0;
    io_exits_ = 0;
    milestones_.clear();
  }

  // Runs until an exit condition; resumable.  On an I/O exit rip already
  // points past the `in`/`out` instruction, and for `in` the host is
  // expected to write the result register before the next Run().
  Exit Run(uint64_t max_insns = UINT64_MAX >> 1);

  ArchState& state() { return st_; }
  const ArchState& state() const { return st_; }
  uint64_t reg(int r) const { return st_.regs[r]; }
  void set_reg(int r, uint64_t v) { st_.regs[r] = v; }

  uint64_t cycles() const { return cycles_; }
  void set_cycles(uint64_t c) { cycles_ = c; }
  void AddCycles(uint64_t c) { cycles_ += c; }
  uint64_t insns_retired() const { return insns_; }
  uint64_t io_exits() const { return io_exits_; }

  const std::vector<BootMilestone>& milestones() const { return milestones_; }
  void ClearMilestones() { milestones_.clear(); }

  // Flushes the software TLB (the VMM calls this after mutating guest page
  // tables or restoring a snapshot).
  void FlushTlb();

  // Fault injection (chaos testing): arms a synthetic architectural fault
  // that the next Run() delivers before retiring any instruction, exactly as
  // if the guest had trapped.  Cleared by Reset()/RestoreArch(), so an armed
  // fault never leaks into a later invocation of a recycled shell.
  void InjectFault(std::string reason) { injected_fault_ = std::move(reason); }

  // Translates a guest-virtual address under the current mode (no side
  // effects other than TLB fill / EPT touch accounting).  Used by the
  // hypervisor to validate guest pointers in hypercall handlers.
  vbase::Result<uint64_t> Translate(uint64_t va);

 private:
  struct TlbEntry {
    uint64_t vpn = ~0ULL;  // va >> 12
    uint64_t page = 0;     // pa of 4 KB frame
  };
  static constexpr int kTlbEntries = 256;

  // Translation with fault reporting into `fault_`; returns false on fault.
  bool TranslateInternal(uint64_t va, uint64_t* pa);
  bool Walk(uint64_t va, uint64_t* pa);

  // Memory helpers; return false and set fault_ on error.
  bool LoadVa(uint64_t va, int bytes, bool sign, uint64_t* out);
  bool StoreVa(uint64_t va, int bytes, uint64_t value);

  void ChargeMem(uint64_t pa) {
    cycles_ += cost_.mem_access;
    if (mem_->TouchRegion(pa)) {
      cycles_ += cost_.ept_first_touch;
    }
  }

  uint64_t WidthMask() const {
    switch (st_.mode) {
      case visa::Mode::kReal16:
        return 0xFFFFULL;
      case visa::Mode::kProt32:
        return 0xFFFFFFFFULL;
      case visa::Mode::kLong64:
        return ~0ULL;
    }
    return ~0ULL;
  }
  int WordSize() const { return visa::WordBytes(st_.mode); }

  void SetFlagsLogic(uint64_t result);
  void SetFlagsAddSub(uint64_t a, uint64_t b, uint64_t result, bool is_sub);
  bool EvalCond(visa::Cond cc) const;

  void LogEvent(BootEvent event) { milestones_.push_back({event, cycles_}); }

  // System instruction implementations (return false -> fault_ set).
  bool DoLgdt(uint64_t va);
  bool DoWrcr(uint8_t cr, uint64_t value);
  bool DoLjmp(visa::Mode target);

  GuestMemory* mem_;
  CostModel cost_;
  ArchState st_;
  TlbEntry tlb_[kTlbEntries];
  uint64_t cycles_ = 0;
  uint64_t insns_ = 0;
  uint64_t io_exits_ = 0;
  bool first_insn_pending_ = true;
  bool pending_entry_charge_ = false;
  std::string fault_;
  std::string injected_fault_;  // armed by InjectFault, delivered at Run()
  std::vector<BootMilestone> milestones_;
};

}  // namespace vhw

#endif  // SRC_VHW_CPU_H_
