// Tagged-pointer Treiber stack — the lock-free free-list backing the pool's
// shell fast path.
//
// A Treiber stack is the minimal lock-free LIFO: push CASes a new head whose
// `next` is the old head; pop CASes the head to `head->next`.  The classic
// hazard is ABA: thread A reads head == X and next == Y, stalls; other
// threads pop X, pop Y, and push X back; A's CAS (X -> Y) then *succeeds*
// even though Y left the stack — corrupting the list.  We close it the
// EPYC-era way: the 64-bit head word packs a 48-bit node pointer with a
// 16-bit tag that increments on every successful CAS, so a head that was
// touched — even if the same node came back — no longer compares equal.
// (User-space pointers on x86-64/aarch64 are canonical with the top 16 bits
// zero, so the pack is lossless; a static_assert guards the assumption.)
//
// The second half of ABA safety is lifetime: `Pop` dereferences `top->next`
// *before* winning the CAS, so `top` may already have been popped by someone
// else at that moment.  That read must land on mapped memory.  The pool
// therefore never frees a node while the stack can be probed — nodes are
// arena-owned for the pool's lifetime and recycled through a spare-node
// stack — and `next` is an atomic, so the stale read is a benign racy load
// whose value is discarded when the tag check fails the CAS.
//
// `Node` must expose `std::atomic<Node*> next`.
#ifndef SRC_WASP_FREELIST_H_
#define SRC_WASP_FREELIST_H_

#include <atomic>
#include <cstdint>

namespace wasp {

template <typename Node>
class TaggedStack {
 public:
  static constexpr int kPtrBits = 48;
  static constexpr uint64_t kPtrMask = (uint64_t{1} << kPtrBits) - 1;

  TaggedStack() = default;
  TaggedStack(const TaggedStack&) = delete;
  TaggedStack& operator=(const TaggedStack&) = delete;

  void Push(Node* node) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    for (;;) {
      node->next.store(UnpackPtr(head), std::memory_order_relaxed);
      if (head_.compare_exchange_weak(head, Pack(node, Tag(head) + 1),
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  Node* Pop() {
    uint64_t head = head_.load(std::memory_order_acquire);
    for (;;) {
      Node* top = UnpackPtr(head);
      if (top == nullptr) {
        return nullptr;
      }
      // May read a stale next if `top` was concurrently popped; the tag
      // mismatch then fails the CAS and we retry off the fresh head.
      Node* next = top->next.load(std::memory_order_relaxed);
      if (head_.compare_exchange_weak(head, Pack(next, Tag(head) + 1),
                                      std::memory_order_acquire,
                                      std::memory_order_acquire)) {
        return top;
      }
    }
  }

  // --- ABA-regression hooks (tests) and diagnostic accessors. ---

  // The raw packed head word (pointer | tag).  A snapshot taken here can be
  // replayed through PopIfHeadIs to prove the tag defeats ABA.
  uint64_t PackedHead() const { return head_.load(std::memory_order_acquire); }

  // One CAS attempt against a previously observed packed head — exactly the
  // compare a stalled Pop would issue.  Returns the popped node only when
  // the head (pointer *and* tag) is still `expected`; any interleaved
  // push/pop bumped the tag, so a stale snapshot must fail even if the same
  // node is back on top (the ABA case).
  Node* PopIfHeadIs(uint64_t expected) {
    Node* top = UnpackPtr(expected);
    if (top == nullptr) {
      return nullptr;
    }
    Node* next = top->next.load(std::memory_order_relaxed);
    uint64_t head = expected;
    if (head_.compare_exchange_strong(head, Pack(next, Tag(expected) + 1),
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
      return top;
    }
    return nullptr;
  }

  // Top node without popping.  Only sound for diagnostic walks on a
  // quiescent stack (concurrent pops can recycle the chain under the
  // walker); the pool's counting accessors document the same caveat.
  Node* UnsafeHead() const { return UnpackPtr(head_.load(std::memory_order_acquire)); }

  static uint16_t Tag(uint64_t packed) { return static_cast<uint16_t>(packed >> kPtrBits); }

  static Node* UnpackPtr(uint64_t packed) {
    return reinterpret_cast<Node*>(packed & kPtrMask);
  }

  static uint64_t Pack(Node* node, uint16_t tag) {
    const uint64_t bits = reinterpret_cast<uint64_t>(node);
    return (bits & kPtrMask) | (static_cast<uint64_t>(tag) << kPtrBits);
  }

 private:
  static_assert(sizeof(void*) == 8, "tagged pack assumes 64-bit pointers");
  std::atomic<uint64_t> head_{0};
};

}  // namespace wasp

#endif  // SRC_WASP_FREELIST_H_
