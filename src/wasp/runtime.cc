#include "src/wasp/runtime.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "src/base/clock.h"
#include "src/base/log.h"
#include "src/wasp/executor.h"

namespace wasp {
namespace {

// Upper bounds on guest-supplied lengths accepted by canned handlers; a
// hostile guest cannot make the host allocate unbounded memory.
constexpr uint64_t kMaxIoLen = 1ULL << 24;        // 16 MB
constexpr uint64_t kMaxPathLen = 4096;

PoolOptions MakePoolOptions(const RuntimeOptions& options) {
  PoolOptions pool;
  pool.mode = options.clean_mode;
  pool.shards = options.pool_shards;
  pool.cleaners = options.pool_cleaners;
  pool.lanes = options.pool_lanes;
  pool.numa_nodes = options.pool_numa_nodes;
  pool.affine_budget_bytes = options.affine_budget_bytes;
  return pool;
}

}  // namespace

Runtime::Runtime(RuntimeOptions options)
    : options_(std::move(options)), pool_(MakePoolOptions(options_)) {
  if (!options_.fault_plan.empty()) {
    injector_ = std::make_unique<FaultInjector>(options_.fault_plan);
  }
}

Runtime::~Runtime() = default;

std::future<RunOutcome> Runtime::InvokeAsync(VirtineSpec spec) {
  std::call_once(executor_once_, [this] {
    int workers = options_.async_workers;
    if (workers <= 0) {
      workers = static_cast<int>(std::max(2u, std::thread::hardware_concurrency()));
    }
    ExecutorOptions opts;
    opts.workers = workers;
    opts.recovery = options_.recovery;
    executor_ = std::make_unique<Executor>(this, opts);
  });
  return executor_->Submit(std::move(spec));
}

void Runtime::RetireSnapshot(const std::string& key) {
  SnapshotRef old = snapshots_.Take(key);
  if (old != nullptr) {
    pool_.RetireGeneration(old->generation);
  }
}

RecaptureOutcome Runtime::RecaptureSnapshot(const std::string& key) {
  RecaptureOutcome out;
  SnapshotRef parent = snapshots_.Find(key);
  if (parent == nullptr) {
    out.status = RecaptureOutcome::Status::kNoSnapshot;
    return out;
  }
  out.old_generation = parent->generation;
  // A warm shell parked under the current generation is the drift we fold:
  // its memory == parent view + epoch-dirty pages.
  std::unique_ptr<vkvm::Vm> vm = pool_.StealParkedAffine(parent->generation);
  if (vm == nullptr) {
    out.status = RecaptureOutcome::Status::kNoWarmShell;
    out.new_generation = parent->generation;
    return out;
  }
  if (vm->memory().CountEpochDirtyPages() == 0) {
    // Nothing written since the last restore: the parent still describes
    // the service exactly.  Re-park untouched.
    pool_.ReleaseAffine(std::move(vm), parent->generation, parent->chain_byte_size());
    out.status = RecaptureOutcome::Status::kNoDrift;
    out.new_generation = parent->generation;
    return out;
  }
  SnapshotRef child = CaptureDeltaSnapshot(vm->memory(), *parent);
  out.delta_bytes = child->byte_size();
  // Chain governance: flatten when the chain is too deep or the shadowed
  // bytes it drags along outweigh the view (delta bloat).
  const auto& extent = *child->extent;
  if (child->chain_depth() > options_.chain_max_depth ||
      static_cast<double>(extent.chain_byte_size()) >
          options_.chain_flatten_slack * static_cast<double>(extent.CoveredBytes())) {
    child = FlattenSnapshot(*child);
    out.flattened = true;
  }
  out.new_generation = child->generation;
  out.chain_depth = child->chain_depth();
  // Publish the child, then retire the old generation: any shells still
  // parked under it are reclaimed (their extent bytes survive through the
  // child's parent chain as long as it needs them).
  snapshots_.Put(key, child);
  pool_.RetireGeneration(parent->generation);
  // The stolen shell's memory *is* the child's view: re-base its COW
  // tracking on the new chain (no copies) and park it warm under the new
  // generation, ready for an affine hit.
  vm->memory().AdoptCowBase(child->extent);
  vm->memory().BeginEpoch();
  pool_.ReleaseAffine(std::move(vm), child->generation, child->chain_byte_size());
  out.status = RecaptureOutcome::Status::kRecaptured;
  return out;
}

vkvm::VmConfig Runtime::MakeVmConfig(uint64_t mem_size) const {
  vkvm::VmConfig cfg = options_.vm_defaults;
  cfg.mem_size = mem_size;
  return cfg;
}

void Runtime::RestoreSnapshot(vkvm::Vm& vm, const Snapshot& snap, bool affine,
                              InvokeStats* stats) {
  // Lay the snapshot into the shell.  An affine shell already holds the
  // snapshot and only repairs the pages the previous tenant dirtied, so
  // warm restore cost follows the working set, not the image.  A clean
  // shell under snapshot affinity *maps* the shared COW extent chain —
  // charged per extent, not per byte — and privatizes pages on write.
  // With affinity off, it replays every extent by copy: the "simple
  // snapshotting strategy" whose cost is bounded by memcpy bandwidth
  // (Figure 12), kept as the A/B baseline.  `snap` is immutable and
  // reference-held by the caller, so every path runs without any
  // SnapshotStore lock: concurrent restores of the same key proceed in
  // parallel.
  uint64_t copied = 0;
  if (affine) {
    copied = RestoreDeltaInto(snap, &vm.memory());
    vm.AddHostCycles(static_cast<uint64_t>(
        static_cast<double>(copied) / vm.config().host_costs.memcpy_bytes_per_cycle));
  } else if (options_.snapshot_affinity) {
    MapCowInto(snap, &vm.memory());
    vm.AddHostCycles(snap.extent->chain_extent_count() *
                     vm.config().host_costs.cow_map_extent);
    stats->mapped_cow = true;
  } else {
    copied = RestoreFullInto(snap, &vm.memory());
    vm.AddHostCycles(static_cast<uint64_t>(
        static_cast<double>(copied) / vm.config().host_costs.memcpy_bytes_per_cycle));
  }
  vm.cpu().RestoreArch(snap.cpu);
  // Memory now equals the snapshot exactly: start the epoch whose dirty set
  // is the next delta restore's work list.
  vm.memory().BeginEpoch();
  stats->restored_snapshot = true;
  stats->affine_restore = affine;
  stats->restored_bytes = copied;
}

SnapshotRef Runtime::TakeSnapshot(vkvm::Vm& vm) {
  SnapshotRef snap = CaptureSnapshot(vm.memory(), vm.cpu().state());
  // Taking the snapshot is itself a copy; charge it (the paper's Figure 11
  // snapshot bars "include the overhead for taking the initial snapshot").
  vm.AddHostCycles(static_cast<uint64_t>(
      static_cast<double>(snap->byte_size()) /
      vm.config().host_costs.memcpy_bytes_per_cycle));
  // The shell holds the snapshot verbatim at this instant: begin its epoch
  // so the rest of this run is tracked as the delta, and release can park
  // the shell snapshot-affine instead of zeroing it.
  vm.memory().BeginEpoch();
  return snap;
}

vbase::Result<int64_t> Runtime::Dispatch(uint16_t port, HypercallFrame& frame) {
  // Client-defined handlers take precedence (they are what the paper calls
  // the virtine client's hypercall handlers) but obey the same policy mask.
  if (auto it = frame.spec.handlers.find(port); it != frame.spec.handlers.end()) {
    return it->second(frame);
  }
  vkvm::Vm& vm = frame.vm;
  switch (port) {
    case kHcExit:
      frame.outcome.exit_code = frame.arg(0);
      frame.request_exit = true;
      return 0;

    case kHcConsole: {
      const uint64_t va = frame.arg(0);
      const uint64_t len = frame.arg(1);
      if (len > kMaxIoLen) {
        return vbase::InvalidArgument("console write too large");
      }
      std::vector<char> buf(len);
      VB_RETURN_IF_ERROR(vm.ReadVirt(va, buf.data(), len));
      frame.outcome.console.append(buf.data(), len);
      return static_cast<int64_t>(len);
    }

    case kHcSnapshot: {
      if (frame.snapshot_taken) {
        return vbase::PermissionDenied("snapshot hypercall may only be called once");
      }
      frame.snapshot_taken = true;
      if (frame.spec.use_snapshot && !frame.spec.key.empty() &&
          snapshots_.Find(frame.spec.key) == nullptr) {
        SnapshotRef snap = TakeSnapshot(vm);
        // Concurrent cold runs race this publish; only the winner's shell
        // parks snapshot-affine.  A loser's shell holds its *own* capture,
        // not the winner's, so it must go back through the cleaning path —
        // and under a generation the store never published, it would sit
        // stranded in the affine lists until reclaimed.
        SnapshotRef winner = snapshots_.PutIfAbsent(frame.spec.key, snap);
        if (winner == snap) {
          frame.resident_generation = snap->generation;
          frame.resident_shared_bytes = snap->chain_byte_size();
          frame.outcome.stats.took_snapshot = true;
          if (options_.snapshot_affinity) {
            // The shell's memory *is* the captured view: adopt the published
            // extent chain as its COW base (no copies) so the rest of this
            // run privatizes on write and the park charges the working set,
            // not the image.
            vm.memory().AdoptCowBase(snap->extent);
          }
        }
      }
      return 0;
    }

    case kHcGetData: {
      if (frame.data_fetched) {
        return vbase::PermissionDenied("get_data hypercall may only be called once");
      }
      frame.data_fetched = true;
      const uint64_t va = frame.arg(0);
      const uint64_t cap = frame.arg(1);
      if (cap > kMaxIoLen) {
        return vbase::InvalidArgument("get_data capacity too large");
      }
      if (frame.spec.input == nullptr) {
        return 0;
      }
      const uint64_t n = std::min<uint64_t>(cap, frame.spec.input->size());
      VB_RETURN_IF_ERROR(vm.WriteVirt(va, frame.spec.input->data(), n));
      return static_cast<int64_t>(n);
    }

    case kHcReturnData: {
      const uint64_t va = frame.arg(0);
      const uint64_t len = frame.arg(1);
      if (len > kMaxIoLen || frame.inject_oversized_reply) {
        frame.fault = FaultKind::kOversizedReply;
        if (frame.inject_oversized_reply) {
          frame.inject_oversized_reply = false;
          if (injector_ != nullptr) {
            injector_->RecordInjected(FaultKind::kOversizedReply);
          }
          return vbase::InvalidArgument("return_data too large (injected oversized reply)");
        }
        return vbase::InvalidArgument("return_data too large");
      }
      const size_t off = frame.outcome.output.size();
      frame.outcome.output.resize(off + len);
      VB_RETURN_IF_ERROR(vm.ReadVirt(va, frame.outcome.output.data() + off, len));
      return 0;
    }

    case kHcOpen: {
      auto path = vm.ReadCString(frame.arg(0), kMaxPathLen);
      if (!path.ok()) {
        return path.status();
      }
      auto fd = frame.fds.Open(*path);
      return fd.ok() ? *fd : -1;
    }

    case kHcRead: {
      const int64_t fd = static_cast<int64_t>(frame.arg(0));
      const uint64_t va = frame.arg(1);
      const uint64_t len = std::min<uint64_t>(frame.arg(2), kMaxIoLen);
      std::vector<uint8_t> buf(len);
      auto n = frame.fds.Read(fd, buf.data(), len);
      if (!n.ok()) {
        return -1;
      }
      VB_RETURN_IF_ERROR(vm.WriteVirt(va, buf.data(), static_cast<uint64_t>(*n)));
      return *n;
    }

    case kHcWrite: {
      const int64_t fd = static_cast<int64_t>(frame.arg(0));
      const uint64_t va = frame.arg(1);
      const uint64_t len = frame.arg(2);
      if (len > kMaxIoLen) {
        return vbase::InvalidArgument("write too large");
      }
      std::vector<uint8_t> buf(len);
      VB_RETURN_IF_ERROR(vm.ReadVirt(va, buf.data(), len));
      auto n = frame.fds.Write(fd, buf.data(), len);
      return n.ok() ? *n : -1;
    }

    case kHcClose:
      return frame.fds.Close(static_cast<int64_t>(frame.arg(0))).ok() ? 0 : -1;

    case kHcStat: {
      auto path = vm.ReadCString(frame.arg(0), kMaxPathLen);
      if (!path.ok()) {
        return path.status();
      }
      HostEnv* env = frame.spec.env != nullptr ? frame.spec.env : &env_;
      auto size = env->FileSize(*path);
      if (!size.ok()) {
        return -1;
      }
      const uint64_t statbuf = frame.arg(1);
      const uint64_t sz = *size;
      VB_RETURN_IF_ERROR(vm.WriteVirt(statbuf, &sz, sizeof(sz)));
      return 0;
    }

    case kHcSend: {
      if (frame.spec.channel == nullptr) {
        return vbase::FailedPrecondition("send: no channel attached");
      }
      const uint64_t va = frame.arg(0);
      const uint64_t len = frame.arg(1);
      if (len > kMaxIoLen) {
        return vbase::InvalidArgument("send too large");
      }
      std::vector<uint8_t> buf(len);
      VB_RETURN_IF_ERROR(vm.ReadVirt(va, buf.data(), len));
      return frame.spec.channel->Write(buf.data(), len) ? static_cast<int64_t>(len) : -1;
    }

    case kHcRecv: {
      if (frame.spec.channel == nullptr) {
        return vbase::FailedPrecondition("recv: no channel attached");
      }
      const uint64_t va = frame.arg(0);
      const uint64_t cap = std::min<uint64_t>(frame.arg(1), kMaxIoLen);
      std::vector<uint8_t> buf(cap);
      const uint64_t n = frame.spec.channel->Read(buf.data(), cap);
      VB_RETURN_IF_ERROR(vm.WriteVirt(va, buf.data(), n));
      return static_cast<int64_t>(n);
    }

    default:
      return vbase::Unimplemented("no handler for hypercall port " + std::to_string(port));
  }
}

RunOutcome Runtime::Invoke(const VirtineSpec& spec) {
  RunOutcome outcome;
  vbase::WallTimer total_timer;
  VB_CHECK(spec.image != nullptr, "VirtineSpec.image must be set");

  // Consult the fault plan once per invocation; kNone on the (default)
  // no-plan path costs one branch.
  const FaultKind armed =
      injector_ != nullptr ? injector_->Arm(spec.key) : FaultKind::kNone;

  // Resolve the snapshot first: it decides the load path.
  SnapshotRef snap;
  if (spec.use_snapshot && !spec.key.empty()) {
    snap = snapshots_.Find(spec.key);
  }

  // --- Acquire a shell (Figure 6: pooled reuse or fresh create).  With a
  // snapshot in hand, the keyed path prefers a shell that already holds it
  // resident (the pool's snapshot-affine lists). --------------------------
  vbase::WallTimer acquire_timer;
  bool from_pool = false;
  bool affine = false;
  std::unique_ptr<vkvm::Vm> vm;
  if (snap != nullptr && options_.snapshot_affinity && !spec.fresh_shell) {
    vm = pool_.AcquireAffine(MakeVmConfig(spec.mem_size), snap->generation, &affine,
                             &from_pool);
  } else {
    // fresh_shell (the executor's retry path) lands here deliberately: a
    // retried invocation must never inherit a parked affine sibling of the
    // shell that just faulted — it COW-maps the snapshot onto a clean shell.
    vm = pool_.Acquire(MakeVmConfig(spec.mem_size), &from_pool);
  }
  outcome.stats.from_pool = from_pool;
  outcome.stats.acquire_ns = acquire_timer.ElapsedNanos();

  // --- Load state: snapshot restore or image boot ------------------------
  vbase::WallTimer load_timer;
  if (snap != nullptr && snap->mem_size <= vm->memory().size()) {
    // Integrity gate: an injected poison (chaos) or a genuine checksum
    // mismatch (verify_restores) means the shell may hold a half-laid image
    // — quarantine it rather than reason about how far the restore got.
    const bool poisoned = armed == FaultKind::kPoisonedSnapshot ||
                          (options_.verify_restores && !VerifySnapshot(*snap));
    if (poisoned) {
      if (armed == FaultKind::kPoisonedSnapshot) {
        injector_->RecordInjected(FaultKind::kPoisonedSnapshot);
      }
      outcome.fault = FaultKind::kPoisonedSnapshot;
      outcome.status = vbase::Internal("poisoned snapshot: checksum mismatch restoring key '" +
                                       spec.key + "'");
      pool_.Quarantine(std::move(vm));
      outcome.stats.load_ns = load_timer.ElapsedNanos();
      outcome.stats.total_ns = total_timer.ElapsedNanos();
      return outcome;
    }
    RestoreSnapshot(*vm, *snap, affine, &outcome.stats);
  } else {
    if (affine) {
      // The affine shell matched by generation but the snapshot cannot be
      // laid into it (mem_size mismatch); scrub it back to a clean shell
      // before taking the boot path.
      vm->memory().ZeroDirtyPages();
      vm->ResetVcpu(kImageLoadAddr);
      vm->ResetAccounting();
      affine = false;
    }
    snap = nullptr;
    const visa::Image& image = *spec.image;
    vbase::Status st = vm->LoadBlob(image.load_addr, image.bytes.data(), image.bytes.size());
    if (!st.ok()) {
      outcome.status = std::move(st);
      pool_.Release(std::move(vm));
      return outcome;
    }
    vm->AddHostCycles(static_cast<uint64_t>(
        static_cast<double>(image.bytes.size()) /
        vm->config().host_costs.memcpy_bytes_per_cycle));
    // Boot info: memory size + flags.
    uint64_t boot_info[2] = {vm->memory().size(), 0};
    if (spec.use_snapshot && spec.crt_snapshot && !spec.key.empty()) {
      boot_info[1] |= kBootFlagSnapshot;
    }
    st = vm->memory().Write(kBootInfoAddr, boot_info, sizeof(boot_info));
    VB_CHECK(st.ok(), "boot info write failed");
    vm->ResetVcpu(image.entry);
    vm->cpu().set_reg(visa::kSp, kRealModeStackTop);
  }

  // --- Marshal arguments (after restore: snapshots resume before the CRT
  // reads the argument page, so fresh arguments land correctly) -----------
  if (!spec.args_page.empty()) {
    VB_CHECK(spec.args_page.size() <= kArgPageSize, "argument page too large");
    vbase::Status st = vm->memory().Write(kArgPageAddr, spec.args_page.data(),
                                          spec.args_page.size());
    VB_CHECK(st.ok(), "argument page write failed");
  }
  outcome.stats.load_ns = load_timer.ElapsedNanos();

  // --- Run until completion, interposing on every hypercall --------------
  vbase::WallTimer run_timer;
  HostEnv* env = spec.env != nullptr ? spec.env : &env_;
  HypercallFrame frame(*vm, *this, spec, outcome, env);
  // Injection delivery.  A guest trap is armed on the vCPU (delivered by the
  // next Run(), after any snapshot restore so RestoreArch cannot clear it);
  // an oversized reply flips the frame flag consumed by return_data; the
  // hypercall-shaped kinds fire at the first I/O exit below.
  FaultKind pending_io_fault = FaultKind::kNone;
  switch (armed) {
    case FaultKind::kGuestTrap:
      vm->InjectGuestFault("injected guest trap (chaos)");
      injector_->RecordInjected(FaultKind::kGuestTrap);
      break;
    case FaultKind::kOversizedReply:
      frame.inject_oversized_reply = true;
      break;
    case FaultKind::kWorkerDeath:
    case FaultKind::kIllegalHypercall:
    case FaultKind::kPolicyDenied:
      pending_io_fault = armed;
      break;
    default:
      break;
  }
  while (true) {
    const uint64_t used = vm->cpu().insns_retired();
    if (used >= spec.max_insns) {
      outcome.fault = FaultKind::kRunaway;
      outcome.status = vbase::Aborted("instruction budget exhausted (runaway virtine)");
      break;
    }
    vkvm::RunResult run = vm->Run(spec.max_insns - used);
    if (pending_io_fault != FaultKind::kNone &&
        (run.reason == vkvm::ExitReason::kIo || run.reason == vkvm::ExitReason::kHlt)) {
      // The invocation dies at its first exit boundary, mid-flight: its
      // first hypercall, or the final hlt for guests that never take one.
      const FaultKind inject = pending_io_fault;
      pending_io_fault = FaultKind::kNone;
      injector_->RecordInjected(inject);
      outcome.fault = inject;
      if (inject == FaultKind::kWorkerDeath) {
        outcome.status = vbase::Aborted("worker death injected mid-invocation");
      } else if (inject == FaultKind::kIllegalHypercall) {
        outcome.status = vbase::Unimplemented("illegal hypercall injected at port " +
                                              std::to_string(run.port));
      } else {
        outcome.denied = true;
        outcome.status = vbase::PermissionDenied("hypercall " + std::to_string(run.port) +
                                                 " denied by injected policy");
      }
      break;
    }
    if (run.reason == vkvm::ExitReason::kHlt) {
      break;
    }
    if (run.reason == vkvm::ExitReason::kIo) {
      const uint16_t port = run.port;
      // Policy check: default-deny.  Exit and snapshot are always permitted:
      // they are hypervisor-internal services with no externally observable
      // behavior (and snapshot is enforced once-only), matching the paper's
      // "no externally observable behavior through hypercalls other than the
      // ability to exit".
      if (port != kHcExit && port != kHcSnapshot && port < kMaxHypercall &&
          (spec.policy & MaskOf(port)) == 0) {
        outcome.denied = true;
        outcome.fault = FaultKind::kPolicyDenied;
        outcome.status = vbase::PermissionDenied(
            "hypercall " + std::to_string(port) + " denied by policy; virtine terminated");
        break;
      }
      auto result = Dispatch(port, frame);
      if (!result.ok()) {
        // Structured classification: a handler that tagged the frame wins;
        // otherwise an unknown port is an illegal hypercall and anything
        // else is a handler failure.  The message stays for logs.
        if (frame.fault != FaultKind::kNone) {
          outcome.fault = frame.fault;
        } else if (result.status().code() == vbase::Code::kUnimplemented) {
          outcome.fault = FaultKind::kIllegalHypercall;
        } else {
          outcome.fault = FaultKind::kHypercallError;
        }
        outcome.status = result.status();
        break;
      }
      // Result goes to r0 for `out`, or to the destination register of `in`.
      vm->cpu().set_reg(run.io_is_in ? run.io_reg : 0, static_cast<uint64_t>(*result));
      if (frame.request_exit) {
        break;
      }
      continue;
    }
    if (run.reason == vkvm::ExitReason::kInsnLimit) {
      outcome.fault = FaultKind::kRunaway;
      outcome.status = vbase::Aborted("instruction budget exhausted (runaway virtine)");
      break;
    }
    if (run.reason == vkvm::ExitReason::kBrk) {
      outcome.fault = FaultKind::kGuestTrap;
      outcome.status = vbase::Aborted("guest breakpoint");
      break;
    }
    outcome.fault = FaultKind::kGuestTrap;
    outcome.status = vbase::Internal("guest fault: " + run.fault);
    break;
  }
  outcome.stats.run_ns = run_timer.ElapsedNanos();

  // --- Harvest results -----------------------------------------------------
  if (outcome.status.ok() && spec.word_bytes > 0) {
    uint64_t word = 0;
    vbase::Status st = vm->memory().Read(kArgPageAddr, &word,
                                         static_cast<uint64_t>(spec.word_bytes));
    if (st.ok()) {
      outcome.result_word = word;
    }
  }
  outcome.fd_writes = frame.fds.TakeWrites();
  outcome.stats.guest_cycles = vm->cpu().cycles();
  outcome.stats.host_cycles = vm->host_cycles();
  outcome.stats.total_cycles = vm->total_cycles();
  outcome.stats.io_exits = vm->cpu().io_exits();
  outcome.stats.insns = vm->cpu().insns_retired();

  // --- Release the shell: a faulted invocation quarantines it (never parked
  // affine, never pushed to the lock-free free stack — only a cleaner-crew
  // scrub readmits it).  A clean snapshot-backed run parks it snapshot-affine
  // (no zeroing; the epoch bitmap records the delta for the next restore),
  // anything else goes back through the cleaning path. --------------------
  if (outcome.fault != FaultKind::kNone) {
    pool_.Quarantine(std::move(vm));
    outcome.stats.total_ns = total_timer.ElapsedNanos();
    return outcome;
  }
  uint64_t park_generation = 0;
  uint64_t park_shared_bytes = 0;
  if (options_.snapshot_affinity && outcome.status.ok()) {
    if (outcome.stats.restored_snapshot && snap != nullptr) {
      park_generation = snap->generation;
      park_shared_bytes = snap->chain_byte_size();
    } else if (frame.resident_generation != 0) {
      park_generation = frame.resident_generation;
      park_shared_bytes = frame.resident_shared_bytes;
    }
  }
  if (park_generation != 0) {
    pool_.ReleaseAffine(std::move(vm), park_generation, park_shared_bytes);
  } else {
    pool_.Release(std::move(vm));
  }
  outcome.stats.total_ns = total_timer.ElapsedNanos();
  return outcome;
}

}  // namespace wasp
