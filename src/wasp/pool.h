// The virtine shell pool (Section 5.2, Figure 6), scaled out for multicore
// and made snapshot-aware.
//
// Creating a hardware VM context is expensive (host kernel allocation of
// VMCS/VMCB state, EPT construction).  Wasp therefore keeps released VM
// contexts — "shells" — and reuses them: a released shell is *cleaned*
// (every dirty page zeroed, preventing information leakage) and parked in a
// free list keyed by memory size.  Cleaning can run synchronously on
// release ("Wasp+C") or on a background cleaner crew ("Wasp+CA"), which
// takes cleaning off the acquire/release critical path and brings shell
// provisioning within a few percent of a bare vmrun.
//
// Snapshot affinity: a shell that just ran a snapshot-backed virtine still
// holds that snapshot's memory image, deviating only in the pages the run
// dirtied (tracked by GuestMemory's epoch bitmap).  ReleaseAffine parks such
// a shell *without zeroing it*, tagged by snapshot generation; a later
// AcquireAffine for the same generation gets it back and repairs just the
// delta — warm restores become O(working set) instead of O(image), and the
// release-side zeroing of those same pages disappears entirely.  Isolation
// is preserved: the repaired shell is byte-identical to a full restore, and
// any *other* consumer (a plain Acquire, or a keyed Acquire for a different
// generation) only ever sees an affine shell after it has been fully
// cleaned (reclaimed).
//
// Governance: parked affine shells are memory a long-lived service pays for.
// Under COW backing, what a shell pays for is *private* bytes — the pages it
// privatized on write — while the shared extent chain is charged **once per
// live generation**, no matter how many shells map it: resident cost is
// O(image + Σ working sets), not O(shells × image).  A shell parked without
// a COW base (legacy full-copy parking) is charged its whole guest memory,
// preserving the old accounting.  Two policies bound residency.  (1) A
// configurable resident-byte budget (PoolOptions::affine_budget_bytes): when
// a park pushes the gauge over budget, shells of the least-recently-used
// *generation* are evicted into the cleaning path (the async cleaner crew
// when one exists, inline otherwise) until the budget holds again; evicting
// a generation's last shell releases its shared charge too.  (2) Eager
// retirement (RetireGeneration): when a snapshot generation is retired — its
// key was re-captured or dropped — every shell parked under it is reclaimed
// immediately instead of lingering until a non-affine consumer happens to
// sweep it up.  Both paths are counted in PoolStats (affine_evictions,
// affine_retired, and the affine_resident_bytes gauge) so tests and benches
// can assert the budget actually holds.  The gauge obeys a conservation
// invariant at every observation: affine_resident_bytes ==
// sum over live generations of (shared_bytes + private_bytes) — exposed for
// verification via affine_accounting().
//
// Concurrency model — the lock-free fast path.  The common-case acquire and
// release never take a mutex and never allocate:
//
//   1. Per-lane cache.  Every executor worker (and, lazily, any other
//      thread) is bound to a *lane* (Pool::BindLane / an auto-assigned id).
//      Each lane owns a single-slot cache for a clean shell and one for a
//      snapshot-affine shell, touched with a plain atomic exchange.  A shell
//      released by a lane is re-acquired by that same lane while its pages
//      are still cache- and TLB-warm.
//   2. Per-shard Treiber free-lists.  Lanes map statically onto shards
//      (lane mod shards); each shard keeps tagged-pointer ABA-safe lock-free
//      stacks (see freelist.h) for clean, affine, and dirty shells.  A lane
//      cache miss pops the home shard's stack, then *steals* from sibling
//      shards — nearest (modeled-)NUMA-node shards first.
//   3. Mutex slow path.  Only when the bounded lock-free probes find
//      nothing does an acquire take shard mutexes for an exhaustive sweep
//      (then a fresh create).  Eviction, retirement, and the cleaner drain
//      barrier are maintenance and serialize the same way.
//
// NUMA placement is *modeled* (the emulated machine has no real topology):
// shards are split into `numa_nodes` contiguous blocks and the steal order
// prefers same-node shards, so an affine shell's pages are reused by the
// lane — or at worst the node — that dirtied them.  PoolStats separates
// lane-cache hits, free-list hits, slow-path acquires, and cross-shard /
// cross-node steals, and the pool keeps a log2-bucketed acquire-latency
// histogram (p50/p99 in wall ns and modeled cycles) so the fast path's
// flatness under lane count is observable, not asserted.
#ifndef SRC_WASP_POOL_H_
#define SRC_WASP_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "src/vkvm/vkvm.h"
#include "src/wasp/freelist.h"

namespace wasp {

enum class CleanMode {
  kNone,   // no pooling: every release destroys the VM
  kSync,   // clean on release, inline
  kAsync,  // clean on a background cleaner crew
};

struct PoolStats {
  uint64_t acquires = 0;
  uint64_t pool_hits = 0;       // shells served from a free or affine list
  uint64_t fresh_creates = 0;   // shells created from scratch
  uint64_t releases = 0;
  uint64_t cleans = 0;
  uint64_t bytes_zeroed = 0;
  // Fast-path counters.  Every acquire is served by exactly one of the
  // three tiers: acquires == lane_cache_hits + freelist_hits +
  // slow_path_acquires (fresh creates are slow-path by definition).
  uint64_t lane_cache_hits = 0;     // served by the caller's lane slot
  uint64_t freelist_hits = 0;       // served by a lock-free shard stack
  uint64_t slow_path_acquires = 0;  // took a shard mutex (or created fresh)
  uint64_t cross_shard_steals = 0;  // free-list hits served off-home-shard
  uint64_t cross_node_steals = 0;   // ... and off the home's modeled NUMA node
  // Snapshot-affinity counters.
  uint64_t affine_hits = 0;      // keyed acquires served with the snapshot resident
  uint64_t affine_parks = 0;     // releases that skipped zeroing (snapshot-backed)
  uint64_t affine_reclaims = 0;  // affine shells cleaned: demand, budget, or retire
  uint64_t delta_pages = 0;      // epoch-dirty pages recorded across affine parks
  // Governance counters (the eviction policy's observable behavior).
  uint64_t affine_evictions = 0;       // shells evicted by the resident-byte budget
  uint64_t affine_retired = 0;         // shells eagerly reclaimed by RetireGeneration
  // Gauge: bytes parked affine right now == affine_shared_bytes +
  // affine_private_bytes (the conservation invariant; exact at quiescence —
  // the lock-free park/unpark paths update the three atomics one at a time).
  uint64_t affine_resident_bytes = 0;
  uint64_t affine_shared_bytes = 0;   // gauge: extent chains, once per live generation
  uint64_t affine_private_bytes = 0;  // gauge: per-shell privatized pages
  // Quarantine counters (faulted invocations).  A quarantined shell is never
  // parked affine and never pushed to the lock-free free stacks; only a
  // cleaner-crew full scrub readmits it (async mode), or it is destroyed
  // outright (sync / no pooling — there is no crew to scrub it).
  // Conservation: quarantined == quarantine_scrubbed + quarantine_destroyed
  // + quarantined_now (exact at quiescence, like the residency gauge).
  uint64_t quarantined = 0;            // shells handed to Quarantine()
  uint64_t quarantine_scrubbed = 0;    // scrubbed + readmitted by the crew
  uint64_t quarantine_destroyed = 0;   // destroyed (no crew to scrub)
  uint64_t quarantined_now = 0;        // gauge: awaiting the crew's scrub
};

// Acquire-latency summary from the pool's log2-bucketed histogram: wall
// nanoseconds per Acquire/AcquireAffine call (bucket upper bounds), plus the
// same figure converted to modeled cycles at the reference clock rate.
struct AcquireLatency {
  uint64_t samples = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p50_cycles = 0;
  uint64_t p99_cycles = 0;
};

// A consistent point-in-time breakdown of the affine residency gauge.  The
// per-generation rows are read from the per-generation atomic counters and
// resident_bytes is *derived* as their sum, so sum(shared + private) over
// rows == resident_bytes at every observation — the COW analogue of the
// executor's submitted == completed + queued + in_flight conservation law.
struct AffineAccounting {
  struct Generation {
    uint64_t generation = 0;
    uint64_t shared_bytes = 0;   // the extent chain, charged once
    uint64_t private_bytes = 0;  // privatized pages across parked shells
    int64_t parked_shells = 0;
  };
  uint64_t resident_bytes = 0;  // sum of the rows (== the gauge at quiescence)
  std::vector<Generation> generations;
};

struct PoolOptions {
  CleanMode mode = CleanMode::kSync;
  // Lock stripes (now: Treiber-stack stripes; the mutex is slow-path only).
  // The default comfortably exceeds the worker counts the executor drives.
  int shards = 8;
  // Async cleaner crew size (ignored unless mode == kAsync).
  int cleaners = 2;
  // Resident-byte budget for parked snapshot-affine shells; 0 = unlimited.
  // A park that exceeds it evicts least-recently-used generations into the
  // cleaning path until parked bytes fit again.
  uint64_t affine_budget_bytes = 0;
  // Per-lane cache slots.  0 = auto: max(16, 2 * shards), enough for the
  // 16-lane fig9 sweep with every lane owning a private slot.
  int lanes = 0;
  // Modeled NUMA topology: shards are split into this many contiguous node
  // blocks and the steal order visits same-node shards first.  1 = flat.
  int numa_nodes = 1;
};

class Pool {
 public:
  explicit Pool(CleanMode mode = CleanMode::kSync) : Pool(PoolOptions{mode}) {}
  explicit Pool(const PoolOptions& options);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  // Binds the calling thread to `lane` for every pool in the process (the
  // executor binds each worker to its worker index).  Unbound threads are
  // lazily assigned a process-unique lane id on first pool use; either way
  // the lane — and thus the home shard and modeled NUMA node — is stable
  // for the thread's lifetime.
  static void BindLane(uint32_t lane);

  // Acquires a shell with the given configuration, reusing a clean pooled
  // shell when available.  `*from_pool` (optional) reports which path ran.
  std::unique_ptr<vkvm::Vm> Acquire(const vkvm::VmConfig& config, bool* from_pool = nullptr);

  // Keyed acquire: prefers the lane cache / home shard stack holding
  // snapshot `generation` resident (then steals from siblings, nearest node
  // first), falling back to a clean shell and finally a fresh create.
  // `*affine_hit` reports whether the returned shell holds the snapshot
  // (caller may delta-restore).
  std::unique_ptr<vkvm::Vm> AcquireAffine(const vkvm::VmConfig& config, uint64_t generation,
                                          bool* affine_hit, bool* from_pool = nullptr);

  // Returns a shell to the pool (cleaning per the pool's mode).
  void Release(std::unique_ptr<vkvm::Vm> vm);

  // Parks a snapshot-backed shell *without zeroing*: snapshot `generation`
  // plus the shell's epoch-dirty delta fully describe its memory, so a later
  // AcquireAffine(generation) can delta-restore it.  The post-restore dirty
  // delta is recorded in stats (delta_pages).  Never hand a shell here whose
  // memory deviates from the snapshot outside its epoch bitmap.
  //
  // Residency accounting: a COW-backed shell is charged its privatized bytes
  // only; `shared_bytes` (the generation's extent-chain size) is charged
  // once when the generation's first shell parks and released when its last
  // shell leaves.  Every park of one generation must pass the same
  // shared_bytes (it is a property of the snapshot); a shell without a COW
  // base is charged its full guest memory and should pass shared_bytes == 0.
  void ReleaseAffine(std::unique_ptr<vkvm::Vm> vm, uint64_t generation,
                     uint64_t shared_bytes = 0);

  // Returns a shell whose invocation *faulted* (guest trap, denied or
  // illegal hypercall, poisoned restore, runaway, worker death).  The shell
  // is in an unknown state, so it takes the strictest path back: it is never
  // parked snapshot-affine and never pushed onto a lock-free free stack —
  // in async mode it waits on a dedicated quarantine queue until the cleaner
  // crew has fully scrubbed it (every dirty page zeroed, vCPU reset); with
  // no crew (sync / no pooling) it is destroyed outright.  Either way no
  // later acquire can observe the faulted state: the blast radius of a
  // fault is the one invocation that died.
  void Quarantine(std::unique_ptr<vkvm::Vm> vm);

  // Pops one shell parked under `generation` (any lane/shard, any mem size)
  // without any clean-shell or fresh-create fallback: nullptr when nothing
  // is parked.  The re-capture path folds a warm shell's drift into a delta
  // snapshot; counted as an acquire + affine hit like AcquireAffine.
  std::unique_ptr<vkvm::Vm> StealParkedAffine(uint64_t generation);

  // Eagerly reclaims every shell parked under snapshot `generation` (the
  // generation was retired: its key re-captured or dropped).  Shells go to
  // the cleaner crew in async mode — retirement is maintenance, not a
  // critical path — and are cleaned inline otherwise.  Counted per shell in
  // affine_retired and affine_reclaims.
  void RetireGeneration(uint64_t generation);

  // Blocks until the cleaner crew has drained every dirty queue (benchmark
  // barrier).
  void DrainCleaner();

  // Pre-populates the pool with `count` clean shells (benchmark warm-up).
  // Shells are created outside any lock and pushed round-robin onto the
  // shards' lock-free free stacks.
  void Prewarm(const vkvm::VmConfig& config, int count);

  PoolStats stats() const;
  // Acquire-latency percentiles from the histogram (see AcquireLatency).
  AcquireLatency acquire_latency() const;
  // Consistent snapshot of the residency breakdown (see AffineAccounting).
  AffineAccounting affine_accounting() const;
  // Clean shells of `mem_size` across all shards and lane slots.  Exact on
  // a quiescent pool; diagnostic (racy walk) under concurrency.
  size_t FreeShells(uint64_t mem_size) const;
  // Clean shells of any size across all shards and lane slots (conservation
  // checks; same quiescence caveat).
  size_t TotalFreeShells() const;
  // Parked snapshot-affine shells for `generation` (from the per-generation
  // accounting counters, wherever the shells physically sit).
  size_t AffineShells(uint64_t generation) const;
  // Parked snapshot-affine shells of any generation (conservation checks).
  size_t TotalAffineShells() const;

  CleanMode mode() const { return options_.mode; }
  size_t shard_count() const { return shards_.size(); }
  size_t lane_count() const { return lane_capacity_; }
  // The modeled NUMA node a shard belongs to (contiguous blocks).
  size_t NodeOfShard(size_t shard) const;
  // Clean shells of `mem_size` parked on `shard`'s free stack (lane slots
  // are lane-owned, not shard-owned, and are not counted here).
  size_t FreeShellsInShard(size_t shard, uint64_t mem_size) const;

 private:
  // Generation-LRU + residency state, one row per generation ever parked.
  // Rows are immortal (generations are process-unique and never reused), so
  // the lock-free fast path can hold a GenInfo* with no lifetime protocol;
  // gen_mu_ is a read-mostly shared_mutex guarding only the map itself.
  struct GenInfo {
    uint64_t generation = 0;
    std::atomic<uint64_t> last_use_tick{0};
    std::atomic<int64_t> parked_shells{0};
    // Sum of parked shells' private bytes.
    std::atomic<uint64_t> private_bytes{0};
    // The shared extent chain, declared once (a property of the snapshot);
    // charged to the gauge while any shell is parked.  The charge pairs with
    // the parked_shells 0->1 / 1->0 transitions, which strictly alternate.
    std::atomic<uint64_t> shared_bytes{0};
    // Set before RetireGeneration sweeps; a park that raced the sweep
    // re-checks it after pushing and re-runs the sweep itself.
    std::atomic<bool> retired{false};
  };

  // A pooled shell's free-list node.  Nodes are arena-owned for the pool's
  // lifetime (the Treiber stacks' ABA-safety contract) and recycled through
  // spare_nodes_, so the steady state allocates nothing.  `vm` is written
  // only by the node's owner (pusher before insert / popper after removal;
  // the stack CASes order those); the metadata fields are atomics because
  // diagnostic walks and sweep filters read them without ownership.
  struct ShellNode {
    std::atomic<ShellNode*> next{nullptr};
    vkvm::Vm* vm = nullptr;
    std::atomic<uint64_t> mem_size{0};
    std::atomic<uint64_t> generation{0};  // 0 = clean shell
    std::atomic<uint64_t> private_bytes{0};
    GenInfo* gen = nullptr;  // accounting row (affine nodes only)
  };

  struct Shard {
    // Slow-path maintenance only (exhaustive sweeps, eviction, retirement
    // serialize here); the acquire/release fast paths never take it.
    mutable std::mutex mu;
    TaggedStack<ShellNode> free;    // clean shells, mixed mem sizes
    TaggedStack<ShellNode> affine;  // snapshot-affine shells, mixed generations
    TaggedStack<ShellNode> dirty;   // awaiting the cleaner crew
  };

  // One lane's single-slot caches, padded to a cache line so neighboring
  // lanes never false-share.
  struct alignas(64) Lane {
    std::atomic<ShellNode*> clean{nullptr};
    std::atomic<ShellNode*> affine{nullptr};
  };

  // The calling thread's stable lane id (bound or auto-assigned).
  static uint32_t CurrentLane();
  size_t LaneIndex() const;
  size_t HomeShard() const;

  // Node arena: pop a spare (lock-free) or allocate into all_nodes_.
  ShellNode* WrapShell(std::unique_ptr<vkvm::Vm> vm, uint64_t generation,
                       uint64_t private_bytes, GenInfo* gen);
  // Takes the vm out of a popped node and recycles the node.
  std::unique_ptr<vkvm::Vm> UnwrapShell(ShellNode* node);

  // Zeroes dirty pages and resets vCPU/accounting.  `charge_inline` charges
  // the modeled memset cost to the shell (sync release and inline affine
  // reclaims sit on a critical path; the async cleaner crew absorbs it off
  // the critical path instead).
  void CleanShell(vkvm::Vm* vm, bool charge_inline);

  // Lock-free bounded pop of the first node matching (mem_size[, gen]) from
  // `stack`, re-pushing up to kPopScan mismatches.  A false miss (match
  // deeper than the scan bound) is allowed — the caller falls through to
  // the exhaustive slow path.
  ShellNode* PopMatch(TaggedStack<ShellNode>& stack, uint64_t mem_size,
                      uint64_t generation, bool match_generation);
  // Exhaustive pop-scan (caller holds the shard mutex): drains the stack,
  // keeps the first match, pushes everything else back.
  ShellNode* ScanMatch(TaggedStack<ShellNode>& stack, uint64_t mem_size,
                       uint64_t generation, bool match_generation);

  // Lock-free tiers 1+2 for a clean shell (lane slot, then NUMA-ordered
  // stack pops); nullptr on miss.  Counts the serving tier.
  std::unique_ptr<vkvm::Vm> TryFastClean(const vkvm::VmConfig& config, bool* from_pool);
  // Lock-free tiers 1+2 for a generation-affine shell; nullptr on miss.
  std::unique_ptr<vkvm::Vm> TryFastAffine(const vkvm::VmConfig& config, uint64_t generation,
                                          bool* from_pool);
  // The mutex slow path: exhaustive exact-generation affine sweep (when
  // `generation` != 0), exhaustive clean sweep, any-generation affine
  // reclaim, finally a fresh create.  Always serves.
  std::unique_ptr<vkvm::Vm> AcquireSlow(const vkvm::VmConfig& config, uint64_t generation,
                                        bool* affine_hit, bool* from_pool);
  // Put a node taken out of lane `lane`'s slot back: re-CAS into the slot
  // if still empty, else spill to the lane's shard stack.
  void ReinsertLaneClean(size_t lane, ShellNode* node);
  void ReinsertLaneAffine(size_t lane, ShellNode* node);
  // Diagnostic stack walk (quiescent-exact; see the accessor caveats).
  size_t CountStack(const TaggedStack<ShellNode>& stack, uint64_t mem_size,
                    bool match_mem) const;

  // Pops one dirty shell, scanning shards from `home` (work-stealing).
  // Transfers it to "cleaning in flight" before the dirty count drops so
  // DrainCleaner never observes a false drain.
  std::unique_ptr<vkvm::Vm> PopDirty(size_t home, size_t* source_shard);
  void CleanerLoop(size_t home);
  // Parks a clean shell: the *caller's lane slot* when parking on the
  // release path (lane locality), else the shard's free stack.
  void ParkClean(std::unique_ptr<vkvm::Vm> vm, size_t shard, bool try_lane);

  // Accounting row lookup/creation (shared lock for the common hit).
  GenInfo* FindGen(uint64_t generation) const;
  GenInfo* FindOrCreateGen(uint64_t generation);
  // Residency bookkeeping.  TryChargeAffine refuses (returns false) when the
  // generation is retired — the caller diverts the shell to the cleaning
  // path.  The shared chain is charged on the parked_shells 0->1 transition
  // and released on 1->0; transitions strictly alternate, so charge/release
  // pair exactly with the (immutable) declared chain size.
  bool TryChargeAffine(GenInfo* gen, uint64_t shared_bytes, uint64_t private_bytes);
  void ReleaseAffineCharge(GenInfo* gen, uint64_t private_bytes);

  // Removes up to `max_take` affine nodes of `generation` from every lane
  // slot and shard stack (ownership transfers to the caller; charges are
  // NOT released).  Returns (node, source shard) pairs.
  std::vector<std::pair<ShellNode*, size_t>> TakeAffineNodes(uint64_t generation,
                                                             size_t max_take);
  // Disposes retired-generation shells: releases charges, counts, cleans.
  void RetireSweep(GenInfo* gen);

  // Sends a formerly-affine shell through the cleaning path: the dirty
  // queue (async mode) or an inline clean (sync mode).  `shard` is where it
  // should land / was parked.
  void Dispose(std::unique_ptr<vkvm::Vm> vm, size_t shard);
  // Evicts least-recently-used generations until parked affine bytes fit
  // the configured budget again (no-op when unlimited).
  void EnforceAffineBudget();

  void RecordAcquireNs(uint64_t ns);

  const PoolOptions options_;
  size_t lane_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<Lane[]> lanes_;
  // Per-home-shard steal order: home first, then same-node shards, then
  // remote nodes (precomputed; read-only after construction).
  std::vector<std::vector<uint32_t>> probe_order_;

  // Node arena.  spare_nodes_ recycles popped nodes lock-free; all_nodes_
  // (mutex-guarded, touched only when the spare stack is empty) owns them.
  TaggedStack<ShellNode> spare_nodes_;
  mutable std::mutex node_mu_;
  std::vector<std::unique_ptr<ShellNode>> all_nodes_;

  // Cleaner-crew coordination.  The dirty/in-flight counters are atomics;
  // the release fast path pushes lock-free and notifies without the mutex,
  // so cleaners and DrainCleaner wait with a timeout as the belt against a
  // missed notify (the race window is the notify racing a wait entry).
  std::mutex cleaner_mu_;
  std::condition_variable cleaner_cv_;  // cleaners sleep here
  std::condition_variable drain_cv_;    // DrainCleaner sleeps here
  std::atomic<int64_t> dirty_count_{0};
  std::atomic<int64_t> cleaning_in_flight_{0};
  // Quarantined shells awaiting the crew's scrub.  A single global stack:
  // quarantine is the fault path, never a throughput path, and one queue
  // keeps the "never on a free stack until scrubbed" property trivially
  // auditable.  Counted (quarantine_count_) before push, like dirty_count_,
  // so DrainCleaner covers it.
  TaggedStack<ShellNode> quarantine_;
  std::atomic<int64_t> quarantine_count_{0};
  // Parked affine shells across all lanes/shards.  A zero read lets
  // acquires skip the affine probes entirely — the common case when nothing
  // is parked.
  std::atomic<int64_t> affine_count_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> cleaners_;

  // Generation table (see GenInfo).  Read-mostly: the fast path takes the
  // shared side only; exclusive only to insert a new generation's row.
  mutable std::shared_mutex gen_mu_;
  std::map<uint64_t, std::unique_ptr<GenInfo>> generations_;
  std::atomic<uint64_t> use_tick_{0};

  // Acquire-latency histogram: log2(ns) buckets.
  static constexpr int kLatBuckets = 40;
  mutable std::atomic<uint64_t> lat_buckets_[kLatBuckets] = {};

  struct AtomicStats {
    std::atomic<uint64_t> acquires{0};
    std::atomic<uint64_t> pool_hits{0};
    std::atomic<uint64_t> fresh_creates{0};
    std::atomic<uint64_t> releases{0};
    std::atomic<uint64_t> cleans{0};
    std::atomic<uint64_t> bytes_zeroed{0};
    std::atomic<uint64_t> lane_cache_hits{0};
    std::atomic<uint64_t> freelist_hits{0};
    std::atomic<uint64_t> slow_path_acquires{0};
    std::atomic<uint64_t> cross_shard_steals{0};
    std::atomic<uint64_t> cross_node_steals{0};
    std::atomic<uint64_t> affine_hits{0};
    std::atomic<uint64_t> affine_parks{0};
    std::atomic<uint64_t> affine_reclaims{0};
    std::atomic<uint64_t> delta_pages{0};
    std::atomic<uint64_t> affine_evictions{0};
    std::atomic<uint64_t> affine_retired{0};
    std::atomic<uint64_t> affine_resident_bytes{0};
    std::atomic<uint64_t> affine_shared_bytes{0};
    std::atomic<uint64_t> affine_private_bytes{0};
    std::atomic<uint64_t> quarantined{0};
    std::atomic<uint64_t> quarantine_scrubbed{0};
    std::atomic<uint64_t> quarantine_destroyed{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace wasp

#endif  // SRC_WASP_POOL_H_
