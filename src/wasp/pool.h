// The virtine shell pool (Section 5.2, Figure 6), scaled out for multicore
// and made snapshot-aware.
//
// Creating a hardware VM context is expensive (host kernel allocation of
// VMCS/VMCB state, EPT construction).  Wasp therefore keeps released VM
// contexts — "shells" — and reuses them: a released shell is *cleaned*
// (every dirty page zeroed, preventing information leakage) and parked in a
// free list keyed by memory size.  Cleaning can run synchronously on
// release ("Wasp+C") or on a background cleaner crew ("Wasp+CA"), which
// takes cleaning off the acquire/release critical path and brings shell
// provisioning within a few percent of a bare vmrun.
//
// Snapshot affinity: a shell that just ran a snapshot-backed virtine still
// holds that snapshot's memory image, deviating only in the pages the run
// dirtied (tracked by GuestMemory's epoch bitmap).  ReleaseAffine parks such
// a shell *without zeroing it*, tagged by snapshot generation; a later
// AcquireAffine for the same generation gets it back and repairs just the
// delta — warm restores become O(working set) instead of O(image), and the
// release-side zeroing of those same pages disappears entirely.  Isolation
// is preserved: the repaired shell is byte-identical to a full restore, and
// any *other* consumer (a plain Acquire, or a keyed Acquire for a different
// generation) only ever sees an affine shell after it has been fully
// cleaned (reclaimed).
//
// Governance: parked affine shells are memory a long-lived service pays for.
// Under COW backing, what a shell pays for is *private* bytes — the pages it
// privatized on write — while the shared extent chain is charged **once per
// live generation**, no matter how many shells map it: resident cost is
// O(image + Σ working sets), not O(shells × image).  A shell parked without
// a COW base (legacy full-copy parking) is charged its whole guest memory,
// preserving the old accounting.  Two policies bound residency.  (1) A
// configurable resident-byte budget (PoolOptions::affine_budget_bytes): when
// a park pushes the gauge over budget, shells of the least-recently-used
// *generation* are evicted into the cleaning path (the async cleaner crew
// when one exists, inline otherwise) until the budget holds again; evicting
// a generation's last shell releases its shared charge too.  (2) Eager
// retirement (RetireGeneration): when a snapshot generation is retired — its
// key was re-captured or dropped — every shell parked under it is reclaimed
// immediately instead of lingering until a non-affine consumer happens to
// sweep it up.  Both paths are counted in PoolStats (affine_evictions,
// affine_retired, and the affine_resident_bytes gauge) so tests and benches
// can assert the budget actually holds.  The gauge obeys a conservation
// invariant at every observation: affine_resident_bytes ==
// sum over live generations of (shared_bytes + private_bytes) — exposed for
// verification via affine_accounting().
//
// Concurrency model: the pool is lock-striped into N shards, each with its
// own mutex, free lists, affine lists, and dirty queue.  A thread's
// Acquire/Release lands on its home shard (stable hash of the thread id),
// so concurrent invokers on different threads never contend on a global
// lock.  An acquire that misses its home shard probes sibling shards with
// try_lock — a contended sibling is skipped, not convoyed on — and only
// falls back to a blocking sweep (then a fresh create) when the
// opportunistic pass finds nothing.  The async cleaner crew steals dirty
// shells from sibling shards the same way, so no shell is stranded behind a
// busy shard.  Stats are plain atomics, aggregated on read.
#ifndef SRC_WASP_POOL_H_
#define SRC_WASP_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/vkvm/vkvm.h"

namespace wasp {

enum class CleanMode {
  kNone,   // no pooling: every release destroys the VM
  kSync,   // clean on release, inline
  kAsync,  // clean on a background cleaner crew
};

struct PoolStats {
  uint64_t acquires = 0;
  uint64_t pool_hits = 0;       // shells served from a free or affine list
  uint64_t fresh_creates = 0;   // shells created from scratch
  uint64_t releases = 0;
  uint64_t cleans = 0;
  uint64_t bytes_zeroed = 0;
  // Snapshot-affinity counters.
  uint64_t affine_hits = 0;      // keyed acquires served with the snapshot resident
  uint64_t affine_parks = 0;     // releases that skipped zeroing (snapshot-backed)
  uint64_t affine_reclaims = 0;  // affine shells cleaned: demand, budget, or retire
  uint64_t delta_pages = 0;      // epoch-dirty pages recorded across affine parks
  // Governance counters (the eviction policy's observable behavior).
  uint64_t affine_evictions = 0;       // shells evicted by the resident-byte budget
  uint64_t affine_retired = 0;         // shells eagerly reclaimed by RetireGeneration
  // Gauge: bytes parked affine right now == affine_shared_bytes +
  // affine_private_bytes (the conservation invariant).
  uint64_t affine_resident_bytes = 0;
  uint64_t affine_shared_bytes = 0;   // gauge: extent chains, once per live generation
  uint64_t affine_private_bytes = 0;  // gauge: per-shell privatized pages
};

// A consistent point-in-time breakdown of the affine residency gauge (taken
// under the generation lock, so the per-generation rows and the gauge can
// never disagree): sum(shared + private) over rows == resident_bytes at
// every observation, the COW analogue of the executor's
// submitted == completed + queued + in_flight conservation law.
struct AffineAccounting {
  struct Generation {
    uint64_t generation = 0;
    uint64_t shared_bytes = 0;   // the extent chain, charged once
    uint64_t private_bytes = 0;  // privatized pages across parked shells
    int64_t parked_shells = 0;
  };
  uint64_t resident_bytes = 0;  // the affine_resident_bytes gauge
  std::vector<Generation> generations;
};

struct PoolOptions {
  CleanMode mode = CleanMode::kSync;
  // Lock stripes.  Acquire/Release serialize only within a shard; the
  // default comfortably exceeds the worker counts the executor drives.
  int shards = 8;
  // Async cleaner crew size (ignored unless mode == kAsync).
  int cleaners = 2;
  // Resident-byte budget for parked snapshot-affine shells; 0 = unlimited.
  // A park that exceeds it evicts least-recently-used generations into the
  // cleaning path until parked bytes fit again.
  uint64_t affine_budget_bytes = 0;
};

class Pool {
 public:
  explicit Pool(CleanMode mode = CleanMode::kSync) : Pool(PoolOptions{mode}) {}
  explicit Pool(const PoolOptions& options);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  // Acquires a shell with the given configuration, reusing a clean pooled
  // shell when available.  `*from_pool` (optional) reports which path ran.
  std::unique_ptr<vkvm::Vm> Acquire(const vkvm::VmConfig& config, bool* from_pool = nullptr);

  // Keyed acquire: prefers a shard-local shell that already holds snapshot
  // `generation` resident (then steals one from a sibling), falling back to
  // a clean shell and finally a fresh create.  `*affine_hit` reports whether
  // the returned shell holds the snapshot (caller may delta-restore).
  std::unique_ptr<vkvm::Vm> AcquireAffine(const vkvm::VmConfig& config, uint64_t generation,
                                          bool* affine_hit, bool* from_pool = nullptr);

  // Returns a shell to the pool (cleaning per the pool's mode).
  void Release(std::unique_ptr<vkvm::Vm> vm);

  // Parks a snapshot-backed shell *without zeroing*: snapshot `generation`
  // plus the shell's epoch-dirty delta fully describe its memory, so a later
  // AcquireAffine(generation) can delta-restore it.  The post-restore dirty
  // delta is recorded in stats (delta_pages).  Never hand a shell here whose
  // memory deviates from the snapshot outside its epoch bitmap.
  //
  // Residency accounting: a COW-backed shell is charged its privatized bytes
  // only; `shared_bytes` (the generation's extent-chain size) is charged
  // once when the generation's first shell parks and released when its last
  // shell leaves.  A shell without a COW base is charged its full guest
  // memory (legacy full-copy parking) and should pass shared_bytes == 0.
  void ReleaseAffine(std::unique_ptr<vkvm::Vm> vm, uint64_t generation,
                     uint64_t shared_bytes = 0);

  // Pops one shell parked under `generation` (any shard, any mem size)
  // without any clean-shell or fresh-create fallback: nullptr when nothing
  // is parked.  The re-capture path folds a warm shell's drift into a delta
  // snapshot; counted as an acquire + affine hit like AcquireAffine.
  std::unique_ptr<vkvm::Vm> StealParkedAffine(uint64_t generation);

  // Eagerly reclaims every shell parked under snapshot `generation` (the
  // generation was retired: its key re-captured or dropped).  Shells go to
  // the cleaner crew in async mode — retirement is maintenance, not a
  // critical path — and are cleaned inline otherwise.  Counted per shell in
  // affine_retired and affine_reclaims.
  void RetireGeneration(uint64_t generation);

  // Blocks until the cleaner crew has drained every dirty queue (benchmark
  // barrier).
  void DrainCleaner();

  // Pre-populates the pool with `count` clean shells (benchmark warm-up).
  // Shells are created outside any lock and distributed round-robin across
  // shards with one lock acquisition per shard.
  void Prewarm(const vkvm::VmConfig& config, int count);

  PoolStats stats() const;
  // Consistent snapshot of the residency gauge and its per-generation
  // breakdown (see AffineAccounting).
  AffineAccounting affine_accounting() const;
  // Clean shells of `mem_size` across all shards.
  size_t FreeShells(uint64_t mem_size) const;
  // Clean shells of any size across all shards (conservation checks).
  size_t TotalFreeShells() const;
  // Parked snapshot-affine shells for `generation` across all shards.
  size_t AffineShells(uint64_t generation) const;
  // Parked snapshot-affine shells of any generation (conservation checks).
  size_t TotalAffineShells() const;

  CleanMode mode() const { return options_.mode; }
  size_t shard_count() const { return shards_.size(); }
  size_t FreeShellsInShard(size_t shard, uint64_t mem_size) const;

 private:
  // A parked snapshot-affine shell plus the private bytes it was charged at
  // park time (the charge must be released with the same value it was taken
  // with, whatever the memory looks like later).
  struct AffineShell {
    std::unique_ptr<vkvm::Vm> vm;
    uint64_t private_bytes = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::map<uint64_t, std::vector<std::unique_ptr<vkvm::Vm>>> free;  // by mem size
    std::map<uint64_t, std::vector<AffineShell>> affine;  // by snapshot generation
    std::deque<std::unique_ptr<vkvm::Vm>> dirty;
  };

  // The calling thread's home shard (stable across the thread's lifetime).
  size_t HomeShard() const;
  // Zeroes dirty pages and resets vCPU/accounting.  `charge_inline` charges
  // the modeled memset cost to the shell (sync release and inline affine
  // reclaims sit on a critical path; the async cleaner crew absorbs it off
  // the critical path instead).
  void CleanShell(vkvm::Vm* vm, bool charge_inline);
  // Lock-held helpers; each assumes `shard.mu` is held by the caller.
  std::unique_ptr<vkvm::Vm> PopFree(Shard& shard, uint64_t mem_size);
  std::unique_ptr<vkvm::Vm> PopAffine(Shard& shard, uint64_t generation, uint64_t mem_size);
  std::unique_ptr<vkvm::Vm> PopAnyAffine(Shard& shard, uint64_t mem_size);
  // The clean-shell acquire path shared by Acquire and AcquireAffine's
  // fallback (does not bump the acquires counter).
  std::unique_ptr<vkvm::Vm> AcquireClean(const vkvm::VmConfig& config, bool* from_pool);
  // Pops one dirty shell, scanning shards from `home` (work-stealing).
  // Transfers it to "cleaning in flight" before the dirty count drops so
  // DrainCleaner never observes a false drain.
  std::unique_ptr<vkvm::Vm> PopDirty(size_t home, size_t* source_shard);
  void CleanerLoop(size_t home);
  void ParkClean(std::unique_ptr<vkvm::Vm> vm, size_t shard);
  // Affine-residency bookkeeping shared by every park/pop/evict path.
  // TryNoteAffineParked refuses (returns false) when the generation was
  // retired — the caller must divert the shell to the cleaning path instead
  // of parking it.  Both are called with the owning shard's lock held, so a
  // park can never interleave with RetireGeneration's sweep of that shard.
  // The gauge atomics are written inside the gen_mu_ critical section, which
  // is what makes affine_accounting()'s breakdown == gauge at every
  // observation.  shared_bytes is charged on a generation's first park and
  // released on its last removal; private_bytes per shell.
  bool TryNoteAffineParked(uint64_t generation, uint64_t shared_bytes,
                           uint64_t private_bytes);
  void NoteAffineRemoved(uint64_t generation, uint64_t private_bytes);
  // Sends a formerly-affine shell through the cleaning path: the dirty
  // queue (async mode) or an inline clean (sync mode).  `shard` is where it
  // should land / was parked.
  void Dispose(std::unique_ptr<vkvm::Vm> vm, size_t shard);
  // Evicts least-recently-used generations until parked affine bytes fit
  // the configured budget again (no-op when unlimited).
  void EnforceAffineBudget();

  const PoolOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Cleaner-crew coordination.  The dirty/in-flight counters are atomics so
  // the release fast path never takes this mutex for queue work; it is held
  // only around notify to close the sleep/notify race.
  std::mutex cleaner_mu_;
  std::condition_variable cleaner_cv_;  // cleaners sleep here
  std::condition_variable drain_cv_;    // DrainCleaner sleeps here
  std::atomic<int64_t> dirty_count_{0};
  std::atomic<int64_t> cleaning_in_flight_{0};
  // Parked affine shells across all shards (maintained by ReleaseAffine and
  // the Pop* helpers).  A zero read lets acquires skip the affine sweeps
  // entirely — the common case when nothing is parked — instead of blocking
  // through every shard lock just to find empty lists.
  std::atomic<int64_t> affine_count_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> cleaners_;

  // Generation-LRU state for the eviction policy: per-generation last-use
  // tick (bumped on park and affine hit) and live parked-shell count, under
  // a dedicated mutex so shard locks never nest inside it.
  struct GenInfo {
    uint64_t last_use_tick = 0;
    int64_t parked_shells = 0;
    // Residency breakdown: the shared extent chain (charged while any shell
    // is parked) and the sum of parked shells' private bytes.
    uint64_t shared_bytes = 0;
    uint64_t private_bytes = 0;
  };
  mutable std::mutex gen_mu_;
  std::map<uint64_t, GenInfo> generations_;
  // Generations that have been retired.  A release racing RetireGeneration
  // can finish after the sweep; its park attempt consults this set (under
  // gen_mu_, inside the shard lock) and diverts to the cleaning path, so a
  // dead generation can never re-strand memory.  Generations are never
  // reused, so entries stay valid forever; one u64 per retirement.
  std::set<uint64_t> retired_generations_;
  std::atomic<uint64_t> use_tick_{0};

  struct AtomicStats {
    std::atomic<uint64_t> acquires{0};
    std::atomic<uint64_t> pool_hits{0};
    std::atomic<uint64_t> fresh_creates{0};
    std::atomic<uint64_t> releases{0};
    std::atomic<uint64_t> cleans{0};
    std::atomic<uint64_t> bytes_zeroed{0};
    std::atomic<uint64_t> affine_hits{0};
    std::atomic<uint64_t> affine_parks{0};
    std::atomic<uint64_t> affine_reclaims{0};
    std::atomic<uint64_t> delta_pages{0};
    std::atomic<uint64_t> affine_evictions{0};
    std::atomic<uint64_t> affine_retired{0};
    std::atomic<uint64_t> affine_resident_bytes{0};
    std::atomic<uint64_t> affine_shared_bytes{0};
    std::atomic<uint64_t> affine_private_bytes{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace wasp

#endif  // SRC_WASP_POOL_H_
