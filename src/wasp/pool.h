// The virtine shell pool (Section 5.2, Figure 6).
//
// Creating a hardware VM context is expensive (host kernel allocation of
// VMCS/VMCB state, EPT construction).  Wasp therefore keeps released VM
// contexts — "shells" — and reuses them: a released shell is *cleaned*
// (every dirty page zeroed, preventing information leakage) and parked in a
// free list keyed by memory size.  Cleaning can run synchronously on
// release ("Wasp+C") or on a background cleaner thread ("Wasp+CA"), which
// takes cleaning off the acquire/release critical path and brings shell
// provisioning within a few percent of a bare vmrun.
#ifndef SRC_WASP_POOL_H_
#define SRC_WASP_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/vkvm/vkvm.h"

namespace wasp {

enum class CleanMode {
  kNone,   // no pooling: every release destroys the VM
  kSync,   // clean on release, inline
  kAsync,  // clean on a background thread
};

struct PoolStats {
  uint64_t acquires = 0;
  uint64_t pool_hits = 0;       // shells served from the free list
  uint64_t fresh_creates = 0;   // shells created from scratch
  uint64_t releases = 0;
  uint64_t cleans = 0;
  uint64_t bytes_zeroed = 0;
};

class Pool {
 public:
  explicit Pool(CleanMode mode = CleanMode::kSync);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  // Acquires a shell with the given configuration, reusing a clean pooled
  // shell when available.  `*from_pool` (optional) reports which path ran.
  std::unique_ptr<vkvm::Vm> Acquire(const vkvm::VmConfig& config, bool* from_pool = nullptr);

  // Returns a shell to the pool (cleaning per the pool's mode).
  void Release(std::unique_ptr<vkvm::Vm> vm);

  // Blocks until the async cleaner has drained its queue (benchmark barrier).
  void DrainCleaner();

  // Pre-populates the pool with `count` clean shells (benchmark warm-up).
  void Prewarm(const vkvm::VmConfig& config, int count);

  PoolStats stats() const;
  size_t FreeShells(uint64_t mem_size) const;

  CleanMode mode() const { return mode_; }

 private:
  // Zeroes dirty pages and resets vCPU/accounting; the modeled cycle cost of
  // the zeroing lands on the *next* user via the clean path being off the
  // acquire path (async) or on release (sync).
  void CleanShell(vkvm::Vm* vm);
  void CleanerLoop();

  const CleanMode mode_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, std::vector<std::unique_ptr<vkvm::Vm>>> free_;  // by mem size
  std::deque<std::unique_ptr<vkvm::Vm>> dirty_;
  PoolStats stats_;
  bool stop_ = false;
  int cleaning_in_flight_ = 0;
  std::thread cleaner_;
};

}  // namespace wasp

#endif  // SRC_WASP_POOL_H_
