// The virtine shell pool (Section 5.2, Figure 6), scaled out for multicore.
//
// Creating a hardware VM context is expensive (host kernel allocation of
// VMCS/VMCB state, EPT construction).  Wasp therefore keeps released VM
// contexts — "shells" — and reuses them: a released shell is *cleaned*
// (every dirty page zeroed, preventing information leakage) and parked in a
// free list keyed by memory size.  Cleaning can run synchronously on
// release ("Wasp+C") or on a background cleaner crew ("Wasp+CA"), which
// takes cleaning off the acquire/release critical path and brings shell
// provisioning within a few percent of a bare vmrun.
//
// Concurrency model: the pool is lock-striped into N shards, each with its
// own mutex, free lists, and dirty queue.  A thread's Acquire/Release lands
// on its home shard (stable hash of the thread id), so concurrent invokers
// on different threads never contend on a global lock.  An acquire that
// misses its home shard steals a clean shell from sibling shards before
// falling back to a fresh create, and the async cleaner crew steals dirty
// shells from sibling shards the same way, so no shell is stranded behind a
// busy shard.  Stats are plain atomics, aggregated on read.
#ifndef SRC_WASP_POOL_H_
#define SRC_WASP_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/vkvm/vkvm.h"

namespace wasp {

enum class CleanMode {
  kNone,   // no pooling: every release destroys the VM
  kSync,   // clean on release, inline
  kAsync,  // clean on a background cleaner crew
};

struct PoolStats {
  uint64_t acquires = 0;
  uint64_t pool_hits = 0;       // shells served from a free list
  uint64_t fresh_creates = 0;   // shells created from scratch
  uint64_t releases = 0;
  uint64_t cleans = 0;
  uint64_t bytes_zeroed = 0;
};

struct PoolOptions {
  CleanMode mode = CleanMode::kSync;
  // Lock stripes.  Acquire/Release serialize only within a shard; the
  // default comfortably exceeds the worker counts the executor drives.
  int shards = 8;
  // Async cleaner crew size (ignored unless mode == kAsync).
  int cleaners = 2;
};

class Pool {
 public:
  explicit Pool(CleanMode mode = CleanMode::kSync) : Pool(PoolOptions{mode}) {}
  explicit Pool(const PoolOptions& options);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  // Acquires a shell with the given configuration, reusing a clean pooled
  // shell when available.  `*from_pool` (optional) reports which path ran.
  std::unique_ptr<vkvm::Vm> Acquire(const vkvm::VmConfig& config, bool* from_pool = nullptr);

  // Returns a shell to the pool (cleaning per the pool's mode).
  void Release(std::unique_ptr<vkvm::Vm> vm);

  // Blocks until the cleaner crew has drained every dirty queue (benchmark
  // barrier).
  void DrainCleaner();

  // Pre-populates the pool with `count` clean shells (benchmark warm-up).
  // Shells are created outside any lock and distributed round-robin across
  // shards with one lock acquisition per shard.
  void Prewarm(const vkvm::VmConfig& config, int count);

  PoolStats stats() const;
  // Clean shells of `mem_size` across all shards.
  size_t FreeShells(uint64_t mem_size) const;
  // Clean shells of any size across all shards (conservation checks).
  size_t TotalFreeShells() const;

  CleanMode mode() const { return options_.mode; }
  size_t shard_count() const { return shards_.size(); }
  size_t FreeShellsInShard(size_t shard, uint64_t mem_size) const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::map<uint64_t, std::vector<std::unique_ptr<vkvm::Vm>>> free;  // by mem size
    std::deque<std::unique_ptr<vkvm::Vm>> dirty;
  };

  // The calling thread's home shard (stable across the thread's lifetime).
  size_t HomeShard() const;
  // Zeroes dirty pages and resets vCPU/accounting; the modeled cycle cost of
  // the zeroing lands on the *next* user via the clean path being off the
  // acquire path (async) or on release (sync).
  void CleanShell(vkvm::Vm* vm);
  // Pops one dirty shell, scanning shards from `home` (work-stealing).
  // Transfers it to "cleaning in flight" before the dirty count drops so
  // DrainCleaner never observes a false drain.
  std::unique_ptr<vkvm::Vm> PopDirty(size_t home, size_t* source_shard);
  void CleanerLoop(size_t home);
  void ParkClean(std::unique_ptr<vkvm::Vm> vm, size_t shard);

  const PoolOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Cleaner-crew coordination.  The dirty/in-flight counters are atomics so
  // the release fast path never takes this mutex for queue work; it is held
  // only around notify to close the sleep/notify race.
  std::mutex cleaner_mu_;
  std::condition_variable cleaner_cv_;  // cleaners sleep here
  std::condition_variable drain_cv_;    // DrainCleaner sleeps here
  std::atomic<int64_t> dirty_count_{0};
  std::atomic<int64_t> cleaning_in_flight_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> cleaners_;

  struct AtomicStats {
    std::atomic<uint64_t> acquires{0};
    std::atomic<uint64_t> pool_hits{0};
    std::atomic<uint64_t> fresh_creates{0};
    std::atomic<uint64_t> releases{0};
    std::atomic<uint64_t> cleans{0};
    std::atomic<uint64_t> bytes_zeroed{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace wasp

#endif  // SRC_WASP_POOL_H_
