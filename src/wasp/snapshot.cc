#include "src/wasp/snapshot.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "src/base/log.h"

namespace wasp {
namespace {

std::atomic<uint64_t> g_generation{1};

// A page of zeros for repairing delta pages the snapshot never captured.
constexpr uint8_t kZeroPage[vhw::kPageSize] = {};

}  // namespace

uint64_t NextSnapshotGeneration() { return g_generation.fetch_add(1); }

const uint8_t* Snapshot::FindPage(uint64_t page) const {
  // Extents are sorted by first_page: binary-search the run containing it.
  auto it = std::upper_bound(
      extents.begin(), extents.end(), page,
      [](uint64_t p, const Extent& e) { return p < e.first_page; });
  if (it == extents.begin()) {
    return nullptr;
  }
  --it;
  if (page >= it->first_page + it->page_count) {
    return nullptr;
  }
  return bytes.data() + it->byte_offset + ((page - it->first_page) << vhw::kPageBits);
}

SnapshotRef CaptureSnapshot(const vhw::GuestMemory& mem, const vhw::ArchState& cpu) {
  auto snap = std::make_shared<Snapshot>();
  snap->cpu = cpu;
  snap->mem_size = mem.size();
  snap->generation = NextSnapshotGeneration();
  const uint64_t pages = mem.NumPages();
  // Size the buffer up front so the copy loop never reallocates.
  snap->bytes.resize(mem.CountDirtyPages() << vhw::kPageBits);
  uint64_t offset = 0;
  uint64_t p = 0;
  while (p < pages) {
    if (!mem.PageDirty(p)) {
      ++p;
      continue;
    }
    uint64_t run_end = p + 1;
    while (run_end < pages && mem.PageDirty(run_end)) {
      ++run_end;
    }
    Snapshot::Extent extent;
    extent.first_page = p;
    extent.page_count = run_end - p;
    extent.byte_offset = offset;
    const uint64_t nbytes = extent.page_count << vhw::kPageBits;
    std::memcpy(snap->bytes.data() + offset, mem.data() + (p << vhw::kPageBits), nbytes);
    snap->extents.push_back(extent);
    offset += nbytes;
    p = run_end;
  }
  VB_CHECK(offset == snap->bytes.size(), "snapshot capture sizing mismatch");
  return snap;
}

uint64_t RestoreFullInto(const Snapshot& snap, vhw::GuestMemory* mem) {
  for (const Snapshot::Extent& extent : snap.extents) {
    // Write marks the pages dirty (so a later pool clean re-zeroes them) and
    // prefaults their EPT regions (the hypervisor's copy populates mappings
    // before the guest runs).
    vbase::Status st = mem->Write(extent.first_page << vhw::kPageBits,
                                  snap.bytes.data() + extent.byte_offset,
                                  extent.page_count << vhw::kPageBits);
    VB_CHECK(st.ok(), "snapshot restore write failed: " << st.ToString());
  }
  return snap.byte_size();
}

uint64_t RestoreDeltaInto(const Snapshot& snap, vhw::GuestMemory* mem) {
  // Repair only the pages written since the snapshot was laid down: copy
  // captured pages back, zero pages the snapshot never held (one tenant's
  // writes outside the image must not survive into the next invocation).
  const std::vector<uint64_t> pages = mem->CollectDirtySince();
  for (const uint64_t page : pages) {
    const uint8_t* src = snap.FindPage(page);
    vbase::Status st = mem->Write(page << vhw::kPageBits, src != nullptr ? src : kZeroPage,
                                  vhw::kPageSize);
    VB_CHECK(st.ok(), "snapshot delta restore write failed: " << st.ToString());
  }
  return static_cast<uint64_t>(pages.size()) << vhw::kPageBits;
}

}  // namespace wasp
