#include "src/wasp/snapshot.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "src/base/log.h"

namespace wasp {
namespace {

std::atomic<uint64_t> g_generation{1};

// A page of zeros for repairing delta pages the snapshot never captured.
constexpr uint8_t kZeroPage[vhw::kPageSize] = {};

// Copies `mem`'s pages named by `pages` (ascending) into a fresh extent
// buffer, coalescing consecutive pages into runs.
std::shared_ptr<vhw::ExtentBuffer> BuildExtents(const vhw::GuestMemory& mem,
                                                const std::vector<uint64_t>& pages) {
  auto buffer = std::make_shared<vhw::ExtentBuffer>();
  buffer->bytes.resize(pages.size() << vhw::kPageBits);
  uint64_t offset = 0;
  size_t i = 0;
  while (i < pages.size()) {
    size_t run_end = i + 1;
    while (run_end < pages.size() && pages[run_end] == pages[run_end - 1] + 1) {
      ++run_end;
    }
    vhw::ExtentBuffer::Extent extent;
    extent.first_page = pages[i];
    extent.page_count = run_end - i;
    extent.byte_offset = offset;
    const uint64_t nbytes = extent.page_count << vhw::kPageBits;
    std::memcpy(buffer->bytes.data() + offset,
                mem.data() + (pages[i] << vhw::kPageBits), nbytes);
    buffer->extents.push_back(extent);
    offset += nbytes;
    i = run_end;
  }
  VB_CHECK(offset == buffer->bytes.size(), "snapshot capture sizing mismatch");
  return buffer;
}

}  // namespace

uint64_t NextSnapshotGeneration() { return g_generation.fetch_add(1); }

uint64_t ChecksumExtentBytes(const vhw::ExtentBuffer& extent) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const uint8_t b : extent.bytes) {
    h = (h ^ b) * 0x100000001b3ULL;
  }
  return h;
}

bool VerifySnapshot(const Snapshot& snap) {
  return snap.extent != nullptr && ChecksumExtentBytes(*snap.extent) == snap.checksum;
}

SnapshotRef CaptureSnapshot(const vhw::GuestMemory& mem, const vhw::ArchState& cpu) {
  auto snap = std::make_shared<Snapshot>();
  snap->cpu = cpu;
  snap->mem_size = mem.size();
  snap->generation = NextSnapshotGeneration();
  std::vector<uint64_t> pages;
  pages.reserve(mem.CountDirtyPages());
  for (uint64_t p = 0; p < mem.NumPages(); ++p) {
    if (mem.PageDirty(p)) {
      pages.push_back(p);
    }
  }
  snap->extent = BuildExtents(mem, pages);
  snap->checksum = ChecksumExtentBytes(*snap->extent);
  return snap;
}

SnapshotRef CaptureDeltaSnapshot(const vhw::GuestMemory& mem, const Snapshot& parent) {
  VB_CHECK(mem.size() >= parent.mem_size, "delta capture memory smaller than parent");
  auto snap = std::make_shared<Snapshot>();
  // Resume point stays the parent's: the chain folds memory drift in, not a
  // new execution state.
  snap->cpu = parent.cpu;
  snap->generation = NextSnapshotGeneration();
  snap->parent_generation = parent.generation;
  auto buffer = BuildExtents(mem, mem.CollectDirtySince());
  buffer->parent = parent.extent;
  // The delta may touch pages beyond the parent's captured span (the donor
  // shell's memory can be larger): mem_size must cover the whole chain so a
  // restore target is never too small for it.
  snap->mem_size = std::max(parent.mem_size, buffer->end_page() << vhw::kPageBits);
  snap->extent = std::move(buffer);
  snap->checksum = ChecksumExtentBytes(*snap->extent);
  return snap;
}

SnapshotRef FlattenSnapshot(const Snapshot& snap) {
  auto flat = std::make_shared<Snapshot>(snap);
  flat->extent = vhw::FlattenChain(snap.extent);
  flat->parent_generation = 0;
  // The flattened layer holds different bytes (the collapsed chain view).
  flat->checksum = ChecksumExtentBytes(*flat->extent);
  return flat;
}

uint64_t RestoreFullInto(const Snapshot& snap, vhw::GuestMemory* mem) {
  // Replay the chain root first so a child's pages land on top of its
  // ancestor's.  Write marks the pages dirty (so a later pool clean
  // re-zeroes them) and prefaults their EPT regions (the hypervisor's copy
  // populates mappings before the guest runs).
  std::vector<const vhw::ExtentBuffer*> layers;
  for (const vhw::ExtentBuffer* layer = snap.extent.get(); layer != nullptr;
       layer = layer->parent.get()) {
    layers.push_back(layer);
  }
  uint64_t copied = 0;
  for (size_t i = layers.size(); i-- > 0;) {
    for (const Snapshot::Extent& extent : layers[i]->extents) {
      vbase::Status st = mem->Write(extent.first_page << vhw::kPageBits,
                                    layers[i]->bytes.data() + extent.byte_offset,
                                    extent.page_count << vhw::kPageBits);
      VB_CHECK(st.ok(), "snapshot restore write failed: " << st.ToString());
    }
    copied += layers[i]->byte_size();
  }
  return copied;
}

uint64_t MapCowInto(const Snapshot& snap, vhw::GuestMemory* mem) {
  mem->MapCowBase(snap.extent);
  return snap.chain_byte_size();
}

uint64_t RestoreDeltaInto(const Snapshot& snap, vhw::GuestMemory* mem) {
  // Repair only the pages written since the snapshot was laid down: copy
  // captured pages back, zero pages the snapshot never held (one tenant's
  // writes outside the image must not survive into the next invocation).
  const std::vector<uint64_t> pages = mem->CollectDirtySince();
  if (mem->HasCowBase() && mem->cow_base() == snap.extent) {
    // COW-backed shell parked under this very snapshot: the repair
    // re-shares the privatized pages, dropping the shell's resident charge
    // back to zero.
    mem->RepairPagesToBase(pages);
    return static_cast<uint64_t>(pages.size()) << vhw::kPageBits;
  }
  for (const uint64_t page : pages) {
    const uint8_t* src = snap.FindPage(page);
    vbase::Status st = mem->Write(page << vhw::kPageBits, src != nullptr ? src : kZeroPage,
                                  vhw::kPageSize);
    VB_CHECK(st.ok(), "snapshot delta restore write failed: " << st.ToString());
  }
  return static_cast<uint64_t>(pages.size()) << vhw::kPageBits;
}

}  // namespace wasp
