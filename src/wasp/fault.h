// Fault taxonomy and deterministic fault injection for the invocation path.
//
// The paper's core claim is isolation: a virtine that dies — guest trap,
// illegal hypercall, poisoned snapshot, runaway loop, worker death — must
// cost exactly one invocation.  This header gives that claim structure:
//
// * `FaultKind` classifies every way an invocation can die, replacing the
//   stringly `Internal("guest fault: ...")` path so callers (executor
//   accounting, the HTTP front end, GovernTrace) can branch on the kind
//   while the human-readable message stays in the Status for logs.
// * `FaultPlan` / `FaultInjector` inject faults deterministically: a rule
//   fires either at an exact global invocation index or with a seeded
//   per-invocation probability, optionally scoped to one virtine key.  Two
//   runs with the same plan, seed, and submission order inject the same
//   faults, so chaos benchmarks (fig17) and regression tests replay.
#ifndef SRC_WASP_FAULT_H_
#define SRC_WASP_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace wasp {

// Why an invocation died.  kNone means the invocation completed (possibly
// with a non-OK host-side status, e.g. image load failure — those are host
// errors, not guest faults, and do not quarantine the shell).
enum class FaultKind : uint8_t {
  kNone = 0,
  kGuestTrap,         // CPU-level fault: illegal instruction, bad access, #BP
  kPolicyDenied,      // hypercall outside the virtine's policy mask
  kIllegalHypercall,  // hypercall port with no registered handler
  kHypercallError,    // a handler failed mid-flight (bad guest pointer, I/O)
  kOversizedReply,    // guest reply exceeded the I/O length ceiling
  kPoisonedSnapshot,  // snapshot checksum mismatch detected on restore
  kRunaway,           // instruction budget exhausted
  kWorkerDeath,       // the invocation's lane died mid-invocation
};
inline constexpr int kNumFaultKinds = 9;

// Stable short name ("guest-trap", "runaway", ...) used as the HTTP 500
// reason phrase and in bench/test output.
const char* FaultKindName(FaultKind kind);

// One injection rule.  Exactly one trigger applies: if `at_invocation` is
// set (!= kNever) the rule fires on that global invocation index; otherwise
// it fires per-invocation with `probability`.  `key` scopes the rule to one
// virtine key ("" = any key).
struct FaultRule {
  static constexpr uint64_t kNever = UINT64_MAX;

  FaultKind kind = FaultKind::kNone;
  std::string key;                    // "" = any key
  uint64_t at_invocation = kNever;    // exact global invocation index
  double probability = 0.0;           // used when at_invocation == kNever
};

// A seedable, declarative fault schedule handed to RuntimeOptions.
struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }

  // Convenience builders.
  static FaultRule At(FaultKind kind, uint64_t invocation, std::string key = "");
  static FaultRule Probability(FaultKind kind, double p, std::string key = "");
};

struct FaultInjectorStats {
  uint64_t invocations = 0;  // invocations that consulted the injector
  uint64_t armed = 0;        // invocations where a rule fired
  uint64_t injected[kNumFaultKinds] = {};  // faults actually delivered, by kind
};

// Thread-safe: Arm() is called concurrently from every invocation lane.
// Determinism under concurrency: the trigger for a probabilistic rule is a
// pure function of (seed, invocation index, rule index), so a fixed
// submission order reproduces the same injection set regardless of lane
// interleaving.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Consults the plan for the next invocation (key = the virtine's key) and
  // returns the fault to inject, or kNone.  First matching rule wins.
  FaultKind Arm(const std::string& key);

  // Records that an armed fault was actually delivered.
  void RecordInjected(FaultKind kind);

  FaultInjectorStats stats() const;

 private:
  FaultPlan plan_;
  std::atomic<uint64_t> next_invocation_{0};
  std::atomic<uint64_t> armed_{0};
  std::atomic<uint64_t> injected_[kNumFaultKinds] = {};
};

}  // namespace wasp

#endif  // SRC_WASP_FAULT_H_
