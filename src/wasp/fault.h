// Fault taxonomy and deterministic fault injection for the invocation path.
//
// The paper's core claim is isolation: a virtine that dies — guest trap,
// illegal hypercall, poisoned snapshot, runaway loop, worker death — must
// cost exactly one invocation.  This header gives that claim structure:
//
// * `FaultKind` classifies every way an invocation can die, replacing the
//   stringly `Internal("guest fault: ...")` path so callers (executor
//   accounting, the HTTP front end, GovernTrace) can branch on the kind
//   while the human-readable message stays in the Status for logs.
// * `FaultPlan` / `FaultInjector` inject faults deterministically: a rule
//   fires either at an exact global invocation index or with a seeded
//   per-invocation probability, optionally scoped to one virtine key.  Two
//   runs with the same plan, seed, and submission order inject the same
//   faults, so chaos benchmarks (fig17) and regression tests replay.
#ifndef SRC_WASP_FAULT_H_
#define SRC_WASP_FAULT_H_

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace wasp {

// Why an invocation died.  kNone means the invocation completed (possibly
// with a non-OK host-side status, e.g. image load failure — those are host
// errors, not guest faults, and do not quarantine the shell).
enum class FaultKind : uint8_t {
  kNone = 0,
  kGuestTrap,         // CPU-level fault: illegal instruction, bad access, #BP
  kPolicyDenied,      // hypercall outside the virtine's policy mask
  kIllegalHypercall,  // hypercall port with no registered handler
  kHypercallError,    // a handler failed mid-flight (bad guest pointer, I/O)
  kOversizedReply,    // guest reply exceeded the I/O length ceiling
  kPoisonedSnapshot,  // snapshot checksum mismatch detected on restore
  kRunaway,           // instruction budget exhausted
  kWorkerDeath,       // the invocation's lane died mid-invocation
};
inline constexpr int kNumFaultKinds = 9;

// Stable short name ("guest-trap", "runaway", ...) used as the HTTP 500
// reason phrase and in bench/test output.
const char* FaultKindName(FaultKind kind);

// One injection rule.  Exactly one trigger applies: if `at_invocation` is
// set (!= kNever) the rule fires on that global invocation index; otherwise
// it fires per-invocation with `probability`.  `key` scopes the rule to one
// virtine key ("" = any key).
struct FaultRule {
  static constexpr uint64_t kNever = UINT64_MAX;

  FaultKind kind = FaultKind::kNone;
  std::string key;                    // "" = any key
  uint64_t at_invocation = kNever;    // exact global invocation index
  double probability = 0.0;           // used when at_invocation == kNever
};

// A seedable, declarative fault schedule handed to RuntimeOptions.
struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }

  // Convenience builders.
  static FaultRule At(FaultKind kind, uint64_t invocation, std::string key = "");
  static FaultRule Probability(FaultKind kind, double p, std::string key = "");
};

// True for the fault kinds where the guest never observably ran: the shell
// died before the invocation had any externally visible effect (worker death
// pre-dispatch, a snapshot that failed its checksum before restore).  Only
// these are safe to retry even for idempotent keys — a kGuestTrap may have
// fired halfway through the guest's own side effects.
inline bool IsRecoverableFault(FaultKind kind) {
  return kind == FaultKind::kWorkerDeath || kind == FaultKind::kPoisonedSnapshot;
}

// Per-key circuit breaker position.  kClosed admits everything; kOpen sheds
// everything (fast-429 upstream); kHalfOpen admits a single probe and sheds
// the rest until the probe resolves.
enum class BreakerState : uint8_t {
  kClosed = 0,
  kOpen,
  kHalfOpen,
};

// Stable short name ("closed", "open", "half-open") for logs and benches.
const char* BreakerStateName(BreakerState state);

// Recovery policy shared by the executor, the HTTP front end, and the
// GovernTrace recovery discipline.  All breaker transitions are driven by
// counts (attempts observed, requests shed), never wall-clock time, so a
// fixed submission order reproduces the same open/half-open/close sequence.
struct RecoveryOptions {
  // Keys whose handlers are declared side-effect free.  Only these are
  // eligible for the automatic retry-once on a recoverable fault.
  std::set<std::string> idempotent_keys;

  // Per-key fault-rate EWMA: rate' = alpha * faulted + (1 - alpha) * rate,
  // fed once per *attempt* (a retried invocation contributes both attempts,
  // so a retry-masked storm still trips the breaker).
  double breaker_alpha = 0.2;

  // Master switch for the breaker.  Retry-once is governed solely by
  // `idempotent_keys`; the two mechanisms compose but do not require each
  // other.
  bool breaker_enabled = false;

  // Closed -> open when the EWMA reaches the threshold after at least
  // `breaker_min_samples` attempts have been observed for the key.
  double breaker_open_threshold = 0.5;
  uint64_t breaker_min_samples = 8;

  // Open -> half-open after this many requests for the key have been shed.
  // A count, not a clock: under load it behaves like a cooldown proportional
  // to the key's arrival rate, and under a deterministic replay it is exact.
  uint64_t breaker_open_sheds = 16;

  // Seconds advertised in the Retry-After header on a breaker-shed 429.
  int retry_after_s = 1;

  bool IsIdempotent(const std::string& key) const {
    return idempotent_keys.count(key) != 0;
  }
};

struct FaultInjectorStats {
  uint64_t invocations = 0;  // invocations that consulted the injector
  uint64_t armed = 0;        // invocations where a rule fired
  uint64_t injected[kNumFaultKinds] = {};  // faults actually delivered, by kind
};

// Thread-safe: Arm() is called concurrently from every invocation lane.
// Determinism under concurrency: the trigger for a probabilistic rule is a
// pure function of (seed, invocation index, rule index), so a fixed
// submission order reproduces the same injection set regardless of lane
// interleaving.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Consults the plan for the next invocation (key = the virtine's key) and
  // returns the fault to inject, or kNone.  First matching rule wins.
  FaultKind Arm(const std::string& key);

  // Records that an armed fault was actually delivered.
  void RecordInjected(FaultKind kind);

  FaultInjectorStats stats() const;

 private:
  FaultPlan plan_;
  std::atomic<uint64_t> next_invocation_{0};
  std::atomic<uint64_t> armed_{0};
  std::atomic<uint64_t> injected_[kNumFaultKinds] = {};
};

}  // namespace wasp

#endif  // SRC_WASP_FAULT_H_
