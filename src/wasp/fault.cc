#include "src/wasp/fault.h"

namespace wasp {
namespace {

// splitmix64: the standard 64-bit finalizer.  Good enough to turn
// (seed, invocation, rule) into an independent uniform draw, and — unlike a
// shared PRNG stream — stateless, so concurrent lanes stay deterministic.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform draw in [0, 1) from the rule's coordinates.
double Draw(uint64_t seed, uint64_t invocation, uint64_t rule) {
  const uint64_t h = Mix64(seed ^ Mix64(invocation ^ Mix64(rule + 1)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kGuestTrap:
      return "guest-trap";
    case FaultKind::kPolicyDenied:
      return "policy-denied";
    case FaultKind::kIllegalHypercall:
      return "illegal-hypercall";
    case FaultKind::kHypercallError:
      return "hypercall-error";
    case FaultKind::kOversizedReply:
      return "oversized-reply";
    case FaultKind::kPoisonedSnapshot:
      return "poisoned-snapshot";
    case FaultKind::kRunaway:
      return "runaway";
    case FaultKind::kWorkerDeath:
      return "worker-death";
  }
  return "unknown";
}

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

FaultRule FaultPlan::At(FaultKind kind, uint64_t invocation, std::string key) {
  FaultRule rule;
  rule.kind = kind;
  rule.key = std::move(key);
  rule.at_invocation = invocation;
  return rule;
}

FaultRule FaultPlan::Probability(FaultKind kind, double p, std::string key) {
  FaultRule rule;
  rule.kind = kind;
  rule.key = std::move(key);
  rule.probability = p;
  return rule;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

FaultKind FaultInjector::Arm(const std::string& key) {
  const uint64_t invocation = next_invocation_.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule.kind == FaultKind::kNone) continue;
    if (!rule.key.empty() && rule.key != key) continue;
    const bool fires =
        rule.at_invocation != FaultRule::kNever
            ? invocation == rule.at_invocation
            : rule.probability > 0.0 && Draw(plan_.seed, invocation, i) < rule.probability;
    if (fires) {
      armed_.fetch_add(1, std::memory_order_relaxed);
      return rule.kind;
    }
  }
  return FaultKind::kNone;
}

void FaultInjector::RecordInjected(FaultKind kind) {
  injected_[static_cast<size_t>(kind)].fetch_add(1, std::memory_order_relaxed);
}

FaultInjectorStats FaultInjector::stats() const {
  FaultInjectorStats s;
  s.invocations = next_invocation_.load(std::memory_order_relaxed);
  s.armed = armed_.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumFaultKinds; ++i) {
    s.injected[i] = injected_[i].load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace wasp
