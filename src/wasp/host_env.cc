#include "src/wasp/host_env.h"

#include <algorithm>
#include <cstring>

namespace wasp {

void HostEnv::PutFile(const std::string& path, std::vector<uint8_t> content) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = std::move(content);
}

void HostEnv::PutFile(const std::string& path, const std::string& content) {
  PutFile(path, std::vector<uint8_t>(content.begin(), content.end()));
}

bool HostEnv::FileExists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) != 0;
}

vbase::Result<uint64_t> HostEnv::FileSize(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return vbase::NotFound("no such file: " + path);
  }
  return static_cast<uint64_t>(it->second.size());
}

vbase::Result<std::vector<uint8_t>> HostEnv::GetFile(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return vbase::NotFound("no such file: " + path);
  }
  return it->second;
}

vbase::Result<int64_t> FdTable::Open(const std::string& path) {
  auto content = env_->GetFile(path);
  if (!content.ok()) {
    return content.status();
  }
  const int64_t fd = next_fd_++;
  open_[fd] = OpenFile{std::move(content).value(), 0};
  return fd;
}

vbase::Result<int64_t> FdTable::Read(int64_t fd, void* dst, uint64_t len) {
  auto it = open_.find(fd);
  if (it == open_.end()) {
    return vbase::InvalidArgument("bad fd");
  }
  OpenFile& f = it->second;
  const uint64_t avail = f.content.size() - f.cursor;
  const uint64_t n = std::min(len, avail);
  std::memcpy(dst, f.content.data() + f.cursor, n);
  f.cursor += n;
  return static_cast<int64_t>(n);
}

vbase::Result<int64_t> FdTable::Write(int64_t fd, const void* src, uint64_t len) {
  if (open_.find(fd) == open_.end() && fd != 1 && fd != 2) {
    return vbase::InvalidArgument("bad fd");
  }
  const uint8_t* p = static_cast<const uint8_t*>(src);
  writes_.insert(writes_.end(), p, p + len);
  return static_cast<int64_t>(len);
}

vbase::Status FdTable::Close(int64_t fd) {
  if (open_.erase(fd) == 0) {
    return vbase::InvalidArgument("bad fd");
  }
  return vbase::Status::Ok();
}

std::vector<uint8_t> FdTable::TakeWrites() {
  std::vector<uint8_t> out;
  out.swap(writes_);
  return out;
}

}  // namespace wasp
