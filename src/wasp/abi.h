// The Wasp hypercall ABI and guest memory-layout contract.
//
// Hypercalls are port I/O, as in the paper ("delegation to the client is
// achieved with hypercalls using virtual I/O ports").  A guest issues
// `out PORT, r0`; arguments travel in registers r1..r3 and the result is
// written back into r0 before the vCPU is re-entered.  Hypercalls are
// designed as *high-level hypervisor services* (mirroring POSIX calls)
// rather than low-level device emulation, so each service costs exactly one
// exit.
//
// Every port has a policy bit: virtines run default-deny, and a request for
// a port whose bit is clear terminates the virtine (Section 2: virtines
// exist in a default-deny environment).  kHcExit is always permitted — the
// only externally observable behavior Wasp provides by default is the
// ability to exit.
#ifndef SRC_WASP_ABI_H_
#define SRC_WASP_ABI_H_

#include <cstdint>

namespace wasp {

// --- Hypercall ports (all < 64 so they map 1:1 onto policy-mask bits) ------
inline constexpr uint16_t kHcExit = 1;        // r1 = exit code
inline constexpr uint16_t kHcConsole = 2;     // r1 = buf va, r2 = len
inline constexpr uint16_t kHcSnapshot = 3;    // take a snapshot (once only)
inline constexpr uint16_t kHcGetData = 4;     // r1 = dst va, r2 = cap -> r0 = len (once only)
inline constexpr uint16_t kHcReturnData = 5;  // r1 = src va, r2 = len
inline constexpr uint16_t kHcOpen = 16;       // r1 = path va -> r0 = fd | -1
inline constexpr uint16_t kHcRead = 17;       // r1 = fd, r2 = buf va, r3 = len -> r0 = n | -1
inline constexpr uint16_t kHcWrite = 18;      // r1 = fd, r2 = buf va, r3 = len -> r0 = n | -1
inline constexpr uint16_t kHcClose = 19;      // r1 = fd -> r0 = 0 | -1
inline constexpr uint16_t kHcStat = 20;       // r1 = path va, r2 = statbuf va -> r0 = 0 | -1
inline constexpr uint16_t kHcSend = 32;       // r1 = buf va, r2 = len -> r0 = n | -1
inline constexpr uint16_t kHcRecv = 33;       // r1 = buf va, r2 = cap -> r0 = n (0 on EOF)

inline constexpr int kMaxHypercall = 64;

// --- Policy masks -----------------------------------------------------------
using HypercallMask = uint64_t;

inline constexpr HypercallMask MaskOf(uint16_t port) { return 1ULL << port; }

// `virtine` keyword semantics: deny everything (exit is implicitly allowed).
inline constexpr HypercallMask kPolicyDenyAll = 0;
// `virtine_permissive` keyword semantics: allow everything.
inline constexpr HypercallMask kPolicyAllowAll = ~0ULL;
// The canned POSIX-like file I/O set.
inline constexpr HypercallMask kPolicyFileIo =
    MaskOf(kHcOpen) | MaskOf(kHcRead) | MaskOf(kHcWrite) | MaskOf(kHcClose) | MaskOf(kHcStat);
// The canned stream set (send/recv proxied to a host byte channel).
inline constexpr HypercallMask kPolicyStream = MaskOf(kHcSend) | MaskOf(kHcRecv);
// The managed-runtime set used by the JavaScript case study (Section 6.5):
// snapshot + get_data + return_data only.
inline constexpr HypercallMask kPolicyManaged =
    MaskOf(kHcSnapshot) | MaskOf(kHcGetData) | MaskOf(kHcReturnData);

// --- Guest physical layout ---------------------------------------------------
// [0x000 ..]        argument/result page (see below)
// [0x500 ..]        boot info written by the host before entry
// [0x1000..0x3fff]  page tables built by the long-mode boot stub
// [0x7000]          initial real-mode stack top (set by the host)
// [0x8000 ..]       image load address
// [top of memory]   stack in protected/long mode (from boot info mem_size)
inline constexpr uint64_t kArgPageAddr = 0x0;
inline constexpr uint64_t kBootInfoAddr = 0x500;
inline constexpr uint64_t kRealModeStackTop = 0x7000;
inline constexpr uint64_t kImageLoadAddr = 0x8000;

// Boot info block (all fields u64, written by the host):
//   +0  mem_size   (guest memory size; protected/long stubs set sp from it)
//   +8  flags      (bit 0: issue the snapshot hypercall after runtime init)
inline constexpr uint64_t kBootFlagSnapshot = 1ULL << 0;

// Argument page layout (word-sized slots; the word size is the natural width
// of the environment's final execution mode):
//   word 0: return value   (written by the guest CRT before hlt)
//   word 1: argc
//   word 2..2+argc-1: argument words
//   byte offset kArgBufOffset..: marshalled buffer contents
inline constexpr uint64_t kArgBufOffset = 0x200;
inline constexpr uint64_t kArgPageSize = 0x500;  // must stay below boot info

}  // namespace wasp

#endif  // SRC_WASP_ABI_H_
