#include "src/wasp/pool.h"

#include <algorithm>
#include <chrono>

#include "src/base/clock.h"
#include "src/base/log.h"
#include "src/wasp/abi.h"

namespace wasp {
namespace {

// Bounded mismatch tolerance of the lock-free PopMatch: how many wrong-size
// (or wrong-generation) nodes a fast-path pop will set aside before giving
// up on a stack.  A false miss just falls through to the slow path.
constexpr int kPopScan = 8;
// Safety bound for pop-all scans and diagnostic walks (a concurrent pusher
// can extend a stack mid-scan; shells are finite, so this is never hit in
// practice).
constexpr int kScanGuard = 1 << 20;

constexpr uint32_t kLaneUnbound = UINT32_MAX;
thread_local uint32_t tls_lane = kLaneUnbound;
// Lanes for threads that never called BindLane: process-unique, so two
// unbound threads never collide on a lane slot by accident.
std::atomic<uint32_t> g_next_auto_lane{0};

}  // namespace

void Pool::BindLane(uint32_t lane) { tls_lane = lane; }

uint32_t Pool::CurrentLane() {
  if (tls_lane == kLaneUnbound) {
    tls_lane = g_next_auto_lane.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_lane;
}

size_t Pool::LaneIndex() const { return CurrentLane() % lane_capacity_; }

size_t Pool::HomeShard() const { return CurrentLane() % shards_.size(); }

size_t Pool::NodeOfShard(size_t shard) const {
  return shard * static_cast<size_t>(options_.numa_nodes) / shards_.size();
}

Pool::Pool(const PoolOptions& options)
    : options_([&] {
        PoolOptions o = options;
        o.shards = std::max(o.shards, 1);
        o.cleaners = std::max(o.cleaners, 1);
        o.numa_nodes = std::clamp(o.numa_nodes, 1, o.shards);
        if (o.lanes <= 0) {
          o.lanes = std::max(16, 2 * o.shards);
        }
        return o;
      }()) {
  lane_capacity_ = static_cast<size_t>(options_.lanes);
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  lanes_ = std::make_unique<Lane[]>(lane_capacity_);
  // Steal order per home shard: home, then the rest of the home's modeled
  // NUMA node (ascending from home), then remote-node shards.
  probe_order_.resize(shards_.size());
  for (size_t h = 0; h < shards_.size(); ++h) {
    auto& order = probe_order_[h];
    order.reserve(shards_.size());
    order.push_back(static_cast<uint32_t>(h));
    const size_t home_node = NodeOfShard(h);
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t off = 1; off < shards_.size(); ++off) {
        const size_t s = (h + off) % shards_.size();
        const bool same_node = NodeOfShard(s) == home_node;
        if (same_node == (pass == 0)) {
          order.push_back(static_cast<uint32_t>(s));
        }
      }
    }
  }
  if (options_.mode == CleanMode::kAsync) {
    cleaners_.reserve(static_cast<size_t>(options_.cleaners));
    for (int i = 0; i < options_.cleaners; ++i) {
      const size_t home = static_cast<size_t>(i) % shards_.size();
      cleaners_.emplace_back([this, home] { CleanerLoop(home); });
    }
  }
}

Pool::~Pool() {
  stop_.store(true);
  {
    // Empty critical section: a cleaner that evaluated its predicate before
    // the store is now blocked in wait and will see the notify.
    std::lock_guard<std::mutex> lock(cleaner_mu_);
  }
  cleaner_cv_.notify_all();
  for (std::thread& cleaner : cleaners_) {
    if (cleaner.joinable()) {
      cleaner.join();
    }
  }
  // Every parked shell — lane slot, free/affine/dirty stack — lives in a
  // node that still owns its raw Vm pointer (UnwrapShell nulls it out when
  // a shell leaves the pool).  The destructor runs exclusively, so a plain
  // arena sweep reclaims them all.
  for (auto& node : all_nodes_) {
    delete node->vm;
    node->vm = nullptr;
  }
}

Pool::ShellNode* Pool::WrapShell(std::unique_ptr<vkvm::Vm> vm, uint64_t generation,
                                 uint64_t private_bytes, GenInfo* gen) {
  ShellNode* node = spare_nodes_.Pop();
  if (node == nullptr) {
    auto owned = std::make_unique<ShellNode>();
    node = owned.get();
    std::lock_guard<std::mutex> lock(node_mu_);
    all_nodes_.push_back(std::move(owned));
  }
  node->mem_size.store(vm->config().mem_size, std::memory_order_relaxed);
  node->generation.store(generation, std::memory_order_relaxed);
  node->private_bytes.store(private_bytes, std::memory_order_relaxed);
  node->gen = gen;
  node->vm = vm.release();
  return node;
}

std::unique_ptr<vkvm::Vm> Pool::UnwrapShell(ShellNode* node) {
  std::unique_ptr<vkvm::Vm> vm(node->vm);
  node->vm = nullptr;
  node->gen = nullptr;
  spare_nodes_.Push(node);
  return vm;
}

void Pool::CleanShell(vkvm::Vm* vm, bool charge_inline) {
  // Zero only the pages this virtine dirtied (real work, proportional to
  // use), reset the vCPU, and restart cycle accounting for the next tenant.
  // The EPT first-touch map is deliberately retained: reusing the mappings
  // is exactly why pooled shells are cheap.
  const uint64_t zeroed = vm->memory().ZeroDirtyPages();
  vm->ResetVcpu(kImageLoadAddr);
  vm->ResetAccounting();
  if (charge_inline) {
    // Cleaning on a critical path (sync release, or an inline reclaim of an
    // affine shell during acquire) charges its modeled memset cost to the
    // shell's next tenant.  The async cleaner crew ("Wasp+CA") absorbs it
    // off the critical path instead.
    vm->AddHostCycles(static_cast<uint64_t>(
        static_cast<double>(zeroed) / vm->config().host_costs.memcpy_bytes_per_cycle));
  }
  stats_.cleans.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_zeroed.fetch_add(zeroed, std::memory_order_relaxed);
}

Pool::ShellNode* Pool::PopMatch(TaggedStack<ShellNode>& stack, uint64_t mem_size,
                                uint64_t generation, bool match_generation) {
  ShellNode* mismatched[kPopScan];
  int n = 0;
  ShellNode* found = nullptr;
  while (n < kPopScan) {
    ShellNode* node = stack.Pop();
    if (node == nullptr) {
      break;
    }
    const bool ok =
        node->mem_size.load(std::memory_order_relaxed) == mem_size &&
        (!match_generation ||
         node->generation.load(std::memory_order_relaxed) == generation);
    if (ok) {
      found = node;
      break;
    }
    mismatched[n++] = node;
  }
  for (int i = n; i-- > 0;) {
    stack.Push(mismatched[i]);
  }
  return found;
}

Pool::ShellNode* Pool::ScanMatch(TaggedStack<ShellNode>& stack, uint64_t mem_size,
                                 uint64_t generation, bool match_generation) {
  std::vector<ShellNode*> mismatched;
  ShellNode* found = nullptr;
  for (int guard = 0; guard < kScanGuard; ++guard) {
    ShellNode* node = stack.Pop();
    if (node == nullptr) {
      break;
    }
    const bool ok =
        node->mem_size.load(std::memory_order_relaxed) == mem_size &&
        (!match_generation ||
         node->generation.load(std::memory_order_relaxed) == generation);
    if (ok) {
      found = node;
      break;
    }
    mismatched.push_back(node);
  }
  for (auto it = mismatched.rbegin(); it != mismatched.rend(); ++it) {
    stack.Push(*it);
  }
  return found;
}

void Pool::ReinsertLaneClean(size_t lane, ShellNode* node) {
  ShellNode* expected = nullptr;
  if (lanes_[lane].clean.compare_exchange_strong(expected, node, std::memory_order_release,
                                                 std::memory_order_relaxed)) {
    return;
  }
  shards_[lane % shards_.size()]->free.Push(node);
}

void Pool::ReinsertLaneAffine(size_t lane, ShellNode* node) {
  ShellNode* expected = nullptr;
  if (lanes_[lane].affine.compare_exchange_strong(expected, node, std::memory_order_release,
                                                  std::memory_order_relaxed)) {
    return;
  }
  shards_[lane % shards_.size()]->affine.Push(node);
}

Pool::GenInfo* Pool::FindGen(uint64_t generation) const {
  std::shared_lock<std::shared_mutex> lock(gen_mu_);
  auto it = generations_.find(generation);
  return it == generations_.end() ? nullptr : it->second.get();
}

Pool::GenInfo* Pool::FindOrCreateGen(uint64_t generation) {
  if (GenInfo* gen = FindGen(generation)) {
    return gen;
  }
  std::unique_lock<std::shared_mutex> lock(gen_mu_);
  std::unique_ptr<GenInfo>& slot = generations_[generation];
  if (slot == nullptr) {
    slot = std::make_unique<GenInfo>();
    slot->generation = generation;
  }
  return slot.get();
}

bool Pool::TryChargeAffine(GenInfo* gen, uint64_t shared_bytes, uint64_t private_bytes) {
  if (gen->retired.load(std::memory_order_acquire)) {
    return false;  // dead generation: parking it would strand the memory
  }
  // Park-time LRU: every affine hit parks the shell right back after its
  // run, so refreshing the tick on park tracks use recency without a second
  // bookkeeping call on the acquire path.
  gen->last_use_tick.store(use_tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                           std::memory_order_relaxed);
  if (shared_bytes != 0) {
    // Declare the chain size before the parked-shell transition below so a
    // 0->1 charge always reads a declared value.  Every park of one
    // generation passes the same chain size (a property of the snapshot),
    // which is what lets the 1->0 release below pair with it exactly.
    uint64_t expected = 0;
    gen->shared_bytes.compare_exchange_strong(expected, shared_bytes,
                                              std::memory_order_relaxed,
                                              std::memory_order_relaxed);
  }
  gen->private_bytes.fetch_add(private_bytes, std::memory_order_relaxed);
  stats_.affine_private_bytes.fetch_add(private_bytes, std::memory_order_relaxed);
  uint64_t charged = private_bytes;
  if (gen->parked_shells.fetch_add(1, std::memory_order_acq_rel) == 0) {
    // First shell of the generation in: charge the extent chain once.  The
    // 0->1 and 1->0 transitions of the counter strictly alternate, so this
    // charge pairs with exactly one release.
    const uint64_t sb = gen->shared_bytes.load(std::memory_order_relaxed);
    if (sb != 0) {
      stats_.affine_shared_bytes.fetch_add(sb, std::memory_order_relaxed);
      charged += sb;
    }
  }
  stats_.affine_resident_bytes.fetch_add(charged, std::memory_order_relaxed);
  affine_count_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Pool::ReleaseAffineCharge(GenInfo* gen, uint64_t private_bytes) {
  affine_count_.fetch_sub(1, std::memory_order_relaxed);
  gen->private_bytes.fetch_sub(private_bytes, std::memory_order_relaxed);
  stats_.affine_private_bytes.fetch_sub(private_bytes, std::memory_order_relaxed);
  uint64_t released = private_bytes;
  if (gen->parked_shells.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last shell out releases the generation's shared charge: the extent
    // chain may live on (snapshot store, in-flight restores hold refs), but
    // nothing is parked against it any more.
    const uint64_t sb = gen->shared_bytes.load(std::memory_order_relaxed);
    if (sb != 0) {
      stats_.affine_shared_bytes.fetch_sub(sb, std::memory_order_relaxed);
      released += sb;
    }
  }
  stats_.affine_resident_bytes.fetch_sub(released, std::memory_order_relaxed);
}

void Pool::Dispose(std::unique_ptr<vkvm::Vm> vm, size_t shard) {
  switch (options_.mode) {
    case CleanMode::kNone:
      return;  // no pooling: drop the shell (unreachable — kNone never parks)
    case CleanMode::kSync:
      // No crew to hand it to; clean here but off the modeled critical path
      // (eviction/retirement is maintenance, not an acquire or release).
      CleanShell(vm.get(), /*charge_inline=*/false);
      ParkClean(std::move(vm), shard, /*try_lane=*/false);
      return;
    case CleanMode::kAsync: {
      ShellNode* node = WrapShell(std::move(vm), 0, 0, nullptr);
      // Count before push: DrainCleaner must never observe dirty == 0 &&
      // in_flight == 0 while a node is physically queued.
      dirty_count_.fetch_add(1);
      shards_[shard]->dirty.Push(node);
      cleaner_cv_.notify_one();
      return;
    }
  }
}

std::vector<std::pair<Pool::ShellNode*, size_t>> Pool::TakeAffineNodes(uint64_t generation,
                                                                       size_t max_take) {
  std::vector<std::pair<ShellNode*, size_t>> taken;
  for (size_t s = 0; s < shards_.size() && taken.size() < max_take; ++s) {
    Shard& shard = *shards_[s];
    // The shard mutex serializes whole-stack sweeps against each other;
    // fast-path pushers/poppers proceed lock-free underneath.
    std::lock_guard<std::mutex> lock(shard.mu);
    std::vector<ShellNode*> keep;
    for (int guard = 0; guard < kScanGuard && taken.size() < max_take; ++guard) {
      ShellNode* node = shard.affine.Pop();
      if (node == nullptr) {
        break;
      }
      if (node->generation.load(std::memory_order_relaxed) == generation) {
        taken.emplace_back(node, s);
      } else {
        keep.push_back(node);
      }
    }
    for (auto it = keep.rbegin(); it != keep.rend(); ++it) {
      shard.affine.Push(*it);
    }
  }
  for (size_t l = 0; l < lane_capacity_ && taken.size() < max_take; ++l) {
    ShellNode* node = lanes_[l].affine.exchange(nullptr, std::memory_order_acq_rel);
    if (node == nullptr) {
      continue;
    }
    if (node->generation.load(std::memory_order_relaxed) == generation) {
      taken.emplace_back(node, l % shards_.size());
    } else {
      ReinsertLaneAffine(l, node);
    }
  }
  return taken;
}

void Pool::RetireSweep(GenInfo* gen) {
  auto victims = TakeAffineNodes(gen->generation, SIZE_MAX);
  for (auto& [node, shard] : victims) {
    ReleaseAffineCharge(gen, node->private_bytes.load(std::memory_order_relaxed));
    stats_.affine_retired.fetch_add(1, std::memory_order_relaxed);
    stats_.affine_reclaims.fetch_add(1, std::memory_order_relaxed);
    Dispose(UnwrapShell(node), shard);
  }
}

void Pool::RetireGeneration(uint64_t generation) {
  if (generation == 0) {
    return;
  }
  // Mark the generation dead *before* sweeping.  The park path pushes its
  // node and then re-checks the flag (both sides fenced seq_cst, the Dekker
  // pattern): either this sweep sees the node, or the parker sees the flag
  // and re-runs the sweep itself — a dead generation can never re-strand
  // memory.
  GenInfo* gen = FindOrCreateGen(generation);
  gen->retired.store(true, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  RetireSweep(gen);
}

void Pool::EnforceAffineBudget() {
  if (options_.affine_budget_bytes == 0) {
    return;
  }
  // Bounded sweep: racing acquires can momentarily hide a victim's shells,
  // so cap the attempts instead of spinning on a moving target.
  for (int attempt = 0; attempt < 256; ++attempt) {
    if (stats_.affine_resident_bytes.load(std::memory_order_relaxed) <=
        options_.affine_budget_bytes) {
      return;
    }
    // Least-recently-used live generation with parked shells.
    GenInfo* victim = nullptr;
    {
      std::shared_lock<std::shared_mutex> lock(gen_mu_);
      uint64_t best_tick = UINT64_MAX;
      for (const auto& [generation, info] : generations_) {
        const uint64_t tick = info->last_use_tick.load(std::memory_order_relaxed);
        if (info->parked_shells.load(std::memory_order_relaxed) > 0 &&
            !info->retired.load(std::memory_order_relaxed) && tick < best_tick) {
          best_tick = tick;
          victim = info.get();
        }
      }
    }
    if (victim == nullptr) {
      return;  // nothing parked any more (raced with acquires)
    }
    auto taken = TakeAffineNodes(victim->generation, 1);
    if (taken.empty()) {
      continue;  // the victim's shells were acquired mid-sweep; re-pick
    }
    auto& [node, shard] = taken.front();
    ReleaseAffineCharge(victim, node->private_bytes.load(std::memory_order_relaxed));
    stats_.affine_evictions.fetch_add(1, std::memory_order_relaxed);
    stats_.affine_reclaims.fetch_add(1, std::memory_order_relaxed);
    Dispose(UnwrapShell(node), shard);
  }
}

std::unique_ptr<vkvm::Vm> Pool::TryFastClean(const vkvm::VmConfig& config, bool* from_pool) {
  // Tier 1: the caller's lane slot (single atomic exchange; pages still
  // warm in this lane's cache/TLB).
  ShellNode* node = lanes_[LaneIndex()].clean.exchange(nullptr, std::memory_order_acq_rel);
  if (node != nullptr) {
    if (node->mem_size.load(std::memory_order_relaxed) == config.mem_size) {
      stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
      stats_.lane_cache_hits.fetch_add(1, std::memory_order_relaxed);
      if (from_pool != nullptr) {
        *from_pool = true;
      }
      return UnwrapShell(node);
    }
    // Wrong size: spill to the home stack rather than re-occupying the slot.
    shards_[HomeShard()]->free.Push(node);
  }
  // Tier 2: home shard's stack, then NUMA-ordered sibling steal.
  const size_t home = HomeShard();
  const size_t home_node = NodeOfShard(home);
  for (uint32_t s : probe_order_[home]) {
    node = PopMatch(shards_[s]->free, config.mem_size, 0, /*match_generation=*/false);
    if (node == nullptr) {
      continue;
    }
    stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
    stats_.freelist_hits.fetch_add(1, std::memory_order_relaxed);
    if (s != home) {
      stats_.cross_shard_steals.fetch_add(1, std::memory_order_relaxed);
      if (NodeOfShard(s) != home_node) {
        stats_.cross_node_steals.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (from_pool != nullptr) {
      *from_pool = true;
    }
    return UnwrapShell(node);
  }
  return nullptr;
}

std::unique_ptr<vkvm::Vm> Pool::TryFastAffine(const vkvm::VmConfig& config,
                                              uint64_t generation, bool* from_pool) {
  const size_t lane = LaneIndex();
  ShellNode* node = lanes_[lane].affine.exchange(nullptr, std::memory_order_acq_rel);
  if (node != nullptr) {
    if (node->generation.load(std::memory_order_relaxed) == generation &&
        node->mem_size.load(std::memory_order_relaxed) == config.mem_size) {
      ReleaseAffineCharge(node->gen, node->private_bytes.load(std::memory_order_relaxed));
      stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
      stats_.lane_cache_hits.fetch_add(1, std::memory_order_relaxed);
      stats_.affine_hits.fetch_add(1, std::memory_order_relaxed);
      if (from_pool != nullptr) {
        *from_pool = true;
      }
      return UnwrapShell(node);
    }
    ReinsertLaneAffine(lane, node);
  }
  const size_t home = HomeShard();
  const size_t home_node = NodeOfShard(home);
  for (uint32_t s : probe_order_[home]) {
    node = PopMatch(shards_[s]->affine, config.mem_size, generation,
                    /*match_generation=*/true);
    if (node == nullptr) {
      continue;
    }
    ReleaseAffineCharge(node->gen, node->private_bytes.load(std::memory_order_relaxed));
    stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
    stats_.freelist_hits.fetch_add(1, std::memory_order_relaxed);
    stats_.affine_hits.fetch_add(1, std::memory_order_relaxed);
    if (s != home) {
      stats_.cross_shard_steals.fetch_add(1, std::memory_order_relaxed);
      if (NodeOfShard(s) != home_node) {
        stats_.cross_node_steals.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (from_pool != nullptr) {
      *from_pool = true;
    }
    return UnwrapShell(node);
  }
  return nullptr;
}

std::unique_ptr<vkvm::Vm> Pool::AcquireSlow(const vkvm::VmConfig& config,
                                            uint64_t generation, bool* affine_hit,
                                            bool* from_pool) {
  stats_.slow_path_acquires.fetch_add(1, std::memory_order_relaxed);
  const size_t home = HomeShard();
  // Exact-generation affine sweep first: a bounded fast-path probe can
  // false-miss a shell buried under other generations' nodes, and serving
  // the resident snapshot beats serving a clean shell plus a full restore.
  if (generation != 0 && affine_count_.load(std::memory_order_relaxed) > 0) {
    for (uint32_t s : probe_order_[home]) {
      Shard& shard = *shards_[s];
      ShellNode* node;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        node = ScanMatch(shard.affine, config.mem_size, generation,
                         /*match_generation=*/true);
      }
      if (node == nullptr) {
        continue;
      }
      ReleaseAffineCharge(node->gen, node->private_bytes.load(std::memory_order_relaxed));
      stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
      stats_.affine_hits.fetch_add(1, std::memory_order_relaxed);
      if (affine_hit != nullptr) {
        *affine_hit = true;
      }
      if (from_pool != nullptr) {
        *from_pool = true;
      }
      return UnwrapShell(node);
    }
    for (size_t l = 0; l < lane_capacity_; ++l) {
      ShellNode* node = lanes_[l].affine.exchange(nullptr, std::memory_order_acq_rel);
      if (node == nullptr) {
        continue;
      }
      if (node->generation.load(std::memory_order_relaxed) == generation &&
          node->mem_size.load(std::memory_order_relaxed) == config.mem_size) {
        ReleaseAffineCharge(node->gen, node->private_bytes.load(std::memory_order_relaxed));
        stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
        stats_.affine_hits.fetch_add(1, std::memory_order_relaxed);
        if (affine_hit != nullptr) {
          *affine_hit = true;
        }
        if (from_pool != nullptr) {
          *from_pool = true;
        }
        return UnwrapShell(node);
      }
      ReinsertLaneAffine(l, node);
    }
  }
  // Exhaustive clean sweep: before paying vm_create, make sure no stack or
  // lane slot actually holds a free shell (a bounded fast-path miss is not
  // proof of emptiness).
  for (uint32_t s : probe_order_[home]) {
    Shard& shard = *shards_[s];
    ShellNode* node;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      node = ScanMatch(shard.free, config.mem_size, 0, /*match_generation=*/false);
    }
    if (node == nullptr) {
      continue;
    }
    stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
    if (from_pool != nullptr) {
      *from_pool = true;
    }
    return UnwrapShell(node);
  }
  for (size_t l = 0; l < lane_capacity_; ++l) {
    ShellNode* node = lanes_[l].clean.exchange(nullptr, std::memory_order_acq_rel);
    if (node == nullptr) {
      continue;
    }
    if (node->mem_size.load(std::memory_order_relaxed) == config.mem_size) {
      stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
      if (from_pool != nullptr) {
        *from_pool = true;
      }
      return UnwrapShell(node);
    }
    ReinsertLaneClean(l, node);
  }
  // Reclaim (clean) an already-parked affine shell of any generation — it
  // is dirty, so clean it first — before creating from scratch.
  if (affine_count_.load(std::memory_order_relaxed) > 0) {
    for (uint32_t s : probe_order_[home]) {
      Shard& shard = *shards_[s];
      ShellNode* node;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        node = ScanMatch(shard.affine, config.mem_size, 0, /*match_generation=*/false);
      }
      if (node == nullptr) {
        continue;
      }
      ReleaseAffineCharge(node->gen, node->private_bytes.load(std::memory_order_relaxed));
      auto vm = UnwrapShell(node);
      // Clean outside the shard lock: zeroing megabytes under a stripe lock
      // would convoy concurrent sweepers.
      CleanShell(vm.get(), /*charge_inline=*/true);
      stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
      stats_.affine_reclaims.fetch_add(1, std::memory_order_relaxed);
      if (from_pool != nullptr) {
        *from_pool = true;
      }
      return vm;
    }
    for (size_t l = 0; l < lane_capacity_; ++l) {
      ShellNode* node = lanes_[l].affine.exchange(nullptr, std::memory_order_acq_rel);
      if (node == nullptr) {
        continue;
      }
      if (node->mem_size.load(std::memory_order_relaxed) == config.mem_size) {
        ReleaseAffineCharge(node->gen, node->private_bytes.load(std::memory_order_relaxed));
        auto vm = UnwrapShell(node);
        CleanShell(vm.get(), /*charge_inline=*/true);
        stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
        stats_.affine_reclaims.fetch_add(1, std::memory_order_relaxed);
        if (from_pool != nullptr) {
          *from_pool = true;
        }
        return vm;
      }
      ReinsertLaneAffine(l, node);
    }
  }
  stats_.fresh_creates.fetch_add(1, std::memory_order_relaxed);
  if (from_pool != nullptr) {
    *from_pool = false;
  }
  return vkvm::Vm::Create(config);
}

std::unique_ptr<vkvm::Vm> Pool::Acquire(const vkvm::VmConfig& config, bool* from_pool) {
  stats_.acquires.fetch_add(1, std::memory_order_relaxed);
  const uint64_t t0 = vbase::NowNanos();
  auto vm = TryFastClean(config, from_pool);
  if (vm == nullptr) {
    vm = AcquireSlow(config, /*generation=*/0, nullptr, from_pool);
  }
  RecordAcquireNs(vbase::NowNanos() - t0);
  return vm;
}

std::unique_ptr<vkvm::Vm> Pool::AcquireAffine(const vkvm::VmConfig& config,
                                              uint64_t generation, bool* affine_hit,
                                              bool* from_pool) {
  stats_.acquires.fetch_add(1, std::memory_order_relaxed);
  const uint64_t t0 = vbase::NowNanos();
  if (affine_hit != nullptr) {
    *affine_hit = false;
  }
  std::unique_ptr<vkvm::Vm> vm;
  if (generation != 0 && affine_count_.load(std::memory_order_relaxed) > 0) {
    vm = TryFastAffine(config, generation, from_pool);
    if (vm != nullptr && affine_hit != nullptr) {
      *affine_hit = true;
    }
  }
  if (vm == nullptr) {
    vm = TryFastClean(config, from_pool);
  }
  if (vm == nullptr) {
    vm = AcquireSlow(config, generation, affine_hit, from_pool);
  }
  RecordAcquireNs(vbase::NowNanos() - t0);
  return vm;
}

void Pool::ParkClean(std::unique_ptr<vkvm::Vm> vm, size_t shard, bool try_lane) {
  ShellNode* node = WrapShell(std::move(vm), 0, 0, nullptr);
  if (try_lane) {
    ShellNode* expected = nullptr;
    if (lanes_[LaneIndex()].clean.compare_exchange_strong(
            expected, node, std::memory_order_release, std::memory_order_relaxed)) {
      return;
    }
  }
  shards_[shard]->free.Push(node);
}

void Pool::Release(std::unique_ptr<vkvm::Vm> vm) {
  stats_.releases.fetch_add(1, std::memory_order_relaxed);
  switch (options_.mode) {
    case CleanMode::kNone:
      // Drop it: the host kernel reclaims the context.
      return;
    case CleanMode::kSync: {
      CleanShell(vm.get(), /*charge_inline=*/true);
      ParkClean(std::move(vm), HomeShard(), /*try_lane=*/true);
      return;
    }
    case CleanMode::kAsync: {
      ShellNode* node = WrapShell(std::move(vm), 0, 0, nullptr);
      // Count before push (see Dispose) so DrainCleaner can never observe a
      // false drain; the notify is mutex-free — cleaners wait with a
      // timeout as the belt against the notify racing a wait entry.
      dirty_count_.fetch_add(1);
      shards_[HomeShard()]->dirty.Push(node);
      cleaner_cv_.notify_one();
      return;
    }
  }
}

void Pool::ReleaseAffine(std::unique_ptr<vkvm::Vm> vm, uint64_t generation,
                         uint64_t shared_bytes) {
  VB_CHECK(generation != 0, "ReleaseAffine requires a snapshot generation");
  stats_.releases.fetch_add(1, std::memory_order_relaxed);
  if (options_.mode == CleanMode::kNone) {
    // No pooling: drop the shell like a plain release would.
    return;
  }
  // The whole point: no zeroing.  The snapshot plus the epoch-dirty delta
  // fully describe this shell's memory; record the delta size (the next
  // restore's work) and park.  Accounting restarts for the next tenant; the
  // vCPU is reset by RestoreArch on the next restore.
  vm->ResetAccounting();
  const uint64_t delta_pages = vm->memory().CountEpochDirtyPages();
  // Residency charge: a COW-backed shell pays for its privatized pages only
  // (the shared chain is charged per generation, not per shell); a shell
  // without a base holds a full private copy and pays its whole memory.
  const uint64_t private_bytes = vm->memory().HasCowBase()
                                     ? vm->memory().CowPrivateBytes()
                                     : vm->config().mem_size;
  GenInfo* gen = FindOrCreateGen(generation);
  if (!TryChargeAffine(gen, shared_bytes, private_bytes)) {
    // The generation was retired while this invocation was in flight:
    // divert the shell to the cleaning path — a dead generation must never
    // re-park.
    stats_.affine_retired.fetch_add(1, std::memory_order_relaxed);
    stats_.affine_reclaims.fetch_add(1, std::memory_order_relaxed);
    Dispose(std::move(vm), HomeShard());
    return;
  }
  ShellNode* node = WrapShell(std::move(vm), generation, private_bytes, gen);
  const size_t lane = LaneIndex();
  ShellNode* expected = nullptr;
  if (!lanes_[lane].affine.compare_exchange_strong(expected, node, std::memory_order_release,
                                                   std::memory_order_relaxed)) {
    shards_[HomeShard()]->affine.Push(node);
  }
  stats_.affine_parks.fetch_add(1, std::memory_order_relaxed);
  stats_.delta_pages.fetch_add(delta_pages, std::memory_order_relaxed);
  // RetireGeneration may have swept between the charge check and the push
  // landing; re-check behind a seq_cst fence (Dekker with the retirer's
  // flag-store/sweep) and run the sweep ourselves if so.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (gen->retired.load(std::memory_order_relaxed)) {
    RetireSweep(gen);
  }
  // The park may have pushed parked residency over budget; evict LRU
  // generations until it fits again.
  EnforceAffineBudget();
}

void Pool::Quarantine(std::unique_ptr<vkvm::Vm> vm) {
  // Counted as a release for acquire/release conservation: every acquired
  // shell goes back through exactly one of Release / ReleaseAffine /
  // Quarantine.
  stats_.releases.fetch_add(1, std::memory_order_relaxed);
  stats_.quarantined.fetch_add(1, std::memory_order_relaxed);
  if (options_.mode != CleanMode::kAsync) {
    // No cleaner crew to scrub it: destroy the context outright.  Sync mode
    // deliberately does NOT clean-and-repool inline — quarantine reclamation
    // is the crew's job, and paying vm_create for the replacement is the
    // price of a fault, not of the fast path.
    stats_.quarantine_destroyed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ShellNode* node = WrapShell(std::move(vm), 0, 0, nullptr);
  // Count before push (the DrainCleaner contract, as with dirty_count_).
  quarantine_count_.fetch_add(1);
  quarantine_.Push(node);
  cleaner_cv_.notify_one();
}

std::unique_ptr<vkvm::Vm> Pool::StealParkedAffine(uint64_t generation) {
  if (generation == 0 || affine_count_.load(std::memory_order_relaxed) <= 0) {
    return nullptr;
  }
  GenInfo* gen = FindGen(generation);
  if (gen == nullptr) {
    return nullptr;
  }
  auto taken = TakeAffineNodes(generation, 1);
  if (taken.empty()) {
    return nullptr;
  }
  ShellNode* node = taken.front().first;
  ReleaseAffineCharge(gen, node->private_bytes.load(std::memory_order_relaxed));
  // Count like an affine acquire so acquire/release conservation holds (the
  // re-capture path releases the shell back when it is done).
  stats_.acquires.fetch_add(1, std::memory_order_relaxed);
  stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
  stats_.affine_hits.fetch_add(1, std::memory_order_relaxed);
  stats_.freelist_hits.fetch_add(1, std::memory_order_relaxed);
  return UnwrapShell(node);
}

std::unique_ptr<vkvm::Vm> Pool::PopDirty(size_t home, size_t* source_shard) {
  for (size_t i = 0; i < shards_.size(); ++i) {
    const size_t index = (home + i) % shards_.size();
    ShellNode* node = shards_[index]->dirty.Pop();
    if (node == nullptr) {
      continue;
    }
    // Order matters for DrainCleaner: raise in-flight before dropping the
    // dirty count so (dirty == 0 && in_flight == 0) implies truly drained.
    cleaning_in_flight_.fetch_add(1);
    dirty_count_.fetch_sub(1);
    *source_shard = index;
    return UnwrapShell(node);
  }
  return nullptr;
}

void Pool::CleanerLoop(size_t home) {
  while (true) {
    // Quarantined shells first: they are the rarest and the only ones whose
    // reclamation gates correctness (a dirty shell merely delays reuse; a
    // quarantined one holds a faulted invocation's state).  Transfer to
    // in-flight before dropping the count, as with PopDirty, so DrainCleaner
    // never observes a false drain.
    if (ShellNode* qnode = quarantine_.Pop(); qnode != nullptr) {
      cleaning_in_flight_.fetch_add(1);
      quarantine_count_.fetch_sub(1);
      std::unique_ptr<vkvm::Vm> qvm = UnwrapShell(qnode);
      // Full scrub: ZeroDirtyPages drops any COW base and clears the
      // privatized set, so nothing of the faulted tenant — image, writes,
      // snapshot mapping — survives into the readmitted shell.
      CleanShell(qvm.get(), /*charge_inline=*/false);
      // Readmit via the home shard's free stack only after the scrub; a
      // quarantined shell never touches a lane slot.
      ParkClean(std::move(qvm), home, /*try_lane=*/false);
      stats_.quarantine_scrubbed.fetch_add(1, std::memory_order_relaxed);
      cleaning_in_flight_.fetch_sub(1);
      drain_cv_.notify_all();
      continue;
    }
    size_t source = home;
    std::unique_ptr<vkvm::Vm> vm = PopDirty(home, &source);
    if (vm == nullptr) {
      if (stop_.load()) {
        return;
      }
      std::unique_lock<std::mutex> lock(cleaner_mu_);
      // Timed wait: the release path notifies without holding cleaner_mu_
      // (it is lock-free), so a notify can race a wait entry and be missed;
      // the timeout bounds that stall instead of a mutex closing it.
      cleaner_cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return stop_.load() || dirty_count_.load() > 0 || quarantine_count_.load() > 0;
      });
      continue;
    }
    CleanShell(vm.get(), /*charge_inline=*/false);
    // Park the clean shell back on the shard it was released to, preserving
    // the releasing thread's locality for its next acquire.
    ParkClean(std::move(vm), source, /*try_lane=*/false);
    cleaning_in_flight_.fetch_sub(1);
    drain_cv_.notify_all();
  }
}

void Pool::DrainCleaner() {
  if (options_.mode != CleanMode::kAsync) {
    return;
  }
  std::unique_lock<std::mutex> lock(cleaner_mu_);
  while (!(dirty_count_.load() == 0 && quarantine_count_.load() == 0 &&
           cleaning_in_flight_.load() == 0)) {
    // Timed wait for the same reason as the cleaners': the completion
    // notify is sent without the mutex.
    drain_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void Pool::Prewarm(const vkvm::VmConfig& config, int count) {
  // Create (and account-reset) every shell outside any lock, then push
  // round-robin onto the shards' lock-free free stacks so the warm set
  // spreads evenly.
  for (int i = 0; i < count; ++i) {
    auto vm = vkvm::Vm::Create(config);
    vm->ResetAccounting();
    ShellNode* node = WrapShell(std::move(vm), 0, 0, nullptr);
    shards_[static_cast<size_t>(i) % shards_.size()]->free.Push(node);
  }
}

void Pool::RecordAcquireNs(uint64_t ns) {
  int bucket = 0;
  if (ns > 0) {
    bucket = 64 - __builtin_clzll(ns);  // bit_width: ns in [2^(b-1), 2^b)
    bucket = std::min(bucket, kLatBuckets - 1);
  }
  lat_buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

AcquireLatency Pool::acquire_latency() const {
  uint64_t counts[kLatBuckets];
  uint64_t total = 0;
  for (int i = 0; i < kLatBuckets; ++i) {
    counts[i] = lat_buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  AcquireLatency out;
  out.samples = total;
  if (total == 0) {
    return out;
  }
  // Bucket upper bounds as the reported value: pessimistic by at most 2x,
  // monotone in the true percentile.
  auto percentile = [&](double q) -> uint64_t {
    const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
    uint64_t cumulative = 0;
    for (int i = 0; i < kLatBuckets; ++i) {
      cumulative += counts[i];
      if (cumulative >= rank) {
        return i == 0 ? 0 : (uint64_t{1} << i);
      }
    }
    return uint64_t{1} << (kLatBuckets - 1);
  };
  out.p50_ns = percentile(0.50);
  out.p99_ns = percentile(0.99);
  out.p50_cycles =
      static_cast<uint64_t>(static_cast<double>(out.p50_ns) * vbase::kReferenceGhz);
  out.p99_cycles =
      static_cast<uint64_t>(static_cast<double>(out.p99_ns) * vbase::kReferenceGhz);
  return out;
}

PoolStats Pool::stats() const {
  PoolStats out;
  out.acquires = stats_.acquires.load(std::memory_order_relaxed);
  out.pool_hits = stats_.pool_hits.load(std::memory_order_relaxed);
  out.fresh_creates = stats_.fresh_creates.load(std::memory_order_relaxed);
  out.releases = stats_.releases.load(std::memory_order_relaxed);
  out.cleans = stats_.cleans.load(std::memory_order_relaxed);
  out.bytes_zeroed = stats_.bytes_zeroed.load(std::memory_order_relaxed);
  out.lane_cache_hits = stats_.lane_cache_hits.load(std::memory_order_relaxed);
  out.freelist_hits = stats_.freelist_hits.load(std::memory_order_relaxed);
  out.slow_path_acquires = stats_.slow_path_acquires.load(std::memory_order_relaxed);
  out.cross_shard_steals = stats_.cross_shard_steals.load(std::memory_order_relaxed);
  out.cross_node_steals = stats_.cross_node_steals.load(std::memory_order_relaxed);
  out.affine_hits = stats_.affine_hits.load(std::memory_order_relaxed);
  out.affine_parks = stats_.affine_parks.load(std::memory_order_relaxed);
  out.affine_reclaims = stats_.affine_reclaims.load(std::memory_order_relaxed);
  out.delta_pages = stats_.delta_pages.load(std::memory_order_relaxed);
  out.affine_evictions = stats_.affine_evictions.load(std::memory_order_relaxed);
  out.affine_retired = stats_.affine_retired.load(std::memory_order_relaxed);
  out.affine_resident_bytes = stats_.affine_resident_bytes.load(std::memory_order_relaxed);
  out.affine_shared_bytes = stats_.affine_shared_bytes.load(std::memory_order_relaxed);
  out.affine_private_bytes = stats_.affine_private_bytes.load(std::memory_order_relaxed);
  out.quarantined = stats_.quarantined.load(std::memory_order_relaxed);
  out.quarantine_scrubbed = stats_.quarantine_scrubbed.load(std::memory_order_relaxed);
  out.quarantine_destroyed = stats_.quarantine_destroyed.load(std::memory_order_relaxed);
  const int64_t qnow = quarantine_count_.load(std::memory_order_relaxed);
  out.quarantined_now = qnow > 0 ? static_cast<uint64_t>(qnow) : 0;
  return out;
}

AffineAccounting Pool::affine_accounting() const {
  AffineAccounting out;
  std::shared_lock<std::shared_mutex> lock(gen_mu_);
  out.generations.reserve(generations_.size());
  for (const auto& [generation, info] : generations_) {
    const int64_t parked = info->parked_shells.load(std::memory_order_relaxed);
    const uint64_t private_bytes = info->private_bytes.load(std::memory_order_relaxed);
    // The chain is charged while any shell is parked.
    const uint64_t shared_charged =
        parked > 0 ? info->shared_bytes.load(std::memory_order_relaxed) : 0;
    if (parked <= 0 && private_bytes == 0) {
      continue;  // drained row (generations are immortal; rows are not shown)
    }
    AffineAccounting::Generation row;
    row.generation = generation;
    row.shared_bytes = shared_charged;
    row.private_bytes = private_bytes;
    row.parked_shells = parked;
    out.generations.push_back(row);
    // resident_bytes is *derived* from the very rows reported, so the
    // breakdown and the total can never disagree, even mid-race; it equals
    // the affine_resident_bytes gauge whenever the pool is quiescent.
    out.resident_bytes += shared_charged + private_bytes;
  }
  return out;
}

size_t Pool::CountStack(const TaggedStack<ShellNode>& stack, uint64_t mem_size,
                        bool match_mem) const {
  size_t n = 0;
  int guard = kScanGuard;
  for (ShellNode* node = stack.UnsafeHead(); node != nullptr && guard-- > 0;
       node = node->next.load(std::memory_order_acquire)) {
    if (!match_mem || node->mem_size.load(std::memory_order_relaxed) == mem_size) {
      ++n;
    }
  }
  return n;
}

size_t Pool::FreeShells(uint64_t mem_size) const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    n += CountStack(shard->free, mem_size, /*match_mem=*/true);
  }
  for (size_t l = 0; l < lane_capacity_; ++l) {
    ShellNode* node = lanes_[l].clean.load(std::memory_order_acquire);
    if (node != nullptr && node->mem_size.load(std::memory_order_relaxed) == mem_size) {
      ++n;
    }
  }
  return n;
}

size_t Pool::TotalFreeShells() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    n += CountStack(shard->free, 0, /*match_mem=*/false);
  }
  for (size_t l = 0; l < lane_capacity_; ++l) {
    if (lanes_[l].clean.load(std::memory_order_acquire) != nullptr) {
      ++n;
    }
  }
  return n;
}

size_t Pool::AffineShells(uint64_t generation) const {
  GenInfo* gen = FindGen(generation);
  if (gen == nullptr) {
    return 0;
  }
  const int64_t parked = gen->parked_shells.load(std::memory_order_relaxed);
  return parked > 0 ? static_cast<size_t>(parked) : 0;
}

size_t Pool::TotalAffineShells() const {
  size_t n = 0;
  std::shared_lock<std::shared_mutex> lock(gen_mu_);
  for (const auto& [generation, info] : generations_) {
    const int64_t parked = info->parked_shells.load(std::memory_order_relaxed);
    if (parked > 0) {
      n += static_cast<size_t>(parked);
    }
  }
  return n;
}

size_t Pool::FreeShellsInShard(size_t shard, uint64_t mem_size) const {
  return CountStack(shards_[shard]->free, mem_size, /*match_mem=*/true);
}

}  // namespace wasp
