#include "src/wasp/pool.h"

#include <algorithm>
#include <functional>

#include "src/base/log.h"
#include "src/wasp/abi.h"

namespace wasp {

Pool::Pool(const PoolOptions& options)
    : options_([&] {
        PoolOptions o = options;
        o.shards = std::max(o.shards, 1);
        o.cleaners = std::max(o.cleaners, 1);
        return o;
      }()) {
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options_.mode == CleanMode::kAsync) {
    cleaners_.reserve(static_cast<size_t>(options_.cleaners));
    for (int i = 0; i < options_.cleaners; ++i) {
      const size_t home = static_cast<size_t>(i) % shards_.size();
      cleaners_.emplace_back([this, home] { CleanerLoop(home); });
    }
  }
}

Pool::~Pool() {
  stop_.store(true);
  {
    // Empty critical section: a cleaner that evaluated its predicate before
    // the store is now blocked in wait and will see the notify.
    std::lock_guard<std::mutex> lock(cleaner_mu_);
  }
  cleaner_cv_.notify_all();
  for (std::thread& cleaner : cleaners_) {
    if (cleaner.joinable()) {
      cleaner.join();
    }
  }
}

size_t Pool::HomeShard() const {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % shards_.size();
}

void Pool::CleanShell(vkvm::Vm* vm, bool charge_inline) {
  // Zero only the pages this virtine dirtied (real work, proportional to
  // use), reset the vCPU, and restart cycle accounting for the next tenant.
  // The EPT first-touch map is deliberately retained: reusing the mappings
  // is exactly why pooled shells are cheap.
  const uint64_t zeroed = vm->memory().ZeroDirtyPages();
  vm->ResetVcpu(kImageLoadAddr);
  vm->ResetAccounting();
  if (charge_inline) {
    // Cleaning on a critical path (sync release, or an inline reclaim of an
    // affine shell during acquire) charges its modeled memset cost to the
    // shell's next tenant.  The async cleaner crew ("Wasp+CA") absorbs it
    // off the critical path instead.
    vm->AddHostCycles(static_cast<uint64_t>(
        static_cast<double>(zeroed) / vm->config().host_costs.memcpy_bytes_per_cycle));
  }
  stats_.cleans.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_zeroed.fetch_add(zeroed, std::memory_order_relaxed);
}

std::unique_ptr<vkvm::Vm> Pool::PopFree(Shard& shard, uint64_t mem_size) {
  auto it = shard.free.find(mem_size);
  if (it == shard.free.end() || it->second.empty()) {
    return nullptr;
  }
  std::unique_ptr<vkvm::Vm> vm = std::move(it->second.back());
  it->second.pop_back();
  return vm;
}

std::unique_ptr<vkvm::Vm> Pool::PopAffine(Shard& shard, uint64_t generation,
                                          uint64_t mem_size) {
  auto it = shard.affine.find(generation);
  if (it == shard.affine.end()) {
    return nullptr;
  }
  auto& shells = it->second;
  for (size_t i = shells.size(); i-- > 0;) {
    if (shells[i].vm->config().mem_size != mem_size) {
      continue;
    }
    AffineShell shell = std::move(shells[i]);
    shells.erase(shells.begin() + static_cast<ptrdiff_t>(i));
    if (shells.empty()) {
      shard.affine.erase(it);
    }
    NoteAffineRemoved(generation, shell.private_bytes);
    return std::move(shell.vm);
  }
  return nullptr;
}

std::unique_ptr<vkvm::Vm> Pool::PopAnyAffine(Shard& shard, uint64_t mem_size) {
  for (auto it = shard.affine.begin(); it != shard.affine.end(); ++it) {
    auto& shells = it->second;
    for (size_t i = shells.size(); i-- > 0;) {
      if (shells[i].vm->config().mem_size != mem_size) {
        continue;
      }
      AffineShell shell = std::move(shells[i]);
      const uint64_t generation = it->first;
      shells.erase(shells.begin() + static_cast<ptrdiff_t>(i));
      if (shells.empty()) {
        shard.affine.erase(it);
      }
      NoteAffineRemoved(generation, shell.private_bytes);
      return std::move(shell.vm);
    }
  }
  return nullptr;
}

bool Pool::TryNoteAffineParked(uint64_t generation, uint64_t shared_bytes,
                               uint64_t private_bytes) {
  {
    std::lock_guard<std::mutex> lock(gen_mu_);
    if (retired_generations_.count(generation) > 0) {
      return false;  // dead generation: parking it would strand the memory
    }
    GenInfo& info = generations_[generation];
    // Park-time LRU: every affine hit parks the shell right back after its
    // run, so refreshing the tick on park tracks use recency without a
    // second bookkeeping call on the acquire path.
    info.last_use_tick = use_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    ++info.parked_shells;
    info.private_bytes += private_bytes;
    uint64_t charged = private_bytes;
    if (info.shared_bytes == 0 && shared_bytes != 0) {
      // First shell of the generation (or first to declare a shared chain):
      // charge the extent chain once.  Every park of one generation passes
      // the same chain size (it is a property of the snapshot).
      info.shared_bytes = shared_bytes;
      charged += shared_bytes;
      stats_.affine_shared_bytes.fetch_add(shared_bytes, std::memory_order_relaxed);
    }
    // Gauge updates stay inside gen_mu_: affine_accounting() reads the
    // per-generation rows and the gauge under the same lock, so the
    // conservation invariant (sum == gauge) holds at every observation.
    stats_.affine_private_bytes.fetch_add(private_bytes, std::memory_order_relaxed);
    stats_.affine_resident_bytes.fetch_add(charged, std::memory_order_relaxed);
  }
  affine_count_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Pool::NoteAffineRemoved(uint64_t generation, uint64_t private_bytes) {
  affine_count_.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(gen_mu_);
  uint64_t released = private_bytes;
  auto it = generations_.find(generation);
  if (it != generations_.end()) {
    it->second.private_bytes -= private_bytes;
    if (--it->second.parked_shells <= 0) {
      // Last shell out releases the generation's shared charge: the extent
      // chain may live on (snapshot store, in-flight restores hold refs),
      // but nothing is parked against it any more.
      released += it->second.shared_bytes;
      stats_.affine_shared_bytes.fetch_sub(it->second.shared_bytes,
                                           std::memory_order_relaxed);
      generations_.erase(it);
    }
  }
  stats_.affine_private_bytes.fetch_sub(private_bytes, std::memory_order_relaxed);
  stats_.affine_resident_bytes.fetch_sub(released, std::memory_order_relaxed);
}

void Pool::Dispose(std::unique_ptr<vkvm::Vm> vm, size_t shard) {
  switch (options_.mode) {
    case CleanMode::kNone:
      return;  // no pooling: drop the shell (unreachable — kNone never parks)
    case CleanMode::kSync:
      // No crew to hand it to; clean here but off the modeled critical path
      // (eviction/retirement is maintenance, not an acquire or release).
      CleanShell(vm.get(), /*charge_inline=*/false);
      ParkClean(std::move(vm), shard);
      return;
    case CleanMode::kAsync: {
      {
        std::lock_guard<std::mutex> lock(shards_[shard]->mu);
        shards_[shard]->dirty.push_back(std::move(vm));
        dirty_count_.fetch_add(1);
      }
      {
        std::lock_guard<std::mutex> lock(cleaner_mu_);
      }
      cleaner_cv_.notify_one();
      return;
    }
  }
}

void Pool::EnforceAffineBudget() {
  if (options_.affine_budget_bytes == 0) {
    return;
  }
  // Bounded sweep: racing acquires can momentarily hide a victim's shells,
  // so cap the attempts instead of spinning on a moving target.
  for (int attempt = 0; attempt < 256; ++attempt) {
    if (stats_.affine_resident_bytes.load(std::memory_order_relaxed) <=
        options_.affine_budget_bytes) {
      return;
    }
    // Least-recently-used generation with parked shells.
    uint64_t victim = 0;
    {
      std::lock_guard<std::mutex> lock(gen_mu_);
      uint64_t best_tick = UINT64_MAX;
      for (const auto& [generation, info] : generations_) {
        if (info.parked_shells > 0 && info.last_use_tick < best_tick) {
          best_tick = info.last_use_tick;
          victim = generation;
        }
      }
    }
    if (victim == 0) {
      return;  // nothing parked any more (raced with acquires)
    }
    std::unique_ptr<vkvm::Vm> vm;
    size_t source = 0;
    for (size_t i = 0; i < shards_.size() && vm == nullptr; ++i) {
      Shard& shard = *shards_[i];
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.affine.find(victim);
      if (it == shard.affine.end() || it->second.empty()) {
        continue;
      }
      AffineShell shell = std::move(it->second.back());
      it->second.pop_back();
      if (it->second.empty()) {
        shard.affine.erase(it);
      }
      NoteAffineRemoved(victim, shell.private_bytes);
      vm = std::move(shell.vm);
      source = i;
    }
    if (vm == nullptr) {
      continue;  // the victim's shells were acquired mid-sweep; re-pick
    }
    stats_.affine_evictions.fetch_add(1, std::memory_order_relaxed);
    stats_.affine_reclaims.fetch_add(1, std::memory_order_relaxed);
    Dispose(std::move(vm), source);
  }
}

void Pool::RetireGeneration(uint64_t generation) {
  if (generation == 0) {
    return;
  }
  // Mark the generation dead *before* sweeping: any racing release that
  // parks after the sweep passed its shard must observe the mark (its park
  // check runs under the shard lock, after this insert) and divert.
  {
    std::lock_guard<std::mutex> lock(gen_mu_);
    retired_generations_.insert(generation);
  }
  // Sweep every shard first, then dispose outside the shard locks (cleaning
  // megabytes under a stripe lock would convoy concurrent acquirers).
  std::vector<std::pair<std::unique_ptr<vkvm::Vm>, size_t>> victims;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.affine.find(generation);
    if (it == shard.affine.end()) {
      continue;
    }
    for (AffineShell& shell : it->second) {
      NoteAffineRemoved(generation, shell.private_bytes);
      victims.emplace_back(std::move(shell.vm), i);
    }
    shard.affine.erase(it);
  }
  for (auto& [vm, shard] : victims) {
    stats_.affine_retired.fetch_add(1, std::memory_order_relaxed);
    stats_.affine_reclaims.fetch_add(1, std::memory_order_relaxed);
    Dispose(std::move(vm), shard);
  }
}

std::unique_ptr<vkvm::Vm> Pool::AcquireClean(const vkvm::VmConfig& config, bool* from_pool) {
  const size_t home = HomeShard();
  // Opportunistic pass: the home shard blocks (it is this thread's own
  // stripe), sibling probes use try_lock so a contended sibling is skipped
  // instead of convoying the caller behind its lock holder.
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[(home + i) % shards_.size()];
    std::unique_lock<std::mutex> lock(shard.mu, std::defer_lock);
    if (i == 0) {
      lock.lock();
    } else if (!lock.try_lock()) {
      continue;
    }
    if (auto vm = PopFree(shard, config.mem_size)) {
      stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
      if (from_pool != nullptr) {
        *from_pool = true;
      }
      return vm;
    }
  }
  // Blocking fallback: before paying vm_create, make sure no shard actually
  // holds a free shell (a try_lock skip above is not proof of emptiness),
  // then reclaim a snapshot-affine shell — it is dirty, so clean it first.
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[(home + i) % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (auto vm = PopFree(shard, config.mem_size)) {
      stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
      if (from_pool != nullptr) {
        *from_pool = true;
      }
      return vm;
    }
  }
  for (size_t i = 0;
       affine_count_.load(std::memory_order_relaxed) > 0 && i < shards_.size(); ++i) {
    std::unique_ptr<vkvm::Vm> vm;
    {
      Shard& shard = *shards_[(home + i) % shards_.size()];
      std::lock_guard<std::mutex> lock(shard.mu);
      vm = PopAnyAffine(shard, config.mem_size);
    }
    if (vm != nullptr) {
      // Clean outside the shard lock: zeroing megabytes under a stripe lock
      // would convoy every other thread hashing to this shard.
      CleanShell(vm.get(), /*charge_inline=*/true);
      stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
      stats_.affine_reclaims.fetch_add(1, std::memory_order_relaxed);
      if (from_pool != nullptr) {
        *from_pool = true;
      }
      return vm;
    }
  }
  stats_.fresh_creates.fetch_add(1, std::memory_order_relaxed);
  if (from_pool != nullptr) {
    *from_pool = false;
  }
  return vkvm::Vm::Create(config);
}

std::unique_ptr<vkvm::Vm> Pool::Acquire(const vkvm::VmConfig& config, bool* from_pool) {
  stats_.acquires.fetch_add(1, std::memory_order_relaxed);
  return AcquireClean(config, from_pool);
}

std::unique_ptr<vkvm::Vm> Pool::AcquireAffine(const vkvm::VmConfig& config,
                                              uint64_t generation, bool* affine_hit,
                                              bool* from_pool) {
  stats_.acquires.fetch_add(1, std::memory_order_relaxed);
  if (affine_hit != nullptr) {
    *affine_hit = false;
  }
  if (generation != 0 && affine_count_.load(std::memory_order_relaxed) > 0) {
    const size_t home = HomeShard();
    // Same two-pass shape as the clean path: home shard blocking + sibling
    // try_lock probes, then one blocking sweep so a momentarily contended
    // sibling cannot force a full restore while the right shell exists.
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < shards_.size(); ++i) {
        Shard& shard = *shards_[(home + i) % shards_.size()];
        std::unique_lock<std::mutex> lock(shard.mu, std::defer_lock);
        if (pass == 1 || i == 0) {
          lock.lock();
        } else if (!lock.try_lock()) {
          continue;
        }
        if (auto vm = PopAffine(shard, generation, config.mem_size)) {
          stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
          stats_.affine_hits.fetch_add(1, std::memory_order_relaxed);
          if (affine_hit != nullptr) {
            *affine_hit = true;
          }
          if (from_pool != nullptr) {
            *from_pool = true;
          }
          return vm;
        }
      }
    }
  }
  return AcquireClean(config, from_pool);
}

void Pool::ParkClean(std::unique_ptr<vkvm::Vm> vm, size_t shard) {
  const uint64_t mem_size = vm->config().mem_size;
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  shards_[shard]->free[mem_size].push_back(std::move(vm));
}

void Pool::Release(std::unique_ptr<vkvm::Vm> vm) {
  stats_.releases.fetch_add(1, std::memory_order_relaxed);
  switch (options_.mode) {
    case CleanMode::kNone:
      // Drop it: the host kernel reclaims the context.
      return;
    case CleanMode::kSync: {
      CleanShell(vm.get(), /*charge_inline=*/true);
      ParkClean(std::move(vm), HomeShard());
      return;
    }
    case CleanMode::kAsync: {
      const size_t home = HomeShard();
      {
        // Push and count under the same shard lock as PopDirty's pop and
        // decrement: the counter can then never go negative, which is what
        // keeps DrainCleaner's (dirty == 0 && in_flight == 0) test sound.
        std::lock_guard<std::mutex> lock(shards_[home]->mu);
        shards_[home]->dirty.push_back(std::move(vm));
        dirty_count_.fetch_add(1);
      }
      {
        std::lock_guard<std::mutex> lock(cleaner_mu_);
      }
      cleaner_cv_.notify_one();
      return;
    }
  }
}

void Pool::ReleaseAffine(std::unique_ptr<vkvm::Vm> vm, uint64_t generation,
                         uint64_t shared_bytes) {
  VB_CHECK(generation != 0, "ReleaseAffine requires a snapshot generation");
  stats_.releases.fetch_add(1, std::memory_order_relaxed);
  if (options_.mode == CleanMode::kNone) {
    // No pooling: drop the shell like a plain release would.
    return;
  }
  // The whole point: no zeroing.  The snapshot plus the epoch-dirty delta
  // fully describe this shell's memory; record the delta size (the next
  // restore's work) and park.  Accounting restarts for the next tenant; the
  // vCPU is reset by RestoreArch on the next restore.
  vm->ResetAccounting();
  const uint64_t delta_pages = vm->memory().CountEpochDirtyPages();
  // Residency charge: a COW-backed shell pays for its privatized pages only
  // (the shared chain is charged per generation, not per shell); a shell
  // without a base holds a full private copy and pays its whole memory.
  const uint64_t private_bytes = vm->memory().HasCowBase()
                                     ? vm->memory().CowPrivateBytes()
                                     : vm->config().mem_size;
  const size_t home = HomeShard();
  bool parked = false;
  {
    std::lock_guard<std::mutex> lock(shards_[home]->mu);
    if (TryNoteAffineParked(generation, shared_bytes, private_bytes)) {
      shards_[home]->affine[generation].push_back(
          AffineShell{std::move(vm), private_bytes});
      parked = true;
    }
  }
  if (!parked) {
    // The generation was retired while this invocation was in flight
    // (RetireGeneration's sweep ran before this release): divert the shell
    // to the cleaning path — a dead generation must never re-park.
    stats_.affine_retired.fetch_add(1, std::memory_order_relaxed);
    stats_.affine_reclaims.fetch_add(1, std::memory_order_relaxed);
    Dispose(std::move(vm), home);
    return;
  }
  stats_.affine_parks.fetch_add(1, std::memory_order_relaxed);
  stats_.delta_pages.fetch_add(delta_pages, std::memory_order_relaxed);
  // The park may have pushed parked residency over budget; evict LRU
  // generations (outside the shard lock) until it fits again.
  EnforceAffineBudget();
}

std::unique_ptr<vkvm::Vm> Pool::StealParkedAffine(uint64_t generation) {
  if (generation == 0 || affine_count_.load(std::memory_order_relaxed) <= 0) {
    return nullptr;
  }
  // Maintenance path (re-capture), not a hot acquire: plain blocking sweep
  // over the shards is fine.
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.affine.find(generation);
    if (it == shard.affine.end() || it->second.empty()) {
      continue;
    }
    AffineShell shell = std::move(it->second.back());
    it->second.pop_back();
    if (it->second.empty()) {
      shard.affine.erase(it);
    }
    NoteAffineRemoved(generation, shell.private_bytes);
    // Count like an affine acquire so acquire/release conservation holds
    // (the re-capture path releases the shell back when it is done).
    stats_.acquires.fetch_add(1, std::memory_order_relaxed);
    stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
    stats_.affine_hits.fetch_add(1, std::memory_order_relaxed);
    return std::move(shell.vm);
  }
  return nullptr;
}

std::unique_ptr<vkvm::Vm> Pool::PopDirty(size_t home, size_t* source_shard) {
  for (size_t i = 0; i < shards_.size(); ++i) {
    const size_t index = (home + i) % shards_.size();
    Shard& shard = *shards_[index];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.dirty.empty()) {
      continue;
    }
    std::unique_ptr<vkvm::Vm> vm = std::move(shard.dirty.front());
    shard.dirty.pop_front();
    // Order matters for DrainCleaner: raise in-flight before dropping the
    // dirty count so (dirty == 0 && in_flight == 0) implies truly drained.
    cleaning_in_flight_.fetch_add(1);
    dirty_count_.fetch_sub(1);
    *source_shard = index;
    return vm;
  }
  return nullptr;
}

void Pool::CleanerLoop(size_t home) {
  while (true) {
    size_t source = home;
    std::unique_ptr<vkvm::Vm> vm = PopDirty(home, &source);
    if (vm == nullptr) {
      if (stop_.load()) {
        return;
      }
      std::unique_lock<std::mutex> lock(cleaner_mu_);
      cleaner_cv_.wait(lock, [&] { return stop_.load() || dirty_count_.load() > 0; });
      continue;
    }
    CleanShell(vm.get(), /*charge_inline=*/false);
    // Park the clean shell back on the shard it was released to, preserving
    // the releasing thread's locality for its next acquire.
    ParkClean(std::move(vm), source);
    cleaning_in_flight_.fetch_sub(1);
    {
      std::lock_guard<std::mutex> lock(cleaner_mu_);
    }
    drain_cv_.notify_all();
  }
}

void Pool::DrainCleaner() {
  if (options_.mode != CleanMode::kAsync) {
    return;
  }
  std::unique_lock<std::mutex> lock(cleaner_mu_);
  drain_cv_.wait(lock, [&] {
    return dirty_count_.load() == 0 && cleaning_in_flight_.load() == 0;
  });
}

void Pool::Prewarm(const vkvm::VmConfig& config, int count) {
  // Create (and account-reset) every shell outside any lock, then insert
  // round-robin so the warm set spreads across shards: one lock acquisition
  // per shard instead of one per shell.
  std::vector<std::unique_ptr<vkvm::Vm>> fresh;
  fresh.reserve(static_cast<size_t>(std::max(count, 0)));
  for (int i = 0; i < count; ++i) {
    auto vm = vkvm::Vm::Create(config);
    vm->ResetAccounting();
    fresh.push_back(std::move(vm));
  }
  for (size_t s = 0; s < shards_.size() && s < fresh.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s]->mu);
    auto& slot = shards_[s]->free[config.mem_size];
    for (size_t i = s; i < fresh.size(); i += shards_.size()) {
      slot.push_back(std::move(fresh[i]));
    }
  }
}

PoolStats Pool::stats() const {
  PoolStats out;
  out.acquires = stats_.acquires.load(std::memory_order_relaxed);
  out.pool_hits = stats_.pool_hits.load(std::memory_order_relaxed);
  out.fresh_creates = stats_.fresh_creates.load(std::memory_order_relaxed);
  out.releases = stats_.releases.load(std::memory_order_relaxed);
  out.cleans = stats_.cleans.load(std::memory_order_relaxed);
  out.bytes_zeroed = stats_.bytes_zeroed.load(std::memory_order_relaxed);
  out.affine_hits = stats_.affine_hits.load(std::memory_order_relaxed);
  out.affine_parks = stats_.affine_parks.load(std::memory_order_relaxed);
  out.affine_reclaims = stats_.affine_reclaims.load(std::memory_order_relaxed);
  out.delta_pages = stats_.delta_pages.load(std::memory_order_relaxed);
  out.affine_evictions = stats_.affine_evictions.load(std::memory_order_relaxed);
  out.affine_retired = stats_.affine_retired.load(std::memory_order_relaxed);
  out.affine_resident_bytes = stats_.affine_resident_bytes.load(std::memory_order_relaxed);
  out.affine_shared_bytes = stats_.affine_shared_bytes.load(std::memory_order_relaxed);
  out.affine_private_bytes = stats_.affine_private_bytes.load(std::memory_order_relaxed);
  return out;
}

AffineAccounting Pool::affine_accounting() const {
  AffineAccounting out;
  // One lock, one snapshot: the gauge and the per-generation rows are read
  // under the same gen_mu_ every charge/release mutates them under, so
  // sum(shared + private) == resident_bytes at *every* observation — no
  // transient can be caught mid-update.
  std::lock_guard<std::mutex> lock(gen_mu_);
  out.resident_bytes = stats_.affine_resident_bytes.load(std::memory_order_relaxed);
  out.generations.reserve(generations_.size());
  for (const auto& [generation, info] : generations_) {
    AffineAccounting::Generation row;
    row.generation = generation;
    row.shared_bytes = info.shared_bytes;
    row.private_bytes = info.private_bytes;
    row.parked_shells = info.parked_shells;
    out.generations.push_back(row);
  }
  return out;
}

size_t Pool::FreeShells(uint64_t mem_size) const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    auto it = shard->free.find(mem_size);
    if (it != shard->free.end()) {
      n += it->second.size();
    }
  }
  return n;
}

size_t Pool::TotalFreeShells() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [size, shells] : shard->free) {
      n += shells.size();
    }
  }
  return n;
}

size_t Pool::AffineShells(uint64_t generation) const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    auto it = shard->affine.find(generation);
    if (it != shard->affine.end()) {
      n += it->second.size();
    }
  }
  return n;
}

size_t Pool::TotalAffineShells() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [generation, shells] : shard->affine) {
      n += shells.size();
    }
  }
  return n;
}

size_t Pool::FreeShellsInShard(size_t shard, uint64_t mem_size) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  auto it = shards_[shard]->free.find(mem_size);
  return it == shards_[shard]->free.end() ? 0 : it->second.size();
}

}  // namespace wasp
