#include "src/wasp/pool.h"

#include <algorithm>
#include <functional>

#include "src/wasp/abi.h"

namespace wasp {

Pool::Pool(const PoolOptions& options)
    : options_([&] {
        PoolOptions o = options;
        o.shards = std::max(o.shards, 1);
        o.cleaners = std::max(o.cleaners, 1);
        return o;
      }()) {
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options_.mode == CleanMode::kAsync) {
    cleaners_.reserve(static_cast<size_t>(options_.cleaners));
    for (int i = 0; i < options_.cleaners; ++i) {
      const size_t home = static_cast<size_t>(i) % shards_.size();
      cleaners_.emplace_back([this, home] { CleanerLoop(home); });
    }
  }
}

Pool::~Pool() {
  stop_.store(true);
  {
    // Empty critical section: a cleaner that evaluated its predicate before
    // the store is now blocked in wait and will see the notify.
    std::lock_guard<std::mutex> lock(cleaner_mu_);
  }
  cleaner_cv_.notify_all();
  for (std::thread& cleaner : cleaners_) {
    if (cleaner.joinable()) {
      cleaner.join();
    }
  }
}

size_t Pool::HomeShard() const {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % shards_.size();
}

void Pool::CleanShell(vkvm::Vm* vm) {
  // Zero only the pages this virtine dirtied (real work, proportional to
  // use), reset the vCPU, and restart cycle accounting for the next tenant.
  // The EPT first-touch map is deliberately retained: reusing the mappings
  // is exactly why pooled shells are cheap.
  const uint64_t zeroed = vm->memory().ZeroDirtyPages();
  vm->ResetVcpu(kImageLoadAddr);
  vm->ResetAccounting();
  if (options_.mode == CleanMode::kSync) {
    // Synchronous cleaning sits on the provisioning critical path ("Wasp+C");
    // charge its modeled memset cost to the shell's next tenant.  The async
    // cleaner crew ("Wasp+CA") absorbs it off the critical path instead.
    vm->AddHostCycles(static_cast<uint64_t>(
        static_cast<double>(zeroed) / vm->config().host_costs.memcpy_bytes_per_cycle));
  }
  stats_.cleans.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_zeroed.fetch_add(zeroed, std::memory_order_relaxed);
}

std::unique_ptr<vkvm::Vm> Pool::Acquire(const vkvm::VmConfig& config, bool* from_pool) {
  stats_.acquires.fetch_add(1, std::memory_order_relaxed);
  // Home shard first, then steal from siblings; shard locks are never nested.
  const size_t home = HomeShard();
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[(home + i) % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.free.find(config.mem_size);
    if (it != shard.free.end() && !it->second.empty()) {
      std::unique_ptr<vkvm::Vm> vm = std::move(it->second.back());
      it->second.pop_back();
      stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
      if (from_pool != nullptr) {
        *from_pool = true;
      }
      return vm;
    }
  }
  stats_.fresh_creates.fetch_add(1, std::memory_order_relaxed);
  if (from_pool != nullptr) {
    *from_pool = false;
  }
  return vkvm::Vm::Create(config);
}

void Pool::ParkClean(std::unique_ptr<vkvm::Vm> vm, size_t shard) {
  const uint64_t mem_size = vm->config().mem_size;
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  shards_[shard]->free[mem_size].push_back(std::move(vm));
}

void Pool::Release(std::unique_ptr<vkvm::Vm> vm) {
  stats_.releases.fetch_add(1, std::memory_order_relaxed);
  switch (options_.mode) {
    case CleanMode::kNone:
      // Drop it: the host kernel reclaims the context.
      return;
    case CleanMode::kSync: {
      CleanShell(vm.get());
      ParkClean(std::move(vm), HomeShard());
      return;
    }
    case CleanMode::kAsync: {
      const size_t home = HomeShard();
      {
        // Push and count under the same shard lock as PopDirty's pop and
        // decrement: the counter can then never go negative, which is what
        // keeps DrainCleaner's (dirty == 0 && in_flight == 0) test sound.
        std::lock_guard<std::mutex> lock(shards_[home]->mu);
        shards_[home]->dirty.push_back(std::move(vm));
        dirty_count_.fetch_add(1);
      }
      {
        std::lock_guard<std::mutex> lock(cleaner_mu_);
      }
      cleaner_cv_.notify_one();
      return;
    }
  }
}

std::unique_ptr<vkvm::Vm> Pool::PopDirty(size_t home, size_t* source_shard) {
  for (size_t i = 0; i < shards_.size(); ++i) {
    const size_t index = (home + i) % shards_.size();
    Shard& shard = *shards_[index];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.dirty.empty()) {
      continue;
    }
    std::unique_ptr<vkvm::Vm> vm = std::move(shard.dirty.front());
    shard.dirty.pop_front();
    // Order matters for DrainCleaner: raise in-flight before dropping the
    // dirty count so (dirty == 0 && in_flight == 0) implies truly drained.
    cleaning_in_flight_.fetch_add(1);
    dirty_count_.fetch_sub(1);
    *source_shard = index;
    return vm;
  }
  return nullptr;
}

void Pool::CleanerLoop(size_t home) {
  while (true) {
    size_t source = home;
    std::unique_ptr<vkvm::Vm> vm = PopDirty(home, &source);
    if (vm == nullptr) {
      if (stop_.load()) {
        return;
      }
      std::unique_lock<std::mutex> lock(cleaner_mu_);
      cleaner_cv_.wait(lock, [&] { return stop_.load() || dirty_count_.load() > 0; });
      continue;
    }
    CleanShell(vm.get());
    // Park the clean shell back on the shard it was released to, preserving
    // the releasing thread's locality for its next acquire.
    ParkClean(std::move(vm), source);
    cleaning_in_flight_.fetch_sub(1);
    {
      std::lock_guard<std::mutex> lock(cleaner_mu_);
    }
    drain_cv_.notify_all();
  }
}

void Pool::DrainCleaner() {
  if (options_.mode != CleanMode::kAsync) {
    return;
  }
  std::unique_lock<std::mutex> lock(cleaner_mu_);
  drain_cv_.wait(lock, [&] {
    return dirty_count_.load() == 0 && cleaning_in_flight_.load() == 0;
  });
}

void Pool::Prewarm(const vkvm::VmConfig& config, int count) {
  // Create (and account-reset) every shell outside any lock, then insert
  // round-robin so the warm set spreads across shards: one lock acquisition
  // per shard instead of one per shell.
  std::vector<std::unique_ptr<vkvm::Vm>> fresh;
  fresh.reserve(static_cast<size_t>(std::max(count, 0)));
  for (int i = 0; i < count; ++i) {
    auto vm = vkvm::Vm::Create(config);
    vm->ResetAccounting();
    fresh.push_back(std::move(vm));
  }
  for (size_t s = 0; s < shards_.size() && s < fresh.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s]->mu);
    auto& slot = shards_[s]->free[config.mem_size];
    for (size_t i = s; i < fresh.size(); i += shards_.size()) {
      slot.push_back(std::move(fresh[i]));
    }
  }
}

PoolStats Pool::stats() const {
  PoolStats out;
  out.acquires = stats_.acquires.load(std::memory_order_relaxed);
  out.pool_hits = stats_.pool_hits.load(std::memory_order_relaxed);
  out.fresh_creates = stats_.fresh_creates.load(std::memory_order_relaxed);
  out.releases = stats_.releases.load(std::memory_order_relaxed);
  out.cleans = stats_.cleans.load(std::memory_order_relaxed);
  out.bytes_zeroed = stats_.bytes_zeroed.load(std::memory_order_relaxed);
  return out;
}

size_t Pool::FreeShells(uint64_t mem_size) const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    auto it = shard->free.find(mem_size);
    if (it != shard->free.end()) {
      n += it->second.size();
    }
  }
  return n;
}

size_t Pool::TotalFreeShells() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [size, shells] : shard->free) {
      n += shells.size();
    }
  }
  return n;
}

size_t Pool::FreeShellsInShard(size_t shard, uint64_t mem_size) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  auto it = shards_[shard]->free.find(mem_size);
  return it == shards_[shard]->free.end() ? 0 : it->second.size();
}

}  // namespace wasp
