#include "src/wasp/pool.h"

#include "src/wasp/abi.h"

namespace wasp {

Pool::Pool(CleanMode mode) : mode_(mode) {
  if (mode_ == CleanMode::kAsync) {
    cleaner_ = std::thread([this] { CleanerLoop(); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (cleaner_.joinable()) {
    cleaner_.join();
  }
}

void Pool::CleanShell(vkvm::Vm* vm) {
  // Zero only the pages this virtine dirtied (real work, proportional to
  // use), reset the vCPU, and restart cycle accounting for the next tenant.
  // The EPT first-touch map is deliberately retained: reusing the mappings
  // is exactly why pooled shells are cheap.
  const uint64_t zeroed = vm->memory().ZeroDirtyPages();
  vm->ResetVcpu(kImageLoadAddr);
  vm->ResetAccounting();
  if (mode_ == CleanMode::kSync) {
    // Synchronous cleaning sits on the provisioning critical path ("Wasp+C");
    // charge its modeled memset cost to the shell's next tenant.  The async
    // cleaner ("Wasp+CA") absorbs it off the critical path instead.
    vm->AddHostCycles(static_cast<uint64_t>(
        static_cast<double>(zeroed) / vm->config().host_costs.memcpy_bytes_per_cycle));
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats_.cleans++;
  stats_.bytes_zeroed += zeroed;
}

std::unique_ptr<vkvm::Vm> Pool::Acquire(const vkvm::VmConfig& config, bool* from_pool) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.acquires++;
    auto it = free_.find(config.mem_size);
    if (it != free_.end() && !it->second.empty()) {
      std::unique_ptr<vkvm::Vm> vm = std::move(it->second.back());
      it->second.pop_back();
      stats_.pool_hits++;
      if (from_pool != nullptr) {
        *from_pool = true;
      }
      return vm;
    }
    stats_.fresh_creates++;
  }
  if (from_pool != nullptr) {
    *from_pool = false;
  }
  return vkvm::Vm::Create(config);
}

void Pool::Release(std::unique_ptr<vkvm::Vm> vm) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.releases++;
  }
  switch (mode_) {
    case CleanMode::kNone:
      // Drop it: the host kernel reclaims the context.
      return;
    case CleanMode::kSync: {
      CleanShell(vm.get());
      std::lock_guard<std::mutex> lock(mu_);
      free_[vm->config().mem_size].push_back(std::move(vm));
      return;
    }
    case CleanMode::kAsync: {
      {
        std::lock_guard<std::mutex> lock(mu_);
        dirty_.push_back(std::move(vm));
      }
      cv_.notify_all();
      return;
    }
  }
}

void Pool::CleanerLoop() {
  while (true) {
    std::unique_ptr<vkvm::Vm> vm;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !dirty_.empty(); });
      if (stop_ && dirty_.empty()) {
        return;
      }
      vm = std::move(dirty_.front());
      dirty_.pop_front();
      ++cleaning_in_flight_;
    }
    CleanShell(vm.get());
    {
      std::lock_guard<std::mutex> lock(mu_);
      free_[vm->config().mem_size].push_back(std::move(vm));
      --cleaning_in_flight_;
    }
    cv_.notify_all();
  }
}

void Pool::DrainCleaner() {
  if (mode_ != CleanMode::kAsync) {
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return dirty_.empty() && cleaning_in_flight_ == 0; });
}

void Pool::Prewarm(const vkvm::VmConfig& config, int count) {
  for (int i = 0; i < count; ++i) {
    auto vm = vkvm::Vm::Create(config);
    vm->ResetAccounting();
    std::lock_guard<std::mutex> lock(mu_);
    free_[config.mem_size].push_back(std::move(vm));
  }
}

PoolStats Pool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t Pool::FreeShells(uint64_t mem_size) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = free_.find(mem_size);
  return it == free_.end() ? 0 : it->second.size();
}

}  // namespace wasp
