#include "src/wasp/executor.h"

#include <algorithm>
#include <atomic>

#include "src/base/clock.h"
#include "src/base/log.h"

namespace wasp {

Executor::Executor(Runtime* runtime, int workers) : runtime_(runtime) {
  VB_CHECK(runtime_ != nullptr, "Executor requires a runtime");
  const int n = std::max(workers, 1);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

std::future<RunOutcome> Executor::Submit(VirtineSpec spec) {
  Job job;
  job.spec = std::move(spec);
  std::future<RunOutcome> future = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    VB_CHECK(!stop_, "Submit on a stopped executor");
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return future;
}

void Executor::WorkerLoop() {
  // Keyed submit hint: a worker that just ran snapshot key K parked K's
  // shell snapshot-affine in its home pool shard, so a queued job with the
  // same key is cheapest to run *here* (delta restore instead of a full
  // image copy).  The scan is bounded and fairness-capped: after a few
  // consecutive out-of-order picks the worker must take the queue head, so
  // no job can starve behind a stream of matching keys.
  constexpr size_t kAffinityScan = 8;
  constexpr int kMaxConsecutiveSkips = 4;
  std::string last_key;
  int skips = 0;
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop requested and nothing left to drain
      }
      size_t pick = 0;
      if (!last_key.empty() && skips < kMaxConsecutiveSkips) {
        const size_t scan = std::min(queue_.size(), kAffinityScan);
        for (size_t i = 0; i < scan; ++i) {
          if (queue_[i].spec.use_snapshot && queue_[i].spec.key == last_key) {
            pick = i;
            break;
          }
        }
      }
      skips = pick == 0 ? 0 : skips + 1;
      job = std::move(queue_[pick]);
      queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(pick));
    }
    last_key = job.spec.use_snapshot ? job.spec.key : std::string();
    job.promise.set_value(runtime_->Invoke(job.spec));
  }
}

std::vector<RunOutcome> Executor::Run(Runtime* runtime, const std::vector<VirtineSpec>& specs,
                                      int concurrency, BatchStats* stats) {
  VB_CHECK(runtime != nullptr, "Executor::Run requires a runtime");
  const size_t lanes = static_cast<size_t>(
      std::max(1, std::min<int>(concurrency, static_cast<int>(std::max<size_t>(specs.size(), 1)))));
  std::vector<RunOutcome> outcomes(specs.size());
  std::vector<uint64_t> lane_cycles(lanes, 0);
  vbase::WallTimer timer;
  // Striped static assignment (lane i runs specs i, i+lanes, ...): the lane
  // loads — and therefore the modeled makespan — are deterministic even on
  // an oversubscribed host where the OS schedules lanes unevenly.
  auto lane_body = [&](size_t lane) {
    uint64_t busy = 0;
    for (size_t i = lane; i < specs.size(); i += lanes) {
      outcomes[i] = runtime->Invoke(specs[i]);
      busy += outcomes[i].stats.total_cycles;
    }
    lane_cycles[lane] = busy;
  };
  std::vector<std::thread> threads;
  threads.reserve(lanes - 1);
  for (size_t lane = 1; lane < lanes; ++lane) {
    threads.emplace_back(lane_body, lane);
  }
  lane_body(0);  // the calling thread is lane 0
  for (std::thread& t : threads) {
    t.join();
  }
  if (stats != nullptr) {
    stats->worker_cycles = std::move(lane_cycles);
    stats->wall_ns = timer.ElapsedNanos();
  }
  return outcomes;
}

}  // namespace wasp
