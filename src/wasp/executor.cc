#include "src/wasp/executor.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "src/base/clock.h"
#include "src/base/log.h"

namespace wasp {

Executor::Executor(Runtime* runtime, int workers)
    : Executor(runtime, ExecutorOptions{workers, 0, true}) {}

Executor::Executor(Runtime* runtime, ExecutorOptions options)
    : runtime_(runtime), options_(options) {
  VB_CHECK(runtime_ != nullptr, "Executor requires a runtime");
  const int n = std::max(options_.workers, 1);
  options_.workers = n;
  if (options_.batch_weight > 0) {
    // Weight 1 would pick batch on *every* contended dequeue — priority
    // inversion, the opposite of the knob's promise — so the floor is
    // alternation.
    options_.batch_weight = std::max(options_.batch_weight, 2);
  }
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<uint32_t>(i)); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  cv_space_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

Executor::Task Executor::MakeInvokeTask(VirtineSpec spec) {
  return [runtime = runtime_, spec = std::move(spec)] { return runtime->Invoke(spec); };
}

Admission Executor::Enqueue(Job job, bool may_reject, std::future<RunOutcome>* future) {
  std::future<RunOutcome> resolved = job.promise.get_future();
  Admission admission = Admission::kAccepted;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Per-key quota: rejected before (and independent of) the global bound,
    // and always immediately — a hot key must shed, not park submitters.
    // The effective cap is tier-resolved (key_quota_overrides, falling back
    // to key_quota), so premium keys can carry a looser bound than free ones.
    const size_t quota = job.key.empty() ? 0 : options_.QuotaFor(job.key);
    if (may_reject && !stop_ && quota > 0) {
      auto it = key_load_.find(job.key);
      if (it != key_load_.end() && it->second >= quota) {
        ++stats_.quota_rejected;
        return Admission::kQuotaExceeded;  // job (and its promise) dropped
      }
    }
    if (!stop_ && options_.max_queue_depth > 0) {
      if (may_reject && !options_.block_when_full &&
          TotalQueuedLocked() >= options_.max_queue_depth) {
        ++stats_.rejected;
        return Admission::kQueueFull;  // caller sheds load
      }
      cv_space_.wait(lock, [this] {
        return stop_ || TotalQueuedLocked() < options_.max_queue_depth;
      });
      // Re-check the quota after a blocking park: sibling submitters of the
      // same key passed the entry check while this one waited for global
      // space, so enqueueing blindly here would overshoot the cap.  The
      // quota is a hard invariant; a woken waiter that would break it is
      // rejected at wake instead.
      if (may_reject && !stop_ && quota > 0) {
        auto it = key_load_.find(job.key);
        if (it != key_load_.end() && it->second >= quota) {
          ++stats_.quota_rejected;
          // This reject consumed a dequeue's notify_one without taking the
          // freed slot; pass the wakeup on or another parked submitter
          // could sleep forever beside an open slot.
          cv_space_.notify_one();
          return Admission::kQuotaExceeded;
        }
      }
    }
    if (stop_) {
      // Teardown raced the submission (blocking admission makes long parks
      // inside Enqueue routine): fail it recoverably instead of aborting.
      ++stats_.rejected;
      admission = Admission::kStopped;
    } else {
      job.seq = next_seq_++;
      if (!job.key.empty()) {
        ++key_load_[job.key];
      }
      queues_[static_cast<size_t>(job.klass)].push_back(std::move(job));
      ++stats_.submitted;
      stats_.peak_queue_depth =
          std::max<uint64_t>(stats_.peak_queue_depth, TotalQueuedLocked());
    }
  }
  if (admission == Admission::kStopped) {
    RunOutcome outcome;
    outcome.status = vbase::Aborted("executor stopped during submit");
    job.promise.set_value(std::move(outcome));
    if (future != nullptr) {
      *future = std::move(resolved);  // already resolved with the error
    }
    return admission;
  }
  cv_.notify_one();
  if (future != nullptr) {
    *future = std::move(resolved);
  }
  return admission;
}

std::future<RunOutcome> Executor::Submit(VirtineSpec spec, KeyClass klass) {
  Job job;
  job.key = spec.use_snapshot ? spec.key : std::string();
  job.klass = klass;
  job.work = MakeInvokeTask(std::move(spec));
  std::future<RunOutcome> future;
  Enqueue(std::move(job), /*may_reject=*/false, &future);
  return future;
}

bool Executor::TrySubmit(VirtineSpec spec, std::future<RunOutcome>* future, KeyClass klass,
                         Admission* admission) {
  Job job;
  job.key = spec.use_snapshot ? spec.key : std::string();
  job.klass = klass;
  job.work = MakeInvokeTask(std::move(spec));
  const Admission result = Enqueue(std::move(job), /*may_reject=*/true, future);
  if (admission != nullptr) {
    *admission = result;
  }
  return result == Admission::kAccepted;
}

std::future<RunOutcome> Executor::SubmitTask(Task task, std::string affinity_key,
                                             KeyClass klass) {
  Job job;
  job.key = std::move(affinity_key);
  job.klass = klass;
  job.work = std::move(task);
  std::future<RunOutcome> future;
  Enqueue(std::move(job), /*may_reject=*/false, &future);
  return future;
}

bool Executor::TrySubmitTask(Task task, std::future<RunOutcome>* future,
                             std::string affinity_key, KeyClass klass,
                             Admission* admission) {
  Job job;
  job.key = std::move(affinity_key);
  job.klass = klass;
  job.work = std::move(task);
  const Admission result = Enqueue(std::move(job), /*may_reject=*/true, future);
  if (admission != nullptr) {
    *admission = result;
  }
  return result == Admission::kAccepted;
}

size_t Executor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return TotalQueuedLocked();
}

ExecutorStats Executor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ExecutorStats out = stats_;
  out.queued = TotalQueuedLocked();
  out.in_flight = in_flight_;
  return out;
}

size_t Executor::KeyLoad(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = key_load_.find(key);
  return it == key_load_.end() ? 0 : it->second;
}

size_t Executor::PickClass() {
  const bool have_latency = !queues_[0].empty();
  const bool have_batch = !queues_[1].empty();
  if (have_latency && have_batch) {
    if (options_.batch_weight <= 0) {
      // Ungoverned: strict FIFO across classes by submission order.
      return queues_[0].front().seq < queues_[1].front().seq ? 0 : 1;
    }
    // Weighted priority: latency first, but one batch job per batch_weight
    // dequeues under contention, so batch cannot starve.
    if (batch_credit_ >= options_.batch_weight - 1) {
      batch_credit_ = 0;
      return 1;
    }
    ++batch_credit_;
    return 0;
  }
  return have_latency ? 0 : 1;
}

void Executor::WorkerLoop(uint32_t worker_index) {
  // Register this worker as a pool lane: its acquires and releases hit a
  // dedicated single-slot shell cache before any shared structure, and its
  // stable lane id keeps it mapped to the same pool shard (and modeled NUMA
  // node) across the executor's lifetime.
  Pool::BindLane(worker_index);
  // Keyed submit hint: a worker that just ran snapshot key K parked K's
  // shell snapshot-affine in its home pool shard, so a queued job with the
  // same key is cheapest to run *here* (delta restore instead of a full
  // image copy).  The scan is bounded and fairness-capped: after a few
  // consecutive out-of-order picks the worker must take the queue head, so
  // no job can starve behind a stream of matching keys.  The scan stays
  // within the class PickClass chose, so affinity can never invert the
  // latency-vs-batch weighting.
  constexpr size_t kAffinityScan = 8;
  constexpr int kMaxConsecutiveSkips = 4;
  std::string last_key;
  int skips = 0;
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || TotalQueuedLocked() > 0; });
      if (TotalQueuedLocked() == 0) {
        return;  // stop requested and nothing left to drain
      }
      const size_t cls = PickClass();
      std::deque<Job>& queue = queues_[cls];
      size_t pick = 0;
      if (!last_key.empty() && skips < kMaxConsecutiveSkips) {
        const size_t scan = std::min(queue.size(), kAffinityScan);
        for (size_t i = 0; i < scan; ++i) {
          if (!queue[i].key.empty() && queue[i].key == last_key) {
            pick = i;
            break;
          }
        }
      }
      skips = pick == 0 ? 0 : skips + 1;
      job = std::move(queue[pick]);
      queue.erase(queue.begin() + static_cast<ptrdiff_t>(pick));
      ++in_flight_;
      if (cls == 0) {
        ++stats_.dequeued_latency;
      } else {
        ++stats_.dequeued_batch;
      }
    }
    cv_space_.notify_one();
    last_key = job.key;
    RunOutcome outcome = job.work();
    // Classify before resolving the future (the outcome moves away): a
    // faulted invocation counts separately, and its key-quota slot is
    // released just the same — faults must never wedge a key's quota.
    const bool faulted = outcome.fault != FaultKind::kNone;
    job.promise.set_value(std::move(outcome));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (faulted) {
        ++stats_.faulted;
      } else {
        ++stats_.completed;
      }
      --in_flight_;
      if (!job.key.empty()) {
        auto it = key_load_.find(job.key);
        if (it != key_load_.end() && --it->second == 0) {
          key_load_.erase(it);
        }
      }
    }
  }
}

std::vector<RunOutcome> Executor::Run(Runtime* runtime, const std::vector<VirtineSpec>& specs,
                                      int concurrency, BatchStats* stats) {
  VB_CHECK(runtime != nullptr, "Executor::Run requires a runtime");
  const size_t lanes = static_cast<size_t>(
      std::max(1, std::min<int>(concurrency, static_cast<int>(std::max<size_t>(specs.size(), 1)))));
  std::vector<RunOutcome> outcomes(specs.size());
  std::vector<uint64_t> lane_cycles(lanes, 0);
  vbase::WallTimer timer;
  // Striped static assignment (lane i runs specs i, i+lanes, ...): the lane
  // loads — and therefore the modeled makespan — are deterministic even on
  // an oversubscribed host where the OS schedules lanes unevenly.
  auto lane_body = [&](size_t lane) {
    Pool::BindLane(static_cast<uint32_t>(lane));
    uint64_t busy = 0;
    for (size_t i = lane; i < specs.size(); i += lanes) {
      outcomes[i] = runtime->Invoke(specs[i]);
      busy += outcomes[i].stats.total_cycles;
    }
    lane_cycles[lane] = busy;
  };
  std::vector<std::thread> threads;
  threads.reserve(lanes - 1);
  for (size_t lane = 1; lane < lanes; ++lane) {
    threads.emplace_back(lane_body, lane);
  }
  lane_body(0);  // the calling thread is lane 0
  for (std::thread& t : threads) {
    t.join();
  }
  if (stats != nullptr) {
    stats->worker_cycles = std::move(lane_cycles);
    stats->wall_ns = timer.ElapsedNanos();
  }
  return outcomes;
}

}  // namespace wasp
