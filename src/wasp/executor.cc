#include "src/wasp/executor.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <utility>

#include "src/base/clock.h"
#include "src/base/log.h"

namespace wasp {

Executor::Executor(Runtime* runtime, int workers)
    : Executor(runtime, ExecutorOptions{workers, 0, true}) {}

Executor::Executor(Runtime* runtime, ExecutorOptions options)
    : runtime_(runtime), options_(options) {
  VB_CHECK(runtime_ != nullptr, "Executor requires a runtime");
  const int n = std::max(options_.workers, 1);
  options_.workers = n;
  if (options_.batch_weight > 0) {
    // Weight 1 would pick batch on *every* contended dequeue — priority
    // inversion, the opposite of the knob's promise — so the floor is
    // alternation.
    options_.batch_weight = std::max(options_.batch_weight, 2);
  }
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<uint32_t>(i)); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  cv_space_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

bool Executor::BreakerAdmitLocked(const std::string& key, bool* probe) {
  auto it = recovery_.find(key);
  if (it == recovery_.end()) {
    return true;  // no evidence yet: closed by definition
  }
  KeyRecovery& r = it->second;
  switch (r.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      // Count-based cooldown: after breaker_open_sheds requests have been
      // shed, the next one is admitted as the half-open probe.  Counting
      // requests instead of wall time keeps replays deterministic and makes
      // the cooldown proportional to the key's own arrival rate.
      if (r.sheds >= options_.recovery.breaker_open_sheds) {
        r.state = BreakerState::kHalfOpen;
        r.probe_in_flight = true;
        *probe = true;
        return true;
      }
      ++r.sheds;
      return false;
    case BreakerState::kHalfOpen:
      if (!r.probe_in_flight) {
        r.probe_in_flight = true;
        *probe = true;
        return true;
      }
      return false;  // one probe at a time; everything else sheds
  }
  return true;
}

void Executor::RecordAttemptLocked(const std::string& key, bool faulted, bool probe) {
  const RecoveryOptions& ro = options_.recovery;
  KeyRecovery& r = recovery_[key];
  r.ewma = ro.breaker_alpha * (faulted ? 1.0 : 0.0) + (1.0 - ro.breaker_alpha) * r.ewma;
  ++r.samples;
  if (!ro.breaker_enabled) {
    return;  // EWMA tracking is unconditional; the state machine is opt-in
  }
  if (probe) {
    r.probe_in_flight = false;
    if (faulted) {
      r.state = BreakerState::kOpen;
      r.sheds = 0;
      ++r.opens;
      ++stats_.breaker_opens;
    } else {
      // Clean probe: close and forget.  The EWMA resets so re-tripping needs
      // fresh consecutive evidence, not the tail of the old storm.
      r.state = BreakerState::kClosed;
      r.ewma = 0.0;
    }
    return;
  }
  if (r.state == BreakerState::kClosed && r.samples >= ro.breaker_min_samples &&
      r.ewma >= ro.breaker_open_threshold) {
    r.state = BreakerState::kOpen;
    r.sheds = 0;
    ++r.opens;
    ++stats_.breaker_opens;
  }
}

Admission Executor::Enqueue(Job job, bool may_reject, std::future<RunOutcome>* future) {
  std::future<RunOutcome> resolved = job.promise.get_future();
  Admission admission = Admission::kAccepted;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Circuit breaker: checked before everything else — an open breaker is
    // the cheapest possible shed (no queue slot, no quota math, no park).
    // Blocking Submit/SubmitTask bypasses it, like the quota (trusted
    // closed-loop path).
    if (may_reject && !stop_ && options_.recovery.breaker_enabled && !job.key.empty()) {
      bool probe = false;
      if (!BreakerAdmitLocked(job.key, &probe)) {
        ++stats_.breaker_rejected;
        return Admission::kCircuitOpen;  // job (and its promise) dropped
      }
      job.probe = probe;
    }
    // If this job was just marked as its key's half-open probe but a later
    // admission stage rejects it, the probe reservation must be handed back —
    // otherwise the breaker waits forever on a probe that never ran.
    auto release_probe = [&] {
      if (job.probe) {
        auto it = recovery_.find(job.key);
        if (it != recovery_.end()) {
          it->second.probe_in_flight = false;
        }
        job.probe = false;
      }
    };
    // Per-key quota: rejected before (and independent of) the global bound,
    // and always immediately — a hot key must shed, not park submitters.
    // The effective cap is tier-resolved (key_quota_overrides, falling back
    // to key_quota), so premium keys can carry a looser bound than free ones.
    const size_t quota = job.key.empty() ? 0 : options_.QuotaFor(job.key);
    if (may_reject && !stop_ && quota > 0) {
      auto it = key_load_.find(job.key);
      if (it != key_load_.end() && it->second >= quota) {
        ++stats_.quota_rejected;
        release_probe();
        return Admission::kQuotaExceeded;  // job (and its promise) dropped
      }
    }
    if (!stop_ && options_.max_queue_depth > 0) {
      if (may_reject && !options_.block_when_full &&
          TotalQueuedLocked() >= options_.max_queue_depth) {
        ++stats_.rejected;
        release_probe();
        return Admission::kQueueFull;  // caller sheds load
      }
      cv_space_.wait(lock, [this] {
        return stop_ || TotalQueuedLocked() < options_.max_queue_depth;
      });
      // Re-check the quota after a blocking park: sibling submitters of the
      // same key passed the entry check while this one waited for global
      // space, so enqueueing blindly here would overshoot the cap.  The
      // quota is a hard invariant; a woken waiter that would break it is
      // rejected at wake instead.
      if (may_reject && !stop_ && quota > 0) {
        auto it = key_load_.find(job.key);
        if (it != key_load_.end() && it->second >= quota) {
          ++stats_.quota_rejected;
          release_probe();
          // This reject consumed a dequeue's notify_one without taking the
          // freed slot; pass the wakeup on or another parked submitter
          // could sleep forever beside an open slot.
          cv_space_.notify_one();
          return Admission::kQuotaExceeded;
        }
      }
    }
    if (stop_) {
      // Teardown raced the submission (blocking admission makes long parks
      // inside Enqueue routine): fail it recoverably instead of aborting.
      ++stats_.rejected;
      release_probe();
      admission = Admission::kStopped;
    } else {
      job.seq = next_seq_++;
      if (!job.key.empty()) {
        ++key_load_[job.key];
      }
      queues_[static_cast<size_t>(job.klass)].push_back(std::move(job));
      ++stats_.submitted;
      stats_.peak_queue_depth =
          std::max<uint64_t>(stats_.peak_queue_depth, TotalQueuedLocked());
    }
  }
  if (admission == Admission::kStopped) {
    RunOutcome outcome;
    outcome.status = vbase::Aborted("executor stopped during submit");
    job.promise.set_value(std::move(outcome));
    if (future != nullptr) {
      *future = std::move(resolved);  // already resolved with the error
    }
    return admission;
  }
  cv_.notify_one();
  if (future != nullptr) {
    *future = std::move(resolved);
  }
  return admission;
}

std::future<RunOutcome> Executor::Submit(VirtineSpec spec, KeyClass klass) {
  Job job;
  job.key = spec.use_snapshot ? spec.key : std::string();
  job.klass = klass;
  job.spec = std::move(spec);
  job.retryable = true;
  std::future<RunOutcome> future;
  Enqueue(std::move(job), /*may_reject=*/false, &future);
  return future;
}

bool Executor::TrySubmit(VirtineSpec spec, std::future<RunOutcome>* future, KeyClass klass,
                         Admission* admission) {
  Job job;
  job.key = spec.use_snapshot ? spec.key : std::string();
  job.klass = klass;
  job.spec = std::move(spec);
  job.retryable = true;
  const Admission result = Enqueue(std::move(job), /*may_reject=*/true, future);
  if (admission != nullptr) {
    *admission = result;
  }
  return result == Admission::kAccepted;
}

std::future<RunOutcome> Executor::SubmitTask(Task task, std::string affinity_key,
                                             KeyClass klass) {
  Job job;
  job.key = std::move(affinity_key);
  job.klass = klass;
  job.work = std::move(task);
  std::future<RunOutcome> future;
  Enqueue(std::move(job), /*may_reject=*/false, &future);
  return future;
}

bool Executor::TrySubmitTask(Task task, std::future<RunOutcome>* future,
                             std::string affinity_key, KeyClass klass,
                             Admission* admission) {
  Job job;
  job.key = std::move(affinity_key);
  job.klass = klass;
  job.work = std::move(task);
  const Admission result = Enqueue(std::move(job), /*may_reject=*/true, future);
  if (admission != nullptr) {
    *admission = result;
  }
  return result == Admission::kAccepted;
}

size_t Executor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return TotalQueuedLocked();
}

ExecutorStats Executor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ExecutorStats out = stats_;
  out.queued = TotalQueuedLocked();
  out.in_flight = in_flight_;
  // Debug-build audit of the conservation law at *every* snapshot, not just
  // test quiesce points.  The retry path keeps a retried job in `in_flight`
  // across both attempts, so no observation may catch a job outside all four
  // buckets.  (assert, not VB_CHECK: VB_CHECK aborts in release builds too,
  // and a stats snapshot must stay cheap there.)
  assert(out.submitted == out.completed + out.faulted + out.queued + out.in_flight);
  return out;
}

size_t Executor::KeyLoad(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = key_load_.find(key);
  return it == key_load_.end() ? 0 : it->second;
}

KeyRecoverySnapshot Executor::KeyRecoveryState(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  KeyRecoverySnapshot snap;
  auto it = recovery_.find(key);
  if (it != recovery_.end()) {
    snap.fault_rate = it->second.ewma;
    snap.samples = it->second.samples;
    snap.state = it->second.state;
    snap.opens = it->second.opens;
  }
  return snap;
}

double Executor::KeyFaultRate(const std::string& key) const {
  return KeyRecoveryState(key).fault_rate;
}

size_t Executor::PickClass() {
  const bool have_latency = !queues_[0].empty();
  const bool have_batch = !queues_[1].empty();
  if (have_latency && have_batch) {
    if (options_.batch_weight <= 0) {
      // Ungoverned: strict FIFO across classes by submission order.
      return queues_[0].front().seq < queues_[1].front().seq ? 0 : 1;
    }
    // Weighted priority: latency first, but one batch job per batch_weight
    // dequeues under contention, so batch cannot starve.
    if (batch_credit_ >= options_.batch_weight - 1) {
      batch_credit_ = 0;
      return 1;
    }
    ++batch_credit_;
    return 0;
  }
  return have_latency ? 0 : 1;
}

void Executor::WorkerLoop(uint32_t worker_index) {
  // Register this worker as a pool lane: its acquires and releases hit a
  // dedicated single-slot shell cache before any shared structure, and its
  // stable lane id keeps it mapped to the same pool shard (and modeled NUMA
  // node) across the executor's lifetime.
  Pool::BindLane(worker_index);
  // Keyed submit hint: a worker that just ran snapshot key K parked K's
  // shell snapshot-affine in its home pool shard, so a queued job with the
  // same key is cheapest to run *here* (delta restore instead of a full
  // image copy).  The scan is bounded and fairness-capped: after a few
  // consecutive out-of-order picks the worker must take the queue head, so
  // no job can starve behind a stream of matching keys.  The scan stays
  // within the class PickClass chose, so affinity can never invert the
  // latency-vs-batch weighting.
  constexpr size_t kAffinityScan = 8;
  constexpr int kMaxConsecutiveSkips = 4;
  std::string last_key;
  int skips = 0;
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || TotalQueuedLocked() > 0; });
      if (TotalQueuedLocked() == 0) {
        return;  // stop requested and nothing left to drain
      }
      const size_t cls = PickClass();
      std::deque<Job>& queue = queues_[cls];
      size_t pick = 0;
      if (!last_key.empty() && skips < kMaxConsecutiveSkips) {
        const size_t scan = std::min(queue.size(), kAffinityScan);
        for (size_t i = 0; i < scan; ++i) {
          if (!queue[i].key.empty() && queue[i].key == last_key) {
            pick = i;
            break;
          }
        }
      }
      skips = pick == 0 ? 0 : skips + 1;
      job = std::move(queue[pick]);
      queue.erase(queue.begin() + static_cast<ptrdiff_t>(pick));
      ++in_flight_;
      if (cls == 0) {
        ++stats_.dequeued_latency;
      } else {
        ++stats_.dequeued_batch;
      }
    }
    cv_space_.notify_one();
    last_key = job.key;
    RunOutcome outcome = RunJob(job);
    // Settle ALL accounting — completed/faulted, the recovery ledger, and
    // the key-quota slot — before resolving the future.  A caller that sees
    // the future ready may immediately resubmit on the same key; its slot
    // must already be free (a fault must never wedge a key's quota, not
    // even for the resolve-to-release window).
    const bool faulted = outcome.fault != FaultKind::kNone;
    const bool retried = outcome.retried;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (faulted) {
        ++stats_.faulted;
      } else {
        ++stats_.completed;
        if (retried) {
          ++stats_.retry_successes;
        }
      }
      // The final attempt's outcome resolves the key's probe (if this job
      // was one) and feeds the fault-rate EWMA.
      if (!job.key.empty()) {
        RecordAttemptLocked(job.key, faulted, job.probe);
      }
      --in_flight_;
      if (!job.key.empty()) {
        auto it = key_load_.find(job.key);
        if (it != key_load_.end() && --it->second == 0) {
          key_load_.erase(it);
        }
      }
    }
    job.promise.set_value(std::move(outcome));
  }
}

RunOutcome Executor::RunJob(Job& job) {
  RunOutcome outcome = job.retryable ? runtime_->Invoke(job.spec) : job.work();
  if (outcome.fault == FaultKind::kNone || !job.retryable ||
      !IsRecoverableFault(outcome.fault) || !options_.recovery.IsIdempotent(job.key)) {
    return outcome;
  }
  // Retry-once: the fault kinds above guarantee the guest never observably
  // ran, and the key is declared side-effect free, so a second attempt is
  // safe.  The job stays in_flight and keeps its key-quota slot across both
  // attempts — `submitted` counted it once and exactly one of
  // completed/faulted will count its end, so the conservation law holds at
  // every observation in between.  The first attempt still feeds the EWMA:
  // a retry-masked storm must trip the breaker just like a visible one.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.retries;
    if (!job.key.empty()) {
      RecordAttemptLocked(job.key, /*faulted=*/true, /*probe=*/false);
    }
  }
  const FaultKind first = outcome.fault;
  VirtineSpec retry_spec = job.spec;
  // A fresh, non-affine shell: the first attempt's shell is already
  // quarantined, and an affine sibling could share whatever poisoned state
  // killed it (a bad snapshot delta, a dying lane).
  retry_spec.fresh_shell = true;
  outcome = runtime_->Invoke(retry_spec);
  outcome.retried = true;
  outcome.first_fault = first;
  return outcome;
}

std::vector<RunOutcome> Executor::Run(Runtime* runtime, const std::vector<VirtineSpec>& specs,
                                      int concurrency, BatchStats* stats) {
  VB_CHECK(runtime != nullptr, "Executor::Run requires a runtime");
  const size_t lanes = static_cast<size_t>(
      std::max(1, std::min<int>(concurrency, static_cast<int>(std::max<size_t>(specs.size(), 1)))));
  std::vector<RunOutcome> outcomes(specs.size());
  std::vector<uint64_t> lane_cycles(lanes, 0);
  vbase::WallTimer timer;
  // Striped static assignment (lane i runs specs i, i+lanes, ...): the lane
  // loads — and therefore the modeled makespan — are deterministic even on
  // an oversubscribed host where the OS schedules lanes unevenly.
  auto lane_body = [&](size_t lane) {
    Pool::BindLane(static_cast<uint32_t>(lane));
    uint64_t busy = 0;
    for (size_t i = lane; i < specs.size(); i += lanes) {
      outcomes[i] = runtime->Invoke(specs[i]);
      busy += outcomes[i].stats.total_cycles;
    }
    lane_cycles[lane] = busy;
  };
  std::vector<std::thread> threads;
  threads.reserve(lanes - 1);
  for (size_t lane = 1; lane < lanes; ++lane) {
    threads.emplace_back(lane_body, lane);
  }
  lane_body(0);  // the calling thread is lane 0
  for (std::thread& t : threads) {
    t.join();
  }
  if (stats != nullptr) {
    stats->worker_cycles = std::move(lane_cycles);
    stats->wall_ns = timer.ElapsedNanos();
  }
  return outcomes;
}

}  // namespace wasp
