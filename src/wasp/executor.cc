#include "src/wasp/executor.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "src/base/clock.h"
#include "src/base/log.h"

namespace wasp {

Executor::Executor(Runtime* runtime, int workers)
    : Executor(runtime, ExecutorOptions{workers, 0, true}) {}

Executor::Executor(Runtime* runtime, ExecutorOptions options)
    : runtime_(runtime), options_(options) {
  VB_CHECK(runtime_ != nullptr, "Executor requires a runtime");
  const int n = std::max(options_.workers, 1);
  options_.workers = n;
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  cv_space_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

Executor::Task Executor::MakeInvokeTask(VirtineSpec spec) {
  return [runtime = runtime_, spec = std::move(spec)] { return runtime->Invoke(spec); };
}

bool Executor::Enqueue(Job job, bool may_reject, std::future<RunOutcome>* future) {
  std::future<RunOutcome> resolved = job.promise.get_future();
  bool accepted = true;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!stop_ && options_.max_queue_depth > 0) {
      if (may_reject && !options_.block_when_full &&
          queue_.size() >= options_.max_queue_depth) {
        ++stats_.rejected;
        return false;  // job (and its promise) dropped; caller sheds load
      }
      cv_space_.wait(lock, [this] {
        return stop_ || queue_.size() < options_.max_queue_depth;
      });
    }
    if (stop_) {
      // Teardown raced the submission (blocking admission makes long parks
      // inside Enqueue routine): fail it recoverably instead of aborting.
      ++stats_.rejected;
      accepted = false;
    } else {
      queue_.push_back(std::move(job));
      ++stats_.submitted;
      stats_.peak_queue_depth = std::max<uint64_t>(stats_.peak_queue_depth, queue_.size());
    }
  }
  if (!accepted) {
    RunOutcome outcome;
    outcome.status = vbase::Aborted("executor stopped during submit");
    job.promise.set_value(std::move(outcome));
    if (future != nullptr) {
      *future = std::move(resolved);  // already resolved with the error
    }
    return false;
  }
  cv_.notify_one();
  if (future != nullptr) {
    *future = std::move(resolved);
  }
  return true;
}

std::future<RunOutcome> Executor::Submit(VirtineSpec spec) {
  Job job;
  job.key = spec.use_snapshot ? spec.key : std::string();
  job.work = MakeInvokeTask(std::move(spec));
  std::future<RunOutcome> future;
  Enqueue(std::move(job), /*may_reject=*/false, &future);
  return future;
}

bool Executor::TrySubmit(VirtineSpec spec, std::future<RunOutcome>* future) {
  Job job;
  job.key = spec.use_snapshot ? spec.key : std::string();
  job.work = MakeInvokeTask(std::move(spec));
  return Enqueue(std::move(job), /*may_reject=*/true, future);
}

std::future<RunOutcome> Executor::SubmitTask(Task task, std::string affinity_key) {
  Job job;
  job.key = std::move(affinity_key);
  job.work = std::move(task);
  std::future<RunOutcome> future;
  Enqueue(std::move(job), /*may_reject=*/false, &future);
  return future;
}

bool Executor::TrySubmitTask(Task task, std::future<RunOutcome>* future,
                             std::string affinity_key) {
  Job job;
  job.key = std::move(affinity_key);
  job.work = std::move(task);
  return Enqueue(std::move(job), /*may_reject=*/true, future);
}

size_t Executor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

ExecutorStats Executor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Executor::WorkerLoop() {
  // Keyed submit hint: a worker that just ran snapshot key K parked K's
  // shell snapshot-affine in its home pool shard, so a queued job with the
  // same key is cheapest to run *here* (delta restore instead of a full
  // image copy).  The scan is bounded and fairness-capped: after a few
  // consecutive out-of-order picks the worker must take the queue head, so
  // no job can starve behind a stream of matching keys.
  constexpr size_t kAffinityScan = 8;
  constexpr int kMaxConsecutiveSkips = 4;
  std::string last_key;
  int skips = 0;
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop requested and nothing left to drain
      }
      size_t pick = 0;
      if (!last_key.empty() && skips < kMaxConsecutiveSkips) {
        const size_t scan = std::min(queue_.size(), kAffinityScan);
        for (size_t i = 0; i < scan; ++i) {
          if (!queue_[i].key.empty() && queue_[i].key == last_key) {
            pick = i;
            break;
          }
        }
      }
      skips = pick == 0 ? 0 : skips + 1;
      job = std::move(queue_[pick]);
      queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(pick));
    }
    cv_space_.notify_one();
    last_key = job.key;
    job.promise.set_value(job.work());
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.completed;
    }
  }
}

std::vector<RunOutcome> Executor::Run(Runtime* runtime, const std::vector<VirtineSpec>& specs,
                                      int concurrency, BatchStats* stats) {
  VB_CHECK(runtime != nullptr, "Executor::Run requires a runtime");
  const size_t lanes = static_cast<size_t>(
      std::max(1, std::min<int>(concurrency, static_cast<int>(std::max<size_t>(specs.size(), 1)))));
  std::vector<RunOutcome> outcomes(specs.size());
  std::vector<uint64_t> lane_cycles(lanes, 0);
  vbase::WallTimer timer;
  // Striped static assignment (lane i runs specs i, i+lanes, ...): the lane
  // loads — and therefore the modeled makespan — are deterministic even on
  // an oversubscribed host where the OS schedules lanes unevenly.
  auto lane_body = [&](size_t lane) {
    uint64_t busy = 0;
    for (size_t i = lane; i < specs.size(); i += lanes) {
      outcomes[i] = runtime->Invoke(specs[i]);
      busy += outcomes[i].stats.total_cycles;
    }
    lane_cycles[lane] = busy;
  };
  std::vector<std::thread> threads;
  threads.reserve(lanes - 1);
  for (size_t lane = 1; lane < lanes; ++lane) {
    threads.emplace_back(lane_body, lane);
  }
  lane_body(0);  // the calling thread is lane 0
  for (std::thread& t : threads) {
    t.join();
  }
  if (stats != nullptr) {
    stats->worker_cycles = std::move(lane_cycles);
    stats->wall_ns = timer.ElapsedNanos();
  }
  return outcomes;
}

}  // namespace wasp
