// Typed virtine invocation: the host-side half of the paper's C language
// extensions.
//
// `ArgPacker` lays out the argument page (see abi.h): a return-value slot,
// an argc slot, one word per scalar argument, and a buffer area for
// pass-by-copy byte ranges (a guest-pointer word refers into the buffer
// area).  `VirtineFunc<R(Args...)>` packages marshalling + Invoke() + result
// unmarshalling so a virtine call looks like a function call, exactly the
// calling convention the clang/LLVM pass generates in the paper
// ("copy-restore" semantics, Section 7.2).
#ifndef SRC_WASP_VFUNC_H_
#define SRC_WASP_VFUNC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "src/base/log.h"
#include "src/wasp/runtime.h"

namespace wasp {

// A pass-by-copy byte buffer argument (marshalled into the argument page;
// the guest receives a pointer word).
struct BufferArg {
  const void* data = nullptr;
  uint64_t len = 0;
};

// Packs argument words / buffers into an argument page image.
class ArgPacker {
 public:
  explicit ArgPacker(int word_bytes) : word_(word_bytes) {
    VB_CHECK(word_ == 2 || word_ == 4 || word_ == 8, "bad word size " << word_);
    // Reserve the return slot (word 0) and argc (word 1).
    page_.assign(static_cast<size_t>(word_) * 2, 0);
    buf_cursor_ = kArgBufOffset;
  }

  void AddWord(uint64_t value) {
    const size_t at = page_.size();
    page_.resize(at + static_cast<size_t>(word_));
    std::memcpy(page_.data() + at, &value, static_cast<size_t>(word_));
    ++argc_;
  }

  // Copies `buffer` into the buffer area and adds its guest address as a
  // word argument.
  void AddBuffer(BufferArg buffer) {
    VB_CHECK(buf_cursor_ + buffer.len <= kArgPageSize,
             "argument buffers exceed the argument page");
    AddWord(buf_cursor_);
    pending_buffers_.emplace_back(buf_cursor_, buffer);
    buf_cursor_ += (buffer.len + 7) & ~7ULL;
  }

  // Finalizes and returns the argument-page bytes.
  std::vector<uint8_t> Finish() {
    std::vector<uint8_t> out = page_;
    uint64_t argc = argc_;
    std::memcpy(out.data() + word_, &argc, static_cast<size_t>(word_));
    if (!pending_buffers_.empty()) {
      out.resize(kArgPageSize, 0);
      for (const auto& [at, buffer] : pending_buffers_) {
        std::memcpy(out.data() + at, buffer.data, buffer.len);
      }
    }
    return out;
  }

 private:
  int word_;
  uint64_t argc_ = 0;
  uint64_t buf_cursor_;
  std::vector<uint8_t> page_;
  std::vector<std::pair<uint64_t, BufferArg>> pending_buffers_;
};

// Typed virtine function wrapper.
template <typename Sig>
class VirtineFunc;

template <typename R, typename... Args>
class VirtineFunc<R(Args...)> {
  static_assert(std::is_integral_v<R>, "virtine return type must be integral");

 public:
  // `spec.image`, `spec.key`, `spec.word_bytes`, policy etc. come from the
  // caller; argument marshalling fills `spec.args_page` per call.
  VirtineFunc(Runtime* runtime, VirtineSpec spec)
      : runtime_(runtime), spec_(std::move(spec)) {}

  // Invokes the virtine synchronously.  Returns the unmarshalled result or
  // the failure status (fault, policy denial, watchdog).
  vbase::Result<R> Call(Args... args) {
    ArgPacker packer(spec_.word_bytes);
    (PackOne(packer, args), ...);
    spec_.args_page = packer.Finish();
    last_ = runtime_->Invoke(spec_);
    if (!last_.status.ok()) {
      return last_.status;
    }
    return Unmarshal(last_.result_word);
  }

  // Full outcome (stats, console output, ...) of the most recent Call().
  const RunOutcome& last_outcome() const { return last_; }
  VirtineSpec& spec() { return spec_; }

 private:
  template <typename T>
  static void PackOne(ArgPacker& packer, const T& arg) {
    if constexpr (std::is_integral_v<T>) {
      packer.AddWord(static_cast<uint64_t>(static_cast<int64_t>(arg)));
    } else {
      static_assert(std::is_same_v<T, BufferArg>, "unsupported argument type");
      packer.AddBuffer(arg);
    }
  }

  R Unmarshal(uint64_t word) const {
    // Sign-extend from the environment word width.
    const int bits = spec_.word_bytes * 8;
    if (bits < 64 && std::is_signed_v<R>) {
      const int64_t v = static_cast<int64_t>(word << (64 - bits)) >> (64 - bits);
      return static_cast<R>(v);
    }
    return static_cast<R>(word);
  }

  Runtime* runtime_;
  VirtineSpec spec_;
  RunOutcome last_;
};

}  // namespace wasp

#endif  // SRC_WASP_VFUNC_H_
