// Snapshots: the paper's key start-up optimization (Section 5.2).
//
// A snapshot captures a virtine's architectural CPU state plus the set of
// guest-physical pages it has dirtied since the VM was fresh (everything it
// has ever written, including its loaded image).  Restoring into a *clean*
// shell replays those pages with memcpy — the "simple snapshotting strategy"
// the paper measures at memcpy bandwidth in Figure 12 — and resumes the vCPU
// right after the snapshot hypercall, skipping boot and runtime init.
//
// Layout: captured pages are stored as one contiguous byte buffer plus a
// run-length *extent* table (first page, page count, byte offset).  Dirty
// pages cluster (the image is one run; the stack another), so a snapshot is
// typically a handful of extents, and both capture and full restore execute
// a few large memcpys instead of thousands of page-sized ones — no per-page
// heap allocation, no pointer chase.
//
// Delta restore: a shell that already holds a snapshot resident (the pool's
// snapshot-affine path) only needs the pages written since the snapshot was
// laid down repaired — GuestMemory's epoch bitmap names them, and
// RestoreDeltaInto re-copies captured pages / re-zeroes uncaptured ones, so
// a warm restore costs O(working set) rather than O(image).
//
// Snapshots are immutable once taken and shared via shared_ptr: restores
// never mutate them, so one virtine's post-snapshot writes cannot leak into
// the next restore (isolation objective, Section 3.3).  Every capture gets a
// process-unique `generation`; the pool uses it to prove a parked shell
// holds exactly this snapshot before taking the delta path.
//
// COW extents: the captured pages live in an immutable, refcounted
// vhw::ExtentBuffer that shells *map* (GuestMemory's COW backing mode)
// instead of copy — N parked shells of one generation keep the image
// resident once, each charged only for the pages it privatized.  Snapshot
// chains stack a delta child buffer over its parent's (re-capture of a
// drifted warm service); FindPage and the restore paths walk the chain
// transparently.
#ifndef SRC_WASP_SNAPSHOT_H_
#define SRC_WASP_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/vhw/cpu.h"
#include "src/vhw/mem.h"

namespace wasp {

struct Snapshot {
  using Extent = vhw::ExtentBuffer::Extent;

  vhw::ArchState cpu;
  uint64_t mem_size = 0;
  // Process-unique capture id (never 0); keys the pool's affine shell lists.
  uint64_t generation = 0;
  // Generation this snapshot was re-captured over (0 for a root capture).
  uint64_t parent_generation = 0;
  // The captured pages: this snapshot's own layer, chained to its parent's
  // buffer for a delta capture.  Never null, never mutated; shells map it as
  // their COW base, so the buffer outlives the snapshot while any shell or
  // child chain still references it.
  vhw::ExtentBufferRef extent;
  // FNV-1a over this layer's captured bytes, set at capture time.  Restores
  // can verify it (RuntimeOptions::verify_restores) to catch a poisoned
  // extent buffer before laying it into a shell.
  uint64_t checksum = 0;

  // Bytes captured in this snapshot's own layer (the delta, for a child).
  uint64_t byte_size() const { return extent->byte_size(); }
  uint64_t page_count() const { return extent->page_count(); }
  // Bytes the whole chain keeps resident: what one live generation charges
  // against the pool's affine budget, independent of how many shells map it.
  uint64_t chain_byte_size() const { return extent->chain_byte_size(); }
  int chain_depth() const { return extent->chain_depth(); }

  // Pointer to the captured content of `page` (chain lookup: a child's page
  // shadows its parent's), or nullptr when no layer holds it (i.e. it is
  // all-zero in the snapshot's view).
  const uint8_t* FindPage(uint64_t page) const { return extent->FindPage(page); }
};

using SnapshotRef = std::shared_ptr<const Snapshot>;

// Returns a fresh process-unique snapshot generation (>= 1).
uint64_t NextSnapshotGeneration();

// Captures `mem`'s dirty pages (extent-coalesced) plus `cpu` into a new
// root snapshot with a fresh generation.
SnapshotRef CaptureSnapshot(const vhw::GuestMemory& mem, const vhw::ArchState& cpu);

// Captures `mem`'s *epoch-dirty* pages as a delta child chained over
// `parent`'s extent buffer, under a fresh generation.  The caller guarantees
// `mem` deviates from `parent`'s view only in epoch-dirty pages (the affine
// shell contract), so parent chain + delta describe the memory exactly.
// The child resumes at the parent's capture point (same CPU state): folding
// drift into a chain is only sound for services whose warm state stays
// valid across invocations (caches, JIT output) — which is what re-capture
// is for.
SnapshotRef CaptureDeltaSnapshot(const vhw::GuestMemory& mem, const Snapshot& parent);

// Returns a copy of `snap` whose chain is collapsed into a single
// parentless layer: same page view and generation, no shadowed parent
// bytes, depth 1.
SnapshotRef FlattenSnapshot(const Snapshot& snap);

// FNV-1a over an extent buffer's own bytes (one chain layer).
uint64_t ChecksumExtentBytes(const vhw::ExtentBuffer& extent);

// Recomputes `snap`'s layer checksum and compares it against the recorded
// one.  False means the extent bytes were corrupted after capture (a
// "poisoned" snapshot) and the restore must not proceed.
bool VerifySnapshot(const Snapshot& snap);

// Replays every extent (whole chain, root first) into `mem` (which the
// caller guarantees is clean / all-zero outside the extents).  Marks the
// written pages dirty and prefaults their EPT regions.  Returns the bytes
// copied (== chain_byte_size(); shadowed parent pages are overwritten by
// their child's).  This is the non-shared path: the shell owns a private
// copy of the image, which is exactly the paper's "simple snapshotting
// strategy" kept for A/B benchmarking.
uint64_t RestoreFullInto(const Snapshot& snap, vhw::GuestMemory* mem);

// Maps `snap`'s extent chain into clean `mem` as a shared COW base: the
// shell reads the image through the shared buffer and privatizes pages only
// on write.  Byte-identical to RestoreFullInto, but the shell is charged for
// private pages only.  Returns the shared bytes mapped (chain_byte_size()).
uint64_t MapCowInto(const Snapshot& snap, vhw::GuestMemory* mem);

// Delta restore for a shell whose memory already equals `snap` except for
// the pages written since the last BeginEpoch: repairs exactly those pages
// (copying captured content back, zeroing pages the snapshot never held) and
// returns the bytes touched.  On a shell whose COW base is `snap`'s extent,
// the repair also de-privatizes the pages, so the shell's resident charge
// drops back toward zero.  The caller begins a new epoch afterwards.
uint64_t RestoreDeltaInto(const Snapshot& snap, vhw::GuestMemory* mem);

// Keyed snapshot cache: one snapshot per virtine image key ("the first
// execution of a virtine must still go through the initialization process
// ... subsequent executions of the same virtine begin at the snapshot").
//
// The store is read-mostly: after the first invocation of a key, every
// subsequent invocation is a Find().  Lookups therefore take a shared lock
// and run concurrently; only Put/Erase (one per key lifetime) take the lock
// exclusively.  Find returns the shared_ptr itself, so restores copy pages
// out of the immutable Snapshot without holding any store lock.
class SnapshotStore {
 public:
  SnapshotRef Find(const std::string& key) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = snaps_.find(key);
    return it == snaps_.end() ? nullptr : it->second;
  }

  void Put(const std::string& key, SnapshotRef snap) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    snaps_[key] = std::move(snap);
  }

  // Publishes `snap` only if `key` has no snapshot yet; returns the snapshot
  // that is in the store afterwards (the winner).  Concurrent cold runs of
  // one key race their first-capture Put: exactly one wins, and the losers
  // learn it atomically so they never park shells under a generation nobody
  // will ever look up again.
  SnapshotRef PutIfAbsent(const std::string& key, SnapshotRef snap) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    return snaps_.try_emplace(key, std::move(snap)).first->second;
  }

  void Erase(const std::string& key) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    snaps_.erase(key);
  }

  // Removes and returns `key`'s snapshot (nullptr when absent).  The
  // retirement path uses the returned ref's generation to eagerly reclaim
  // the pool's parked affine shells, so a re-captured key never strands the
  // old generation's memory.
  SnapshotRef Take(const std::string& key) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = snaps_.find(key);
    if (it == snaps_.end()) {
      return nullptr;
    }
    SnapshotRef old = std::move(it->second);
    snaps_.erase(it);
    return old;
  }

  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return snaps_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, SnapshotRef> snaps_;
};

}  // namespace wasp

#endif  // SRC_WASP_SNAPSHOT_H_
