// Snapshots: the paper's key start-up optimization (Section 5.2).
//
// A snapshot captures a virtine's architectural CPU state plus the set of
// guest-physical pages it has dirtied since the VM was fresh (everything it
// has ever written, including its loaded image).  Restoring into a *clean*
// shell replays those pages with memcpy — the "simple snapshotting strategy"
// the paper measures at memcpy bandwidth in Figure 12 — and resumes the vCPU
// right after the snapshot hypercall, skipping boot and runtime init.
//
// Layout: captured pages are stored as one contiguous byte buffer plus a
// run-length *extent* table (first page, page count, byte offset).  Dirty
// pages cluster (the image is one run; the stack another), so a snapshot is
// typically a handful of extents, and both capture and full restore execute
// a few large memcpys instead of thousands of page-sized ones — no per-page
// heap allocation, no pointer chase.
//
// Delta restore: a shell that already holds a snapshot resident (the pool's
// snapshot-affine path) only needs the pages written since the snapshot was
// laid down repaired — GuestMemory's epoch bitmap names them, and
// RestoreDeltaInto re-copies captured pages / re-zeroes uncaptured ones, so
// a warm restore costs O(working set) rather than O(image).
//
// Snapshots are immutable once taken and shared via shared_ptr: restores
// never mutate them, so one virtine's post-snapshot writes cannot leak into
// the next restore (isolation objective, Section 3.3).  Every capture gets a
// process-unique `generation`; the pool uses it to prove a parked shell
// holds exactly this snapshot before taking the delta path.
#ifndef SRC_WASP_SNAPSHOT_H_
#define SRC_WASP_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/vhw/cpu.h"
#include "src/vhw/mem.h"

namespace wasp {

struct Snapshot {
  // A run of `page_count` consecutive captured guest-physical pages starting
  // at `first_page`, stored at `byte_offset` within `bytes`.
  struct Extent {
    uint64_t first_page = 0;
    uint64_t page_count = 0;
    uint64_t byte_offset = 0;
  };

  vhw::ArchState cpu;
  uint64_t mem_size = 0;
  // Process-unique capture id (never 0); keys the pool's affine shell lists.
  uint64_t generation = 0;
  std::vector<Extent> extents;  // sorted by first_page, non-overlapping
  std::vector<uint8_t> bytes;   // concatenated extent payloads

  uint64_t byte_size() const { return bytes.size(); }
  uint64_t page_count() const { return bytes.size() >> vhw::kPageBits; }

  // Pointer to the captured content of `page`, or nullptr when the page was
  // clean at capture time (i.e. it is all-zero in the snapshot's view).
  const uint8_t* FindPage(uint64_t page) const;
};

using SnapshotRef = std::shared_ptr<const Snapshot>;

// Returns a fresh process-unique snapshot generation (>= 1).
uint64_t NextSnapshotGeneration();

// Captures `mem`'s dirty pages (extent-coalesced) plus `cpu` into a new
// snapshot with a fresh generation.
SnapshotRef CaptureSnapshot(const vhw::GuestMemory& mem, const vhw::ArchState& cpu);

// Replays every extent into `mem` (which the caller guarantees is clean /
// all-zero outside the extents).  Marks the written pages dirty and
// prefaults their EPT regions.  Returns the bytes copied (== byte_size()).
uint64_t RestoreFullInto(const Snapshot& snap, vhw::GuestMemory* mem);

// Delta restore for a shell whose memory already equals `snap` except for
// the pages written since the last BeginEpoch: repairs exactly those pages
// (copying captured content back, zeroing pages the snapshot never held) and
// returns the bytes touched.  The caller begins a new epoch afterwards.
uint64_t RestoreDeltaInto(const Snapshot& snap, vhw::GuestMemory* mem);

// Keyed snapshot cache: one snapshot per virtine image key ("the first
// execution of a virtine must still go through the initialization process
// ... subsequent executions of the same virtine begin at the snapshot").
//
// The store is read-mostly: after the first invocation of a key, every
// subsequent invocation is a Find().  Lookups therefore take a shared lock
// and run concurrently; only Put/Erase (one per key lifetime) take the lock
// exclusively.  Find returns the shared_ptr itself, so restores copy pages
// out of the immutable Snapshot without holding any store lock.
class SnapshotStore {
 public:
  SnapshotRef Find(const std::string& key) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = snaps_.find(key);
    return it == snaps_.end() ? nullptr : it->second;
  }

  void Put(const std::string& key, SnapshotRef snap) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    snaps_[key] = std::move(snap);
  }

  // Publishes `snap` only if `key` has no snapshot yet; returns the snapshot
  // that is in the store afterwards (the winner).  Concurrent cold runs of
  // one key race their first-capture Put: exactly one wins, and the losers
  // learn it atomically so they never park shells under a generation nobody
  // will ever look up again.
  SnapshotRef PutIfAbsent(const std::string& key, SnapshotRef snap) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    return snaps_.try_emplace(key, std::move(snap)).first->second;
  }

  void Erase(const std::string& key) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    snaps_.erase(key);
  }

  // Removes and returns `key`'s snapshot (nullptr when absent).  The
  // retirement path uses the returned ref's generation to eagerly reclaim
  // the pool's parked affine shells, so a re-captured key never strands the
  // old generation's memory.
  SnapshotRef Take(const std::string& key) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = snaps_.find(key);
    if (it == snaps_.end()) {
      return nullptr;
    }
    SnapshotRef old = std::move(it->second);
    snaps_.erase(it);
    return old;
  }

  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return snaps_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, SnapshotRef> snaps_;
};

}  // namespace wasp

#endif  // SRC_WASP_SNAPSHOT_H_
