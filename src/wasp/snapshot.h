// Snapshots: the paper's key start-up optimization (Section 5.2).
//
// A snapshot captures a virtine's architectural CPU state plus the set of
// guest-physical pages it has dirtied since the VM was fresh (everything it
// has ever written, including its loaded image).  Restoring into a *clean*
// shell replays those pages with memcpy — the "simple snapshotting strategy"
// the paper measures at memcpy bandwidth in Figure 12 — and resumes the vCPU
// right after the snapshot hypercall, skipping boot and runtime init.
//
// Snapshots are immutable once taken and shared via shared_ptr: restores
// never mutate them, so one virtine's post-snapshot writes cannot leak into
// the next restore (isolation objective, Section 3.3).
#ifndef SRC_WASP_SNAPSHOT_H_
#define SRC_WASP_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/vhw/cpu.h"

namespace wasp {

struct Snapshot {
  struct Page {
    uint64_t index;                 // guest-physical page number
    std::vector<uint8_t> bytes;     // kPageSize bytes
  };
  vhw::ArchState cpu;
  uint64_t mem_size = 0;
  std::vector<Page> pages;

  uint64_t byte_size() const { return pages.size() * vhw::kPageSize; }
};

using SnapshotRef = std::shared_ptr<const Snapshot>;

// Keyed snapshot cache: one snapshot per virtine image key ("the first
// execution of a virtine must still go through the initialization process
// ... subsequent executions of the same virtine begin at the snapshot").
//
// The store is read-mostly: after the first invocation of a key, every
// subsequent invocation is a Find().  Lookups therefore take a shared lock
// and run concurrently; only Put/Erase (one per key lifetime) take the lock
// exclusively.  Find returns the shared_ptr itself, so restores copy pages
// out of the immutable Snapshot without holding any store lock.
class SnapshotStore {
 public:
  SnapshotRef Find(const std::string& key) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = snaps_.find(key);
    return it == snaps_.end() ? nullptr : it->second;
  }

  void Put(const std::string& key, SnapshotRef snap) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    snaps_[key] = std::move(snap);
  }

  void Erase(const std::string& key) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    snaps_.erase(key);
  }

  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return snaps_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, SnapshotRef> snaps_;
};

}  // namespace wasp

#endif  // SRC_WASP_SNAPSHOT_H_
