// wasp::Runtime — the embeddable virtine hypervisor (the paper's Wasp).
//
// A host program (the "virtine client") links against this library and
// invokes individual functions in isolated virtual-machine contexts.  The
// runtime owns:
//   * a shell Pool (cached VM contexts, optionally cleaned asynchronously),
//   * a SnapshotStore (post-boot/post-init images keyed per virtine),
//   * the canned hypercall handlers (console, POSIX-like file I/O against a
//     sandboxed HostEnv, send/recv against a ByteChannel, snapshot,
//     get_data/return_data), and
//   * the default-deny policy enforcement: a hypercall whose policy bit is
//     clear terminates the virtine.
//
// The per-invocation flow matches Figure 6/7 of the paper: acquire a shell
// (pool hit or fresh create), either load the image and boot it or restore a
// snapshot, marshal arguments into the argument page, run until exit while
// interposing on every hypercall, harvest results, release the shell for
// cleaning and reuse.
#ifndef SRC_WASP_RUNTIME_H_
#define SRC_WASP_RUNTIME_H_

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/isa/image.h"
#include "src/wasp/abi.h"
#include "src/wasp/channel.h"
#include "src/wasp/fault.h"
#include "src/wasp/host_env.h"
#include "src/wasp/pool.h"
#include "src/wasp/snapshot.h"
#include "src/vkvm/vkvm.h"

namespace wasp {

// Per-invocation measurements.
struct InvokeStats {
  uint64_t guest_cycles = 0;   // modeled cycles executed in the guest
  uint64_t host_cycles = 0;    // modeled host-side charges (create/vmrun/memcpy)
  uint64_t total_cycles = 0;   // guest + host
  uint64_t io_exits = 0;       // hypercall exits taken
  uint64_t insns = 0;          // guest instructions retired
  bool from_pool = false;      // shell came from the pool
  bool restored_snapshot = false;
  // The restore ran on a snapshot-affine shell and repaired only the pages
  // the previous tenant dirtied (delta restore) instead of the whole image.
  bool affine_restore = false;
  // The restore mapped the snapshot's shared COW extent chain instead of
  // copying it: the shell reads the image through the shared buffer and
  // privatizes pages on write, so it is charged O(extents) to restore and
  // O(working set) to stay parked.
  bool mapped_cow = false;
  // Bytes the restore actually copied/zeroed: the full snapshot for a cold
  // shell without affinity, just the dirty delta for an affine one, zero for
  // a COW map.
  uint64_t restored_bytes = 0;
  bool took_snapshot = false;
  uint64_t acquire_ns = 0;     // wall: shell acquisition
  uint64_t load_ns = 0;        // wall: image load or snapshot restore
  uint64_t run_ns = 0;         // wall: vCPU execution + hypercall handling
  uint64_t total_ns = 0;       // wall: whole Invoke()
};

// The result of one virtine invocation.
struct RunOutcome {
  vbase::Status status;          // non-OK on fault, denial, or handler error
  // Structured classification of why the invocation died (kNone = it
  // completed; the status may still be non-OK for host-side errors like a
  // failed image load, which do not quarantine the shell).  The status
  // message keeps the human-readable detail for logs.
  FaultKind fault = FaultKind::kNone;
  bool denied = false;           // a hypercall was denied by policy
  uint64_t exit_code = 0;        // from the exit hypercall (0 for plain hlt)
  uint64_t result_word = 0;      // argument-page word 0 (the return value)
  std::string console;           // bytes written via the console hypercall
  std::vector<uint8_t> output;   // bytes returned via return_data
  std::vector<uint8_t> fd_writes;  // bytes written via the write hypercall
  // Set by the executor's recovery layer: this outcome is the second attempt
  // of a retried job, and `first_fault` is what killed the first attempt.
  bool retried = false;
  FaultKind first_fault = FaultKind::kNone;
  InvokeStats stats;
};

class Runtime;

// Context handed to hypercall handlers.
struct HypercallFrame {
  vkvm::Vm& vm;
  Runtime& runtime;
  const struct VirtineSpec& spec;
  RunOutcome& outcome;
  // Hypercall arguments are registers r1..r3.
  uint64_t arg(int i) const { return vm.cpu().reg(1 + i); }
  // Set by handlers to finish the invocation after this hypercall.
  bool request_exit = false;
  // Once-only bookkeeping (Section 6.5: "snapshot and get_data cannot be
  // called more than once").
  bool snapshot_taken = false;
  bool data_fetched = false;
  // Generation of the snapshot this invocation left resident in the shell
  // (set when this run's snapshot hypercall captured and published one); the
  // release path parks the shell snapshot-affine under it, charging
  // `resident_shared_bytes` (the extent chain) once per generation.
  uint64_t resident_generation = 0;
  uint64_t resident_shared_bytes = 0;
  // Structured fault classification set by handlers (e.g. an oversized
  // reply); folded into the outcome when the dispatch fails.
  FaultKind fault = FaultKind::kNone;
  // Chaos injection: the next return_data hypercall is treated as exceeding
  // the I/O ceiling regardless of its actual length.
  bool inject_oversized_reply = false;
  // Per-invocation fd table for the file hypercalls.
  FdTable fds;

  HypercallFrame(vkvm::Vm& v, Runtime& r, const struct VirtineSpec& s, RunOutcome& o,
                 HostEnv* env)
      : vm(v), runtime(r), spec(s), outcome(o), fds(env) {}
};

// A client-provided hypercall handler: returns the value placed in r0, or an
// error status that terminates the virtine.
using HypercallHandler = std::function<vbase::Result<int64_t>(HypercallFrame&)>;

// Everything needed to run one virtine.
struct VirtineSpec {
  // The guest binary.  Must outlive the invocation.
  const visa::Image* image = nullptr;
  // Identity for snapshot caching; virtines sharing a key share snapshots.
  std::string key;
  uint64_t mem_size = 1ULL << 20;
  // Word size (bytes) of the environment's final execution mode; governs the
  // argument-page slot layout (8 for long64, 4 for prot32, 2 for real16).
  int word_bytes = 8;
  // Hypercall policy bits (default-deny; kHcExit is always permitted).
  HypercallMask policy = kPolicyDenyAll;
  // Use the snapshotting fast path (take on first run, restore afterwards).
  bool use_snapshot = false;
  // Whether the CRT issues the snapshot hypercall right after boot (the
  // language-extension default).  Guests that pick their own snapshot point
  // — e.g. the microjs engine snapshots after engine init, Section 6.5 —
  // set this false and call the hypercall themselves.
  bool crt_snapshot = true;
  // Pre-marshalled argument page, written at guest physical 0 (see abi.h).
  std::vector<uint8_t> args_page;
  // Input payload served by the get_data hypercall.
  const std::vector<uint8_t>* input = nullptr;
  // Guest-side channel endpoint for send/recv (not owned).
  ByteChannel::Endpoint* channel = nullptr;
  // Host filesystem sandbox override (defaults to the runtime's).
  HostEnv* env = nullptr;
  // Client-defined hypercall handlers, keyed by port; these take precedence
  // over canned handlers but are still subject to the policy mask.
  std::map<uint16_t, HypercallHandler> handlers;
  // Watchdog: maximum guest instructions per invocation.
  uint64_t max_insns = 2'000'000'000;
  // Force a fresh, non-affine shell for this invocation: never reuse a
  // parked snapshot-affine sibling.  Set by the executor's retry path — the
  // faulted attempt's shell is quarantined, and an affine sibling could
  // share whatever state killed it — and usable by callers that want a
  // known-cold invocation.
  bool fresh_shell = false;
};

struct RuntimeOptions {
  CleanMode clean_mode = CleanMode::kSync;
  vkvm::VmConfig vm_defaults;
  // Shell-pool scale-out knobs (defaults follow PoolOptions).
  int pool_shards = PoolOptions{}.shards;
  int pool_cleaners = PoolOptions{}.cleaners;
  // Per-lane shell-cache slots (<= 0 auto-sizes to max(16, 2*shards)) and
  // modeled NUMA nodes for the lane→shard→node placement map.
  int pool_lanes = PoolOptions{}.lanes;
  int pool_numa_nodes = PoolOptions{}.numa_nodes;
  // Worker threads of the executor backing InvokeAsync (0 = pick from
  // hardware concurrency).
  int async_workers = 0;
  // Snapshot-affine shell reuse: release a snapshot-backed shell unzeroed
  // and delta-restore it on the next invocation of the same snapshot.  Off,
  // every warm restore pays the full image copy (the paper's simple
  // snapshotting strategy) — kept as a knob for A/B benchmarking.
  bool snapshot_affinity = true;
  // Resident-byte budget for the pool's parked snapshot-affine shells
  // (generation-LRU eviction when exceeded); 0 = unlimited.
  uint64_t affine_budget_bytes = 0;
  // Snapshot-chain governance for RecaptureSnapshot: a re-capture whose
  // chain would exceed `chain_max_depth` layers, or whose total chain bytes
  // exceed `chain_flatten_slack` × the flattened view size, is flattened
  // into a single parentless layer instead of growing the chain.
  int chain_max_depth = 4;
  double chain_flatten_slack = 1.5;
  // Deterministic fault injection (chaos testing): rules fire at exact
  // invocation indices or with seeded probabilities.  Empty = no injection
  // (zero cost on the invoke path).
  FaultPlan fault_plan;
  // Fault-recovery policy for the InvokeAsync executor: retry-once
  // eligibility (idempotent keys) and the per-key circuit breaker.  Callers
  // that build their own Executor pass a RecoveryOptions directly through
  // ExecutorOptions instead.
  RecoveryOptions recovery;
  // Verify the snapshot checksum on every restore; a mismatch classifies as
  // kPoisonedSnapshot and quarantines the shell.  Off by default: snapshots
  // are immutable in-process, so this guards against bugs, not physics.
  bool verify_restores = false;
};

// What Runtime::RecaptureSnapshot did.
struct RecaptureOutcome {
  enum class Status {
    kRecaptured,   // a delta child (or flattened image) was published
    kNoSnapshot,   // the key has no snapshot to re-capture
    kNoWarmShell,  // nothing parked under the generation: no drift to fold
    kNoDrift,      // a warm shell existed but wrote nothing since restore
  };
  Status status = Status::kNoSnapshot;
  uint64_t old_generation = 0;
  uint64_t new_generation = 0;
  uint64_t delta_bytes = 0;  // bytes captured in the child layer
  int chain_depth = 0;       // depth of the published snapshot's chain
  bool flattened = false;
};

class Executor;

class Runtime {
 public:
  explicit Runtime(RuntimeOptions options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Runs one virtine to completion (synchronous, like a function call).
  // Thread-safe: concurrent Invokes share only the sharded pool and the
  // read-mostly snapshot store.
  RunOutcome Invoke(const VirtineSpec& spec);

  // Enqueues one virtine on the runtime's executor (created lazily on first
  // use) and returns a future for its outcome.  The spec's non-owning
  // pointers (image, input, channel) must stay alive until the future
  // resolves.
  std::future<RunOutcome> InvokeAsync(VirtineSpec spec);

  // Retires `key`'s snapshot: drops it from the store and eagerly reclaims
  // every pool shell parked under its generation (cleaner crew in async
  // mode).  The next snapshot-enabled invocation of the key re-captures —
  // the re-snapshot lifecycle for long-lived services whose warm state
  // drifts (e.g. after JIT warm-up).
  void RetireSnapshot(const std::string& key);

  // Re-snapshots `key`'s warmed service as a *delta child* over its parent
  // extent: steals one shell parked under the current generation, captures
  // its post-restore drift (epoch-dirty pages) chained over the parent's
  // buffer, publishes the child under a fresh generation, retires the old
  // one, and re-parks the shell under the child.  Long-lived services whose
  // warm state accretes (JIT caches, memo tables) fold the drift in for the
  // cost of the delta instead of a full re-capture — and the parent's image
  // bytes stay shared through the chain.  Chains are flattened per the
  // chain_max_depth / chain_flatten_slack options.  Only sound when runs
  // leave memory valid to resume from the original snapshot point (the
  // re-capture keeps the parent's CPU state).
  RecaptureOutcome RecaptureSnapshot(const std::string& key);

  Pool& pool() { return pool_; }
  SnapshotStore& snapshots() { return snapshots_; }
  HostEnv& env() { return env_; }
  const RuntimeOptions& options() const { return options_; }
  // Null when no fault plan is configured.
  FaultInjector* fault_injector() { return injector_.get(); }

  // Builds a VmConfig for `mem_size` from the runtime defaults.
  vkvm::VmConfig MakeVmConfig(uint64_t mem_size) const;

 private:
  // Lays `snap` into the shell and begins its delta epoch.  Three paths:
  // `affine` repairs only the epoch-dirty pages of a shell that already
  // holds the snapshot (charged per byte repaired); otherwise, with
  // snapshot_affinity on, the shell *maps* the shared COW extent chain
  // (charged per extent mapped); with affinity off it replays the full
  // chain by copy (charged per byte, the paper's baseline).
  void RestoreSnapshot(vkvm::Vm& vm, const Snapshot& snap, bool affine,
                       InvokeStats* stats);
  // Captures a snapshot of the VM's current state (dirty pages + CPU) and
  // begins the shell's delta epoch at the capture point.
  SnapshotRef TakeSnapshot(vkvm::Vm& vm);
  // Dispatches one hypercall; returns the r0 result or an error.
  vbase::Result<int64_t> Dispatch(uint16_t port, HypercallFrame& frame);

  RuntimeOptions options_;
  Pool pool_;
  SnapshotStore snapshots_;
  HostEnv env_;
  // Non-null iff options_.fault_plan has rules.
  std::unique_ptr<FaultInjector> injector_;
  // Lazily constructed InvokeAsync worker pool; declared last so it joins
  // (and drains in-flight invocations) before the pool it drives shuts down.
  std::once_flag executor_once_;
  std::unique_ptr<Executor> executor_;
};

}  // namespace wasp

#endif  // SRC_WASP_RUNTIME_H_
