// In-process duplex byte channel: the transport behind the send/recv
// hypercalls (and the loopback "socket" used by the HTTP benchmarks).
//
// A channel is a pair of directed byte queues.  The host side (load
// generator / server front-end) holds one end; the virtine's send/recv
// hypercall handlers drive the other.  Blocking reads use a condition
// variable so multi-threaded load generators work; Close() wakes readers
// with EOF.
#ifndef SRC_WASP_CHANNEL_H_
#define SRC_WASP_CHANNEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wasp {

// One direction of a duplex stream.
class BytePipe {
 public:
  // Appends bytes; wakes blocked readers.  Returns false if closed.
  bool Write(const void* data, uint64_t len);
  // Reads up to `len` bytes, blocking until data is available or the pipe is
  // closed.  Returns the byte count (0 = EOF).
  uint64_t Read(void* dst, uint64_t len);
  // Non-blocking variant; returns 0 when empty (even if open).
  uint64_t TryRead(void* dst, uint64_t len);
  void Close();
  bool closed() const;
  uint64_t bytes_available() const;

  // Readiness hook for event-loop readers that cannot block in Read: `fn`
  // runs after every successful Write and after Close (under the pipe lock —
  // it must only signal, e.g. write an eventfd, never call back into the
  // pipe).  One observer; set empty to clear.
  void SetObserver(std::function<void()> fn);

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<uint8_t> buf_;
  bool closed_ = false;
  std::function<void()> observer_;
};

// A duplex channel: `a_to_b` and `b_to_a` pipes plus two endpoint views.
class ByteChannel {
 public:
  // Endpoint view with read/write oriented to one side.
  class Endpoint {
   public:
    Endpoint() = default;
    Endpoint(BytePipe* in, BytePipe* out) : in_(in), out_(out) {}
    bool Write(const void* data, uint64_t len) { return out_->Write(data, len); }
    bool WriteString(const std::string& s) { return Write(s.data(), s.size()); }
    uint64_t Read(void* dst, uint64_t len) { return in_->Read(dst, len); }
    // Reads everything currently buffered without blocking.
    std::vector<uint8_t> Drain();
    void CloseWrite() { out_->Close(); }
    bool read_closed() const { return in_->closed() && in_->bytes_available() == 0; }
    uint64_t bytes_readable() const { return in_->bytes_available(); }
    // Observer on this endpoint's inbound pipe: fires when the peer writes
    // or closes (see BytePipe::SetObserver).  Lets an epoll loop treat the
    // channel as a readiness source instead of blocking a thread in Read.
    void SetReadObserver(std::function<void()> fn) { in_->SetObserver(std::move(fn)); }

   private:
    BytePipe* in_ = nullptr;
    BytePipe* out_ = nullptr;
  };

  ByteChannel() : host_(&b_to_a_, &a_to_b_), guest_(&a_to_b_, &b_to_a_) {}

  // The host-side endpoint (e.g. the load generator).
  Endpoint& host() { return host_; }
  // The guest-side endpoint (driven by the send/recv hypercall handlers).
  Endpoint& guest() { return guest_; }

 private:
  BytePipe a_to_b_;  // host -> guest
  BytePipe b_to_a_;  // guest -> host
  Endpoint host_;
  Endpoint guest_;
};

}  // namespace wasp

#endif  // SRC_WASP_CHANNEL_H_
