#include "src/wasp/channel.h"

#include <algorithm>
#include <string>

namespace wasp {

bool BytePipe::Write(const void* data, uint64_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return false;
    }
    buf_.insert(buf_.end(), p, p + len);
    if (observer_) {
      observer_();
    }
  }
  cv_.notify_all();
  return true;
}

uint64_t BytePipe::Read(void* dst, uint64_t len) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !buf_.empty() || closed_; });
  const uint64_t n = std::min<uint64_t>(len, buf_.size());
  uint8_t* out = static_cast<uint8_t*>(dst);
  for (uint64_t i = 0; i < n; ++i) {
    out[i] = buf_.front();
    buf_.pop_front();
  }
  return n;
}

uint64_t BytePipe::TryRead(void* dst, uint64_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t n = std::min<uint64_t>(len, buf_.size());
  uint8_t* out = static_cast<uint8_t*>(dst);
  for (uint64_t i = 0; i < n; ++i) {
    out[i] = buf_.front();
    buf_.pop_front();
  }
  return n;
}

void BytePipe::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    if (observer_) {
      observer_();
    }
  }
  cv_.notify_all();
}

void BytePipe::SetObserver(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = std::move(fn);
}

bool BytePipe::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

uint64_t BytePipe::bytes_available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buf_.size();
}

std::vector<uint8_t> ByteChannel::Endpoint::Drain() {
  std::vector<uint8_t> out;
  uint8_t tmp[4096];
  while (true) {
    const uint64_t n = in_->TryRead(tmp, sizeof(tmp));
    if (n == 0) {
      break;
    }
    out.insert(out.end(), tmp, tmp + n);
  }
  return out;
}

}  // namespace wasp
