// wasp::Executor — the multicore invocation driver.
//
// The paper's serving case studies (the Figure 13 HTTP server, the Figure 15
// Vespid burst pattern) live or die on sustaining *bursts* of concurrent
// invocations; a single-lane Invoke() cannot express that.  The executor
// adds concurrent entry points on top of Runtime::Invoke:
//
//   * Submit(spec) — enqueue one invocation on a fixed worker pool and get
//     a std::future<RunOutcome> back (the Runtime::InvokeAsync path),
//   * TrySubmit(spec, &future) — same, but subject to the configured
//     bounded-admission policy (see ExecutorOptions below),
//   * SubmitTask(fn) / TrySubmitTask(fn, &future) — enqueue an arbitrary
//     serving task on the same queue and workers (the ConcurrentHttpServer
//     dispatches whole HTTP connections this way, so admission control and
//     lane accounting cover native and virtine handlers alike), and
//   * Run(runtime, specs, concurrency) — run a batch of invocations across
//     `concurrency` transient worker threads (striped static assignment, so
//     lane loads are deterministic) and return outcomes in submission order.
//
// Bounded admission makes burst overload a first-class, testable behavior
// instead of an unbounded queue: with max_queue_depth set, a full queue
// either blocks the submitter (block_when_full, closed-loop clients) or
// rejects the job so the caller can shed load (an HTTP 503, an open-loop
// generator dropping requests).  ExecutorStats counts accepts, rejections,
// completions, and the peak queue depth so tests can assert the policy.
//
// Key-scoped governance sits on top of bounded admission.  A job's affinity
// key is not just a locality hint any more — it is the unit the executor
// accounts and polices:
//
//   * key_quota caps one key's jobs in the system (queued + in flight), so a
//     hot snapshot key cannot monopolize the whole queue.  A quota rejection
//     is classified separately from a global-full rejection (Admission /
//     ExecutorStats.quota_rejected) so a serving front end can answer 429
//     (per-tenant back off) instead of 503 (server overloaded).  The cap is
//     hard: a submission over quota rejects immediately (never parks — a
//     blocked hot-key submitter would keep dominating; shedding is the
//     point), and a block_when_full waiter whose key filled while it was
//     parked for global space is quota-rejected at wake instead of
//     overshooting the cap.
//   * Every job carries a KeyClass: latency-sensitive or batch.  Workers
//     dequeue latency jobs first, but with a weighted escape hatch — under
//     contention one batch job is taken per `batch_weight` dequeues — so
//     priority never becomes batch starvation.  batch_weight <= 0 disables
//     the classes entirely (strict cross-class FIFO by submission order):
//     the ungoverned baseline the governance benchmarks compare against.
//
// Fault recovery rides the same key ledger.  Every completed attempt feeds a
// per-key fault-rate EWMA; a recoverable fault (kWorkerDeath /
// kPoisonedSnapshot — the guest never observably ran) on a key declared
// idempotent is retried exactly once on a fresh, non-affine shell while the
// job stays in flight (counted once in `submitted`, key-quota slot held
// across the retry); and a sustained fault rate trips a per-key circuit
// breaker that sheds admission-checked submissions (Admission::kCircuitOpen —
// a fast 429 upstream) until a half-open probe proves the key healthy again.
//
// Invocations are independent by construction (each owns its shell, its
// hypercall frame, and its fd table), so the only shared state a worker
// touches is the sharded Pool and the read-mostly SnapshotStore — both
// designed to scale with the worker count.
//
// BatchStats reports per-worker-lane modeled busy cycles.  Max over lanes
// is the batch's modeled makespan: the deterministic, machine-independent
// currency the scaling benchmark uses to compare 1/2/4/8-lane throughput.
//
// Lifetime: specs hold non-owning pointers (image, input, channel); the
// caller keeps those alive until the future resolves / Run returns.  The
// destructor drains the queue — every accepted job runs to completion and
// resolves its future — before joining the workers.
#ifndef SRC_WASP_EXECUTOR_H_
#define SRC_WASP_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/wasp/runtime.h"

namespace wasp {

// Scheduling class of a submitted job.  Latency-sensitive jobs are dequeued
// preferentially; batch jobs fill the remaining capacity (weighted so they
// cannot be starved either).
enum class KeyClass {
  kLatency = 0,  // interactive / latency-sensitive (the default)
  kBatch = 1,    // throughput-oriented background work
};

// Why an admission-checked submission was (or was not) accepted.
enum class Admission {
  kAccepted,       // enqueued; the future resolves with the job's outcome
  kQueueFull,      // global max_queue_depth reached under the reject policy
  kQuotaExceeded,  // the job's key is at its per-key quota
  kCircuitOpen,    // the job's key's circuit breaker is open (fast shed)
  kStopped,        // the submission raced executor shutdown
};

// Bounded-admission knobs (the backpressure half of the scale-out engine).
struct ExecutorOptions {
  int workers = 2;
  // Maximum queued (not yet running) jobs; 0 = unbounded.
  size_t max_queue_depth = 0;
  // Full-queue policy for TrySubmit / TrySubmitTask: block until a slot
  // frees (never reject — closed-loop semantics) or refuse the job so the
  // caller sheds load (open-loop semantics).  Blocking Submit/SubmitTask
  // always wait for space regardless of this flag.
  bool block_when_full = true;
  // Per-key cap on jobs in the system (queued + in flight) for keyed
  // admission-checked submissions; 0 = unlimited.  The cap is hard in every
  // full-queue policy: a submission over it rejects immediately at entry
  // (kQuotaExceeded), and a block_when_full waiter whose key filled up
  // while it was parked for global space is rejected at wake.
  size_t key_quota = 0;
  // Tiered governance: per-key overrides of key_quota.  A key present here
  // uses its override (0 = explicitly unlimited — a premium tier can opt a
  // key out of the default cap); absent keys fall back to key_quota.  With a
  // few tier-default entries (premium/standard/free) this turns the single
  // global cap into a three-tier discipline (the fig16 setup).
  std::map<std::string, size_t> key_quota_overrides = {};

  // Effective quota for `key` (0 = unlimited) after override resolution.
  size_t QuotaFor(const std::string& key) const {
    auto it = key_quota_overrides.find(key);
    return it != key_quota_overrides.end() ? it->second : key_quota;
  }
  // Weighted dequeue: under contention (both classes queued), one batch job
  // is dequeued per `batch_weight` dequeues; the rest are latency-class.
  // <= 0 disables class priority: strict FIFO by submission order.  Values
  // above 0 are clamped to at least 2 (a weight of 1 would pick batch on
  // every contended dequeue — priority inversion, not weighting).
  int batch_weight = 4;
  // Fault-recovery policy: retry-once eligibility (idempotent_keys) and the
  // per-key circuit breaker.  See RecoveryOptions in fault.h.
  RecoveryOptions recovery = {};
};

// Monotone admission/progress counters (BatchStats' sibling for the
// long-lived submission path), plus two gauges snapshotted under the same
// lock so accounting invariants are checkable at any observation point:
//   submitted == completed + faulted + queued + in_flight
// A faulted completion still releases its key-quota slot (queued +
// in-flight), so a fault storm on one key can never wedge that key's quota.
struct ExecutorStats {
  uint64_t submitted = 0;         // jobs accepted into the queue
  uint64_t rejected = 0;          // jobs refused: global queue full or shutdown
  uint64_t quota_rejected = 0;    // jobs refused: per-key quota (never enqueued)
  uint64_t breaker_rejected = 0;  // jobs refused: key's circuit breaker open
  uint64_t completed = 0;         // jobs run to a fault-free completion
  uint64_t faulted = 0;           // jobs whose invocation died with a FaultKind
  uint64_t retries = 0;           // retry attempts launched (recoverable faults)
  uint64_t retry_successes = 0;   // retried jobs that completed fault-free
  uint64_t breaker_opens = 0;     // breaker transitions into the open state
  uint64_t peak_queue_depth = 0;  // high-water mark of the queue (both classes)
  uint64_t dequeued_latency = 0;  // jobs dequeued from the latency class
  uint64_t dequeued_batch = 0;    // jobs dequeued from the batch class
  uint64_t queued = 0;            // gauge: jobs waiting right now
  uint64_t in_flight = 0;         // gauge: jobs running right now
};

// Point-in-time recovery view of one key: its fault-rate EWMA (over
// attempts, including retry attempts) and its breaker position.  A key the
// executor has never completed an attempt for reads as all-zero / closed.
struct KeyRecoverySnapshot {
  double fault_rate = 0.0;                     // EWMA over attempts
  uint64_t samples = 0;                        // attempts observed
  BreakerState state = BreakerState::kClosed;  // breaker position
  uint64_t opens = 0;                          // times this key's breaker opened
};

class Executor {
 public:
  // Per-lane accounting for a batch run.
  struct BatchStats {
    std::vector<uint64_t> worker_cycles;  // modeled busy cycles per lane
    uint64_t wall_ns = 0;                 // real elapsed time of the batch

    // The batch's modeled completion time: the busiest lane bounds it.
    uint64_t MakespanCycles() const {
      uint64_t makespan = 0;
      for (uint64_t c : worker_cycles) {
        makespan = std::max(makespan, c);
      }
      return makespan;
    }
  };

  // An arbitrary serving task run on an executor worker.  The returned
  // RunOutcome resolves the job's future (tasks that track their results
  // elsewhere may return a default outcome).
  using Task = std::function<RunOutcome()>;

  Executor(Runtime* runtime, int workers);  // unbounded queue, blocking
  Executor(Runtime* runtime, ExecutorOptions options);
  ~Executor();  // drains the queue (all accepted futures resolve), then joins

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Enqueues one invocation; the future resolves with its RunOutcome.
  // Waits for queue space when bounded admission is full.  If the executor
  // is (or starts) shutting down while the submitter waits, the returned
  // future resolves with an Aborted outcome instead of running.  Blocking
  // submissions bypass the per-key quota (trusted closed-loop path).
  std::future<RunOutcome> Submit(VirtineSpec spec, KeyClass klass = KeyClass::kLatency);

  // Admission-checked enqueue.  Returns false — and does not enqueue — when
  // the queue is at max_queue_depth and the policy is reject, when the
  // job's key is at its quota, or when the submission races executor
  // shutdown; otherwise (including blocking until space in block_when_full
  // mode) stores the outcome future in `*future` and returns true.
  // `admission` (optional) receives the classified decision, so callers can
  // distinguish per-key shedding (429) from global overload (503).
  bool TrySubmit(VirtineSpec spec, std::future<RunOutcome>* future,
                 KeyClass klass = KeyClass::kLatency, Admission* admission = nullptr);

  // Task variants of the same two entry points.  `affinity_key` feeds the
  // workers' keyed-dequeue affinity scan and the per-key quota accounting
  // (empty = no affinity, no quota).
  std::future<RunOutcome> SubmitTask(Task task, std::string affinity_key = {},
                                     KeyClass klass = KeyClass::kLatency);
  bool TrySubmitTask(Task task, std::future<RunOutcome>* future,
                     std::string affinity_key = {}, KeyClass klass = KeyClass::kLatency,
                     Admission* admission = nullptr);

  size_t workers() const { return workers_.size(); }
  size_t queue_depth() const;
  ExecutorStats stats() const;
  // Jobs in the system (queued + in flight) under `key` right now.
  size_t KeyLoad(const std::string& key) const;
  // Recovery view of `key`: fault-rate EWMA and breaker position.  Unlike
  // key_load_, recovery state persists after the key's jobs drain — a storm's
  // evidence must outlive the storm.
  KeyRecoverySnapshot KeyRecoveryState(const std::string& key) const;
  // Convenience: KeyRecoveryState(key).fault_rate.
  double KeyFaultRate(const std::string& key) const;
  const ExecutorOptions& options() const { return options_; }

  // Runs `specs` to completion over `concurrency` transient worker threads;
  // outcomes are returned in spec order.  `stats` (optional) receives the
  // per-lane modeled-cycle accounting.
  static std::vector<RunOutcome> Run(Runtime* runtime, const std::vector<VirtineSpec>& specs,
                                     int concurrency, BatchStats* stats = nullptr);

 private:
  struct Job {
    std::string key;  // snapshot-affinity hint + quota accounting unit
    KeyClass klass = KeyClass::kLatency;
    uint64_t seq = 0;  // submission order (cross-class FIFO when ungoverned)
    Task work;         // the serving task (empty for invocation jobs)
    // Invocation jobs (Submit/TrySubmit) carry their spec so a recoverable
    // fault can be retried once on a fresh shell.  Generic tasks never carry
    // one — their side effects are opaque, so they are never retried.
    VirtineSpec spec;
    bool retryable = false;  // spec is valid; eligible for retry-once
    bool probe = false;      // this job is its key's half-open breaker probe
    std::promise<RunOutcome> promise;
  };

  // Per-key recovery ledger entry (mu_ held).  Entries persist at zero load —
  // the fault-rate EWMA and breaker position are evidence, not a gauge.
  struct KeyRecovery {
    double ewma = 0.0;       // fault-rate EWMA over attempts
    uint64_t samples = 0;    // attempts observed
    BreakerState state = BreakerState::kClosed;
    uint64_t opens = 0;      // transitions into kOpen
    uint64_t sheds = 0;      // requests shed since the breaker last opened
    bool probe_in_flight = false;  // a half-open probe is queued or running
  };

  // Shared enqueue path.  `may_reject` selects TrySubmit semantics (honor
  // the breaker, the quota, and the configured full-queue policy) over
  // Submit semantics (always block for space, no breaker, no quota).
  Admission Enqueue(Job job, bool may_reject, std::future<RunOutcome>* future);
  // Runs a job's work — the stored task, or an invocation of its spec — and
  // applies the retry-once policy for recoverable faults on idempotent keys.
  RunOutcome RunJob(Job& job);
  // Breaker admission for `key` (mu_ held).  Returns false to shed; on an
  // admit, sets *probe when this request is the key's half-open probe.
  bool BreakerAdmitLocked(const std::string& key, bool* probe);
  // Feeds one attempt outcome into `key`'s fault-rate EWMA and drives the
  // breaker state machine (mu_ held).  `probe` marks the resolution of a
  // half-open probe: clean closes the breaker (EWMA reset — re-tripping
  // requires fresh evidence), faulted re-opens it.
  void RecordAttemptLocked(const std::string& key, bool faulted, bool probe);
  // Picks the class queue the next dequeue should serve (mu_ held; at least
  // one queue non-empty).
  size_t PickClass();
  void WorkerLoop(uint32_t worker_index);

  size_t TotalQueuedLocked() const { return queues_[0].size() + queues_[1].size(); }

  Runtime* runtime_;
  ExecutorOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;        // queue became non-empty / stopping
  std::condition_variable cv_space_;  // queue slot freed
  std::deque<Job> queues_[2];         // indexed by KeyClass
  uint64_t next_seq_ = 0;
  int batch_credit_ = 0;  // latency dequeues since the last forced batch pick
  size_t in_flight_ = 0;
  // Per-key jobs in the system (queued + in flight); entries erased at zero
  // so the map tracks only live keys.
  std::map<std::string, size_t> key_load_;
  // Per-key fault-rate EWMA + breaker state; entries persist (see KeyRecovery).
  std::map<std::string, KeyRecovery> recovery_;
  ExecutorStats stats_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace wasp

#endif  // SRC_WASP_EXECUTOR_H_
