// wasp::Executor — the multicore invocation driver.
//
// The paper's serving case studies (the Figure 13 HTTP server, the Figure 15
// Vespid burst pattern) live or die on sustaining *bursts* of concurrent
// invocations; a single-lane Invoke() cannot express that.  The executor
// adds concurrent entry points on top of Runtime::Invoke:
//
//   * Submit(spec) — enqueue one invocation on a fixed worker pool and get
//     a std::future<RunOutcome> back (the Runtime::InvokeAsync path),
//   * TrySubmit(spec, &future) — same, but subject to the configured
//     bounded-admission policy (see ExecutorOptions below),
//   * SubmitTask(fn) / TrySubmitTask(fn, &future) — enqueue an arbitrary
//     serving task on the same queue and workers (the ConcurrentHttpServer
//     dispatches whole HTTP connections this way, so admission control and
//     lane accounting cover native and virtine handlers alike), and
//   * Run(runtime, specs, concurrency) — run a batch of invocations across
//     `concurrency` transient worker threads (striped static assignment, so
//     lane loads are deterministic) and return outcomes in submission order.
//
// Bounded admission makes burst overload a first-class, testable behavior
// instead of an unbounded queue: with max_queue_depth set, a full queue
// either blocks the submitter (block_when_full, closed-loop clients) or
// rejects the job so the caller can shed load (an HTTP 503, an open-loop
// generator dropping requests).  ExecutorStats counts accepts, rejections,
// completions, and the peak queue depth so tests can assert the policy.
//
// Invocations are independent by construction (each owns its shell, its
// hypercall frame, and its fd table), so the only shared state a worker
// touches is the sharded Pool and the read-mostly SnapshotStore — both
// designed to scale with the worker count.
//
// BatchStats reports per-worker-lane modeled busy cycles.  Max over lanes
// is the batch's modeled makespan: the deterministic, machine-independent
// currency the scaling benchmark uses to compare 1/2/4/8-lane throughput.
//
// Lifetime: specs hold non-owning pointers (image, input, channel); the
// caller keeps those alive until the future resolves / Run returns.  The
// destructor drains the queue — every accepted job runs to completion and
// resolves its future — before joining the workers.
#ifndef SRC_WASP_EXECUTOR_H_
#define SRC_WASP_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/wasp/runtime.h"

namespace wasp {

// Bounded-admission knobs (the backpressure half of the scale-out engine).
struct ExecutorOptions {
  int workers = 2;
  // Maximum queued (not yet running) jobs; 0 = unbounded.
  size_t max_queue_depth = 0;
  // Full-queue policy for TrySubmit / TrySubmitTask: block until a slot
  // frees (never reject — closed-loop semantics) or refuse the job so the
  // caller sheds load (open-loop semantics).  Blocking Submit/SubmitTask
  // always wait for space regardless of this flag.
  bool block_when_full = true;
};

// Monotone admission/progress counters (BatchStats' sibling for the
// long-lived submission path).
struct ExecutorStats {
  uint64_t submitted = 0;         // jobs accepted into the queue
  uint64_t rejected = 0;          // jobs refused (bounded admission or shutdown)
  uint64_t completed = 0;         // jobs run to completion
  uint64_t peak_queue_depth = 0;  // high-water mark of the queue
};

class Executor {
 public:
  // Per-lane accounting for a batch run.
  struct BatchStats {
    std::vector<uint64_t> worker_cycles;  // modeled busy cycles per lane
    uint64_t wall_ns = 0;                 // real elapsed time of the batch

    // The batch's modeled completion time: the busiest lane bounds it.
    uint64_t MakespanCycles() const {
      uint64_t makespan = 0;
      for (uint64_t c : worker_cycles) {
        makespan = std::max(makespan, c);
      }
      return makespan;
    }
  };

  // An arbitrary serving task run on an executor worker.  The returned
  // RunOutcome resolves the job's future (tasks that track their results
  // elsewhere may return a default outcome).
  using Task = std::function<RunOutcome()>;

  Executor(Runtime* runtime, int workers);  // unbounded queue, blocking
  Executor(Runtime* runtime, ExecutorOptions options);
  ~Executor();  // drains the queue (all accepted futures resolve), then joins

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Enqueues one invocation; the future resolves with its RunOutcome.
  // Waits for queue space when bounded admission is full.  If the executor
  // is (or starts) shutting down while the submitter waits, the returned
  // future resolves with an Aborted outcome instead of running.
  std::future<RunOutcome> Submit(VirtineSpec spec);

  // Admission-checked enqueue.  Returns false — and does not enqueue — when
  // the queue is at max_queue_depth and the policy is reject, or when the
  // submission races executor shutdown; otherwise (including blocking until
  // space in block_when_full mode) stores the outcome future in `*future`
  // and returns true.
  bool TrySubmit(VirtineSpec spec, std::future<RunOutcome>* future);

  // Task variants of the same two entry points.  `affinity_key` feeds the
  // workers' keyed-dequeue affinity scan (empty = no affinity).
  std::future<RunOutcome> SubmitTask(Task task, std::string affinity_key = {});
  bool TrySubmitTask(Task task, std::future<RunOutcome>* future,
                     std::string affinity_key = {});

  size_t workers() const { return workers_.size(); }
  size_t queue_depth() const;
  ExecutorStats stats() const;
  const ExecutorOptions& options() const { return options_; }

  // Runs `specs` to completion over `concurrency` transient worker threads;
  // outcomes are returned in spec order.  `stats` (optional) receives the
  // per-lane modeled-cycle accounting.
  static std::vector<RunOutcome> Run(Runtime* runtime, const std::vector<VirtineSpec>& specs,
                                     int concurrency, BatchStats* stats = nullptr);

 private:
  struct Job {
    std::string key;  // snapshot-affinity hint; empty = none
    Task work;
    std::promise<RunOutcome> promise;
  };

  // Shared enqueue path.  `may_reject` selects TrySubmit semantics (honor
  // the configured full-queue policy) over Submit semantics (always block
  // for space).
  bool Enqueue(Job job, bool may_reject, std::future<RunOutcome>* future);
  Task MakeInvokeTask(VirtineSpec spec);
  void WorkerLoop();

  Runtime* runtime_;
  ExecutorOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;        // queue became non-empty / stopping
  std::condition_variable cv_space_;  // queue slot freed
  std::deque<Job> queue_;
  ExecutorStats stats_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace wasp

#endif  // SRC_WASP_EXECUTOR_H_
