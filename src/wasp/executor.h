// wasp::Executor — the multicore invocation driver.
//
// The paper's serverless case study (Vespid, Figure 15) lives or dies on
// sustaining *bursts* of concurrent invocations; a single-lane Invoke()
// cannot express that.  The executor adds two concurrent entry points on
// top of Runtime::Invoke:
//
//   * Submit(spec) — enqueue one invocation on a fixed worker pool and get
//     a std::future<RunOutcome> back (the Runtime::InvokeAsync path), and
//   * Run(runtime, specs, concurrency) — run a batch of invocations across
//     `concurrency` worker threads (striped static assignment, so lane
//     loads are deterministic) and return the outcomes in submission order.
//
// Invocations are independent by construction (each owns its shell, its
// hypercall frame, and its fd table), so the only shared state a worker
// touches is the sharded Pool and the read-mostly SnapshotStore — both
// designed to scale with the worker count.
//
// BatchStats reports per-worker-lane modeled busy cycles.  Max over lanes
// is the batch's modeled makespan: the deterministic, machine-independent
// currency the scaling benchmark uses to compare 1/2/4/8-lane throughput.
//
// Lifetime: specs hold non-owning pointers (image, input, channel); the
// caller keeps those alive until the future resolves / Run returns.
#ifndef SRC_WASP_EXECUTOR_H_
#define SRC_WASP_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "src/wasp/runtime.h"

namespace wasp {

class Executor {
 public:
  // Per-lane accounting for a batch run.
  struct BatchStats {
    std::vector<uint64_t> worker_cycles;  // modeled busy cycles per lane
    uint64_t wall_ns = 0;                 // real elapsed time of the batch

    // The batch's modeled completion time: the busiest lane bounds it.
    uint64_t MakespanCycles() const {
      uint64_t makespan = 0;
      for (uint64_t c : worker_cycles) {
        makespan = std::max(makespan, c);
      }
      return makespan;
    }
  };

  Executor(Runtime* runtime, int workers);
  ~Executor();  // drains the queue, then joins the workers

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Enqueues one invocation; the future resolves with its RunOutcome.
  std::future<RunOutcome> Submit(VirtineSpec spec);

  size_t workers() const { return workers_.size(); }

  // Runs `specs` to completion over `concurrency` transient worker threads;
  // outcomes are returned in spec order.  `stats` (optional) receives the
  // per-lane modeled-cycle accounting.
  static std::vector<RunOutcome> Run(Runtime* runtime, const std::vector<VirtineSpec>& specs,
                                     int concurrency, BatchStats* stats = nullptr);

 private:
  struct Job {
    VirtineSpec spec;
    std::promise<RunOutcome> promise;
  };

  void WorkerLoop();

  Runtime* runtime_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace wasp

#endif  // SRC_WASP_EXECUTOR_H_
