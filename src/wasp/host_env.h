// The sandboxed host environment backing Wasp's canned hypercall handlers.
//
// The paper's Wasp validates hypercall arguments and then "re-creates the
// calls on the host" (e.g. a validated read() becomes a read() on the host
// filesystem).  This reproduction routes the canned POSIX-like handlers to
// an in-memory filesystem instead of the real one: it exercises the same
// code path (guest pointer validation, copy-in/copy-out, fd table) while
// keeping tests hermetic and making the isolation boundary auditable.
#ifndef SRC_WASP_HOST_ENV_H_
#define SRC_WASP_HOST_ENV_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace wasp {

// An in-memory filesystem shared by all virtines of a runtime (read paths)
// with per-virtine fd tables (created per invocation).
class HostEnv {
 public:
  HostEnv() = default;

  // Installs a file (replaces existing content).
  void PutFile(const std::string& path, std::vector<uint8_t> content);
  void PutFile(const std::string& path, const std::string& content);

  bool FileExists(const std::string& path) const;
  vbase::Result<uint64_t> FileSize(const std::string& path) const;
  vbase::Result<std::vector<uint8_t>> GetFile(const std::string& path) const;

 private:
  friend class FdTable;
  mutable std::mutex mu_;
  std::map<std::string, std::vector<uint8_t>> files_;
};

// Per-virtine open-file table.  Reads snapshot file content at open() so a
// guest can never observe host-side mutation races.
class FdTable {
 public:
  explicit FdTable(HostEnv* env) : env_(env) {}

  // Returns a new fd (>= 3, POSIX-style), or an error if the path is absent.
  vbase::Result<int64_t> Open(const std::string& path);
  // Reads up to `len` bytes at the fd's cursor; returns bytes read (0 = EOF).
  vbase::Result<int64_t> Read(int64_t fd, void* dst, uint64_t len);
  // Appends to the file's write buffer (retrievable via TakeWrites for
  // assertions; writes never touch the shared HostEnv).
  vbase::Result<int64_t> Write(int64_t fd, const void* src, uint64_t len);
  vbase::Status Close(int64_t fd);

  // All bytes written through this table, in order (testing hook).
  std::vector<uint8_t> TakeWrites();

 private:
  struct OpenFile {
    std::vector<uint8_t> content;
    uint64_t cursor = 0;
  };
  HostEnv* env_;
  std::map<int64_t, OpenFile> open_;
  std::vector<uint8_t> writes_;
  int64_t next_fd_ = 3;
};

}  // namespace wasp

#endif  // SRC_WASP_HOST_ENV_H_
