// Virtine image format.
//
// A virtine image is a flat, statically linked binary blob plus metadata.
// Wasp loads the blob at `load_addr` (0x8000, as in the paper) in guest
// physical memory and starts the vCPU in real mode at `entry`.
#ifndef SRC_ISA_IMAGE_H_
#define SRC_ISA_IMAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace visa {

// Default guest load address (matches Wasp: "loads it at guest virtual
// address 0x8000 and enters the VM context").
inline constexpr uint64_t kDefaultLoadAddr = 0x8000;

// A loadable guest binary.
struct Image {
  uint64_t load_addr = kDefaultLoadAddr;
  uint64_t entry = kDefaultLoadAddr;
  std::vector<uint8_t> bytes;
  // Symbol table (label -> absolute guest address) for debugging and tests.
  std::map<std::string, uint64_t> symbols;

  uint64_t size() const { return bytes.size(); }

  // Looks up a symbol's absolute address.
  vbase::Result<uint64_t> Symbol(const std::string& name) const {
    auto it = symbols.find(name);
    if (it == symbols.end()) {
      return vbase::NotFound("no such symbol: " + name);
    }
    return it->second;
  }

  // Zero-pads the image to at least `size` bytes (used by the Figure 12
  // image-size sweep, which synthetically pads a minimal image with zeroes).
  void PadTo(uint64_t size) {
    if (bytes.size() < size) {
      bytes.resize(size, 0);
    }
  }
};

}  // namespace visa

#endif  // SRC_ISA_IMAGE_H_
