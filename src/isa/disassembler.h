// Linear-sweep disassembler for VBC images (debugging and round-trip tests).
#ifndef SRC_ISA_DISASSEMBLER_H_
#define SRC_ISA_DISASSEMBLER_H_

#include <string>

#include "src/isa/image.h"

namespace visa {

// Disassembles `count` instructions starting at `addr` (defaults: entry, all
// decodable instructions).  Stops at the first undecodable byte (data).
std::string Disassemble(const Image& image, uint64_t addr = 0, int count = -1);

}  // namespace visa

#endif  // SRC_ISA_DISASSEMBLER_H_
