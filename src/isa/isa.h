// VBC — the "virtine bytecode" instruction set.
//
// VBC is the guest ISA of this reproduction's software machine.  It is an
// x86-inspired, little-endian register ISA designed so that a guest binary
// *boots* the way the paper's 160-line assembly stub does: the CPU starts in
// 16-bit real mode, loads a GDT (`lgdt`), flips CR0.PE, far-jumps to 32-bit
// protected mode, writes real page tables into guest memory, enables
// CR4.PAE / EFER.LME / CR0.PG, and far-jumps to 64-bit long mode.
//
// Mode-dependent width: arithmetic, PUSH/POP/CALL/RET and the `ldw`/`stw`
// word accessors operate at the current mode's natural width (16/32/64 bits).
// Fixed-width loads/stores (ld8..ld64) are mode-independent.
//
// Hypercalls use port I/O (`out port, reg`), mirroring Wasp's virtual I/O
// port interface; `hlt` exits to the hypervisor.
#ifndef SRC_ISA_ISA_H_
#define SRC_ISA_ISA_H_

#include <cstdint>
#include <string>

#include "src/base/status.h"

namespace visa {

// Number of general-purpose registers.  r14 is the conventional frame
// pointer ("fp"), r15 the stack pointer ("sp").
inline constexpr int kNumRegs = 16;
inline constexpr int kFp = 14;
inline constexpr int kSp = 15;

// x86-style execution modes (the three classic boot stages).
enum class Mode : uint8_t {
  kReal16 = 0,
  kProt32 = 1,
  kLong64 = 2,
};

// Natural word width, in bytes, of a mode.
inline int WordBytes(Mode mode) {
  switch (mode) {
    case Mode::kReal16:
      return 2;
    case Mode::kProt32:
      return 4;
    case Mode::kLong64:
      return 8;
  }
  return 8;
}

const char* ModeName(Mode mode);

// Condition codes for `jcc`/`cset` (signed: lt/le/gt/ge, unsigned: b/be/a/ae).
enum class Cond : uint8_t {
  kEq = 0,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kB,
  kBe,
  kA,
  kAe,
};

const char* CondName(Cond cc);

// Control-register indices accepted by wrcr/rdcr.  EFER is modeled as
// control register 8 to avoid a separate MSR instruction.
inline constexpr uint8_t kCr0 = 0;
inline constexpr uint8_t kCr3 = 3;
inline constexpr uint8_t kCr4 = 4;
inline constexpr uint8_t kCrEfer = 8;

// Architectural bits (subset of x86).
inline constexpr uint64_t kCr0Pe = 1ULL << 0;   // protected mode enable
inline constexpr uint64_t kCr0Pg = 1ULL << 31;  // paging enable
inline constexpr uint64_t kCr4Pae = 1ULL << 5;  // physical address extension
inline constexpr uint64_t kEferLme = 1ULL << 8;   // long mode enable
inline constexpr uint64_t kEferLma = 1ULL << 10;  // long mode active (read-only)

// Page-table entry bits (x86-64 layout subset).
inline constexpr uint64_t kPtePresent = 1ULL << 0;
inline constexpr uint64_t kPteWrite = 1ULL << 1;
inline constexpr uint64_t kPteLarge = 1ULL << 7;  // PS: 2 MB page at PD level

// Opcodes.  Stable numbering; encoded as a single byte.
enum class Op : uint8_t {
  kNop = 0,
  kHlt,
  kBrk,
  kRet,
  kMovRr,
  kMovRi,
  kLd8,
  kLd8S,
  kLd16,
  kLd16S,
  kLd32,
  kLd32S,
  kLd64,
  kLdW,
  kSt8,
  kSt16,
  kSt32,
  kSt64,
  kStW,
  kLea,
  kAddRr,
  kAddRi,
  kSubRr,
  kSubRi,
  kAndRr,
  kAndRi,
  kOrRr,
  kOrRi,
  kXorRr,
  kXorRi,
  kShlRr,
  kShlRi,
  kShrRr,
  kShrRi,
  kSarRr,
  kSarRi,
  kMulRr,
  kImulRr,
  kUdivRr,
  kIdivRr,
  kUmodRr,
  kImodRr,
  kNotR,
  kNegR,
  kCmpRr,
  kCmpRi,
  kTestRr,
  kCset,
  kJmp,
  kJcc,
  kCall,
  kCallR,
  kPush,
  kPop,
  kIn,
  kOut,
  kRdtsc,
  kLgdt,
  kWrcr,
  kRdcr,
  kLjmp,
  kOpCount,  // sentinel
};

const char* OpName(Op op);

// Encoded size in bytes of an instruction with opcode `op`.
int InsnSize(Op op);

// A decoded instruction (used by the disassembler and tests; the CPU
// interpreter decodes inline for speed but follows the same layout).
//
// Encoding layout, little-endian:
//   [op:u8]                                   kNop/kHlt/kBrk/kRet
//   [op:u8][ab:u8]                            reg/reg forms (a=hi nibble, b=lo)
//   [op:u8][a:u8][imm:i64]                    kMovRi
//   [op:u8][ab:u8][imm:i32]                   ALU-imm, CMP-imm, SHL-imm
//   [op:u8][ab:u8][disp:i32]                  loads (a=dst, b=base),
//                                             stores (a=base, b=src), lea
//   [op:u8][rel:i32]                          kJmp/kCall (relative to next insn)
//   [op:u8][cc:u8][rel:i32]                   kJcc
//   [op:u8][mode:u8][rel:i32]                 kLjmp
//   [op:u8][ab:u8]                            kCset (a=reg, b=cc),
//                                             kWrcr (a=cr, b=reg),
//                                             kRdcr (a=reg, b=cr)
//   [op:u8][port:u16][reg:u8]                 kIn (reg <- port), kOut (port <- reg)
struct Insn {
  Op op = Op::kNop;
  uint8_t a = 0;
  uint8_t b = 0;
  Cond cc = Cond::kEq;
  Mode mode = Mode::kReal16;
  int64_t imm = 0;
  uint16_t port = 0;
};

// Decodes one instruction at `bytes[offset]`.  `len` is the buffer length.
// Returns the decoded instruction; `*size` receives the encoded size.
vbase::Result<Insn> Decode(const uint8_t* bytes, uint64_t len, uint64_t offset, int* size);

// Renders a decoded instruction as assembler text.
std::string ToString(const Insn& insn);

}  // namespace visa

#endif  // SRC_ISA_ISA_H_
