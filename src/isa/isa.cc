#include "src/isa/isa.h"

#include <cstring>
#include <sstream>

namespace visa {
namespace {

// Reads a little-endian value of N bytes.
template <typename T>
T ReadLe(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

}  // namespace

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kReal16:
      return "real16";
    case Mode::kProt32:
      return "prot32";
    case Mode::kLong64:
      return "long64";
  }
  return "?";
}

const char* CondName(Cond cc) {
  switch (cc) {
    case Cond::kEq:
      return "eq";
    case Cond::kNe:
      return "ne";
    case Cond::kLt:
      return "lt";
    case Cond::kLe:
      return "le";
    case Cond::kGt:
      return "gt";
    case Cond::kGe:
      return "ge";
    case Cond::kB:
      return "b";
    case Cond::kBe:
      return "be";
    case Cond::kA:
      return "a";
    case Cond::kAe:
      return "ae";
  }
  return "?";
}

const char* OpName(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kHlt: return "hlt";
    case Op::kBrk: return "brk";
    case Op::kRet: return "ret";
    case Op::kMovRr: return "mov";
    case Op::kMovRi: return "mov";
    case Op::kLd8: return "ld8";
    case Op::kLd8S: return "ld8s";
    case Op::kLd16: return "ld16";
    case Op::kLd16S: return "ld16s";
    case Op::kLd32: return "ld32";
    case Op::kLd32S: return "ld32s";
    case Op::kLd64: return "ld64";
    case Op::kLdW: return "ldw";
    case Op::kSt8: return "st8";
    case Op::kSt16: return "st16";
    case Op::kSt32: return "st32";
    case Op::kSt64: return "st64";
    case Op::kStW: return "stw";
    case Op::kLea: return "lea";
    case Op::kAddRr: return "add";
    case Op::kAddRi: return "add";
    case Op::kSubRr: return "sub";
    case Op::kSubRi: return "sub";
    case Op::kAndRr: return "and";
    case Op::kAndRi: return "and";
    case Op::kOrRr: return "or";
    case Op::kOrRi: return "or";
    case Op::kXorRr: return "xor";
    case Op::kXorRi: return "xor";
    case Op::kShlRr: return "shl";
    case Op::kShlRi: return "shl";
    case Op::kShrRr: return "shr";
    case Op::kShrRi: return "shr";
    case Op::kSarRr: return "sar";
    case Op::kSarRi: return "sar";
    case Op::kMulRr: return "mul";
    case Op::kImulRr: return "imul";
    case Op::kUdivRr: return "udiv";
    case Op::kIdivRr: return "idiv";
    case Op::kUmodRr: return "umod";
    case Op::kImodRr: return "imod";
    case Op::kNotR: return "not";
    case Op::kNegR: return "neg";
    case Op::kCmpRr: return "cmp";
    case Op::kCmpRi: return "cmp";
    case Op::kTestRr: return "test";
    case Op::kCset: return "cset";
    case Op::kJmp: return "jmp";
    case Op::kJcc: return "jcc";
    case Op::kCall: return "call";
    case Op::kCallR: return "call";
    case Op::kPush: return "push";
    case Op::kPop: return "pop";
    case Op::kIn: return "in";
    case Op::kOut: return "out";
    case Op::kRdtsc: return "rdtsc";
    case Op::kLgdt: return "lgdt";
    case Op::kWrcr: return "wrcr";
    case Op::kRdcr: return "rdcr";
    case Op::kLjmp: return "ljmp";
    case Op::kOpCount: return "?";
  }
  return "?";
}

int InsnSize(Op op) {
  switch (op) {
    case Op::kNop:
    case Op::kHlt:
    case Op::kBrk:
    case Op::kRet:
      return 1;
    case Op::kMovRr:
    case Op::kNotR:
    case Op::kNegR:
    case Op::kCmpRr:
    case Op::kTestRr:
    case Op::kCset:
    case Op::kPush:
    case Op::kPop:
    case Op::kRdtsc:
    case Op::kLgdt:
    case Op::kWrcr:
    case Op::kRdcr:
    case Op::kCallR:
    case Op::kAddRr:
    case Op::kSubRr:
    case Op::kAndRr:
    case Op::kOrRr:
    case Op::kXorRr:
    case Op::kShlRr:
    case Op::kShrRr:
    case Op::kSarRr:
    case Op::kMulRr:
    case Op::kImulRr:
    case Op::kUdivRr:
    case Op::kIdivRr:
    case Op::kUmodRr:
    case Op::kImodRr:
      return 2;
    case Op::kMovRi:
      return 10;
    case Op::kAddRi:
    case Op::kSubRi:
    case Op::kAndRi:
    case Op::kOrRi:
    case Op::kXorRi:
    case Op::kShlRi:
    case Op::kShrRi:
    case Op::kSarRi:
    case Op::kCmpRi:
    case Op::kLd8:
    case Op::kLd8S:
    case Op::kLd16:
    case Op::kLd16S:
    case Op::kLd32:
    case Op::kLd32S:
    case Op::kLd64:
    case Op::kLdW:
    case Op::kSt8:
    case Op::kSt16:
    case Op::kSt32:
    case Op::kSt64:
    case Op::kStW:
    case Op::kLea:
    case Op::kJcc:
    case Op::kLjmp:
      return 6;
    case Op::kJmp:
    case Op::kCall:
      return 5;
    case Op::kIn:
    case Op::kOut:
      return 4;
    case Op::kOpCount:
      return 1;
  }
  return 1;
}

vbase::Result<Insn> Decode(const uint8_t* bytes, uint64_t len, uint64_t offset, int* size) {
  if (offset >= len) {
    return vbase::OutOfRange("decode offset beyond buffer");
  }
  const uint8_t raw = bytes[offset];
  if (raw >= static_cast<uint8_t>(Op::kOpCount)) {
    return vbase::InvalidArgument("invalid opcode " + std::to_string(raw));
  }
  Insn insn;
  insn.op = static_cast<Op>(raw);
  const int sz = InsnSize(insn.op);
  if (offset + static_cast<uint64_t>(sz) > len) {
    return vbase::OutOfRange("truncated instruction");
  }
  const uint8_t* p = bytes + offset + 1;
  switch (insn.op) {
    case Op::kNop:
    case Op::kHlt:
    case Op::kBrk:
    case Op::kRet:
      break;
    case Op::kMovRi:
      insn.a = p[0];
      insn.imm = ReadLe<int64_t>(p + 1);
      break;
    case Op::kJmp:
    case Op::kCall:
      insn.imm = ReadLe<int32_t>(p);
      break;
    case Op::kJcc:
      insn.cc = static_cast<Cond>(p[0]);
      insn.imm = ReadLe<int32_t>(p + 1);
      break;
    case Op::kLjmp:
      insn.mode = static_cast<Mode>(p[0]);
      insn.imm = ReadLe<int32_t>(p + 1);
      break;
    case Op::kIn:
    case Op::kOut:
      insn.port = ReadLe<uint16_t>(p);
      insn.a = p[2];
      break;
    default: {
      const uint8_t ab = p[0];
      insn.a = ab >> 4;
      insn.b = ab & 0xf;
      if (sz == 6) {
        insn.imm = ReadLe<int32_t>(p + 1);
      }
      if (insn.op == Op::kCset) {
        insn.cc = static_cast<Cond>(insn.b);
      }
      break;
    }
  }
  if (size != nullptr) {
    *size = sz;
  }
  return insn;
}

std::string ToString(const Insn& insn) {
  std::ostringstream os;
  auto reg = [](int r) { return "r" + std::to_string(r); };
  os << OpName(insn.op);
  switch (insn.op) {
    case Op::kNop:
    case Op::kHlt:
    case Op::kBrk:
    case Op::kRet:
      break;
    case Op::kMovRr:
    case Op::kAddRr:
    case Op::kSubRr:
    case Op::kAndRr:
    case Op::kOrRr:
    case Op::kXorRr:
    case Op::kShlRr:
    case Op::kShrRr:
    case Op::kSarRr:
    case Op::kMulRr:
    case Op::kImulRr:
    case Op::kUdivRr:
    case Op::kIdivRr:
    case Op::kUmodRr:
    case Op::kImodRr:
    case Op::kCmpRr:
    case Op::kTestRr:
      os << " " << reg(insn.a) << ", " << reg(insn.b);
      break;
    case Op::kMovRi:
      os << " " << reg(insn.a) << ", " << insn.imm;
      break;
    case Op::kAddRi:
    case Op::kSubRi:
    case Op::kAndRi:
    case Op::kOrRi:
    case Op::kXorRi:
    case Op::kShlRi:
    case Op::kShrRi:
    case Op::kSarRi:
    case Op::kCmpRi:
      os << " " << reg(insn.a) << ", " << insn.imm;
      break;
    case Op::kLd8:
    case Op::kLd8S:
    case Op::kLd16:
    case Op::kLd16S:
    case Op::kLd32:
    case Op::kLd32S:
    case Op::kLd64:
    case Op::kLdW:
    case Op::kLea:
      os << " " << reg(insn.a) << ", [" << reg(insn.b);
      if (insn.imm != 0) {
        os << (insn.imm > 0 ? "+" : "") << insn.imm;
      }
      os << "]";
      break;
    case Op::kSt8:
    case Op::kSt16:
    case Op::kSt32:
    case Op::kSt64:
    case Op::kStW:
      os << " [" << reg(insn.a);
      if (insn.imm != 0) {
        os << (insn.imm > 0 ? "+" : "") << insn.imm;
      }
      os << "], " << reg(insn.b);
      break;
    case Op::kNotR:
    case Op::kNegR:
    case Op::kPush:
    case Op::kPop:
    case Op::kRdtsc:
    case Op::kLgdt:
    case Op::kCallR:
      os << " " << reg(insn.a);
      break;
    case Op::kCset:
      os << " " << reg(insn.a) << ", " << CondName(insn.cc);
      break;
    case Op::kJmp:
    case Op::kCall:
      os << " " << insn.imm;
      break;
    case Op::kJcc:
      os << " " << CondName(insn.cc) << ", " << insn.imm;
      break;
    case Op::kLjmp:
      os << " " << ModeName(insn.mode) << ", " << insn.imm;
      break;
    case Op::kIn:
      os << " " << reg(insn.a) << ", 0x" << std::hex << insn.port;
      break;
    case Op::kOut:
      os << " 0x" << std::hex << insn.port << std::dec << ", " << reg(insn.a);
      break;
    case Op::kWrcr:
      os << " " << static_cast<int>(insn.a) << ", " << reg(insn.b);
      break;
    case Op::kRdcr:
      os << " " << reg(insn.a) << ", " << static_cast<int>(insn.b);
      break;
    case Op::kOpCount:
      break;
  }
  return os.str();
}

}  // namespace visa
