#include "src/isa/disassembler.h"

#include <cstdio>
#include <sstream>

#include "src/isa/isa.h"

namespace visa {

std::string Disassemble(const Image& image, uint64_t addr, int count) {
  if (addr == 0) {
    addr = image.entry;
  }
  std::ostringstream os;
  int emitted = 0;
  while (count < 0 || emitted < count) {
    if (addr < image.load_addr || addr >= image.load_addr + image.bytes.size()) {
      break;
    }
    const uint64_t off = addr - image.load_addr;
    int size = 0;
    auto insn = Decode(image.bytes.data(), image.bytes.size(), off, &size);
    if (!insn.ok()) {
      break;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%08llx:  ", static_cast<unsigned long long>(addr));
    os << buf << ToString(*insn) << "\n";
    addr += static_cast<uint64_t>(size);
    ++emitted;
  }
  return os.str();
}

}  // namespace visa
