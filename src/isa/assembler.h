// Two-pass assembler for VBC assembly text.
//
// Syntax overview (one statement per line, `;` or `#` start comments):
//
//   .org 0x8000            ; load/link base (default 0x8000)
//   .equ PORT_EXIT, 0xff   ; symbolic constant
//   start:                 ; label definition
//     mov r0, 42           ; register <- immediate (or label address)
//     mov r1, r0           ; register <- register
//     ldw r2, [r1+8]       ; word-sized load (mode-dependent width)
//     st8 [r1-1], r2       ; fixed-width store
//     add r0, r1
//     cmp r0, 10
//     jl  loop             ; conditional jumps: je jne jl jle jg jge jb jbe ja jae
//     call fib             ; direct call (relative); `call r3` is indirect
//     out 0x10, r0         ; hypercall: port out
//     ljmp prot32, pm_entry
//     hlt
//   data:
//     .quad 1, 2, 3
//     .asciz "hello"
//     .space 64
//     .align 8
//
// Immediate expressions support `number`, `'c'`, `label`, and `a+b` / `a-b`
// folding over those terms.
#ifndef SRC_ISA_ASSEMBLER_H_
#define SRC_ISA_ASSEMBLER_H_

#include <string>

#include "src/base/status.h"
#include "src/isa/image.h"

namespace visa {

// Assembles VBC source text into an Image.  The image's entry point is the
// `start` label when present, otherwise the load base.
vbase::Result<Image> Assemble(const std::string& source);

}  // namespace visa

#endif  // SRC_ISA_ASSEMBLER_H_
