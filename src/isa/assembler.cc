#include "src/isa/assembler.h"

#include <cctype>
#include <cstring>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/isa/isa.h"

namespace visa {
namespace {

struct Statement {
  int lineno = 0;
  std::string mnemonic;                // lower-cased; empty for label-only lines
  std::vector<std::string> operands;   // top-level comma-separated
  std::string raw;                     // original text for error messages
};

std::string Lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' || c == '$';
}

// Splits an operand list on top-level commas (not inside quotes or brackets).
std::vector<std::string> SplitOperands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  bool in_str = false;
  bool in_chr = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_str) {
      cur += c;
      if (c == '\\' && i + 1 < s.size()) {
        cur += s[++i];
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (in_chr) {
      cur += c;
      if (c == '\\' && i + 1 < s.size()) {
        cur += s[++i];
      } else if (c == '\'') {
        in_chr = false;
      }
      continue;
    }
    if (c == '"') {
      in_str = true;
      cur += c;
    } else if (c == '\'') {
      in_chr = true;
      cur += c;
    } else if (c == '[') {
      ++depth;
      cur += c;
    } else if (c == ']') {
      --depth;
      cur += c;
    } else if (c == ',' && depth == 0) {
      out.push_back(Trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  std::string last = Trim(cur);
  if (!last.empty()) {
    out.push_back(last);
  }
  return out;
}

std::optional<int> ParseReg(const std::string& tok) {
  std::string t = Lower(tok);
  if (t == "fp") {
    return kFp;
  }
  if (t == "sp") {
    return kSp;
  }
  if (t.size() >= 2 && t[0] == 'r') {
    int n = 0;
    for (size_t i = 1; i < t.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(t[i]))) {
        return std::nullopt;
      }
      n = n * 10 + (t[i] - '0');
    }
    if (n >= 0 && n < kNumRegs) {
      return n;
    }
  }
  return std::nullopt;
}

std::optional<Cond> ParseCond(const std::string& tok) {
  static const std::unordered_map<std::string, Cond> kMap = {
      {"eq", Cond::kEq}, {"ne", Cond::kNe}, {"lt", Cond::kLt}, {"le", Cond::kLe},
      {"gt", Cond::kGt}, {"ge", Cond::kGe}, {"b", Cond::kB},   {"be", Cond::kBe},
      {"a", Cond::kA},   {"ae", Cond::kAe},
  };
  auto it = kMap.find(Lower(tok));
  if (it == kMap.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<Mode> ParseMode(const std::string& tok) {
  std::string t = Lower(tok);
  if (t == "real16") {
    return Mode::kReal16;
  }
  if (t == "prot32") {
    return Mode::kProt32;
  }
  if (t == "long64") {
    return Mode::kLong64;
  }
  return std::nullopt;
}

// The assembler proper.
class Assembler {
 public:
  vbase::Result<Image> Run(const std::string& source) {
    if (vbase::Status st = ParseLines(source); !st.ok()) {
      return st;
    }
    if (vbase::Status st = Pass1(); !st.ok()) {
      return st;
    }
    if (vbase::Status st = Pass2(); !st.ok()) {
      return st;
    }
    if (auto it = symbols_.find("start"); it != symbols_.end()) {
      image_.entry = it->second;
    } else {
      image_.entry = image_.load_addr;
    }
    image_.symbols = {symbols_.begin(), symbols_.end()};
    return std::move(image_);
  }

 private:
  vbase::Status Err(const Statement& st, const std::string& msg) {
    return vbase::InvalidArgument("asm line " + std::to_string(st.lineno) + ": " + msg +
                                  " [" + st.raw + "]");
  }

  vbase::Status ParseLines(const std::string& source) {
    std::vector<std::string> lines;
    std::string cur;
    for (char c : source) {
      if (c == '\n') {
        lines.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    if (!cur.empty()) {
      lines.push_back(cur);
    }
    int lineno = 0;
    for (std::string& line : lines) {
      ++lineno;
      // Strip comments (not inside string literals).
      bool in_str = false;
      for (size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '"' && (i == 0 || line[i - 1] != '\\')) {
          in_str = !in_str;
        } else if ((line[i] == ';' || line[i] == '#') && !in_str) {
          line = line.substr(0, i);
          break;
        }
      }
      std::string text = Trim(line);
      if (text.empty()) {
        continue;
      }
      // Peel off leading labels ("name:").
      while (true) {
        size_t i = 0;
        while (i < text.size() && IsIdentChar(text[i])) {
          ++i;
        }
        if (i > 0 && i < text.size() && text[i] == ':') {
          Statement label_stmt;
          label_stmt.lineno = lineno;
          label_stmt.mnemonic = ":label";
          label_stmt.operands = {text.substr(0, i)};
          label_stmt.raw = text;
          stmts_.push_back(label_stmt);
          text = Trim(text.substr(i + 1));
          if (text.empty()) {
            break;
          }
          continue;
        }
        break;
      }
      if (text.empty()) {
        continue;
      }
      Statement st;
      st.lineno = lineno;
      st.raw = text;
      size_t sp = 0;
      while (sp < text.size() && !std::isspace(static_cast<unsigned char>(text[sp]))) {
        ++sp;
      }
      st.mnemonic = Lower(text.substr(0, sp));
      st.operands = SplitOperands(Trim(text.substr(sp)));
      stmts_.push_back(std::move(st));
    }
    return vbase::Status::Ok();
  }

  // Evaluates an immediate expression: term (('+'|'-') term)*.
  // In pass 1, unresolved labels evaluate to 0 (sizes never depend on them).
  vbase::Result<int64_t> EvalExpr(const Statement& st, const std::string& expr, bool pass2) {
    std::string s = Trim(expr);
    if (s.empty()) {
      return Err(st, "empty expression");
    }
    int64_t acc = 0;
    int sign = 1;
    size_t i = 0;
    bool expect_term = true;
    while (i < s.size()) {
      char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (expect_term) {
        if (c == '-') {
          sign = -sign;
          ++i;
          continue;
        }
        if (c == '+') {
          ++i;
          continue;
        }
        int64_t term = 0;
        if (c == '\'') {
          // Character literal.
          if (i + 2 < s.size() && s[i + 1] == '\\' && s[i + 3] == '\'') {
            char e = s[i + 2];
            switch (e) {
              case 'n': term = '\n'; break;
              case 't': term = '\t'; break;
              case 'r': term = '\r'; break;
              case '0': term = '\0'; break;
              case '\\': term = '\\'; break;
              case '\'': term = '\''; break;
              default: return Err(st, "bad escape in char literal");
            }
            i += 4;
          } else if (i + 2 < s.size() && s[i + 2] == '\'') {
            term = static_cast<unsigned char>(s[i + 1]);
            i += 3;
          } else {
            return Err(st, "bad char literal");
          }
        } else if (std::isdigit(static_cast<unsigned char>(c))) {
          size_t j = i;
          int base = 10;
          if (c == '0' && j + 1 < s.size() && (s[j + 1] == 'x' || s[j + 1] == 'X')) {
            base = 16;
            j += 2;
          }
          uint64_t v = 0;
          size_t start = j;
          while (j < s.size() && std::isalnum(static_cast<unsigned char>(s[j]))) {
            int d;
            char ch = static_cast<char>(std::tolower(static_cast<unsigned char>(s[j])));
            if (ch >= '0' && ch <= '9') {
              d = ch - '0';
            } else if (base == 16 && ch >= 'a' && ch <= 'f') {
              d = ch - 'a' + 10;
            } else {
              return Err(st, "bad digit in number");
            }
            v = v * static_cast<uint64_t>(base) + static_cast<uint64_t>(d);
            ++j;
          }
          if (j == start) {
            return Err(st, "bad number");
          }
          term = static_cast<int64_t>(v);
          i = j;
        } else if (IsIdentChar(c)) {
          size_t j = i;
          while (j < s.size() && IsIdentChar(s[j])) {
            ++j;
          }
          std::string name = s.substr(i, j - i);
          auto it = symbols_.find(name);
          if (it != symbols_.end()) {
            term = static_cast<int64_t>(it->second);
          } else if (pass2) {
            return Err(st, "undefined symbol: " + name);
          } else {
            term = 0;
          }
          i = j;
        } else {
          return Err(st, std::string("unexpected character '") + c + "' in expression");
        }
        acc += sign * term;
        sign = 1;
        expect_term = false;
      } else {
        if (c == '+') {
          sign = 1;
        } else if (c == '-') {
          sign = -1;
        } else {
          return Err(st, std::string("expected operator, got '") + c + "'");
        }
        expect_term = true;
        ++i;
      }
    }
    if (expect_term) {
      return Err(st, "trailing operator in expression");
    }
    return acc;
  }

  struct MemRef {
    int base = 0;
    int64_t disp = 0;
  };

  vbase::Result<MemRef> ParseMem(const Statement& st, const std::string& tok, bool pass2) {
    std::string t = Trim(tok);
    if (t.size() < 3 || t.front() != '[' || t.back() != ']') {
      return Err(st, "expected memory operand [reg+disp]");
    }
    std::string inner = Trim(t.substr(1, t.size() - 2));
    size_t i = 0;
    while (i < inner.size() && IsIdentChar(inner[i])) {
      ++i;
    }
    auto reg = ParseReg(inner.substr(0, i));
    if (!reg) {
      return Err(st, "memory operand must start with a register");
    }
    MemRef m;
    m.base = *reg;
    std::string rest = Trim(inner.substr(i));
    if (!rest.empty()) {
      if (rest[0] != '+' && rest[0] != '-') {
        return Err(st, "expected +/- displacement");
      }
      auto disp = EvalExpr(st, rest, pass2);
      if (!disp.ok()) {
        return disp.status();
      }
      m.disp = *disp;
    }
    return m;
  }

  // Parses a string literal for .ascii/.asciz.
  vbase::Result<std::string> ParseString(const Statement& st, const std::string& tok) {
    std::string t = Trim(tok);
    if (t.size() < 2 || t.front() != '"' || t.back() != '"') {
      return Err(st, "expected string literal");
    }
    std::string out;
    for (size_t i = 1; i + 1 < t.size(); ++i) {
      char c = t[i];
      if (c == '\\' && i + 2 < t.size()) {
        char e = t[++i];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case '0': out += '\0'; break;
          case '\\': out += '\\'; break;
          case '"': out += '"'; break;
          default: return Err(st, "bad string escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  // Returns the encoded size of a statement; 0 for pure directives that emit
  // nothing.  Also validates operand shapes so pass 2 can assume them.
  vbase::Result<int64_t> StatementSize(const Statement& st, uint64_t addr) {
    const std::string& m = st.mnemonic;
    const auto& ops = st.operands;
    auto is_reg = [&](size_t idx) { return idx < ops.size() && ParseReg(ops[idx]).has_value(); };

    if (m == ":label" || m == ".equ" || m == ".org") {
      return 0;
    }
    if (m == ".byte" || m == ".word" || m == ".dword" || m == ".quad") {
      int unit = m == ".byte" ? 1 : m == ".word" ? 2 : m == ".dword" ? 4 : 8;
      return static_cast<int64_t>(ops.size()) * unit;
    }
    if (m == ".ascii" || m == ".asciz") {
      auto s = ParseString(st, ops.empty() ? "" : ops[0]);
      if (!s.ok()) {
        return s.status();
      }
      return static_cast<int64_t>(s->size()) + (m == ".asciz" ? 1 : 0);
    }
    if (m == ".space") {
      auto n = EvalExpr(st, ops.empty() ? "" : ops[0], /*pass2=*/false);
      if (!n.ok()) {
        return n.status();
      }
      return *n;
    }
    if (m == ".align") {
      auto n = EvalExpr(st, ops.empty() ? "" : ops[0], /*pass2=*/false);
      if (!n.ok()) {
        return n.status();
      }
      if (*n <= 0) {
        return Err(st, ".align requires positive operand");
      }
      uint64_t a = static_cast<uint64_t>(*n);
      return static_cast<int64_t>((a - (addr % a)) % a);
    }

    // Instructions.
    if (m == "nop") return InsnSize(Op::kNop);
    if (m == "hlt") return InsnSize(Op::kHlt);
    if (m == "brk") return InsnSize(Op::kBrk);
    if (m == "ret") return InsnSize(Op::kRet);
    if (m == "mov") {
      if (ops.size() != 2 || !is_reg(0)) {
        return Err(st, "mov needs reg, reg|imm");
      }
      return is_reg(1) ? InsnSize(Op::kMovRr) : InsnSize(Op::kMovRi);
    }
    static const std::unordered_map<std::string, Op> kLoads = {
        {"ld8", Op::kLd8},   {"ld8s", Op::kLd8S},   {"ld16", Op::kLd16},
        {"ld16s", Op::kLd16S}, {"ld32", Op::kLd32}, {"ld32s", Op::kLd32S},
        {"ld64", Op::kLd64}, {"ldw", Op::kLdW},     {"lea", Op::kLea},
    };
    static const std::unordered_map<std::string, Op> kStores = {
        {"st8", Op::kSt8}, {"st16", Op::kSt16}, {"st32", Op::kSt32},
        {"st64", Op::kSt64}, {"stw", Op::kStW},
    };
    if (kLoads.count(m) != 0 || kStores.count(m) != 0) {
      return 6;
    }
    static const std::unordered_map<std::string, std::pair<Op, Op>> kAlu = {
        {"add", {Op::kAddRr, Op::kAddRi}}, {"sub", {Op::kSubRr, Op::kSubRi}},
        {"and", {Op::kAndRr, Op::kAndRi}}, {"or", {Op::kOrRr, Op::kOrRi}},
        {"xor", {Op::kXorRr, Op::kXorRi}}, {"shl", {Op::kShlRr, Op::kShlRi}},
        {"shr", {Op::kShrRr, Op::kShrRi}}, {"sar", {Op::kSarRr, Op::kSarRi}},
        {"cmp", {Op::kCmpRr, Op::kCmpRi}},
    };
    if (auto it = kAlu.find(m); it != kAlu.end()) {
      if (ops.size() != 2 || !is_reg(0)) {
        return Err(st, m + " needs reg, reg|imm");
      }
      return is_reg(1) ? InsnSize(it->second.first) : InsnSize(it->second.second);
    }
    static const std::unordered_map<std::string, Op> kRr = {
        {"mul", Op::kMulRr},   {"imul", Op::kImulRr}, {"udiv", Op::kUdivRr},
        {"idiv", Op::kIdivRr}, {"umod", Op::kUmodRr}, {"imod", Op::kImodRr},
        {"test", Op::kTestRr},
    };
    if (kRr.count(m) != 0) {
      return 2;
    }
    static const std::unordered_map<std::string, Op> kR = {
        {"not", Op::kNotR}, {"neg", Op::kNegR}, {"push", Op::kPush},
        {"pop", Op::kPop},  {"rdtsc", Op::kRdtsc}, {"lgdt", Op::kLgdt},
    };
    if (kR.count(m) != 0) {
      return 2;
    }
    if (m == "cset" || m == "wrcr" || m == "rdcr") {
      return 2;
    }
    if (m == "jmp") {
      return InsnSize(Op::kJmp);
    }
    if (m == "call") {
      if (ops.size() != 1) {
        return Err(st, "call needs one operand");
      }
      return is_reg(0) ? InsnSize(Op::kCallR) : InsnSize(Op::kCall);
    }
    static const char* kJccNames[] = {"je", "jne", "jl", "jle", "jg",
                                      "jge", "jb", "jbe", "ja", "jae"};
    for (const char* name : kJccNames) {
      if (m == name) {
        return InsnSize(Op::kJcc);
      }
    }
    if (m == "ljmp") {
      return InsnSize(Op::kLjmp);
    }
    if (m == "in" || m == "out") {
      return InsnSize(Op::kIn);
    }
    return Err(st, "unknown mnemonic: " + m);
  }

  vbase::Status Pass1() {
    uint64_t addr = image_.load_addr;
    bool emitted_any = false;
    for (const Statement& st : stmts_) {
      if (st.mnemonic == ":label") {
        if (symbols_.count(st.operands[0]) != 0) {
          return Err(st, "duplicate label: " + st.operands[0]);
        }
        symbols_[st.operands[0]] = addr;
        continue;
      }
      if (st.mnemonic == ".org") {
        if (emitted_any) {
          return Err(st, ".org must precede code");
        }
        auto v = EvalExpr(st, st.operands.empty() ? "" : st.operands[0], false);
        if (!v.ok()) {
          return v.status();
        }
        image_.load_addr = static_cast<uint64_t>(*v);
        addr = image_.load_addr;
        continue;
      }
      if (st.mnemonic == ".equ") {
        if (st.operands.size() != 2) {
          return Err(st, ".equ needs name, value");
        }
        auto v = EvalExpr(st, st.operands[1], false);
        if (!v.ok()) {
          return v.status();
        }
        symbols_[st.operands[0]] = static_cast<uint64_t>(*v);
        continue;
      }
      auto size = StatementSize(st, addr);
      if (!size.ok()) {
        return size.status();
      }
      if (*size > 0) {
        emitted_any = true;
      }
      addr += static_cast<uint64_t>(*size);
    }
    return vbase::Status::Ok();
  }

  void Emit8(uint8_t v) { image_.bytes.push_back(v); }
  void Emit16(uint16_t v) {
    Emit8(static_cast<uint8_t>(v));
    Emit8(static_cast<uint8_t>(v >> 8));
  }
  void Emit32(uint32_t v) {
    Emit16(static_cast<uint16_t>(v));
    Emit16(static_cast<uint16_t>(v >> 16));
  }
  void Emit64(uint64_t v) {
    Emit32(static_cast<uint32_t>(v));
    Emit32(static_cast<uint32_t>(v >> 32));
  }

  uint64_t CurAddr() const { return image_.load_addr + image_.bytes.size(); }

  vbase::Status Pass2() {
    for (const Statement& st : stmts_) {
      const std::string& m = st.mnemonic;
      const auto& ops = st.operands;
      if (m == ":label" || m == ".equ" || m == ".org") {
        continue;
      }
      if (m == ".byte" || m == ".word" || m == ".dword" || m == ".quad") {
        for (const std::string& o : ops) {
          auto v = EvalExpr(st, o, true);
          if (!v.ok()) {
            return v.status();
          }
          if (m == ".byte") {
            Emit8(static_cast<uint8_t>(*v));
          } else if (m == ".word") {
            Emit16(static_cast<uint16_t>(*v));
          } else if (m == ".dword") {
            Emit32(static_cast<uint32_t>(*v));
          } else {
            Emit64(static_cast<uint64_t>(*v));
          }
        }
        continue;
      }
      if (m == ".ascii" || m == ".asciz") {
        auto s = ParseString(st, ops.empty() ? "" : ops[0]);
        if (!s.ok()) {
          return s.status();
        }
        for (char c : *s) {
          Emit8(static_cast<uint8_t>(c));
        }
        if (m == ".asciz") {
          Emit8(0);
        }
        continue;
      }
      if (m == ".space") {
        auto n = EvalExpr(st, ops[0], true);
        if (!n.ok()) {
          return n.status();
        }
        for (int64_t i = 0; i < *n; ++i) {
          Emit8(0);
        }
        continue;
      }
      if (m == ".align") {
        auto n = EvalExpr(st, ops[0], true);
        if (!n.ok()) {
          return n.status();
        }
        uint64_t a = static_cast<uint64_t>(*n);
        while (CurAddr() % a != 0) {
          Emit8(0);
        }
        continue;
      }
      VB_RETURN_IF_ERROR(EmitInsn(st));
    }
    return vbase::Status::Ok();
  }

  vbase::Status EmitInsn(const Statement& st) {
    const std::string& m = st.mnemonic;
    const auto& ops = st.operands;
    auto reg = [&](size_t i) { return *ParseReg(ops[i]); };
    auto expr = [&](size_t i) { return EvalExpr(st, ops[i], true); };

    auto emit_rr = [&](Op op, int a, int b) {
      Emit8(static_cast<uint8_t>(op));
      Emit8(static_cast<uint8_t>((a << 4) | b));
    };
    auto emit_ri32 = [&](Op op, int a, int64_t imm) {
      Emit8(static_cast<uint8_t>(op));
      Emit8(static_cast<uint8_t>(a << 4));
      Emit32(static_cast<uint32_t>(static_cast<int32_t>(imm)));
    };
    auto emit_mem = [&](Op op, int a, int b, int64_t disp) {
      Emit8(static_cast<uint8_t>(op));
      Emit8(static_cast<uint8_t>((a << 4) | b));
      Emit32(static_cast<uint32_t>(static_cast<int32_t>(disp)));
    };

    if (m == "nop") { Emit8(static_cast<uint8_t>(Op::kNop)); return vbase::Status::Ok(); }
    if (m == "hlt") { Emit8(static_cast<uint8_t>(Op::kHlt)); return vbase::Status::Ok(); }
    if (m == "brk") { Emit8(static_cast<uint8_t>(Op::kBrk)); return vbase::Status::Ok(); }
    if (m == "ret") { Emit8(static_cast<uint8_t>(Op::kRet)); return vbase::Status::Ok(); }

    if (m == "mov") {
      if (auto b = ParseReg(ops[1])) {
        emit_rr(Op::kMovRr, reg(0), *b);
      } else {
        auto v = expr(1);
        if (!v.ok()) {
          return v.status();
        }
        Emit8(static_cast<uint8_t>(Op::kMovRi));
        Emit8(static_cast<uint8_t>(reg(0)));
        Emit64(static_cast<uint64_t>(*v));
      }
      return vbase::Status::Ok();
    }

    static const std::unordered_map<std::string, Op> kLoads = {
        {"ld8", Op::kLd8},   {"ld8s", Op::kLd8S},   {"ld16", Op::kLd16},
        {"ld16s", Op::kLd16S}, {"ld32", Op::kLd32}, {"ld32s", Op::kLd32S},
        {"ld64", Op::kLd64}, {"ldw", Op::kLdW},     {"lea", Op::kLea},
    };
    if (auto it = kLoads.find(m); it != kLoads.end()) {
      if (ops.size() != 2 || !ParseReg(ops[0])) {
        return Err(st, m + " needs reg, [mem]");
      }
      auto mem = ParseMem(st, ops[1], true);
      if (!mem.ok()) {
        return mem.status();
      }
      emit_mem(it->second, reg(0), mem->base, mem->disp);
      return vbase::Status::Ok();
    }
    static const std::unordered_map<std::string, Op> kStores = {
        {"st8", Op::kSt8}, {"st16", Op::kSt16}, {"st32", Op::kSt32},
        {"st64", Op::kSt64}, {"stw", Op::kStW},
    };
    if (auto it = kStores.find(m); it != kStores.end()) {
      if (ops.size() != 2 || !ParseReg(ops[1])) {
        return Err(st, m + " needs [mem], reg");
      }
      auto mem = ParseMem(st, ops[0], true);
      if (!mem.ok()) {
        return mem.status();
      }
      // Store encoding: a = base register, b = source register.
      emit_mem(it->second, mem->base, reg(1), mem->disp);
      return vbase::Status::Ok();
    }

    static const std::unordered_map<std::string, std::pair<Op, Op>> kAlu = {
        {"add", {Op::kAddRr, Op::kAddRi}}, {"sub", {Op::kSubRr, Op::kSubRi}},
        {"and", {Op::kAndRr, Op::kAndRi}}, {"or", {Op::kOrRr, Op::kOrRi}},
        {"xor", {Op::kXorRr, Op::kXorRi}}, {"shl", {Op::kShlRr, Op::kShlRi}},
        {"shr", {Op::kShrRr, Op::kShrRi}}, {"sar", {Op::kSarRr, Op::kSarRi}},
        {"cmp", {Op::kCmpRr, Op::kCmpRi}},
    };
    if (auto it = kAlu.find(m); it != kAlu.end()) {
      if (auto b = ParseReg(ops[1])) {
        emit_rr(it->second.first, reg(0), *b);
      } else {
        auto v = expr(1);
        if (!v.ok()) {
          return v.status();
        }
        emit_ri32(it->second.second, reg(0), *v);
      }
      return vbase::Status::Ok();
    }

    static const std::unordered_map<std::string, Op> kRr = {
        {"mul", Op::kMulRr},   {"imul", Op::kImulRr}, {"udiv", Op::kUdivRr},
        {"idiv", Op::kIdivRr}, {"umod", Op::kUmodRr}, {"imod", Op::kImodRr},
        {"test", Op::kTestRr},
    };
    if (auto it = kRr.find(m); it != kRr.end()) {
      if (ops.size() != 2 || !ParseReg(ops[0]) || !ParseReg(ops[1])) {
        return Err(st, m + " needs reg, reg");
      }
      emit_rr(it->second, reg(0), reg(1));
      return vbase::Status::Ok();
    }

    static const std::unordered_map<std::string, Op> kR = {
        {"not", Op::kNotR}, {"neg", Op::kNegR}, {"push", Op::kPush},
        {"pop", Op::kPop},  {"rdtsc", Op::kRdtsc}, {"lgdt", Op::kLgdt},
    };
    if (auto it = kR.find(m); it != kR.end()) {
      if (ops.size() != 1 || !ParseReg(ops[0])) {
        return Err(st, m + " needs reg");
      }
      emit_rr(it->second, reg(0), 0);
      return vbase::Status::Ok();
    }

    if (m == "cset") {
      if (ops.size() != 2 || !ParseReg(ops[0])) {
        return Err(st, "cset needs reg, cond");
      }
      auto cc = ParseCond(ops[1]);
      if (!cc) {
        return Err(st, "bad condition: " + ops[1]);
      }
      emit_rr(Op::kCset, reg(0), static_cast<int>(*cc));
      return vbase::Status::Ok();
    }
    if (m == "wrcr") {
      auto cr = expr(0);
      if (!cr.ok() || ops.size() != 2 || !ParseReg(ops[1])) {
        return Err(st, "wrcr needs crN, reg");
      }
      emit_rr(Op::kWrcr, static_cast<int>(*cr), reg(1));
      return vbase::Status::Ok();
    }
    if (m == "rdcr") {
      if (ops.size() != 2 || !ParseReg(ops[0])) {
        return Err(st, "rdcr needs reg, crN");
      }
      auto cr = expr(1);
      if (!cr.ok()) {
        return cr.status();
      }
      emit_rr(Op::kRdcr, reg(0), static_cast<int>(*cr));
      return vbase::Status::Ok();
    }

    auto emit_rel = [&](Op op, std::optional<Cond> cc, std::optional<Mode> mode,
                        const std::string& target) -> vbase::Status {
      auto v = EvalExpr(st, target, true);
      if (!v.ok()) {
        return v.status();
      }
      const int size = InsnSize(op);
      const int64_t rel = *v - static_cast<int64_t>(CurAddr() + static_cast<uint64_t>(size));
      Emit8(static_cast<uint8_t>(op));
      if (cc) {
        Emit8(static_cast<uint8_t>(*cc));
      }
      if (mode) {
        Emit8(static_cast<uint8_t>(*mode));
      }
      Emit32(static_cast<uint32_t>(static_cast<int32_t>(rel)));
      return vbase::Status::Ok();
    };

    if (m == "jmp") {
      return emit_rel(Op::kJmp, std::nullopt, std::nullopt, ops[0]);
    }
    if (m == "call") {
      if (auto r = ParseReg(ops[0])) {
        emit_rr(Op::kCallR, *r, 0);
        return vbase::Status::Ok();
      }
      return emit_rel(Op::kCall, std::nullopt, std::nullopt, ops[0]);
    }
    static const std::unordered_map<std::string, Cond> kJcc = {
        {"je", Cond::kEq}, {"jne", Cond::kNe}, {"jl", Cond::kLt}, {"jle", Cond::kLe},
        {"jg", Cond::kGt}, {"jge", Cond::kGe}, {"jb", Cond::kB},  {"jbe", Cond::kBe},
        {"ja", Cond::kA},  {"jae", Cond::kAe},
    };
    if (auto it = kJcc.find(m); it != kJcc.end()) {
      return emit_rel(Op::kJcc, it->second, std::nullopt, ops[0]);
    }
    if (m == "ljmp") {
      if (ops.size() != 2) {
        return Err(st, "ljmp needs mode, target");
      }
      auto mode = ParseMode(ops[0]);
      if (!mode) {
        return Err(st, "bad mode: " + ops[0]);
      }
      return emit_rel(Op::kLjmp, std::nullopt, *mode, ops[1]);
    }
    if (m == "in" || m == "out") {
      if (ops.size() != 2) {
        return Err(st, m + " needs two operands");
      }
      const bool is_in = m == "in";
      const std::string& reg_tok = is_in ? ops[0] : ops[1];
      const std::string& port_tok = is_in ? ops[1] : ops[0];
      auto r = ParseReg(reg_tok);
      if (!r) {
        return Err(st, m + " register operand invalid");
      }
      auto port = EvalExpr(st, port_tok, true);
      if (!port.ok()) {
        return port.status();
      }
      Emit8(static_cast<uint8_t>(is_in ? Op::kIn : Op::kOut));
      Emit16(static_cast<uint16_t>(*port));
      Emit8(static_cast<uint8_t>(*r));
      return vbase::Status::Ok();
    }
    return Err(st, "unknown mnemonic: " + m);
  }



  std::vector<Statement> stmts_;
  std::unordered_map<std::string, uint64_t> symbols_;
  Image image_;
};

}  // namespace

vbase::Result<Image> Assemble(const std::string& source) {
  Assembler assembler;
  return assembler.Run(source);
}

}  // namespace visa
