// Vespid — the prototype serverless platform of Section 7.1 (Figure 15) —
// plus the simulated container platform it is compared against.
//
// Vespid registers JavaScript (microjs) functions and runs each invocation
// in a distinct virtine through the Wasp runtime (pool + snapshot).  The
// comparison platform models a container-per-invocation OpenWhisk-style
// deployment.  Because this reproduction has no Docker/OpenWhisk, the
// container platform is an explicit analytic model (DESIGN.md §2):
// cold-start and warm-start service costs are constants calibrated to
// published container cold-start measurements.
//
// The *virtine* platform is measured, not modeled: ReplayBurstyLoad drives
// the paper's bursty open-loop pattern (ramp up, two bursts, ramp down —
// the Locust profile) through the real wasp::Executor, one virtine
// invocation per trace arrival, and lays the measured per-request service
// costs onto the trace's virtual timeline.  Both platforms emit the same
// SimResult currency over the same arrival trace (vnet::GenerateArrivalTrace
// with the same seed), so Figure 15 compares a measured virtine platform
// against the calibrated container baseline bucket for bucket.
#ifndef SRC_VNET_SERVERLESS_H_
#define SRC_VNET_SERVERLESS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/stats.h"
#include "src/base/status.h"
#include "src/isa/image.h"
#include "src/vnet/loadgen.h"
#include "src/wasp/executor.h"
#include "src/wasp/runtime.h"

namespace vnet {

// --- Bursty-load timeline (Figure 15) ---------------------------------------

struct SimPoint {
  double t_s;            // timeline bucket
  double offered_rps;    // arrivals in the bucket
  double completed_rps;  // completions in the bucket
  double mean_latency_us;
  double p99_latency_us;
  uint64_t cold_starts;
};

struct SimResult {
  std::vector<SimPoint> timeline;  // 1-second buckets
  vbase::Summary latency_us;
  uint64_t total_requests = 0;
  uint64_t total_cold_starts = 0;
};

// An executor model: how long one invocation occupies a worker, and what a
// cold start costs.
struct ExecutorModel {
  std::string name;
  double warm_service_us;   // service time with a warm instance
  double cold_extra_us;     // additional first-use cost of a new instance
  int max_instances;        // concurrency cap
  double idle_timeout_s;    // instance reclaim after idleness
};

// Runs the open-loop pattern against an executor model in virtual time
// (the container baseline; the virtine side uses Vespid::ReplayBurstyLoad).
SimResult SimulateBurstyLoad(const std::vector<LoadPhase>& phases, const ExecutorModel& model,
                             uint64_t seed = 42);

// --- Multi-tenant governance (key-scoped quotas over mixed traces) ----------

// One tenant of a multi-function trace: a registered function, its own
// arrival pattern, a scheduling class, and the payload its invocations get.
struct TenantSpec {
  std::string name;
  std::vector<LoadPhase> phases;
  wasp::KeyClass klass = wasp::KeyClass::kLatency;
  std::vector<uint8_t> payload;
};

// A merged multi-tenant arrival trace with the *measured* modeled service
// cost of one real executor invocation per arrival (mixed snapshot keys
// contending for pool shells and affine generations).  Produced once by
// Vespid::MeasureMultiTenant; governance disciplines are then evaluated
// deterministically over it by GovernTrace, so governed and ungoverned
// runs compare on identical measured services.
struct MeasuredTrace {
  std::vector<std::string> names;          // per tenant
  std::vector<wasp::KeyClass> classes;     // per tenant
  std::vector<double> arrivals_us;         // merged, ascending
  std::vector<int> tenant;                 // arrival -> tenant index
  std::vector<double> service_us;          // measured modeled service cost
  std::vector<bool> cold;                  // arrival booted instead of restored
  // Arrival's invocation died with a FaultKind (chaos injection or a real
  // guest fault).  A faulted arrival consumed real service — it occupied a
  // lane and its quota slot until it died — so GovernTrace replays it as
  // load, but counts it per tenant instead of as a completion.  May be
  // empty (hand-built traces): treated as all-false.
  std::vector<bool> faulted;
  uint64_t wall_ns = 0;                    // real elapsed time of the measuring run
};

// The admission/dequeue discipline GovernTrace applies — the executor's
// policy knobs, evaluated in virtual time so results are deterministic.
struct GovernanceOptions {
  int lanes = 2;               // virtual serving lanes
  size_t max_queue_depth = 0;  // global queued bound; 0 = unbounded
  size_t key_quota = 0;        // per-tenant queued+running cap; 0 = unlimited
  // Weighted class dequeue (one batch per `batch_weight` dequeues under
  // contention); <= 0 = no classes, strict FIFO (the ungoverned baseline).
  int batch_weight = 4;
  // Tiered quotas: per-tenant (by TenantSpec name) overrides of key_quota,
  // mirroring ExecutorOptions::key_quota_overrides.  A listed tenant uses
  // its override (0 = explicitly unlimited); unlisted tenants fall back to
  // key_quota.  Three entries (premium/standard/free) make the three-tier
  // discipline fig16 sweeps.
  std::map<std::string, size_t> key_quota_overrides = {};

  // Effective quota for `tenant` (0 = unlimited) after override resolution.
  size_t QuotaFor(const std::string& tenant) const {
    auto it = key_quota_overrides.find(tenant);
    return it != key_quota_overrides.end() ? it->second : key_quota;
  }

  // The recovery discipline: a per-tenant circuit breaker evaluated in
  // virtual time with the executor's exact state machine (EWMA over attempt
  // outcomes at completion events, count-based open -> half-open cooldown,
  // single probe).  Retry is deliberately *not* modeled here — it changes
  // the measured services, so it belongs to the measuring run; the replay
  // isolates what shedding alone does to the co-tenants.
  wasp::RecoveryOptions recovery = {};
};

// Per-tenant outcome of a governed replay.
struct TenantOutcome {
  std::string name;
  uint64_t offered = 0;        // arrivals in the trace
  uint64_t completed = 0;      // admitted and served fault-free
  uint64_t faulted = 0;        // admitted, occupied a lane, died with a fault
  double fault_rate = 0;       // faulted / offered
  uint64_t shed_quota = 0;     // rejected by the per-key quota
  uint64_t shed_overload = 0;  // rejected by the global queue bound
  uint64_t shed_breaker = 0;   // rejected by the tenant's open circuit breaker
  uint64_t breaker_opens = 0;  // times the tenant's breaker tripped open
  double shed_rate = 0;        // (shed_quota + shed_overload + shed_breaker) / offered
  double mean_queue_wait_us = 0;
  double p99_queue_wait_us = 0;  // the governance claim's currency
  double mean_latency_us = 0;    // queue wait + service
  uint64_t cold_starts = 0;
};

struct GovernedReplay {
  std::vector<TenantOutcome> tenants;  // in MeasuredTrace tenant order
  SimResult sim;                       // merged timeline over served requests
  // Jain's fairness index over per-tenant admitted fractions: 1.0 = every
  // tenant got the same share of its offered load through admission.
  double fairness_index = 0;
  double aggregate_rps = 0;  // completed requests / virtual makespan
  double makespan_s = 0;     // first arrival to last completion
};

// Applies `options` to the measured trace in virtual time: per-key quota
// and global bound at each arrival, weighted (or FIFO) dequeue onto
// `lanes` serving lanes, measured service per admitted request.
// Deterministic for a given trace.
GovernedReplay GovernTrace(const MeasuredTrace& trace, const GovernanceOptions& options);

// --- Vespid: virtine-backed function platform -------------------------------

struct ReplayOptions {
  int concurrency = 8;  // executor lanes = the platform's serving width
  uint64_t seed = 42;   // must match the simulator's to share the trace
  // Pace submissions on the real clock (sleep until each arrival's trace
  // offset) instead of dispatching the whole trace up front.  Soak-style
  // runs only: wall pacing makes the measured contention timing-dependent,
  // so it stays off for the deterministic benches.
  bool pace_wall_clock = false;
};

class Vespid {
 public:
  explicit Vespid(wasp::Runtime* runtime);

  // Registers a microjs function under `name`.
  vbase::Status Register(const std::string& name, const std::string& microjs_source);

  struct Invocation {
    std::vector<uint8_t> output;
    uint64_t modeled_cycles = 0;
    uint64_t wall_ns = 0;
    bool cold = false;    // no snapshot existed yet
    bool affine = false;  // warm start served by a snapshot-affine delta restore
    uint64_t restored_bytes = 0;  // restore copy volume (full image vs delta)
  };

  // Invokes `name` with `payload` in a fresh virtine.
  vbase::Result<Invocation> Invoke(const std::string& name,
                                   const std::vector<uint8_t>& payload);

  struct BatchResult {
    std::vector<Invocation> invocations;   // in payload order
    uint64_t wall_ns = 0;                  // real elapsed time of the batch
    uint64_t makespan_cycles = 0;          // modeled busiest-lane cycles
  };

  // Invokes `name` once per payload, running up to `concurrency` virtines
  // at a time on the wasp::Executor (the platform's burst-serving path).
  // Fails if any individual invocation fails.
  vbase::Result<BatchResult> InvokeBatch(const std::string& name,
                                         const std::vector<std::vector<uint8_t>>& payloads,
                                         int concurrency);

  struct ReplayResult {
    // Same timeline currency as SimulateBurstyLoad: per-request latency is
    // virtual queue wait plus the *measured* modeled service cost of that
    // request's real invocation, with cold starts flagged from the real
    // snapshot path (a request is cold iff its invocation found no snapshot
    // and booted from the image).
    SimResult sim;
    double measured_warm_us = 0;   // mean measured service of warm invocations
    double measured_cold_us = 0;   // mean measured service of cold invocations
    uint64_t cold_invocations = 0;
    // Invocations that died with a FaultKind (chaos injection): they still
    // occupy their virtual lane for their measured service (the shell was
    // quarantined after real work), but are excluded from the warm/cold
    // service means so fault-shortened runs cannot skew them.
    uint64_t faulted_invocations = 0;
    uint64_t wall_ns = 0;          // real elapsed time of the replay
  };

  // Replays the bursty arrival trace with one *real* executor-driven
  // invocation per arrival: submits every request to a wasp::Executor with
  // `concurrency` workers (keyed snapshot affinity engaged), measures each
  // invocation's modeled service cost and cold/warm outcome, then assembles
  // the Figure 15 timeline by queueing those measured services over
  // `concurrency` serving lanes at the trace's virtual arrival times.
  vbase::Result<ReplayResult> ReplayBurstyLoad(const std::string& name,
                                               const std::vector<LoadPhase>& phases,
                                               const std::vector<uint8_t>& payload,
                                               const ReplayOptions& options = {});

  // Merges every tenant's arrival trace (per-tenant seed derived from
  // `seed`) and drives one real executor invocation per arrival in merged
  // order — mixed snapshot keys contending for shells and affine
  // generations — recording each arrival's measured modeled service cost
  // and cold/warm outcome.  The result feeds GovernTrace, which evaluates
  // admission disciplines over it deterministically.
  vbase::Result<MeasuredTrace> MeasureMultiTenant(const std::vector<TenantSpec>& tenants,
                                                  int concurrency, uint64_t seed = 42);

 private:
  struct Fn {
    std::string name;
    visa::Image image;
  };
  const Fn* FindFunction(const std::string& name) const;

  wasp::Runtime* runtime_;
  std::vector<Fn> functions_;
};

}  // namespace vnet

#endif  // SRC_VNET_SERVERLESS_H_
