// Vespid — the prototype serverless platform of Section 7.1 (Figure 15) —
// plus the simulated container platform it is compared against.
//
// Vespid registers JavaScript (microjs) functions and runs each invocation
// in a distinct virtine through the Wasp runtime (pool + snapshot).  The
// comparison platform models a container-per-invocation OpenWhisk-style
// deployment.  Because this reproduction has no Docker/OpenWhisk, the
// container platform is an explicit analytic model (DESIGN.md §2):
// cold-start and warm-start service costs are constants calibrated to
// published container cold-start measurements, while the *virtine* platform
// costs come from real invocations measured on this machine.
//
// The bursty open-loop experiment (ramp up, two bursts, ramp down — the
// paper's Locust pattern) is evaluated in virtual time with a discrete-event
// simulator over per-request service times, which keeps the experiment
// deterministic and machine-independent.
#ifndef SRC_VNET_SERVERLESS_H_
#define SRC_VNET_SERVERLESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/stats.h"
#include "src/base/status.h"
#include "src/isa/image.h"
#include "src/wasp/runtime.h"

namespace vnet {

// --- Vespid: virtine-backed function platform -------------------------------

class Vespid {
 public:
  explicit Vespid(wasp::Runtime* runtime);

  // Registers a microjs function under `name`.
  vbase::Status Register(const std::string& name, const std::string& microjs_source);

  struct Invocation {
    std::vector<uint8_t> output;
    uint64_t modeled_cycles = 0;
    uint64_t wall_ns = 0;
    bool cold = false;    // no snapshot existed yet
    bool affine = false;  // warm start served by a snapshot-affine delta restore
    uint64_t restored_bytes = 0;  // restore copy volume (full image vs delta)
  };

  // Invokes `name` with `payload` in a fresh virtine.
  vbase::Result<Invocation> Invoke(const std::string& name,
                                   const std::vector<uint8_t>& payload);

  struct BatchResult {
    std::vector<Invocation> invocations;   // in payload order
    uint64_t wall_ns = 0;                  // real elapsed time of the batch
    uint64_t makespan_cycles = 0;          // modeled busiest-lane cycles
  };

  // Invokes `name` once per payload, running up to `concurrency` virtines
  // at a time on the wasp::Executor (the platform's burst-serving path).
  // Fails if any individual invocation fails.
  vbase::Result<BatchResult> InvokeBatch(const std::string& name,
                                         const std::vector<std::vector<uint8_t>>& payloads,
                                         int concurrency);

 private:
  struct Fn {
    std::string name;
    visa::Image image;
  };
  wasp::Runtime* runtime_;
  std::vector<Fn> functions_;
};

// --- Bursty-load simulation (Figure 15) ---------------------------------------

struct LoadPhase {
  double rps;         // arrival rate during the phase
  double duration_s;  // phase length
};

// An executor model: how long one invocation occupies a worker, and what a
// cold start costs.
struct ExecutorModel {
  std::string name;
  double warm_service_us;   // service time with a warm instance
  double cold_extra_us;     // additional first-use cost of a new instance
  int max_instances;        // concurrency cap
  double idle_timeout_s;    // instance reclaim after idleness
};

struct SimPoint {
  double t_s;            // timeline bucket
  double offered_rps;    // arrivals in the bucket
  double completed_rps;  // completions in the bucket
  double mean_latency_us;
  double p99_latency_us;
  uint64_t cold_starts;
};

struct SimResult {
  std::vector<SimPoint> timeline;  // 1-second buckets
  vbase::Summary latency_us;
  uint64_t total_requests = 0;
  uint64_t total_cold_starts = 0;
};

// Runs the open-loop pattern against an executor model in virtual time.
SimResult SimulateBurstyLoad(const std::vector<LoadPhase>& phases, const ExecutorModel& model,
                             uint64_t seed = 42);

}  // namespace vnet

#endif  // SRC_VNET_SERVERLESS_H_
