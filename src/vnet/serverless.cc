#include "src/vnet/serverless.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <queue>
#include <thread>
#include <tuple>

#include "src/base/clock.h"
#include "src/base/rng.h"
#include "src/vcc/vcc.h"
#include "src/vjs/vjs.h"
#include "src/vrt/vlibc.h"
#include "src/wasp/executor.h"

namespace vnet {

Vespid::Vespid(wasp::Runtime* runtime) : runtime_(runtime) {}

vbase::Status Vespid::Register(const std::string& name, const std::string& microjs_source) {
  auto bytecode = vjs::CompileScript(microjs_source);
  if (!bytecode.ok()) {
    return bytecode.status();
  }
  auto image = vcc::CompileProgram(
      vrt::VlibcSource() + vjs::EngineSource(*bytecode, /*teardown=*/false), "main",
      vrt::Env::kLong64);
  if (!image.ok()) {
    return image.status();
  }
  functions_.push_back(Fn{name, std::move(*image)});
  return vbase::Status::Ok();
}

const Vespid::Fn* Vespid::FindFunction(const std::string& name) const {
  for (const Fn& f : functions_) {
    if (f.name == name) {
      return &f;
    }
  }
  return nullptr;
}

namespace {

wasp::VirtineSpec MakeVespidSpec(const std::string& name, const visa::Image* image,
                                 const std::vector<uint8_t>* payload) {
  wasp::VirtineSpec spec;
  spec.image = image;
  spec.key = "vespid-" + name;
  spec.mem_size = 2ULL << 20;
  spec.policy = wasp::kPolicyManaged;
  spec.use_snapshot = true;
  spec.crt_snapshot = false;  // the engine snapshots itself after init
  spec.input = payload;
  return spec;
}

Vespid::Invocation MakeInvocation(wasp::RunOutcome&& outcome) {
  Vespid::Invocation inv;
  inv.output = std::move(outcome.output);
  inv.modeled_cycles = outcome.stats.total_cycles;
  inv.wall_ns = outcome.stats.total_ns;
  inv.cold = !outcome.stats.restored_snapshot;
  inv.affine = outcome.stats.affine_restore;
  inv.restored_bytes = outcome.stats.restored_bytes;
  return inv;
}

// One served request on the virtual timeline, however its completion time
// was produced (analytic model or measured replay).
struct ServedEvent {
  double arrival_us;
  double done_us;
  bool cold;
};

// Folds served events (in arrival order) into the Figure 15 timeline: 1 s
// buckets with offered/completed rates, per-arrival-bucket latency stats,
// and cold-start counts.  Shared by the simulator and the replay so the two
// halves of the figure can never drift in bucketing rules.
SimResult AssembleSimResult(const std::vector<ServedEvent>& events) {
  SimResult result;
  std::vector<double> latencies;
  latencies.reserve(events.size());
  std::map<int64_t, SimPoint> buckets;
  std::map<int64_t, std::vector<double>> bucket_lats;
  for (const ServedEvent& ev : events) {
    const double latency = ev.done_us - ev.arrival_us;
    latencies.push_back(latency);
    const int64_t bucket = static_cast<int64_t>(ev.arrival_us / 1e6);
    SimPoint& point = buckets[bucket];
    point.t_s = static_cast<double>(bucket);
    point.offered_rps += 1;
    point.mean_latency_us += latency;  // sum; normalized below
    if (ev.cold) {
      ++point.cold_starts;
      ++result.total_cold_starts;
    }
    const int64_t done_bucket = static_cast<int64_t>(ev.done_us / 1e6);
    buckets[done_bucket].t_s = static_cast<double>(done_bucket);
    buckets[done_bucket].completed_rps += 1;
    ++result.total_requests;
    bucket_lats[bucket].push_back(latency);
  }
  for (auto& [bucket, point] : buckets) {
    if (point.offered_rps > 0) {
      point.mean_latency_us /= point.offered_rps;
    }
    auto it = bucket_lats.find(bucket);
    if (it != bucket_lats.end()) {
      point.p99_latency_us = vbase::Quantile(it->second, 0.99);
    }
    result.timeline.push_back(point);
  }
  result.latency_us = vbase::Summarize(latencies);
  return result;
}

}  // namespace

vbase::Result<Vespid::Invocation> Vespid::Invoke(const std::string& name,
                                                 const std::vector<uint8_t>& payload) {
  const Fn* fn = FindFunction(name);
  if (fn == nullptr) {
    return vbase::NotFound("no such function: " + name);
  }
  vbase::WallTimer timer;
  wasp::VirtineSpec spec = MakeVespidSpec(fn->name, &fn->image, &payload);
  wasp::RunOutcome outcome = runtime_->Invoke(spec);
  if (!outcome.status.ok()) {
    return outcome.status;
  }
  Invocation inv = MakeInvocation(std::move(outcome));
  inv.wall_ns = timer.ElapsedNanos();
  return inv;
}

vbase::Result<Vespid::BatchResult> Vespid::InvokeBatch(
    const std::string& name, const std::vector<std::vector<uint8_t>>& payloads,
    int concurrency) {
  const Fn* fn = FindFunction(name);
  if (fn == nullptr) {
    return vbase::NotFound("no such function: " + name);
  }
  std::vector<wasp::VirtineSpec> specs;
  specs.reserve(payloads.size());
  for (const std::vector<uint8_t>& payload : payloads) {
    specs.push_back(MakeVespidSpec(fn->name, &fn->image, &payload));
  }
  wasp::Executor::BatchStats stats;
  std::vector<wasp::RunOutcome> outcomes =
      wasp::Executor::Run(runtime_, specs, concurrency, &stats);
  BatchResult batch;
  batch.invocations.reserve(outcomes.size());
  for (wasp::RunOutcome& outcome : outcomes) {
    if (!outcome.status.ok()) {
      return outcome.status;
    }
    batch.invocations.push_back(MakeInvocation(std::move(outcome)));
  }
  batch.wall_ns = stats.wall_ns;
  batch.makespan_cycles = stats.MakespanCycles();
  return batch;
}

vbase::Result<Vespid::ReplayResult> Vespid::ReplayBurstyLoad(
    const std::string& name, const std::vector<LoadPhase>& phases,
    const std::vector<uint8_t>& payload, const ReplayOptions& options) {
  const Fn* fn = FindFunction(name);
  if (fn == nullptr) {
    return vbase::NotFound("no such function: " + name);
  }
  const std::vector<double> arrivals = GenerateArrivalTrace(phases, options.seed);
  const int lanes = std::max(options.concurrency, 1);

  // --- Measure: one real invocation per trace arrival -----------------------
  // Every request goes through the executor (bounded worker pool, keyed
  // snapshot affinity), so pool contention, snapshot restores, and the cold
  // first touch are the real platform's, not a model's.  Dispatch is open
  // loop: all requests are submitted up front, in arrival order.
  vbase::WallTimer timer;
  ReplayResult replay;
  std::vector<double> service_us;
  std::vector<bool> cold;
  {
    wasp::Executor executor(runtime_, wasp::ExecutorOptions{lanes, 0, true});
    std::vector<std::future<wasp::RunOutcome>> futures;
    futures.reserve(arrivals.size());
    const auto pace_origin = std::chrono::steady_clock::now();
    for (size_t i = 0; i < arrivals.size(); ++i) {
      if (options.pace_wall_clock) {
        // Soak mode: dispatch each arrival at its trace offset on the real
        // clock instead of submitting the whole trace up front.
        std::this_thread::sleep_until(
            pace_origin + std::chrono::microseconds(static_cast<int64_t>(arrivals[i])));
      }
      futures.push_back(executor.Submit(MakeVespidSpec(fn->name, &fn->image, &payload)));
    }
    service_us.reserve(futures.size());
    cold.reserve(futures.size());
    double warm_sum = 0;
    double cold_sum = 0;
    uint64_t warm_count = 0;
    for (std::future<wasp::RunOutcome>& f : futures) {
      wasp::RunOutcome outcome = f.get();
      if (outcome.fault != wasp::FaultKind::kNone) {
        // One invocation died (chaos or a real guest fault); the platform
        // did not.  It still occupied a lane for its measured service, so it
        // replays as load — but a fault-shortened run must not skew the
        // warm/cold service means.
        ++replay.faulted_invocations;
        service_us.push_back(vbase::CyclesToMicros(outcome.stats.total_cycles));
        cold.push_back(!outcome.stats.restored_snapshot);
        continue;
      }
      if (!outcome.status.ok()) {
        return outcome.status;
      }
      const double us = vbase::CyclesToMicros(outcome.stats.total_cycles);
      const bool was_cold = !outcome.stats.restored_snapshot;
      service_us.push_back(us);
      cold.push_back(was_cold);
      if (was_cold) {
        ++replay.cold_invocations;
        cold_sum += us;
      } else {
        ++warm_count;
        warm_sum += us;
      }
    }
    replay.measured_warm_us = warm_count > 0 ? warm_sum / static_cast<double>(warm_count) : 0;
    replay.measured_cold_us =
        replay.cold_invocations > 0 ? cold_sum / static_cast<double>(replay.cold_invocations)
                                    : 0;
  }
  replay.wall_ns = timer.ElapsedNanos();

  // --- Assemble: measured services on the trace's virtual timeline ----------
  // `lanes` serving lanes in virtual time, FIFO in arrival order: request i
  // starts at max(arrival, earliest lane free) and occupies its lane for its
  // *measured* service time (a cold invocation's measured cost already
  // carries the boot-instead-of-restore extra).  The lane discipline is the
  // shared LaneSchedule (fig13's closed loop uses the same one); bucketing
  // is shared with SimulateBurstyLoad via AssembleSimResult.
  LaneSchedule schedule(lanes);
  std::vector<ServedEvent> events;
  events.reserve(arrivals.size());
  for (size_t i = 0; i < arrivals.size(); ++i) {
    events.push_back(
        ServedEvent{arrivals[i], schedule.Place(arrivals[i], service_us[i]), cold[i]});
  }
  replay.sim = AssembleSimResult(events);
  return replay;
}

vbase::Result<MeasuredTrace> Vespid::MeasureMultiTenant(const std::vector<TenantSpec>& tenants,
                                                        int concurrency, uint64_t seed) {
  if (tenants.empty()) {
    return vbase::InvalidArgument("MeasureMultiTenant needs at least one tenant");
  }
  MeasuredTrace trace;
  std::vector<const Fn*> fns;
  fns.reserve(tenants.size());
  for (const TenantSpec& tenant : tenants) {
    const Fn* fn = FindFunction(tenant.name);
    if (fn == nullptr) {
      return vbase::NotFound("no such function: " + tenant.name);
    }
    fns.push_back(fn);
    trace.names.push_back(tenant.name);
    trace.classes.push_back(tenant.klass);
  }

  // Merge the tenants' arrival traces (per-tenant seed: each tenant's
  // jitter is independent, and the merged order is deterministic — ties
  // break on tenant index via the pair comparison).
  std::vector<std::pair<double, int>> merged;
  for (size_t i = 0; i < tenants.size(); ++i) {
    for (double at : GenerateArrivalTrace(tenants[i].phases, seed + i)) {
      merged.emplace_back(at, static_cast<int>(i));
    }
  }
  std::sort(merged.begin(), merged.end());
  trace.arrivals_us.reserve(merged.size());
  trace.tenant.reserve(merged.size());
  for (const auto& [at, idx] : merged) {
    trace.arrivals_us.push_back(at);
    trace.tenant.push_back(idx);
  }

  // One real invocation per merged arrival, in arrival order: the mixed
  // snapshot keys contend for pool shells and affine generations exactly as
  // the production mix would, so each request's measured modeled service
  // carries real cross-tenant restore effects (affine hit vs full copy).
  vbase::WallTimer timer;
  {
    wasp::Executor executor(runtime_,
                            wasp::ExecutorOptions{std::max(concurrency, 1), 0, true});
    std::vector<std::future<wasp::RunOutcome>> futures;
    futures.reserve(merged.size());
    for (const auto& [at, idx] : merged) {
      const size_t t = static_cast<size_t>(idx);
      futures.push_back(executor.Submit(
          MakeVespidSpec(fns[t]->name, &fns[t]->image, &tenants[t].payload),
          tenants[t].klass));
    }
    trace.service_us.reserve(futures.size());
    trace.cold.reserve(futures.size());
    trace.faulted.reserve(futures.size());
    for (std::future<wasp::RunOutcome>& f : futures) {
      wasp::RunOutcome outcome = f.get();
      // A faulted invocation is trace data, not a measuring failure: it
      // consumed a lane and real service before its shell was quarantined,
      // so it replays as load with the faulted flag set.  Only a clean
      // host-side error (no fault classified) aborts the measuring run.
      if (outcome.fault == wasp::FaultKind::kNone && !outcome.status.ok()) {
        return outcome.status;
      }
      trace.service_us.push_back(vbase::CyclesToMicros(outcome.stats.total_cycles));
      trace.cold.push_back(!outcome.stats.restored_snapshot);
      trace.faulted.push_back(outcome.fault != wasp::FaultKind::kNone);
    }
  }
  trace.wall_ns = timer.ElapsedNanos();
  return trace;
}

GovernedReplay GovernTrace(const MeasuredTrace& trace, const GovernanceOptions& options) {
  const int lanes = std::max(options.lanes, 1);
  // Same floor as the executor: weight 1 would pick batch on every
  // contended dequeue (priority inversion), so positive weights start at
  // alternation.
  const int batch_weight =
      options.batch_weight > 0 ? std::max(options.batch_weight, 2) : options.batch_weight;
  const size_t n = trace.arrivals_us.size();
  GovernedReplay replay;
  replay.tenants.resize(trace.names.size());
  for (size_t t = 0; t < trace.names.size(); ++t) {
    replay.tenants[t].name = trace.names[t];
  }

  // Virtual-time replica of the executor's admission and dequeue policy:
  // at each arrival, quota then global bound decide admission; lanes drain
  // the two class queues with the same weighted (or FIFO) pick rule the
  // workers use.  Everything is integer/double arithmetic over the measured
  // services, so a given trace always governs identically.
  std::vector<double> lane_free(static_cast<size_t>(lanes), 0.0);
  std::deque<size_t> queues[2];  // by KeyClass, request indices in arrival order
  std::vector<size_t> tenant_load(trace.names.size(), 0);  // queued + running
  // Tier-resolved effective quota per tenant (0 = unlimited), fixed for the
  // whole replay.
  std::vector<size_t> tenant_quota(trace.names.size(), 0);
  for (size_t t = 0; t < trace.names.size(); ++t) {
    tenant_quota[t] = options.QuotaFor(trace.names[t]);
  }
  // (done_us, tenant, faulted, probe) — faulted/probe ride along so the
  // recovery discipline can feed the breaker at each virtual completion.
  using Completion = std::tuple<double, size_t, bool, bool>;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<Completion>>
      completions;
  int batch_credit = 0;

  std::vector<double> start_us(n, -1.0);  // -1 = shed
  std::vector<double> done_us(n, -1.0);

  // Per-tenant virtual breaker: the executor's exact state machine (EWMA at
  // completion, count-based cooldown, single half-open probe) evaluated over
  // virtual completion events instead of worker-thread ones.
  const wasp::RecoveryOptions& ro = options.recovery;
  struct VBreaker {
    double ewma = 0.0;
    uint64_t samples = 0;
    wasp::BreakerState state = wasp::BreakerState::kClosed;
    uint64_t sheds = 0;
    bool probe_in_flight = false;
  };
  std::vector<VBreaker> breakers(trace.names.size());
  std::vector<char> is_probe(n, 0);
  auto record_attempt = [&](size_t t, bool faulted, bool probe) {
    VBreaker& b = breakers[t];
    b.ewma = ro.breaker_alpha * (faulted ? 1.0 : 0.0) + (1.0 - ro.breaker_alpha) * b.ewma;
    ++b.samples;
    if (!ro.breaker_enabled) {
      return;
    }
    if (probe) {
      b.probe_in_flight = false;
      if (faulted) {
        b.state = wasp::BreakerState::kOpen;
        b.sheds = 0;
        ++replay.tenants[t].breaker_opens;
      } else {
        b.state = wasp::BreakerState::kClosed;
        b.ewma = 0.0;  // clean slate, as in the executor
      }
      return;
    }
    if (b.state == wasp::BreakerState::kClosed && b.samples >= ro.breaker_min_samples &&
        b.ewma >= ro.breaker_open_threshold) {
      b.state = wasp::BreakerState::kOpen;
      b.sheds = 0;
      ++replay.tenants[t].breaker_opens;
    }
  };

  auto advance_completions = [&](double now) {
    while (!completions.empty() && std::get<0>(completions.top()) <= now) {
      const auto [done, t, faulted, probe] = completions.top();
      (void)done;
      --tenant_load[t];
      record_attempt(t, faulted, probe);
      completions.pop();
    }
  };
  auto pick_class = [&]() -> size_t {
    const bool have_latency = !queues[0].empty();
    const bool have_batch = !queues[1].empty();
    if (have_latency && have_batch) {
      if (batch_weight <= 0) {
        return queues[0].front() < queues[1].front() ? 0 : 1;  // FIFO by arrival
      }
      if (batch_credit >= batch_weight - 1) {
        batch_credit = 0;
        return 1;
      }
      ++batch_credit;
      return 0;
    }
    return have_latency ? 0 : 1;
  };
  // Dispatches queued requests onto lanes that free up strictly before
  // `horizon` (infinity for the final drain).
  auto dispatch_until = [&](double horizon) {
    while (!queues[0].empty() || !queues[1].empty()) {
      const size_t lane = static_cast<size_t>(
          std::min_element(lane_free.begin(), lane_free.end()) - lane_free.begin());
      if (lane_free[lane] >= horizon) {
        break;
      }
      const size_t cls = pick_class();
      const size_t idx = queues[cls].front();
      queues[cls].pop_front();
      const double start = std::max(lane_free[lane], trace.arrivals_us[idx]);
      start_us[idx] = start;
      done_us[idx] = start + trace.service_us[idx];
      lane_free[lane] = done_us[idx];
      const bool faulted = idx < trace.faulted.size() && trace.faulted[idx];
      completions.emplace(done_us[idx], static_cast<size_t>(trace.tenant[idx]), faulted,
                          is_probe[idx] != 0);
    }
  };

  for (size_t i = 0; i < n; ++i) {
    const double now = trace.arrivals_us[i];
    const size_t t = static_cast<size_t>(trace.tenant[i]);
    dispatch_until(now);
    advance_completions(now);
    TenantOutcome& tenant = replay.tenants[t];
    ++tenant.offered;
    // Breaker first (mirrors Executor::Enqueue): an open breaker is the
    // cheapest shed, checked before any queue or quota math.
    if (ro.breaker_enabled) {
      VBreaker& b = breakers[t];
      bool admit = true;
      bool probe = false;
      if (b.state == wasp::BreakerState::kOpen) {
        if (b.sheds >= ro.breaker_open_sheds) {
          b.state = wasp::BreakerState::kHalfOpen;
          b.probe_in_flight = true;
          probe = true;
        } else {
          ++b.sheds;
          admit = false;
        }
      } else if (b.state == wasp::BreakerState::kHalfOpen) {
        if (b.probe_in_flight) {
          admit = false;
        } else {
          b.probe_in_flight = true;
          probe = true;
        }
      }
      if (!admit) {
        ++tenant.shed_breaker;
        continue;
      }
      if (probe) {
        is_probe[i] = 1;
      }
    }
    // A probe shed by a later admission stage hands back its reservation, or
    // the breaker would wait forever on a probe that never ran.
    auto release_probe = [&] {
      if (is_probe[i] != 0) {
        breakers[t].probe_in_flight = false;
        is_probe[i] = 0;
      }
    };
    // Quota next: the per-key signal beats the global one so a hot key is
    // told to back off, not that the server is full.
    if (tenant_quota[t] > 0 && tenant_load[t] >= tenant_quota[t]) {
      ++tenant.shed_quota;
      release_probe();
      continue;
    }
    if (options.max_queue_depth > 0 &&
        queues[0].size() + queues[1].size() >= options.max_queue_depth) {
      ++tenant.shed_overload;
      release_probe();
      continue;
    }
    queues[static_cast<size_t>(trace.classes[t])].push_back(i);
    ++tenant_load[t];
  }
  dispatch_until(std::numeric_limits<double>::infinity());

  // Per-tenant aggregation + the merged Figure-15-currency timeline.  A
  // faulted arrival held its lane for its measured service (the load is
  // real), but it is a casualty, not a completion: it counts per tenant as
  // faulted and stays out of the wait/latency distributions — so a fault
  // storm on one key shows up as that tenant's fault_rate while the
  // co-tenants' percentiles measure only what they actually experienced.
  std::vector<ServedEvent> events;
  events.reserve(n);
  std::vector<std::vector<double>> waits(trace.names.size());
  double last_done = 0;
  uint64_t total_completed = 0;
  for (size_t i = 0; i < n; ++i) {
    if (start_us[i] < 0) {
      continue;  // shed
    }
    const size_t t = static_cast<size_t>(trace.tenant[i]);
    TenantOutcome& tenant = replay.tenants[t];
    if (i < trace.faulted.size() && trace.faulted[i]) {
      ++tenant.faulted;
      last_done = std::max(last_done, done_us[i]);  // the lane was occupied
      continue;
    }
    ++tenant.completed;
    ++total_completed;
    if (trace.cold[i]) {
      ++tenant.cold_starts;
    }
    const double wait = start_us[i] - trace.arrivals_us[i];
    waits[t].push_back(wait);
    tenant.mean_queue_wait_us += wait;
    tenant.mean_latency_us += done_us[i] - trace.arrivals_us[i];
    last_done = std::max(last_done, done_us[i]);
    events.push_back(ServedEvent{trace.arrivals_us[i], done_us[i], trace.cold[i]});
  }
  double fairness_num = 0;
  double fairness_den = 0;
  double active_tenants = 0;  // tenants with offered load; idle ones don't dilute
  for (size_t t = 0; t < replay.tenants.size(); ++t) {
    TenantOutcome& tenant = replay.tenants[t];
    if (tenant.completed > 0) {
      tenant.mean_queue_wait_us /= static_cast<double>(tenant.completed);
      tenant.mean_latency_us /= static_cast<double>(tenant.completed);
      tenant.p99_queue_wait_us = vbase::Quantile(waits[t], 0.99);
    }
    if (tenant.offered > 0) {
      tenant.shed_rate = static_cast<double>(tenant.shed_quota + tenant.shed_overload +
                                             tenant.shed_breaker) /
                         static_cast<double>(tenant.offered);
      tenant.fault_rate =
          static_cast<double>(tenant.faulted) / static_cast<double>(tenant.offered);
      const double admitted_fraction =
          static_cast<double>(tenant.completed) / static_cast<double>(tenant.offered);
      fairness_num += admitted_fraction;
      fairness_den += admitted_fraction * admitted_fraction;
      active_tenants += 1;
    }
  }
  replay.fairness_index =
      fairness_den > 0 ? (fairness_num * fairness_num) / (active_tenants * fairness_den)
                       : 0;
  // First arrival to last completion, as documented — a trace slice that
  // starts late must not count its idle prefix against throughput.
  const double origin_us = n > 0 ? trace.arrivals_us.front() : 0;
  replay.makespan_s = total_completed > 0 ? (last_done - origin_us) / 1e6 : 0;
  replay.aggregate_rps =
      replay.makespan_s > 0 ? static_cast<double>(total_completed) / replay.makespan_s : 0;
  replay.sim = AssembleSimResult(events);
  return replay;
}

SimResult SimulateBurstyLoad(const std::vector<LoadPhase>& phases, const ExecutorModel& model,
                             uint64_t seed) {
  const std::vector<double> arrivals_us = GenerateArrivalTrace(phases, seed);

  // Instance state: busy-until time and last-used time per instance.
  struct Instance {
    double busy_until_us = 0;
    double last_used_us = 0;
  };
  std::vector<Instance> instances;
  std::vector<ServedEvent> events;
  events.reserve(arrivals_us.size());

  for (const double arrival : arrivals_us) {
    // Reclaim idle instances (container platforms tear warm instances down).
    instances.erase(std::remove_if(instances.begin(), instances.end(),
                                   [&](const Instance& inst) {
                                     return inst.busy_until_us < arrival &&
                                            arrival - inst.last_used_us >
                                                model.idle_timeout_s * 1e6;
                                   }),
                    instances.end());

    // Pick the warm instance that frees up soonest; spawn cold if allowed.
    double start_us;
    bool cold = false;
    Instance* chosen = nullptr;
    for (Instance& inst : instances) {
      if (chosen == nullptr || inst.busy_until_us < chosen->busy_until_us) {
        chosen = &inst;
      }
    }
    const bool can_spawn = static_cast<int>(instances.size()) < model.max_instances;
    if (chosen == nullptr ||
        (chosen->busy_until_us > arrival && can_spawn)) {
      instances.push_back(Instance{});
      chosen = &instances.back();
      cold = true;
      start_us = arrival;
    } else {
      start_us = std::max(arrival, chosen->busy_until_us);
    }
    const double service = model.warm_service_us + (cold ? model.cold_extra_us : 0);
    const double done = start_us + service;
    chosen->busy_until_us = done;
    chosen->last_used_us = done;
    events.push_back(ServedEvent{arrival, done, cold});
  }
  return AssembleSimResult(events);
}

}  // namespace vnet
