#include "src/vnet/serverless.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>

#include "src/base/clock.h"
#include "src/base/rng.h"
#include "src/vcc/vcc.h"
#include "src/vjs/vjs.h"
#include "src/vrt/vlibc.h"
#include "src/wasp/executor.h"

namespace vnet {

Vespid::Vespid(wasp::Runtime* runtime) : runtime_(runtime) {}

vbase::Status Vespid::Register(const std::string& name, const std::string& microjs_source) {
  auto bytecode = vjs::CompileScript(microjs_source);
  if (!bytecode.ok()) {
    return bytecode.status();
  }
  auto image = vcc::CompileProgram(
      vrt::VlibcSource() + vjs::EngineSource(*bytecode, /*teardown=*/false), "main",
      vrt::Env::kLong64);
  if (!image.ok()) {
    return image.status();
  }
  functions_.push_back(Fn{name, std::move(*image)});
  return vbase::Status::Ok();
}

namespace {

wasp::VirtineSpec MakeVespidSpec(const std::string& name, const visa::Image* image,
                                 const std::vector<uint8_t>* payload) {
  wasp::VirtineSpec spec;
  spec.image = image;
  spec.key = "vespid-" + name;
  spec.mem_size = 2ULL << 20;
  spec.policy = wasp::kPolicyManaged;
  spec.use_snapshot = true;
  spec.crt_snapshot = false;  // the engine snapshots itself after init
  spec.input = payload;
  return spec;
}

Vespid::Invocation MakeInvocation(wasp::RunOutcome&& outcome) {
  Vespid::Invocation inv;
  inv.output = std::move(outcome.output);
  inv.modeled_cycles = outcome.stats.total_cycles;
  inv.wall_ns = outcome.stats.total_ns;
  inv.cold = !outcome.stats.restored_snapshot;
  inv.affine = outcome.stats.affine_restore;
  inv.restored_bytes = outcome.stats.restored_bytes;
  return inv;
}

}  // namespace

vbase::Result<Vespid::Invocation> Vespid::Invoke(const std::string& name,
                                                 const std::vector<uint8_t>& payload) {
  const Fn* fn = nullptr;
  for (const Fn& f : functions_) {
    if (f.name == name) {
      fn = &f;
      break;
    }
  }
  if (fn == nullptr) {
    return vbase::NotFound("no such function: " + name);
  }
  vbase::WallTimer timer;
  wasp::VirtineSpec spec = MakeVespidSpec(fn->name, &fn->image, &payload);
  wasp::RunOutcome outcome = runtime_->Invoke(spec);
  if (!outcome.status.ok()) {
    return outcome.status;
  }
  Invocation inv = MakeInvocation(std::move(outcome));
  inv.wall_ns = timer.ElapsedNanos();
  return inv;
}

vbase::Result<Vespid::BatchResult> Vespid::InvokeBatch(
    const std::string& name, const std::vector<std::vector<uint8_t>>& payloads,
    int concurrency) {
  const Fn* fn = nullptr;
  for (const Fn& f : functions_) {
    if (f.name == name) {
      fn = &f;
      break;
    }
  }
  if (fn == nullptr) {
    return vbase::NotFound("no such function: " + name);
  }
  std::vector<wasp::VirtineSpec> specs;
  specs.reserve(payloads.size());
  for (const std::vector<uint8_t>& payload : payloads) {
    specs.push_back(MakeVespidSpec(fn->name, &fn->image, &payload));
  }
  wasp::Executor::BatchStats stats;
  std::vector<wasp::RunOutcome> outcomes =
      wasp::Executor::Run(runtime_, specs, concurrency, &stats);
  BatchResult batch;
  batch.invocations.reserve(outcomes.size());
  for (wasp::RunOutcome& outcome : outcomes) {
    if (!outcome.status.ok()) {
      return outcome.status;
    }
    batch.invocations.push_back(MakeInvocation(std::move(outcome)));
  }
  batch.wall_ns = stats.wall_ns;
  batch.makespan_cycles = stats.MakespanCycles();
  return batch;
}

SimResult SimulateBurstyLoad(const std::vector<LoadPhase>& phases, const ExecutorModel& model,
                             uint64_t seed) {
  // Generate arrival times (uniform spacing with +/-25% jitter within each
  // phase so bursts are not perfectly synchronized).
  vbase::Rng rng(seed);
  std::vector<double> arrivals_us;
  double t = 0;
  for (const LoadPhase& phase : phases) {
    const double end = t + phase.duration_s * 1e6;
    if (phase.rps <= 0) {
      t = end;
      continue;
    }
    const double gap = 1e6 / phase.rps;
    double at = t;
    while (at < end) {
      arrivals_us.push_back(at + gap * 0.25 * (rng.NextDouble() - 0.5));
      at += gap;
    }
    t = end;
  }
  std::sort(arrivals_us.begin(), arrivals_us.end());

  // Instance state: busy-until time and last-used time per instance.
  struct Instance {
    double busy_until_us = 0;
    double last_used_us = 0;
  };
  std::vector<Instance> instances;
  SimResult result;
  std::vector<double> latencies;
  std::map<int64_t, SimPoint> buckets;

  for (const double arrival : arrivals_us) {
    // Reclaim idle instances (container platforms tear warm instances down).
    instances.erase(std::remove_if(instances.begin(), instances.end(),
                                   [&](const Instance& inst) {
                                     return inst.busy_until_us < arrival &&
                                            arrival - inst.last_used_us >
                                                model.idle_timeout_s * 1e6;
                                   }),
                    instances.end());

    // Pick the warm instance that frees up soonest; spawn cold if allowed.
    double start_us;
    bool cold = false;
    Instance* chosen = nullptr;
    for (Instance& inst : instances) {
      if (chosen == nullptr || inst.busy_until_us < chosen->busy_until_us) {
        chosen = &inst;
      }
    }
    const bool can_spawn = static_cast<int>(instances.size()) < model.max_instances;
    if (chosen == nullptr ||
        (chosen->busy_until_us > arrival && can_spawn)) {
      instances.push_back(Instance{});
      chosen = &instances.back();
      cold = true;
      start_us = arrival;
    } else {
      start_us = std::max(arrival, chosen->busy_until_us);
    }
    const double service = model.warm_service_us + (cold ? model.cold_extra_us : 0);
    const double done = start_us + service;
    chosen->busy_until_us = done;
    chosen->last_used_us = done;

    const double latency = done - arrival;
    latencies.push_back(latency);
    const int64_t bucket = static_cast<int64_t>(arrival / 1e6);
    SimPoint& point = buckets[bucket];
    point.t_s = static_cast<double>(bucket);
    point.offered_rps += 1;
    point.mean_latency_us += latency;  // sum; normalized below
    if (cold) {
      ++point.cold_starts;
      ++result.total_cold_starts;
    }
    const int64_t done_bucket = static_cast<int64_t>(done / 1e6);
    buckets[done_bucket].t_s = static_cast<double>(done_bucket);
    buckets[done_bucket].completed_rps += 1;
    ++result.total_requests;
  }

  // Normalize buckets and compute per-bucket p99.
  std::map<int64_t, std::vector<double>> bucket_lats;
  {
    size_t i = 0;
    for (const double arrival : arrivals_us) {
      bucket_lats[static_cast<int64_t>(arrival / 1e6)].push_back(latencies[i++]);
    }
  }
  for (auto& [bucket, point] : buckets) {
    if (point.offered_rps > 0) {
      point.mean_latency_us /= point.offered_rps;
    }
    auto it = bucket_lats.find(bucket);
    if (it != bucket_lats.end()) {
      point.p99_latency_us = vbase::Quantile(it->second, 0.99);
    }
    result.timeline.push_back(point);
  }
  result.latency_us = vbase::Summarize(latencies);
  return result;
}

}  // namespace vnet
