#include "src/vnet/serverless.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/base/clock.h"
#include "src/base/rng.h"
#include "src/vcc/vcc.h"
#include "src/vjs/vjs.h"
#include "src/vrt/vlibc.h"
#include "src/wasp/executor.h"

namespace vnet {

Vespid::Vespid(wasp::Runtime* runtime) : runtime_(runtime) {}

vbase::Status Vespid::Register(const std::string& name, const std::string& microjs_source) {
  auto bytecode = vjs::CompileScript(microjs_source);
  if (!bytecode.ok()) {
    return bytecode.status();
  }
  auto image = vcc::CompileProgram(
      vrt::VlibcSource() + vjs::EngineSource(*bytecode, /*teardown=*/false), "main",
      vrt::Env::kLong64);
  if (!image.ok()) {
    return image.status();
  }
  functions_.push_back(Fn{name, std::move(*image)});
  return vbase::Status::Ok();
}

const Vespid::Fn* Vespid::FindFunction(const std::string& name) const {
  for (const Fn& f : functions_) {
    if (f.name == name) {
      return &f;
    }
  }
  return nullptr;
}

namespace {

wasp::VirtineSpec MakeVespidSpec(const std::string& name, const visa::Image* image,
                                 const std::vector<uint8_t>* payload) {
  wasp::VirtineSpec spec;
  spec.image = image;
  spec.key = "vespid-" + name;
  spec.mem_size = 2ULL << 20;
  spec.policy = wasp::kPolicyManaged;
  spec.use_snapshot = true;
  spec.crt_snapshot = false;  // the engine snapshots itself after init
  spec.input = payload;
  return spec;
}

Vespid::Invocation MakeInvocation(wasp::RunOutcome&& outcome) {
  Vespid::Invocation inv;
  inv.output = std::move(outcome.output);
  inv.modeled_cycles = outcome.stats.total_cycles;
  inv.wall_ns = outcome.stats.total_ns;
  inv.cold = !outcome.stats.restored_snapshot;
  inv.affine = outcome.stats.affine_restore;
  inv.restored_bytes = outcome.stats.restored_bytes;
  return inv;
}

// One served request on the virtual timeline, however its completion time
// was produced (analytic model or measured replay).
struct ServedEvent {
  double arrival_us;
  double done_us;
  bool cold;
};

// Folds served events (in arrival order) into the Figure 15 timeline: 1 s
// buckets with offered/completed rates, per-arrival-bucket latency stats,
// and cold-start counts.  Shared by the simulator and the replay so the two
// halves of the figure can never drift in bucketing rules.
SimResult AssembleSimResult(const std::vector<ServedEvent>& events) {
  SimResult result;
  std::vector<double> latencies;
  latencies.reserve(events.size());
  std::map<int64_t, SimPoint> buckets;
  std::map<int64_t, std::vector<double>> bucket_lats;
  for (const ServedEvent& ev : events) {
    const double latency = ev.done_us - ev.arrival_us;
    latencies.push_back(latency);
    const int64_t bucket = static_cast<int64_t>(ev.arrival_us / 1e6);
    SimPoint& point = buckets[bucket];
    point.t_s = static_cast<double>(bucket);
    point.offered_rps += 1;
    point.mean_latency_us += latency;  // sum; normalized below
    if (ev.cold) {
      ++point.cold_starts;
      ++result.total_cold_starts;
    }
    const int64_t done_bucket = static_cast<int64_t>(ev.done_us / 1e6);
    buckets[done_bucket].t_s = static_cast<double>(done_bucket);
    buckets[done_bucket].completed_rps += 1;
    ++result.total_requests;
    bucket_lats[bucket].push_back(latency);
  }
  for (auto& [bucket, point] : buckets) {
    if (point.offered_rps > 0) {
      point.mean_latency_us /= point.offered_rps;
    }
    auto it = bucket_lats.find(bucket);
    if (it != bucket_lats.end()) {
      point.p99_latency_us = vbase::Quantile(it->second, 0.99);
    }
    result.timeline.push_back(point);
  }
  result.latency_us = vbase::Summarize(latencies);
  return result;
}

}  // namespace

vbase::Result<Vespid::Invocation> Vespid::Invoke(const std::string& name,
                                                 const std::vector<uint8_t>& payload) {
  const Fn* fn = FindFunction(name);
  if (fn == nullptr) {
    return vbase::NotFound("no such function: " + name);
  }
  vbase::WallTimer timer;
  wasp::VirtineSpec spec = MakeVespidSpec(fn->name, &fn->image, &payload);
  wasp::RunOutcome outcome = runtime_->Invoke(spec);
  if (!outcome.status.ok()) {
    return outcome.status;
  }
  Invocation inv = MakeInvocation(std::move(outcome));
  inv.wall_ns = timer.ElapsedNanos();
  return inv;
}

vbase::Result<Vespid::BatchResult> Vespid::InvokeBatch(
    const std::string& name, const std::vector<std::vector<uint8_t>>& payloads,
    int concurrency) {
  const Fn* fn = FindFunction(name);
  if (fn == nullptr) {
    return vbase::NotFound("no such function: " + name);
  }
  std::vector<wasp::VirtineSpec> specs;
  specs.reserve(payloads.size());
  for (const std::vector<uint8_t>& payload : payloads) {
    specs.push_back(MakeVespidSpec(fn->name, &fn->image, &payload));
  }
  wasp::Executor::BatchStats stats;
  std::vector<wasp::RunOutcome> outcomes =
      wasp::Executor::Run(runtime_, specs, concurrency, &stats);
  BatchResult batch;
  batch.invocations.reserve(outcomes.size());
  for (wasp::RunOutcome& outcome : outcomes) {
    if (!outcome.status.ok()) {
      return outcome.status;
    }
    batch.invocations.push_back(MakeInvocation(std::move(outcome)));
  }
  batch.wall_ns = stats.wall_ns;
  batch.makespan_cycles = stats.MakespanCycles();
  return batch;
}

vbase::Result<Vespid::ReplayResult> Vespid::ReplayBurstyLoad(
    const std::string& name, const std::vector<LoadPhase>& phases,
    const std::vector<uint8_t>& payload, const ReplayOptions& options) {
  const Fn* fn = FindFunction(name);
  if (fn == nullptr) {
    return vbase::NotFound("no such function: " + name);
  }
  const std::vector<double> arrivals = GenerateArrivalTrace(phases, options.seed);
  const int lanes = std::max(options.concurrency, 1);

  // --- Measure: one real invocation per trace arrival -----------------------
  // Every request goes through the executor (bounded worker pool, keyed
  // snapshot affinity), so pool contention, snapshot restores, and the cold
  // first touch are the real platform's, not a model's.  Dispatch is open
  // loop: all requests are submitted up front, in arrival order.
  vbase::WallTimer timer;
  ReplayResult replay;
  std::vector<double> service_us;
  std::vector<bool> cold;
  {
    wasp::Executor executor(runtime_, wasp::ExecutorOptions{lanes, 0, true});
    std::vector<std::future<wasp::RunOutcome>> futures;
    futures.reserve(arrivals.size());
    for (size_t i = 0; i < arrivals.size(); ++i) {
      futures.push_back(executor.Submit(MakeVespidSpec(fn->name, &fn->image, &payload)));
    }
    service_us.reserve(futures.size());
    cold.reserve(futures.size());
    double warm_sum = 0;
    double cold_sum = 0;
    for (std::future<wasp::RunOutcome>& f : futures) {
      wasp::RunOutcome outcome = f.get();
      if (!outcome.status.ok()) {
        return outcome.status;
      }
      const double us = vbase::CyclesToMicros(outcome.stats.total_cycles);
      const bool was_cold = !outcome.stats.restored_snapshot;
      service_us.push_back(us);
      cold.push_back(was_cold);
      if (was_cold) {
        ++replay.cold_invocations;
        cold_sum += us;
      } else {
        warm_sum += us;
      }
    }
    const uint64_t warm_count = service_us.size() - replay.cold_invocations;
    replay.measured_warm_us = warm_count > 0 ? warm_sum / static_cast<double>(warm_count) : 0;
    replay.measured_cold_us =
        replay.cold_invocations > 0 ? cold_sum / static_cast<double>(replay.cold_invocations)
                                    : 0;
  }
  replay.wall_ns = timer.ElapsedNanos();

  // --- Assemble: measured services on the trace's virtual timeline ----------
  // `lanes` serving lanes in virtual time, FIFO in arrival order: request i
  // starts at max(arrival, earliest lane free) and occupies its lane for its
  // *measured* service time (a cold invocation's measured cost already
  // carries the boot-instead-of-restore extra).  The lane discipline is the
  // shared LaneSchedule (fig13's closed loop uses the same one); bucketing
  // is shared with SimulateBurstyLoad via AssembleSimResult.
  LaneSchedule schedule(lanes);
  std::vector<ServedEvent> events;
  events.reserve(arrivals.size());
  for (size_t i = 0; i < arrivals.size(); ++i) {
    events.push_back(
        ServedEvent{arrivals[i], schedule.Place(arrivals[i], service_us[i]), cold[i]});
  }
  replay.sim = AssembleSimResult(events);
  return replay;
}

SimResult SimulateBurstyLoad(const std::vector<LoadPhase>& phases, const ExecutorModel& model,
                             uint64_t seed) {
  const std::vector<double> arrivals_us = GenerateArrivalTrace(phases, seed);

  // Instance state: busy-until time and last-used time per instance.
  struct Instance {
    double busy_until_us = 0;
    double last_used_us = 0;
  };
  std::vector<Instance> instances;
  std::vector<ServedEvent> events;
  events.reserve(arrivals_us.size());

  for (const double arrival : arrivals_us) {
    // Reclaim idle instances (container platforms tear warm instances down).
    instances.erase(std::remove_if(instances.begin(), instances.end(),
                                   [&](const Instance& inst) {
                                     return inst.busy_until_us < arrival &&
                                            arrival - inst.last_used_us >
                                                model.idle_timeout_s * 1e6;
                                   }),
                    instances.end());

    // Pick the warm instance that frees up soonest; spawn cold if allowed.
    double start_us;
    bool cold = false;
    Instance* chosen = nullptr;
    for (Instance& inst : instances) {
      if (chosen == nullptr || inst.busy_until_us < chosen->busy_until_us) {
        chosen = &inst;
      }
    }
    const bool can_spawn = static_cast<int>(instances.size()) < model.max_instances;
    if (chosen == nullptr ||
        (chosen->busy_until_us > arrival && can_spawn)) {
      instances.push_back(Instance{});
      chosen = &instances.back();
      cold = true;
      start_us = arrival;
    } else {
      start_us = std::max(arrival, chosen->busy_until_us);
    }
    const double service = model.warm_service_us + (cold ? model.cold_extra_us : 0);
    const double done = start_us + service;
    chosen->busy_until_us = done;
    chosen->last_used_us = done;
    events.push_back(ServedEvent{arrival, done, cold});
  }
  return AssembleSimResult(events);
}

}  // namespace vnet
