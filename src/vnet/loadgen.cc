#include "src/vnet/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>

#include "src/base/clock.h"
#include "src/base/rng.h"
#include "src/vnet/http.h"

namespace vnet {
namespace {

// Harmonic-mean throughput + latency summary over the collected samples.
void FinalizeLoadResult(LoadResult* result) {
  std::vector<double> rps;
  rps.reserve(result->latencies_us.size());
  for (double lat : result->latencies_us) {
    if (lat > 0) {
      rps.push_back(1e6 / lat);
    }
  }
  result->harmonic_mean_rps = vbase::HarmonicMean(rps);
  result->latency = vbase::Summarize(result->latencies_us);
}

}  // namespace

LoadResult RunClosedLoop(int workers, int requests_per_worker, const RequestFn& fn) {
  LoadResult result;
  std::mutex mu;
  vbase::WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      std::vector<double> local;
      uint64_t local_failures = 0;
      local.reserve(static_cast<size_t>(requests_per_worker));
      for (int i = 0; i < requests_per_worker; ++i) {
        const double latency = fn();
        if (latency < 0) {
          ++local_failures;
        } else {
          local.push_back(latency);
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      result.latencies_us.insert(result.latencies_us.end(), local.begin(), local.end());
      result.failures += local_failures;
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  result.wall_seconds = static_cast<double>(timer.ElapsedNanos()) / 1e9;
  FinalizeLoadResult(&result);
  return result;
}

namespace {

int ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;
  }
  return true;
}

// Reads one full response (head + Content-Length body) off the socket into
// *stream, consuming it; leftover bytes stay for the next response.
// Returns the status code, or -1 on transport/framing failure.
int ReadOneResponse(int fd, std::string* stream) {
  char buf[4096];
  while (true) {
    auto head = FrameResponseHead(*stream);
    if (head.ok()) {
      const size_t total = head->head_bytes + head->content_length;
      if (stream->size() >= total) {
        stream->erase(0, total);
        return head->status;
      }
    } else if (head.status().code() != vbase::Code::kFailedPrecondition) {
      return -1;  // malformed response head
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      stream->append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return -1;  // EOF or error mid-response
  }
}

}  // namespace

LoadResult RunSocketClosedLoop(const SocketLoadOptions& options) {
  LoadResult result;
  std::mutex mu;
  vbase::WallTimer timer;
  const int per_conn = std::max(1, options.requests_per_connection);
  const uint64_t deadline_ns =
      options.duration_s > 0 ? static_cast<uint64_t>(options.duration_s * 1e9) : 0;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(std::max(1, options.clients)));
  for (int c = 0; c < std::max(1, options.clients); ++c) {
    threads.emplace_back([&] {
      std::vector<double> local;
      uint64_t local_failures = 0;
      int budget = options.requests_per_client;
      const auto spent = [&]() -> bool {
        if (deadline_ns > 0) {
          return timer.ElapsedNanos() >= deadline_ns;
        }
        return budget <= 0;
      };
      while (!spent()) {
        const int fd = ConnectLoopback(options.port);
        if (fd < 0) {
          ++local_failures;
          if (deadline_ns == 0) {
            --budget;
          }
          continue;
        }
        std::string stream;
        for (int k = 0; k < per_conn && !spent(); ++k) {
          const bool last = k + 1 == per_conn;
          const std::string request = "GET " + options.target +
                                      " HTTP/1.1\r\nHost: bench\r\n" +
                                      (last ? "Connection: close\r\n" : "") + "\r\n";
          vbase::WallTimer rt;
          int status = -1;
          if (SendAll(fd, request)) {
            status = ReadOneResponse(fd, &stream);
          }
          if (deadline_ns == 0) {
            --budget;
          }
          if (status < 0 || status >= 400) {
            ++local_failures;
            break;  // reconnect: the connection state is unknown
          }
          local.push_back(static_cast<double>(rt.ElapsedNanos()) / 1e3);
        }
        ::close(fd);
      }
      std::lock_guard<std::mutex> lock(mu);
      result.latencies_us.insert(result.latencies_us.end(), local.begin(), local.end());
      result.failures += local_failures;
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  result.wall_seconds = static_cast<double>(timer.ElapsedNanos()) / 1e9;
  FinalizeLoadResult(&result);
  return result;
}

LaneSchedule::LaneSchedule(int lanes)
    : lane_free_us_(static_cast<size_t>(std::max(lanes, 1)), 0.0) {}

double LaneSchedule::Place(double earliest_start_us, double service_us) {
  // Earliest-free lane, ties broken on index: deterministic for a given
  // placement sequence.
  const size_t lane = static_cast<size_t>(
      std::min_element(lane_free_us_.begin(), lane_free_us_.end()) - lane_free_us_.begin());
  const double done = std::max(earliest_start_us, lane_free_us_[lane]) + service_us;
  lane_free_us_[lane] = done;
  return done;
}

LoadResult ClosedLoopVirtualTime(int clients, int lanes,
                                 const std::vector<double>& services_us) {
  LoadResult result;
  const size_t n_clients = static_cast<size_t>(std::max(clients, 1));
  // Earliest-ready client issues the next request; it starts on the
  // earliest-free lane.  Ties break on index, so the schedule (and every
  // latency) is deterministic for a given service vector.
  std::vector<double> client_ready(n_clients, 0.0);
  LaneSchedule schedule(lanes);
  result.latencies_us.reserve(services_us.size());
  double end_us = 0;
  for (const double service : services_us) {
    const size_t c = static_cast<size_t>(
        std::min_element(client_ready.begin(), client_ready.end()) - client_ready.begin());
    if (service < 0) {
      ++result.failures;  // failed request: the client retries immediately
      continue;
    }
    const double done = schedule.Place(client_ready[c], service);
    result.latencies_us.push_back(done - client_ready[c]);
    client_ready[c] = done;
    end_us = std::max(end_us, done);
  }
  result.wall_seconds = end_us / 1e6;  // virtual seconds of the schedule
  FinalizeLoadResult(&result);
  return result;
}

std::vector<double> GenerateArrivalTrace(const std::vector<LoadPhase>& phases,
                                         uint64_t seed) {
  vbase::Rng rng(seed);
  std::vector<double> arrivals_us;
  double t = 0;
  for (const LoadPhase& phase : phases) {
    const double end = t + phase.duration_s * 1e6;
    if (phase.rps <= 0) {
      t = end;
      continue;
    }
    const double gap = 1e6 / phase.rps;
    double at = t;
    while (at < end) {
      arrivals_us.push_back(at + gap * 0.25 * (rng.NextDouble() - 0.5));
      at += gap;
    }
    t = end;
  }
  std::sort(arrivals_us.begin(), arrivals_us.end());
  return arrivals_us;
}

TraceResult ReplayTrace(const std::vector<LoadPhase>& phases, const AsyncRequestFn& fn,
                        uint64_t seed) {
  TraceResult result;
  result.arrivals_us = GenerateArrivalTrace(phases, seed);
  vbase::WallTimer timer;
  std::vector<std::future<double>> futures;
  futures.reserve(result.arrivals_us.size());
  for (size_t i = 0; i < result.arrivals_us.size(); ++i) {
    futures.push_back(fn(i));
  }
  result.service_us.reserve(futures.size());
  std::vector<double> ok_services;
  ok_services.reserve(futures.size());
  for (std::future<double>& f : futures) {
    const double service = f.valid() ? f.get() : -1.0;
    result.service_us.push_back(service);
    if (service < 0) {
      ++result.failures;
    } else {
      ok_services.push_back(service);
    }
  }
  result.wall_seconds = static_cast<double>(timer.ElapsedNanos()) / 1e9;
  result.service = vbase::Summarize(ok_services);
  return result;
}

}  // namespace vnet
