#include "src/vnet/loadgen.h"

#include <mutex>
#include <thread>

#include "src/base/clock.h"

namespace vnet {

LoadResult RunClosedLoop(int workers, int requests_per_worker, const RequestFn& fn) {
  LoadResult result;
  std::mutex mu;
  vbase::WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      std::vector<double> local;
      uint64_t local_failures = 0;
      local.reserve(static_cast<size_t>(requests_per_worker));
      for (int i = 0; i < requests_per_worker; ++i) {
        const double latency = fn();
        if (latency < 0) {
          ++local_failures;
        } else {
          local.push_back(latency);
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      result.latencies_us.insert(result.latencies_us.end(), local.begin(), local.end());
      result.failures += local_failures;
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  result.wall_seconds = static_cast<double>(timer.ElapsedNanos()) / 1e9;
  std::vector<double> rps;
  rps.reserve(result.latencies_us.size());
  for (double lat : result.latencies_us) {
    if (lat > 0) {
      rps.push_back(1e6 / lat);
    }
  }
  result.harmonic_mean_rps = vbase::HarmonicMean(rps);
  result.latency = vbase::Summarize(result.latencies_us);
  return result;
}

}  // namespace vnet
