// Minimal HTTP/1.x request parsing and response building (the substrate for
// the paper's echo server, static-file server, and serverless front end).
#ifndef SRC_VNET_HTTP_H_
#define SRC_VNET_HTTP_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/base/status.h"

namespace vnet {

struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // Case-insensitive header lookup; empty string when absent.
  std::string Header(const std::string& name) const;
  // Case-insensitive presence check; true even for an empty value (which
  // Header() cannot distinguish from an absent header).
  bool HasHeader(const std::string& name) const;
};

// Parses a complete request (head + optional Content-Length body) from a
// byte buffer.  Returns kFailedPrecondition("incomplete") when more bytes
// are needed — callers accumulate and retry.
vbase::Result<HttpRequest> ParseRequest(const std::string& data);

// Serializes a response with Content-Length and the given extra headers.
std::string BuildResponse(int status, const std::string& body,
                          const std::vector<std::pair<std::string, std::string>>& headers = {});

// Same, but with a caller-supplied reason phrase in the status line (the
// serving front end answers guest faults with the FaultKind name, e.g.
// "HTTP/1.1 500 guest-trap", so a client or log scraper can tell an
// isolated guest fault from a host-side failure without a body schema).
// Control characters (including CR/LF) are stripped from the phrase so an
// untrusted detail string can never split the status line into headers.
std::string BuildResponseWithReason(int status, const std::string& reason,
                                    const std::string& body,
                                    const std::vector<std::pair<std::string, std::string>>& headers = {});

// Status reason phrases ("OK", "Not Found", ...).
const char* ReasonPhrase(int status);

}  // namespace vnet

#endif  // SRC_VNET_HTTP_H_
