// Minimal HTTP/1.x request parsing and response building (the substrate for
// the paper's echo server, static-file server, and serverless front end).
//
// Keep-alive streams: FrameRequest is the incremental entry point — it
// consumes exactly one request from the front of a byte stream and reports
// how many bytes it ate, so pipelined/back-to-back requests on one
// connection split at the correct header+body boundaries instead of being
// parsed "one request per buffer".  Smuggling-shaped inputs (conflicting
// Content-Length values, a bare CR inside the head, Transfer-Encoding we do
// not implement) are rejected outright: on a reused connection a framing
// disagreement between two parsers is an attack primitive, not a nit.
#ifndef SRC_VNET_HTTP_H_
#define SRC_VNET_HTTP_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/base/status.h"

namespace vnet {

struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // Case-insensitive header lookup; empty string when absent.
  std::string Header(const std::string& name) const;
  // Case-insensitive presence check; true even for an empty value (which
  // Header() cannot distinguish from an absent header).
  bool HasHeader(const std::string& name) const;
};

// One framed request plus the exact byte count it consumed from the front of
// the stream: data[consumed:] is the start of the next pipelined request.
struct FramedRequest {
  HttpRequest request;
  size_t consumed = 0;
};

// Frames exactly one request off the front of `data`.  Returns
// kFailedPrecondition("incomplete ...") when more bytes are needed — callers
// accumulate and retry — and kInvalidArgument for malformed or
// smuggling-shaped input (the connection should answer 400 and close).
vbase::Result<FramedRequest> FrameRequest(const std::string& data);

// Parses a complete request (head + optional Content-Length body) from a
// byte buffer, ignoring any trailing bytes (FrameRequest without the
// consumed-byte accounting — the one-shot legacy entry point).
vbase::Result<HttpRequest> ParseRequest(const std::string& data);

// Total byte length (head + declared body) of the first request in `data`,
// available as soon as the head is complete — lets a front end enforce its
// body cap before a single body byte has been read.  kFailedPrecondition
// while the head is still incomplete; kInvalidArgument on a malformed head
// or smuggling-shaped framing headers.
vbase::Result<size_t> RequestBytesNeeded(const std::string& data);

// Keep-alive decision for a parsed request: HTTP/1.1 defaults to persistent
// unless "Connection: close"; HTTP/1.0 is persistent only with an explicit
// "Connection: keep-alive".  Token matching is case-insensitive and
// comma-list-aware.
bool WantKeepAlive(const HttpRequest& request);

// A framed response head (the listener and the socket client both need to
// know where one response ends on a reused connection).
struct HttpResponseHead {
  int status = 0;
  std::string version;
  std::vector<std::pair<std::string, std::string>> headers;
  size_t head_bytes = 0;       // bytes through the terminating CRLFCRLF
  uint64_t content_length = 0; // 0 when absent
};

// Frames a response head off the front of `data`.  kFailedPrecondition when
// the terminating CRLFCRLF has not arrived yet; kInvalidArgument on a
// malformed status line or a non-numeric Content-Length.  The full response
// occupies head_bytes + content_length bytes of the stream.
vbase::Result<HttpResponseHead> FrameResponseHead(const std::string& data);

// Serializes a response with Content-Length and the given extra headers.
std::string BuildResponse(int status, const std::string& body,
                          const std::vector<std::pair<std::string, std::string>>& headers = {});

// Same, but with a caller-supplied reason phrase in the status line (the
// serving front end answers guest faults with the FaultKind name, e.g.
// "HTTP/1.1 500 guest-trap", so a client or log scraper can tell an
// isolated guest fault from a host-side failure without a body schema).
// Control characters (including CR/LF) are stripped from the phrase so an
// untrusted detail string can never split the status line into headers.
std::string BuildResponseWithReason(int status, const std::string& reason,
                                    const std::string& body,
                                    const std::vector<std::pair<std::string, std::string>>& headers = {});

// Status reason phrases ("OK", "Not Found", ...).
const char* ReasonPhrase(int status);

}  // namespace vnet

#endif  // SRC_VNET_HTTP_H_
