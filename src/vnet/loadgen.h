// Load generation: a Locust-like workload driver (the paper generates its
// Figure 13/15 load with Locust and a custom request generator).
//
// Closed-loop mode: N worker threads issue requests back to back (Figure
// 13's localhost generator).  Results aggregate per-request latencies and
// the harmonic-mean throughput the paper reports.
#ifndef SRC_VNET_LOADGEN_H_
#define SRC_VNET_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/stats.h"

namespace vnet {

// Issues one request; returns its latency in microseconds (modeled or wall,
// the caller decides the currency) or a negative value on failure.
using RequestFn = std::function<double()>;

struct LoadResult {
  std::vector<double> latencies_us;
  uint64_t failures = 0;
  double wall_seconds = 0;
  // Requests per second computed from the latency samples as the paper does
  // for Figure 13b: harmonic mean of per-request throughput (1e6/latency).
  double harmonic_mean_rps = 0;
  vbase::Summary latency;
};

// Runs `requests_per_worker` sequential requests on each of `workers`
// threads.  RequestFn must be thread-safe.
LoadResult RunClosedLoop(int workers, int requests_per_worker, const RequestFn& fn);

}  // namespace vnet

#endif  // SRC_VNET_LOADGEN_H_
