// Load generation: a Locust-like workload driver (the paper generates its
// Figure 13/15 load with Locust and a custom request generator).
//
// Closed-loop mode: N worker threads issue requests back to back (Figure
// 13's localhost generator).  Results aggregate per-request latencies and
// the harmonic-mean throughput the paper reports.
//
// Open-loop mode: ReplayTrace drives one dispatch per arrival of a
// deterministic arrival trace (uniform spacing with ±12.5% jitter inside each
// phase — the paper's bursty Locust profile) without ever waiting for a
// completion, so bursts land on the server at full width and admission
// control / queueing is what absorbs them.  The same generator feeds the
// Figure 15 simulator and replay, so modeled and measured platforms see an
// identical request stream.
#ifndef SRC_VNET_LOADGEN_H_
#define SRC_VNET_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <future>
#include <vector>

#include "src/base/stats.h"

namespace vnet {

// Issues one request; returns its latency in microseconds (modeled or wall,
// the caller decides the currency) or a negative value on failure.
using RequestFn = std::function<double()>;

// One phase of an open-loop arrival pattern (e.g. ramp, burst, ramp).
struct LoadPhase {
  double rps;         // arrival rate during the phase
  double duration_s;  // phase length
};

struct LoadResult {
  std::vector<double> latencies_us;
  uint64_t failures = 0;
  double wall_seconds = 0;
  // Requests per second computed from the latency samples as the paper does
  // for Figure 13b: harmonic mean of per-request throughput (1e6/latency).
  double harmonic_mean_rps = 0;
  vbase::Summary latency;
};

// Runs `requests_per_worker` sequential requests on each of `workers`
// threads.  RequestFn must be thread-safe.
LoadResult RunClosedLoop(int workers, int requests_per_worker, const RequestFn& fn);

// Real-socket closed loop against a vnet::Listener on 127.0.0.1.
struct SocketLoadOptions {
  uint16_t port = 0;
  int clients = 4;               // concurrent client threads
  int requests_per_client = 64;  // per-thread request budget (fixed-count mode)
  // The connection-reuse axis: requests issued per TCP connection before
  // reconnecting.  1 = connection-per-request; the last request of each
  // connection carries "Connection: close".
  int requests_per_connection = 1;
  std::string target = "/static.html";
  // > 0: wall-clock-paced soak — every client loops until the deadline
  // instead of counting to requests_per_client.
  double duration_s = 0;
};

// Each client thread connects, issues requests_per_connection keep-alive
// requests per connection (framing responses with FrameResponseHead), and
// reconnects until its budget (or the soak deadline) is spent.  Latencies
// are wall microseconds per request; a transport or framing error counts as
// a failure and forces a reconnect.  wall_seconds spans the whole loop, so
// latencies_us.size() / wall_seconds is the measured socket RPS.
LoadResult RunSocketClosedLoop(const SocketLoadOptions& options);

// Virtual-time lane scheduler shared by the closed loop below and the
// Figure 15 replay: each placed request starts on the earliest-free of N
// serving lanes, no earlier than its own earliest-start time, and occupies
// the lane for its service time.  One implementation, so the fig13 and
// fig15 currencies cannot drift.
class LaneSchedule {
 public:
  explicit LaneSchedule(int lanes);
  // Returns the request's completion time (start + service).
  double Place(double earliest_start_us, double service_us);

 private:
  std::vector<double> lane_free_us_;
};

// Deterministic virtual-time closed loop: `clients` logical clients issue
// requests back to back over `lanes` serving lanes; request i consumes
// services_us[i] of lane time (measured service costs — e.g. the modeled
// cycles of real invocations — consumed in order; negative entries count as
// failures and occupy no lane time).  Per-request latency is virtual queue
// wait plus service, so the result scales with the lane count even on an
// oversubscribed host where wall time cannot express lane parallelism.
// This is the deterministic currency of the Figure 13 lane sweep, the
// closed-loop sibling of fig9's modeled makespan.
LoadResult ClosedLoopVirtualTime(int clients, int lanes,
                                 const std::vector<double>& services_us);

// Deterministic arrival offsets (microseconds, ascending) for the open-loop
// phases: uniform spacing within each phase with ±12.5% jitter (a
// quarter-gap uniform window) so bursts are not perfectly synchronized.
// Shared by the Figure 15 simulator and the
// executor-driven replay so both see the same trace for a given seed.
std::vector<double> GenerateArrivalTrace(const std::vector<LoadPhase>& phases,
                                         uint64_t seed = 42);

// Dispatches request `index` of the trace (e.g. submits a connection to the
// ConcurrentHttpServer) and returns a future resolving to its service
// latency in microseconds, negative on failure.
using AsyncRequestFn = std::function<std::future<double>(size_t index)>;

struct TraceResult {
  std::vector<double> arrivals_us;  // the virtual timeline of the trace
  std::vector<double> service_us;   // per-request measured service (neg = failure)
  uint64_t failures = 0;
  double wall_seconds = 0;          // real elapsed time of the replay
  vbase::Summary service;           // over successful requests
};

// Open-loop trace replay: dispatches fn(i) for every arrival in trace order
// without waiting on completions (the submitted-to executor's admission
// policy provides the backpressure), then harvests every future.  Arrivals
// define the virtual timeline reported alongside the measured services;
// dispatch itself is immediate, so the trace's burst width is preserved.
TraceResult ReplayTrace(const std::vector<LoadPhase>& phases, const AsyncRequestFn& fn,
                        uint64_t seed = 42);

}  // namespace vnet

#endif  // SRC_VNET_LOADGEN_H_
