#include "src/vnet/http.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace vnet {
namespace {

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

}  // namespace

std::string HttpRequest::Header(const std::string& name) const {
  const std::string lower = ToLower(name);
  for (const auto& [key, value] : headers) {
    if (ToLower(key) == lower) {
      return value;
    }
  }
  return "";
}

bool HttpRequest::HasHeader(const std::string& name) const {
  const std::string lower = ToLower(name);
  for (const auto& [key, value] : headers) {
    if (ToLower(key) == lower) {
      return true;
    }
  }
  return false;
}

vbase::Result<HttpRequest> ParseRequest(const std::string& data) {
  const size_t head_end = data.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return vbase::FailedPrecondition("incomplete request head");
  }
  HttpRequest req;
  size_t pos = 0;
  size_t line_end = data.find("\r\n", pos);
  const std::string request_line = data.substr(pos, line_end - pos);
  {
    std::istringstream is(request_line);
    if (!(is >> req.method >> req.target >> req.version)) {
      return vbase::InvalidArgument("malformed request line: " + request_line);
    }
    if (req.version.rfind("HTTP/", 0) != 0) {
      return vbase::InvalidArgument("bad HTTP version: " + req.version);
    }
  }
  pos = line_end + 2;
  while (pos < head_end) {
    line_end = data.find("\r\n", pos);
    if (line_end == std::string::npos || line_end > head_end) {
      line_end = head_end;
    }
    const std::string line = data.substr(pos, line_end - pos);
    pos = line_end + 2;
    if (line.empty()) {
      break;
    }
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return vbase::InvalidArgument("malformed header line: " + line);
    }
    req.headers.emplace_back(Trim(line.substr(0, colon)), Trim(line.substr(colon + 1)));
  }
  // Body.
  const std::string cl = req.Header("content-length");
  if (!cl.empty()) {
    uint64_t want = 0;
    for (char c : cl) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return vbase::InvalidArgument("bad content-length");
      }
      want = want * 10 + static_cast<uint64_t>(c - '0');
    }
    const size_t body_start = head_end + 4;
    if (data.size() - body_start < want) {
      return vbase::FailedPrecondition("incomplete body");
    }
    req.body = data.substr(body_start, want);
  }
  return req;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string BuildResponse(int status, const std::string& body,
                          const std::vector<std::pair<std::string, std::string>>& headers) {
  return BuildResponseWithReason(status, ReasonPhrase(status), body, headers);
}

std::string BuildResponseWithReason(int status, const std::string& reason,
                                    const std::string& body,
                                    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << " ";
  // The reason phrase may come from an untrusted detail string (a fault
  // message); a CR/LF — or any other control byte — embedded there would
  // terminate the status line early and let the remainder masquerade as
  // response headers.  Strip control characters rather than reject: the
  // phrase is informational only.
  for (const char c : reason) {
    if (static_cast<unsigned char>(c) >= 0x20 && c != 0x7f) {
      os << c;
    }
  }
  os << "\r\n";
  os << "Content-Length: " << body.size() << "\r\n";
  for (const auto& [key, value] : headers) {
    os << key << ": " << value << "\r\n";
  }
  os << "\r\n" << body;
  return os.str();
}

}  // namespace vnet
