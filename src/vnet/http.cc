#include "src/vnet/http.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace vnet {
namespace {

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

// Every CR inside the head must be the start of a CRLF and every LF the end
// of one.  A bare CR (or bare LF) is how two parsers that "helpfully" accept
// loose line endings end up framing one stream two different ways — the
// request-smuggling primitive — so on a reused connection it is a hard 400.
bool HeadLineEndingsStrict(const std::string& data, size_t head_end) {
  for (size_t i = 0; i < head_end + 4 && i < data.size(); ++i) {
    if (data[i] == '\r' && (i + 1 >= data.size() || data[i + 1] != '\n')) {
      return false;
    }
    if (data[i] == '\n' && (i == 0 || data[i - 1] != '\r')) {
      return false;
    }
  }
  return true;
}

// Strict non-empty digit-string parse with an overflow guard; Content-Length
// is attacker-controlled framing state, so anything non-canonical fails.
bool ParseContentLength(const std::string& value, uint64_t* out) {
  if (value.empty() || value.size() > 18) {
    return false;
  }
  uint64_t want = 0;
  for (char c : value) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return false;
    }
    want = want * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = want;
  return true;
}

}  // namespace

std::string HttpRequest::Header(const std::string& name) const {
  const std::string lower = ToLower(name);
  for (const auto& [key, value] : headers) {
    if (ToLower(key) == lower) {
      return value;
    }
  }
  return "";
}

bool HttpRequest::HasHeader(const std::string& name) const {
  const std::string lower = ToLower(name);
  for (const auto& [key, value] : headers) {
    if (ToLower(key) == lower) {
      return true;
    }
  }
  return false;
}

namespace {

// Parses and validates the head of the first request in `data`, leaving the
// declared body length in `*want` (with `*have_length` saying whether a
// Content-Length header was present at all).  Shared by FrameRequest and
// RequestBytesNeeded so the two can never frame a stream differently.
vbase::Status ParseHead(const std::string& data, HttpRequest* out, size_t* head_end_out,
                        uint64_t* want, bool* have_length) {
  const size_t head_end = data.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return vbase::FailedPrecondition("incomplete request head");
  }
  if (!HeadLineEndingsStrict(data, head_end)) {
    return vbase::InvalidArgument("bare CR or LF in request head");
  }
  *head_end_out = head_end;
  HttpRequest& req = *out;
  size_t pos = 0;
  size_t line_end = data.find("\r\n", pos);
  const std::string request_line = data.substr(pos, line_end - pos);
  {
    std::istringstream is(request_line);
    if (!(is >> req.method >> req.target >> req.version)) {
      return vbase::InvalidArgument("malformed request line: " + request_line);
    }
    if (req.version.rfind("HTTP/", 0) != 0) {
      return vbase::InvalidArgument("bad HTTP version: " + req.version);
    }
  }
  pos = line_end + 2;
  while (pos < head_end) {
    line_end = data.find("\r\n", pos);
    if (line_end == std::string::npos || line_end > head_end) {
      line_end = head_end;
    }
    const std::string line = data.substr(pos, line_end - pos);
    pos = line_end + 2;
    if (line.empty()) {
      break;
    }
    if (line[0] == ' ' || line[0] == '\t') {
      // Obsolete line folding: two framings of the same head depending on
      // whether the peer implements it.  Reject.
      return vbase::InvalidArgument("folded header line");
    }
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return vbase::InvalidArgument("malformed header line: " + line);
    }
    req.headers.emplace_back(Trim(line.substr(0, colon)), Trim(line.substr(colon + 1)));
  }
  // Framing headers.  Transfer-Encoding is not implemented; accepting it
  // while framing by Content-Length is the classic TE.CL desync, so its
  // mere presence is a 400.  Duplicate Content-Length headers (even with
  // equal values) are likewise rejected rather than collapsed.
  *want = 0;
  *have_length = false;
  for (const auto& [key, value] : req.headers) {
    const std::string lower = ToLower(key);
    if (lower == "transfer-encoding") {
      return vbase::InvalidArgument("transfer-encoding not supported");
    }
    if (lower == "content-length") {
      uint64_t parsed = 0;
      if (!ParseContentLength(value, &parsed)) {
        return vbase::InvalidArgument("bad content-length");
      }
      if (*have_length) {
        return vbase::InvalidArgument("conflicting content-length");
      }
      *have_length = true;
      *want = parsed;
    }
  }
  return vbase::Status::Ok();
}

}  // namespace

vbase::Result<FramedRequest> FrameRequest(const std::string& data) {
  FramedRequest framed;
  size_t head_end = 0;
  uint64_t want = 0;
  bool have_length = false;
  VB_RETURN_IF_ERROR(ParseHead(data, &framed.request, &head_end, &want, &have_length));
  const size_t body_start = head_end + 4;
  if (have_length) {
    if (data.size() - body_start < want) {
      return vbase::FailedPrecondition("incomplete body");
    }
    framed.request.body = data.substr(body_start, want);
  }
  framed.consumed = body_start + want;
  return framed;
}

vbase::Result<size_t> RequestBytesNeeded(const std::string& data) {
  HttpRequest req;
  size_t head_end = 0;
  uint64_t want = 0;
  bool have_length = false;
  VB_RETURN_IF_ERROR(ParseHead(data, &req, &head_end, &want, &have_length));
  return head_end + 4 + want;
}

vbase::Result<HttpRequest> ParseRequest(const std::string& data) {
  auto framed = FrameRequest(data);
  if (!framed.ok()) {
    return framed.status();
  }
  return std::move(framed->request);
}

bool WantKeepAlive(const HttpRequest& request) {
  // Tokenize the Connection header as a comma list; an explicit token wins
  // over the version default in both directions.
  bool saw_close = false;
  bool saw_keep_alive = false;
  std::istringstream is(ToLower(request.Header("connection")));
  std::string token;
  while (std::getline(is, token, ',')) {
    token = Trim(token);
    if (token == "close") {
      saw_close = true;
    } else if (token == "keep-alive") {
      saw_keep_alive = true;
    }
  }
  if (saw_close) {
    return false;
  }
  if (request.version == "HTTP/1.0") {
    return saw_keep_alive;
  }
  return true;  // HTTP/1.1+: persistent by default
}

vbase::Result<HttpResponseHead> FrameResponseHead(const std::string& data) {
  const size_t head_end = data.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return vbase::FailedPrecondition("incomplete response head");
  }
  HttpResponseHead head;
  head.head_bytes = head_end + 4;
  size_t pos = 0;
  size_t line_end = data.find("\r\n", pos);
  {
    const std::string status_line = data.substr(pos, line_end - pos);
    std::istringstream is(status_line);
    std::string status_token;
    if (!(is >> head.version >> status_token) ||
        head.version.rfind("HTTP/", 0) != 0) {
      return vbase::InvalidArgument("malformed status line: " + status_line);
    }
    for (char c : status_token) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return vbase::InvalidArgument("non-numeric status: " + status_token);
      }
    }
    if (status_token.empty() || status_token.size() > 5) {
      return vbase::InvalidArgument("bad status: " + status_token);
    }
    head.status = std::stoi(status_token);
  }
  pos = line_end + 2;
  while (pos < head_end) {
    line_end = data.find("\r\n", pos);
    if (line_end == std::string::npos || line_end > head_end) {
      line_end = head_end;
    }
    const std::string line = data.substr(pos, line_end - pos);
    pos = line_end + 2;
    if (line.empty()) {
      break;
    }
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return vbase::InvalidArgument("malformed response header: " + line);
    }
    head.headers.emplace_back(Trim(line.substr(0, colon)), Trim(line.substr(colon + 1)));
  }
  for (const auto& [key, value] : head.headers) {
    if (ToLower(key) == "content-length") {
      if (!ParseContentLength(value, &head.content_length)) {
        return vbase::InvalidArgument("bad response content-length");
      }
    }
  }
  return head;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string BuildResponse(int status, const std::string& body,
                          const std::vector<std::pair<std::string, std::string>>& headers) {
  return BuildResponseWithReason(status, ReasonPhrase(status), body, headers);
}

std::string BuildResponseWithReason(int status, const std::string& reason,
                                    const std::string& body,
                                    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << " ";
  // The reason phrase may come from an untrusted detail string (a fault
  // message); a CR/LF — or any other control byte — embedded there would
  // terminate the status line early and let the remainder masquerade as
  // response headers.  Strip control characters rather than reject: the
  // phrase is informational only.
  for (const char c : reason) {
    if (static_cast<unsigned char>(c) >= 0x20 && c != 0x7f) {
      os << c;
    }
  }
  os << "\r\n";
  os << "Content-Length: " << body.size() << "\r\n";
  for (const auto& [key, value] : headers) {
    os << key << ": " << value << "\r\n";
  }
  os << "\r\n" << body;
  return os.str();
}

}  // namespace vnet
