// Real TCP front end for the concurrent HTTP server: a non-blocking
// socket/bind/listen + level-triggered epoll accept/read loop that frames
// complete HTTP requests off real sockets and feeds them through
// ConcurrentHttpServer::SubmitConnection.
//
// Division of labor:
//
// * The listener is the trust boundary at the edge.  It frames the byte
//   stream with the host parser (RequestBytesNeeded), so oversized heads
//   (413), declared bodies beyond the cap (413), malformed or
//   smuggling-shaped requests (400), and streams that end mid-request (400)
//   are answered at the edge — in EVERY serve mode, before a single byte
//   reaches a lane.  Only validated, correctly framed request bytes are
//   forwarded into the connection's ByteChannel (bodies stream through in
//   bounded chunks as they arrive; nothing buffers a whole request beyond
//   the configured caps).
//
// * The server job serves the whole connection: with keep-alive enabled one
//   SubmitConnection dispatch (= one acquired, snapshot-affine shell in the
//   virtine modes) serves every request of the connection until EOF,
//   "Connection: close", or the max-requests cap.
//
// * Lazy dispatch starves slowloris: a connection occupies no executor lane
//   until its first complete request has been framed; a half-sent head only
//   ever holds listener-side buffer bytes, and the idle timeout reclaims it
//   with a 408.
//
// Responses flow back through a BytePipe read observer that signals an
// eventfd (the channel becomes an epoll readiness source like any fd), and
// partial socket writes are finished under EPOLLOUT.
#ifndef SRC_VNET_LISTENER_H_
#define SRC_VNET_LISTENER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/vnet/server.h"
#include "src/wasp/channel.h"

namespace vnet {

struct ListenerOptions {
  // Port to bind on 127.0.0.1; 0 picks an ephemeral port (read it back from
  // port() after Start()).
  uint16_t port = 0;
  ServeMode mode = ServeMode::kNative;
  // Route key for SubmitConnection (per-route quotas / key classes apply).
  std::string route = "listener";
  // Per-connection serving policy forwarded to the server; the listener
  // additionally enforces max_head_bytes / max_body_bytes at the edge.
  ConnectionOptions connection = MakeKeepAliveDefaults();
  // Socket read window (the unit of incremental forwarding, not a cap).
  size_t read_chunk = 4096;
  // A connection with no inbound progress for this long is reclaimed: 408 if
  // a request is half-sent, silent close at a clean request boundary.
  // <= 0 disables the idle timeout.
  int idle_timeout_ms = 5000;
  // Event-loop timer granularity (idle scan, finished-job reaping).
  int tick_ms = 5;
  int backlog = 128;

  static ConnectionOptions MakeKeepAliveDefaults() {
    ConnectionOptions conn;
    conn.keep_alive = true;
    return conn;
  }
};

// Monotone counters over everything a listener accepted.
struct ListenerStats {
  uint64_t accepted = 0;          // connections accepted
  uint64_t closed = 0;            // connections fully closed
  uint64_t idle_closed = 0;       // reclaimed by the idle timeout
  uint64_t edge_413 = 0;          // oversized head/body answered at the edge
  uint64_t edge_400 = 0;          // malformed/truncated answered at the edge
  uint64_t requests_forwarded = 0;  // complete requests handed to the server
};

// One TCP listener bound to 127.0.0.1, serving through a ConcurrentHttpServer.
// The server must be configured with block_when_full = false: admission
// rejections must answer 503/429 immediately rather than block the event
// loop.  Start() spawns the event-loop thread; Stop() (or the destructor)
// drains every in-flight connection job before returning.
class Listener {
 public:
  explicit Listener(ConcurrentHttpServer* server, ListenerOptions options = {});
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  vbase::Status Start();
  void Stop();

  // The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  ListenerStats stats() const;

 private:
  struct Conn {
    int fd = -1;
    std::unique_ptr<wasp::ByteChannel> channel;
    std::string inbuf;   // socket bytes not yet validated/forwarded
    std::string outbuf;  // response bytes not yet written to the socket
    // Bytes of the current framed request (head+declared body) still to be
    // forwarded into the channel; body streaming in bounded chunks.
    size_t forward_remaining = 0;
    bool submitted = false;   // SubmitConnection has been called
    bool job_done = false;    // the server job's future has resolved
    bool peer_eof = false;    // the client closed its write half
    bool closing = false;     // no more forwarding; flush + reap
    bool want_epollout = false;
    bool channel_write_closed = false;
    std::future<vbase::Result<ServeStats>> job;
    int64_t last_activity_ms = 0;  // steady-clock ms of last inbound progress
  };

  void Loop();
  void AcceptReady();
  void ConnReadable(Conn* conn);
  void ConnWritable(Conn* conn);
  // Validates + forwards framed request bytes from conn->inbuf.
  void ProcessInbuf(Conn* conn);
  // Answers `status` directly from the edge and begins closing.
  void EdgeReject(Conn* conn, int status);
  void EnsureSubmitted(Conn* conn);
  void HandlePeerEof(Conn* conn);
  // Moves channel bytes to outbuf and flushes as much as the socket takes.
  void RelayChannel(Conn* conn);
  void FlushOut(Conn* conn);
  void UpdateEpollOut(Conn* conn);
  void CloseChannelWrite(Conn* conn);
  // Closes the socket; the Conn lingers in conns_ until its job resolves.
  void CloseConn(int fd);
  void Tick(int64_t now_ms);
  static int64_t NowMs();

  ConcurrentHttpServer* server_;
  ListenerOptions options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;  // channel-readiness + stop wakeups
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread loop_;

  // Owned by the event-loop thread; keyed by socket fd.  A Conn whose socket
  // is closed but whose job is unresolved moves to zombies_ (the channel
  // must outlive the job).
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  std::vector<std::unique_ptr<Conn>> zombies_;

  // Connections whose channel got response bytes since the last drain (fed
  // by BytePipe observers under the pipe lock; only ever push + signal).
  std::mutex ready_mu_;
  std::vector<int> ready_fds_;

  mutable std::mutex stats_mu_;
  ListenerStats stats_;
};

}  // namespace vnet

#endif  // SRC_VNET_LISTENER_H_
