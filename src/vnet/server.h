// The HTTP servers of Sections 4.2 and 6.3.
//
// * EchoHandlerSource(): the protected-mode echo guest (Figure 4) that
//   timestamps its startup milestones with in-guest rdtsc.
// * StaticHandlerSource(): the static-file guest handler (Figure 13) that
//   performs exactly the paper's seven host interactions per request:
//   recv, stat, open, read, send, close, exit — and validates the request
//   (complete header block, Host on HTTP/1.1) before touching any file.
// * StaticHttpServer: serves one connection per request either natively
//   (host C++ handler, the baseline) or in a fresh virtine (with or without
//   snapshotting).
// * ConcurrentHttpServer: the executor-backed front end — every connection
//   is dispatched as a job on a wasp::Executor, so N lanes serve N
//   connections concurrently and bounded admission (reject mode answers
//   overflow connections with an immediate 503) makes burst overload a
//   first-class behavior.  This is the serving path Figure 13's lane sweep
//   measures.
//
// Key-scoped governance (the routed SubmitConnection overload): the front
// end maps each route onto a key class (latency-sensitive vs batch) and a
// per-route admission key, so one hot route can neither monopolize the
// executor queue (per-key quota -> HTTP 429, "this tenant backs off") nor
// starve interactive routes behind its backlog (weighted class dequeue).
// Global overload still sheds with 503 ("the server is full"), keeping the
// two failure modes distinguishable at the protocol level.
#ifndef SRC_VNET_SERVER_H_
#define SRC_VNET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <string>

#include "src/base/status.h"
#include "src/isa/image.h"
#include "src/wasp/channel.h"
#include "src/wasp/executor.h"
#include "src/wasp/host_env.h"
#include "src/wasp/runtime.h"

namespace vnet {

// Guest source (vcc dialect; concatenate after vlibc).
std::string EchoHandlerSource();
std::string StaticHandlerSource();
// Keep-alive variant: one invocation serves every request of a connection
// (recv -> frame -> serve loop until EOF or "Connection: close"), streaming
// request bodies through the channel in bounded chunks and reporting
// [requests, 2xx, 4xx, clean] through return_data on exit.
std::string KeepAliveHandlerSource();

enum class ServeMode {
  kNative,           // host C++ handler, no isolation
  kVirtine,          // fresh virtine per connection
  kVirtineSnapshot,  // virtine per connection, snapshot fast path
};

const char* ServeModeName(ServeMode mode);

// Per-connection serving policy.  The default (keep_alive=false) preserves
// the one-request-per-connection contract of the original benchmarks; the
// listener front end turns keep-alive on so one acquired shell serves many
// requests before release.
struct ConnectionOptions {
  // Serve requests in a loop until EOF, "Connection: close", or
  // max_requests; off, exactly one request is served.
  bool keep_alive = false;
  // Keep-alive request cap per connection (host-enforced: the native loop
  // stops serving and the listener closes the stream); 0 = unlimited.
  int max_requests = 64;
  // A request head that has not terminated within this many bytes is
  // answered 413 (matches the guest handler's receive window, so every
  // ServeMode rejects the same oversized head).
  size_t max_head_bytes = 2048;
  // Native-mode Content-Length cap: a declared body beyond it is answered
  // 413 before the bytes are read.  Virtine guests stream-and-discard
  // bodies in bounded chunks instead, so the socket front end enforces this
  // cap for every mode at the edge (ListenerOptions.max_body_bytes).
  size_t max_body_bytes = 1ULL << 20;
  // Bounded per-read window for the growable request read loop and for
  // response-body streaming (replaces the old fixed 2 KB stack buffers as
  // the unit of incremental I/O, not as a size cap).
  size_t read_chunk = 2048;
};

struct ServeStats {
  int status = 0;               // HTTP status of the last request served
  // Per-connection request accounting (keep-alive serves many requests per
  // connection; the legacy single-shot path reports requests == 1).
  uint64_t requests = 0;
  uint64_t r2xx = 0;
  uint64_t r4xx = 0;
  uint64_t r5xx = 0;
  // Non-kNone when the guest faulted mid-request: the connection was
  // answered 500 with the fault kind as the reason phrase, the shell was
  // quarantined, and the front end counts the request as faulted rather
  // than errored (the server itself is healthy — one invocation died).
  wasp::FaultKind fault = wasp::FaultKind::kNone;
  uint64_t modeled_cycles = 0;  // end-to-end modeled cost of handling
  uint64_t guest_cycles = 0;
  uint64_t io_exits = 0;
  uint64_t wall_ns = 0;
  // Modeled cost of the same handler logic with no virtualization at all
  // (guest cycles minus VM-exit charges): the native-equivalent cost used
  // as the Figure 13 baseline denominator.
  uint64_t deisolated_cycles = 0;
};

// A single-threaded static-content HTTP server over loopback channels.
class StaticHttpServer {
 public:
  // `env` holds the served files; must outlive the server.
  StaticHttpServer(wasp::Runtime* runtime, wasp::HostEnv* env);

  // Serves one connection whose bytes arrive on `channel.host()`.  With the
  // default options exactly one request is handled (the request must already
  // be written, or at least started, on the channel); with keep_alive the
  // connection is served as a request loop until the peer closes its write
  // end, sends "Connection: close", or max_requests is reached — in the
  // virtine modes one acquired (affine) shell spans the whole loop.
  // Thread-safe: concurrent connections share only the runtime (sharded
  // pool + read-mostly snapshot store) and the mutex-guarded HostEnv.
  vbase::Result<ServeStats> HandleConnection(wasp::ByteChannel& channel, ServeMode mode,
                                             const ConnectionOptions& conn = {});

  const visa::Image& handler_image() const { return handler_image_; }
  const visa::Image& keepalive_image() const { return keepalive_image_; }

 private:
  vbase::Result<ServeStats> HandleNative(wasp::ByteChannel& channel,
                                         const ConnectionOptions& conn);
  vbase::Result<ServeStats> HandleVirtine(wasp::ByteChannel& channel, bool snapshot,
                                          const ConnectionOptions& conn);

  wasp::Runtime* runtime_;
  wasp::HostEnv* env_;
  visa::Image handler_image_;
  visa::Image keepalive_image_;
};

struct ConcurrentServerOptions {
  int lanes = 4;                // executor workers serving connections
  size_t max_queue_depth = 0;   // bounded admission; 0 = unbounded
  // Full-queue policy: block the submitter until a lane frees (closed-loop
  // clients) or answer the connection with an immediate 503 (load shedding).
  bool block_when_full = true;
  // Per-key admission quota (jobs queued + in flight under one key); 0 =
  // unlimited.  Exceeding it answers the connection with 429 instead of
  // 503.  Routed submissions are keyed per route; unrouted snapshot-mode
  // submissions all share the handler's affinity key and therefore one
  // quota pool — leave this 0 if that path should only ever shed 503.
  size_t key_quota = 0;
  // Per-key overrides of key_quota for routed submissions (keys are route
  // names); forwarded to ExecutorOptions::key_quota_overrides.  A listed
  // route uses its override (0 = unlimited); unlisted routes use key_quota.
  std::map<std::string, size_t> key_quota_overrides = {};
  // Route -> scheduling class for routed submissions; unlisted routes are
  // latency-sensitive.  Weighted dequeue (ExecutorOptions::batch_weight)
  // keeps batch routes from starving interactive ones and vice versa.
  std::map<std::string, wasp::KeyClass> route_classes;
  int batch_weight = 4;  // forwarded to ExecutorOptions::batch_weight
  // Fault-recovery policy forwarded to ExecutorOptions::recovery.  With the
  // breaker enabled, a route whose sustained fault rate trips its breaker is
  // shed with a fast 429 carrying a Retry-After header — no shell is burned
  // probing a key that is currently killing every invocation.
  wasp::RecoveryOptions recovery = {};
  // Default per-connection policy for SubmitConnection (overridable per
  // submission); the listener passes its own.
  ConnectionOptions connection = {};
};

// Monotone per-mode aggregates over everything a server instance served.
struct ServerCounters {
  uint64_t accepted = 0;       // connections admitted to the executor queue
  uint64_t rejected = 0;       // connections shed with a 503 at admission
  uint64_t quota_rejected = 0; // connections shed with a 429 (route quota)
  uint64_t breaker_rejected = 0;  // connections shed with a 429 (open breaker)
  uint64_t completed = 0;      // handler ran to completion (any status)
  uint64_t errors = 0;         // handler returned a non-OK status
  uint64_t faulted = 0;        // guest faulted; answered 500-with-reason
  uint64_t requests = 0;       // requests served across all connections
  // Requests beyond the first on their connection: each one reused the
  // connection's acquired shell instead of paying a fresh dispatch+restore.
  uint64_t keepalive_reused = 0;
  uint64_t status_2xx = 0;
  uint64_t status_4xx = 0;
  uint64_t status_5xx = 0;
  uint64_t modeled_cycles = 0;  // summed modeled service cost
  uint64_t io_exits = 0;        // summed hypercall exits (virtine modes)
};

// The concurrent serving stack: StaticHttpServer's per-connection logic
// dispatched through a dedicated wasp::Executor.
class ConcurrentHttpServer {
 public:
  // `env` holds the served files; must outlive the server.  The destructor
  // drains every accepted connection before returning.
  ConcurrentHttpServer(wasp::Runtime* runtime, wasp::HostEnv* env,
                       ConcurrentServerOptions options = {});

  // Dispatches one connection (request already written to `channel.host()`)
  // through the executor; the future resolves with the connection's
  // ServeStats once a lane has served it.  The caller keeps `channel` alive
  // until the future resolves.  When bounded admission rejects the
  // connection, a 503 response is written to the channel immediately and
  // the returned future is already resolved with status 503.
  std::future<vbase::Result<ServeStats>> SubmitConnection(wasp::ByteChannel& channel,
                                                          ServeMode mode);

  // Routed variant: `route` names the request's target as the front end
  // knows it (the dispatch key — e.g. from the listener's vhost/path map).
  // It selects the connection's key class (options().route_classes) and its
  // admission key, so per-route quotas and class weighting apply.  A
  // quota-shed connection is answered 429; global overload stays 503.
  std::future<vbase::Result<ServeStats>> SubmitConnection(wasp::ByteChannel& channel,
                                                          ServeMode mode,
                                                          const std::string& route);

  // Per-submission connection policy (the listener submits with its own
  // keep-alive/caps); the overloads above use options().connection.
  std::future<vbase::Result<ServeStats>> SubmitConnection(wasp::ByteChannel& channel,
                                                          ServeMode mode,
                                                          const std::string& route,
                                                          const ConnectionOptions& conn);

  ServerCounters counters(ServeMode mode) const;
  wasp::ExecutorStats executor_stats() const { return executor_.stats(); }
  size_t queue_depth() const { return executor_.queue_depth(); }
  const ConcurrentServerOptions& options() const { return options_; }
  int lanes() const { return static_cast<int>(executor_.workers()); }

 private:
  // Shared dispatch path: `key` is the executor affinity/quota key, `klass`
  // the scheduling class.
  std::future<vbase::Result<ServeStats>> Dispatch(wasp::ByteChannel& channel, ServeMode mode,
                                                  std::string key, wasp::KeyClass klass,
                                                  const ConnectionOptions& conn);

  struct AtomicCounters {
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> quota_rejected{0};
    std::atomic<uint64_t> breaker_rejected{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> faulted{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> keepalive_reused{0};
    std::atomic<uint64_t> status_2xx{0};
    std::atomic<uint64_t> status_4xx{0};
    std::atomic<uint64_t> status_5xx{0};
    std::atomic<uint64_t> modeled_cycles{0};
    std::atomic<uint64_t> io_exits{0};
  };

  ConcurrentServerOptions options_;
  StaticHttpServer inner_;
  AtomicCounters counters_[3];  // indexed by ServeMode
  // Declared last: its destructor drains queued connection jobs, which still
  // touch inner_ and counters_, so it must be destroyed first.
  wasp::Executor executor_;
};

}  // namespace vnet

#endif  // SRC_VNET_SERVER_H_
