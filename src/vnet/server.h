// The HTTP servers of Sections 4.2 and 6.3.
//
// * EchoHandlerSource(): the protected-mode echo guest (Figure 4) that
//   timestamps its startup milestones with in-guest rdtsc.
// * StaticHandlerSource(): the static-file guest handler (Figure 13) that
//   performs exactly the paper's seven host interactions per request:
//   recv, stat, open, read, send, close, exit.
// * StaticHttpServer: serves one connection per request either natively
//   (host C++ handler, the baseline) or in a fresh virtine (with or without
//   snapshotting).
#ifndef SRC_VNET_SERVER_H_
#define SRC_VNET_SERVER_H_

#include <cstdint>
#include <string>

#include "src/base/status.h"
#include "src/isa/image.h"
#include "src/wasp/channel.h"
#include "src/wasp/host_env.h"
#include "src/wasp/runtime.h"

namespace vnet {

// Guest source (vcc dialect; concatenate after vlibc).
std::string EchoHandlerSource();
std::string StaticHandlerSource();

enum class ServeMode {
  kNative,           // host C++ handler, no isolation
  kVirtine,          // fresh virtine per connection
  kVirtineSnapshot,  // virtine per connection, snapshot fast path
};

const char* ServeModeName(ServeMode mode);

struct ServeStats {
  int status = 0;               // HTTP status returned
  uint64_t modeled_cycles = 0;  // end-to-end modeled cost of handling
  uint64_t guest_cycles = 0;
  uint64_t io_exits = 0;
  uint64_t wall_ns = 0;
  // Modeled cost of the same handler logic with no virtualization at all
  // (guest cycles minus VM-exit charges): the native-equivalent cost used
  // as the Figure 13 baseline denominator.
  uint64_t deisolated_cycles = 0;
};

// A single-threaded static-content HTTP server over loopback channels.
class StaticHttpServer {
 public:
  // `env` holds the served files; must outlive the server.
  StaticHttpServer(wasp::Runtime* runtime, wasp::HostEnv* env);

  // Handles exactly one request that the client has already written to
  // `channel.host()`.  The response is written back to the channel.
  vbase::Result<ServeStats> HandleConnection(wasp::ByteChannel& channel, ServeMode mode);

  const visa::Image& handler_image() const { return handler_image_; }

 private:
  vbase::Result<ServeStats> HandleNative(wasp::ByteChannel& channel);
  vbase::Result<ServeStats> HandleVirtine(wasp::ByteChannel& channel, bool snapshot);

  wasp::Runtime* runtime_;
  wasp::HostEnv* env_;
  visa::Image handler_image_;
};

}  // namespace vnet

#endif  // SRC_VNET_SERVER_H_
