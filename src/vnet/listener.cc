#include "src/vnet/listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/base/log.h"
#include "src/vnet/http.h"

namespace vnet {
namespace {

constexpr int kMaxEpollEvents = 64;
// Per-readable-event read budget: level-triggered epoll re-arms anything
// left, so a firehose connection cannot starve its neighbors.
constexpr int kReadsPerEvent = 16;

}  // namespace

Listener::Listener(ConcurrentHttpServer* server, ListenerOptions options)
    : server_(server), options_(std::move(options)) {}

Listener::~Listener() { Stop(); }

int64_t Listener::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

vbase::Status Listener::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return vbase::FailedPrecondition("listener already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return vbase::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return vbase::Internal("bind: " + err);
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return vbase::Internal("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || event_fd_ < 0) {
    const std::string err = std::strerror(errno);
    Stop();
    return vbase::Internal("epoll/eventfd: " + err);
  }
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = event_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { Loop(); });
  return vbase::Status::Ok();
}

void Listener::Stop() {
  if (loop_.joinable()) {
    stop_requested_.store(true, std::memory_order_release);
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));
    loop_.join();
  }
  // Event loop is gone: drain every in-flight job before tearing down the
  // channels they reference.
  for (auto& [fd, conn] : conns_) {
    if (conn->submitted && !conn->job_done) {
      CloseChannelWrite(conn.get());
      conn->job.wait();
    }
    ::close(fd);
  }
  conns_.clear();
  for (auto& conn : zombies_) {
    if (!conn->job_done) {
      conn->job.wait();
    }
  }
  zombies_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (event_fd_ >= 0) {
    ::close(event_fd_);
    event_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

ListenerStats Listener::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void Listener::Loop() {
  epoll_event events[kMaxEpollEvents];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int timeout =
        conns_.empty() && zombies_.empty() ? -1 : std::max(1, options_.tick_ms);
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEpollEvents, timeout);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      if (fd == event_fd_) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t r = ::read(event_fd_, &drained, sizeof(drained));
        std::vector<int> ready;
        {
          std::lock_guard<std::mutex> lock(ready_mu_);
          ready.swap(ready_fds_);
        }
        for (const int rfd : ready) {
          auto it = conns_.find(rfd);
          if (it != conns_.end()) {
            RelayChannel(it->second.get());
          }
        }
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) {
        continue;  // already closed this iteration
      }
      Conn* conn = it->second.get();
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        // Read anything pending (a RST'd peer may still have queued bytes),
        // then treat it as EOF.
        ConnReadable(conn);
        if (conns_.count(fd) != 0 && !conn->peer_eof) {
          conn->peer_eof = true;
          HandlePeerEof(conn);
        }
        continue;
      }
      if (events[i].events & EPOLLIN) {
        ConnReadable(conn);
      }
      if (conns_.count(fd) != 0 && (events[i].events & EPOLLOUT)) {
        ConnWritable(conn);
      }
    }
    Tick(NowMs());
  }
}

void Listener::AcceptReady() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      return;  // EAGAIN (or transient error): nothing more to accept now
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->channel = std::make_unique<wasp::ByteChannel>();
    conn->last_activity_ms = NowMs();
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conns_.emplace(fd, std::move(conn));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.accepted;
    }
  }
}

void Listener::ConnReadable(Conn* conn) {
  if (conn->closing) {
    return;
  }
  const int fd = conn->fd;
  std::vector<char> buf(options_.read_chunk);
  for (int round = 0; round < kReadsPerEvent; ++round) {
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n > 0) {
      conn->inbuf.append(buf.data(), static_cast<size_t>(n));
      conn->last_activity_ms = NowMs();
      ProcessInbuf(conn);
      if (conns_.count(fd) == 0 || conn->closing) {
        return;
      }
      continue;
    }
    if (n == 0) {
      conn->peer_eof = true;
      HandlePeerEof(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    CloseConn(fd);  // hard socket error
    return;
  }
}

void Listener::ProcessInbuf(Conn* conn) {
  const ConnectionOptions& copts = options_.connection;
  while (!conn->closing) {
    if (conn->forward_remaining > 0) {
      // Stream the current request's bytes (head already validated; body in
      // bounded chunks as it arrives) into the channel.
      const size_t take = std::min(conn->inbuf.size(), conn->forward_remaining);
      if (take == 0) {
        return;  // need more socket bytes
      }
      conn->channel->host().Write(conn->inbuf.data(), take);
      conn->inbuf.erase(0, take);
      conn->forward_remaining -= take;
      continue;
    }
    if (conn->inbuf.empty()) {
      return;
    }
    auto need = RequestBytesNeeded(conn->inbuf);
    if (!need.ok()) {
      if (need.status().code() == vbase::Code::kInvalidArgument) {
        EdgeReject(conn, 400);  // malformed or smuggling-shaped head
        return;
      }
      if (conn->inbuf.size() >= copts.max_head_bytes) {
        EdgeReject(conn, 413);  // head did not terminate within the cap
        return;
      }
      return;  // incomplete head: wait for more bytes
    }
    if (*need > copts.max_head_bytes + copts.max_body_bytes) {
      EdgeReject(conn, 413);  // declared body beyond the cap: never read it
      return;
    }
    // The head terminated, but may still exceed the head cap (a fast sender
    // can land the whole oversized head in one read).
    const size_t head_bytes = conn->inbuf.find("\r\n\r\n") + 4;
    if (head_bytes > copts.max_head_bytes) {
      EdgeReject(conn, 413);
      return;
    }
    // A complete, validated head within the caps: dispatch the connection on
    // its first request (lazy — slow clients hold no lane) and start
    // forwarding this request's exact byte count.
    EnsureSubmitted(conn);
    conn->forward_remaining = *need;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.requests_forwarded;
    }
  }
}

void Listener::EnsureSubmitted(Conn* conn) {
  if (conn->submitted) {
    return;
  }
  conn->submitted = true;
  const int fd = conn->fd;
  // Readiness bridge: server response bytes (written from a lane thread)
  // signal the eventfd, turning the in-process channel into an epoll source.
  // The observer only records the fd and signals — never touches the pipe.
  conn->channel->host().SetReadObserver([this, fd] {
    {
      std::lock_guard<std::mutex> lock(ready_mu_);
      ready_fds_.push_back(fd);
    }
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));
  });
  conn->job = server_->SubmitConnection(*conn->channel, options_.mode, options_.route,
                                        options_.connection);
}

void Listener::EdgeReject(Conn* conn, int status) {
  conn->outbuf += BuildResponse(status, "");
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (status == 413) {
      ++stats_.edge_413;
    } else {
      ++stats_.edge_400;
    }
  }
  conn->closing = true;
  conn->inbuf.clear();
  // If a server job is serving this connection it is parked at a request
  // boundary (the edge only rejects between fully forwarded requests):
  // closing the forward direction lets it exit cleanly.
  CloseChannelWrite(conn);
  FlushOut(conn);
}

void Listener::HandlePeerEof(Conn* conn) {
  if (conn->closing) {
    return;
  }
  if (conn->forward_remaining > 0) {
    // The stream died mid-request: the server sees EOF mid-frame and answers
    // 400 itself; just stop forwarding.
    conn->closing = true;
    CloseChannelWrite(conn);
    FlushOut(conn);
    return;
  }
  if (!conn->inbuf.empty()) {
    // EOF inside an incomplete head that never reached the server: the edge
    // answers the 400.
    EdgeReject(conn, 400);
    return;
  }
  // Clean boundary.
  conn->closing = true;
  if (conn->submitted) {
    CloseChannelWrite(conn);  // server request loop exits cleanly
    FlushOut(conn);
  } else {
    CloseConn(conn->fd);  // never dispatched: nothing to wait for
  }
}

void Listener::RelayChannel(Conn* conn) {
  const std::vector<uint8_t> bytes = conn->channel->host().Drain();
  if (!bytes.empty()) {
    conn->outbuf.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  }
  FlushOut(conn);
}

void Listener::FlushOut(Conn* conn) {
  const int fd = conn->fd;
  while (!conn->outbuf.empty()) {
    const ssize_t n = ::send(fd, conn->outbuf.data(), conn->outbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn->outbuf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_epollout) {
        conn->want_epollout = true;
        UpdateEpollOut(conn);
      }
      return;  // EPOLLOUT finishes the partial write
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    CloseConn(fd);  // peer reset under us
    return;
  }
  if (conn->want_epollout) {
    conn->want_epollout = false;
    UpdateEpollOut(conn);
  }
}

void Listener::ConnWritable(Conn* conn) { FlushOut(conn); }

void Listener::UpdateEpollOut(Conn* conn) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = (conn->closing ? 0u : static_cast<uint32_t>(EPOLLIN)) |
              (conn->want_epollout ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Listener::CloseChannelWrite(Conn* conn) {
  if (conn->submitted && !conn->channel_write_closed) {
    conn->channel_write_closed = true;
    conn->channel->host().CloseWrite();
  }
  if (conn->closing) {
    UpdateEpollOut(conn);  // drop EPOLLIN so pending bytes cannot spin LT
  }
}

void Listener::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) {
    return;
  }
  std::unique_ptr<Conn> conn = std::move(it->second);
  conns_.erase(it);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.closed;
  }
  if (conn->submitted && !conn->job_done) {
    // The job still references the channel: unblock it and let Tick reap the
    // zombie once its future resolves.
    if (!conn->channel_write_closed) {
      conn->channel_write_closed = true;
      conn->channel->host().CloseWrite();
    }
    zombies_.push_back(std::move(conn));
  }
}

void Listener::Tick(int64_t now_ms) {
  // Reap zombies whose job resolved (channel no longer referenced).
  for (size_t i = 0; i < zombies_.size();) {
    Conn* conn = zombies_[i].get();
    if (!conn->job_done &&
        conn->job.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      conn->job_done = true;
    }
    if (conn->job_done) {
      zombies_[i] = std::move(zombies_.back());
      zombies_.pop_back();
    } else {
      ++i;
    }
  }
  // Snapshot the fds: every step below can erase from conns_ (CloseConn via
  // a socket error inside FlushOut), so iterate by lookup, never by a live
  // map iterator.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) {
    fds.push_back(fd);
  }
  for (const int fd : fds) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) {
      continue;
    }
    Conn* conn = it->second.get();
    if (conn->submitted && !conn->job_done &&
        conn->job.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      // Server finished the connection (clean close, "Connection: close",
      // max-requests, or a shed): relay the tail and start closing.
      conn->job_done = true;
      if (!conn->closing) {
        conn->closing = true;
        UpdateEpollOut(conn);
      }
      RelayChannel(conn);
      if (conns_.count(fd) == 0) {
        continue;  // RelayChannel closed it on a socket error
      }
    }
    if (!conn->closing && options_.idle_timeout_ms > 0 &&
        now_ms - conn->last_activity_ms > options_.idle_timeout_ms) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.idle_closed;
      }
      if (conn->forward_remaining > 0 || !conn->inbuf.empty()) {
        EdgeReject(conn, 408);  // half-sent request: tell the client
      } else {
        conn->closing = true;
        CloseChannelWrite(conn);
        if (!conn->submitted) {
          CloseConn(fd);
          continue;
        }
      }
      if (conns_.count(fd) == 0) {
        continue;
      }
    }
    if (conn->closing && conn->outbuf.empty()) {
      const bool drained = !conn->submitted ||
                           (conn->job_done && conn->channel->host().bytes_readable() == 0);
      if (drained) {
        CloseConn(fd);
      }
    }
  }
}

}  // namespace vnet
