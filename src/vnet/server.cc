#include "src/vnet/server.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/base/clock.h"
#include "src/base/log.h"
#include "src/vcc/vcc.h"
#include "src/vnet/http.h"
#include "src/vrt/vlibc.h"

namespace vnet {
namespace {

// Snapshot key of the static-file handler: HandleVirtine keys its
// VirtineSpec with it, and snapshot-mode connection jobs carry it as the
// executor's keyed-dequeue affinity hint, so a lane keeps serving the shell
// whose snapshot it just parked.
constexpr const char* kStaticHandlerKey = "http-static-handler";
// Separate snapshot key for the keep-alive handler image: the two guests
// boot different binaries, so they must never share a snapshot generation.
constexpr const char* kKeepAliveHandlerKey = "http-keepalive-handler";

}  // namespace

std::string EchoHandlerSource() {
  // The guest timestamps its startup milestones with in-guest rdtsc (the
  // paper takes the Figure 4 measurements "inside the virtual context") and
  // ships them back through return_data after the last milestone.
  return R"vc(
int main() {
  char buf[1024];
  int mb[3];
  int n;
  mb[0] = __rdtsc();          // milestone: reached C code (server main)
  n = recv(buf, 1023);
  mb[1] = __rdtsc();          // milestone: request received (recv returned)
  if (n > 0) {
    send(buf, n);
  }
  mb[2] = __rdtsc();          // milestone: response sent (send returned)
  return_data(mb, sizeof(int) * 3);
  return n;
}
)vc";
}

namespace {

// Request-head helpers shared by the single-shot and keep-alive guests
// (scans are bounded to the header block, so body bytes can never satisfy a
// header rule).
std::string HandlerHelpersSource() {
  return R"vc(
int vn_headers_end(char *req, int n) {
  int i;
  i = 0;
  while (i + 3 < n) {
    if (req[i] == 13 && req[i + 1] == 10 && req[i + 2] == 13 && req[i + 3] == 10) {
      return i;
    }
    i = i + 1;
  }
  return -1;
}

int vn_version_start(char *req, int he) {
  int i;
  int t;
  i = 0;
  t = 0;
  while (i < he && req[i] != 13) {
    while (i < he && (req[i] == ' ' || req[i] == 9)) {
      i = i + 1;
    }
    if (i >= he || req[i] == 13) {
      return -1;
    }
    if (t == 2) {
      return i;
    }
    while (i < he && req[i] != ' ' && req[i] != 9 && req[i] != 13) {
      i = i + 1;
    }
    t = t + 1;
  }
  return -1;
}

int vn_head_valid(char *req, int he) {
  int i;
  int vs;
  int has_colon;
  vs = vn_version_start(req, he);
  if (vs < 0 || vs + 4 >= he) {
    return 0;
  }
  if (!(req[vs] == 'H' && req[vs + 1] == 'T' && req[vs + 2] == 'T' && req[vs + 3] == 'P' &&
        req[vs + 4] == '/')) {
    return 0;
  }
  i = vs;
  while (i < he && req[i] != 13) {
    i = i + 1;
  }
  while (i < he) {
    if (req[i] == 10) {
      has_colon = 0;
      i = i + 1;
      while (i < he && req[i] != 13) {
        if (req[i] == ':') {
          has_colon = 1;
        }
        i = i + 1;
      }
      if (!has_colon) {
        return 0;
      }
    } else {
      i = i + 1;
    }
  }
  return 1;
}

int vn_is_http11(char *req, int he) {
  int vs;
  vs = vn_version_start(req, he);
  if (vs < 0 || vs + 8 > he) {
    return 0;
  }
  if (req[vs] == 'H' && req[vs + 1] == 'T' && req[vs + 2] == 'T' && req[vs + 3] == 'P' &&
      req[vs + 4] == '/' && req[vs + 5] == '1' && req[vs + 6] == '.' && req[vs + 7] == '1' &&
      (req[vs + 8] == 13 || req[vs + 8] == ' ' || req[vs + 8] == 9)) {
    return 1;
  }
  return 0;
}

int vn_has_host(char *req, int he) {
  int i;
  int j;
  i = 0;
  while (i + 5 < he) {
    if (req[i] == 10) {
      if ((req[i + 1] == 'H' || req[i + 1] == 'h') && (req[i + 2] == 'o' || req[i + 2] == 'O') &&
          (req[i + 3] == 's' || req[i + 3] == 'S') && (req[i + 4] == 't' || req[i + 4] == 'T')) {
        j = i + 5;
        while (j < he && (req[j] == ' ' || req[j] == 9)) {
          j = j + 1;
        }
        if (j < he && req[j] == ':') {
          return 1;
        }
      }
    }
    i = i + 1;
  }
  return 0;
}

int parse_path(char *req, char *path) {
  int i;
  int j;
  i = 0;
  while (req[i] && req[i] != ' ') {
    i = i + 1;
  }
  if (!req[i]) {
    return -1;
  }
  i = i + 1;
  j = 0;
  while (req[i] && req[i] != ' ' && j < 255) {
    path[j] = req[i];
    i = i + 1;
    j = j + 1;
  }
  path[j] = 0;
  if (j == 0) {
    return -1;
  }
  return j;
}
)vc";
}

}  // namespace

std::string StaticHandlerSource() {
  // Exactly the paper's seven host interactions (Section 6.3):
  // (1) recv request, (2) stat file, (3) open, (4) read, (5) send response,
  // (6) close, (7) exit.  Structural request validation (complete header
  // block, an HTTP/ version token, a colon in every header line, Host on
  // HTTP/1.1) runs inside the guest before any file interaction: a
  // malformed request costs three hypercalls (recv, send 400, exit) and
  // never touches the sandboxed filesystem.
  return HandlerHelpersSource() + R"vc(
int main() {
  char req[2048];
  char path[256];
  char hdr[320];
  char num[24];
  char *body;
  char *resp;
  int n;
  int sz;
  int fd;
  int m;
  int hl;
  int he;
  n = recv(req, 2047);                                   // (1)
  if (n <= 0) {
    exit(1);
    return 1;
  }
  req[n] = 0;
  he = vn_headers_end(req, n);
  if (he < 0) {
    if (n >= 2047) {
      send("HTTP/1.1 413 Payload Too Large\r\nContent-Length: 0\r\n\r\n", 53);
      exit(3);
      return 3;
    }
    send("HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n", 47);
    exit(1);
    return 1;
  }
  if (!vn_head_valid(req, he)) {
    send("HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n", 47);
    exit(1);
    return 1;
  }
  if (vn_is_http11(req, he) && !vn_has_host(req, he)) {
    send("HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n", 47);
    exit(1);
    return 1;
  }
  if (parse_path(req, path) < 0) {
    send("HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n", 47);
    exit(1);
    return 1;
  }
  sz = stat_size(path);                                  // (2)
  if (sz < 0) {
    send("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n", 45);
    exit(2);
    return 2;
  }
  fd = open(path);                                       // (3)
  body = malloc(sz + 16);
  m = read(fd, body, sz);                                // (4)
  strcpy(hdr, "HTTP/1.1 200 OK\r\nContent-Length: ");
  itoa(num, m);
  strcat(hdr, num);
  strcat(hdr, "\r\n\r\n");
  hl = strlen(hdr);
  resp = malloc(hl + m + 16);
  memcpy(resp, hdr, hl);
  memcpy(resp + hl, body, m);
  send(resp, hl + m);                                    // (5)
  close(fd);                                             // (6)
  exit(0);                                               // (7)
  return 0;
}
)vc";
}

std::string KeepAliveHandlerSource() {
  // The persistent-connection static-file guest: one invocation serves every
  // request of its connection, so the shell acquire + snapshot restore is
  // paid once per connection instead of once per request.  Each iteration
  // frames one request off the channel (growable within the 2 KB head
  // window — a head that does not terminate inside it is answered 413, not
  // truncated), streams any Content-Length body through recv in 1 KB chunks
  // (bodies are not capped by the head window), streams the response body
  // from the file in 1 KB chunks, and honors Connection: close /
  // keep-alive.  Exit reports [requests, 2xx, 4xx, clean] via return_data
  // so the host can account per-request statuses without parsing the byte
  // stream.  Framing trust: the host front end (listener or native parser)
  // rejects smuggling-shaped heads before forwarding, so this guest keeps
  // the simple first-match Content-Length scan.
  //
  // Interpreted guest cycles are the per-request currency keep-alive is
  // amortizing against, so the head is parsed in ONE pass (validity,
  // version, Host, Content-Length, Connection all extracted while the bytes
  // are hot) instead of one helper scan per fact, the terminator search
  // resumes where the previous recv left off, and the 200 response head is
  // cached across the connection's requests (rebuilt only when the path or
  // file size changes) so the itoa/strcat string loops run once, not per
  // request.
  return HandlerHelpersSource() + R"vc(
int vn_lc(int c) {
  if (c >= 'A' && c <= 'Z') {
    return c + 32;
  }
  return c;
}

// vn_headers_end, resumable: scans [from, n) for CRLFCRLF (the caller backs
// `from` up 3 bytes so a terminator split across recvs is still found).
int vn_headers_end_from(char *req, int from, int n) {
  int i;
  i = from;
  if (i < 0) {
    i = 0;
  }
  while (i + 3 < n) {
    if (req[i] == 13 && req[i + 1] == 10 && req[i + 2] == 13 && req[i + 3] == 10) {
      return i;
    }
    i = i + 1;
  }
  return 0 - 1;
}

// Single-pass head parse over [0, he).  Fills out[5]:
//   out[0] = head valid (request-line shape + a colon in every header line)
//   out[1] = version is HTTP/1.1
//   out[2] = a Host header is present
//   out[3] = Content-Length value (first match; the host edge rejects
//            conflicting duplicates before forwarding)
//   out[4] = Connection: 0 close, 1 keep-alive, 2 absent (last header wins)
// Returns out[0].
int vn_parse_head(char *req, int he, int *out) {
  int i;
  int ls;
  int colon;
  int nl;
  int v;
  int close_tok;
  int keep_tok;
  out[0] = 0;
  out[1] = 0;
  out[2] = 0;
  out[3] = 0;
  out[4] = 2;
  i = 0;
  while (i < he && req[i] != ' ' && req[i] != 9 && req[i] != 13) {
    i = i + 1;
  }
  if (i == 0 || i >= he || req[i] == 13) {
    return 0;
  }
  while (i < he && (req[i] == ' ' || req[i] == 9)) {
    i = i + 1;
  }
  if (i >= he || req[i] == 13) {
    return 0;
  }
  while (i < he && req[i] != ' ' && req[i] != 9 && req[i] != 13) {
    i = i + 1;
  }
  if (i >= he || req[i] == 13) {
    return 0;
  }
  while (i < he && (req[i] == ' ' || req[i] == 9)) {
    i = i + 1;
  }
  if (i + 4 >= he) {
    return 0;
  }
  if (!(req[i] == 'H' && req[i + 1] == 'T' && req[i + 2] == 'T' && req[i + 3] == 'P' &&
        req[i + 4] == '/')) {
    return 0;
  }
  if (i + 7 < he && req[i + 5] == '1' && req[i + 6] == '.' && req[i + 7] == '1') {
    if (i + 8 >= he || req[i + 8] == 13 || req[i + 8] == ' ' || req[i + 8] == 9) {
      out[1] = 1;
    }
  }
  while (i < he && req[i] != 13) {
    i = i + 1;
  }
  while (i < he) {
    i = i + 2;
    if (i >= he) {
      break;
    }
    ls = i;
    colon = 0 - 1;
    while (i < he && req[i] != 13) {
      if (colon < 0 && req[i] == ':') {
        colon = i;
      }
      i = i + 1;
    }
    if (colon < 0) {
      return 0;
    }
    nl = colon - ls;
    if (nl == 4 && vn_lc(req[ls]) == 'h' && vn_lc(req[ls + 1]) == 'o' &&
        vn_lc(req[ls + 2]) == 's' && vn_lc(req[ls + 3]) == 't') {
      out[2] = 1;
    }
    if (nl == 14 && vn_lc(req[ls]) == 'c' && vn_lc(req[ls + 1]) == 'o' &&
        vn_lc(req[ls + 2]) == 'n' && vn_lc(req[ls + 3]) == 't' &&
        vn_lc(req[ls + 4]) == 'e' && vn_lc(req[ls + 5]) == 'n' &&
        vn_lc(req[ls + 6]) == 't' && req[ls + 7] == '-' && vn_lc(req[ls + 8]) == 'l' &&
        vn_lc(req[ls + 9]) == 'e' && vn_lc(req[ls + 10]) == 'n' &&
        vn_lc(req[ls + 11]) == 'g' && vn_lc(req[ls + 12]) == 't' &&
        vn_lc(req[ls + 13]) == 'h') {
      v = 0;
      ls = colon + 1;
      while (ls < i && (req[ls] == ' ' || req[ls] == 9)) {
        ls = ls + 1;
      }
      while (ls < i && req[ls] >= '0' && req[ls] <= '9') {
        v = v * 10 + (req[ls] - '0');
        ls = ls + 1;
      }
      out[3] = v;
    }
    if (nl == 10 && vn_lc(req[ls]) == 'c' && vn_lc(req[ls + 1]) == 'o' &&
        vn_lc(req[ls + 2]) == 'n' && vn_lc(req[ls + 3]) == 'n' &&
        vn_lc(req[ls + 4]) == 'e' && vn_lc(req[ls + 5]) == 'c' &&
        vn_lc(req[ls + 6]) == 't' && vn_lc(req[ls + 7]) == 'i' &&
        vn_lc(req[ls + 8]) == 'o' && vn_lc(req[ls + 9]) == 'n') {
      close_tok = 0;
      keep_tok = 0;
      v = colon + 1;
      while (v + 4 < i) {
        if (vn_lc(req[v]) == 'c' && vn_lc(req[v + 1]) == 'l' && vn_lc(req[v + 2]) == 'o' &&
            vn_lc(req[v + 3]) == 's' && vn_lc(req[v + 4]) == 'e') {
          close_tok = 1;
        }
        if (vn_lc(req[v]) == 'k' && vn_lc(req[v + 1]) == 'e' && vn_lc(req[v + 2]) == 'e' &&
            vn_lc(req[v + 3]) == 'p' && req[v + 4] == '-') {
          keep_tok = 1;
        }
        v = v + 1;
      }
      if (close_tok) {
        out[4] = 0;
      } else if (keep_tok) {
        out[4] = 1;
      } else {
        out[4] = 2;
      }
    }
  }
  out[0] = 1;
  return 1;
}

// Serves one parsed request.  ph is vn_parse_head's output; cpath/chdr/cmeta
// carry the connection's cached 200 head (cmeta = [head len, file size,
// cache valid]).
int vn_serve(char *req, int *ph, char *cpath, char *chdr, int *cmeta) {
  char path[256];
  char num[24];
  char fbuf[1024];
  int sz;
  int fd;
  int m;
  int total;
  int want;
  if (!ph[0]) {
    send("HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n", 47);
    return 400;
  }
  if (ph[1] && !ph[2]) {
    send("HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n", 47);
    return 400;
  }
  if (parse_path(req, path) < 0) {
    send("HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n", 47);
    return 400;
  }
  sz = stat_size(path);
  if (sz < 0) {
    send("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n", 45);
    return 404;
  }
  if (!cmeta[2] || sz != cmeta[1] || strcmp(path, cpath) != 0) {
    strcpy(chdr, "HTTP/1.1 200 OK\r\nContent-Length: ");
    itoa(num, sz);
    strcat(chdr, num);
    strcat(chdr, "\r\n\r\n");
    cmeta[0] = strlen(chdr);
    cmeta[1] = sz;
    cmeta[2] = 1;
    strcpy(cpath, path);
  }
  fd = open(path);
  send(chdr, cmeta[0]);
  total = 0;
  while (total < sz) {
    want = sz - total;
    if (want > 1024) {
      want = 1024;
    }
    m = read(fd, fbuf, want);
    if (m <= 0) {
      close(fd);
      return 500;
    }
    send(fbuf, m);
    total = total + m;
  }
  close(fd);
  return 200;
}

int main() {
  char req[2048];
  char bbuf[1024];
  char cpath[256];
  char chdr[320];
  int cmeta[3];
  int ph[5];
  int stats[4];
  int n;
  int m;
  int he;
  int body;
  int rem;
  int take;
  int st;
  int ka;
  int i;
  int j;
  int sp;
  n = 0;
  cmeta[0] = 0;
  cmeta[1] = 0;
  cmeta[2] = 0;
  stats[0] = 0;
  stats[1] = 0;
  stats[2] = 0;
  stats[3] = 0;
  while (1) {
    he = vn_headers_end_from(req, 0, n);
    while (he < 0) {
      if (n >= 2047) {
        send("HTTP/1.1 413 Payload Too Large\r\nContent-Length: 0\r\n\r\n", 53);
        stats[0] = stats[0] + 1;
        stats[2] = stats[2] + 1;
        return_data(stats, sizeof(int) * 4);
        exit(3);
        return 3;
      }
      m = recv(req + n, 2047 - n);
      if (m <= 0) {
        if (n == 0) {
          stats[3] = 1;
          return_data(stats, sizeof(int) * 4);
          exit(0);
          return 0;
        }
        send("HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n", 47);
        stats[0] = stats[0] + 1;
        stats[2] = stats[2] + 1;
        return_data(stats, sizeof(int) * 4);
        exit(1);
        return 1;
      }
      sp = n - 3;
      n = n + m;
      he = vn_headers_end_from(req, sp, n);
    }
    req[n] = 0;
    vn_parse_head(req, he, ph);
    st = vn_serve(req, ph, cpath, chdr, cmeta);
    stats[0] = stats[0] + 1;
    if (st == 200) {
      stats[1] = stats[1] + 1;
    } else {
      stats[2] = stats[2] + 1;
    }
    if (st == 400) {
      return_data(stats, sizeof(int) * 4);
      exit(1);
      return 1;
    }
    body = n - (he + 4);
    if (body > ph[3]) {
      body = ph[3];
    }
    rem = ph[3] - body;
    while (rem > 0) {
      take = rem;
      if (take > 1024) {
        take = 1024;
      }
      m = recv(bbuf, take);
      if (m <= 0) {
        return_data(stats, sizeof(int) * 4);
        exit(1);
        return 1;
      }
      rem = rem - m;
    }
    ka = ph[4];
    if (ka == 2) {
      ka = ph[1];
    }
    i = he + 4 + body;
    j = 0;
    while (i < n) {
      req[j] = req[i];
      i = i + 1;
      j = j + 1;
    }
    n = j;
    if (!ka) {
      stats[3] = 1;
      return_data(stats, sizeof(int) * 4);
      exit(0);
      return 0;
    }
  }
  return 0;
}
)vc";
}

const char* ServeModeName(ServeMode mode) {
  switch (mode) {
    case ServeMode::kNative:
      return "native";
    case ServeMode::kVirtine:
      return "virtine";
    case ServeMode::kVirtineSnapshot:
      return "virtine+snapshot";
  }
  return "?";
}

StaticHttpServer::StaticHttpServer(wasp::Runtime* runtime, wasp::HostEnv* env)
    : runtime_(runtime), env_(env) {
  auto image = vcc::CompileProgram(vrt::VlibcSource() + StaticHandlerSource(), "main",
                                   vrt::Env::kLong64);
  VB_CHECK(image.ok(), "static handler failed to compile: " << image.status().ToString());
  handler_image_ = std::move(*image);
  auto ka_image = vcc::CompileProgram(vrt::VlibcSource() + KeepAliveHandlerSource(), "main",
                                      vrt::Env::kLong64);
  VB_CHECK(ka_image.ok(),
           "keep-alive handler failed to compile: " << ka_image.status().ToString());
  keepalive_image_ = std::move(*ka_image);
}

vbase::Result<ServeStats> StaticHttpServer::HandleConnection(wasp::ByteChannel& channel,
                                                             ServeMode mode,
                                                             const ConnectionOptions& conn) {
  switch (mode) {
    case ServeMode::kNative:
      return HandleNative(channel, conn);
    case ServeMode::kVirtine:
      return HandleVirtine(channel, /*snapshot=*/false, conn);
    case ServeMode::kVirtineSnapshot:
      return HandleVirtine(channel, /*snapshot=*/true, conn);
  }
  return vbase::InvalidArgument("bad mode");
}

vbase::Result<ServeStats> StaticHttpServer::HandleNative(wasp::ByteChannel& channel,
                                                         const ConnectionOptions& conn) {
  vbase::WallTimer timer;
  ServeStats stats;
  std::string inbuf;
  std::vector<char> window(std::max<size_t>(conn.read_chunk, 256));
  const auto count = [&stats](int status) {
    stats.status = status;
    ++stats.requests;
    if (status >= 200 && status < 300) {
      ++stats.r2xx;
    } else if (status >= 400 && status < 500) {
      ++stats.r4xx;
    } else if (status >= 500) {
      ++stats.r5xx;
    }
  };
  // Writes an empty-bodied status response; used for every non-200 path.
  const auto respond = [&channel, &count](int status) {
    channel.guest().WriteString(BuildResponse(status, ""));
    count(status);
  };
  bool closing = false;
  while (!closing) {
    // Frame exactly one request with a growable, bounded read loop
    // (replaces the old fixed 2 KB window): accumulate until the head is
    // complete and the declared body has arrived, 413 when either exceeds
    // its cap, 400 on malformed or smuggling-shaped input or a stream that
    // ends mid-request.
    FramedRequest framed;
    bool have_request = false;
    while (!have_request && !closing) {
      auto need = RequestBytesNeeded(inbuf);
      if (need.ok()) {
        // max_body_bytes caps the declared body; the head is already inside
        // max_head_bytes, so the total is the cheap place to enforce it.
        if (*need > conn.max_head_bytes + conn.max_body_bytes) {
          respond(413);
          closing = true;
          break;
        }
        if (inbuf.size() >= *need) {
          auto f = FrameRequest(inbuf);
          if (!f.ok()) {
            respond(400);
            closing = true;
            break;
          }
          framed = std::move(*f);
          have_request = true;
          break;
        }
      } else if (need.status().code() == vbase::Code::kInvalidArgument) {
        respond(400);
        closing = true;
        break;
      } else if (inbuf.size() >= conn.max_head_bytes) {
        // Head still unterminated at the cap: reject rather than truncate.
        respond(413);
        closing = true;
        break;
      }
      const uint64_t n = channel.guest().Read(window.data(), window.size());
      if (n == 0) {
        // Peer closed its write end.  Mid-request bytes mean a truncated
        // request (400); a clean boundary just ends the connection.
        if (!inbuf.empty() || stats.requests == 0) {
          respond(400);
        }
        closing = true;
        break;
      }
      inbuf.append(window.data(), static_cast<size_t>(n));
    }
    if (!have_request) {
      break;
    }
    const HttpRequest& req = framed.request;
    inbuf.erase(0, framed.consumed);
    // Presence check (not value): matches the guest handler's scan, so every
    // ServeMode answers the same bytes with the same status for structural
    // rules.  (Value-level rules the guest does not implement — e.g.
    // Content-Length digit checking — remain host-parser only.)
    if (req.version == "HTTP/1.1" && !req.HasHeader("host")) {
      respond(400);
      break;  // structural 400: do not trust the stream's framing any more
    }
    auto content = env_->GetFile(req.target);
    if (!content.ok()) {
      respond(404);
    } else {
      // Stream the response: head first, then the body in bounded chunks
      // (the unit of incremental I/O — the channel itself is unbounded).
      channel.guest().WriteString("HTTP/1.1 200 OK\r\nContent-Length: " +
                                  std::to_string(content->size()) + "\r\n\r\n");
      for (size_t off = 0; off < content->size(); off += window.size()) {
        const size_t len = std::min(window.size(), content->size() - off);
        channel.guest().Write(content->data() + off, len);
      }
      count(200);
    }
    if (!conn.keep_alive || !WantKeepAlive(req) ||
        (conn.max_requests > 0 &&
         stats.requests >= static_cast<uint64_t>(conn.max_requests))) {
      closing = true;
    }
  }
  stats.wall_ns = timer.ElapsedNanos();
  return stats;
}

vbase::Result<ServeStats> StaticHttpServer::HandleVirtine(wasp::ByteChannel& channel,
                                                          bool snapshot,
                                                          const ConnectionOptions& conn) {
  vbase::WallTimer timer;
  wasp::VirtineSpec spec;
  spec.image = conn.keep_alive ? &keepalive_image_ : &handler_image_;
  spec.key = conn.keep_alive ? kKeepAliveHandlerKey : kStaticHandlerKey;
  spec.mem_size = 1ULL << 20;
  spec.policy = wasp::kPolicyStream | wasp::kPolicyFileIo | wasp::MaskOf(wasp::kHcSnapshot);
  if (conn.keep_alive) {
    // The keep-alive guest reports [requests, 2xx, 4xx, clean] on exit.
    spec.policy |= wasp::MaskOf(wasp::kHcReturnData);
  }
  spec.use_snapshot = snapshot;
  spec.env = env_;
  spec.channel = &channel.guest();
  wasp::RunOutcome outcome = runtime_->Invoke(spec);
  if (outcome.fault != wasp::FaultKind::kNone) {
    // The guest (not the server) died: its shell is already quarantined.
    // Answer 500 with the fault kind as the reason phrase so the client can
    // tell an isolated guest fault from host-side trouble, and return OK
    // stats — one faulted invocation is a served (if failed) connection,
    // not a server error.
    channel.guest().WriteString(
        BuildResponseWithReason(500, wasp::FaultKindName(outcome.fault), ""));
    ServeStats stats;
    stats.status = 500;
    stats.requests = 1;
    stats.r5xx = 1;
    stats.fault = outcome.fault;
    stats.modeled_cycles = outcome.stats.total_cycles;
    stats.guest_cycles = outcome.stats.guest_cycles;
    stats.io_exits = outcome.stats.io_exits;
    stats.wall_ns = timer.ElapsedNanos();
    return stats;
  }
  if (!outcome.status.ok()) {
    return outcome.status;
  }
  ServeStats stats;
  if (conn.keep_alive) {
    // One invocation served the whole connection; per-request accounting
    // comes back through return_data as word-sized counters.
    uint64_t guest_stats[4] = {0, 0, 0, 0};
    if (outcome.output.size() >= sizeof(guest_stats)) {
      std::memcpy(guest_stats, outcome.output.data(), sizeof(guest_stats));
    }
    stats.requests = guest_stats[0];
    stats.r2xx = guest_stats[1];
    stats.r4xx = guest_stats[2];
    stats.status = outcome.exit_code == 0   ? (stats.requests > 0 ? 200 : 0)
                   : outcome.exit_code == 3 ? 413
                                            : 400;
  } else {
    stats.status = outcome.exit_code == 0   ? 200
                   : outcome.exit_code == 2 ? 404
                   : outcome.exit_code == 3 ? 413
                                            : 400;
    stats.requests = 1;
    if (stats.status == 200) {
      stats.r2xx = 1;
    } else {
      stats.r4xx = 1;
    }
  }
  stats.modeled_cycles = outcome.stats.total_cycles;
  stats.guest_cycles = outcome.stats.guest_cycles;
  stats.io_exits = outcome.stats.io_exits;
  stats.wall_ns = timer.ElapsedNanos();
  // Strip VM-exit charges to approximate the same handler logic running
  // natively in the host process (Figure 13's baseline denominator).
  const auto& costs = runtime_->options().vm_defaults.guest_costs;
  const uint64_t exit_charges =
      outcome.stats.io_exits * (costs.io_exit + costs.io_entry) + costs.hlt_exit;
  stats.deisolated_cycles =
      outcome.stats.guest_cycles > exit_charges ? outcome.stats.guest_cycles - exit_charges : 0;
  return stats;
}

// --- ConcurrentHttpServer ----------------------------------------------------

ConcurrentHttpServer::ConcurrentHttpServer(wasp::Runtime* runtime, wasp::HostEnv* env,
                                           ConcurrentServerOptions options)
    : options_(options),
      inner_(runtime, env),
      executor_(runtime, [&options] {
        wasp::ExecutorOptions opts;
        opts.workers = options.lanes;
        opts.max_queue_depth = options.max_queue_depth;
        opts.block_when_full = options.block_when_full;
        opts.key_quota = options.key_quota;
        opts.key_quota_overrides = options.key_quota_overrides;
        opts.batch_weight = options.batch_weight;
        opts.recovery = options.recovery;
        return opts;
      }()) {}

std::future<vbase::Result<ServeStats>> ConcurrentHttpServer::SubmitConnection(
    wasp::ByteChannel& channel, ServeMode mode) {
  // Unrouted path: latency class, and the only key is the snapshot-affinity
  // hint — which means every snapshot-mode connection shares one key, so a
  // configured key_quota caps them as a single pool (and sheds 429).  Front
  // ends that want per-tenant quotas use the routed overload below.
  std::string key =
      mode == ServeMode::kVirtineSnapshot ? std::string(kStaticHandlerKey) : std::string();
  return Dispatch(channel, mode, std::move(key), wasp::KeyClass::kLatency,
                  options_.connection);
}

std::future<vbase::Result<ServeStats>> ConcurrentHttpServer::SubmitConnection(
    wasp::ByteChannel& channel, ServeMode mode, const std::string& route) {
  auto it = options_.route_classes.find(route);
  const wasp::KeyClass klass =
      it != options_.route_classes.end() ? it->second : wasp::KeyClass::kLatency;
  // The route is the governance key: quota accounting and the affinity scan
  // both group by it.  Note the trade: every snapshot-mode connection still
  // restores the one static-handler snapshot, so distinct route keys give
  // up some cross-route affinity-scan locality in exchange for per-route
  // quota isolation.
  return Dispatch(channel, mode, "route:" + route, klass, options_.connection);
}

std::future<vbase::Result<ServeStats>> ConcurrentHttpServer::SubmitConnection(
    wasp::ByteChannel& channel, ServeMode mode, const std::string& route,
    const ConnectionOptions& conn) {
  auto it = options_.route_classes.find(route);
  const wasp::KeyClass klass =
      it != options_.route_classes.end() ? it->second : wasp::KeyClass::kLatency;
  return Dispatch(channel, mode, "route:" + route, klass, conn);
}

std::future<vbase::Result<ServeStats>> ConcurrentHttpServer::Dispatch(
    wasp::ByteChannel& channel, ServeMode mode, std::string key, wasp::KeyClass klass,
    const ConnectionOptions& conn) {
  AtomicCounters& ctr = counters_[static_cast<size_t>(mode)];
  auto done = std::make_shared<std::promise<vbase::Result<ServeStats>>>();
  std::future<vbase::Result<ServeStats>> resolved = done->get_future();
  wasp::Admission admission = wasp::Admission::kAccepted;
  const bool accepted = executor_.TrySubmitTask(
      [this, &channel, mode, conn, done, &ctr]() -> wasp::RunOutcome {
        vbase::Result<ServeStats> stats = inner_.HandleConnection(channel, mode, conn);
        wasp::RunOutcome outcome;
        if (stats.ok()) {
          // Per-request accounting: a keep-alive connection contributes one
          // counter tick per request it served, not one per connection, so
          // RPS math over counters stays mode-comparable.
          ctr.requests.fetch_add(stats->requests, std::memory_order_relaxed);
          if (stats->requests > 1) {
            ctr.keepalive_reused.fetch_add(stats->requests - 1, std::memory_order_relaxed);
          }
          ctr.status_2xx.fetch_add(stats->r2xx, std::memory_order_relaxed);
          ctr.status_4xx.fetch_add(stats->r4xx, std::memory_order_relaxed);
          ctr.status_5xx.fetch_add(stats->r5xx, std::memory_order_relaxed);
          if (stats->fault != wasp::FaultKind::kNone) {
            // Propagate the fault on the task's outcome so the executor
            // classifies this job as faulted (and still releases the route's
            // quota slot — a fault storm must not wedge its key).
            ctr.faulted.fetch_add(1, std::memory_order_relaxed);
            outcome.fault = stats->fault;
          }
          ctr.modeled_cycles.fetch_add(stats->modeled_cycles, std::memory_order_relaxed);
          ctr.io_exits.fetch_add(stats->io_exits, std::memory_order_relaxed);
        } else {
          ctr.errors.fetch_add(1, std::memory_order_relaxed);
        }
        ctr.completed.fetch_add(1, std::memory_order_relaxed);
        done->set_value(std::move(stats));
        return outcome;
      },
      /*future=*/nullptr, std::move(key), klass, &admission);
  if (!accepted) {
    // Load shedding: answer on the submitter's thread so the client sees a
    // well-formed response instead of a silently dropped connection.  The
    // status tells it what to do next: 429 = this route must back off (over
    // its quota, or its circuit breaker is open — the server is fine);
    // 503 = the whole server is overloaded.  A breaker shed adds Retry-After
    // so a well-behaved client knows when to probe again.
    int status = 503;
    std::vector<std::pair<std::string, std::string>> headers;
    if (admission == wasp::Admission::kQuotaExceeded) {
      status = 429;
      ctr.quota_rejected.fetch_add(1, std::memory_order_relaxed);
    } else if (admission == wasp::Admission::kCircuitOpen) {
      status = 429;
      headers.emplace_back("Retry-After", std::to_string(options_.recovery.retry_after_s));
      ctr.breaker_rejected.fetch_add(1, std::memory_order_relaxed);
    } else {
      ctr.rejected.fetch_add(1, std::memory_order_relaxed);
    }
    channel.guest().WriteString(BuildResponse(status, "", headers));
    ServeStats shed;
    shed.status = status;
    done->set_value(shed);
    return resolved;
  }
  ctr.accepted.fetch_add(1, std::memory_order_relaxed);
  return resolved;
}

ServerCounters ConcurrentHttpServer::counters(ServeMode mode) const {
  const AtomicCounters& ctr = counters_[static_cast<size_t>(mode)];
  ServerCounters out;
  out.accepted = ctr.accepted.load(std::memory_order_relaxed);
  out.rejected = ctr.rejected.load(std::memory_order_relaxed);
  out.quota_rejected = ctr.quota_rejected.load(std::memory_order_relaxed);
  out.breaker_rejected = ctr.breaker_rejected.load(std::memory_order_relaxed);
  out.completed = ctr.completed.load(std::memory_order_relaxed);
  out.errors = ctr.errors.load(std::memory_order_relaxed);
  out.faulted = ctr.faulted.load(std::memory_order_relaxed);
  out.status_2xx = ctr.status_2xx.load(std::memory_order_relaxed);
  out.status_4xx = ctr.status_4xx.load(std::memory_order_relaxed);
  out.status_5xx = ctr.status_5xx.load(std::memory_order_relaxed);
  out.requests = ctr.requests.load(std::memory_order_relaxed);
  out.keepalive_reused = ctr.keepalive_reused.load(std::memory_order_relaxed);
  out.modeled_cycles = ctr.modeled_cycles.load(std::memory_order_relaxed);
  out.io_exits = ctr.io_exits.load(std::memory_order_relaxed);
  return out;
}

}  // namespace vnet
