#include "src/vnet/server.h"

#include "src/base/clock.h"
#include "src/base/log.h"
#include "src/vcc/vcc.h"
#include "src/vnet/http.h"
#include "src/vrt/vlibc.h"

namespace vnet {

std::string EchoHandlerSource() {
  // The guest timestamps its startup milestones with in-guest rdtsc (the
  // paper takes the Figure 4 measurements "inside the virtual context") and
  // ships them back through return_data after the last milestone.
  return R"vc(
int main() {
  char buf[1024];
  int mb[3];
  int n;
  mb[0] = __rdtsc();          // milestone: reached C code (server main)
  n = recv(buf, 1023);
  mb[1] = __rdtsc();          // milestone: request received (recv returned)
  if (n > 0) {
    send(buf, n);
  }
  mb[2] = __rdtsc();          // milestone: response sent (send returned)
  return_data(mb, sizeof(int) * 3);
  return n;
}
)vc";
}

std::string StaticHandlerSource() {
  // Exactly the paper's seven host interactions (Section 6.3):
  // (1) recv request, (2) stat file, (3) open, (4) read, (5) send response,
  // (6) close, (7) exit.
  return R"vc(
int parse_path(char *req, char *path) {
  int i;
  int j;
  i = 0;
  while (req[i] && req[i] != ' ') {
    i = i + 1;
  }
  if (!req[i]) {
    return -1;
  }
  i = i + 1;
  j = 0;
  while (req[i] && req[i] != ' ' && j < 255) {
    path[j] = req[i];
    i = i + 1;
    j = j + 1;
  }
  path[j] = 0;
  if (j == 0) {
    return -1;
  }
  return j;
}

int main() {
  char req[2048];
  char path[256];
  char hdr[320];
  char num[24];
  char *body;
  char *resp;
  int n;
  int sz;
  int fd;
  int m;
  int hl;
  n = recv(req, 2047);                                   // (1)
  if (n <= 0) {
    exit(1);
    return 1;
  }
  req[n] = 0;
  if (parse_path(req, path) < 0) {
    send("HTTP/1.0 400 Bad Request\r\nContent-Length: 0\r\n\r\n", 47);
    exit(1);
    return 1;
  }
  sz = stat_size(path);                                  // (2)
  if (sz < 0) {
    send("HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n", 45);
    exit(2);
    return 2;
  }
  fd = open(path);                                       // (3)
  body = malloc(sz + 16);
  m = read(fd, body, sz);                                // (4)
  strcpy(hdr, "HTTP/1.0 200 OK\r\nContent-Length: ");
  itoa(num, m);
  strcat(hdr, num);
  strcat(hdr, "\r\n\r\n");
  hl = strlen(hdr);
  resp = malloc(hl + m + 16);
  memcpy(resp, hdr, hl);
  memcpy(resp + hl, body, m);
  send(resp, hl + m);                                    // (5)
  close(fd);                                             // (6)
  exit(0);                                               // (7)
  return 0;
}
)vc";
}

const char* ServeModeName(ServeMode mode) {
  switch (mode) {
    case ServeMode::kNative:
      return "native";
    case ServeMode::kVirtine:
      return "virtine";
    case ServeMode::kVirtineSnapshot:
      return "virtine+snapshot";
  }
  return "?";
}

StaticHttpServer::StaticHttpServer(wasp::Runtime* runtime, wasp::HostEnv* env)
    : runtime_(runtime), env_(env) {
  auto image = vcc::CompileProgram(vrt::VlibcSource() + StaticHandlerSource(), "main",
                                   vrt::Env::kLong64);
  VB_CHECK(image.ok(), "static handler failed to compile: " << image.status().ToString());
  handler_image_ = std::move(*image);
}

vbase::Result<ServeStats> StaticHttpServer::HandleConnection(wasp::ByteChannel& channel,
                                                             ServeMode mode) {
  switch (mode) {
    case ServeMode::kNative:
      return HandleNative(channel);
    case ServeMode::kVirtine:
      return HandleVirtine(channel, /*snapshot=*/false);
    case ServeMode::kVirtineSnapshot:
      return HandleVirtine(channel, /*snapshot=*/true);
  }
  return vbase::InvalidArgument("bad mode");
}

vbase::Result<ServeStats> StaticHttpServer::HandleNative(wasp::ByteChannel& channel) {
  vbase::WallTimer timer;
  ServeStats stats;
  char buf[2048];
  const uint64_t n = channel.guest().Read(buf, sizeof(buf) - 1);
  auto req = ParseRequest(std::string(buf, n));
  if (!req.ok()) {
    channel.guest().WriteString(BuildResponse(400, ""));
    stats.status = 400;
    stats.wall_ns = timer.ElapsedNanos();
    return stats;
  }
  auto content = env_->GetFile(req->target);
  if (!content.ok()) {
    channel.guest().WriteString(BuildResponse(404, ""));
    stats.status = 404;
    stats.wall_ns = timer.ElapsedNanos();
    return stats;
  }
  channel.guest().WriteString(
      BuildResponse(200, std::string(content->begin(), content->end())));
  stats.status = 200;
  stats.wall_ns = timer.ElapsedNanos();
  return stats;
}

vbase::Result<ServeStats> StaticHttpServer::HandleVirtine(wasp::ByteChannel& channel,
                                                          bool snapshot) {
  vbase::WallTimer timer;
  wasp::VirtineSpec spec;
  spec.image = &handler_image_;
  spec.key = "http-static-handler";
  spec.mem_size = 1ULL << 20;
  spec.policy = wasp::kPolicyStream | wasp::kPolicyFileIo | wasp::MaskOf(wasp::kHcSnapshot);
  spec.use_snapshot = snapshot;
  spec.env = env_;
  spec.channel = &channel.guest();
  wasp::RunOutcome outcome = runtime_->Invoke(spec);
  if (!outcome.status.ok()) {
    return outcome.status;
  }
  ServeStats stats;
  stats.status = outcome.exit_code == 0 ? 200 : outcome.exit_code == 2 ? 404 : 400;
  stats.modeled_cycles = outcome.stats.total_cycles;
  stats.guest_cycles = outcome.stats.guest_cycles;
  stats.io_exits = outcome.stats.io_exits;
  stats.wall_ns = timer.ElapsedNanos();
  // Strip VM-exit charges to approximate the same handler logic running
  // natively in the host process (Figure 13's baseline denominator).
  const auto& costs = runtime_->options().vm_defaults.guest_costs;
  const uint64_t exit_charges =
      outcome.stats.io_exits * (costs.io_exit + costs.io_entry) + costs.hlt_exit;
  stats.deisolated_cycles =
      outcome.stats.guest_cycles > exit_charges ? outcome.stats.guest_cycles - exit_charges : 0;
  return stats;
}

}  // namespace vnet
