#include "src/vnet/server.h"

#include "src/base/clock.h"
#include "src/base/log.h"
#include "src/vcc/vcc.h"
#include "src/vnet/http.h"
#include "src/vrt/vlibc.h"

namespace vnet {
namespace {

// Snapshot key of the static-file handler: HandleVirtine keys its
// VirtineSpec with it, and snapshot-mode connection jobs carry it as the
// executor's keyed-dequeue affinity hint, so a lane keeps serving the shell
// whose snapshot it just parked.
constexpr const char* kStaticHandlerKey = "http-static-handler";

}  // namespace

std::string EchoHandlerSource() {
  // The guest timestamps its startup milestones with in-guest rdtsc (the
  // paper takes the Figure 4 measurements "inside the virtual context") and
  // ships them back through return_data after the last milestone.
  return R"vc(
int main() {
  char buf[1024];
  int mb[3];
  int n;
  mb[0] = __rdtsc();          // milestone: reached C code (server main)
  n = recv(buf, 1023);
  mb[1] = __rdtsc();          // milestone: request received (recv returned)
  if (n > 0) {
    send(buf, n);
  }
  mb[2] = __rdtsc();          // milestone: response sent (send returned)
  return_data(mb, sizeof(int) * 3);
  return n;
}
)vc";
}

std::string StaticHandlerSource() {
  // Exactly the paper's seven host interactions (Section 6.3):
  // (1) recv request, (2) stat file, (3) open, (4) read, (5) send response,
  // (6) close, (7) exit.  Structural request validation (complete header
  // block, an HTTP/ version token, a colon in every header line, Host on
  // HTTP/1.1) runs inside the guest before any file interaction: a
  // malformed request costs three hypercalls (recv, send 400, exit) and
  // never touches the sandboxed filesystem.  Scans are bounded to the
  // header block, so body bytes can never satisfy a header rule.
  return R"vc(
int vn_headers_end(char *req, int n) {
  int i;
  i = 0;
  while (i + 3 < n) {
    if (req[i] == 13 && req[i + 1] == 10 && req[i + 2] == 13 && req[i + 3] == 10) {
      return i;
    }
    i = i + 1;
  }
  return -1;
}

int vn_version_start(char *req, int he) {
  int i;
  int t;
  i = 0;
  t = 0;
  while (i < he && req[i] != 13) {
    while (i < he && (req[i] == ' ' || req[i] == 9)) {
      i = i + 1;
    }
    if (i >= he || req[i] == 13) {
      return -1;
    }
    if (t == 2) {
      return i;
    }
    while (i < he && req[i] != ' ' && req[i] != 9 && req[i] != 13) {
      i = i + 1;
    }
    t = t + 1;
  }
  return -1;
}

int vn_head_valid(char *req, int he) {
  int i;
  int vs;
  int has_colon;
  vs = vn_version_start(req, he);
  if (vs < 0 || vs + 4 >= he) {
    return 0;
  }
  if (!(req[vs] == 'H' && req[vs + 1] == 'T' && req[vs + 2] == 'T' && req[vs + 3] == 'P' &&
        req[vs + 4] == '/')) {
    return 0;
  }
  i = vs;
  while (i < he && req[i] != 13) {
    i = i + 1;
  }
  while (i < he) {
    if (req[i] == 10) {
      has_colon = 0;
      i = i + 1;
      while (i < he && req[i] != 13) {
        if (req[i] == ':') {
          has_colon = 1;
        }
        i = i + 1;
      }
      if (!has_colon) {
        return 0;
      }
    } else {
      i = i + 1;
    }
  }
  return 1;
}

int vn_is_http11(char *req, int he) {
  int vs;
  vs = vn_version_start(req, he);
  if (vs < 0 || vs + 8 > he) {
    return 0;
  }
  if (req[vs] == 'H' && req[vs + 1] == 'T' && req[vs + 2] == 'T' && req[vs + 3] == 'P' &&
      req[vs + 4] == '/' && req[vs + 5] == '1' && req[vs + 6] == '.' && req[vs + 7] == '1' &&
      (req[vs + 8] == 13 || req[vs + 8] == ' ' || req[vs + 8] == 9)) {
    return 1;
  }
  return 0;
}

int vn_has_host(char *req, int he) {
  int i;
  int j;
  i = 0;
  while (i + 5 < he) {
    if (req[i] == 10) {
      if ((req[i + 1] == 'H' || req[i + 1] == 'h') && (req[i + 2] == 'o' || req[i + 2] == 'O') &&
          (req[i + 3] == 's' || req[i + 3] == 'S') && (req[i + 4] == 't' || req[i + 4] == 'T')) {
        j = i + 5;
        while (j < he && (req[j] == ' ' || req[j] == 9)) {
          j = j + 1;
        }
        if (j < he && req[j] == ':') {
          return 1;
        }
      }
    }
    i = i + 1;
  }
  return 0;
}

int parse_path(char *req, char *path) {
  int i;
  int j;
  i = 0;
  while (req[i] && req[i] != ' ') {
    i = i + 1;
  }
  if (!req[i]) {
    return -1;
  }
  i = i + 1;
  j = 0;
  while (req[i] && req[i] != ' ' && j < 255) {
    path[j] = req[i];
    i = i + 1;
    j = j + 1;
  }
  path[j] = 0;
  if (j == 0) {
    return -1;
  }
  return j;
}

int main() {
  char req[2048];
  char path[256];
  char hdr[320];
  char num[24];
  char *body;
  char *resp;
  int n;
  int sz;
  int fd;
  int m;
  int hl;
  int he;
  n = recv(req, 2047);                                   // (1)
  if (n <= 0) {
    exit(1);
    return 1;
  }
  req[n] = 0;
  he = vn_headers_end(req, n);
  if (he < 0) {
    send("HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n", 47);
    exit(1);
    return 1;
  }
  if (!vn_head_valid(req, he)) {
    send("HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n", 47);
    exit(1);
    return 1;
  }
  if (vn_is_http11(req, he) && !vn_has_host(req, he)) {
    send("HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n", 47);
    exit(1);
    return 1;
  }
  if (parse_path(req, path) < 0) {
    send("HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n", 47);
    exit(1);
    return 1;
  }
  sz = stat_size(path);                                  // (2)
  if (sz < 0) {
    send("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n", 45);
    exit(2);
    return 2;
  }
  fd = open(path);                                       // (3)
  body = malloc(sz + 16);
  m = read(fd, body, sz);                                // (4)
  strcpy(hdr, "HTTP/1.1 200 OK\r\nContent-Length: ");
  itoa(num, m);
  strcat(hdr, num);
  strcat(hdr, "\r\n\r\n");
  hl = strlen(hdr);
  resp = malloc(hl + m + 16);
  memcpy(resp, hdr, hl);
  memcpy(resp + hl, body, m);
  send(resp, hl + m);                                    // (5)
  close(fd);                                             // (6)
  exit(0);                                               // (7)
  return 0;
}
)vc";
}

const char* ServeModeName(ServeMode mode) {
  switch (mode) {
    case ServeMode::kNative:
      return "native";
    case ServeMode::kVirtine:
      return "virtine";
    case ServeMode::kVirtineSnapshot:
      return "virtine+snapshot";
  }
  return "?";
}

StaticHttpServer::StaticHttpServer(wasp::Runtime* runtime, wasp::HostEnv* env)
    : runtime_(runtime), env_(env) {
  auto image = vcc::CompileProgram(vrt::VlibcSource() + StaticHandlerSource(), "main",
                                   vrt::Env::kLong64);
  VB_CHECK(image.ok(), "static handler failed to compile: " << image.status().ToString());
  handler_image_ = std::move(*image);
}

vbase::Result<ServeStats> StaticHttpServer::HandleConnection(wasp::ByteChannel& channel,
                                                             ServeMode mode) {
  switch (mode) {
    case ServeMode::kNative:
      return HandleNative(channel);
    case ServeMode::kVirtine:
      return HandleVirtine(channel, /*snapshot=*/false);
    case ServeMode::kVirtineSnapshot:
      return HandleVirtine(channel, /*snapshot=*/true);
  }
  return vbase::InvalidArgument("bad mode");
}

vbase::Result<ServeStats> StaticHttpServer::HandleNative(wasp::ByteChannel& channel) {
  vbase::WallTimer timer;
  ServeStats stats;
  char buf[2048];
  const uint64_t n = channel.guest().Read(buf, sizeof(buf) - 1);
  auto req = ParseRequest(std::string(buf, n));
  if (!req.ok()) {
    // Truncated, oversized (no header terminator within the read window),
    // or outright malformed: all collapse to a clean 400.
    channel.guest().WriteString(BuildResponse(400, ""));
    stats.status = 400;
    stats.wall_ns = timer.ElapsedNanos();
    return stats;
  }
  // Presence check (not value): matches the guest handler's scan, so every
  // ServeMode answers the same bytes with the same status for structural
  // rules.  (Value-level rules the guest does not implement — e.g.
  // Content-Length digit checking — remain host-parser only.)
  if (req->version == "HTTP/1.1" && !req->HasHeader("host")) {
    channel.guest().WriteString(BuildResponse(400, ""));
    stats.status = 400;
    stats.wall_ns = timer.ElapsedNanos();
    return stats;
  }
  auto content = env_->GetFile(req->target);
  if (!content.ok()) {
    channel.guest().WriteString(BuildResponse(404, ""));
    stats.status = 404;
    stats.wall_ns = timer.ElapsedNanos();
    return stats;
  }
  channel.guest().WriteString(
      BuildResponse(200, std::string(content->begin(), content->end())));
  stats.status = 200;
  stats.wall_ns = timer.ElapsedNanos();
  return stats;
}

vbase::Result<ServeStats> StaticHttpServer::HandleVirtine(wasp::ByteChannel& channel,
                                                          bool snapshot) {
  vbase::WallTimer timer;
  wasp::VirtineSpec spec;
  spec.image = &handler_image_;
  spec.key = kStaticHandlerKey;
  spec.mem_size = 1ULL << 20;
  spec.policy = wasp::kPolicyStream | wasp::kPolicyFileIo | wasp::MaskOf(wasp::kHcSnapshot);
  spec.use_snapshot = snapshot;
  spec.env = env_;
  spec.channel = &channel.guest();
  wasp::RunOutcome outcome = runtime_->Invoke(spec);
  if (outcome.fault != wasp::FaultKind::kNone) {
    // The guest (not the server) died: its shell is already quarantined.
    // Answer 500 with the fault kind as the reason phrase so the client can
    // tell an isolated guest fault from host-side trouble, and return OK
    // stats — one faulted invocation is a served (if failed) connection,
    // not a server error.
    channel.guest().WriteString(
        BuildResponseWithReason(500, wasp::FaultKindName(outcome.fault), ""));
    ServeStats stats;
    stats.status = 500;
    stats.fault = outcome.fault;
    stats.modeled_cycles = outcome.stats.total_cycles;
    stats.guest_cycles = outcome.stats.guest_cycles;
    stats.io_exits = outcome.stats.io_exits;
    stats.wall_ns = timer.ElapsedNanos();
    return stats;
  }
  if (!outcome.status.ok()) {
    return outcome.status;
  }
  ServeStats stats;
  stats.status = outcome.exit_code == 0 ? 200 : outcome.exit_code == 2 ? 404 : 400;
  stats.modeled_cycles = outcome.stats.total_cycles;
  stats.guest_cycles = outcome.stats.guest_cycles;
  stats.io_exits = outcome.stats.io_exits;
  stats.wall_ns = timer.ElapsedNanos();
  // Strip VM-exit charges to approximate the same handler logic running
  // natively in the host process (Figure 13's baseline denominator).
  const auto& costs = runtime_->options().vm_defaults.guest_costs;
  const uint64_t exit_charges =
      outcome.stats.io_exits * (costs.io_exit + costs.io_entry) + costs.hlt_exit;
  stats.deisolated_cycles =
      outcome.stats.guest_cycles > exit_charges ? outcome.stats.guest_cycles - exit_charges : 0;
  return stats;
}

// --- ConcurrentHttpServer ----------------------------------------------------

ConcurrentHttpServer::ConcurrentHttpServer(wasp::Runtime* runtime, wasp::HostEnv* env,
                                           ConcurrentServerOptions options)
    : options_(options),
      inner_(runtime, env),
      executor_(runtime, [&options] {
        wasp::ExecutorOptions opts;
        opts.workers = options.lanes;
        opts.max_queue_depth = options.max_queue_depth;
        opts.block_when_full = options.block_when_full;
        opts.key_quota = options.key_quota;
        opts.key_quota_overrides = options.key_quota_overrides;
        opts.batch_weight = options.batch_weight;
        opts.recovery = options.recovery;
        return opts;
      }()) {}

std::future<vbase::Result<ServeStats>> ConcurrentHttpServer::SubmitConnection(
    wasp::ByteChannel& channel, ServeMode mode) {
  // Unrouted path: latency class, and the only key is the snapshot-affinity
  // hint — which means every snapshot-mode connection shares one key, so a
  // configured key_quota caps them as a single pool (and sheds 429).  Front
  // ends that want per-tenant quotas use the routed overload below.
  std::string key =
      mode == ServeMode::kVirtineSnapshot ? std::string(kStaticHandlerKey) : std::string();
  return Dispatch(channel, mode, std::move(key), wasp::KeyClass::kLatency);
}

std::future<vbase::Result<ServeStats>> ConcurrentHttpServer::SubmitConnection(
    wasp::ByteChannel& channel, ServeMode mode, const std::string& route) {
  auto it = options_.route_classes.find(route);
  const wasp::KeyClass klass =
      it != options_.route_classes.end() ? it->second : wasp::KeyClass::kLatency;
  // The route is the governance key: quota accounting and the affinity scan
  // both group by it.  Note the trade: every snapshot-mode connection still
  // restores the one static-handler snapshot, so distinct route keys give
  // up some cross-route affinity-scan locality in exchange for per-route
  // quota isolation.
  return Dispatch(channel, mode, "route:" + route, klass);
}

std::future<vbase::Result<ServeStats>> ConcurrentHttpServer::Dispatch(
    wasp::ByteChannel& channel, ServeMode mode, std::string key, wasp::KeyClass klass) {
  AtomicCounters& ctr = counters_[static_cast<size_t>(mode)];
  auto done = std::make_shared<std::promise<vbase::Result<ServeStats>>>();
  std::future<vbase::Result<ServeStats>> resolved = done->get_future();
  wasp::Admission admission = wasp::Admission::kAccepted;
  const bool accepted = executor_.TrySubmitTask(
      [this, &channel, mode, done, &ctr]() -> wasp::RunOutcome {
        vbase::Result<ServeStats> stats = inner_.HandleConnection(channel, mode);
        wasp::RunOutcome outcome;
        if (stats.ok()) {
          const int status = stats->status;
          if (status >= 200 && status < 300) {
            ctr.status_2xx.fetch_add(1, std::memory_order_relaxed);
          } else if (status >= 400 && status < 500) {
            ctr.status_4xx.fetch_add(1, std::memory_order_relaxed);
          } else if (status >= 500) {
            ctr.status_5xx.fetch_add(1, std::memory_order_relaxed);
          }
          if (stats->fault != wasp::FaultKind::kNone) {
            // Propagate the fault on the task's outcome so the executor
            // classifies this job as faulted (and still releases the route's
            // quota slot — a fault storm must not wedge its key).
            ctr.faulted.fetch_add(1, std::memory_order_relaxed);
            outcome.fault = stats->fault;
          }
          ctr.modeled_cycles.fetch_add(stats->modeled_cycles, std::memory_order_relaxed);
          ctr.io_exits.fetch_add(stats->io_exits, std::memory_order_relaxed);
        } else {
          ctr.errors.fetch_add(1, std::memory_order_relaxed);
        }
        ctr.completed.fetch_add(1, std::memory_order_relaxed);
        done->set_value(std::move(stats));
        return outcome;
      },
      /*future=*/nullptr, std::move(key), klass, &admission);
  if (!accepted) {
    // Load shedding: answer on the submitter's thread so the client sees a
    // well-formed response instead of a silently dropped connection.  The
    // status tells it what to do next: 429 = this route must back off (over
    // its quota, or its circuit breaker is open — the server is fine);
    // 503 = the whole server is overloaded.  A breaker shed adds Retry-After
    // so a well-behaved client knows when to probe again.
    int status = 503;
    std::vector<std::pair<std::string, std::string>> headers;
    if (admission == wasp::Admission::kQuotaExceeded) {
      status = 429;
      ctr.quota_rejected.fetch_add(1, std::memory_order_relaxed);
    } else if (admission == wasp::Admission::kCircuitOpen) {
      status = 429;
      headers.emplace_back("Retry-After", std::to_string(options_.recovery.retry_after_s));
      ctr.breaker_rejected.fetch_add(1, std::memory_order_relaxed);
    } else {
      ctr.rejected.fetch_add(1, std::memory_order_relaxed);
    }
    channel.guest().WriteString(BuildResponse(status, "", headers));
    ServeStats shed;
    shed.status = status;
    done->set_value(shed);
    return resolved;
  }
  ctr.accepted.fetch_add(1, std::memory_order_relaxed);
  return resolved;
}

ServerCounters ConcurrentHttpServer::counters(ServeMode mode) const {
  const AtomicCounters& ctr = counters_[static_cast<size_t>(mode)];
  ServerCounters out;
  out.accepted = ctr.accepted.load(std::memory_order_relaxed);
  out.rejected = ctr.rejected.load(std::memory_order_relaxed);
  out.quota_rejected = ctr.quota_rejected.load(std::memory_order_relaxed);
  out.breaker_rejected = ctr.breaker_rejected.load(std::memory_order_relaxed);
  out.completed = ctr.completed.load(std::memory_order_relaxed);
  out.errors = ctr.errors.load(std::memory_order_relaxed);
  out.faulted = ctr.faulted.load(std::memory_order_relaxed);
  out.status_2xx = ctr.status_2xx.load(std::memory_order_relaxed);
  out.status_4xx = ctr.status_4xx.load(std::memory_order_relaxed);
  out.status_5xx = ctr.status_5xx.load(std::memory_order_relaxed);
  out.modeled_cycles = ctr.modeled_cycles.load(std::memory_order_relaxed);
  out.io_exits = ctr.io_exits.load(std::memory_order_relaxed);
  return out;
}

}  // namespace vnet
