#include "src/vaes/aes.h"

#include <sstream>

namespace vaes {
namespace {

constexpr uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16,
};

constexpr uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                               0x20, 0x40, 0x80, 0x1b, 0x36};

uint8_t Xtime(uint8_t x) {
  return static_cast<uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

}  // namespace

std::array<uint8_t, 176> ExpandKey(const Key& key) {
  std::array<uint8_t, 176> rk;
  for (int i = 0; i < 16; ++i) {
    rk[i] = key[i];
  }
  for (int i = 4; i < 44; ++i) {
    uint8_t t0 = rk[(i - 1) * 4];
    uint8_t t1 = rk[(i - 1) * 4 + 1];
    uint8_t t2 = rk[(i - 1) * 4 + 2];
    uint8_t t3 = rk[(i - 1) * 4 + 3];
    if (i % 4 == 0) {
      const uint8_t tmp = t0;
      t0 = kSbox[t1] ^ kRcon[i / 4];
      t1 = kSbox[t2];
      t2 = kSbox[t3];
      t3 = kSbox[tmp];
    }
    rk[i * 4] = rk[(i - 4) * 4] ^ t0;
    rk[i * 4 + 1] = rk[(i - 4) * 4 + 1] ^ t1;
    rk[i * 4 + 2] = rk[(i - 4) * 4 + 2] ^ t2;
    rk[i * 4 + 3] = rk[(i - 4) * 4 + 3] ^ t3;
  }
  return rk;
}

Block EncryptBlock(const std::array<uint8_t, 176>& rk, const Block& in) {
  Block s = in;
  auto add_rk = [&](int round) {
    for (int i = 0; i < 16; ++i) {
      s[i] ^= rk[round * 16 + i];
    }
  };
  auto sub_bytes = [&] {
    for (auto& b : s) {
      b = kSbox[b];
    }
  };
  auto shift_rows = [&] {
    uint8_t t = s[1];
    s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
    t = s[2]; s[2] = s[10]; s[10] = t;
    t = s[6]; s[6] = s[14]; s[14] = t;
    t = s[15]; s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;
  };
  auto mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      const uint8_t a0 = s[c * 4], a1 = s[c * 4 + 1], a2 = s[c * 4 + 2], a3 = s[c * 4 + 3];
      s[c * 4] = Xtime(a0) ^ Xtime(a1) ^ a1 ^ a2 ^ a3;
      s[c * 4 + 1] = a0 ^ Xtime(a1) ^ Xtime(a2) ^ a2 ^ a3;
      s[c * 4 + 2] = a0 ^ a1 ^ Xtime(a2) ^ Xtime(a3) ^ a3;
      s[c * 4 + 3] = Xtime(a0) ^ a0 ^ a1 ^ a2 ^ Xtime(a3);
    }
  };
  add_rk(0);
  for (int round = 1; round < 10; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_rk(round);
  }
  sub_bytes();
  shift_rows();
  add_rk(10);
  return s;
}

std::vector<uint8_t> EncryptCbc(const Key& key, const Block& iv,
                                const std::vector<uint8_t>& data) {
  const auto rk = ExpandKey(key);
  std::vector<uint8_t> out(data.size());
  Block chain = iv;
  for (size_t off = 0; off + 16 <= data.size(); off += 16) {
    Block blk;
    for (int i = 0; i < 16; ++i) {
      blk[i] = data[off + i] ^ chain[i];
    }
    chain = EncryptBlock(rk, blk);
    for (int i = 0; i < 16; ++i) {
      out[off + i] = chain[i];
    }
  }
  return out;
}

std::vector<uint8_t> Pkcs7Pad(const std::vector<uint8_t>& data) {
  const size_t pad = 16 - data.size() % 16;
  std::vector<uint8_t> out = data;
  out.insert(out.end(), pad, static_cast<uint8_t>(pad));
  return out;
}

std::string GuestAesSource() {
  // Generate the S-box/Rcon initializers from the host tables so the two
  // implementations can never drift.
  std::ostringstream os;
  os << "char SBOX[256] = {";
  for (int i = 0; i < 256; ++i) {
    os << static_cast<int>(kSbox[i]) << (i + 1 < 256 ? "," : "");
  }
  os << "};\n";
  os << "char RCON[11] = {";
  for (int i = 0; i < 11; ++i) {
    os << static_cast<int>(kRcon[i]) << (i + 1 < 11 ? "," : "");
  }
  os << "};\n";
  os << R"vc(
int xt(int x) {
  x = x << 1;
  if (x & 256) {
    x = x ^ 283;
  }
  return x & 255;
}

int key_expand(char *key, char *rk) {
  int i; int t0; int t1; int t2; int t3; int tmp;
  for (i = 0; i < 16; i = i + 1) {
    rk[i] = key[i];
  }
  for (i = 4; i < 44; i = i + 1) {
    t0 = rk[(i - 1) * 4];
    t1 = rk[(i - 1) * 4 + 1];
    t2 = rk[(i - 1) * 4 + 2];
    t3 = rk[(i - 1) * 4 + 3];
    if (i % 4 == 0) {
      tmp = t0;
      t0 = SBOX[t1] ^ RCON[i / 4];
      t1 = SBOX[t2];
      t2 = SBOX[t3];
      t3 = SBOX[tmp];
    }
    rk[i * 4] = rk[(i - 4) * 4] ^ t0;
    rk[i * 4 + 1] = rk[(i - 4) * 4 + 1] ^ t1;
    rk[i * 4 + 2] = rk[(i - 4) * 4 + 2] ^ t2;
    rk[i * 4 + 3] = rk[(i - 4) * 4 + 3] ^ t3;
  }
  return 0;
}

int add_rk(char *s, char *rk) {
  int i;
  for (i = 0; i < 16; i = i + 1) {
    s[i] = s[i] ^ rk[i];
  }
  return 0;
}

int sub_shift(char *s) {
  int t;
  int i;
  for (i = 0; i < 16; i = i + 1) {
    s[i] = SBOX[s[i]];
  }
  t = s[1]; s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
  t = s[2]; s[2] = s[10]; s[10] = t;
  t = s[6]; s[6] = s[14]; s[14] = t;
  t = s[15]; s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;
  return 0;
}

int mix_columns(char *s) {
  int c; int a0; int a1; int a2; int a3;
  for (c = 0; c < 4; c = c + 1) {
    a0 = s[c * 4];
    a1 = s[c * 4 + 1];
    a2 = s[c * 4 + 2];
    a3 = s[c * 4 + 3];
    s[c * 4]     = xt(a0) ^ xt(a1) ^ a1 ^ a2 ^ a3;
    s[c * 4 + 1] = a0 ^ xt(a1) ^ xt(a2) ^ a2 ^ a3;
    s[c * 4 + 2] = a0 ^ a1 ^ xt(a2) ^ xt(a3) ^ a3;
    s[c * 4 + 3] = xt(a0) ^ a0 ^ a1 ^ a2 ^ xt(a3);
  }
  return 0;
}

int encrypt_block(char *rk, char *s) {
  int r;
  add_rk(s, rk);
  for (r = 1; r < 10; r = r + 1) {
    sub_shift(s);
    mix_columns(s);
    add_rk(s, rk + r * 16);
  }
  sub_shift(s);
  add_rk(s, rk + 160);
  return 0;
}

// Protocol: get_data = key(16) | iv(16) | plaintext(16*k); CBC-encrypt in
// place and return the ciphertext.
int main() {
  char rk[176];
  char iv[16];
  char *buf;
  int n; int i; int j;
  buf = malloc(16448);
  n = get_data(buf, 16448);
  if (n < 32) {
    return -1;
  }
  key_expand(buf, rk);
  for (i = 0; i < 16; i = i + 1) {
    iv[i] = buf[16 + i];
  }
  for (j = 32; j + 16 <= n; j = j + 16) {
    for (i = 0; i < 16; i = i + 1) {
      buf[j + i] = buf[j + i] ^ iv[i];
    }
    encrypt_block(rk, buf + j);
    for (i = 0; i < 16; i = i + 1) {
      iv[i] = buf[j + i];
    }
  }
  return_data(buf + 32, n - 32);
  return n - 32;
}
)vc";
  return os.str();
}

}  // namespace vaes
