// AES-128 (FIPS-197) + CBC mode, twice:
//   * a host C++ reference implementation (the "native OpenSSL" baseline of
//     Section 6.4), validated against FIPS/NIST vectors, and
//   * a guest implementation in the vcc dialect (GuestAesSource) that runs
//     the same cipher inside a virtine, fed through get_data/return_data.
//
// The paper isolates OpenSSL's 128-bit AES block cipher in a virtine to
// study the cost of isolating a deeply buried, heavily optimized function;
// this module reproduces that experiment end to end.
#ifndef SRC_VAES_AES_H_
#define SRC_VAES_AES_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace vaes {

using Block = std::array<uint8_t, 16>;
using Key = std::array<uint8_t, 16>;

// Expands a 128-bit key into 176 bytes of round keys.
std::array<uint8_t, 176> ExpandKey(const Key& key);

// Encrypts one 16-byte block (ECB primitive).
Block EncryptBlock(const std::array<uint8_t, 176>& round_keys, const Block& in);

// CBC encryption; `data` must be a multiple of 16 bytes (caller pads).
std::vector<uint8_t> EncryptCbc(const Key& key, const Block& iv,
                                const std::vector<uint8_t>& data);

// PKCS#7 pad to a 16-byte multiple.
std::vector<uint8_t> Pkcs7Pad(const std::vector<uint8_t>& data);

// The guest AES-128-CBC program (vcc dialect).  Protocol: get_data delivers
// key(16) | iv(16) | plaintext(n*16); the program encrypts and ships the
// ciphertext back via return_data.  Entry point: main().
std::string GuestAesSource();

}  // namespace vaes

#endif  // SRC_VAES_AES_H_
