#include "src/vjs/vjs.h"

#include <cctype>
#include <map>
#include <sstream>

namespace vjs {
namespace {

// --- Bytecode ops (shared contract with the engine in EngineSource) ---------
enum Op : uint8_t {
  kHalt = 0,
  kPush = 1,    // i32 little-endian
  kLoad = 2,    // u8 slot
  kStore = 3,   // u8 slot
  kAdd = 4,
  kSub = 5,
  kMul = 6,
  kDiv = 7,
  kMod = 8,
  kLt = 9,
  kLe = 10,
  kGt = 11,
  kGe = 12,
  kEq = 13,
  kNe = 14,
  kJmp = 15,    // i16 relative to next instruction
  kJz = 16,     // pops condition
  kCallB = 17,  // u8 builtin, u8 nargs; result pushed
  kAnd = 18,
  kOr = 19,
  kXor = 20,
  kShl = 21,
  kShr = 22,
  kNot = 23,
  kNeg = 24,
  kPop = 25,
};

// Builtin indices.
enum Builtin : uint8_t {
  kInputLen = 0,
  kInput = 1,
  kOut = 2,
  kB64 = 3,
};

struct JsToken {
  enum Kind { kEof, kIdent, kNum, kPunct } kind = kEof;
  std::string text;
  int64_t value = 0;
  int line = 1;
};

class ScriptCompiler {
 public:
  explicit ScriptCompiler(const std::string& src) : src_(src) {}

  vbase::Result<std::vector<uint8_t>> Run() {
    VB_RETURN_IF_ERROR(Tokenize());
    while (!Is(JsToken::kEof)) {
      VB_RETURN_IF_ERROR(Statement());
    }
    code_.push_back(kHalt);
    return code_;
  }

 private:
  vbase::Status Err(const std::string& msg) {
    return vbase::InvalidArgument("microjs line " + std::to_string(Peek().line) + ": " + msg);
  }

  vbase::Status Tokenize() {
    size_t i = 0;
    int line = 1;
    const size_t n = src_.size();
    while (i < n) {
      const char c = src_[i];
      if (c == '\n') {
        ++line;
        ++i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '/' && i + 1 < n && src_[i + 1] == '/') {
        while (i < n && src_[i] != '\n') {
          ++i;
        }
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < n && (std::isalnum(static_cast<unsigned char>(src_[j])) || src_[j] == '_')) {
          ++j;
        }
        toks_.push_back({JsToken::kIdent, src_.substr(i, j - i), 0, line});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t j = i;
        int64_t v = 0;
        while (j < n && std::isdigit(static_cast<unsigned char>(src_[j]))) {
          v = v * 10 + (src_[j] - '0');
          ++j;
        }
        toks_.push_back({JsToken::kNum, src_.substr(i, j - i), v, line});
        i = j;
        continue;
      }
      static const char* kPuncts[] = {"<=", ">=", "==", "!=", "&&", "||", "<<", ">>",
                                      "+", "-", "*", "/", "%", "&", "|", "^", "!",
                                      "<", ">", "=", "(", ")", "{", "}", ";", ","};
      bool matched = false;
      for (const char* p : kPuncts) {
        const size_t len = std::char_traits<char>::length(p);
        if (src_.compare(i, len, p) == 0) {
          toks_.push_back({JsToken::kPunct, p, 0, line});
          i += len;
          matched = true;
          break;
        }
      }
      if (!matched) {
        return vbase::InvalidArgument("microjs: bad character at line " + std::to_string(line));
      }
    }
    toks_.push_back({JsToken::kEof, "", 0, line});
    return vbase::Status::Ok();
  }

  const JsToken& Peek() const { return toks_[std::min(pos_, toks_.size() - 1)]; }
  const JsToken& Next() { return toks_[std::min(pos_++, toks_.size() - 1)]; }
  bool Is(JsToken::Kind k) const { return Peek().kind == k; }
  bool IsP(const char* p) const { return Peek().kind == JsToken::kPunct && Peek().text == p; }
  bool IsI(const char* w) const { return Peek().kind == JsToken::kIdent && Peek().text == w; }
  bool EatP(const char* p) {
    if (IsP(p)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool EatI(const char* w) {
    if (IsI(w)) {
      ++pos_;
      return true;
    }
    return false;
  }
  vbase::Status Expect(const char* p) {
    if (!EatP(p)) {
      return Err(std::string("expected '") + p + "'");
    }
    return vbase::Status::Ok();
  }

  void Emit(uint8_t b) { code_.push_back(b); }
  void Emit32(int32_t v) {
    for (int i = 0; i < 4; ++i) {
      Emit(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  size_t EmitJump(uint8_t op) {
    Emit(op);
    Emit(0);
    Emit(0);
    return code_.size() - 2;
  }
  void PatchJump(size_t at) {
    const int32_t rel = static_cast<int32_t>(code_.size()) - static_cast<int32_t>(at) - 2;
    code_[at] = static_cast<uint8_t>(rel);
    code_[at + 1] = static_cast<uint8_t>(rel >> 8);
  }

  vbase::Result<int> Slot(const std::string& name, bool create) {
    auto it = slots_.find(name);
    if (it != slots_.end()) {
      return it->second;
    }
    if (!create) {
      return Err("undefined variable '" + name + "'");
    }
    if (slots_.size() >= 250) {
      return Err("too many variables");
    }
    const int slot = static_cast<int>(slots_.size());
    slots_[name] = slot;
    return slot;
  }

  vbase::Status Statement() {
    if (EatI("var")) {
      if (!Is(JsToken::kIdent)) {
        return Err("expected variable name");
      }
      std::string name = Next().text;
      auto slot = Slot(name, /*create=*/true);
      if (!slot.ok()) {
        return slot.status();
      }
      VB_RETURN_IF_ERROR(Expect("="));
      VB_RETURN_IF_ERROR(Expression());
      VB_RETURN_IF_ERROR(Expect(";"));
      Emit(kStore);
      Emit(static_cast<uint8_t>(*slot));
      return vbase::Status::Ok();
    }
    if (EatI("while")) {
      const size_t head = code_.size();
      VB_RETURN_IF_ERROR(Expect("("));
      VB_RETURN_IF_ERROR(Expression());
      VB_RETURN_IF_ERROR(Expect(")"));
      const size_t exit_jump = EmitJump(kJz);
      VB_RETURN_IF_ERROR(Block());
      // Back-edge.
      Emit(kJmp);
      const int32_t rel = static_cast<int32_t>(head) - (static_cast<int32_t>(code_.size()) + 2);
      Emit(static_cast<uint8_t>(rel));
      Emit(static_cast<uint8_t>(rel >> 8));
      PatchJump(exit_jump);
      return vbase::Status::Ok();
    }
    if (EatI("if")) {
      VB_RETURN_IF_ERROR(Expect("("));
      VB_RETURN_IF_ERROR(Expression());
      VB_RETURN_IF_ERROR(Expect(")"));
      const size_t else_jump = EmitJump(kJz);
      VB_RETURN_IF_ERROR(Block());
      if (EatI("else")) {
        const size_t end_jump = EmitJump(kJmp);
        PatchJump(else_jump);
        VB_RETURN_IF_ERROR(Block());
        PatchJump(end_jump);
      } else {
        PatchJump(else_jump);
      }
      return vbase::Status::Ok();
    }
    // Assignment or expression statement.
    if (Is(JsToken::kIdent) && toks_[pos_ + 1].kind == JsToken::kPunct &&
        toks_[pos_ + 1].text == "=") {
      std::string name = Next().text;
      Next();  // '='
      auto slot = Slot(name, /*create=*/false);
      if (!slot.ok()) {
        return slot.status();
      }
      VB_RETURN_IF_ERROR(Expression());
      VB_RETURN_IF_ERROR(Expect(";"));
      Emit(kStore);
      Emit(static_cast<uint8_t>(*slot));
      return vbase::Status::Ok();
    }
    VB_RETURN_IF_ERROR(Expression());
    VB_RETURN_IF_ERROR(Expect(";"));
    Emit(kPop);
    return vbase::Status::Ok();
  }

  vbase::Status Block() {
    if (EatP("{")) {
      while (!IsP("}")) {
        if (Is(JsToken::kEof)) {
          return Err("unterminated block");
        }
        VB_RETURN_IF_ERROR(Statement());
      }
      Next();
      return vbase::Status::Ok();
    }
    return Statement();
  }

  static int Prec(const std::string& op) {
    if (op == "||") return 1;
    if (op == "&&") return 2;
    if (op == "|") return 3;
    if (op == "^") return 4;
    if (op == "&") return 5;
    if (op == "==" || op == "!=") return 6;
    if (op == "<" || op == "<=" || op == ">" || op == ">=") return 7;
    if (op == "<<" || op == ">>") return 8;
    if (op == "+" || op == "-") return 9;
    if (op == "*" || op == "/" || op == "%") return 10;
    return -1;
  }

  vbase::Status Expression(int min_prec = 0) {
    VB_RETURN_IF_ERROR(Unary());
    while (Peek().kind == JsToken::kPunct) {
      const int prec = Prec(Peek().text);
      if (prec < 0 || prec < min_prec) {
        break;
      }
      std::string op = Next().text;
      // && / || compile to bitwise forms (operands are 0/1 comparisons in
      // practice); microjs has no short-circuit side effects to preserve.
      VB_RETURN_IF_ERROR(Expression(prec + 1));
      if (op == "+") Emit(kAdd);
      else if (op == "-") Emit(kSub);
      else if (op == "*") Emit(kMul);
      else if (op == "/") Emit(kDiv);
      else if (op == "%") Emit(kMod);
      else if (op == "<") Emit(kLt);
      else if (op == "<=") Emit(kLe);
      else if (op == ">") Emit(kGt);
      else if (op == ">=") Emit(kGe);
      else if (op == "==") Emit(kEq);
      else if (op == "!=") Emit(kNe);
      else if (op == "&" || op == "&&") Emit(kAnd);
      else if (op == "|" || op == "||") Emit(kOr);
      else if (op == "^") Emit(kXor);
      else if (op == "<<") Emit(kShl);
      else if (op == ">>") Emit(kShr);
      else return Err("bad operator " + op);
    }
    return vbase::Status::Ok();
  }

  vbase::Status Unary() {
    if (EatP("-")) {
      VB_RETURN_IF_ERROR(Unary());
      Emit(kNeg);
      return vbase::Status::Ok();
    }
    if (EatP("!")) {
      VB_RETURN_IF_ERROR(Unary());
      Emit(kNot);
      return vbase::Status::Ok();
    }
    return Primary();
  }

  vbase::Status Primary() {
    if (Is(JsToken::kNum)) {
      Emit(kPush);
      Emit32(static_cast<int32_t>(Next().value));
      return vbase::Status::Ok();
    }
    if (EatP("(")) {
      VB_RETURN_IF_ERROR(Expression());
      return Expect(")");
    }
    if (Is(JsToken::kIdent)) {
      std::string name = Next().text;
      if (EatP("(")) {
        static const std::map<std::string, std::pair<Builtin, int>> kBuiltins = {
            {"input_len", {kInputLen, 0}},
            {"input", {kInput, 1}},
            {"out", {kOut, 1}},
            {"b64", {kB64, 1}},
        };
        auto it = kBuiltins.find(name);
        if (it == kBuiltins.end()) {
          return Err("unknown function '" + name + "'");
        }
        int nargs = 0;
        if (!IsP(")")) {
          while (true) {
            VB_RETURN_IF_ERROR(Expression());
            ++nargs;
            if (!EatP(",")) {
              break;
            }
          }
        }
        VB_RETURN_IF_ERROR(Expect(")"));
        if (nargs != it->second.second) {
          return Err("wrong argument count for '" + name + "'");
        }
        Emit(kCallB);
        Emit(static_cast<uint8_t>(it->second.first));
        Emit(static_cast<uint8_t>(nargs));
        return vbase::Status::Ok();
      }
      auto slot = Slot(name, /*create=*/false);
      if (!slot.ok()) {
        return slot.status();
      }
      Emit(kLoad);
      Emit(static_cast<uint8_t>(*slot));
      return vbase::Status::Ok();
    }
    return Err("expected expression");
  }

  const std::string& src_;
  std::vector<JsToken> toks_;
  size_t pos_ = 0;
  std::vector<uint8_t> code_;
  std::map<std::string, int> slots_;
};

}  // namespace

vbase::Result<std::vector<uint8_t>> CompileScript(const std::string& source) {
  ScriptCompiler compiler(source);
  return compiler.Run();
}

const char* Base64ScriptSource() {
  return R"js(
var n = input_len();
var i = 0;
while (i + 3 <= n) {
  var x = input(i) * 65536 + input(i + 1) * 256 + input(i + 2);
  out(b64((x / 262144) % 64));
  out(b64((x / 4096) % 64));
  out(b64((x / 64) % 64));
  out(b64(x % 64));
  i = i + 3;
}
var r = n - i;
if (r == 1) {
  var y = input(i) * 65536;
  out(b64((y / 262144) % 64));
  out(b64((y / 4096) % 64));
  out(61);
  out(61);
}
if (r == 2) {
  var z = input(i) * 65536 + input(i + 1) * 256;
  out(b64((z / 262144) % 64));
  out(b64((z / 4096) % 64));
  out(b64((z / 64) % 64));
  out(61);
}
)js";
}

std::string HostBase64(const std::vector<uint8_t>& data) {
  static const char* kTab = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  std::string out;
  size_t i = 0;
  while (i + 3 <= data.size()) {
    const uint32_t x = (data[i] << 16) | (data[i + 1] << 8) | data[i + 2];
    out += kTab[(x >> 18) & 63];
    out += kTab[(x >> 12) & 63];
    out += kTab[(x >> 6) & 63];
    out += kTab[x & 63];
    i += 3;
  }
  const size_t rem = data.size() - i;
  if (rem == 1) {
    const uint32_t x = data[i] << 16;
    out += kTab[(x >> 18) & 63];
    out += kTab[(x >> 12) & 63];
    out += "==";
  } else if (rem == 2) {
    const uint32_t x = (data[i] << 16) | (data[i + 1] << 8);
    out += kTab[(x >> 18) & 63];
    out += kTab[(x >> 12) & 63];
    out += kTab[(x >> 6) & 63];
    out += '=';
  }
  return out;
}

std::string EngineSource(const std::vector<uint8_t>& script, bool teardown) {
  std::ostringstream os;
  os << "char SCRIPT[" << script.size() << "] = {";
  for (size_t i = 0; i < script.size(); ++i) {
    os << static_cast<int>(script[i]) << (i + 1 < script.size() ? "," : "");
  }
  os << "};\n";
  os << "int TEARDOWN = " << (teardown ? 1 : 0) << ";\n";
  os << R"vc(
char B64TAB[65] = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

// Engine state (all heap-allocated by engine_init, Duktape-context style).
int *E_STACK;
int *E_VARS;
int *E_OBJS;
char *E_IN;
char *E_OUT;
int E_INN = 0;
int E_OUTN = 0;
int E_NOBJS = 0;

// Allocates the interpreter stack, variable slots, an object heap of 96
// initialized objects, and I/O buffers — the engine-warm-up work that the
// snapshot optimization elides.
int engine_init() {
  int i;
  char *p;
  E_STACK = malloc(8192);
  E_VARS = malloc(2048);
  E_OBJS = malloc(2048);
  E_IN = malloc(65536);
  E_OUT = malloc(98304);
  E_NOBJS = 96;
  for (i = 0; i < E_NOBJS; i = i + 1) {
    p = malloc(256);
    memset(p, i & 255, 256);
    E_OBJS[i] = p;
  }
  for (i = 0; i < 256; i = i + 1) {
    E_VARS[i] = 0;
  }
  return 0;
}

// Releases the object heap (clearing each object models destructor /
// finalizer work).  Skipped by the NT variants.
int engine_teardown() {
  int i;
  char *p;
  for (i = 0; i < E_NOBJS; i = i + 1) {
    p = E_OBJS[i];
    memset(p, 0, 256);
    free(p);
  }
  return 0;
}

int run(char *code) {
  int pc;
  int sp;
  int op;
  int a;
  int b;
  pc = 0;
  sp = 0;
  while (1) {
    op = code[pc];
    pc = pc + 1;
    if (op == 0) {
      return 0;
    }
    if (op == 1) {  // PUSH i32
      a = code[pc] | (code[pc + 1] << 8) | (code[pc + 2] << 16) | (code[pc + 3] << 24);
      if (a & 2147483648) {
        a = a - 4294967296;
      }
      pc = pc + 4;
      E_STACK[sp] = a;
      sp = sp + 1;
      continue;
    }
    if (op == 2) {  // LOAD
      E_STACK[sp] = E_VARS[code[pc]];
      pc = pc + 1;
      sp = sp + 1;
      continue;
    }
    if (op == 3) {  // STORE
      sp = sp - 1;
      E_VARS[code[pc]] = E_STACK[sp];
      pc = pc + 1;
      continue;
    }
    if (op >= 4 && op <= 14 || op >= 18 && op <= 22) {  // binary ops
      sp = sp - 2;
      a = E_STACK[sp];
      b = E_STACK[sp + 1];
      if (op == 4) { a = a + b; }
      if (op == 5) { a = a - b; }
      if (op == 6) { a = a * b; }
      if (op == 7) { a = a / b; }
      if (op == 8) { a = a % b; }
      if (op == 9) { a = a < b; }
      if (op == 10) { a = a <= b; }
      if (op == 11) { a = a > b; }
      if (op == 12) { a = a >= b; }
      if (op == 13) { a = a == b; }
      if (op == 14) { a = a != b; }
      if (op == 18) { a = a & b; }
      if (op == 19) { a = a | b; }
      if (op == 20) { a = a ^ b; }
      if (op == 21) { a = a << b; }
      if (op == 22) { a = a >> b; }
      E_STACK[sp] = a;
      sp = sp + 1;
      continue;
    }
    if (op == 15) {  // JMP i16
      a = code[pc] | (code[pc + 1] << 8);
      if (a & 32768) {
        a = a - 65536;
      }
      pc = pc + 2 + a;
      continue;
    }
    if (op == 16) {  // JZ
      a = code[pc] | (code[pc + 1] << 8);
      if (a & 32768) {
        a = a - 65536;
      }
      pc = pc + 2;
      sp = sp - 1;
      if (E_STACK[sp] == 0) {
        pc = pc + a;
      }
      continue;
    }
    if (op == 17) {  // CALLB builtin nargs
      a = code[pc];
      b = code[pc + 1];
      pc = pc + 2;
      sp = sp - b;
      if (a == 0) {
        E_STACK[sp] = E_INN;
      }
      if (a == 1) {
        E_STACK[sp] = E_IN[E_STACK[sp]];
      }
      if (a == 2) {
        E_OUT[E_OUTN] = E_STACK[sp];
        E_OUTN = E_OUTN + 1;
        E_STACK[sp] = 0;
      }
      if (a == 3) {
        E_STACK[sp] = B64TAB[E_STACK[sp] & 63];
      }
      sp = sp + 1;
      continue;
    }
    if (op == 23) {  // NOT
      E_STACK[sp - 1] = !E_STACK[sp - 1];
      continue;
    }
    if (op == 24) {  // NEG
      E_STACK[sp - 1] = -E_STACK[sp - 1];
      continue;
    }
    if (op == 25) {  // POP
      sp = sp - 1;
      continue;
    }
    return -1;  // bad opcode
  }
  return 0;
}

// Returns the in-guest cycles spent on init + run + teardown: the engine
// cost with zero virtualization overhead (the native baseline).
int main() {
  int t0;
  int t1;
  t0 = __rdtsc();
  engine_init();
  v_snapshot();  // Section 6.5: snapshot after long-mode boot + engine init
  E_INN = get_data(E_IN, 65536);
  run(SCRIPT);
  return_data(E_OUT, E_OUTN);
  if (TEARDOWN) {
    engine_teardown();
  }
  t1 = __rdtsc();
  return t1 - t0;
}
)vc";
  return os.str();
}

}  // namespace vjs
