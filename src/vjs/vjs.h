// microjs — the managed-language runtime case study (Section 6.5).
//
// The paper embeds the Duktape JavaScript engine in a virtine and runs a
// base64-encoding function with exactly three hypercalls (snapshot,
// get_data, return_data).  This module reproduces that structure with
// "microjs": a JavaScript-like scripting language compiled host-side to a
// compact stack bytecode, interpreted by an engine written in the vcc
// dialect that runs *inside* the virtine.  The engine deliberately mirrors
// a managed runtime's lifecycle:
//
//   engine_init()  — allocates the value stack, an object heap (hundreds of
//                    allocations, Duktape-context analogue), and builtin
//                    tables;
//   run(script)    — interprets the script bytecode over the input fetched
//                    with get_data;
//   teardown()     — walks and releases the object heap (skippable: the
//                    paper's "NT" no-teardown optimization, safe because the
//                    hypervisor wipes the shell after every invocation).
//
// The guest's main() returns the in-guest cycle count for init+run+teardown
// (measured with rdtsc), which serves as the "native engine" baseline:
// the same work with zero virtualization overhead.
#ifndef SRC_VJS_VJS_H_
#define SRC_VJS_VJS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace vjs {

// Compiles microjs source to engine bytecode.
//
// Language: `var x = e;`, assignment, `while (e) { ... }`,
// `if (e) {...} else {...}`, expression statements; integer expressions
// with C precedence; builtins: input_len(), input(i), out(c), b64(i).
vbase::Result<std::vector<uint8_t>> CompileScript(const std::string& source);

// Renders the guest engine program (vcc dialect, concatenate after vlibc)
// with `script` embedded as data.  `teardown` selects whether the engine
// frees its object heap before exiting (the NT variants skip it).
std::string EngineSource(const std::vector<uint8_t>& script, bool teardown);

// The paper's UDF: base64-encode the input buffer.
const char* Base64ScriptSource();

// Host reference base64 (for validating engine output).
std::string HostBase64(const std::vector<uint8_t>& data);

}  // namespace vjs

#endif  // SRC_VJS_VJS_H_
