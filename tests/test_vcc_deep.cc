// Deeper compiler semantics: nested control flow, multi-level pointers,
// function-call conventions, argument evaluation, operator interactions,
// and cross-environment compilation — each verified by executing in a
// virtine (the only ground truth for a compiler is what the machine runs).
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/vcc/vcc.h"
#include "src/vrt/env.h"
#include "src/wasp/runtime.h"
#include "src/wasp/vfunc.h"

namespace {

int64_t RunIn(vrt::Env env, const std::string& source, std::vector<int64_t> args = {}) {
  auto image = vcc::CompileProgram(source, "main", env);
  if (!image.ok()) {
    ADD_FAILURE() << "compile failed: " << image.status().ToString();
    return INT64_MIN;
  }
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.word_bytes = vrt::WordBytes(env);
  wasp::ArgPacker packer(spec.word_bytes);
  for (int64_t a : args) {
    packer.AddWord(static_cast<uint64_t>(a));
  }
  spec.args_page = packer.Finish();
  auto outcome = runtime.Invoke(spec);
  if (!outcome.status.ok()) {
    ADD_FAILURE() << "run failed: " << outcome.status.ToString();
    return INT64_MIN;
  }
  // Sign-extend from the environment word width.
  const int bits = spec.word_bytes * 8;
  if (bits < 64) {
    return static_cast<int64_t>(outcome.result_word << (64 - bits)) >> (64 - bits);
  }
  return static_cast<int64_t>(outcome.result_word);
}

int64_t Run64(const std::string& source, std::vector<int64_t> args = {}) {
  return RunIn(vrt::Env::kLong64, source, std::move(args));
}

TEST(VccDeep, NestedLoopsAndScopes) {
  const char* src = R"(
    int main() {
      int total;
      int i;
      total = 0;
      for (i = 0; i < 5; i = i + 1) {
        int j;                  // inner scope shadows nothing, fresh slot
        for (j = 0; j <= i; j = j + 1) {
          int k;
          k = i * j;
          total = total + k;
        }
      }
      return total;
    })";
  // sum over i of sum over j<=i of i*j = sum i * i(i+1)/2 = 0+1+6+18+40 = 65
  EXPECT_EQ(Run64(src), 65);
}

TEST(VccDeep, VariableShadowingInBlocks) {
  const char* src = R"(
    int main() {
      int x;
      x = 1;
      {
        int x;
        x = 100;
        if (x != 100) { return 1; }
      }
      return x;
    })";
  EXPECT_EQ(Run64(src), 1);
}

TEST(VccDeep, PointerToPointer) {
  const char* src = R"(
    int main() {
      int v;
      int *p;
      int **pp;
      v = 7;
      p = &v;
      pp = &p;
      **pp = 21;
      return v + *p;
    })";
  EXPECT_EQ(Run64(src), 42);
}

TEST(VccDeep, AddressOfArrayElement) {
  const char* src = R"(
    int main() {
      int a[4];
      int *p;
      a[2] = 5;
      p = &a[2];
      *p = *p + 10;
      return a[2];
    })";
  EXPECT_EQ(Run64(src), 15);
}

TEST(VccDeep, FunctionsPassPointersAndMutate) {
  const char* src = R"(
    int bump(int *p, int by) {
      *p = *p + by;
      return *p;
    }
    int main() {
      int x;
      x = 10;
      bump(&x, 5);
      bump(&x, 27);
      return x;
    })";
  EXPECT_EQ(Run64(src), 42);
}

TEST(VccDeep, ManyArgumentsUseStackSlotsInOrder) {
  const char* src = R"(
    int weigh(int a, int b, int c, int d, int e, int f) {
      return a + 2*b + 3*c + 4*d + 5*e + 6*f;
    }
    int main() {
      return weigh(1, 2, 3, 4, 5, 6);
    })";
  EXPECT_EQ(Run64(src), 1 + 4 + 9 + 16 + 25 + 36);
}

TEST(VccDeep, MutualRecursion) {
  // Calls resolve at codegen time over the whole translation unit, so
  // mutual recursion needs no forward declarations.
  const char* mutual = R"(
    int is_even(int n) {
      if (n == 0) { return 1; }
      return is_odd(n - 1);
    }
    int is_odd(int n) {
      if (n == 0) { return 0; }
      return is_even(n - 1);
    }
    int main(int n) { return is_even(n); })";
  EXPECT_EQ(Run64(mutual, {10}), 1);
  EXPECT_EQ(Run64(mutual, {11}), 0);
}

TEST(VccDeep, TernaryNesting) {
  const char* src = R"(
    int classify(int n) {
      return n < 0 ? 0 - 1 : n == 0 ? 0 : 1;
    }
    int main(int n) { return classify(n); })";
  EXPECT_EQ(Run64(src, {-5}), -1);
  EXPECT_EQ(Run64(src, {0}), 0);
  EXPECT_EQ(Run64(src, {9}), 1);
}

TEST(VccDeep, ArgumentEvaluationCountsSideEffectsOnce) {
  const char* src = R"(
    int g = 0;
    int tick() { g = g + 1; return g; }
    int pair(int a, int b) { return a * 100 + b; }
    int main() {
      int r;
      r = pair(tick(), tick());
      return r + g * 1000;
    })";
  // Arguments are evaluated right-to-left: b=1, a=2 -> 201; g==2 -> +2000.
  EXPECT_EQ(Run64(src), 2201);
}

TEST(VccDeep, WhileWithComplexCondition) {
  const char* src = R"(
    int main() {
      int i;
      int j;
      i = 0;
      j = 100;
      while (i < 10 && j > 90) {
        i = i + 2;
        j = j - 1;
      }
      return i * 1000 + j;
    })";
  EXPECT_EQ(Run64(src), 10095);
}

TEST(VccDeep, CharPointerStringWalk) {
  const char* src = R"(
    int count_vowels(char *s) {
      int n;
      int i;
      n = 0;
      for (i = 0; s[i]; i = i + 1) {
        if (s[i] == 'a' || s[i] == 'e' || s[i] == 'i' ||
            s[i] == 'o' || s[i] == 'u') {
          n = n + 1;
        }
      }
      return n;
    }
    int main() {
      return count_vowels("isolating functions at the hardware limit");
    })";
  EXPECT_EQ(Run64(src), 14);  // i,o,a,i + u,i,o + a + e + a,a,e + i,i
}

TEST(VccDeep, GlobalArraysAcrossCalls) {
  const char* src = R"(
    int memo[32];
    int fib(int n) {
      if (n < 2) { return n; }
      if (memo[n]) { return memo[n]; }
      memo[n] = fib(n - 1) + fib(n - 2);
      return memo[n];
    }
    int main(int n) { return fib(n); })";
  EXPECT_EQ(Run64(src, {30}), 832040);
}

class CrossEnvTest : public ::testing::TestWithParam<vrt::Env> {};

TEST_P(CrossEnvTest, SameSourceRunsInEveryEnvironment) {
  const char* src = R"(
    int gcd(int a, int b) {
      while (b != 0) {
        int t;
        t = a % b;
        a = b;
        b = t;
      }
      return a;
    }
    int main(int a, int b) { return gcd(a, b); })";
  EXPECT_EQ(RunIn(GetParam(), src, {252, 105}), 21);
  EXPECT_EQ(RunIn(GetParam(), src, {17, 5}), 1);
}

INSTANTIATE_TEST_SUITE_P(Envs, CrossEnvTest,
                         ::testing::Values(vrt::Env::kReal16, vrt::Env::kProt32,
                                           vrt::Env::kLong64),
                         [](const auto& param_info) { return vrt::EnvName(param_info.param); });

TEST(VccDeep, RandomizedExpressionDifferentialTest) {
  // Generate random arithmetic expressions over safe operators, evaluate
  // them with a host-side reference evaluator at 64-bit width, and compare
  // against the compiled guest result (classic compiler differential test).
  vbase::Rng rng(2024);
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<int64_t> vals;
    std::string expr;
    int64_t expect = 0;
    // Build "v0 op v1 op v2 ..." left-associated with + - * | & ^.
    const int terms = 3 + static_cast<int>(rng.Below(4));
    for (int i = 0; i < terms; ++i) {
      const int64_t v = static_cast<int64_t>(rng.Below(1000)) - 500;
      vals.push_back(v);
      if (i == 0) {
        expr = "(" + std::to_string(v) + ")";
        expect = v;
        continue;
      }
      const char* ops[] = {"+", "-", "*", "|", "&", "^"};
      const char* op = ops[rng.Below(6)];
      expr = "(" + expr + " " + op + " (" + std::to_string(v) + "))";
      switch (op[0]) {
        case '+': expect = expect + v; break;
        case '-': expect = expect - v; break;
        case '*': expect = expect * v; break;
        case '|': expect = expect | v; break;
        case '&': expect = expect & v; break;
        case '^': expect = expect ^ v; break;
      }
    }
    const std::string src = "int main() { return " + expr + "; }";
    EXPECT_EQ(Run64(src), expect) << "expr: " << expr;
  }
}

}  // namespace
