// Fault taxonomy, deterministic injection, and containment tests: every
// FaultKind classifies end-to-end on RunOutcome, the injector replays the
// same schedule for the same plan, a faulted shell is quarantined (scrubbed
// by the crew, never re-parked affine, never leaked), the executor's
// accounting invariant holds through fault storms, and GovernTrace counts
// faulted arrivals as casualties rather than completions.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/vnet/serverless.h"
#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/wasp/executor.h"
#include "src/wasp/fault.h"
#include "src/wasp/pool.h"
#include "src/wasp/runtime.h"
#include "src/wasp/snapshot.h"
#include "src/wasp/vfunc.h"

namespace {

visa::Image RawImage(const std::string& body) {
  auto image = vrt::BuildRawImage(body);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  return std::move(*image);
}

visa::Image LongModeImage(const std::string& virtine_main_body) {
  auto image = vrt::BuildImage(vrt::Env::kLong64,
                               "virtine_main:\n" + virtine_main_body + "  ret\n");
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  return std::move(*image);
}

visa::Image FibImage() {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  return std::move(*image);
}

// A snapshot-enabled fib(12) spec; a clean run returns result_word 144.
wasp::VirtineSpec FibSpec(const visa::Image* image, const std::string& key) {
  wasp::VirtineSpec spec;
  spec.image = image;
  spec.key = key;
  spec.word_bytes = 8;
  spec.mem_size = 2ULL << 20;
  spec.policy = wasp::kPolicyManaged;
  spec.use_snapshot = true;
  wasp::ArgPacker packer(8);
  packer.AddWord(12);
  spec.args_page = packer.Finish();
  return spec;
}

wasp::RuntimeOptions PlanOptions(wasp::FaultPlan plan,
                                 wasp::CleanMode mode = wasp::CleanMode::kSync) {
  wasp::RuntimeOptions options;
  options.clean_mode = mode;
  options.fault_plan = std::move(plan);
  return options;
}

// Polls until the executor's gauges drain (the worker decrements in_flight
// after resolving the future, so future readiness is not quiescence).
wasp::ExecutorStats QuiescedStats(const wasp::Executor& executor) {
  wasp::ExecutorStats stats = executor.stats();
  for (int i = 0; i < 2000 && (stats.queued != 0 || stats.in_flight != 0); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = executor.stats();
  }
  return stats;
}

// --- Injector schedule ------------------------------------------------------

TEST(FaultInjector, SameSeedReplaysIdenticalSchedule) {
  wasp::FaultPlan plan;
  plan.seed = 1234;
  plan.rules.push_back(wasp::FaultPlan::Probability(wasp::FaultKind::kGuestTrap, 0.3));
  plan.rules.push_back(wasp::FaultPlan::Probability(wasp::FaultKind::kWorkerDeath, 0.1));
  wasp::FaultInjector a(plan);
  wasp::FaultInjector b(plan);
  int fired = 0;
  for (int i = 0; i < 256; ++i) {
    const wasp::FaultKind ka = a.Arm("k");
    ASSERT_EQ(ka, b.Arm("k")) << "schedules diverged at invocation " << i;
    if (ka != wasp::FaultKind::kNone) ++fired;
  }
  // With p=0.3+0.1 over 256 draws, a schedule that never (or always) fires
  // means the draw is broken, not unlucky.
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 256);
  const auto stats = a.stats();
  EXPECT_EQ(stats.invocations, 256u);
  EXPECT_EQ(stats.armed, static_cast<uint64_t>(fired));
}

TEST(FaultInjector, KeyScopedRuleIgnoresOtherKeys) {
  wasp::FaultPlan plan;
  plan.rules.push_back(wasp::FaultPlan::Probability(wasp::FaultKind::kGuestTrap, 1.0, "victim"));
  wasp::FaultInjector injector(plan);
  EXPECT_EQ(injector.Arm("bystander"), wasp::FaultKind::kNone);
  EXPECT_EQ(injector.Arm("victim"), wasp::FaultKind::kGuestTrap);
  EXPECT_EQ(injector.Arm(""), wasp::FaultKind::kNone);
}

TEST(FaultInjector, AtRuleFiresOnExactInvocationIndex) {
  wasp::FaultPlan plan;
  plan.rules.push_back(wasp::FaultPlan::At(wasp::FaultKind::kPolicyDenied, 2));
  wasp::FaultInjector injector(plan);
  EXPECT_EQ(injector.Arm("k"), wasp::FaultKind::kNone);
  EXPECT_EQ(injector.Arm("k"), wasp::FaultKind::kNone);
  EXPECT_EQ(injector.Arm("k"), wasp::FaultKind::kPolicyDenied);
  EXPECT_EQ(injector.Arm("k"), wasp::FaultKind::kNone);
}

// --- Injected faults classify and quarantine --------------------------------

TEST(FaultInjection, GuestTrapAtIndexClassifiesAndQuarantines) {
  auto image = FibImage();
  wasp::FaultPlan plan;
  plan.rules.push_back(wasp::FaultPlan::At(wasp::FaultKind::kGuestTrap, 0));
  wasp::Runtime runtime(PlanOptions(std::move(plan)));
  auto outcome = runtime.Invoke(FibSpec(&image, "trap"));
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.fault, wasp::FaultKind::kGuestTrap);
  const auto stats = runtime.pool().stats();
  EXPECT_EQ(stats.quarantined, 1u);
  // Sync mode has no crew: the shell is destroyed outright.
  EXPECT_EQ(stats.quarantine_destroyed, 1u);
  EXPECT_EQ(stats.quarantined_now, 0u);
  // The injection happened once and was delivered once.
  ASSERT_NE(runtime.fault_injector(), nullptr);
  const auto istats = runtime.fault_injector()->stats();
  EXPECT_EQ(istats.armed, 1u);
  EXPECT_EQ(istats.injected[static_cast<int>(wasp::FaultKind::kGuestTrap)], 1u);
  // The next invocation of the same key is unaffected.
  outcome = runtime.Invoke(FibSpec(&image, "trap"));
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.result_word, 144u);
}

TEST(FaultInjection, PolicyDeniedInjectionSetsDeniedFlag) {
  auto image = FibImage();
  wasp::FaultPlan plan;
  plan.rules.push_back(wasp::FaultPlan::At(wasp::FaultKind::kPolicyDenied, 0));
  wasp::Runtime runtime(PlanOptions(std::move(plan)));
  auto outcome = runtime.Invoke(FibSpec(&image, "denied"));
  EXPECT_EQ(outcome.fault, wasp::FaultKind::kPolicyDenied);
  EXPECT_TRUE(outcome.denied);
  EXPECT_EQ(outcome.status.code(), vbase::Code::kPermissionDenied);
}

TEST(FaultInjection, IllegalHypercallInjectionClassifies) {
  auto image = FibImage();
  wasp::FaultPlan plan;
  plan.rules.push_back(wasp::FaultPlan::At(wasp::FaultKind::kIllegalHypercall, 0));
  wasp::Runtime runtime(PlanOptions(std::move(plan)));
  auto outcome = runtime.Invoke(FibSpec(&image, "illegal"));
  EXPECT_EQ(outcome.fault, wasp::FaultKind::kIllegalHypercall);
  EXPECT_EQ(outcome.status.code(), vbase::Code::kUnimplemented);
}

TEST(FaultInjection, WorkerDeathInjectionAbortsMidInvocation) {
  auto image = FibImage();
  wasp::FaultPlan plan;
  plan.rules.push_back(wasp::FaultPlan::At(wasp::FaultKind::kWorkerDeath, 0));
  wasp::Runtime runtime(PlanOptions(std::move(plan)));
  auto outcome = runtime.Invoke(FibSpec(&image, "death"));
  EXPECT_EQ(outcome.fault, wasp::FaultKind::kWorkerDeath);
  EXPECT_EQ(outcome.status.code(), vbase::Code::kAborted);
  EXPECT_EQ(runtime.pool().stats().quarantined, 1u);
}

TEST(FaultInjection, OversizedReplyInjectionFailsReturnData) {
  // The guest's reply is 8 bytes — legal — but the injection treats it as
  // exceeding the I/O ceiling.
  auto image = RawImage(R"(
start:
  mov r1, 0x600
  mov r2, 8
  mov r0, 0
  out HC_RETURN_DATA, r0
  hlt
)");
  wasp::FaultPlan plan;
  plan.rules.push_back(wasp::FaultPlan::At(wasp::FaultKind::kOversizedReply, 0));
  wasp::Runtime runtime(PlanOptions(std::move(plan)));
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.policy = wasp::kPolicyManaged;
  auto outcome = runtime.Invoke(spec);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.fault, wasp::FaultKind::kOversizedReply);
  // Without the plan the same guest completes.
  wasp::Runtime clean;
  outcome = clean.Invoke(spec);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.output.size(), 8u);
}

TEST(FaultInjection, PoisonedSnapshotInjectionQuarantinesBeforeRestore) {
  auto image = FibImage();
  wasp::FaultPlan plan;
  plan.rules.push_back(wasp::FaultPlan::At(wasp::FaultKind::kPoisonedSnapshot, 1, "poison"));
  wasp::Runtime runtime(PlanOptions(std::move(plan)));
  // Invocation 0: cold, captures the snapshot.
  auto outcome = runtime.Invoke(FibSpec(&image, "poison"));
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  // Invocation 1: the restore path sees the poisoned checksum.
  outcome = runtime.Invoke(FibSpec(&image, "poison"));
  EXPECT_EQ(outcome.fault, wasp::FaultKind::kPoisonedSnapshot);
  EXPECT_EQ(outcome.status.code(), vbase::Code::kInternal);
  EXPECT_EQ(runtime.pool().stats().quarantined, 1u);
}

// --- Real faults get the same taxonomy --------------------------------------

TEST(FaultClassification, GuestTrapFromBrk) {
  auto image = RawImage("start:\n  brk\n");
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  auto outcome = runtime.Invoke(spec);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.fault, wasp::FaultKind::kGuestTrap);
  EXPECT_EQ(runtime.pool().stats().quarantined, 1u);
}

TEST(FaultClassification, UnknownPortIsIllegalHypercall) {
  auto image = RawImage("start:\n  mov r0, 0\n  out 63, r0\n  hlt\n");
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.policy = wasp::kPolicyAllowAll;
  auto outcome = runtime.Invoke(spec);
  EXPECT_EQ(outcome.fault, wasp::FaultKind::kIllegalHypercall);
  EXPECT_EQ(outcome.status.code(), vbase::Code::kUnimplemented);
}

TEST(FaultClassification, DeniedHypercallIsPolicyDenied) {
  auto image = RawImage("start:\n  mov r0, 0\n  out HC_CONSOLE, r0\n  hlt\n");
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.policy = wasp::kPolicyDenyAll;
  auto outcome = runtime.Invoke(spec);
  EXPECT_EQ(outcome.fault, wasp::FaultKind::kPolicyDenied);
  EXPECT_TRUE(outcome.denied);
}

TEST(FaultClassification, WatchdogIsRunaway) {
  auto image = RawImage("start:\nloop:\n  jmp loop\n");
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.max_insns = 10000;
  auto outcome = runtime.Invoke(spec);
  EXPECT_EQ(outcome.fault, wasp::FaultKind::kRunaway);
  EXPECT_EQ(outcome.status.code(), vbase::Code::kAborted);
}

TEST(FaultClassification, FailedHandlerIsHypercallError) {
  // A mapped virtual address whose physical target is beyond guest memory:
  // the return_data handler fails mid-flight.  (Long mode: real mode cannot
  // express the address.)
  auto image = LongModeImage(R"(
  mov r1, 0x20000000
  mov r2, 64
  mov r0, 0
  out HC_RETURN_DATA, r0
)");
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.policy = wasp::kPolicyManaged;
  auto outcome = runtime.Invoke(spec);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.fault, wasp::FaultKind::kHypercallError);
}

TEST(FaultClassification, HostErrorsDoNotQuarantine) {
  // An image that does not fit the shell is a host-side load error, not a
  // guest fault: the outcome carries a non-OK status but kNone, and the
  // untouched shell goes back to the pool instead of quarantine.
  auto image = FibImage();
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.mem_size = 4096;
  auto outcome = runtime.Invoke(spec);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.fault, wasp::FaultKind::kNone);
  EXPECT_EQ(runtime.pool().stats().quarantined, 0u);
}

// --- Snapshot checksums -----------------------------------------------------

TEST(SnapshotChecksum, VerifyDetectsTamperedChecksum) {
  auto image = FibImage();
  wasp::Runtime runtime;
  ASSERT_TRUE(runtime.Invoke(FibSpec(&image, "sum")).status.ok());
  wasp::SnapshotRef snap = runtime.snapshots().Find("sum");
  ASSERT_NE(snap, nullptr);
  EXPECT_NE(snap->checksum, 0u);
  EXPECT_TRUE(wasp::VerifySnapshot(*snap));
  wasp::Snapshot tampered = *snap;
  tampered.checksum ^= 1;
  EXPECT_FALSE(wasp::VerifySnapshot(tampered));
}

TEST(SnapshotChecksum, VerifyRestoresCatchesGenuinePoison) {
  auto image = FibImage();
  wasp::RuntimeOptions options;
  options.verify_restores = true;
  wasp::Runtime runtime(options);
  ASSERT_TRUE(runtime.Invoke(FibSpec(&image, "genuine")).status.ok());
  // Poison the published snapshot: record a checksum its bytes don't match.
  wasp::SnapshotRef snap = runtime.snapshots().Find("genuine");
  ASSERT_NE(snap, nullptr);
  auto poisoned = std::make_shared<wasp::Snapshot>(*snap);
  poisoned->checksum ^= 0xdeadbeef;
  runtime.snapshots().Put("genuine", poisoned);
  auto outcome = runtime.Invoke(FibSpec(&image, "genuine"));
  EXPECT_EQ(outcome.fault, wasp::FaultKind::kPoisonedSnapshot);
  EXPECT_FALSE(outcome.status.ok());
}

// --- Quarantine lifecycle ---------------------------------------------------

TEST(Quarantine, CrewScrubsAndReadmitsWithoutLeak) {
  wasp::Pool pool(wasp::CleanMode::kAsync);
  vkvm::VmConfig cfg;
  auto vm = pool.Acquire(cfg);
  const char secret[] = "FAULTED-TENANT-SECRET";
  ASSERT_TRUE(vm->memory().Write(0x40000, secret, sizeof(secret)).ok());
  pool.Quarantine(std::move(vm));
  pool.DrainCleaner();
  const auto stats = pool.stats();
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.quarantine_scrubbed, 1u);
  EXPECT_EQ(stats.quarantine_destroyed, 0u);
  EXPECT_EQ(stats.quarantined_now, 0u);
  ASSERT_EQ(pool.FreeShells(cfg.mem_size), 1u);
  // The readmitted shell must not leak the faulted tenant's memory.
  auto reused = pool.Acquire(cfg);
  std::vector<uint8_t> probe(sizeof(secret));
  ASSERT_TRUE(reused->memory().Read(0x40000, probe.data(), probe.size()).ok());
  for (uint8_t b : probe) {
    ASSERT_EQ(b, 0u) << "secret leaked through a quarantined shell";
  }
  pool.Release(std::move(reused));
}

TEST(Quarantine, SyncModeDestroysOutright) {
  wasp::Pool pool(wasp::CleanMode::kSync);
  vkvm::VmConfig cfg;
  pool.Quarantine(pool.Acquire(cfg));
  const auto stats = pool.stats();
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.quarantine_destroyed, 1u);
  EXPECT_EQ(stats.quarantined_now, 0u);
  EXPECT_EQ(pool.FreeShells(cfg.mem_size), 0u);
}

TEST(Quarantine, FaultedShellIsNeverReParkedAffine) {
  auto image = FibImage();
  wasp::FaultPlan plan;
  plan.rules.push_back(wasp::FaultPlan::At(wasp::FaultKind::kGuestTrap, 2, "affine"));
  wasp::Runtime runtime(PlanOptions(std::move(plan), wasp::CleanMode::kAsync));
  // 0: cold capture.  1: affine warm restore, re-parked affine.
  ASSERT_TRUE(runtime.Invoke(FibSpec(&image, "affine")).status.ok());
  auto outcome = runtime.Invoke(FibSpec(&image, "affine"));
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_TRUE(outcome.stats.affine_restore);
  // 2: the affine shell faults mid-invocation and is quarantined.
  outcome = runtime.Invoke(FibSpec(&image, "affine"));
  EXPECT_EQ(outcome.fault, wasp::FaultKind::kGuestTrap);
  runtime.pool().DrainCleaner();
  // 3: the key still works, but nothing is parked under its generation any
  // more — the scrubbed shell was readmitted to the generic free list, so
  // this restore must not take the delta path.
  outcome = runtime.Invoke(FibSpec(&image, "affine"));
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.result_word, 144u);
  EXPECT_TRUE(outcome.stats.restored_snapshot);
  EXPECT_FALSE(outcome.stats.affine_restore);
  const auto stats = runtime.pool().stats();
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.quarantine_scrubbed, 1u);
  EXPECT_EQ(stats.quarantined_now, 0u);
}

// --- Executor accounting under faults ---------------------------------------

TEST(ExecutorFaults, FaultedJobsCountSeparatelyAndReleaseQuota) {
  auto image = FibImage();
  wasp::FaultPlan plan;
  plan.rules.push_back(wasp::FaultPlan::Probability(wasp::FaultKind::kGuestTrap, 1.0, "storm"));
  wasp::Runtime runtime(PlanOptions(std::move(plan), wasp::CleanMode::kAsync));
  wasp::ExecutorOptions options;
  options.workers = 2;
  options.key_quota = 1;
  wasp::Executor executor(&runtime, options);
  // With a quota of 1, each admission proves the previous faulted job
  // released its slot.
  for (int i = 0; i < 4; ++i) {
    std::future<wasp::RunOutcome> future;
    ASSERT_TRUE(executor.TrySubmit(FibSpec(&image, "storm"), &future))
        << "fault " << i << " wedged the key quota";
    auto outcome = future.get();
    EXPECT_EQ(outcome.fault, wasp::FaultKind::kGuestTrap);
  }
  const auto stats = QuiescedStats(executor);
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.faulted, 4u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.faulted + stats.queued + stats.in_flight);
  EXPECT_EQ(executor.KeyLoad("storm"), 0u);
}

TEST(ExecutorFaults, MixedStormKeepsConservationInvariant) {
  auto image = FibImage();
  wasp::FaultPlan plan;
  plan.seed = 99;
  plan.rules.push_back(wasp::FaultPlan::Probability(wasp::FaultKind::kGuestTrap, 0.5, "mixed"));
  wasp::Runtime runtime(PlanOptions(std::move(plan), wasp::CleanMode::kAsync));
  wasp::ExecutorOptions options;
  options.workers = 4;
  wasp::Executor executor(&runtime, options);
  std::vector<std::future<wasp::RunOutcome>> futures;
  futures.reserve(32);
  for (int i = 0; i < 32; ++i) {
    futures.push_back(executor.Submit(FibSpec(&image, "mixed")));
    // The invariant must hold at every observation point, mid-storm included.
    const auto mid = executor.stats();
    EXPECT_EQ(mid.submitted, mid.completed + mid.faulted + mid.queued + mid.in_flight);
  }
  uint64_t faulted = 0;
  for (auto& future : futures) {
    auto outcome = future.get();
    if (outcome.fault != wasp::FaultKind::kNone) {
      ++faulted;
    } else {
      ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
      EXPECT_EQ(outcome.result_word, 144u);
    }
  }
  const auto stats = QuiescedStats(executor);
  EXPECT_EQ(stats.submitted, 32u);
  EXPECT_EQ(stats.faulted, faulted);
  EXPECT_EQ(stats.completed, 32u - faulted);
  EXPECT_GT(faulted, 0u);
  EXPECT_LT(faulted, 32u);
  // Quarantine ledger balances once the crew drains.
  runtime.pool().DrainCleaner();
  const auto pstats = runtime.pool().stats();
  EXPECT_EQ(pstats.quarantined, faulted);
  EXPECT_EQ(pstats.quarantined, pstats.quarantine_scrubbed + pstats.quarantine_destroyed);
  EXPECT_EQ(pstats.quarantined_now, 0u);
}

// --- GovernTrace fault discipline -------------------------------------------

vnet::MeasuredTrace TwoTenantTrace() {
  vnet::MeasuredTrace trace;
  trace.names = {"victim", "bystander"};
  trace.classes = {wasp::KeyClass::kLatency, wasp::KeyClass::kLatency};
  trace.arrivals_us = {0, 100, 200, 300};
  trace.tenant = {0, 1, 0, 1};
  trace.service_us = {100, 100, 100, 100};
  trace.cold = {false, false, false, false};
  return trace;
}

TEST(GovernTraceFaults, FaultedArrivalsAreCasualtiesNotCompletions) {
  vnet::MeasuredTrace trace = TwoTenantTrace();
  trace.faulted = {true, false, false, false};
  vnet::GovernanceOptions options;
  options.lanes = 1;
  options.batch_weight = 0;
  const vnet::GovernedReplay replay = vnet::GovernTrace(trace, options);
  ASSERT_EQ(replay.tenants.size(), 2u);
  EXPECT_EQ(replay.tenants[0].offered, 2u);
  EXPECT_EQ(replay.tenants[0].faulted, 1u);
  EXPECT_EQ(replay.tenants[0].completed, 1u);
  EXPECT_DOUBLE_EQ(replay.tenants[0].fault_rate, 0.5);
  EXPECT_EQ(replay.tenants[1].offered, 2u);
  EXPECT_EQ(replay.tenants[1].faulted, 0u);
  EXPECT_EQ(replay.tenants[1].completed, 2u);
  EXPECT_DOUBLE_EQ(replay.tenants[1].fault_rate, 0.0);
}

TEST(GovernTraceFaults, EmptyFaultedVectorMeansAllClean) {
  const vnet::MeasuredTrace trace = TwoTenantTrace();
  vnet::GovernanceOptions options;
  options.lanes = 1;
  options.batch_weight = 0;
  const vnet::GovernedReplay replay = vnet::GovernTrace(trace, options);
  ASSERT_EQ(replay.tenants.size(), 2u);
  EXPECT_EQ(replay.tenants[0].completed, 2u);
  EXPECT_EQ(replay.tenants[0].faulted, 0u);
  EXPECT_EQ(replay.tenants[1].completed, 2u);
}

}  // namespace
