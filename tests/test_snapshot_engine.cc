// Delta-aware snapshot engine tests: extent-coalesced capture/restore
// round-trips, the GuestMemory snapshot-epoch mechanism, randomized
// delta-vs-full differential checks (the Section 3.3 isolation objective:
// one invocation's writes must never leak into the next restore), and the
// pool's snapshot-affine acquire/release/reclaim paths.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/base/rng.h"
#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/wasp/pool.h"
#include "src/wasp/runtime.h"
#include "src/wasp/snapshot.h"
#include "src/wasp/vfunc.h"

namespace {

using vhw::kPageSize;

// --- GuestMemory snapshot epoch ---------------------------------------------

TEST(Epoch, TracksWritesSinceBeginEpoch) {
  vhw::GuestMemory mem(1 << 20);
  uint8_t b = 1;
  ASSERT_TRUE(mem.Write(0x1000, &b, 1).ok());
  ASSERT_TRUE(mem.Write(0x5000, &b, 1).ok());
  EXPECT_EQ(mem.CountEpochDirtyPages(), 2u);
  mem.BeginEpoch();
  EXPECT_EQ(mem.CountEpochDirtyPages(), 0u);
  // The lifetime dirty bitmap is untouched by BeginEpoch.
  EXPECT_EQ(mem.CountDirtyPages(), 2u);
  ASSERT_TRUE(mem.Write(0x5000, &b, 1).ok());
  const std::vector<uint64_t> pages = mem.CollectDirtySince();
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_EQ(pages[0], 0x5000u >> vhw::kPageBits);
}

TEST(Epoch, StoreRawFastPathStillMarksEpoch) {
  vhw::GuestMemory mem(1 << 20);
  // Two stores to the same page: the second takes the last-dirty-page fast
  // path, and the epoch bitmap must already hold the page.
  mem.StoreRaw<uint64_t>(0x2000, 1);
  mem.StoreRaw<uint64_t>(0x2008, 2);
  EXPECT_EQ(mem.CountEpochDirtyPages(), 1u);
  mem.BeginEpoch();
  // BeginEpoch must invalidate the fast-path cache, or this store would
  // skip re-marking the epoch bitmap.
  mem.StoreRaw<uint64_t>(0x2010, 3);
  EXPECT_EQ(mem.CountEpochDirtyPages(), 1u);
  EXPECT_TRUE(mem.EpochPageDirty(0x2000 >> vhw::kPageBits));
}

TEST(Epoch, ZeroDirtyPagesClearsEpochToo) {
  vhw::GuestMemory mem(1 << 20);
  uint8_t b = 7;
  ASSERT_TRUE(mem.Write(0x3000, &b, 1).ok());
  mem.ZeroDirtyPages();
  EXPECT_EQ(mem.CountEpochDirtyPages(), 0u);
  EXPECT_EQ(mem.CountDirtyPages(), 0u);
}

// --- Extent-coalesced capture ------------------------------------------------

TEST(Snapshot, ContiguousDirtyRunsCoalesceIntoExtents) {
  vhw::GuestMemory mem(1 << 20);
  std::vector<uint8_t> run(10 * kPageSize, 0xab);
  ASSERT_TRUE(mem.Write(0x8000, run.data(), run.size()).ok());  // pages 8..17
  uint8_t b = 0xcd;
  ASSERT_TRUE(mem.Write(0x40000, &b, 1).ok());  // page 64, isolated
  wasp::SnapshotRef snap = wasp::CaptureSnapshot(mem, vhw::ArchState{});
  ASSERT_EQ(snap->extents.size(), 2u);
  EXPECT_EQ(snap->extents[0].first_page, 8u);
  EXPECT_EQ(snap->extents[0].page_count, 10u);
  EXPECT_EQ(snap->extents[1].first_page, 64u);
  EXPECT_EQ(snap->extents[1].page_count, 1u);
  EXPECT_EQ(snap->byte_size(), 11 * kPageSize);
  // FindPage resolves captured pages and rejects uncaptured ones.
  ASSERT_NE(snap->FindPage(8), nullptr);
  ASSERT_NE(snap->FindPage(17), nullptr);
  EXPECT_EQ(snap->FindPage(17)[0], 0xab);
  EXPECT_EQ(snap->FindPage(64)[0], 0xcd);
  EXPECT_EQ(snap->FindPage(7), nullptr);
  EXPECT_EQ(snap->FindPage(18), nullptr);
  EXPECT_EQ(snap->FindPage(63), nullptr);
  EXPECT_EQ(snap->FindPage(65), nullptr);
}

TEST(Snapshot, GenerationsAreProcessUnique) {
  vhw::GuestMemory mem(1 << 16);
  wasp::SnapshotRef a = wasp::CaptureSnapshot(mem, vhw::ArchState{});
  wasp::SnapshotRef b = wasp::CaptureSnapshot(mem, vhw::ArchState{});
  EXPECT_NE(a->generation, 0u);
  EXPECT_NE(b->generation, 0u);
  EXPECT_NE(a->generation, b->generation);
}

TEST(Snapshot, FullRestoreRoundTripsMemory) {
  vhw::GuestMemory src(1 << 20);
  vbase::Rng rng(42);
  // Scattered multi-page writes with distinctive content.
  for (int i = 0; i < 32; ++i) {
    std::vector<uint8_t> buf(1 + rng.Below(3 * kPageSize));
    for (uint8_t& v : buf) {
      v = static_cast<uint8_t>(rng.Next());
    }
    const uint64_t gpa = rng.Below(src.size() - buf.size());
    ASSERT_TRUE(src.Write(gpa, buf.data(), buf.size()).ok());
  }
  wasp::SnapshotRef snap = wasp::CaptureSnapshot(src, vhw::ArchState{});
  vhw::GuestMemory dst(1 << 20);
  EXPECT_EQ(wasp::RestoreFullInto(*snap, &dst), snap->byte_size());
  ASSERT_EQ(dst.size(), src.size());
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
  // Restored pages are marked dirty so a pool clean re-zeroes them.
  EXPECT_EQ(dst.CountDirtyPages(), snap->page_count());
}

// --- Delta-vs-full differential fuzz ----------------------------------------

// The heart of the isolation argument: after arbitrary post-snapshot writes,
// a delta restore must leave memory byte-identical to a full restore into a
// clean shell.
TEST(Snapshot, DeltaRestoreMatchesFullRestoreUnderRandomStores) {
  constexpr uint64_t kMemSize = 1 << 20;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    vbase::Rng rng(seed * 7919);
    vhw::GuestMemory live(kMemSize);
    // Random base state (the "image + boot + init" the snapshot captures).
    const int base_writes = 4 + static_cast<int>(rng.Below(24));
    for (int i = 0; i < base_writes; ++i) {
      std::vector<uint8_t> buf(1 + rng.Below(2 * kPageSize));
      for (uint8_t& v : buf) {
        v = static_cast<uint8_t>(rng.Next());
      }
      ASSERT_TRUE(live.Write(rng.Below(kMemSize - buf.size()), buf.data(), buf.size()).ok());
    }
    wasp::SnapshotRef snap = wasp::CaptureSnapshot(live, vhw::ArchState{});
    live.BeginEpoch();

    // Reference: full restore into a clean shell.
    vhw::GuestMemory reference(kMemSize);
    wasp::RestoreFullInto(*snap, &reference);

    // The tenant scribbles: inside snapshot pages, outside them, straddling,
    // and via the StoreRaw fast path.
    const int tenant_writes = 1 + static_cast<int>(rng.Below(40));
    for (int i = 0; i < tenant_writes; ++i) {
      if (rng.Below(4) == 0) {
        live.StoreRaw<uint64_t>(rng.Below(kMemSize - 8) & ~7ULL, rng.Next());
      } else {
        std::vector<uint8_t> buf(1 + rng.Below(3 * kPageSize));
        for (uint8_t& v : buf) {
          v = static_cast<uint8_t>(rng.Next());
        }
        ASSERT_TRUE(
            live.Write(rng.Below(kMemSize - buf.size()), buf.data(), buf.size()).ok());
      }
    }

    const uint64_t repaired = wasp::RestoreDeltaInto(*snap, &live);
    EXPECT_EQ(repaired, live.CollectDirtySince().size() * kPageSize);
    ASSERT_EQ(std::memcmp(live.data(), reference.data(), kMemSize), 0)
        << "delta restore diverged from full restore (seed " << seed << ")";
  }
}

TEST(Snapshot, DeltaRestoreCostFollowsWorkingSetNotImage) {
  // A large snapshot (1024 captured pages) with a 3-page working set: the
  // delta restore must repair exactly 3 pages.
  vhw::GuestMemory mem(8 << 20);
  std::vector<uint8_t> image(1024 * kPageSize, 0x11);
  ASSERT_TRUE(mem.Write(0, image.data(), image.size()).ok());
  wasp::SnapshotRef snap = wasp::CaptureSnapshot(mem, vhw::ArchState{});
  mem.BeginEpoch();
  uint8_t b = 0x22;
  ASSERT_TRUE(mem.Write(10 * kPageSize, &b, 1).ok());        // inside the image
  ASSERT_TRUE(mem.Write(2000 * kPageSize, &b, 1).ok());      // outside the image
  mem.StoreRaw<uint32_t>(500 * kPageSize + 16, 0xdeadbeef);  // fast path
  const uint64_t repaired = wasp::RestoreDeltaInto(*snap, &mem);
  EXPECT_EQ(repaired, 3 * kPageSize);
  EXPECT_LT(repaired, snap->byte_size());
  // Page outside the snapshot is re-zeroed, pages inside are re-copied.
  EXPECT_EQ(mem.data()[2000 * kPageSize], 0u);
  EXPECT_EQ(mem.data()[10 * kPageSize], 0x11);
}

// --- Pool snapshot affinity ---------------------------------------------------

TEST(AffinePool, KeyedAcquirePrefersParkedGeneration) {
  wasp::Pool pool(wasp::CleanMode::kSync);
  vkvm::VmConfig cfg;
  auto vm = pool.Acquire(cfg);
  uint8_t b = 0x5a;
  ASSERT_TRUE(vm->memory().Write(0x9000, &b, 1).ok());
  vm->memory().BeginEpoch();
  pool.ReleaseAffine(std::move(vm), /*generation=*/17);
  EXPECT_EQ(pool.AffineShells(17), 1u);
  EXPECT_EQ(pool.TotalFreeShells(), 0u);

  bool affine = false;
  bool from_pool = false;
  auto again = pool.AcquireAffine(cfg, 17, &affine, &from_pool);
  EXPECT_TRUE(affine);
  EXPECT_TRUE(from_pool);
  // The parked shell kept its memory: no zeroing happened on release.
  EXPECT_EQ(again->memory().data()[0x9000], 0x5a);
  const wasp::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.affine_parks, 1u);
  EXPECT_EQ(stats.affine_hits, 1u);
  EXPECT_EQ(stats.affine_reclaims, 0u);
  pool.Release(std::move(again));
}

TEST(AffinePool, WrongGenerationFallsBackToCleanShell) {
  wasp::Pool pool(wasp::CleanMode::kSync);
  vkvm::VmConfig cfg;
  auto vm = pool.Acquire(cfg);
  uint8_t b = 0x5a;
  ASSERT_TRUE(vm->memory().Write(0x9000, &b, 1).ok());
  pool.ReleaseAffine(std::move(vm), 23);
  // A keyed acquire for a different generation must not see shell 23's
  // memory: it reclaims (cleans) it instead.
  bool affine = true;
  auto other = pool.AcquireAffine(cfg, 99, &affine);
  EXPECT_FALSE(affine);
  EXPECT_EQ(other->memory().data()[0x9000], 0u);
  EXPECT_EQ(pool.stats().affine_reclaims, 1u);
  pool.Release(std::move(other));
}

// The satellite regression: restore -> affine release -> *plain* reacquire
// must yield a fully zeroed shell (the affine shortcut can never leak one
// tenant's memory to a non-affine consumer).
TEST(AffinePool, PlainAcquireAfterAffineParkIsFullyZeroed) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  ASSERT_TRUE(image.ok());
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "zero-regression";
  spec.use_snapshot = true;
  wasp::VirtineFunc<int64_t(int64_t)> fib(&runtime, spec);
  ASSERT_TRUE(fib.Call(10).ok());
  ASSERT_TRUE(fib.Call(10).ok());
  EXPECT_TRUE(fib.last_outcome().stats.affine_restore);
  EXPECT_GE(runtime.pool().TotalAffineShells(), 1u);
  // A plain acquire has no snapshot: the pool must hand back zeroed memory.
  auto shell = runtime.pool().Acquire(runtime.MakeVmConfig(spec.mem_size));
  const uint8_t* data = shell->memory().data();
  for (uint64_t i = 0; i < shell->memory().size(); ++i) {
    ASSERT_EQ(data[i], 0u) << "affine shell leaked byte at gpa 0x" << std::hex << i;
  }
  EXPECT_EQ(shell->memory().CountDirtyPages(), 0u);
  runtime.pool().Release(std::move(shell));
}

// --- Runtime end-to-end -------------------------------------------------------

TEST(AffineRuntime, WarmInvocationsUseDeltaRestore) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  ASSERT_TRUE(image.ok());
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "affine-flow";
  spec.use_snapshot = true;
  wasp::VirtineFunc<int64_t(int64_t)> fib(&runtime, spec);

  ASSERT_TRUE(fib.Call(10).ok());
  EXPECT_TRUE(fib.last_outcome().stats.took_snapshot);
  EXPECT_FALSE(fib.last_outcome().stats.restored_snapshot);

  uint64_t max_delta_bytes = 0;
  for (int i = 0; i < 4; ++i) {
    auto r = fib.Call(10);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, 55);
    const wasp::InvokeStats& stats = fib.last_outcome().stats;
    EXPECT_TRUE(stats.restored_snapshot);
    // The first run parked the shell snapshot-affine (the snapshot hypercall
    // began its epoch), so every warm start here is a delta restore.
    EXPECT_TRUE(stats.affine_restore) << "warm call " << i;
    EXPECT_TRUE(stats.from_pool);
    max_delta_bytes = std::max(max_delta_bytes, stats.restored_bytes);
  }
  // Delta restores repair a few pages, far below the snapshot image.
  const wasp::SnapshotRef snap = runtime.snapshots().Find("affine-flow");
  ASSERT_NE(snap, nullptr);
  EXPECT_LT(max_delta_bytes, snap->byte_size());
  const wasp::PoolStats stats = runtime.pool().stats();
  EXPECT_GE(stats.affine_hits, 4u);
  EXPECT_GE(stats.affine_parks, 4u);
}

TEST(AffineRuntime, DeltaPathIsIsolatedAcrossInvocations) {
  // A guest that snapshots explicitly, then increments a marker it reads
  // from memory: if one invocation's post-snapshot write ever survived into
  // the next restore, the result would drift past 1.
  auto image = vrt::BuildRawImage(R"(
start:
  mov r0, 0
  out HC_SNAPSHOT, r0
  mov r8, 0x600
  ld64 r9, [r8+0]
  add r9, 1
  st64 [r8+0], r9
  mov r0, r9
  mov r8, 0
  st64 [r8+0], r0
  hlt
)");
  ASSERT_TRUE(image.ok());
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "delta-isolation";
  spec.use_snapshot = true;
  spec.crt_snapshot = false;  // the guest picks its own snapshot point
  spec.word_bytes = 8;
  for (int i = 0; i < 6; ++i) {
    auto outcome = runtime.Invoke(spec);
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_EQ(outcome.result_word, 1u)
        << "post-snapshot state leaked into invocation " << i;
    if (i > 0) {
      EXPECT_TRUE(outcome.stats.restored_snapshot);
    }
  }
  EXPECT_GE(runtime.pool().stats().affine_hits, 5u);
}

TEST(AffineRuntime, AffinityDisabledStillRestoresCorrectly) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  ASSERT_TRUE(image.ok());
  wasp::RuntimeOptions options;
  options.snapshot_affinity = false;
  wasp::Runtime runtime(options);
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "no-affinity";
  spec.use_snapshot = true;
  wasp::VirtineFunc<int64_t(int64_t)> fib(&runtime, spec);
  ASSERT_TRUE(fib.Call(10).ok());
  for (int i = 0; i < 3; ++i) {
    auto r = fib.Call(10);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, 55);
    EXPECT_TRUE(fib.last_outcome().stats.restored_snapshot);
    EXPECT_FALSE(fib.last_outcome().stats.affine_restore);
    // Full restores copy the whole snapshot, every time.
    const wasp::SnapshotRef snap = runtime.snapshots().Find("no-affinity");
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(fib.last_outcome().stats.restored_bytes, snap->byte_size());
  }
  EXPECT_EQ(runtime.pool().stats().affine_parks, 0u);
  EXPECT_EQ(runtime.pool().TotalAffineShells(), 0u);
}

// Delta and full restore must be observationally identical to the guest:
// same results, same guest instruction stream.
TEST(AffineRuntime, DeltaAndFullRestoreProduceIdenticalGuestRuns) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  ASSERT_TRUE(image.ok());
  wasp::RuntimeOptions affine_on;
  wasp::RuntimeOptions affine_off;
  affine_off.snapshot_affinity = false;
  wasp::Runtime with(affine_on);
  wasp::Runtime without(affine_off);
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "ab-compare";
  spec.use_snapshot = true;
  wasp::VirtineFunc<int64_t(int64_t)> fa(&with, spec);
  wasp::VirtineFunc<int64_t(int64_t)> fb(&without, spec);
  for (int n : {0, 3, 11, 17}) {
    auto a = fa.Call(n);
    auto b = fb.Call(n);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << "n=" << n;
    EXPECT_EQ(fa.last_outcome().stats.insns, fb.last_outcome().stats.insns) << "n=" << n;
    EXPECT_EQ(fa.last_outcome().stats.guest_cycles, fb.last_outcome().stats.guest_cycles)
        << "n=" << n;
  }
}

}  // namespace
