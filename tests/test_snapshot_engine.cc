// Delta-aware snapshot engine tests: extent-coalesced capture/restore
// round-trips, the GuestMemory snapshot-epoch mechanism, randomized
// delta-vs-full differential checks (the Section 3.3 isolation objective:
// one invocation's writes must never leak into the next restore), and the
// pool's snapshot-affine acquire/release/reclaim paths.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/wasp/pool.h"
#include "src/wasp/runtime.h"
#include "src/wasp/snapshot.h"
#include "src/wasp/vfunc.h"

namespace {

using vhw::kPageSize;

// --- GuestMemory snapshot epoch ---------------------------------------------

TEST(Epoch, TracksWritesSinceBeginEpoch) {
  vhw::GuestMemory mem(1 << 20);
  uint8_t b = 1;
  ASSERT_TRUE(mem.Write(0x1000, &b, 1).ok());
  ASSERT_TRUE(mem.Write(0x5000, &b, 1).ok());
  EXPECT_EQ(mem.CountEpochDirtyPages(), 2u);
  mem.BeginEpoch();
  EXPECT_EQ(mem.CountEpochDirtyPages(), 0u);
  // The lifetime dirty bitmap is untouched by BeginEpoch.
  EXPECT_EQ(mem.CountDirtyPages(), 2u);
  ASSERT_TRUE(mem.Write(0x5000, &b, 1).ok());
  const std::vector<uint64_t> pages = mem.CollectDirtySince();
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_EQ(pages[0], 0x5000u >> vhw::kPageBits);
}

TEST(Epoch, StoreRawFastPathStillMarksEpoch) {
  vhw::GuestMemory mem(1 << 20);
  // Two stores to the same page: the second takes the last-dirty-page fast
  // path, and the epoch bitmap must already hold the page.
  mem.StoreRaw<uint64_t>(0x2000, 1);
  mem.StoreRaw<uint64_t>(0x2008, 2);
  EXPECT_EQ(mem.CountEpochDirtyPages(), 1u);
  mem.BeginEpoch();
  // BeginEpoch must invalidate the fast-path cache, or this store would
  // skip re-marking the epoch bitmap.
  mem.StoreRaw<uint64_t>(0x2010, 3);
  EXPECT_EQ(mem.CountEpochDirtyPages(), 1u);
  EXPECT_TRUE(mem.EpochPageDirty(0x2000 >> vhw::kPageBits));
}

TEST(Epoch, ZeroDirtyPagesClearsEpochToo) {
  vhw::GuestMemory mem(1 << 20);
  uint8_t b = 7;
  ASSERT_TRUE(mem.Write(0x3000, &b, 1).ok());
  mem.ZeroDirtyPages();
  EXPECT_EQ(mem.CountEpochDirtyPages(), 0u);
  EXPECT_EQ(mem.CountDirtyPages(), 0u);
}

// --- Extent-coalesced capture ------------------------------------------------

TEST(Snapshot, ContiguousDirtyRunsCoalesceIntoExtents) {
  vhw::GuestMemory mem(1 << 20);
  std::vector<uint8_t> run(10 * kPageSize, 0xab);
  ASSERT_TRUE(mem.Write(0x8000, run.data(), run.size()).ok());  // pages 8..17
  uint8_t b = 0xcd;
  ASSERT_TRUE(mem.Write(0x40000, &b, 1).ok());  // page 64, isolated
  wasp::SnapshotRef snap = wasp::CaptureSnapshot(mem, vhw::ArchState{});
  ASSERT_EQ(snap->extent->extents.size(), 2u);
  EXPECT_EQ(snap->extent->extents[0].first_page, 8u);
  EXPECT_EQ(snap->extent->extents[0].page_count, 10u);
  EXPECT_EQ(snap->extent->extents[1].first_page, 64u);
  EXPECT_EQ(snap->extent->extents[1].page_count, 1u);
  EXPECT_EQ(snap->byte_size(), 11 * kPageSize);
  // FindPage resolves captured pages and rejects uncaptured ones.
  ASSERT_NE(snap->FindPage(8), nullptr);
  ASSERT_NE(snap->FindPage(17), nullptr);
  EXPECT_EQ(snap->FindPage(17)[0], 0xab);
  EXPECT_EQ(snap->FindPage(64)[0], 0xcd);
  EXPECT_EQ(snap->FindPage(7), nullptr);
  EXPECT_EQ(snap->FindPage(18), nullptr);
  EXPECT_EQ(snap->FindPage(63), nullptr);
  EXPECT_EQ(snap->FindPage(65), nullptr);
}

TEST(Snapshot, GenerationsAreProcessUnique) {
  vhw::GuestMemory mem(1 << 16);
  wasp::SnapshotRef a = wasp::CaptureSnapshot(mem, vhw::ArchState{});
  wasp::SnapshotRef b = wasp::CaptureSnapshot(mem, vhw::ArchState{});
  EXPECT_NE(a->generation, 0u);
  EXPECT_NE(b->generation, 0u);
  EXPECT_NE(a->generation, b->generation);
}

TEST(Snapshot, FullRestoreRoundTripsMemory) {
  vhw::GuestMemory src(1 << 20);
  vbase::Rng rng(42);
  // Scattered multi-page writes with distinctive content.
  for (int i = 0; i < 32; ++i) {
    std::vector<uint8_t> buf(1 + rng.Below(3 * kPageSize));
    for (uint8_t& v : buf) {
      v = static_cast<uint8_t>(rng.Next());
    }
    const uint64_t gpa = rng.Below(src.size() - buf.size());
    ASSERT_TRUE(src.Write(gpa, buf.data(), buf.size()).ok());
  }
  wasp::SnapshotRef snap = wasp::CaptureSnapshot(src, vhw::ArchState{});
  vhw::GuestMemory dst(1 << 20);
  EXPECT_EQ(wasp::RestoreFullInto(*snap, &dst), snap->byte_size());
  ASSERT_EQ(dst.size(), src.size());
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
  // Restored pages are marked dirty so a pool clean re-zeroes them.
  EXPECT_EQ(dst.CountDirtyPages(), snap->page_count());
}

// --- Delta-vs-full differential fuzz ----------------------------------------

// The heart of the isolation argument: after arbitrary post-snapshot writes,
// a delta restore must leave memory byte-identical to a full restore into a
// clean shell.
TEST(Snapshot, DeltaRestoreMatchesFullRestoreUnderRandomStores) {
  constexpr uint64_t kMemSize = 1 << 20;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    vbase::Rng rng(seed * 7919);
    vhw::GuestMemory live(kMemSize);
    // Random base state (the "image + boot + init" the snapshot captures).
    const int base_writes = 4 + static_cast<int>(rng.Below(24));
    for (int i = 0; i < base_writes; ++i) {
      std::vector<uint8_t> buf(1 + rng.Below(2 * kPageSize));
      for (uint8_t& v : buf) {
        v = static_cast<uint8_t>(rng.Next());
      }
      ASSERT_TRUE(live.Write(rng.Below(kMemSize - buf.size()), buf.data(), buf.size()).ok());
    }
    wasp::SnapshotRef snap = wasp::CaptureSnapshot(live, vhw::ArchState{});
    live.BeginEpoch();

    // Reference: full restore into a clean shell.
    vhw::GuestMemory reference(kMemSize);
    wasp::RestoreFullInto(*snap, &reference);

    // The tenant scribbles: inside snapshot pages, outside them, straddling,
    // and via the StoreRaw fast path.
    const int tenant_writes = 1 + static_cast<int>(rng.Below(40));
    for (int i = 0; i < tenant_writes; ++i) {
      if (rng.Below(4) == 0) {
        live.StoreRaw<uint64_t>(rng.Below(kMemSize - 8) & ~7ULL, rng.Next());
      } else {
        std::vector<uint8_t> buf(1 + rng.Below(3 * kPageSize));
        for (uint8_t& v : buf) {
          v = static_cast<uint8_t>(rng.Next());
        }
        ASSERT_TRUE(
            live.Write(rng.Below(kMemSize - buf.size()), buf.data(), buf.size()).ok());
      }
    }

    const uint64_t repaired = wasp::RestoreDeltaInto(*snap, &live);
    EXPECT_EQ(repaired, live.CollectDirtySince().size() * kPageSize);
    ASSERT_EQ(std::memcmp(live.data(), reference.data(), kMemSize), 0)
        << "delta restore diverged from full restore (seed " << seed << ")";
  }
}

TEST(Snapshot, DeltaRestoreCostFollowsWorkingSetNotImage) {
  // A large snapshot (1024 captured pages) with a 3-page working set: the
  // delta restore must repair exactly 3 pages.
  vhw::GuestMemory mem(8 << 20);
  std::vector<uint8_t> image(1024 * kPageSize, 0x11);
  ASSERT_TRUE(mem.Write(0, image.data(), image.size()).ok());
  wasp::SnapshotRef snap = wasp::CaptureSnapshot(mem, vhw::ArchState{});
  mem.BeginEpoch();
  uint8_t b = 0x22;
  ASSERT_TRUE(mem.Write(10 * kPageSize, &b, 1).ok());        // inside the image
  ASSERT_TRUE(mem.Write(2000 * kPageSize, &b, 1).ok());      // outside the image
  mem.StoreRaw<uint32_t>(500 * kPageSize + 16, 0xdeadbeef);  // fast path
  const uint64_t repaired = wasp::RestoreDeltaInto(*snap, &mem);
  EXPECT_EQ(repaired, 3 * kPageSize);
  EXPECT_LT(repaired, snap->byte_size());
  // Page outside the snapshot is re-zeroed, pages inside are re-copied.
  EXPECT_EQ(mem.data()[2000 * kPageSize], 0u);
  EXPECT_EQ(mem.data()[10 * kPageSize], 0x11);
}

// --- Pool snapshot affinity ---------------------------------------------------

TEST(AffinePool, KeyedAcquirePrefersParkedGeneration) {
  wasp::Pool pool(wasp::CleanMode::kSync);
  vkvm::VmConfig cfg;
  auto vm = pool.Acquire(cfg);
  uint8_t b = 0x5a;
  ASSERT_TRUE(vm->memory().Write(0x9000, &b, 1).ok());
  vm->memory().BeginEpoch();
  pool.ReleaseAffine(std::move(vm), /*generation=*/17);
  EXPECT_EQ(pool.AffineShells(17), 1u);
  EXPECT_EQ(pool.TotalFreeShells(), 0u);

  bool affine = false;
  bool from_pool = false;
  auto again = pool.AcquireAffine(cfg, 17, &affine, &from_pool);
  EXPECT_TRUE(affine);
  EXPECT_TRUE(from_pool);
  // The parked shell kept its memory: no zeroing happened on release.
  EXPECT_EQ(again->memory().data()[0x9000], 0x5a);
  const wasp::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.affine_parks, 1u);
  EXPECT_EQ(stats.affine_hits, 1u);
  EXPECT_EQ(stats.affine_reclaims, 0u);
  pool.Release(std::move(again));
}

TEST(AffinePool, WrongGenerationFallsBackToCleanShell) {
  wasp::Pool pool(wasp::CleanMode::kSync);
  vkvm::VmConfig cfg;
  auto vm = pool.Acquire(cfg);
  uint8_t b = 0x5a;
  ASSERT_TRUE(vm->memory().Write(0x9000, &b, 1).ok());
  pool.ReleaseAffine(std::move(vm), 23);
  // A keyed acquire for a different generation must not see shell 23's
  // memory: it reclaims (cleans) it instead.
  bool affine = true;
  auto other = pool.AcquireAffine(cfg, 99, &affine);
  EXPECT_FALSE(affine);
  EXPECT_EQ(other->memory().data()[0x9000], 0u);
  EXPECT_EQ(pool.stats().affine_reclaims, 1u);
  pool.Release(std::move(other));
}

// The satellite regression: restore -> affine release -> *plain* reacquire
// must yield a fully zeroed shell (the affine shortcut can never leak one
// tenant's memory to a non-affine consumer).
TEST(AffinePool, PlainAcquireAfterAffineParkIsFullyZeroed) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  ASSERT_TRUE(image.ok());
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "zero-regression";
  spec.use_snapshot = true;
  wasp::VirtineFunc<int64_t(int64_t)> fib(&runtime, spec);
  ASSERT_TRUE(fib.Call(10).ok());
  ASSERT_TRUE(fib.Call(10).ok());
  EXPECT_TRUE(fib.last_outcome().stats.affine_restore);
  EXPECT_GE(runtime.pool().TotalAffineShells(), 1u);
  // A plain acquire has no snapshot: the pool must hand back zeroed memory.
  auto shell = runtime.pool().Acquire(runtime.MakeVmConfig(spec.mem_size));
  const uint8_t* data = shell->memory().data();
  for (uint64_t i = 0; i < shell->memory().size(); ++i) {
    ASSERT_EQ(data[i], 0u) << "affine shell leaked byte at gpa 0x" << std::hex << i;
  }
  EXPECT_EQ(shell->memory().CountDirtyPages(), 0u);
  runtime.pool().Release(std::move(shell));
}

// --- Runtime end-to-end -------------------------------------------------------

TEST(AffineRuntime, WarmInvocationsUseDeltaRestore) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  ASSERT_TRUE(image.ok());
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "affine-flow";
  spec.use_snapshot = true;
  wasp::VirtineFunc<int64_t(int64_t)> fib(&runtime, spec);

  ASSERT_TRUE(fib.Call(10).ok());
  EXPECT_TRUE(fib.last_outcome().stats.took_snapshot);
  EXPECT_FALSE(fib.last_outcome().stats.restored_snapshot);

  uint64_t max_delta_bytes = 0;
  for (int i = 0; i < 4; ++i) {
    auto r = fib.Call(10);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, 55);
    const wasp::InvokeStats& stats = fib.last_outcome().stats;
    EXPECT_TRUE(stats.restored_snapshot);
    // The first run parked the shell snapshot-affine (the snapshot hypercall
    // began its epoch), so every warm start here is a delta restore.
    EXPECT_TRUE(stats.affine_restore) << "warm call " << i;
    EXPECT_TRUE(stats.from_pool);
    max_delta_bytes = std::max(max_delta_bytes, stats.restored_bytes);
  }
  // Delta restores repair a few pages, far below the snapshot image.
  const wasp::SnapshotRef snap = runtime.snapshots().Find("affine-flow");
  ASSERT_NE(snap, nullptr);
  EXPECT_LT(max_delta_bytes, snap->byte_size());
  const wasp::PoolStats stats = runtime.pool().stats();
  EXPECT_GE(stats.affine_hits, 4u);
  EXPECT_GE(stats.affine_parks, 4u);
}

TEST(AffineRuntime, DeltaPathIsIsolatedAcrossInvocations) {
  // A guest that snapshots explicitly, then increments a marker it reads
  // from memory: if one invocation's post-snapshot write ever survived into
  // the next restore, the result would drift past 1.
  auto image = vrt::BuildRawImage(R"(
start:
  mov r0, 0
  out HC_SNAPSHOT, r0
  mov r8, 0x600
  ld64 r9, [r8+0]
  add r9, 1
  st64 [r8+0], r9
  mov r0, r9
  mov r8, 0
  st64 [r8+0], r0
  hlt
)");
  ASSERT_TRUE(image.ok());
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "delta-isolation";
  spec.use_snapshot = true;
  spec.crt_snapshot = false;  // the guest picks its own snapshot point
  spec.word_bytes = 8;
  for (int i = 0; i < 6; ++i) {
    auto outcome = runtime.Invoke(spec);
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_EQ(outcome.result_word, 1u)
        << "post-snapshot state leaked into invocation " << i;
    if (i > 0) {
      EXPECT_TRUE(outcome.stats.restored_snapshot);
    }
  }
  EXPECT_GE(runtime.pool().stats().affine_hits, 5u);
}

TEST(AffineRuntime, AffinityDisabledStillRestoresCorrectly) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  ASSERT_TRUE(image.ok());
  wasp::RuntimeOptions options;
  options.snapshot_affinity = false;
  wasp::Runtime runtime(options);
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "no-affinity";
  spec.use_snapshot = true;
  wasp::VirtineFunc<int64_t(int64_t)> fib(&runtime, spec);
  ASSERT_TRUE(fib.Call(10).ok());
  for (int i = 0; i < 3; ++i) {
    auto r = fib.Call(10);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, 55);
    EXPECT_TRUE(fib.last_outcome().stats.restored_snapshot);
    EXPECT_FALSE(fib.last_outcome().stats.affine_restore);
    // Full restores copy the whole snapshot, every time.
    const wasp::SnapshotRef snap = runtime.snapshots().Find("no-affinity");
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(fib.last_outcome().stats.restored_bytes, snap->byte_size());
  }
  EXPECT_EQ(runtime.pool().stats().affine_parks, 0u);
  EXPECT_EQ(runtime.pool().TotalAffineShells(), 0u);
}

// --- COW extents --------------------------------------------------------------

// Asserts the pool's gauge conservation invariant on one consistent
// accounting snapshot: resident_bytes == sum over generations of
// (shared + private).
void ExpectConserved(const wasp::Pool& pool) {
  const wasp::AffineAccounting acct = pool.affine_accounting();
  uint64_t sum = 0;
  for (const auto& gen : acct.generations) {
    sum += gen.shared_bytes + gen.private_bytes;
  }
  EXPECT_EQ(sum, acct.resident_bytes);
}

// The COW differential: mapping a snapshot's shared extent chain must be
// byte-identical to a full copy, writes must privatize exactly the epoch
// pages, and a delta restore must re-share everything (private count back to
// zero) while still matching the full-copy reference byte-for-byte.
TEST(Cow, WritePrivatizationDifferentialFuzz) {
  constexpr uint64_t kMemSize = 1 << 20;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    vbase::Rng rng(seed * 104729);
    vhw::GuestMemory base(kMemSize);
    const int base_writes = 4 + static_cast<int>(rng.Below(20));
    for (int i = 0; i < base_writes; ++i) {
      std::vector<uint8_t> buf(1 + rng.Below(3 * kPageSize));
      for (uint8_t& v : buf) {
        v = static_cast<uint8_t>(rng.Next());
      }
      ASSERT_TRUE(base.Write(rng.Below(kMemSize - buf.size()), buf.data(), buf.size()).ok());
    }
    wasp::SnapshotRef snap = wasp::CaptureSnapshot(base, vhw::ArchState{});

    vhw::GuestMemory full(kMemSize);
    wasp::RestoreFullInto(*snap, &full);
    vhw::GuestMemory cow(kMemSize);
    EXPECT_EQ(wasp::MapCowInto(*snap, &cow), snap->chain_byte_size());
    ASSERT_TRUE(cow.HasCowBase());
    EXPECT_EQ(cow.CowPrivatePages(), 0u);
    // The map is byte-identical to the copy, with identical dirty marks (a
    // pool clean must re-zero exactly the same pages either way).
    ASSERT_EQ(std::memcmp(cow.data(), full.data(), kMemSize), 0);
    EXPECT_EQ(cow.CountDirtyPages(), full.CountDirtyPages());
    cow.BeginEpoch();
    full.BeginEpoch();

    // Identical tenant writes on both shells.
    const int tenant_writes = 1 + static_cast<int>(rng.Below(30));
    for (int i = 0; i < tenant_writes; ++i) {
      if (rng.Below(4) == 0) {
        const uint64_t gpa = rng.Below(kMemSize - 8) & ~7ULL;
        const uint64_t v = rng.Next();
        cow.StoreRaw<uint64_t>(gpa, v);
        full.StoreRaw<uint64_t>(gpa, v);
      } else {
        std::vector<uint8_t> buf(1 + rng.Below(2 * kPageSize));
        for (uint8_t& v : buf) {
          v = static_cast<uint8_t>(rng.Next());
        }
        const uint64_t gpa = rng.Below(kMemSize - buf.size());
        ASSERT_TRUE(cow.Write(gpa, buf.data(), buf.size()).ok());
        ASSERT_TRUE(full.Write(gpa, buf.data(), buf.size()).ok());
      }
    }
    ASSERT_EQ(std::memcmp(cow.data(), full.data(), kMemSize), 0);
    // The epoch began at the map point, so privatized pages are exactly the
    // epoch-dirty pages: what the shell is charged while parked.
    EXPECT_EQ(cow.CowPrivatePages(), cow.CountEpochDirtyPages()) << "seed " << seed;

    // Delta restore takes the repair path on the COW shell (re-sharing its
    // pages) and the legacy copy path on the full shell; both must converge
    // on the snapshot's exact view.
    const uint64_t repaired_cow = wasp::RestoreDeltaInto(*snap, &cow);
    const uint64_t repaired_full = wasp::RestoreDeltaInto(*snap, &full);
    EXPECT_EQ(repaired_cow, repaired_full);
    ASSERT_EQ(std::memcmp(cow.data(), full.data(), kMemSize), 0)
        << "COW repair diverged from legacy delta restore (seed " << seed << ")";
    vhw::GuestMemory reference(kMemSize);
    wasp::RestoreFullInto(*snap, &reference);
    ASSERT_EQ(std::memcmp(cow.data(), reference.data(), kMemSize), 0);
    // All private pages were re-shared: the parked charge returns to zero.
    EXPECT_EQ(cow.CowPrivatePages(), 0u);
    EXPECT_TRUE(cow.HasCowBase());
    EXPECT_EQ(cow.cow_base(), snap->extent);
  }
}

TEST(Cow, CleanDropsTheBase) {
  vhw::GuestMemory mem(1 << 20);
  uint8_t b = 0x33;
  ASSERT_TRUE(mem.Write(0x4000, &b, 1).ok());
  wasp::SnapshotRef snap = wasp::CaptureSnapshot(mem, vhw::ArchState{});
  vhw::GuestMemory shell(1 << 20);
  wasp::MapCowInto(*snap, &shell);
  shell.ZeroDirtyPages();
  EXPECT_FALSE(shell.HasCowBase());
  EXPECT_EQ(shell.CowPrivatePages(), 0u);
  EXPECT_EQ(shell.data()[0x4000], 0u);
}

// --- Snapshot chains ----------------------------------------------------------

TEST(SnapshotChain, DeltaCaptureFlattenRestoreRoundTrip) {
  constexpr uint64_t kMemSize = 1 << 20;
  vhw::GuestMemory mem(kMemSize);
  std::vector<uint8_t> image(16 * kPageSize, 0x11);
  ASSERT_TRUE(mem.Write(0x8000, image.data(), image.size()).ok());  // pages 8..23
  wasp::SnapshotRef root = wasp::CaptureSnapshot(mem, vhw::ArchState{});
  EXPECT_EQ(root->chain_depth(), 1);

  // Drift: one page shadowing the root's image, one page outside it.
  mem.BeginEpoch();
  std::vector<uint8_t> drift(kPageSize, 0x22);
  ASSERT_TRUE(mem.Write(0xa000, drift.data(), drift.size()).ok());   // page 10, shadowed
  ASSERT_TRUE(mem.Write(0x40000, drift.data(), drift.size()).ok());  // page 64, new
  wasp::SnapshotRef child = wasp::CaptureDeltaSnapshot(mem, *root);
  EXPECT_EQ(child->chain_depth(), 2);
  EXPECT_EQ(child->parent_generation, root->generation);
  EXPECT_EQ(child->byte_size(), 2 * kPageSize);  // own layer: the delta only
  EXPECT_EQ(child->chain_byte_size(), root->byte_size() + 2 * kPageSize);
  // Chain lookup: the child's page shadows the root's, untouched pages fall
  // through to the root, uncovered pages resolve to nothing.
  ASSERT_NE(child->FindPage(10), nullptr);
  EXPECT_EQ(child->FindPage(10)[0], 0x22);
  ASSERT_NE(child->FindPage(11), nullptr);
  EXPECT_EQ(child->FindPage(11)[0], 0x11);
  EXPECT_EQ(child->FindPage(64)[0], 0x22);
  EXPECT_EQ(child->FindPage(7), nullptr);

  // Full restore of the chain reproduces the drifted memory exactly, and so
  // does a COW map of it.
  vhw::GuestMemory via_copy(kMemSize);
  EXPECT_EQ(wasp::RestoreFullInto(*child, &via_copy), child->chain_byte_size());
  ASSERT_EQ(std::memcmp(via_copy.data(), mem.data(), kMemSize), 0);
  vhw::GuestMemory via_map(kMemSize);
  wasp::MapCowInto(*child, &via_map);
  ASSERT_EQ(std::memcmp(via_map.data(), mem.data(), kMemSize), 0);

  // Flattening collapses the chain to one parentless layer with the same
  // view: shadowed root pages are dropped, not duplicated.
  wasp::SnapshotRef flat = wasp::FlattenSnapshot(*child);
  EXPECT_EQ(flat->chain_depth(), 1);
  EXPECT_EQ(flat->generation, child->generation);
  EXPECT_EQ(flat->parent_generation, 0u);
  EXPECT_EQ(flat->byte_size(), child->extent->CoveredBytes());
  EXPECT_LT(flat->chain_byte_size(), child->chain_byte_size());
  vhw::GuestMemory via_flat(kMemSize);
  wasp::RestoreFullInto(*flat, &via_flat);
  ASSERT_EQ(std::memcmp(via_flat.data(), mem.data(), kMemSize), 0);
}

// Re-capture folds a warm service's drift into a delta child: the counter
// guest's marker (incremented once per invocation, normally repaired back to
// zero) becomes part of the published snapshot, so warm results step up by
// one per re-capture.
TEST(AffineRuntime, RecaptureFoldsDriftIntoDeltaChild) {
  auto image = vrt::BuildRawImage(R"(
start:
  mov r0, 0
  out HC_SNAPSHOT, r0
  mov r8, 0x600
  ld64 r9, [r8+0]
  add r9, 1
  st64 [r8+0], r9
  mov r0, r9
  mov r8, 0
  st64 [r8+0], r0
  hlt
)");
  ASSERT_TRUE(image.ok());
  wasp::RuntimeOptions options;
  // Keep the chain a chain: this test asserts depth growth, not flattening.
  options.chain_flatten_slack = 1000.0;
  wasp::Runtime runtime(options);
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "recapture";
  spec.use_snapshot = true;
  spec.crt_snapshot = false;
  for (int i = 0; i < 3; ++i) {
    auto outcome = runtime.Invoke(spec);
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_EQ(outcome.result_word, 1u);
  }

  const wasp::RecaptureOutcome rc = runtime.RecaptureSnapshot("recapture");
  ASSERT_EQ(rc.status, wasp::RecaptureOutcome::Status::kRecaptured);
  EXPECT_NE(rc.new_generation, rc.old_generation);
  EXPECT_EQ(rc.chain_depth, 2);
  EXPECT_FALSE(rc.flattened);
  EXPECT_GT(rc.delta_bytes, 0u);
  const wasp::SnapshotRef snap = runtime.snapshots().Find("recapture");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->generation, rc.new_generation);
  EXPECT_EQ(snap->parent_generation, rc.old_generation);

  // The marker the re-capture folded in was 1, so warm runs now return 2 —
  // and the stolen shell was re-parked warm, so the first one is already an
  // affine hit.
  for (int i = 0; i < 3; ++i) {
    auto outcome = runtime.Invoke(spec);
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_EQ(outcome.result_word, 2u) << "warm call " << i;
    EXPECT_TRUE(outcome.stats.restored_snapshot);
    EXPECT_TRUE(outcome.stats.affine_restore) << "warm call " << i;
  }

  // A second re-capture grows the chain one more layer and steps the
  // counter again.
  const wasp::RecaptureOutcome rc2 = runtime.RecaptureSnapshot("recapture");
  ASSERT_EQ(rc2.status, wasp::RecaptureOutcome::Status::kRecaptured);
  EXPECT_EQ(rc2.chain_depth, 3);
  EXPECT_EQ(rc2.old_generation, rc.new_generation);
  auto outcome = runtime.Invoke(spec);
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.result_word, 3u);
}

TEST(AffineRuntime, RecaptureFlattensWhenChainExceedsDepthBound) {
  auto image = vrt::BuildRawImage(R"(
start:
  mov r0, 0
  out HC_SNAPSHOT, r0
  mov r8, 0x600
  ld64 r9, [r8+0]
  add r9, 1
  st64 [r8+0], r9
  mov r0, r9
  mov r8, 0
  st64 [r8+0], r0
  hlt
)");
  ASSERT_TRUE(image.ok());
  wasp::RuntimeOptions options;
  options.chain_max_depth = 1;  // any delta child must flatten immediately
  wasp::Runtime runtime(options);
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "flatten";
  spec.use_snapshot = true;
  spec.crt_snapshot = false;
  ASSERT_TRUE(runtime.Invoke(spec).status.ok());
  ASSERT_TRUE(runtime.Invoke(spec).status.ok());
  const wasp::RecaptureOutcome rc = runtime.RecaptureSnapshot("flatten");
  ASSERT_EQ(rc.status, wasp::RecaptureOutcome::Status::kRecaptured);
  EXPECT_TRUE(rc.flattened);
  EXPECT_EQ(rc.chain_depth, 1);
  const wasp::SnapshotRef snap = runtime.snapshots().Find("flatten");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->parent_generation, 0u);
  auto outcome = runtime.Invoke(spec);
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.result_word, 2u);
}

TEST(AffineRuntime, RecaptureEdgeCases) {
  wasp::Runtime runtime;
  // Unknown key: nothing to re-capture.
  EXPECT_EQ(runtime.RecaptureSnapshot("nope").status,
            wasp::RecaptureOutcome::Status::kNoSnapshot);

  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  ASSERT_TRUE(image.ok());
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "edges";
  spec.use_snapshot = true;
  wasp::VirtineFunc<int64_t(int64_t)> fib(&runtime, spec);
  ASSERT_TRUE(fib.Call(10).ok());

  // A re-capture parks the stolen shell with a fresh epoch, so an immediate
  // second re-capture sees no drift and leaves the snapshot untouched.
  const wasp::RecaptureOutcome rc = runtime.RecaptureSnapshot("edges");
  ASSERT_EQ(rc.status, wasp::RecaptureOutcome::Status::kRecaptured);
  const wasp::RecaptureOutcome again = runtime.RecaptureSnapshot("edges");
  EXPECT_EQ(again.status, wasp::RecaptureOutcome::Status::kNoDrift);
  EXPECT_EQ(again.new_generation, rc.new_generation);

  // With no shell parked under the generation there is no drift to fold.
  auto stolen = runtime.pool().StealParkedAffine(rc.new_generation);
  ASSERT_NE(stolen, nullptr);
  runtime.pool().Release(std::move(stolen));
  EXPECT_EQ(runtime.RecaptureSnapshot("edges").status,
            wasp::RecaptureOutcome::Status::kNoWarmShell);
}

// --- COW residency accounting -------------------------------------------------

TEST(AffinePool, CowParkChargesPrivateOnlySharedOncePerGeneration) {
  vhw::GuestMemory base(1 << 20);
  std::vector<uint8_t> image(64 * kPageSize, 0x44);
  ASSERT_TRUE(base.Write(0, image.data(), image.size()).ok());
  wasp::SnapshotRef snap = wasp::CaptureSnapshot(base, vhw::ArchState{});
  const uint64_t shared = snap->chain_byte_size();

  wasp::Pool pool(wasp::CleanMode::kSync);
  vkvm::VmConfig cfg;
  auto prep_with_private_pages = [&](int pages) {
    auto vm = pool.Acquire(cfg);
    wasp::MapCowInto(*snap, &vm->memory());
    vm->memory().BeginEpoch();
    uint8_t b = 0x55;
    for (int p = 0; p < pages; ++p) {
      EXPECT_TRUE(vm->memory().Write((100 + p) * kPageSize, &b, 1).ok());
    }
    EXPECT_EQ(vm->memory().CowPrivatePages(), static_cast<uint64_t>(pages));
    return vm;
  };
  // Prepare both shells before parking either: with nothing clean pooled, a
  // plain Acquire would reclaim (clean) an already-parked affine shell.
  auto shell2 = prep_with_private_pages(2);
  auto shell3 = prep_with_private_pages(3);
  pool.ReleaseAffine(std::move(shell2), snap->generation, shared);
  ExpectConserved(pool);
  wasp::AffineAccounting acct = pool.affine_accounting();
  EXPECT_EQ(acct.resident_bytes, shared + 2 * kPageSize);
  // A second shell of the same generation adds only its private pages: the
  // chain is already charged.
  pool.ReleaseAffine(std::move(shell3), snap->generation, shared);
  ExpectConserved(pool);
  acct = pool.affine_accounting();
  EXPECT_EQ(acct.resident_bytes, shared + 5 * kPageSize);
  ASSERT_EQ(acct.generations.size(), 1u);
  EXPECT_EQ(acct.generations[0].generation, snap->generation);
  EXPECT_EQ(acct.generations[0].shared_bytes, shared);
  EXPECT_EQ(acct.generations[0].private_bytes, 5 * kPageSize);
  EXPECT_EQ(acct.generations[0].parked_shells, 2);

  // Stealing one shell releases its private charge but keeps the shared
  // charge (a shell is still parked).
  auto stolen = pool.StealParkedAffine(snap->generation);
  ASSERT_NE(stolen, nullptr);
  ExpectConserved(pool);
  acct = pool.affine_accounting();
  EXPECT_EQ(acct.resident_bytes, shared + 5 * kPageSize - stolen->memory().CowPrivateBytes());
  pool.Release(std::move(stolen));

  // Retiring the generation reclaims the last shell and the shared charge.
  pool.RetireGeneration(snap->generation);
  ExpectConserved(pool);
  acct = pool.affine_accounting();
  EXPECT_EQ(acct.resident_bytes, 0u);
  EXPECT_TRUE(acct.generations.empty());
  EXPECT_EQ(pool.TotalAffineShells(), 0u);
  const wasp::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.affine_shared_bytes, 0u);
  EXPECT_EQ(stats.affine_private_bytes, 0u);
}

TEST(AffinePool, LegacyParkWithoutCowBaseChargesFullMemory) {
  wasp::Pool pool(wasp::CleanMode::kSync);
  vkvm::VmConfig cfg;
  auto vm = pool.Acquire(cfg);
  uint8_t b = 0x66;
  ASSERT_TRUE(vm->memory().Write(0x1000, &b, 1).ok());
  pool.ReleaseAffine(std::move(vm), /*generation=*/7);
  ExpectConserved(pool);
  const wasp::AffineAccounting acct = pool.affine_accounting();
  EXPECT_EQ(acct.resident_bytes, cfg.mem_size);
  ASSERT_EQ(acct.generations.size(), 1u);
  EXPECT_EQ(acct.generations[0].shared_bytes, 0u);
  EXPECT_EQ(acct.generations[0].private_bytes, cfg.mem_size);
  pool.RetireGeneration(7);
  EXPECT_EQ(pool.affine_accounting().resident_bytes, 0u);
}

TEST(AffinePool, BudgetEvictionReleasesSharedChargeWithLastShell) {
  vhw::GuestMemory base(1 << 20);
  std::vector<uint8_t> image(32 * kPageSize, 0x77);
  ASSERT_TRUE(base.Write(0, image.data(), image.size()).ok());
  wasp::SnapshotRef a = wasp::CaptureSnapshot(base, vhw::ArchState{});
  wasp::SnapshotRef b = wasp::CaptureSnapshot(base, vhw::ArchState{});
  // Budget fits one generation's chain plus slack, never two.
  wasp::PoolOptions options;
  options.mode = wasp::CleanMode::kSync;
  options.affine_budget_bytes = a->chain_byte_size() + 8 * kPageSize;
  wasp::Pool pool(options);
  vkvm::VmConfig cfg;
  auto prep = [&](const wasp::SnapshotRef& snap) {
    auto vm = pool.Acquire(cfg);
    wasp::MapCowInto(*snap, &vm->memory());
    vm->memory().BeginEpoch();
    uint8_t v = 0x78;
    EXPECT_TRUE(vm->memory().Write(200 * kPageSize, &v, 1).ok());
    return vm;
  };
  // Prepare both shells before parking either (a plain Acquire reclaims
  // parked affine shells when nothing clean is pooled).
  auto shell_a = prep(a);
  auto shell_b = prep(b);
  pool.ReleaseAffine(std::move(shell_a), a->generation, a->chain_byte_size());
  ExpectConserved(pool);
  ASSERT_EQ(pool.affine_accounting().resident_bytes,
            a->chain_byte_size() + kPageSize);
  // Parking generation b blows the budget: generation a (LRU) is evicted
  // wholesale, releasing its shared charge along with its last shell.
  pool.ReleaseAffine(std::move(shell_b), b->generation, b->chain_byte_size());
  ExpectConserved(pool);
  const wasp::AffineAccounting acct = pool.affine_accounting();
  EXPECT_EQ(acct.resident_bytes, b->chain_byte_size() + kPageSize);
  ASSERT_EQ(acct.generations.size(), 1u);
  EXPECT_EQ(acct.generations[0].generation, b->generation);
  EXPECT_EQ(pool.AffineShells(a->generation), 0u);
  EXPECT_GE(pool.stats().affine_evictions, 1u);
}

// The TSan target: parks, affine hits, budget evictions, steals, and
// retirements race across threads while an observer asserts the gauge
// conservation invariant on every snapshot it takes.
TEST(AffinePoolConcurrency, GaugeConservationUnderParkEvictRetire) {
  constexpr int kSnapshots = 4;
  constexpr int kWorkers = 4;
  constexpr int kItersPerWorker = 60;
  std::vector<wasp::SnapshotRef> snaps;
  for (int i = 0; i < kSnapshots; ++i) {
    vhw::GuestMemory base(1 << 20);
    std::vector<uint8_t> image((8 + 8 * i) * kPageSize, static_cast<uint8_t>(0x80 + i));
    ASSERT_TRUE(base.Write(0, image.data(), image.size()).ok());
    snaps.push_back(wasp::CaptureSnapshot(base, vhw::ArchState{}));
  }
  wasp::PoolOptions options;
  options.mode = wasp::CleanMode::kAsync;
  options.cleaners = 2;
  // Tight enough that concurrent parks trigger budget evictions.
  options.affine_budget_bytes = 3 * snaps.back()->chain_byte_size();
  wasp::Pool pool(options);
  vkvm::VmConfig cfg;

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      vbase::Rng rng(0xc0c0 + w);
      for (int i = 0; i < kItersPerWorker; ++i) {
        const wasp::SnapshotRef& snap = snaps[rng.Below(kSnapshots)];
        bool affine = false;
        auto vm = pool.AcquireAffine(cfg, snap->generation, &affine);
        if (affine) {
          wasp::RestoreDeltaInto(*snap, &vm->memory());
        } else {
          vm->memory().ZeroDirtyPages();
          wasp::MapCowInto(*snap, &vm->memory());
        }
        vm->memory().BeginEpoch();
        uint8_t b = static_cast<uint8_t>(rng.Next());
        const int writes = static_cast<int>(rng.Below(4));
        for (int p = 0; p < writes; ++p) {
          ASSERT_TRUE(
              vm->memory().Write((128 + rng.Below(64)) * kPageSize, &b, 1).ok());
        }
        pool.ReleaseAffine(std::move(vm), snap->generation, snap->chain_byte_size());
      }
    });
  }
  std::thread observer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const wasp::AffineAccounting acct = pool.affine_accounting();
      uint64_t sum = 0;
      for (const auto& gen : acct.generations) {
        sum += gen.shared_bytes + gen.private_bytes;
      }
      ASSERT_EQ(sum, acct.resident_bytes) << "conservation violated mid-race";
      std::this_thread::yield();
    }
  });
  std::thread retirer([&] {
    // Retire two of the four generations mid-run: races the workers' parks,
    // which must divert to the cleaning path instead of re-stranding bytes.
    pool.RetireGeneration(snaps[0]->generation);
    std::this_thread::yield();
    pool.RetireGeneration(snaps[1]->generation);
  });
  for (std::thread& t : workers) {
    t.join();
  }
  retirer.join();
  stop.store(true, std::memory_order_relaxed);
  observer.join();

  // Drain and retire everything: the gauge must return to exactly zero.
  for (const wasp::SnapshotRef& snap : snaps) {
    pool.RetireGeneration(snap->generation);
  }
  pool.DrainCleaner();
  ExpectConserved(pool);
  const wasp::AffineAccounting acct = pool.affine_accounting();
  EXPECT_EQ(acct.resident_bytes, 0u);
  EXPECT_TRUE(acct.generations.empty());
  EXPECT_EQ(pool.TotalAffineShells(), 0u);
  const wasp::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.affine_shared_bytes, 0u);
  EXPECT_EQ(stats.affine_private_bytes, 0u);
  EXPECT_EQ(stats.affine_resident_bytes, 0u);
}

// Delta and full restore must be observationally identical to the guest:
// same results, same guest instruction stream.
TEST(AffineRuntime, DeltaAndFullRestoreProduceIdenticalGuestRuns) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  ASSERT_TRUE(image.ok());
  wasp::RuntimeOptions affine_on;
  wasp::RuntimeOptions affine_off;
  affine_off.snapshot_affinity = false;
  wasp::Runtime with(affine_on);
  wasp::Runtime without(affine_off);
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "ab-compare";
  spec.use_snapshot = true;
  wasp::VirtineFunc<int64_t(int64_t)> fa(&with, spec);
  wasp::VirtineFunc<int64_t(int64_t)> fb(&without, spec);
  for (int n : {0, 3, 11, 17}) {
    auto a = fa.Call(n);
    auto b = fb.Call(n);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << "n=" << n;
    EXPECT_EQ(fa.last_outcome().stats.insns, fb.last_outcome().stats.insns) << "n=" << n;
    EXPECT_EQ(fa.last_outcome().stats.guest_cycles, fb.last_outcome().stats.guest_cycles)
        << "n=" << n;
  }
}

}  // namespace
