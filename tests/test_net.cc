// vnet tests: HTTP parser (including property-style malformed-input sweeps),
// the static server in all three modes, the echo guest, the serverless
// platform, and the bursty-load simulator.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/vjs/vjs.h"
#include "src/vnet/http.h"
#include "src/vnet/loadgen.h"
#include "src/vnet/server.h"
#include "src/vcc/vcc.h"
#include "src/vnet/serverless.h"
#include "src/vrt/vlibc.h"
#include "src/wasp/runtime.h"

namespace {

TEST(Http, ParsesRequestLineAndHeaders) {
  auto req = vnet::ParseRequest(
      "GET /index.html HTTP/1.1\r\nHost: tinker\r\nX-Thing:  padded \r\n\r\n");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->target, "/index.html");
  EXPECT_EQ(req->version, "HTTP/1.1");
  EXPECT_EQ(req->Header("host"), "tinker");
  EXPECT_EQ(req->Header("X-THING"), "padded");
  EXPECT_EQ(req->Header("absent"), "");
}

TEST(Http, ParsesBodyWithContentLength) {
  auto req = vnet::ParseRequest(
      "POST /fn HTTP/1.0\r\nContent-Length: 5\r\n\r\nhello-extra-ignored");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->body, "hello");
}

TEST(Http, IncompleteRequestsAskForMore) {
  auto r1 = vnet::ParseRequest("GET / HTTP/1.0\r\nHost: x\r\n");
  EXPECT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), vbase::Code::kFailedPrecondition);
  auto r2 = vnet::ParseRequest("POST / HTTP/1.0\r\nContent-Length: 10\r\n\r\nabc");
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), vbase::Code::kFailedPrecondition);
}

TEST(Http, MalformedRequestsAreRejected) {
  for (const char* bad : {
           "GARBAGE\r\n\r\n",
           "GET /\r\n\r\n",                       // missing version
           "GET / FTP/1.0\r\n\r\n",               // bad version
           "GET / HTTP/1.0\r\nNoColonHere\r\n\r\n",
           "POST / HTTP/1.0\r\nContent-Length: 1x\r\n\r\nz",
       }) {
    auto r = vnet::ParseRequest(bad);
    EXPECT_FALSE(r.ok()) << "accepted malformed request: " << bad;
    EXPECT_EQ(r.status().code(), vbase::Code::kInvalidArgument) << bad;
  }
}

TEST(Http, FuzzedInputNeverCrashesParser) {
  vbase::Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    std::string junk;
    const int len = static_cast<int>(rng.Below(200));
    for (int j = 0; j < len; ++j) {
      junk += static_cast<char>(rng.Below(256));
    }
    (void)vnet::ParseRequest(junk);  // must not crash or hang
  }
  SUCCEED();
}

TEST(Http, BuildResponseRoundTrips) {
  const std::string resp = vnet::BuildResponse(200, "body", {{"X-A", "1"}});
  EXPECT_NE(resp.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Content-Length: 4\r\n"), std::string::npos);
  EXPECT_NE(resp.find("X-A: 1\r\n"), std::string::npos);
  EXPECT_EQ(resp.substr(resp.size() - 4), "body");
  EXPECT_EQ(std::string(vnet::ReasonPhrase(404)), "Not Found");
}

// --- Static server in all modes -----------------------------------------------

class ServerModeTest : public ::testing::TestWithParam<vnet::ServeMode> {};

TEST_P(ServerModeTest, ServesFileAnd404) {
  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/f.txt", std::string(100, 'z'));
  vnet::StaticHttpServer server(&runtime, &files);

  {
    wasp::ByteChannel channel;
    channel.host().WriteString("GET /f.txt HTTP/1.0\r\n\r\n");
    auto stats = server.HandleConnection(channel, GetParam());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->status, 200);
    auto resp = channel.host().Drain();
    const std::string text(resp.begin(), resp.end());
    EXPECT_NE(text.find("200 OK"), std::string::npos);
    EXPECT_NE(text.find("Content-Length: 100"), std::string::npos);
    EXPECT_NE(text.find(std::string(100, 'z')), std::string::npos);
  }
  {
    wasp::ByteChannel channel;
    channel.host().WriteString("GET /nope HTTP/1.0\r\n\r\n");
    auto stats = server.HandleConnection(channel, GetParam());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->status, 404);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ServerModeTest,
                         ::testing::Values(vnet::ServeMode::kNative,
                                           vnet::ServeMode::kVirtine,
                                           vnet::ServeMode::kVirtineSnapshot),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case vnet::ServeMode::kNative: return "native";
                             case vnet::ServeMode::kVirtine: return "virtine";
                             default: return "virtine_snapshot";
                           }
                         });

TEST(Server, VirtineHandlerUsesExactlySevenHypercalls) {
  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/x", std::string("content"));
  vnet::StaticHttpServer server(&runtime, &files);
  wasp::ByteChannel channel;
  channel.host().WriteString("GET /x HTTP/1.0\r\n\r\n");
  auto stats = server.HandleConnection(channel, vnet::ServeMode::kVirtine);
  ASSERT_TRUE(stats.ok());
  // Section 6.3: recv, stat, open, read, send, close, exit.
  EXPECT_EQ(stats->io_exits, 7u);
}

TEST(Loadgen, ClosedLoopCollectsAllLatencies) {
  std::atomic<int> calls{0};
  auto result = vnet::RunClosedLoop(4, 25, [&]() -> double {
    calls.fetch_add(1);
    return 10.0;
  });
  EXPECT_EQ(calls.load(), 100);
  EXPECT_EQ(result.latencies_us.size(), 100u);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_NEAR(result.harmonic_mean_rps, 1e5, 1.0);
}

TEST(Loadgen, FailuresAreCounted) {
  auto result = vnet::RunClosedLoop(2, 10, []() -> double { return -1.0; });
  EXPECT_EQ(result.failures, 20u);
  EXPECT_TRUE(result.latencies_us.empty());
}

// --- Serverless (Vespid + simulator) --------------------------------------------

TEST(Vespid, RegistersAndInvokesBase64) {
  wasp::Runtime runtime;
  vnet::Vespid platform(&runtime);
  ASSERT_TRUE(platform.Register("b64", vjs::Base64ScriptSource()).ok());
  const std::vector<uint8_t> payload = {'a', 'b', 'c', 'd'};
  auto first = platform.Invoke("b64", payload);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->cold);
  EXPECT_EQ(std::string(first->output.begin(), first->output.end()),
            vjs::HostBase64(payload));
  auto second = platform.Invoke("b64", payload);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->cold);
  EXPECT_LT(second->modeled_cycles, first->modeled_cycles);
}

TEST(Vespid, UnknownFunctionIsAnError) {
  wasp::Runtime runtime;
  vnet::Vespid platform(&runtime);
  EXPECT_FALSE(platform.Invoke("missing", {}).ok());
}

TEST(Vespid, BadScriptFailsRegistration) {
  wasp::Runtime runtime;
  vnet::Vespid platform(&runtime);
  EXPECT_FALSE(platform.Register("bad", "var = while").ok());
}

TEST(BurstSim, ColdStartsSpikeOnBurstsForSlowColdExecutors) {
  const std::vector<vnet::LoadPhase> pattern = {{5, 2}, {100, 2}, {5, 2}};
  vnet::ExecutorModel slow{"containers", 20000.0, 400000.0, 16, 1.0};
  vnet::ExecutorModel fast{"virtines", 2000.0, 200.0, 64, 600.0};
  const auto slow_result = vnet::SimulateBurstyLoad(pattern, slow);
  const auto fast_result = vnet::SimulateBurstyLoad(pattern, fast);
  EXPECT_EQ(slow_result.total_requests, fast_result.total_requests);
  EXPECT_GT(slow_result.total_cold_starts, 1u);
  EXPECT_GT(slow_result.latency_us.p99, 10.0 * fast_result.latency_us.p99);
}

TEST(BurstSim, DeterministicForSeed) {
  const std::vector<vnet::LoadPhase> pattern = {{10, 1}, {50, 1}};
  vnet::ExecutorModel model{"m", 1000.0, 10000.0, 8, 2.0};
  const auto a = vnet::SimulateBurstyLoad(pattern, model, 5);
  const auto b = vnet::SimulateBurstyLoad(pattern, model, 5);
  EXPECT_EQ(a.latency_us.mean, b.latency_us.mean);
  EXPECT_EQ(a.total_cold_starts, b.total_cold_starts);
}

// --- Echo guest (Figure 4 workload) -----------------------------------------------

TEST(Echo, GuestEchoesAndReportsMilestones) {
  auto image = vcc::CompileProgram(vrt::VlibcSource() + vnet::EchoHandlerSource(), "main",
                                   vrt::Env::kProt32);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  wasp::Runtime runtime;
  wasp::ByteChannel channel;
  channel.host().WriteString("ping!");
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.word_bytes = 4;
  spec.policy = wasp::kPolicyStream | wasp::MaskOf(wasp::kHcReturnData);
  spec.channel = &channel.guest();
  auto outcome = runtime.Invoke(spec);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  auto echoed = channel.host().Drain();
  EXPECT_EQ(std::string(echoed.begin(), echoed.end()), "ping!");
  ASSERT_EQ(outcome.output.size(), 12u);
  uint32_t mb[3];
  memcpy(mb, outcome.output.data(), sizeof(mb));
  EXPECT_LT(mb[0], mb[1]);  // entry < after-recv
  EXPECT_LT(mb[1], mb[2]);  // after-recv < after-send
}

}  // namespace
