// vnet tests: HTTP parser (including property-style malformed-input sweeps),
// the static server in all three modes, the echo guest, the serverless
// platform, and the bursty-load simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/base/rng.h"
#include "src/vjs/vjs.h"
#include "src/vnet/http.h"
#include "src/vnet/loadgen.h"
#include "src/vnet/server.h"
#include "src/vcc/vcc.h"
#include "src/vnet/serverless.h"
#include "src/vrt/vlibc.h"
#include "src/wasp/runtime.h"

namespace {

TEST(Http, ParsesRequestLineAndHeaders) {
  auto req = vnet::ParseRequest(
      "GET /index.html HTTP/1.1\r\nHost: tinker\r\nX-Thing:  padded \r\n\r\n");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->target, "/index.html");
  EXPECT_EQ(req->version, "HTTP/1.1");
  EXPECT_EQ(req->Header("host"), "tinker");
  EXPECT_EQ(req->Header("X-THING"), "padded");
  EXPECT_EQ(req->Header("absent"), "");
}

TEST(Http, ParsesBodyWithContentLength) {
  auto req = vnet::ParseRequest(
      "POST /fn HTTP/1.0\r\nContent-Length: 5\r\n\r\nhello-extra-ignored");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->body, "hello");
}

TEST(Http, IncompleteRequestsAskForMore) {
  auto r1 = vnet::ParseRequest("GET / HTTP/1.0\r\nHost: x\r\n");
  EXPECT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), vbase::Code::kFailedPrecondition);
  auto r2 = vnet::ParseRequest("POST / HTTP/1.0\r\nContent-Length: 10\r\n\r\nabc");
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), vbase::Code::kFailedPrecondition);
}

TEST(Http, MalformedRequestsAreRejected) {
  for (const char* bad : {
           "GARBAGE\r\n\r\n",
           "GET /\r\n\r\n",                       // missing version
           "GET / FTP/1.0\r\n\r\n",               // bad version
           "GET / HTTP/1.0\r\nNoColonHere\r\n\r\n",
           "POST / HTTP/1.0\r\nContent-Length: 1x\r\n\r\nz",
       }) {
    auto r = vnet::ParseRequest(bad);
    EXPECT_FALSE(r.ok()) << "accepted malformed request: " << bad;
    EXPECT_EQ(r.status().code(), vbase::Code::kInvalidArgument) << bad;
  }
}

TEST(Http, FuzzedInputNeverCrashesParser) {
  vbase::Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    std::string junk;
    const int len = static_cast<int>(rng.Below(200));
    for (int j = 0; j < len; ++j) {
      junk += static_cast<char>(rng.Below(256));
    }
    (void)vnet::ParseRequest(junk);  // must not crash or hang
  }
  SUCCEED();
}

TEST(Http, BuildResponseRoundTrips) {
  const std::string resp = vnet::BuildResponse(200, "body", {{"X-A", "1"}});
  EXPECT_NE(resp.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Content-Length: 4\r\n"), std::string::npos);
  EXPECT_NE(resp.find("X-A: 1\r\n"), std::string::npos);
  EXPECT_EQ(resp.substr(resp.size() - 4), "body");
  EXPECT_EQ(std::string(vnet::ReasonPhrase(404)), "Not Found");
}

// Regression: a reason phrase from an untrusted detail string (a fault
// message) must not be able to split the status line.  An embedded CR/LF
// would otherwise terminate the line and smuggle the remainder in as a
// response header.
TEST(Http, BuildResponseSanitizesReasonPhrase) {
  const std::string resp = vnet::BuildResponseWithReason(
      500, "bad\r\nX-Injected: 1\r\n", "", {});
  EXPECT_EQ(resp.rfind("HTTP/1.1 500 badX-Injected: 1\r\n", 0), 0u) << resp;
  EXPECT_EQ(resp.find("\r\nX-Injected"), std::string::npos) << resp;
  // Other control bytes are stripped too; printable text survives.
  const std::string ctl = vnet::BuildResponseWithReason(500, "a\x01\x7f\tb", "", {});
  EXPECT_EQ(ctl.rfind("HTTP/1.1 500 ab\r\n", 0), 0u) << ctl;
}

// --- Keep-alive framing: pipelined splits and smuggling rejection -------------

TEST(Http, FrameRequestSplitsPipelinedStream) {
  const std::string stream =
      "POST /a HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbodyGET /b HTTP/1.1\r\nHost: "
      "x\r\n\r\n";
  auto first = vnet::FrameRequest(stream);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->request.target, "/a");
  EXPECT_EQ(first->request.body, "body");
  auto second = vnet::FrameRequest(stream.substr(first->consumed));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->request.target, "/b");
  EXPECT_EQ(second->consumed, stream.size() - first->consumed);
}

TEST(Http, RequestBytesNeededCountsHeadPlusBody) {
  const std::string head = "POST /a HTTP/1.0\r\nContent-Length: 10\r\n\r\n";
  auto need = vnet::RequestBytesNeeded(head + "12345");
  ASSERT_TRUE(need.ok());
  EXPECT_EQ(*need, head.size() + 10);
  // Incomplete head: cannot know yet.
  EXPECT_EQ(vnet::RequestBytesNeeded("GET / HT").status().code(),
            vbase::Code::kFailedPrecondition);
}

TEST(Http, SmugglingShapedRequestsAreRejected) {
  for (const char* bad : {
           // Conflicting Content-Length values: two framings of one stream.
           "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nbody!",
           // Even equal duplicates are rejected rather than collapsed.
           "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody",
           // Transfer-Encoding is unimplemented: accepting it while framing
           // by Content-Length is the TE.CL desync.
           "POST / HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
           // A bare LF line ending inside the head.
           "GET / HTTP/1.1\nHost: x\r\n\r\n",
           // Obsolete header folding.
           "GET / HTTP/1.1\r\nHost: x\r\n folded\r\n\r\n",
           // Signed/overflowing/non-canonical Content-Length.
           "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: +4\r\n\r\nbody",
           "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: 99999999999999999999\r\n\r\n",
       }) {
    auto r = vnet::FrameRequest(bad);
    ASSERT_FALSE(r.ok()) << "accepted smuggling-shaped request: " << bad;
    EXPECT_EQ(r.status().code(), vbase::Code::kInvalidArgument) << bad;
  }
  // A bare CR inside the head (not part of CRLF) is likewise rejected; built
  // with string concatenation so the embedded NUL-free CR is explicit.
  std::string bare_cr = "GET / HTTP/1.1\rHost: x\r\n\r\n";
  EXPECT_EQ(vnet::FrameRequest(bare_cr).status().code(), vbase::Code::kInvalidArgument);
}

TEST(Http, WantKeepAliveFollowsVersionAndConnectionHeader) {
  const auto parse = [](const std::string& text) {
    auto req = vnet::ParseRequest(text);
    EXPECT_TRUE(req.ok()) << req.status().ToString();
    return *req;
  };
  // HTTP/1.1 defaults to persistent; explicit close wins.
  EXPECT_TRUE(vnet::WantKeepAlive(parse("GET / HTTP/1.1\r\nHost: x\r\n\r\n")));
  EXPECT_FALSE(
      vnet::WantKeepAlive(parse("GET / HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")));
  EXPECT_FALSE(vnet::WantKeepAlive(
      parse("GET / HTTP/1.1\r\nHost: x\r\nConnection: keep-alive, CLOSE\r\n\r\n")));
  // HTTP/1.0 defaults to close; explicit keep-alive opts in.
  EXPECT_FALSE(vnet::WantKeepAlive(parse("GET / HTTP/1.0\r\n\r\n")));
  EXPECT_TRUE(
      vnet::WantKeepAlive(parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")));
}

TEST(Http, FrameResponseHeadReportsLengthAndStatus) {
  const std::string resp = "HTTP/1.1 200 OK\r\nContent-Length: 5\r\nX-A: 1\r\n\r\nhello";
  auto head = vnet::FrameResponseHead(resp);
  ASSERT_TRUE(head.ok()) << head.status().ToString();
  EXPECT_EQ(head->status, 200);
  EXPECT_EQ(head->content_length, 5u);
  EXPECT_EQ(head->head_bytes + head->content_length, resp.size());
  // Incomplete head asks for more; a malformed status line is rejected.
  EXPECT_EQ(vnet::FrameResponseHead("HTTP/1.1 200 OK\r\n").status().code(),
            vbase::Code::kFailedPrecondition);
  EXPECT_EQ(vnet::FrameResponseHead("HTTP/1.1 abc\r\n\r\n").status().code(),
            vbase::Code::kInvalidArgument);
}

// --- Static server in all modes -----------------------------------------------

class ServerModeTest : public ::testing::TestWithParam<vnet::ServeMode> {};

TEST_P(ServerModeTest, ServesFileAnd404) {
  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/f.txt", std::string(100, 'z'));
  vnet::StaticHttpServer server(&runtime, &files);

  {
    wasp::ByteChannel channel;
    channel.host().WriteString("GET /f.txt HTTP/1.0\r\n\r\n");
    auto stats = server.HandleConnection(channel, GetParam());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->status, 200);
    auto resp = channel.host().Drain();
    const std::string text(resp.begin(), resp.end());
    EXPECT_NE(text.find("200 OK"), std::string::npos);
    EXPECT_NE(text.find("Content-Length: 100"), std::string::npos);
    EXPECT_NE(text.find(std::string(100, 'z')), std::string::npos);
  }
  {
    wasp::ByteChannel channel;
    channel.host().WriteString("GET /nope HTTP/1.0\r\n\r\n");
    auto stats = server.HandleConnection(channel, GetParam());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->status, 404);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ServerModeTest,
                         ::testing::Values(vnet::ServeMode::kNative,
                                           vnet::ServeMode::kVirtine,
                                           vnet::ServeMode::kVirtineSnapshot),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case vnet::ServeMode::kNative: return "native";
                             case vnet::ServeMode::kVirtine: return "virtine";
                             default: return "virtine_snapshot";
                           }
                         });

// --- Robustness: malformed connections must never crash or hang ---------------
// Every case holds in all three modes: the native handler validates via the
// host parser, the virtine handler validates inside the guest (complete
// header block, Host on HTTP/1.1) before touching any file.

TEST_P(ServerModeTest, TruncatedRequestLineGets400) {
  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/f.txt", std::string(100, 'z'));
  vnet::StaticHttpServer server(&runtime, &files);
  wasp::ByteChannel channel;
  channel.host().WriteString("GET /f.t");  // no CRLF, no header block
  // The request loop (correctly) waits for more bytes on an incomplete head;
  // closing the write end is the client giving up mid-request.
  channel.host().CloseWrite();
  auto stats = server.HandleConnection(channel, GetParam());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->status, 400);
  const auto resp = channel.host().Drain();
  EXPECT_EQ(std::string(resp.begin(), resp.end()).rfind("HTTP/1.1 400", 0), 0u);
}

TEST_P(ServerModeTest, OversizedHeaderGets413) {
  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/f.txt", std::string(100, 'z'));
  vnet::StaticHttpServer server(&runtime, &files);
  wasp::ByteChannel channel;
  // The header block exceeds the 2 KB head window, so its terminator is
  // never seen inside the cap: every mode sheds it with 413, not a
  // half-parse (and not an unbounded buffer).
  channel.host().WriteString("GET /f.txt HTTP/1.0\r\nX-Big: " + std::string(4000, 'a') +
                             "\r\n\r\n");
  auto stats = server.HandleConnection(channel, GetParam());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->status, 413);
}

TEST_P(ServerModeTest, MissingHostOnHttp11Gets400) {
  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/f.txt", std::string(100, 'z'));
  vnet::StaticHttpServer server(&runtime, &files);
  {
    wasp::ByteChannel channel;
    channel.host().WriteString("GET /f.txt HTTP/1.1\r\n\r\n");
    auto stats = server.HandleConnection(channel, GetParam());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->status, 400);
  }
  {
    // With a Host header the same HTTP/1.1 request serves normally.
    wasp::ByteChannel channel;
    channel.host().WriteString("GET /f.txt HTTP/1.1\r\nHost: tinker\r\n\r\n");
    auto stats = server.HandleConnection(channel, GetParam());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->status, 200);
  }
  // Parity regressions: the guest scanner and the host parser must answer
  // the same bytes with the same status in every mode.
  for (const char* present : {
           "GET /f.txt HTTP/1.1\r\nHost:\r\n\r\n",          // empty value counts as present
           "GET /f.txt HTTP/1.1\r\nHost : tinker\r\n\r\n",  // obsolete space before colon
       }) {
    wasp::ByteChannel channel;
    channel.host().WriteString(present);
    auto stats = server.HandleConnection(channel, GetParam());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->status, 200) << present;
  }
  {
    // "HTTP/1.1" inside the path must not make an HTTP/1.0 request 1.1:
    // the version check anchors to the end of the request line.
    wasp::ByteChannel channel;
    channel.host().WriteString("GET /HTTP/1.1 HTTP/1.0\r\n\r\n");
    auto stats = server.HandleConnection(channel, GetParam());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->status, 404);  // no such file — not a Host-less 400
  }
  {
    // A Host token in the *body* must not satisfy the header requirement:
    // the guest scan is bounded to the header block, like the host parser.
    wasp::ByteChannel channel;
    channel.host().WriteString("GET /f.txt HTTP/1.1\r\n\r\nHost: smuggled");
    auto stats = server.HandleConnection(channel, GetParam());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->status, 400);
  }
  // Trailing whitespace after the version tokenizes away on both sides:
  // still HTTP/1.1, still Host-less, still 400 in every mode.
  for (const char* trailing : {"GET /f.txt HTTP/1.1 \r\n\r\n", "GET /f.txt HTTP/1.1\t\r\n\r\n"}) {
    wasp::ByteChannel channel;
    channel.host().WriteString(trailing);
    auto stats = server.HandleConnection(channel, GetParam());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->status, 400) << trailing;
  }
}

TEST_P(ServerModeTest, StructurallyMalformedHeadGets400InEveryMode) {
  // Structural rules the guest validator shares with the host parser: an
  // HTTP/ version token on the request line and a colon in every header
  // line.  All modes must answer these with the same 400.
  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/f.txt", std::string(100, 'z'));
  vnet::StaticHttpServer server(&runtime, &files);
  for (const char* bad : {
           "GET /f.txt XTTP/1.0\r\n\r\n",              // not an HTTP/ version
           "GARBAGE\r\n\r\n",                          // no version token at all
           "GET /f.txt HTTP/1.0\r\nNoColonHere\r\n\r\n",  // header without colon
           "GET /a b HTTP/1.1\r\nHost: x\r\n\r\n",  // 4 tokens: version is 'b'
       }) {
    wasp::ByteChannel channel;
    channel.host().WriteString(bad);
    auto stats = server.HandleConnection(channel, GetParam());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->status, 400) << bad;
  }
}

TEST_P(ServerModeTest, PipelinedGarbageAfterRequestIsServedCleanly) {
  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/f.txt", std::string(100, 'z'));
  vnet::StaticHttpServer server(&runtime, &files);
  wasp::ByteChannel channel;
  // A valid request followed by pipelined garbage: the one-request-per-
  // connection server serves the valid head and ignores the tail — exactly
  // one well-formed response, no crash, no hang.
  channel.host().WriteString(std::string("GET /f.txt HTTP/1.0\r\n\r\n") + "\x01\x02\x7f" +
                             "GARBAGE\r\nmore\r\n\r\n");
  auto stats = server.HandleConnection(channel, GetParam());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->status, 200);
  const auto resp = channel.host().Drain();
  const std::string text(resp.begin(), resp.end());
  EXPECT_EQ(text.rfind("HTTP/1.1 200", 0), 0u);
  EXPECT_NE(text.find(std::string(100, 'z')), std::string::npos);
}

// --- Keep-alive connections: one acquired shell serves many requests ----------

TEST_P(ServerModeTest, KeepAliveServesManyRequestsOnOneConnection) {
  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/f.txt", std::string(64, 'z'));
  vnet::StaticHttpServer server(&runtime, &files);
  vnet::ConnectionOptions conn;
  conn.keep_alive = true;
  wasp::ByteChannel channel;
  for (int i = 0; i < 3; ++i) {
    channel.host().WriteString("GET /f.txt HTTP/1.1\r\nHost: x\r\n\r\n");
  }
  channel.host().CloseWrite();  // client hangs up after the third request
  auto stats = server.HandleConnection(channel, GetParam(), conn);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->requests, 3u);
  EXPECT_EQ(stats->r2xx, 3u);
  const auto resp = channel.host().Drain();
  const std::string text(resp.begin(), resp.end());
  size_t count = 0;
  for (size_t pos = text.find("HTTP/1.1 200"); pos != std::string::npos;
       pos = text.find("HTTP/1.1 200", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST_P(ServerModeTest, KeepAliveHonorsConnectionClose) {
  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/f.txt", std::string(64, 'z'));
  vnet::StaticHttpServer server(&runtime, &files);
  vnet::ConnectionOptions conn;
  conn.keep_alive = true;
  wasp::ByteChannel channel;
  // Second request says close: the third pipelined request must not be served.
  channel.host().WriteString("GET /f.txt HTTP/1.1\r\nHost: x\r\n\r\n");
  channel.host().WriteString(
      "GET /f.txt HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  channel.host().WriteString("GET /f.txt HTTP/1.1\r\nHost: x\r\n\r\n");
  auto stats = server.HandleConnection(channel, GetParam(), conn);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->requests, 2u);
  EXPECT_EQ(stats->r2xx, 2u);
}

TEST_P(ServerModeTest, KeepAliveStreamsContentLengthBodies) {
  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/f.txt", std::string(64, 'z'));
  vnet::StaticHttpServer server(&runtime, &files);
  vnet::ConnectionOptions conn;
  conn.keep_alive = true;
  wasp::ByteChannel channel;
  // A body larger than any single read window, pipelined ahead of a second
  // request: the server must stream-drain exactly Content-Length bytes and
  // then frame the next request at the right boundary.
  const std::string body(5000, 'b');
  channel.host().WriteString("POST /f.txt HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                             std::to_string(body.size()) + "\r\n\r\n" + body);
  channel.host().WriteString("GET /f.txt HTTP/1.0\r\n\r\n");  // 1.0: closes after
  auto stats = server.HandleConnection(channel, GetParam(), conn);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->requests, 2u);
  EXPECT_EQ(stats->r2xx, 2u);
}

TEST_P(ServerModeTest, KeepAliveHttp10DefaultsToClose) {
  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/f.txt", std::string(64, 'z'));
  vnet::StaticHttpServer server(&runtime, &files);
  vnet::ConnectionOptions conn;
  conn.keep_alive = true;
  wasp::ByteChannel channel;
  channel.host().WriteString("GET /f.txt HTTP/1.0\r\n\r\n");
  channel.host().WriteString("GET /f.txt HTTP/1.0\r\n\r\n");  // never reached
  auto stats = server.HandleConnection(channel, GetParam(), conn);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->requests, 1u);
}

TEST(Server, KeepAliveNativeEnforcesMaxRequests) {
  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/f.txt", std::string(8, 'z'));
  vnet::StaticHttpServer server(&runtime, &files);
  vnet::ConnectionOptions conn;
  conn.keep_alive = true;
  conn.max_requests = 2;
  wasp::ByteChannel channel;
  for (int i = 0; i < 4; ++i) {
    channel.host().WriteString("GET /f.txt HTTP/1.1\r\nHost: x\r\n\r\n");
  }
  auto stats = server.HandleConnection(channel, vnet::ServeMode::kNative, conn);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->requests, 2u);
}

TEST(Server, VirtineHandlerUsesExactlySevenHypercalls) {
  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/x", std::string("content"));
  vnet::StaticHttpServer server(&runtime, &files);
  wasp::ByteChannel channel;
  channel.host().WriteString("GET /x HTTP/1.0\r\n\r\n");
  auto stats = server.HandleConnection(channel, vnet::ServeMode::kVirtine);
  ASSERT_TRUE(stats.ok());
  // Section 6.3: recv, stat, open, read, send, close, exit.
  EXPECT_EQ(stats->io_exits, 7u);
}

TEST(Loadgen, ClosedLoopCollectsAllLatencies) {
  std::atomic<int> calls{0};
  auto result = vnet::RunClosedLoop(4, 25, [&]() -> double {
    calls.fetch_add(1);
    return 10.0;
  });
  EXPECT_EQ(calls.load(), 100);
  EXPECT_EQ(result.latencies_us.size(), 100u);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_NEAR(result.harmonic_mean_rps, 1e5, 1.0);
}

TEST(Loadgen, FailuresAreCounted) {
  auto result = vnet::RunClosedLoop(2, 10, []() -> double { return -1.0; });
  EXPECT_EQ(result.failures, 20u);
  EXPECT_TRUE(result.latencies_us.empty());
}

// --- Serverless (Vespid + simulator) --------------------------------------------

TEST(Vespid, RegistersAndInvokesBase64) {
  wasp::Runtime runtime;
  vnet::Vespid platform(&runtime);
  ASSERT_TRUE(platform.Register("b64", vjs::Base64ScriptSource()).ok());
  const std::vector<uint8_t> payload = {'a', 'b', 'c', 'd'};
  auto first = platform.Invoke("b64", payload);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->cold);
  EXPECT_EQ(std::string(first->output.begin(), first->output.end()),
            vjs::HostBase64(payload));
  auto second = platform.Invoke("b64", payload);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->cold);
  EXPECT_LT(second->modeled_cycles, first->modeled_cycles);
}

TEST(Vespid, UnknownFunctionIsAnError) {
  wasp::Runtime runtime;
  vnet::Vespid platform(&runtime);
  EXPECT_FALSE(platform.Invoke("missing", {}).ok());
}

TEST(Vespid, BadScriptFailsRegistration) {
  wasp::Runtime runtime;
  vnet::Vespid platform(&runtime);
  EXPECT_FALSE(platform.Register("bad", "var = while").ok());
}

TEST(BurstSim, ColdStartsSpikeOnBurstsForSlowColdExecutors) {
  const std::vector<vnet::LoadPhase> pattern = {{5, 2}, {100, 2}, {5, 2}};
  vnet::ExecutorModel slow{"containers", 20000.0, 400000.0, 16, 1.0};
  vnet::ExecutorModel fast{"virtines", 2000.0, 200.0, 64, 600.0};
  const auto slow_result = vnet::SimulateBurstyLoad(pattern, slow);
  const auto fast_result = vnet::SimulateBurstyLoad(pattern, fast);
  EXPECT_EQ(slow_result.total_requests, fast_result.total_requests);
  EXPECT_GT(slow_result.total_cold_starts, 1u);
  EXPECT_GT(slow_result.latency_us.p99, 10.0 * fast_result.latency_us.p99);
}

TEST(BurstSim, DeterministicForSeed) {
  const std::vector<vnet::LoadPhase> pattern = {{10, 1}, {50, 1}};
  vnet::ExecutorModel model{"m", 1000.0, 10000.0, 8, 2.0};
  const auto a = vnet::SimulateBurstyLoad(pattern, model, 5);
  const auto b = vnet::SimulateBurstyLoad(pattern, model, 5);
  EXPECT_EQ(a.latency_us.mean, b.latency_us.mean);
  EXPECT_EQ(a.total_cold_starts, b.total_cold_starts);
}

TEST(Loadgen, ArrivalTraceIsDeterministicAndPhaseShaped) {
  const std::vector<vnet::LoadPhase> phases = {{10, 1}, {50, 1}};
  const auto a = vnet::GenerateArrivalTrace(phases, 5);
  const auto b = vnet::GenerateArrivalTrace(phases, 5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 60u);  // 10 + 50 arrivals
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  const auto c = vnet::GenerateArrivalTrace(phases, 6);
  EXPECT_NE(a, c);  // jitter depends on the seed
}

TEST(Loadgen, VirtualClosedLoopScalesWithLanes) {
  // 8 clients, constant 100 us service: 1 lane queues 8 deep, 8 lanes don't.
  const std::vector<double> services(64, 100.0);
  const auto one = vnet::ClosedLoopVirtualTime(8, 1, services);
  const auto eight = vnet::ClosedLoopVirtualTime(8, 8, services);
  EXPECT_EQ(one.latencies_us.size(), services.size());
  EXPECT_EQ(eight.latencies_us.size(), services.size());
  EXPECT_NEAR(eight.latency.mean, 100.0, 1.0);
  // Steady state queues 8 deep (800 us); the first round ramps 100..800, so
  // the mean sits just under the steady-state plateau.
  EXPECT_NEAR(one.latency.p99, 800.0, 1.0);
  EXPECT_GT(one.latency.mean, 700.0);
  EXPECT_LE(one.latency.mean, 800.0);
  EXPECT_GT(eight.harmonic_mean_rps, 7.0 * one.harmonic_mean_rps);
  // Negative services count as failures and take no lane time.
  const auto failed = vnet::ClosedLoopVirtualTime(2, 2, {100.0, -1.0, 100.0});
  EXPECT_EQ(failed.failures, 1u);
  EXPECT_EQ(failed.latencies_us.size(), 2u);
}

// --- Differential: executor replay vs the analytic simulator -----------------

// On a small trace with one serving lane, ReplayBurstyLoad (real executor
// invocations) and SimulateBurstyLoad (analytic model calibrated to the
// replay's own measured service times) must agree exactly on the request
// count and the cold-start count, and bucket for bucket on completions.
//
// Tolerance note: the two sides price requests in different currencies —
// the replay uses each real invocation's measured modeled cycles (which
// vary by a few percent across requests), the model a single constant warm
// cost — so a request completing within ~a service time of a bucket
// boundary can land one bucket apart.  With services (~2-5 ms) four orders
// of magnitude below the 1 s buckets this affects at most edge requests;
// per-bucket completions get a +/-2 band while the totals must be exact.
TEST(BurstReplay, MatchesCalibratedSimulatorOnSmallTrace) {
  wasp::Runtime runtime;
  vnet::Vespid platform(&runtime);
  ASSERT_TRUE(platform.Register("b64", vjs::Base64ScriptSource()).ok());
  const std::vector<uint8_t> payload = {'d', 'i', 'f', 'f'};
  const std::vector<vnet::LoadPhase> trace = {{8, 1}, {25, 1}};
  constexpr uint64_t kSeed = 7;

  vnet::ReplayOptions options;
  options.concurrency = 1;  // one lane <=> one model instance
  options.seed = kSeed;
  auto replay = platform.ReplayBurstyLoad("b64", trace, payload, options);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_GT(replay->measured_warm_us, 0.0);

  // Calibrate the model from the replay's own measurements; a single
  // instance that never idles out spawns exactly once, like the replay's
  // single cold first touch.
  vnet::ExecutorModel model{"calibrated", replay->measured_warm_us,
                            std::max(0.0, replay->measured_cold_us - replay->measured_warm_us),
                            1, 600.0};
  const vnet::SimResult sim = vnet::SimulateBurstyLoad(trace, model, kSeed);

  EXPECT_EQ(replay->sim.total_requests, sim.total_requests);
  EXPECT_EQ(replay->sim.total_requests, 33u);  // 8 + 25 arrivals, shared trace
  EXPECT_EQ(replay->sim.total_cold_starts, sim.total_cold_starts);
  EXPECT_EQ(replay->sim.total_cold_starts, 1u);

  // Bucket completion totals: exact in aggregate, +/-2 per bucket.
  std::map<int64_t, double> replay_completed;
  std::map<int64_t, double> sim_completed;
  double replay_total = 0;
  double sim_total = 0;
  for (const auto& point : replay->sim.timeline) {
    replay_completed[static_cast<int64_t>(point.t_s)] = point.completed_rps;
    replay_total += point.completed_rps;
  }
  for (const auto& point : sim.timeline) {
    sim_completed[static_cast<int64_t>(point.t_s)] = point.completed_rps;
    sim_total += point.completed_rps;
  }
  EXPECT_EQ(replay_total, sim_total);
  EXPECT_EQ(replay_total, static_cast<double>(sim.total_requests));
  for (const auto& [bucket, completed] : sim_completed) {
    const auto it = replay_completed.find(bucket);
    const double replayed = it != replay_completed.end() ? it->second : 0;
    EXPECT_NEAR(replayed, completed, 2.0) << "bucket " << bucket;
  }
}

// --- Echo guest (Figure 4 workload) -----------------------------------------------

TEST(Echo, GuestEchoesAndReportsMilestones) {
  auto image = vcc::CompileProgram(vrt::VlibcSource() + vnet::EchoHandlerSource(), "main",
                                   vrt::Env::kProt32);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  wasp::Runtime runtime;
  wasp::ByteChannel channel;
  channel.host().WriteString("ping!");
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.word_bytes = 4;
  spec.policy = wasp::kPolicyStream | wasp::MaskOf(wasp::kHcReturnData);
  spec.channel = &channel.guest();
  auto outcome = runtime.Invoke(spec);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  auto echoed = channel.host().Drain();
  EXPECT_EQ(std::string(echoed.begin(), echoed.end()), "ping!");
  ASSERT_EQ(outcome.output.size(), 12u);
  uint32_t mb[3];
  memcpy(mb, outcome.output.data(), sizeof(mb));
  EXPECT_LT(mb[0], mb[1]);  // entry < after-recv
  EXPECT_LT(mb[1], mb[2]);  // after-recv < after-send
}

}  // namespace
