// Case-study substrate tests: AES-128 against FIPS-197 / NIST vectors (host
// and in-virtine), and the microjs engine (compiler + in-virtine execution)
// against the host base64 reference, including property-style sweeps.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/vaes/aes.h"
#include "src/vcc/vcc.h"
#include "src/vjs/vjs.h"
#include "src/vrt/vlibc.h"
#include "src/wasp/runtime.h"

namespace {

// FIPS-197 Appendix B key/plaintext.
const vaes::Key kFipsKey = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                            0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

TEST(AesHost, Fips197AppendixBVector) {
  const vaes::Block plaintext = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                                 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const vaes::Block expected = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                                0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
  EXPECT_EQ(vaes::EncryptBlock(vaes::ExpandKey(kFipsKey), plaintext), expected);
}

TEST(AesHost, NistSp800_38aCbcVectors) {
  // NIST SP 800-38A F.2.1 CBC-AES128.Encrypt, first two blocks.
  const vaes::Key key = kFipsKey;
  const vaes::Block iv = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                          0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  const std::vector<uint8_t> plaintext = {
      0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e,
      0x11, 0x73, 0x93, 0x17, 0x2a, 0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03,
      0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf, 0x8e, 0x51};
  const std::vector<uint8_t> expected = {
      0x76, 0x49, 0xab, 0xac, 0x81, 0x19, 0xb2, 0x46, 0xce, 0xe9, 0x8e,
      0x9b, 0x12, 0xe9, 0x19, 0x7d, 0x50, 0x86, 0xcb, 0x9b, 0x50, 0x72,
      0x19, 0xee, 0x95, 0xdb, 0x11, 0x3a, 0x91, 0x76, 0x78, 0xb2};
  EXPECT_EQ(vaes::EncryptCbc(key, iv, plaintext), expected);
}

TEST(AesHost, Pkcs7PadIsAlwaysBlockMultiple) {
  for (size_t n = 0; n < 40; ++n) {
    const auto padded = vaes::Pkcs7Pad(std::vector<uint8_t>(n, 0x7));
    EXPECT_EQ(padded.size() % 16, 0u);
    EXPECT_GT(padded.size(), n);
    EXPECT_EQ(padded.back(), padded.size() - n);
  }
}

class AesVirtineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto image = vcc::CompileProgram(vrt::VlibcSource() + vaes::GuestAesSource(), "main",
                                     vrt::Env::kLong64);
    ASSERT_TRUE(image.ok()) << image.status().ToString();
    image_ = new visa::Image(std::move(*image));
    runtime_ = new wasp::Runtime();
  }
  static void TearDownTestSuite() {
    delete runtime_;
    runtime_ = nullptr;
    delete image_;
    image_ = nullptr;
  }

  static std::vector<uint8_t> EncryptInVirtine(const vaes::Key& key, const vaes::Block& iv,
                                               const std::vector<uint8_t>& plaintext) {
    std::vector<uint8_t> input;
    input.insert(input.end(), key.begin(), key.end());
    input.insert(input.end(), iv.begin(), iv.end());
    input.insert(input.end(), plaintext.begin(), plaintext.end());
    wasp::VirtineSpec spec;
    spec.image = image_;
    spec.key = "aes-test";
    spec.policy = wasp::kPolicyManaged;
    spec.use_snapshot = true;
    spec.input = &input;
    auto outcome = runtime_->Invoke(spec);
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    return outcome.output;
  }

  static visa::Image* image_;
  static wasp::Runtime* runtime_;
};

visa::Image* AesVirtineTest::image_ = nullptr;
wasp::Runtime* AesVirtineTest::runtime_ = nullptr;

TEST_F(AesVirtineTest, MatchesNistCbcVector) {
  const vaes::Block iv = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                          0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  const std::vector<uint8_t> plaintext = {
      0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e,
      0x11, 0x73, 0x93, 0x17, 0x2a, 0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03,
      0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf, 0x8e, 0x51};
  EXPECT_EQ(EncryptInVirtine(kFipsKey, iv, plaintext),
            vaes::EncryptCbc(kFipsKey, iv, plaintext));
}

TEST_F(AesVirtineTest, RandomizedEquivalenceWithHost) {
  vbase::Rng rng(123);
  for (int trial = 0; trial < 5; ++trial) {
    vaes::Key key;
    vaes::Block iv;
    for (auto& b : key) {
      b = static_cast<uint8_t>(rng.Next());
    }
    for (auto& b : iv) {
      b = static_cast<uint8_t>(rng.Next());
    }
    std::vector<uint8_t> plaintext(16 * (1 + rng.Below(8)));
    for (auto& b : plaintext) {
      b = static_cast<uint8_t>(rng.Next());
    }
    EXPECT_EQ(EncryptInVirtine(key, iv, plaintext), vaes::EncryptCbc(key, iv, plaintext))
        << "trial " << trial;
  }
}

// --- microjs --------------------------------------------------------------------

TEST(MicroJs, CompileErrorsAreDiagnosed) {
  EXPECT_FALSE(vjs::CompileScript("var ;").ok());
  EXPECT_FALSE(vjs::CompileScript("x = 1;").ok());            // undefined var
  EXPECT_FALSE(vjs::CompileScript("var x = foo(1);").ok());   // unknown builtin
  EXPECT_FALSE(vjs::CompileScript("var x = input();").ok());  // arity
  EXPECT_FALSE(vjs::CompileScript("while (1) { ").ok());
  EXPECT_TRUE(vjs::CompileScript("var x = 1 + 2 * 3;").ok());
}

TEST(MicroJs, HostBase64MatchesKnownVectors) {
  EXPECT_EQ(vjs::HostBase64({}), "");
  EXPECT_EQ(vjs::HostBase64({'f'}), "Zg==");
  EXPECT_EQ(vjs::HostBase64({'f', 'o'}), "Zm8=");
  EXPECT_EQ(vjs::HostBase64({'f', 'o', 'o'}), "Zm9v");
  EXPECT_EQ(vjs::HostBase64({'f', 'o', 'o', 'b', 'a', 'r'}), "Zm9vYmFy");
}

class JsEngineTest : public ::testing::Test {
 protected:
  static std::string RunBase64(const std::vector<uint8_t>& payload) {
    static visa::Image* image = [] {
      auto bytecode = vjs::CompileScript(vjs::Base64ScriptSource());
      EXPECT_TRUE(bytecode.ok());
      auto img = vcc::CompileProgram(
          vrt::VlibcSource() + vjs::EngineSource(*bytecode, /*teardown=*/true), "main",
          vrt::Env::kLong64);
      EXPECT_TRUE(img.ok()) << img.status().ToString();
      return new visa::Image(std::move(*img));
    }();
    static wasp::Runtime* runtime = new wasp::Runtime();
    wasp::VirtineSpec spec;
    spec.image = image;
    spec.key = "js-engine-test";
    spec.mem_size = 2ULL << 20;
    spec.policy = wasp::kPolicyManaged;
    spec.use_snapshot = true;
    spec.crt_snapshot = false;
    spec.input = &payload;
    auto outcome = runtime->Invoke(spec);
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    return std::string(outcome.output.begin(), outcome.output.end());
  }
};

TEST_F(JsEngineTest, Base64PaddingCases) {
  EXPECT_EQ(RunBase64({'f'}), "Zg==");
  EXPECT_EQ(RunBase64({'f', 'o'}), "Zm8=");
  EXPECT_EQ(RunBase64({'f', 'o', 'o'}), "Zm9v");
}

TEST_F(JsEngineTest, RandomPayloadsMatchHostReference) {
  vbase::Rng rng(77);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<uint8_t> payload(1 + rng.Below(120));
    for (auto& b : payload) {
      b = static_cast<uint8_t>(rng.Next());
    }
    EXPECT_EQ(RunBase64(payload), vjs::HostBase64(payload)) << "trial " << trial;
  }
}

TEST(MicroJs, ArithmeticScriptSemantics) {
  // A script exercising every operator; emits one byte via out().
  const char* script = R"js(
var a = 10;
var b = 3;
var r = 0;
if (a / b == 3) { r = r + 1; }
if (a % b == 1) { r = r + 1; }
if ((a << 2) == 40) { r = r + 1; }
if ((a >> 1) == 5) { r = r + 1; }
if ((a & b) == 2) { r = r + 1; }
if ((a | b) == 11) { r = r + 1; }
if ((a ^ b) == 9) { r = r + 1; }
if (a > b) { r = r + 1; }
if (b < a) { r = r + 1; }
if (a >= 10) { r = r + 1; }
if (b <= 3) { r = r + 1; }
if (a != b) { r = r + 1; }
if (!(a == b)) { r = r + 1; }
if (-b == 0 - 3) { r = r + 1; }
out(r + 48);
)js";
  auto bytecode = vjs::CompileScript(script);
  ASSERT_TRUE(bytecode.ok()) << bytecode.status().ToString();
  auto image = vcc::CompileProgram(
      vrt::VlibcSource() + vjs::EngineSource(*bytecode, /*teardown=*/false), "main",
      vrt::Env::kLong64);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.mem_size = 2ULL << 20;
  spec.policy = wasp::kPolicyManaged;
  std::vector<uint8_t> empty;
  spec.input = &empty;
  auto outcome = runtime.Invoke(spec);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  ASSERT_EQ(outcome.output.size(), 1u);
  // 14 checks passed -> '0' + 14 = '>'.
  EXPECT_EQ(outcome.output[0], static_cast<uint8_t>('0' + 14));
}

}  // namespace
