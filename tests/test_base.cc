// Unit tests for the base utilities (status, stats, tables, rng, clock).
#include <gtest/gtest.h>

#include "src/base/clock.h"
#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/status.h"
#include "src/base/table.h"

namespace {

TEST(Status, OkByDefault) {
  vbase::Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  vbase::Status st = vbase::InvalidArgument("bad reg");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), vbase::Code::kInvalidArgument);
  EXPECT_EQ(st.ToString(), "INVALID_ARGUMENT: bad reg");
}

TEST(Status, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(vbase::NotFound("x").code(), vbase::Code::kNotFound);
  EXPECT_EQ(vbase::OutOfRange("x").code(), vbase::Code::kOutOfRange);
  EXPECT_EQ(vbase::FailedPrecondition("x").code(), vbase::Code::kFailedPrecondition);
  EXPECT_EQ(vbase::PermissionDenied("x").code(), vbase::Code::kPermissionDenied);
  EXPECT_EQ(vbase::Unimplemented("x").code(), vbase::Code::kUnimplemented);
  EXPECT_EQ(vbase::Internal("x").code(), vbase::Code::kInternal);
  EXPECT_EQ(vbase::ResourceExhausted("x").code(), vbase::Code::kResourceExhausted);
  EXPECT_EQ(vbase::Aborted("x").code(), vbase::Code::kAborted);
}

TEST(Result, HoldsValueOrStatus) {
  vbase::Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(ok.status().ok());

  vbase::Result<int> err(vbase::NotFound("missing"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), vbase::Code::kNotFound);
}

TEST(Stats, SummaryBasics) {
  const vbase::Summary s = vbase::Summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(Stats, SummaryEmptyIsZero) {
  const vbase::Summary s = vbase::Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, QuantileInterpolates) {
  EXPECT_DOUBLE_EQ(vbase::Quantile({10, 20}, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(vbase::Quantile({1, 2, 3, 4}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(vbase::Quantile({1, 2, 3, 4}, 1.0), 4.0);
}

TEST(Stats, TukeyRemovesOutliers) {
  std::vector<double> samples(100, 10.0);
  samples.push_back(1e9);  // scheduler blip
  const auto filtered = vbase::TukeyFilter(samples);
  EXPECT_EQ(filtered.size(), 100u);
  for (double v : filtered) {
    EXPECT_DOUBLE_EQ(v, 10.0);
  }
}

TEST(Stats, TukeyKeepsSmallSamples) {
  const std::vector<double> samples = {1, 100, 10000};
  EXPECT_EQ(vbase::TukeyFilter(samples).size(), 3u);
}

TEST(Stats, HarmonicMean) {
  EXPECT_NEAR(vbase::HarmonicMean({1, 4, 4}), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(vbase::HarmonicMean({}), 0.0);
  EXPECT_DOUBLE_EQ(vbase::HarmonicMean({1, 0}), 0.0);  // rejects non-positive
}

TEST(Clock, CycleConversionRoundTrips) {
  // 2690 cycles at 2.69 GHz = 1 us.
  EXPECT_NEAR(vbase::CyclesToMicros(2690), 1.0, 1e-9);
  EXPECT_EQ(vbase::MicrosToCycles(1.0), 2690u);
}

TEST(Rng, DeterministicForSeed) {
  vbase::Rng a(7);
  vbase::Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, BelowStaysInRange) {
  vbase::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Table, RendersAlignedColumns) {
  vbase::Table t({"a", "bb"});
  t.AddRow({"xxx", "y"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("a    bb"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("xxx  y"), std::string::npos);
}

TEST(Table, HumanBytes) {
  EXPECT_EQ(vbase::HumanBytes(512), "512 B");
  EXPECT_EQ(vbase::HumanBytes(16 << 10), "16.0 KB");
  EXPECT_EQ(vbase::HumanBytes(2 << 20), "2.0 MB");
}

}  // namespace
