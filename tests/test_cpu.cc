// CPU semantics tests: ALU behaviour at every mode width, flags/conditions,
// memory, stack, control flow, mode-transition legality, paging faults, and
// cycle accounting invariants.
#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/vhw/cpu.h"
#include "src/vhw/mem.h"

namespace {

// Runs `body` (assembled at 0x8000, real mode, sp=0x7000) until hlt and
// returns the CPU for inspection.
struct RunResult {
  vhw::Exit exit;
  std::unique_ptr<vhw::GuestMemory> mem;
  std::unique_ptr<vhw::Cpu> cpu;
};

RunResult RunAsm(const std::string& body, uint64_t max_insns = 1000000) {
  auto image = visa::Assemble("start:\n" + body);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  RunResult r;
  r.mem = std::make_unique<vhw::GuestMemory>(1 << 20);
  EXPECT_TRUE(r.mem->Write(image->load_addr, image->bytes.data(), image->bytes.size()).ok());
  r.cpu = std::make_unique<vhw::Cpu>(r.mem.get(), vhw::CostModel{});
  r.cpu->Reset(image->entry);
  r.cpu->set_reg(visa::kSp, 0x7000);
  r.exit = r.cpu->Run(max_insns);
  return r;
}

TEST(CpuAlu, Real16WidthMasksArithmetic) {
  auto r = RunAsm("mov r0, 0xffff\n  add r0, 1\n  hlt\n");
  ASSERT_EQ(r.exit.kind, vhw::ExitKind::kHlt) << r.exit.fault;
  EXPECT_EQ(r.cpu->reg(0), 0u);  // wrapped at 16 bits
}

TEST(CpuAlu, MovImmediateMasksToMode) {
  auto r = RunAsm("mov r0, 0x123456789\n  hlt\n");
  ASSERT_EQ(r.exit.kind, vhw::ExitKind::kHlt);
  EXPECT_EQ(r.cpu->reg(0), 0x6789u);  // real mode: 16 bits
}

struct AluCase {
  const char* body;
  uint64_t expect;  // r0 at hlt (16-bit semantics)
  const char* name;
};

class AluTest : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluTest, Computes) {
  auto r = RunAsm(GetParam().body);
  ASSERT_EQ(r.exit.kind, vhw::ExitKind::kHlt) << r.exit.fault;
  EXPECT_EQ(r.cpu->reg(0), GetParam().expect);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluTest,
    ::testing::Values(
        AluCase{"mov r0, 7\n mov r1, 3\n add r0, r1\n hlt\n", 10, "add_rr"},
        AluCase{"mov r0, 7\n sub r0, 10\n hlt\n", 0xfffd, "sub_wraps"},
        AluCase{"mov r0, 6\n mov r1, 7\n mul r0, r1\n hlt\n", 42, "mul"},
        AluCase{"mov r0, 6\n mov r1, 7\n imul r0, r1\n hlt\n", 42, "imul"},
        AluCase{"mov r0, 45\n mov r1, 7\n udiv r0, r1\n hlt\n", 6, "udiv"},
        AluCase{"mov r0, 45\n mov r1, 7\n umod r0, r1\n hlt\n", 3, "umod"},
        AluCase{"mov r0, 45\n neg r0\n mov r1, 7\n idiv r0, r1\n hlt\n",
                0x10000 - 6, "idiv_signed"},
        AluCase{"mov r0, 45\n neg r0\n mov r1, 7\n imod r0, r1\n hlt\n",
                0x10000 - 3, "imod_signed"},
        AluCase{"mov r0, 0xf0\n and r0, 0x3c\n hlt\n", 0x30, "and"},
        AluCase{"mov r0, 0xf0\n or r0, 0x0f\n hlt\n", 0xff, "or"},
        AluCase{"mov r0, 0xff\n xor r0, 0x0f\n hlt\n", 0xf0, "xor"},
        AluCase{"mov r0, 1\n shl r0, 10\n hlt\n", 1024, "shl"},
        AluCase{"mov r0, 1024\n shr r0, 3\n hlt\n", 128, "shr"},
        AluCase{"mov r0, 16\n neg r0\n sar r0, 2\n hlt\n", 0x10000 - 4, "sar_signed"},
        AluCase{"mov r0, 0\n not r0\n hlt\n", 0xffff, "not"},
        AluCase{"mov r0, 5\n neg r0\n hlt\n", 0xfffb, "neg"},
        AluCase{"mov r0, 3\n mov r1, 3\n cmp r0, r1\n cset r0, eq\n hlt\n", 1, "cset_eq"},
        AluCase{"mov r0, 2\n cmp r0, 3\n cset r0, lt\n hlt\n", 1, "cset_lt"},
        AluCase{"mov r0, 0xfff0\n cmp r0, 3\n cset r0, lt\n hlt\n", 1, "cset_lt_signed"},
        AluCase{"mov r0, 0xfff0\n cmp r0, 3\n cset r0, b\n hlt\n", 0, "cset_b_unsigned"},
        AluCase{"mov r0, 2\n cmp r0, 3\n cset r0, a\n hlt\n", 0, "cset_a"},
        AluCase{"mov r0, 9\n cmp r0, 3\n cset r0, ae\n hlt\n", 1, "cset_ae"}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(CpuAlu, DivisionByZeroFaults) {
  auto r = RunAsm("mov r0, 1\n mov r1, 0\n udiv r0, r1\n hlt\n");
  EXPECT_EQ(r.exit.kind, vhw::ExitKind::kFault);
  EXPECT_NE(r.exit.fault.find("division by zero"), std::string::npos);
}

TEST(CpuMemory, LoadStoreWidths) {
  auto r = RunAsm(R"(
  mov r1, 0x1000
  mov r0, 0x1234
  st16 [r1+0], r0
  ld8 r2, [r1+0]
  ld8 r3, [r1+1]
  hlt
)");
  ASSERT_EQ(r.exit.kind, vhw::ExitKind::kHlt) << r.exit.fault;
  EXPECT_EQ(r.cpu->reg(2), 0x34u);  // little-endian low byte
  EXPECT_EQ(r.cpu->reg(3), 0x12u);
}

TEST(CpuMemory, SignExtendingLoads) {
  auto r = RunAsm(R"(
  mov r1, 0x1000
  mov r0, 0x80
  st8 [r1+0], r0
  ld8s r2, [r1+0]
  ld8 r3, [r1+0]
  hlt
)");
  ASSERT_EQ(r.exit.kind, vhw::ExitKind::kHlt) << r.exit.fault;
  EXPECT_EQ(r.cpu->reg(2), 0xff80u);  // sign-extended, masked to 16 bits
  EXPECT_EQ(r.cpu->reg(3), 0x80u);
}

TEST(CpuMemory, StoresMarkPagesDirty) {
  auto r = RunAsm("mov r1, 0x4000\n mov r0, 1\n st8 [r1+0], r0\n hlt\n");
  ASSERT_EQ(r.exit.kind, vhw::ExitKind::kHlt);
  EXPECT_TRUE(r.mem->PageDirty(0x4000 >> 12));
  EXPECT_FALSE(r.mem->PageDirty(0x5000 >> 12));
}

TEST(CpuStack, PushPopCallRet) {
  auto r = RunAsm(R"(
  mov r0, 111
  push r0
  mov r0, 0
  call fn
  pop r2
  hlt
fn:
  mov r0, 42
  ret
)");
  ASSERT_EQ(r.exit.kind, vhw::ExitKind::kHlt) << r.exit.fault;
  EXPECT_EQ(r.cpu->reg(0), 42u);
  EXPECT_EQ(r.cpu->reg(2), 111u);
  EXPECT_EQ(r.cpu->reg(visa::kSp), 0x7000u);  // balanced
}

TEST(CpuStack, IndirectCall) {
  auto r = RunAsm(R"(
  mov r3, fn
  call r3
  hlt
fn:
  mov r0, 77
  ret
)");
  ASSERT_EQ(r.exit.kind, vhw::ExitKind::kHlt) << r.exit.fault;
  EXPECT_EQ(r.cpu->reg(0), 77u);
}

TEST(CpuControl, ConditionalBranchLoop) {
  auto r = RunAsm(R"(
  mov r0, 0
loop:
  add r0, 1
  cmp r0, 10
  jl loop
  hlt
)");
  ASSERT_EQ(r.exit.kind, vhw::ExitKind::kHlt);
  EXPECT_EQ(r.cpu->reg(0), 10u);
}

TEST(CpuControl, InsnLimitStopsRunaway) {
  auto r = RunAsm("loop:\n  jmp loop\n", /*max_insns=*/100);
  EXPECT_EQ(r.exit.kind, vhw::ExitKind::kInsnLimit);
}

TEST(CpuIo, OutExitsWithPortAndResumes) {
  auto image = visa::Assemble("start:\n  mov r0, 5\n  out 0x21, r0\n  add r0, 1\n  hlt\n");
  ASSERT_TRUE(image.ok());
  vhw::GuestMemory mem(1 << 20);
  ASSERT_TRUE(mem.Write(image->load_addr, image->bytes.data(), image->bytes.size()).ok());
  vhw::Cpu cpu(&mem, vhw::CostModel{});
  cpu.Reset(image->entry);
  cpu.set_reg(visa::kSp, 0x7000);
  vhw::Exit e = cpu.Run();
  ASSERT_EQ(e.kind, vhw::ExitKind::kIo);
  EXPECT_EQ(e.port, 0x21);
  EXPECT_FALSE(e.is_in);
  EXPECT_EQ(e.io_reg, 0);
  EXPECT_EQ(cpu.reg(0), 5u);
  cpu.set_reg(0, 100);  // host writes the hypercall result
  e = cpu.Run();
  ASSERT_EQ(e.kind, vhw::ExitKind::kHlt);
  EXPECT_EQ(cpu.reg(0), 101u);
  EXPECT_EQ(cpu.io_exits(), 1u);
}

TEST(CpuIo, InWritesDestinationRegister) {
  auto image = visa::Assemble("start:\n  in r4, 0x33\n  hlt\n");
  ASSERT_TRUE(image.ok());
  vhw::GuestMemory mem(1 << 20);
  ASSERT_TRUE(mem.Write(image->load_addr, image->bytes.data(), image->bytes.size()).ok());
  vhw::Cpu cpu(&mem, vhw::CostModel{});
  cpu.Reset(image->entry);
  vhw::Exit e = cpu.Run();
  ASSERT_EQ(e.kind, vhw::ExitKind::kIo);
  EXPECT_TRUE(e.is_in);
  EXPECT_EQ(e.io_reg, 4);
  cpu.set_reg(e.io_reg, 0xbeef);
  e = cpu.Run();
  ASSERT_EQ(e.kind, vhw::ExitKind::kHlt);
  EXPECT_EQ(cpu.reg(4), 0xbeefu);
}

// --- Mode transition legality ------------------------------------------------

TEST(CpuModes, PeWithoutGdtFaults) {
  auto r = RunAsm("mov r1, 1\n  wrcr 0, r1\n  hlt\n");
  EXPECT_EQ(r.exit.kind, vhw::ExitKind::kFault);
  EXPECT_NE(r.exit.fault.find("GDT"), std::string::npos);
}

TEST(CpuModes, LjmpProt32RequiresPe) {
  auto r = RunAsm("ljmp prot32, start\n  hlt\n");
  EXPECT_EQ(r.exit.kind, vhw::ExitKind::kFault);
}

TEST(CpuModes, LongJumpWithoutLmaFaults) {
  auto r = RunAsm(R"(
  mov r0, gdt_desc
  lgdt r0
  mov r1, 1
  wrcr 0, r1
  ljmp prot32, pm
gdt_desc:
  .word 23
  .quad 0
pm:
  ljmp long64, pm
)");
  EXPECT_EQ(r.exit.kind, vhw::ExitKind::kFault);
  EXPECT_NE(r.exit.fault.find("LMA"), std::string::npos);
}

TEST(CpuModes, PgWithoutPaeFaults) {
  auto r = RunAsm(R"(
  mov r0, gdt_desc
  lgdt r0
  mov r1, 1
  wrcr 0, r1
  ljmp prot32, pm
gdt_desc:
  .word 23
  .quad 0
pm:
  mov r1, 0x100
  wrcr 8, r1
  mov r1, 0x80000001
  wrcr 0, r1
  hlt
)");
  EXPECT_EQ(r.exit.kind, vhw::ExitKind::kFault);
  EXPECT_NE(r.exit.fault.find("PAE"), std::string::npos);
}

TEST(CpuModes, LmeWhilePagingFaults) {
  // Setting EFER.LME after paging is on must fault (x86 rule).
  auto r = RunAsm(R"(
  mov r1, 0x100
  wrcr 8, r1
  hlt
)");
  // LME alone in real mode is fine; this only checks the write path works.
  ASSERT_EQ(r.exit.kind, vhw::ExitKind::kHlt) << r.exit.fault;
  EXPECT_EQ(r.cpu->state().efer & visa::kEferLme, visa::kEferLme);
}

TEST(CpuPaging, UnmappedAddressFaultsInLongMode) {
  // Boot to long mode with only PDE[0] mapped (2 MB), then touch 4 MB.
  auto r = RunAsm(R"(
  mov r0, gdt_desc
  lgdt r0
  mov r1, 1
  wrcr 0, r1
  ljmp prot32, pm
gdt_desc:
  .word 23
  .quad 0
pm:
  mov r2, 0x1000
  mov r3, 0x2003
  st64 [r2+0], r3
  mov r2, 0x2000
  mov r3, 0x3003
  st64 [r2+0], r3
  mov r2, 0x3000
  mov r3, 0x83
  st64 [r2+0], r3
  mov r1, 0x20
  wrcr 4, r1
  mov r1, 0x100
  wrcr 8, r1
  mov r1, 0x1000
  wrcr 3, r1
  mov r1, 0x80000001
  wrcr 0, r1
  ljmp long64, lm
lm:
  mov r1, 0x400000
  ldw r0, [r1+0]
  hlt
)");
  EXPECT_EQ(r.exit.kind, vhw::ExitKind::kFault);
  EXPECT_NE(r.exit.fault.find("not present"), std::string::npos);
}

TEST(CpuAccounting, CyclesIncreaseMonotonically) {
  auto r = RunAsm("mov r0, 1\n  add r0, 2\n  hlt\n");
  ASSERT_EQ(r.exit.kind, vhw::ExitKind::kHlt);
  EXPECT_GT(r.cpu->cycles(), 0u);
  EXPECT_EQ(r.cpu->insns_retired(), 3u);
}

TEST(CpuAccounting, MilestonesIncludeFirstInsnAndHlt) {
  auto r = RunAsm("hlt\n");
  ASSERT_EQ(r.exit.kind, vhw::ExitKind::kHlt);
  ASSERT_GE(r.cpu->milestones().size(), 2u);
  EXPECT_EQ(r.cpu->milestones().front().event, vhw::BootEvent::kFirstInsn);
  EXPECT_EQ(r.cpu->milestones().back().event, vhw::BootEvent::kHlt);
}

TEST(CpuAccounting, RdtscReflectsCycleCounter) {
  auto r = RunAsm("rdtsc r0\n  rdtsc r1\n  hlt\n");
  ASSERT_EQ(r.exit.kind, vhw::ExitKind::kHlt);
  EXPECT_GT(r.cpu->reg(1), r.cpu->reg(0));
}

TEST(CpuMemoryBounds, PhysicalOutOfBoundsFaults) {
  auto r = RunAsm("mov r1, 0xfff0\n  shl r1, 4\n  hlt\n");
  // Real mode masks to 16 bits, so build an OOB access differently: a store
  // beyond guest memory is impossible at 16-bit width with 1 MB memory;
  // instead check the fetch path via a jump into unmapped high memory.
  ASSERT_EQ(r.exit.kind, vhw::ExitKind::kHlt);
  // Direct API-level check:
  vhw::GuestMemory mem(1 << 16);  // 64 KB
  vhw::Cpu cpu(&mem, vhw::CostModel{});
  cpu.Reset(0x8000);
  auto pa = cpu.Translate(0xffff);
  EXPECT_TRUE(pa.ok());
  // In real mode addresses are masked to 16 bits, so 0xffff is the max.
  EXPECT_EQ(*pa, 0xffffu);
}

TEST(GuestMemory, DirtyTrackingAndCleaning) {
  vhw::GuestMemory mem(1 << 20);
  uint8_t data[100];
  memset(data, 0xab, sizeof(data));
  ASSERT_TRUE(mem.Write(0x3000, data, sizeof(data)).ok());
  EXPECT_EQ(mem.CountDirtyPages(), 1u);
  EXPECT_EQ(mem.ZeroDirtyPages(), vhw::kPageSize);
  EXPECT_EQ(mem.CountDirtyPages(), 0u);
  uint8_t check = 1;
  ASSERT_TRUE(mem.Read(0x3000, &check, 1).ok());
  EXPECT_EQ(check, 0u);
}

TEST(GuestMemory, WriteSpanningPagesDirtiesAll) {
  vhw::GuestMemory mem(1 << 20);
  std::vector<uint8_t> data(vhw::kPageSize * 2 + 10, 1);
  ASSERT_TRUE(mem.Write(vhw::kPageSize - 5, data.data(), data.size()).ok());
  EXPECT_EQ(mem.CountDirtyPages(), 4u);  // partial, 2 full, partial
}

TEST(GuestMemory, BoundsChecked) {
  vhw::GuestMemory mem(1 << 16);
  uint8_t b = 0;
  EXPECT_FALSE(mem.Read((1 << 16) - 1, &b, 2).ok());
  EXPECT_FALSE(mem.Write(1 << 16, &b, 1).ok());
  EXPECT_TRUE(mem.Read((1 << 16) - 1, &b, 1).ok());
}

}  // namespace
