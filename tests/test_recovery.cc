// Fault-recovery tests: retry-once on a fresh shell for idempotent keys,
// per-key fault-rate EWMA tracking, and the circuit breaker state machine
// (closed -> open -> half-open -> closed) — all deterministic under
// FaultPlan schedules — plus a concurrent storm + probe race suite that the
// TSan lane runs against the executor's recovery bookkeeping.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/vnet/serverless.h"
#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/wasp/executor.h"
#include "src/wasp/fault.h"
#include "src/wasp/runtime.h"
#include "src/wasp/vfunc.h"

namespace {

visa::Image FibImage() {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  return std::move(*image);
}

// A snapshot-enabled fib(12) spec; a clean run returns result_word 144.
wasp::VirtineSpec FibSpec(const visa::Image* image, const std::string& key) {
  wasp::VirtineSpec spec;
  spec.image = image;
  spec.key = key;
  spec.word_bytes = 8;
  spec.mem_size = 2ULL << 20;
  spec.policy = wasp::kPolicyManaged;
  spec.use_snapshot = true;
  wasp::ArgPacker packer(8);
  packer.AddWord(12);
  spec.args_page = packer.Finish();
  return spec;
}

wasp::RuntimeOptions PlanOptions(wasp::FaultPlan plan) {
  wasp::RuntimeOptions options;
  options.fault_plan = std::move(plan);
  return options;
}

// Polls until the executor records `completions` finished jobs.  The worker
// settles completed/faulted, the recovery ledger, and the key-quota slot
// *before* resolving the job's future, so this is belt-and-braces — it keeps
// the assertions honest even if that ordering ever loosens.
void WaitForFinished(const wasp::Executor& executor, uint64_t completions) {
  for (int i = 0; i < 5000; ++i) {
    const wasp::ExecutorStats stats = executor.stats();
    if (stats.completed + stats.faulted >= completions) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void ExpectConservation(const wasp::ExecutorStats& stats) {
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.faulted + stats.queued + stats.in_flight);
}

// --- Retry-once -------------------------------------------------------------

TEST(Recovery, RetryExactlyOnceUnderWorkerDeath) {
  auto image = FibImage();
  wasp::FaultPlan plan;
  plan.rules.push_back(wasp::FaultPlan::At(wasp::FaultKind::kWorkerDeath, 0));
  wasp::Runtime runtime(PlanOptions(std::move(plan)));
  wasp::ExecutorOptions options;
  options.workers = 1;
  options.recovery.idempotent_keys = {"fib"};
  wasp::Executor executor(&runtime, options);

  std::future<wasp::RunOutcome> future;
  ASSERT_TRUE(executor.TrySubmit(FibSpec(&image, "fib"), &future));
  const wasp::RunOutcome outcome = future.get();
  // The retry masked the fault: the caller sees a clean result that admits
  // it was a second attempt.
  EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.fault, wasp::FaultKind::kNone);
  EXPECT_TRUE(outcome.retried);
  EXPECT_EQ(outcome.first_fault, wasp::FaultKind::kWorkerDeath);
  EXPECT_EQ(outcome.result_word, 144u);

  WaitForFinished(executor, 1);
  const wasp::ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.submitted, 1u);  // counted once across both attempts
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.faulted, 0u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.retry_successes, 1u);
  ExpectConservation(stats);
  // Both attempts fed the EWMA: one fault, one success.
  const wasp::KeyRecoverySnapshot rec = executor.KeyRecoveryState("fib");
  EXPECT_EQ(rec.samples, 2u);
  EXPECT_GT(rec.fault_rate, 0.0);
  // The first attempt's shell was quarantined even though the job succeeded.
  EXPECT_EQ(runtime.pool().stats().quarantined, 1u);
}

TEST(Recovery, RetryThatFaultsAgainCountsOnce) {
  auto image = FibImage();
  wasp::FaultPlan plan;
  plan.rules.push_back(wasp::FaultPlan::At(wasp::FaultKind::kWorkerDeath, 0));
  plan.rules.push_back(wasp::FaultPlan::At(wasp::FaultKind::kWorkerDeath, 1));
  wasp::Runtime runtime(PlanOptions(std::move(plan)));
  wasp::ExecutorOptions options;
  options.workers = 1;
  options.recovery.idempotent_keys = {"fib"};
  wasp::Executor executor(&runtime, options);

  std::future<wasp::RunOutcome> future;
  ASSERT_TRUE(executor.TrySubmit(FibSpec(&image, "fib"), &future));
  const wasp::RunOutcome outcome = future.get();
  EXPECT_EQ(outcome.fault, wasp::FaultKind::kWorkerDeath);
  EXPECT_TRUE(outcome.retried);  // a retry happened; it just also died

  WaitForFinished(executor, 1);
  const wasp::ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.faulted, 1u);  // the job died once, not twice
  EXPECT_EQ(stats.retries, 1u);  // and was retried exactly once, not forever
  EXPECT_EQ(stats.retry_successes, 0u);
  ExpectConservation(stats);
}

TEST(Recovery, NonIdempotentKeyIsNeverRetried) {
  auto image = FibImage();
  wasp::FaultPlan plan;
  plan.rules.push_back(wasp::FaultPlan::At(wasp::FaultKind::kWorkerDeath, 0));
  wasp::Runtime runtime(PlanOptions(std::move(plan)));
  wasp::Executor executor(&runtime, 1);  // default options: no idempotent keys

  std::future<wasp::RunOutcome> future;
  ASSERT_TRUE(executor.TrySubmit(FibSpec(&image, "fib"), &future));
  const wasp::RunOutcome outcome = future.get();
  EXPECT_EQ(outcome.fault, wasp::FaultKind::kWorkerDeath);
  EXPECT_FALSE(outcome.retried);
  WaitForFinished(executor, 1);
  EXPECT_EQ(executor.stats().retries, 0u);
}

TEST(Recovery, NonRecoverableFaultIsNeverRetried) {
  // A guest trap may have fired halfway through the guest's side effects, so
  // even an idempotent key must not retry it.
  auto image = FibImage();
  wasp::FaultPlan plan;
  plan.rules.push_back(wasp::FaultPlan::At(wasp::FaultKind::kGuestTrap, 0));
  wasp::Runtime runtime(PlanOptions(std::move(plan)));
  wasp::ExecutorOptions options;
  options.workers = 1;
  options.recovery.idempotent_keys = {"fib"};
  wasp::Executor executor(&runtime, options);

  std::future<wasp::RunOutcome> future;
  ASSERT_TRUE(executor.TrySubmit(FibSpec(&image, "fib"), &future));
  const wasp::RunOutcome outcome = future.get();
  EXPECT_EQ(outcome.fault, wasp::FaultKind::kGuestTrap);
  EXPECT_FALSE(outcome.retried);
  WaitForFinished(executor, 1);
  EXPECT_EQ(executor.stats().retries, 0u);
  EXPECT_EQ(executor.stats().faulted, 1u);
}

TEST(Recovery, RetryRunsOnFreshNonAffineShell) {
  // Invocation 0 runs clean and parks a snapshot-affine shell; invocation 1
  // worker-deaths.  The retry must *not* take the parked affine sibling: a
  // fresh shell COW-maps the snapshot instead of delta-restoring in place.
  auto image = FibImage();
  wasp::FaultPlan plan;
  plan.rules.push_back(wasp::FaultPlan::At(wasp::FaultKind::kWorkerDeath, 1));
  wasp::Runtime runtime(PlanOptions(std::move(plan)));
  wasp::ExecutorOptions options;
  options.workers = 1;
  options.recovery.idempotent_keys = {"fib"};
  wasp::Executor executor(&runtime, options);

  std::future<wasp::RunOutcome> warm;
  ASSERT_TRUE(executor.TrySubmit(FibSpec(&image, "fib"), &warm));
  ASSERT_EQ(warm.get().fault, wasp::FaultKind::kNone);

  std::future<wasp::RunOutcome> future;
  ASSERT_TRUE(executor.TrySubmit(FibSpec(&image, "fib"), &future));
  const wasp::RunOutcome outcome = future.get();
  EXPECT_TRUE(outcome.retried);
  EXPECT_EQ(outcome.fault, wasp::FaultKind::kNone);
  EXPECT_EQ(outcome.result_word, 144u);
  // COW map = the non-affine snapshot restore path: proof the retry took a
  // fresh shell even though an affine one was parked and eligible.
  EXPECT_TRUE(outcome.stats.mapped_cow);
  EXPECT_EQ(outcome.stats.restored_bytes, 0u);
}

// --- Breaker state machine --------------------------------------------------

TEST(Recovery, BreakerOpensShedsProbesAndCloses) {
  // Deterministic storm: invocations 0..3 guest-trap, everything after runs
  // clean.  With alpha 0.2 the EWMA after four all-fault attempts is
  // 1 - 0.8^4 = 0.59 >= 0.5, so the breaker opens at the 4th completion.
  auto image = FibImage();
  wasp::FaultPlan plan;
  for (uint64_t i = 0; i < 4; ++i) {
    plan.rules.push_back(wasp::FaultPlan::At(wasp::FaultKind::kGuestTrap, i));
  }
  wasp::Runtime runtime(PlanOptions(std::move(plan)));
  wasp::ExecutorOptions options;
  options.workers = 1;
  options.recovery.breaker_enabled = true;
  options.recovery.breaker_min_samples = 4;
  options.recovery.breaker_open_sheds = 2;
  wasp::Executor executor(&runtime, options);

  for (int i = 0; i < 4; ++i) {
    std::future<wasp::RunOutcome> future;
    wasp::Admission admission = wasp::Admission::kAccepted;
    ASSERT_TRUE(executor.TrySubmit(FibSpec(&image, "fib"), &future, wasp::KeyClass::kLatency,
                                   &admission));
    EXPECT_EQ(future.get().fault, wasp::FaultKind::kGuestTrap);
    WaitForFinished(executor, static_cast<uint64_t>(i) + 1);
  }
  wasp::KeyRecoverySnapshot rec = executor.KeyRecoveryState("fib");
  EXPECT_EQ(rec.state, wasp::BreakerState::kOpen);
  EXPECT_EQ(rec.opens, 1u);
  EXPECT_EQ(rec.samples, 4u);
  EXPECT_GE(rec.fault_rate, 0.5);

  // Open: the next breaker_open_sheds submissions shed without enqueueing.
  for (int i = 0; i < 2; ++i) {
    std::future<wasp::RunOutcome> future;
    wasp::Admission admission = wasp::Admission::kAccepted;
    EXPECT_FALSE(executor.TrySubmit(FibSpec(&image, "fib"), &future,
                                    wasp::KeyClass::kLatency, &admission));
    EXPECT_EQ(admission, wasp::Admission::kCircuitOpen);
  }
  EXPECT_EQ(executor.stats().breaker_rejected, 2u);

  // Cooldown elapsed: the next submission is admitted as the half-open
  // probe.  Invocation index 4 has no rule, so it runs clean and closes the
  // breaker with a reset EWMA.
  std::future<wasp::RunOutcome> probe;
  wasp::Admission admission = wasp::Admission::kAccepted;
  ASSERT_TRUE(executor.TrySubmit(FibSpec(&image, "fib"), &probe, wasp::KeyClass::kLatency,
                                 &admission));
  EXPECT_EQ(admission, wasp::Admission::kAccepted);
  EXPECT_EQ(probe.get().fault, wasp::FaultKind::kNone);
  WaitForFinished(executor, 5);
  rec = executor.KeyRecoveryState("fib");
  EXPECT_EQ(rec.state, wasp::BreakerState::kClosed);
  EXPECT_EQ(rec.fault_rate, 0.0);  // clean slate after a clean probe
  EXPECT_EQ(rec.opens, 1u);

  // Closed again: submissions flow normally.
  std::future<wasp::RunOutcome> after;
  ASSERT_TRUE(executor.TrySubmit(FibSpec(&image, "fib"), &after));
  EXPECT_EQ(after.get().fault, wasp::FaultKind::kNone);
  WaitForFinished(executor, 6);
  const wasp::ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.submitted, 6u);  // 4 storm + probe + 1 clean; sheds never entered
  EXPECT_EQ(stats.breaker_opens, 1u);
  ExpectConservation(stats);
}

TEST(Recovery, FaultedProbeReopensBreaker) {
  // Invocations 0..3 and 4 (the probe) all guest-trap: the probe must send
  // the breaker straight back to open, and the next submission sheds.
  auto image = FibImage();
  wasp::FaultPlan plan;
  for (uint64_t i = 0; i < 5; ++i) {
    plan.rules.push_back(wasp::FaultPlan::At(wasp::FaultKind::kGuestTrap, i));
  }
  wasp::Runtime runtime(PlanOptions(std::move(plan)));
  wasp::ExecutorOptions options;
  options.workers = 1;
  options.recovery.breaker_enabled = true;
  options.recovery.breaker_min_samples = 4;
  options.recovery.breaker_open_sheds = 1;
  wasp::Executor executor(&runtime, options);

  for (int i = 0; i < 4; ++i) {
    std::future<wasp::RunOutcome> future;
    ASSERT_TRUE(executor.TrySubmit(FibSpec(&image, "fib"), &future));
    future.get();
    WaitForFinished(executor, static_cast<uint64_t>(i) + 1);
  }
  ASSERT_EQ(executor.KeyRecoveryState("fib").state, wasp::BreakerState::kOpen);

  // One shed, then the probe — which faults.
  std::future<wasp::RunOutcome> shed;
  EXPECT_FALSE(executor.TrySubmit(FibSpec(&image, "fib"), &shed));
  std::future<wasp::RunOutcome> probe;
  ASSERT_TRUE(executor.TrySubmit(FibSpec(&image, "fib"), &probe));
  EXPECT_EQ(probe.get().fault, wasp::FaultKind::kGuestTrap);
  WaitForFinished(executor, 5);
  const wasp::KeyRecoverySnapshot rec = executor.KeyRecoveryState("fib");
  EXPECT_EQ(rec.state, wasp::BreakerState::kOpen);
  EXPECT_EQ(rec.opens, 2u);
  std::future<wasp::RunOutcome> next;
  wasp::Admission admission = wasp::Admission::kAccepted;
  EXPECT_FALSE(executor.TrySubmit(FibSpec(&image, "fib"), &next, wasp::KeyClass::kLatency,
                                  &admission));
  EXPECT_EQ(admission, wasp::Admission::kCircuitOpen);
}

TEST(Recovery, EwmaTracksFaultRateWithBreakerDisabled) {
  // Fault-rate tracking is unconditional; the breaker state machine is the
  // opt-in half.  Two faults must move the EWMA but never shed anything.
  auto image = FibImage();
  wasp::FaultPlan plan;
  plan.rules.push_back(wasp::FaultPlan::At(wasp::FaultKind::kGuestTrap, 0));
  plan.rules.push_back(wasp::FaultPlan::At(wasp::FaultKind::kGuestTrap, 1));
  wasp::Runtime runtime(PlanOptions(std::move(plan)));
  wasp::Executor executor(&runtime, 1);

  for (int i = 0; i < 3; ++i) {
    std::future<wasp::RunOutcome> future;
    ASSERT_TRUE(executor.TrySubmit(FibSpec(&image, "fib"), &future));
    future.get();
    WaitForFinished(executor, static_cast<uint64_t>(i) + 1);
  }
  const wasp::KeyRecoverySnapshot rec = executor.KeyRecoveryState("fib");
  EXPECT_EQ(rec.samples, 3u);
  EXPECT_GT(rec.fault_rate, 0.0);
  EXPECT_EQ(rec.state, wasp::BreakerState::kClosed);
  EXPECT_EQ(executor.stats().breaker_rejected, 0u);
}

// --- GovernTrace recovery discipline ----------------------------------------

// Hand-built two-tenant trace: the victim's invocations all fault, the
// co-tenant's all succeed, arrivals alternate with enough spacing that each
// completion is processed before the next arrival.
vnet::MeasuredTrace StormTrace(int per_tenant) {
  vnet::MeasuredTrace trace;
  trace.names = {"victim", "cotenant"};
  trace.classes = {wasp::KeyClass::kLatency, wasp::KeyClass::kLatency};
  double t = 0;
  for (int i = 0; i < per_tenant; ++i) {
    for (int tenant = 0; tenant < 2; ++tenant) {
      trace.arrivals_us.push_back(t);
      trace.tenant.push_back(tenant);
      trace.service_us.push_back(100.0);
      trace.cold.push_back(false);
      trace.faulted.push_back(tenant == 0);
      t += 200.0;
    }
  }
  return trace;
}

TEST(Recovery, GovernTraceBreakerShedsVictimOnly) {
  const vnet::MeasuredTrace trace = StormTrace(20);
  vnet::GovernanceOptions governed;
  governed.lanes = 2;
  governed.recovery.breaker_enabled = true;
  governed.recovery.breaker_min_samples = 4;
  governed.recovery.breaker_open_sheds = 2;
  const vnet::GovernedReplay replay = vnet::GovernTrace(trace, governed);
  const vnet::TenantOutcome& victim = replay.tenants[0];
  const vnet::TenantOutcome& cotenant = replay.tenants[1];
  // The victim's breaker tripped and shed most of its storm; probes faulted
  // and re-opened it.
  EXPECT_GT(victim.shed_breaker, 0u);
  EXPECT_GE(victim.breaker_opens, 2u);
  EXPECT_GT(victim.shed_rate, 0.0);
  // The co-tenant never sheds and completes everything.
  EXPECT_EQ(cotenant.shed_breaker, 0u);
  EXPECT_EQ(cotenant.breaker_opens, 0u);
  EXPECT_EQ(cotenant.completed, cotenant.offered);

  // Deterministic: the same trace governs identically twice.
  const vnet::GovernedReplay again = vnet::GovernTrace(trace, governed);
  EXPECT_EQ(again.tenants[0].shed_breaker, victim.shed_breaker);
  EXPECT_EQ(again.tenants[0].breaker_opens, victim.breaker_opens);
  EXPECT_EQ(again.tenants[1].completed, cotenant.completed);

  // Disabled breaker: nothing sheds, every victim arrival burns a lane.
  vnet::GovernanceOptions ungoverned;
  ungoverned.lanes = 2;
  const vnet::GovernedReplay off = vnet::GovernTrace(trace, ungoverned);
  EXPECT_EQ(off.tenants[0].shed_breaker, 0u);
  EXPECT_EQ(off.tenants[0].faulted, off.tenants[0].offered);
}

// --- Concurrent storm + probe races (the TSan lane's target) ----------------

TEST(Recovery, ConcurrentStormAndProbesKeepAccountingConserved) {
  auto image = FibImage();
  wasp::FaultPlan plan;
  plan.seed = 4242;
  plan.rules.push_back(
      wasp::FaultPlan::Probability(wasp::FaultKind::kGuestTrap, 0.4, "storm"));
  plan.rules.push_back(
      wasp::FaultPlan::Probability(wasp::FaultKind::kWorkerDeath, 0.2, "storm"));
  wasp::Runtime runtime(PlanOptions(std::move(plan)));
  wasp::ExecutorOptions options;
  options.workers = 4;
  options.recovery.breaker_enabled = true;
  options.recovery.breaker_min_samples = 8;
  options.recovery.breaker_open_sheds = 4;
  options.recovery.idempotent_keys = {"storm", "calm"};
  wasp::Executor executor(&runtime, options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 24;
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> calm_shed{0};
  std::atomic<bool> done{false};
  // A sampler hammers the stats snapshot (whose debug build asserts the
  // conservation law) and the recovery ledger while workers retry, trip,
  // and probe — the TSan lane checks this exact interleaving.
  std::thread sampler([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const wasp::ExecutorStats stats = executor.stats();
      EXPECT_EQ(stats.submitted,
                stats.completed + stats.faulted + stats.queued + stats.in_flight);
      (void)executor.KeyRecoveryState("storm");
      (void)executor.KeyFaultRate("calm");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const bool stormy = (i + t) % 2 == 0;
        const std::string key = stormy ? "storm" : "calm";
        std::future<wasp::RunOutcome> future;
        wasp::Admission admission = wasp::Admission::kAccepted;
        if (executor.TrySubmit(FibSpec(&image, key), &future, wasp::KeyClass::kLatency,
                               &admission)) {
          accepted.fetch_add(1);
          future.get();
        } else {
          ASSERT_EQ(admission, wasp::Admission::kCircuitOpen);
          shed.fetch_add(1);
          if (!stormy) {
            calm_shed.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  WaitForFinished(executor, accepted.load());
  done.store(true);
  sampler.join();

  const wasp::ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.submitted, accepted.load());
  EXPECT_EQ(stats.breaker_rejected, shed.load());
  EXPECT_EQ(stats.submitted + stats.breaker_rejected,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.completed + stats.faulted, stats.submitted);
  ExpectConservation(stats);
  // Only the storm key ever sheds: the calm key's breaker never trips.
  EXPECT_EQ(calm_shed.load(), 0u);
  EXPECT_EQ(executor.KeyRecoveryState("calm").fault_rate, 0.0);
  // Retries happened (worker deaths on an idempotent key) and some
  // succeeded; every retry is bounded at one attempt by construction.
  EXPECT_GT(stats.retries, 0u);
  EXPECT_LE(stats.retries, stats.submitted);
}

}  // namespace
