// Listener tests: the real TCP front end (epoll accept/read loop, HTTP
// keep-alive, streamed bodies, edge rejection) against real loopback
// sockets in every serve mode, including the concurrency paths TSan watches.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/vnet/http.h"
#include "src/vnet/listener.h"
#include "src/vnet/loadgen.h"
#include "src/vnet/server.h"
#include "src/wasp/runtime.h"

namespace {

int ConnectTo(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0 && errno != EINTR) {
      return false;
    }
    if (n > 0) {
      off += static_cast<size_t>(n);
    }
  }
  return true;
}

// Reads one full Content-Length-framed response off `fd` (leftover bytes
// stay in *stream); returns its status or -1 on EOF/error mid-response.
int ReadResponse(int fd, std::string* stream) {
  char buf[4096];
  while (true) {
    auto head = vnet::FrameResponseHead(*stream);
    if (head.ok()) {
      const size_t total = head->head_bytes + head->content_length;
      if (stream->size() >= total) {
        stream->erase(0, total);
        return head->status;
      }
    } else if (head.status().code() != vbase::Code::kFailedPrecondition) {
      return -1;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      stream->append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return -1;
  }
}

// Blocks until the peer closes (returns true) or ~2s pass (false).
bool WaitForEof(int fd) {
  char buf[256];
  for (int i = 0; i < 400; ++i) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n == 0) {
      return true;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return true;  // reset counts as closed
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

struct Stack {
  wasp::Runtime runtime;
  wasp::HostEnv files;
  std::unique_ptr<vnet::ConcurrentHttpServer> server;
  std::unique_ptr<vnet::Listener> listener;

  explicit Stack(vnet::ServeMode mode, vnet::ConcurrentServerOptions sopts = {},
                 vnet::ListenerOptions lopts = {}) {
    files.PutFile("/static.html", std::string(512, 'x'));
    sopts.block_when_full = false;  // never block the listener's event loop
    server = std::make_unique<vnet::ConcurrentHttpServer>(&runtime, &files, sopts);
    lopts.mode = mode;
    listener = std::make_unique<vnet::Listener>(server.get(), lopts);
    auto st = listener->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
};

class ListenerModeTest : public ::testing::TestWithParam<vnet::ServeMode> {};

INSTANTIATE_TEST_SUITE_P(Modes, ListenerModeTest,
                         ::testing::Values(vnet::ServeMode::kNative,
                                           vnet::ServeMode::kVirtine,
                                           vnet::ServeMode::kVirtineSnapshot),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case vnet::ServeMode::kNative: return "native";
                             case vnet::ServeMode::kVirtine: return "virtine";
                             default: return "virtine_snapshot";
                           }
                         });

TEST_P(ListenerModeTest, RoundTripsOverRealSockets) {
  Stack stack(GetParam());
  const int fd = ConnectTo(stack.listener->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, "GET /static.html HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"));
  std::string stream;
  EXPECT_EQ(ReadResponse(fd, &stream), 200);
  EXPECT_TRUE(WaitForEof(fd));  // close was honored
  ::close(fd);
  const auto counters = stack.server->counters(GetParam());
  EXPECT_EQ(counters.requests, 1u);
  EXPECT_EQ(counters.status_2xx, 1u);
}

TEST_P(ListenerModeTest, KeepAliveReusesOneConnectionForManyRequests) {
  Stack stack(GetParam());
  const int fd = ConnectTo(stack.listener->port());
  ASSERT_GE(fd, 0);
  std::string stream;
  for (int i = 0; i < 5; ++i) {
    const bool last = i == 4;
    ASSERT_TRUE(SendAll(fd, std::string("GET /static.html HTTP/1.1\r\nHost: t\r\n") +
                                (last ? "Connection: close\r\n" : "") + "\r\n"));
    EXPECT_EQ(ReadResponse(fd, &stream), 200) << "request " << i;
  }
  EXPECT_TRUE(WaitForEof(fd));
  ::close(fd);
  const auto counters = stack.server->counters(GetParam());
  EXPECT_EQ(counters.requests, 5u);
  EXPECT_EQ(counters.keepalive_reused, 4u);  // 4 of 5 reused the shell
  EXPECT_EQ(counters.accepted, 1u);          // one connection, one dispatch
  EXPECT_EQ(stack.listener->stats().requests_forwarded, 5u);
}

TEST_P(ListenerModeTest, OversizedHeadIsRejectedAtTheEdgeWith413) {
  Stack stack(GetParam());
  const int fd = ConnectTo(stack.listener->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, "GET /static.html HTTP/1.1\r\nX-Big: " + std::string(4000, 'a') +
                              "\r\n\r\n"));
  std::string stream;
  EXPECT_EQ(ReadResponse(fd, &stream), 413);
  EXPECT_TRUE(WaitForEof(fd));
  ::close(fd);
  // Rejected at the edge: no lane ever saw the connection.
  EXPECT_EQ(stack.listener->stats().edge_413, 1u);
  EXPECT_EQ(stack.server->counters(GetParam()).accepted, 0u);
}

TEST_P(ListenerModeTest, OversizedDeclaredBodyIsRejectedBeforeItIsRead) {
  Stack stack(GetParam());
  const int fd = ConnectTo(stack.listener->port());
  ASSERT_GE(fd, 0);
  // Declares far beyond max_body_bytes; the body itself is never sent — the
  // 413 must come from the declaration alone.
  ASSERT_TRUE(SendAll(
      fd, "POST /static.html HTTP/1.1\r\nHost: t\r\nContent-Length: 999999999\r\n\r\n"));
  std::string stream;
  EXPECT_EQ(ReadResponse(fd, &stream), 413);
  EXPECT_TRUE(WaitForEof(fd));
  ::close(fd);
  EXPECT_EQ(stack.listener->stats().edge_413, 1u);
}

TEST_P(ListenerModeTest, SmugglingShapedRequestIsRejectedAtTheEdgeWith400) {
  Stack stack(GetParam());
  const int fd = ConnectTo(stack.listener->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd,
                      "POST /static.html HTTP/1.1\r\nHost: t\r\nContent-Length: 4\r\n"
                      "Content-Length: 5\r\n\r\nbody!"));
  std::string stream;
  EXPECT_EQ(ReadResponse(fd, &stream), 400);
  EXPECT_TRUE(WaitForEof(fd));
  ::close(fd);
  EXPECT_EQ(stack.listener->stats().edge_400, 1u);
  EXPECT_EQ(stack.server->counters(GetParam()).accepted, 0u);
}

TEST(Listener, IdleConnectionIsClosedByTheTimeout) {
  vnet::ListenerOptions lopts;
  lopts.idle_timeout_ms = 60;
  lopts.tick_ms = 5;
  Stack stack(vnet::ServeMode::kNative, {}, lopts);
  const int fd = ConnectTo(stack.listener->port());
  ASSERT_GE(fd, 0);
  // Send nothing: the listener must hang up on its own.
  EXPECT_TRUE(WaitForEof(fd));
  ::close(fd);
  EXPECT_EQ(stack.listener->stats().idle_closed, 1u);
  // Never dispatched: an idle socket costs no lane.
  EXPECT_EQ(stack.server->counters(vnet::ServeMode::kNative).accepted, 0u);
}

TEST(Listener, SlowWriterGets408AfterTheIdleTimeout) {
  vnet::ListenerOptions lopts;
  lopts.idle_timeout_ms = 60;
  lopts.tick_ms = 5;
  Stack stack(vnet::ServeMode::kNative, {}, lopts);
  const int fd = ConnectTo(stack.listener->port());
  ASSERT_GE(fd, 0);
  // A slowloris half-request: head never terminates.
  ASSERT_TRUE(SendAll(fd, "GET /static.html HTTP/1.1\r\nHost: t\r\n"));
  std::string stream;
  EXPECT_EQ(ReadResponse(fd, &stream), 408);
  EXPECT_TRUE(WaitForEof(fd));
  ::close(fd);
  EXPECT_EQ(stack.listener->stats().idle_closed, 1u);
}

TEST(Listener, TruncatedRequestGets400AtTheEdge) {
  Stack stack(vnet::ServeMode::kNative);
  const int fd = ConnectTo(stack.listener->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, "GET /static.ht"));
  ::shutdown(fd, SHUT_WR);  // EOF inside an incomplete head
  std::string stream;
  EXPECT_EQ(ReadResponse(fd, &stream), 400);
  EXPECT_TRUE(WaitForEof(fd));
  ::close(fd);
  EXPECT_EQ(stack.listener->stats().edge_400, 1u);
}

TEST(Listener, KeepAliveConnectionHoldsLaneAndOverflowSheds) {
  // lanes=1, queue=1: connection A holds the lane (parked mid keep-alive),
  // B occupies the queue slot, C must shed with 503 — overload stays a
  // first-class, protocol-visible behavior through the socket front end.
  vnet::ConcurrentServerOptions sopts;
  sopts.lanes = 1;
  sopts.max_queue_depth = 1;
  Stack stack(vnet::ServeMode::kNative, sopts);
  const int a = ConnectTo(stack.listener->port());
  ASSERT_GE(a, 0);
  std::string sa;
  ASSERT_TRUE(SendAll(a, "GET /static.html HTTP/1.1\r\nHost: t\r\n\r\n"));
  ASSERT_EQ(ReadResponse(a, &sa), 200);  // A now owns the lane, parked
  const int b = ConnectTo(stack.listener->port());
  ASSERT_GE(b, 0);
  ASSERT_TRUE(SendAll(b, "GET /static.html HTTP/1.1\r\nHost: t\r\n\r\n"));
  // B is queued behind A; give the listener a moment to dispatch it before C.
  for (int i = 0; i < 200 && stack.server->queue_depth() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(stack.server->queue_depth(), 1u);
  const int c = ConnectTo(stack.listener->port());
  ASSERT_GE(c, 0);
  std::string sc;
  ASSERT_TRUE(SendAll(c, "GET /static.html HTTP/1.1\r\nHost: t\r\n\r\n"));
  EXPECT_EQ(ReadResponse(c, &sc), 503);  // shed immediately, well-formed
  // Closing A frees the lane; B then serves normally.
  ::close(a);
  std::string sb;
  EXPECT_EQ(ReadResponse(b, &sb), 200);
  ::close(b);
  ::close(c);
}

TEST_P(ListenerModeTest, ConcurrentSocketClientsAllSucceed) {
  vnet::ConcurrentServerOptions sopts;
  sopts.lanes = 4;
  Stack stack(GetParam(), sopts);
  vnet::SocketLoadOptions load;
  load.port = stack.listener->port();
  load.clients = 4;
  load.requests_per_client = 24;
  load.requests_per_connection = 8;
  const auto result = vnet::RunSocketClosedLoop(load);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_EQ(result.latencies_us.size(), 4u * 24u);
  // Clients close as soon as they read their last response; they never wait
  // for the server's FIN, so the final connection jobs may still be settling.
  // Stop() drains every in-flight job (and counters update before each job's
  // future resolves), making the counter reads deterministic.
  stack.listener->Stop();
  const auto counters = stack.server->counters(GetParam());
  EXPECT_EQ(counters.requests, 4u * 24u);
  EXPECT_GT(counters.keepalive_reused, 0u);
  EXPECT_EQ(counters.status_2xx, 4u * 24u);
}

TEST(Listener, StopDrainsInFlightConnections) {
  Stack stack(vnet::ServeMode::kNative);
  const int fd = ConnectTo(stack.listener->port());
  ASSERT_GE(fd, 0);
  std::string stream;
  ASSERT_TRUE(SendAll(fd, "GET /static.html HTTP/1.1\r\nHost: t\r\n\r\n"));
  ASSERT_EQ(ReadResponse(fd, &stream), 200);
  // Stop with the keep-alive connection still open: must not hang or crash.
  stack.listener->Stop();
  EXPECT_FALSE(stack.listener->running());
  ::close(fd);
}

}  // namespace
