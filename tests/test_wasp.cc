// Wasp runtime tests: pooling (reuse + information-leak regression),
// snapshotting, hypercall policy enforcement, canned handler validation
// against hostile guests, channels, and marshalling properties.
#include <gtest/gtest.h>

#include <thread>

#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/wasp/channel.h"
#include "src/wasp/pool.h"
#include "src/wasp/runtime.h"
#include "src/wasp/vfunc.h"

namespace {

visa::Image RawImage(const std::string& body) {
  auto image = vrt::BuildRawImage(body);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  return std::move(*image);
}

// --- Pool -----------------------------------------------------------------

TEST(Pool, ReusesShellsBySize) {
  wasp::Pool pool(wasp::CleanMode::kSync);
  vkvm::VmConfig cfg;
  cfg.mem_size = 1 << 20;
  bool from_pool = true;
  auto vm = pool.Acquire(cfg, &from_pool);
  EXPECT_FALSE(from_pool);
  pool.Release(std::move(vm));
  EXPECT_EQ(pool.FreeShells(cfg.mem_size), 1u);
  vm = pool.Acquire(cfg, &from_pool);
  EXPECT_TRUE(from_pool);
  // A different size must not hit the pool.
  vkvm::VmConfig other = cfg;
  other.mem_size = 2 << 20;
  auto vm2 = pool.Acquire(other, &from_pool);
  EXPECT_FALSE(from_pool);
  pool.Release(std::move(vm));
  pool.Release(std::move(vm2));
  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquires, 3u);
  EXPECT_EQ(stats.pool_hits, 1u);
  EXPECT_EQ(stats.fresh_creates, 2u);
}

TEST(Pool, CleaningZeroesDirtyPagesOnly) {
  wasp::Pool pool(wasp::CleanMode::kSync);
  vkvm::VmConfig cfg;
  auto vm = pool.Acquire(cfg);
  uint8_t secret[64];
  memset(secret, 0x5a, sizeof(secret));
  ASSERT_TRUE(vm->memory().Write(0x9000, secret, sizeof(secret)).ok());
  pool.Release(std::move(vm));
  EXPECT_GE(pool.stats().bytes_zeroed, vhw::kPageSize);
}

// The paper's isolation objective: a reused shell must never leak the
// previous tenant's memory.
TEST(Pool, InformationLeakRegression) {
  wasp::Pool pool(wasp::CleanMode::kSync);
  vkvm::VmConfig cfg;
  auto vm = pool.Acquire(cfg);
  const char secret[] = "TOP-SECRET-KEY-MATERIAL";
  ASSERT_TRUE(vm->memory().Write(0x40000, secret, sizeof(secret)).ok());
  pool.Release(std::move(vm));
  auto reused = pool.Acquire(cfg);
  std::vector<uint8_t> probe(vhw::kPageSize);
  ASSERT_TRUE(reused->memory().Read(0x40000, probe.data(), probe.size()).ok());
  for (uint8_t b : probe) {
    ASSERT_EQ(b, 0u) << "secret leaked through a pooled shell";
  }
}

TEST(Pool, AsyncCleanerDrains) {
  wasp::Pool pool(wasp::CleanMode::kAsync);
  vkvm::VmConfig cfg;
  for (int i = 0; i < 8; ++i) {
    auto vm = pool.Acquire(cfg);
    uint8_t b = 1;
    ASSERT_TRUE(vm->memory().Write(0x9000, &b, 1).ok());
    pool.Release(std::move(vm));
  }
  pool.DrainCleaner();
  EXPECT_EQ(pool.stats().cleans, 8u);
  // Later acquires may legitimately reuse already-cleaned shells, so the
  // free list holds between 1 and 8 shells; all of them are clean.
  EXPECT_GE(pool.FreeShells(cfg.mem_size), 1u);
}

TEST(Pool, NoneModeDropsShells) {
  wasp::Pool pool(wasp::CleanMode::kNone);
  vkvm::VmConfig cfg;
  pool.Release(pool.Acquire(cfg));
  EXPECT_EQ(pool.FreeShells(cfg.mem_size), 0u);
}

// --- Invocation + snapshotting ------------------------------------------------

TEST(Runtime, SnapshotSkipsBootAndIsFaster) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  ASSERT_TRUE(image.ok());
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "snap-test";
  spec.use_snapshot = true;
  wasp::VirtineFunc<int64_t(int64_t)> fib(&runtime, spec);
  ASSERT_TRUE(fib.Call(10).ok());
  EXPECT_TRUE(fib.last_outcome().stats.took_snapshot);
  const uint64_t first_insns = fib.last_outcome().stats.insns;
  ASSERT_TRUE(fib.Call(10).ok());
  EXPECT_TRUE(fib.last_outcome().stats.restored_snapshot);
  // Boot (GDT + page tables + transitions) is hundreds of instructions that
  // the restored run must not execute.
  EXPECT_LT(fib.last_outcome().stats.insns + 500, first_insns);
}

TEST(Runtime, SnapshotRunsProduceIdenticalResults) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  ASSERT_TRUE(image.ok());
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "snap-determinism";
  spec.use_snapshot = true;
  wasp::VirtineFunc<int64_t(int64_t)> fib(&runtime, spec);
  for (int n : {0, 1, 7, 13, 18}) {
    auto a = fib.Call(n);
    auto b = fib.Call(n);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << "snapshot run diverged for n=" << n;
  }
}

TEST(Runtime, SnapshotsAreIsolatedBetweenInvocations) {
  // A virtine that mutates a global after the snapshot point: the mutation
  // must never be visible to the next restore.
  auto image = vrt::BuildRawImage(R"(
start:
  mov r8, 0x600
  ld64 r9, [r8+0]      ; read marker
  add r9, 1
  st64 [r8+0], r9      ; increment marker (post-snapshot state)
  mov r0, r9
  mov r8, 0
  st64 [r8+0], r0      ; result word
  hlt
)");
  ASSERT_TRUE(image.ok());
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.word_bytes = 8;
  for (int i = 0; i < 3; ++i) {
    auto outcome = runtime.Invoke(spec);
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_EQ(outcome.result_word, 1u) << "state leaked across invocations";
  }
}

TEST(Runtime, RuntimesDoNotShareSnapshots) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  ASSERT_TRUE(image.ok());
  wasp::Runtime a;
  wasp::Runtime b;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "shared-key";
  spec.use_snapshot = true;
  wasp::VirtineFunc<int64_t(int64_t)> fa(&a, spec);
  wasp::VirtineFunc<int64_t(int64_t)> fb(&b, spec);
  ASSERT_TRUE(fa.Call(5).ok());
  ASSERT_TRUE(fb.Call(5).ok());
  EXPECT_TRUE(fb.last_outcome().stats.took_snapshot);  // b took its own
}

// --- Policy enforcement ----------------------------------------------------------

TEST(Policy, DefaultDenyTerminatesOnForbiddenHypercall) {
  auto image = RawImage(R"(
start:
  mov r1, 0x600
  mov r2, 4
  mov r0, 0
  out HC_SEND, r0
  hlt
)");
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.policy = wasp::kPolicyDenyAll;
  auto outcome = runtime.Invoke(spec);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_TRUE(outcome.denied);
  EXPECT_EQ(outcome.status.code(), vbase::Code::kPermissionDenied);
}

TEST(Policy, ExitAlwaysPermitted) {
  auto image = RawImage("start:\n  mov r1, 7\n  mov r0, 0\n  out HC_EXIT, r0\n  hlt\n");
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.policy = wasp::kPolicyDenyAll;
  auto outcome = runtime.Invoke(spec);
  EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.exit_code, 7u);
}

TEST(Policy, MaskGrantsSpecificPorts) {
  auto image = RawImage(R"(
start:
  mov r1, msg
  mov r2, 5
  mov r0, 0
  out HC_CONSOLE, r0
  hlt
msg:
  .ascii "hello"
)");
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.policy = wasp::MaskOf(wasp::kHcConsole);
  auto outcome = runtime.Invoke(spec);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.console, "hello");
}

TEST(Policy, SnapshotHypercallOnceOnly) {
  auto image = RawImage(R"(
start:
  mov r0, 0
  out HC_SNAPSHOT, r0
  out HC_SNAPSHOT, r0
  hlt
)");
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  auto outcome = runtime.Invoke(spec);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.status.code(), vbase::Code::kPermissionDenied);
}

TEST(Policy, GetDataOnceOnly) {
  auto image = RawImage(R"(
start:
  mov r1, 0x600
  mov r2, 16
  mov r0, 0
  out HC_GET_DATA, r0
  out HC_GET_DATA, r0
  hlt
)");
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.policy = wasp::kPolicyManaged;
  std::vector<uint8_t> input = {1, 2, 3};
  spec.input = &input;
  auto outcome = runtime.Invoke(spec);
  EXPECT_FALSE(outcome.status.ok());
}

// --- Hostile-guest handler validation ------------------------------------------

visa::Image LongModeImage(const std::string& virtine_main_body) {
  auto image = vrt::BuildImage(vrt::Env::kLong64,
                               "virtine_main:\n" + virtine_main_body + "  ret\n");
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  return std::move(*image);
}

TEST(HandlerSafety, HostileConsolePointerIsRejected) {
  // Console write pointing far outside the identity map must not crash or
  // read host memory; the virtine is terminated with an error.  (Long mode:
  // real mode cannot even express addresses past 64 KB.)
  auto image = LongModeImage(R"(
  mov r1, 0xf0000000
  mov r2, 4096
  mov r0, 0
  out HC_CONSOLE, r0
)");
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.policy = wasp::MaskOf(wasp::kHcConsole);
  auto outcome = runtime.Invoke(spec);
  EXPECT_FALSE(outcome.status.ok());
}

TEST(HandlerSafety, HostileReturnDataOutOfBounds) {
  // A mapped virtual address whose physical target is beyond guest memory
  // (identity map covers 1 GB; guest memory is 1 MB).
  auto image = LongModeImage(R"(
  mov r1, 0x20000000
  mov r2, 64
  mov r0, 0
  out HC_RETURN_DATA, r0
)");
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.policy = wasp::kPolicyManaged;
  auto outcome = runtime.Invoke(spec);
  EXPECT_FALSE(outcome.status.ok());
}

TEST(HandlerSafety, UnterminatedPathIsRejected) {
  // open() with a path pointer into a region with no NUL within bounds.
  auto image = RawImage(R"(
start:
  mov r1, 0x600
  mov r2, 0
fill:
  mov r3, 65
  st8 [r1+0], r3
  add r1, 1
  add r2, 1
  cmp r2, 5000
  jl fill
  mov r1, 0x600
  mov r0, 0
  out HC_OPEN, r0
  hlt
)");
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.policy = wasp::kPolicyFileIo;
  auto outcome = runtime.Invoke(spec);
  EXPECT_FALSE(outcome.status.ok());
}

TEST(HandlerSafety, UnknownHypercallPortFails) {
  auto image = RawImage("start:\n  mov r0, 0\n  out 63, r0\n  hlt\n");
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.policy = wasp::kPolicyAllowAll;
  auto outcome = runtime.Invoke(spec);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.status.code(), vbase::Code::kUnimplemented);
}

TEST(HandlerSafety, GuestFaultIsReported) {
  auto image = RawImage("start:\n  brk\n");
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  auto outcome = runtime.Invoke(spec);
  EXPECT_FALSE(outcome.status.ok());
}

TEST(HandlerSafety, RunawayGuestHitsWatchdog) {
  auto image = RawImage("start:\nloop:\n  jmp loop\n");
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.max_insns = 10000;
  auto outcome = runtime.Invoke(spec);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.status.code(), vbase::Code::kAborted);
}

// --- Custom handlers --------------------------------------------------------------

TEST(CustomHandlers, ClientHandlerOverridesCanned) {
  auto image = RawImage(R"(
start:
  mov r1, 21
  mov r0, 0
  out HC_CONSOLE, r0
  mov r8, 0
  stw [r8+0], r0
  hlt
)");
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.word_bytes = 8;
  spec.policy = wasp::MaskOf(wasp::kHcConsole);
  spec.handlers[wasp::kHcConsole] = [](wasp::HypercallFrame& frame) {
    return vbase::Result<int64_t>(static_cast<int64_t>(frame.arg(0) * 2));
  };
  auto outcome = runtime.Invoke(spec);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.result_word, 42u);
}

// --- File I/O hypercalls --------------------------------------------------------

TEST(FileIo, OpenReadWriteCloseAgainstHostEnv) {
  auto image = RawImage(R"(
start:
  mov r1, path
  mov r0, 0
  out HC_OPEN, r0        ; r0 = fd
  mov r1, r0
  mov r2, 0x600
  mov r3, 64
  out HC_READ, r0        ; r0 = bytes read
  mov r9, r0
  mov r2, 0x600
  mov r3, r9
  mov r1, 1
  out HC_WRITE, r0       ; echo the bytes back to the host
  mov r8, 0
  stw [r8+0], r9
  hlt
path:
  .asciz "/greeting"
)");
  wasp::Runtime runtime;
  runtime.env().PutFile("/greeting", std::string("hello file"));
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.word_bytes = 8;
  spec.policy = wasp::kPolicyFileIo;
  auto outcome = runtime.Invoke(spec);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.result_word, 10u);
  EXPECT_EQ(std::string(outcome.fd_writes.begin(), outcome.fd_writes.end()), "hello file");
}

TEST(FileIo, MissingFileReturnsMinusOne) {
  auto image = RawImage(R"(
start:
  mov r1, path
  mov r0, 0
  out HC_OPEN, r0
  mov r8, 0
  stw [r8+0], r0
  hlt
path:
  .asciz "/does-not-exist"
)");
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.word_bytes = 8;
  spec.policy = wasp::kPolicyFileIo;
  auto outcome = runtime.Invoke(spec);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  // The raw image runs in real mode: the handler's -1 lands in a 16-bit
  // register, so the stored result word reads back as 0xffff.
  EXPECT_EQ(outcome.result_word, 0xffffu);
}

// --- Channels ---------------------------------------------------------------------

TEST(Channel, RoundTripAndEof) {
  wasp::ByteChannel channel;
  channel.host().WriteString("ping");
  char buf[8];
  EXPECT_EQ(channel.guest().Read(buf, sizeof(buf)), 4u);
  EXPECT_EQ(std::string(buf, 4), "ping");
  channel.guest().WriteString("pong");
  auto data = channel.host().Drain();
  EXPECT_EQ(std::string(data.begin(), data.end()), "pong");
  channel.host().CloseWrite();
  EXPECT_EQ(channel.guest().Read(buf, sizeof(buf)), 0u);  // EOF
}

TEST(Channel, BlockingReadWakesOnWrite) {
  wasp::ByteChannel channel;
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    channel.host().WriteString("x");
  });
  char b;
  EXPECT_EQ(channel.guest().Read(&b, 1), 1u);
  EXPECT_EQ(b, 'x');
  writer.join();
}

// --- Marshalling properties ---------------------------------------------------------

class MarshalWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(MarshalWidthTest, ArgPageLayoutMatchesWordSize) {
  const int w = GetParam();
  wasp::ArgPacker packer(w);
  packer.AddWord(0x11);
  packer.AddWord(0x22);
  auto page = packer.Finish();
  ASSERT_GE(page.size(), static_cast<size_t>(4 * w));
  // word 0 = ret (0), word 1 = argc (2), word 2.. = args.
  EXPECT_EQ(page[0], 0);
  EXPECT_EQ(page[static_cast<size_t>(w)], 2);
  EXPECT_EQ(page[static_cast<size_t>(2 * w)], 0x11);
  EXPECT_EQ(page[static_cast<size_t>(3 * w)], 0x22);
}

INSTANTIATE_TEST_SUITE_P(Widths, MarshalWidthTest, ::testing::Values(2, 4, 8));

TEST(Marshal, BufferArgsLandInBufferArea) {
  wasp::ArgPacker packer(8);
  const char payload[] = "DATA";
  packer.AddBuffer({payload, 4});
  auto page = packer.Finish();
  uint64_t ptr = 0;
  memcpy(&ptr, page.data() + 16, 8);
  EXPECT_EQ(ptr, wasp::kArgBufOffset);
  EXPECT_EQ(memcmp(page.data() + ptr, "DATA", 4), 0);
}

TEST(Marshal, NegativeReturnValuesSignExtend) {
  auto image = RawImage(R"(
start:
  mov r0, 5
  neg r0
  mov r8, 0
  stw [r8+0], r0
  hlt
)");
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.word_bytes = 2;  // the raw image runs in real mode (16-bit words)
  wasp::VirtineFunc<int64_t()> fn(&runtime, spec);
  auto r = fn.Call();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, -5);
}

// --- Invocation stats ---------------------------------------------------------------

TEST(Stats, PoolAndSnapshotFlagsAreAccurate) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::Add2Source());
  ASSERT_TRUE(image.ok());
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "stats-test";
  spec.use_snapshot = true;
  wasp::VirtineFunc<int64_t(int64_t, int64_t)> add(&runtime, spec);
  ASSERT_TRUE(add.Call(1, 2).ok());
  EXPECT_FALSE(add.last_outcome().stats.from_pool);
  EXPECT_FALSE(add.last_outcome().stats.restored_snapshot);
  ASSERT_TRUE(add.Call(3, 4).ok());
  EXPECT_TRUE(add.last_outcome().stats.from_pool);
  EXPECT_TRUE(add.last_outcome().stats.restored_snapshot);
  // The first run parked its shell snapshot-affine, so the warm start is a
  // delta restore that repairs only the dirtied pages.
  EXPECT_TRUE(add.last_outcome().stats.affine_restore);
  EXPECT_GT(add.last_outcome().stats.restored_bytes, 0u);
  EXPECT_GT(add.last_outcome().stats.total_cycles, 0u);
  EXPECT_GT(add.last_outcome().stats.total_ns, 0u);
}

}  // namespace
