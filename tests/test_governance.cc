// Key-scoped resource governance tests: the pool's affine-shell eviction
// policy (generation-LRU under a resident-byte budget, reclaim via the
// cleaner crew), eager generation retirement (RetireGeneration /
// Runtime::RetireSnapshot), the deterministic governed-replay scheduler
// (GovernTrace: per-key quotas, weighted class dequeue, shed
// classification, fairness), and the wall-clock-paced replay mode.  The
// pool and Vespid tests run real shells/invocations; run under TSan
// (TSAN=1 ./ci.sh) to check the synchronization.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/vjs/vjs.h"
#include "src/vnet/serverless.h"
#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/wasp/pool.h"
#include "src/wasp/runtime.h"
#include "src/wasp/snapshot.h"
#include "src/wasp/vfunc.h"

namespace {

constexpr uint64_t kMb = 1ULL << 20;

// Creates a shell, dirties one page, and parks it affine under `gen`.
void ParkAffineShell(wasp::Pool& pool, uint64_t mem_size, uint64_t gen) {
  vkvm::VmConfig cfg;
  cfg.mem_size = mem_size;
  auto vm = vkvm::Vm::Create(cfg);
  uint8_t b = 1;
  ASSERT_TRUE(vm->memory().Write(0x4000, &b, 1).ok());
  pool.ReleaseAffine(std::move(vm), gen);
}

// --- Affine-shell eviction budget -------------------------------------------

TEST(AffineBudget, ParkOverBudgetEvictsLeastRecentlyUsedGeneration) {
  wasp::PoolOptions options;
  options.mode = wasp::CleanMode::kSync;
  options.shards = 1;
  options.affine_budget_bytes = 2 * kMb;
  wasp::Pool pool(options);

  // Three generations parked in order: the third park exceeds the 2 MB
  // budget, so the oldest generation (10) must be evicted.
  ParkAffineShell(pool, kMb, 10);
  ParkAffineShell(pool, kMb, 20);
  EXPECT_EQ(pool.stats().affine_resident_bytes, 2 * kMb);
  EXPECT_EQ(pool.stats().affine_evictions, 0u);
  ParkAffineShell(pool, kMb, 30);

  const wasp::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.affine_resident_bytes, 2 * kMb);
  EXPECT_EQ(stats.affine_evictions, 1u);
  EXPECT_EQ(pool.AffineShells(10), 0u);  // LRU victim
  EXPECT_EQ(pool.AffineShells(20), 1u);
  EXPECT_EQ(pool.AffineShells(30), 1u);
  // Sync mode cleans the evicted shell inline; it is a free shell now.
  EXPECT_EQ(pool.TotalFreeShells(), 1u);
}

TEST(AffineBudget, RecentlyParkedGenerationSurvivesOlderOne) {
  wasp::PoolOptions options;
  options.mode = wasp::CleanMode::kSync;
  options.shards = 1;
  options.affine_budget_bytes = 2 * kMb;
  wasp::Pool pool(options);

  ParkAffineShell(pool, kMb, 10);
  ParkAffineShell(pool, kMb, 20);
  // Re-park generation 10 (acquire its shell affine and give it back):
  // park-time LRU now ranks 20 as the oldest.
  bool affine_hit = false;
  vkvm::VmConfig cfg;
  cfg.mem_size = kMb;
  auto vm = pool.AcquireAffine(cfg, 10, &affine_hit);
  ASSERT_TRUE(affine_hit);
  pool.ReleaseAffine(std::move(vm), 10);

  ParkAffineShell(pool, kMb, 30);
  EXPECT_EQ(pool.AffineShells(20), 0u);  // now the LRU victim
  EXPECT_EQ(pool.AffineShells(10), 1u);
  EXPECT_EQ(pool.AffineShells(30), 1u);
  EXPECT_EQ(pool.stats().affine_resident_bytes, 2 * kMb);
}

TEST(AffineBudget, EvictedShellsAreReclaimedByTheCleanerCrew) {
  wasp::PoolOptions options;
  options.mode = wasp::CleanMode::kAsync;
  options.shards = 1;
  options.cleaners = 1;
  options.affine_budget_bytes = kMb;
  wasp::Pool pool(options);

  ParkAffineShell(pool, kMb, 11);
  ParkAffineShell(pool, kMb, 22);  // over budget: 11 evicted to the crew

  const wasp::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.affine_evictions, 1u);
  EXPECT_EQ(stats.affine_resident_bytes, kMb);
  EXPECT_EQ(pool.AffineShells(11), 0u);
  EXPECT_EQ(pool.AffineShells(22), 1u);
  pool.DrainCleaner();
  // The crew cleaned it off the critical path; it is a free shell now.
  EXPECT_EQ(pool.TotalFreeShells(), 1u);
  EXPECT_GE(pool.stats().cleans, 1u);
}

// --- Eager generation retirement --------------------------------------------

TEST(Retire, RetireGenerationEnqueuesParkedShellsToTheCleanerCrew) {
  wasp::PoolOptions options;
  options.mode = wasp::CleanMode::kAsync;
  options.shards = 2;
  options.cleaners = 1;
  wasp::Pool pool(options);

  ParkAffineShell(pool, kMb, 7);
  ParkAffineShell(pool, kMb, 7);
  ParkAffineShell(pool, kMb, 9);
  ASSERT_EQ(pool.AffineShells(7), 2u);

  pool.RetireGeneration(7);
  const wasp::PoolStats stats = pool.stats();
  EXPECT_EQ(pool.AffineShells(7), 0u);   // gone immediately, not on demand
  EXPECT_EQ(pool.AffineShells(9), 1u);   // other generations untouched
  EXPECT_EQ(stats.affine_retired, 2u);
  EXPECT_GE(stats.affine_reclaims, 2u);  // retirement counts as reclaim
  EXPECT_EQ(stats.affine_resident_bytes, kMb);

  pool.DrainCleaner();
  EXPECT_EQ(pool.TotalFreeShells(), 2u);
}

TEST(Retire, LateReleaseAfterRetireDivertsToCleaningInsteadOfParking) {
  // An invocation can still hold a shell of generation G when G is retired;
  // its eventual ReleaseAffine must not re-park under the dead generation
  // (nothing would ever reclaim it) — it goes through the cleaning path.
  wasp::PoolOptions options;
  options.mode = wasp::CleanMode::kSync;
  options.shards = 1;
  wasp::Pool pool(options);

  pool.RetireGeneration(77);     // G dies while the shell is "in flight"
  ParkAffineShell(pool, kMb, 77);  // the late release

  const wasp::PoolStats stats = pool.stats();
  EXPECT_EQ(pool.AffineShells(77), 0u);
  EXPECT_EQ(stats.affine_resident_bytes, 0u);
  EXPECT_EQ(stats.affine_parks, 0u);       // it was never parked
  EXPECT_EQ(stats.affine_retired, 1u);     // late retirement reclaim
  EXPECT_EQ(pool.TotalFreeShells(), 1u);   // cleaned into the free lists
}

TEST(Retire, RuntimeRetireSnapshotRecapturesUnderBudgetInALoop) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  ASSERT_TRUE(image.ok());
  wasp::RuntimeOptions options;
  options.affine_budget_bytes = 4 * kMb;
  wasp::Runtime runtime(options);

  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "svc";
  spec.use_snapshot = true;
  wasp::VirtineFunc<int64_t(int64_t)> fib(&runtime, spec);

  constexpr int kRounds = 3;
  uint64_t last_generation = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < 3; ++i) {
      auto r = fib.Call(10);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(*r, 55);
    }
    // First call of the round re-captured (no snapshot existed).
    const wasp::SnapshotRef snap = runtime.snapshots().Find("svc");
    ASSERT_NE(snap, nullptr);
    EXPECT_NE(snap->generation, last_generation) << "round " << round;
    last_generation = snap->generation;
    EXPECT_LE(runtime.pool().stats().affine_resident_bytes,
              options.affine_budget_bytes);

    // Retire: the store forgets the key and the parked shells are reclaimed
    // eagerly — nothing is left stranded under the dead generation.
    runtime.RetireSnapshot("svc");
    EXPECT_EQ(runtime.snapshots().Find("svc"), nullptr);
    EXPECT_EQ(runtime.pool().AffineShells(last_generation), 0u);
  }
  const wasp::PoolStats stats = runtime.pool().stats();
  EXPECT_GE(stats.affine_retired, static_cast<uint64_t>(kRounds));
  EXPECT_EQ(stats.affine_resident_bytes, 0u);  // every round fully reclaimed
}

// --- GovernTrace: the deterministic governed-replay scheduler ----------------

// A synthetic overload mix: a batch tenant flooding at 5x capacity and an
// interactive tenant at 1/8 of capacity.  No real invocations — the
// scheduler itself is under test, deterministically.
vnet::MeasuredTrace SyntheticHotBatchTrace() {
  vnet::MeasuredTrace trace;
  trace.names = {"interactive", "batch"};
  trace.classes = {wasp::KeyClass::kLatency, wasp::KeyClass::kBatch};
  std::vector<std::pair<double, int>> merged;
  for (int i = 0; i < 200; ++i) {  // batch: every 1 ms, 5 ms service
    merged.emplace_back(1000.0 * i, 1);
  }
  for (int i = 0; i < 50; ++i) {  // interactive: every 4 ms, 2 ms service
    merged.emplace_back(500.0 + 4000.0 * i, 0);
  }
  std::sort(merged.begin(), merged.end());
  for (const auto& [at, tenant] : merged) {
    trace.arrivals_us.push_back(at);
    trace.tenant.push_back(tenant);
    trace.service_us.push_back(tenant == 1 ? 5000.0 : 2000.0);
    trace.cold.push_back(false);
  }
  return trace;
}

TEST(GovernTrace, QuotaAndPriorityBoundInteractiveQueueWait) {
  const vnet::MeasuredTrace trace = SyntheticHotBatchTrace();

  vnet::GovernanceOptions ungoverned;
  ungoverned.lanes = 1;
  ungoverned.batch_weight = 0;  // FIFO, no quota: the undifferentiated flood
  const vnet::GovernedReplay flood = vnet::GovernTrace(trace, ungoverned);

  // Quota sized to the interactive tenant's own worst-case backlog (~3: two
  // queued behind a 5 ms batch head-of-line service plus one running), so
  // only the flood sheds.
  vnet::GovernanceOptions governed = ungoverned;
  governed.key_quota = 4;
  governed.batch_weight = 4;
  const vnet::GovernedReplay fair = vnet::GovernTrace(trace, governed);

  // Conservation at every tenant: offered splits exactly.
  for (const auto& replay : {flood, fair}) {
    for (const vnet::TenantOutcome& tenant : replay.tenants) {
      EXPECT_EQ(tenant.offered,
                tenant.completed + tenant.shed_quota + tenant.shed_overload)
          << tenant.name;
    }
  }

  // Ungoverned: everything is admitted (unbounded queue) and the
  // interactive tenant drowns behind the batch backlog.
  EXPECT_EQ(flood.tenants[0].shed_quota + flood.tenants[0].shed_overload, 0u);
  EXPECT_EQ(flood.tenants[1].shed_quota + flood.tenants[1].shed_overload, 0u);
  EXPECT_DOUBLE_EQ(flood.fairness_index, 1.0);  // equally admitted, equally drowned

  // Governed: the batch key sheds at its quota, the interactive tenant
  // completes everything and its p99 queue wait collapses.
  EXPECT_EQ(fair.tenants[0].shed_quota, 0u);
  EXPECT_EQ(fair.tenants[0].completed, fair.tenants[0].offered);
  EXPECT_GT(fair.tenants[1].shed_quota, 0u);
  EXPECT_GT(fair.tenants[1].shed_rate, 0.5);  // the flood is mostly shed
  EXPECT_GT(flood.tenants[0].p99_queue_wait_us,
            10.0 * fair.tenants[0].p99_queue_wait_us);
  EXPECT_GT(fair.fairness_index, 0.0);
  EXPECT_LE(fair.fairness_index, 1.0);

  // Batch is not starved: it still completes work under governance.
  EXPECT_GT(fair.tenants[1].completed, 0u);

  // Deterministic: the same trace governs identically every time.
  const vnet::GovernedReplay again = vnet::GovernTrace(trace, governed);
  EXPECT_EQ(again.tenants[0].p99_queue_wait_us, fair.tenants[0].p99_queue_wait_us);
  EXPECT_EQ(again.tenants[1].shed_quota, fair.tenants[1].shed_quota);
  EXPECT_EQ(again.aggregate_rps, fair.aggregate_rps);
}

TEST(GovernTrace, GlobalBoundShedsAsOverloadNotQuota) {
  const vnet::MeasuredTrace trace = SyntheticHotBatchTrace();
  vnet::GovernanceOptions options;
  options.lanes = 1;
  options.max_queue_depth = 4;
  options.batch_weight = 0;  // bound only: classification must say overload
  const vnet::GovernedReplay replay = vnet::GovernTrace(trace, options);
  uint64_t overload = 0;
  uint64_t quota = 0;
  for (const vnet::TenantOutcome& tenant : replay.tenants) {
    overload += tenant.shed_overload;
    quota += tenant.shed_quota;
  }
  EXPECT_GT(overload, 0u);
  EXPECT_EQ(quota, 0u);
}

// Tiered overrides: three tenants offering the *identical* flood, separated
// only by their resolved quota (premium and free explicit, standard through
// the key_quota fallback).  Admission must be monotone in quota.
TEST(GovernTrace, KeyQuotaOverridesResolveTiersOverOneFlood) {
  vnet::MeasuredTrace trace;
  trace.names = {"premium", "standard", "free"};
  trace.classes = {wasp::KeyClass::kLatency, wasp::KeyClass::kLatency,
                   wasp::KeyClass::kLatency};
  for (int i = 0; i < 120; ++i) {  // round-robin arrivals, far over capacity
    trace.arrivals_us.push_back(1000.0 * i);
    trace.tenant.push_back(i % 3);
    trace.service_us.push_back(5000.0);
    trace.cold.push_back(false);
  }
  vnet::GovernanceOptions tiered;
  tiered.lanes = 1;
  tiered.key_quota = 4;  // the standard tier rides the fallback
  tiered.key_quota_overrides = {{"premium", 8}, {"free", 1}};
  EXPECT_EQ(tiered.QuotaFor("premium"), 8u);
  EXPECT_EQ(tiered.QuotaFor("standard"), 4u);
  EXPECT_EQ(tiered.QuotaFor("free"), 1u);

  const vnet::GovernedReplay replay = vnet::GovernTrace(trace, tiered);
  const vnet::TenantOutcome& premium = replay.tenants[0];
  const vnet::TenantOutcome& standard = replay.tenants[1];
  const vnet::TenantOutcome& free_tier = replay.tenants[2];
  for (const vnet::TenantOutcome& tenant : replay.tenants) {
    EXPECT_EQ(tenant.offered, tenant.completed + tenant.shed_quota + tenant.shed_overload)
        << tenant.name;
    EXPECT_GT(tenant.shed_quota, 0u) << tenant.name << ": its quota never bound";
  }
  EXPECT_GT(premium.completed, standard.completed);
  EXPECT_GT(standard.completed, free_tier.completed);
  EXPECT_LT(premium.shed_rate, standard.shed_rate);
  EXPECT_LT(standard.shed_rate, free_tier.shed_rate);
  // Differentiated admission shows up in the fairness index (< 1 by design).
  EXPECT_LT(replay.fairness_index, 1.0);
  EXPECT_GT(replay.fairness_index, 0.0);
}

// --- Vespid multi-tenant measurement (real invocations) ----------------------

TEST(MultiTenant, MeasuredTraceCoversEveryArrivalOfEveryTenant) {
  wasp::Runtime runtime;
  vnet::Vespid vespid(&runtime);
  ASSERT_TRUE(vespid.Register("b64", vjs::Base64ScriptSource()).ok());
  ASSERT_TRUE(vespid
                  .Register("echo",
                            "var i = 0; while (i < input_len()) { out(input(i)); "
                            "i = i + 1; }")
                  .ok());

  std::vector<vnet::TenantSpec> tenants(2);
  tenants[0].name = "b64";
  tenants[0].klass = wasp::KeyClass::kLatency;
  tenants[0].phases = {{40, 0.2}};
  tenants[0].payload = std::vector<uint8_t>(64, 7);
  tenants[1].name = "echo";
  tenants[1].klass = wasp::KeyClass::kBatch;
  tenants[1].phases = {{80, 0.2}};
  tenants[1].payload = std::vector<uint8_t>(32, 9);

  auto trace = vespid.MeasureMultiTenant(tenants, /*concurrency=*/4, /*seed=*/42);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  const size_t n = trace->arrivals_us.size();
  ASSERT_EQ(n, 8u + 16u);
  ASSERT_EQ(trace->service_us.size(), n);
  ASSERT_EQ(trace->cold.size(), n);
  uint64_t per_tenant[2] = {0, 0};
  bool cold_seen[2] = {false, false};
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GT(trace->service_us[i], 0.0);
    if (i > 0) {
      EXPECT_GE(trace->arrivals_us[i], trace->arrivals_us[i - 1]);
    }
    ++per_tenant[trace->tenant[i]];
    cold_seen[trace->tenant[i]] = cold_seen[trace->tenant[i]] || trace->cold[i];
  }
  EXPECT_EQ(per_tenant[0], 8u);
  EXPECT_EQ(per_tenant[1], 16u);
  // Each tenant's first invocation booted from its image (its own key).
  EXPECT_TRUE(cold_seen[0]);
  EXPECT_TRUE(cold_seen[1]);

  // The measured trace feeds the governed scheduler end to end.
  vnet::GovernanceOptions options;
  options.lanes = 2;
  options.key_quota = 2;
  const vnet::GovernedReplay replay = vnet::GovernTrace(*trace, options);
  uint64_t offered = 0;
  for (const vnet::TenantOutcome& tenant : replay.tenants) {
    offered += tenant.offered;
    EXPECT_EQ(tenant.offered,
              tenant.completed + tenant.shed_quota + tenant.shed_overload);
  }
  EXPECT_EQ(offered, n);
}

// --- Wall-clock-paced replay (soak mode) -------------------------------------

TEST(PacedReplay, WallClockPacingStretchesTheReplayToTheTraceDuration) {
  wasp::Runtime runtime;
  vnet::Vespid vespid(&runtime);
  ASSERT_TRUE(vespid.Register("b64", vjs::Base64ScriptSource()).ok());
  const std::vector<uint8_t> payload(32, 3);
  const std::vector<vnet::LoadPhase> phases = {{100, 0.05}};  // 5 arrivals over 50 ms

  vnet::ReplayOptions options;
  options.concurrency = 2;
  options.pace_wall_clock = true;
  auto replay = vespid.ReplayBurstyLoad("b64", phases, payload, options);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->sim.total_requests, 5u);
  // The last arrival sits at ~40 ms into the trace; pacing must have held
  // dispatch back at least that long (default mode submits instantly).
  EXPECT_GE(replay->wall_ns, 30ull * 1000 * 1000);
}

}  // namespace
