// vrt tests: execution environments, boot stubs, the CRT contract, the
// assembly prelude constants (which must mirror wasp/abi.h), vlibc edge
// cases, and real-mode constraints.
#include <gtest/gtest.h>

#include "src/vcc/vcc.h"
#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/vrt/vlibc.h"
#include "src/wasp/abi.h"
#include "src/wasp/runtime.h"
#include "src/wasp/vfunc.h"

namespace {

TEST(Env, WordSizesMatchModes) {
  EXPECT_EQ(vrt::WordBytes(vrt::Env::kReal16), 2);
  EXPECT_EQ(vrt::WordBytes(vrt::Env::kProt32), 4);
  EXPECT_EQ(vrt::WordBytes(vrt::Env::kLong64), 8);
  EXPECT_EQ(vrt::FinalMode(vrt::Env::kReal16), visa::Mode::kReal16);
  EXPECT_EQ(vrt::FinalMode(vrt::Env::kProt32), visa::Mode::kProt32);
  EXPECT_EQ(vrt::FinalMode(vrt::Env::kLong64), visa::Mode::kLong64);
}

TEST(Env, PreludeConstantsMirrorAbi) {
  // The .equ constants baked into guest images must match the hypervisor's
  // ABI header, or hypercalls would hit the wrong handlers.
  const std::string prelude = vrt::AsmPrelude(vrt::Env::kLong64);
  auto expect_equ = [&](const std::string& name, uint64_t value) {
    const std::string line = ".equ " + name + ", " + std::to_string(value);
    EXPECT_NE(prelude.find(line), std::string::npos) << "missing " << line;
  };
  expect_equ("HC_EXIT", wasp::kHcExit);
  expect_equ("HC_CONSOLE", wasp::kHcConsole);
  expect_equ("HC_SNAPSHOT", wasp::kHcSnapshot);
  expect_equ("HC_GET_DATA", wasp::kHcGetData);
  expect_equ("HC_RETURN_DATA", wasp::kHcReturnData);
  expect_equ("HC_OPEN", wasp::kHcOpen);
  expect_equ("HC_READ", wasp::kHcRead);
  expect_equ("HC_WRITE", wasp::kHcWrite);
  expect_equ("HC_CLOSE", wasp::kHcClose);
  expect_equ("HC_STAT", wasp::kHcStat);
  expect_equ("HC_SEND", wasp::kHcSend);
  expect_equ("HC_RECV", wasp::kHcRecv);
  expect_equ("BOOTINFO", wasp::kBootInfoAddr);
  expect_equ("WORD", 8);
}

TEST(Env, VlibcPortsMatchAbi) {
  // vlibc hard-codes hypercall ports as literals; spot-check they agree
  // with the ABI by exercising one wrapper per family end to end.
  const char* probe = R"(
    int main() {
      char buf[8];
      puts("c");                       // console (port 2)
      if (get_data(buf, 8) != 3) { return 1; }   // get_data (port 4)
      return_data(buf, 3);             // return_data (port 5)
      if (stat_size("/p") != 2) { return 2; }    // stat (port 20)
      int fd;
      fd = open("/p");                 // open (port 16)
      if (fd < 3) { return 3; }
      if (read(fd, buf, 8) != 2) { return 4; }   // read (port 17)
      write(1, buf, 2);                // write (port 18)
      if (close(fd) != 0) { return 5; }          // close (port 19)
      return 0;
    })";
  auto image = vcc::CompileProgram(vrt::VlibcSource() + probe, "main", vrt::Env::kLong64);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  wasp::Runtime runtime;
  runtime.env().PutFile("/p", std::string("xy"));
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.policy = wasp::kPolicyAllowAll;
  std::vector<uint8_t> input = {7, 8, 9};
  spec.input = &input;
  auto outcome = runtime.Invoke(spec);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.result_word, 0u) << "vlibc probe failed at step " << outcome.result_word;
  EXPECT_EQ(outcome.console, "c");
  EXPECT_EQ(outcome.output.size(), 3u);
  EXPECT_EQ(outcome.fd_writes.size(), 2u);
}

TEST(Env, ImagesStayVirtineSized) {
  // The paper quotes ~16 KB virtine images; even with all of vlibc linked
  // in, a small program stays in that ballpark thanks to the call-graph cut.
  auto fib = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  ASSERT_TRUE(fib.ok());
  EXPECT_LT(fib->size(), 4u * 1024);
  auto full = vcc::CompileProgram(
      vrt::VlibcSource() + "int main() { puts(\"x\"); return 0; }", "main",
      vrt::Env::kLong64);
  ASSERT_TRUE(full.ok());
  EXPECT_LT(full->size(), 16u * 1024);
}

TEST(Env, Real16ImagesMustFitLowMemory) {
  // The real-mode environment is limited to 16-bit addressing; image bytes
  // land below 64 KB (load addr 0x8000 + size).
  auto image = vrt::BuildImage(vrt::Env::kReal16, vrt::FibSource());
  ASSERT_TRUE(image.ok());
  EXPECT_LT(image->load_addr + image->size(), 0x10000u);
}

TEST(Env, BootStubsShareOneCrt) {
  // All three environments run the same argument-unmarshalling CRT; a
  // 3-argument function must work in each mode (within its value range).
  const char* sum3 = R"(
virtine_main:
  push fp
  mov fp, sp
  ldw r0, [fp+WORD+WORD]
  ldw r1, [fp+WORD+WORD+WORD]
  add r0, r1
  ldw r1, [fp+WORD+WORD+WORD+WORD]
  add r0, r1
  pop fp
  ret
)";
  for (vrt::Env env : {vrt::Env::kReal16, vrt::Env::kProt32, vrt::Env::kLong64}) {
    auto image = vrt::BuildImage(env, sum3);
    ASSERT_TRUE(image.ok()) << vrt::EnvName(env);
    wasp::Runtime runtime;
    wasp::VirtineSpec spec;
    spec.image = &image.value();
    spec.word_bytes = vrt::WordBytes(env);
    wasp::VirtineFunc<int64_t(int64_t, int64_t, int64_t)> sum(&runtime, spec);
    auto r = sum.Call(100, 20, 3);
    ASSERT_TRUE(r.ok()) << vrt::EnvName(env) << ": " << r.status().ToString();
    EXPECT_EQ(*r, 123) << vrt::EnvName(env);
  }
}

TEST(Env, CrtSkipsSnapshotWhenFlagClear) {
  // With use_snapshot=false the CRT must not issue the snapshot hypercall,
  // so the whole run takes no IO exits at all (hlt only).
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::Add2Source());
  ASSERT_TRUE(image.ok());
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  wasp::VirtineFunc<int64_t(int64_t, int64_t)> add(&runtime, spec);
  ASSERT_TRUE(add.Call(1, 1).ok());
  EXPECT_EQ(add.last_outcome().stats.io_exits, 0u);
}

TEST(Vlibc, ItoaAtoiRoundTripProperty) {
  // Round-trip a spread of values through guest itoa/atoi.
  const char* src = R"(
    int main(int v) {
      char buf[24];
      itoa(buf, v);
      return atoi(buf);
    })";
  auto image = vcc::CompileProgram(vrt::VlibcSource() + src, "main", vrt::Env::kLong64);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "itoa-roundtrip";
  spec.use_snapshot = true;
  wasp::VirtineFunc<int64_t(int64_t)> roundtrip(&runtime, spec);
  for (int64_t v : {0LL, 1LL, -1LL, 42LL, -987654LL, 2147483647LL, 1000000007LL}) {
    auto r = roundtrip.Call(v);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(*r, v);
  }
}

TEST(Vlibc, MemRoutinesEdgeCases) {
  const char* src = R"(
    int main() {
      char a[16];
      char b[16];
      memset(a, 0xab, 16);
      memcpy(b, a, 0);               // zero-length copy is a no-op
      memset(b, 1, 16);
      if (memcmp(a, b, 0) != 0) { return 1; }   // zero-length compare
      if (memcmp(a, b, 16) == 0) { return 2; }
      memcpy(b, a, 16);
      if (memcmp(a, b, 16) != 0) { return 3; }
      if (strlen("") != 0) { return 4; }
      if (strcmp("", "") != 0) { return 5; }
      if (strcmp("a", "b") >= 0) { return 6; }
      if (strcmp("b", "a") <= 0) { return 7; }
      return 0;
    })";
  auto image = vcc::CompileProgram(vrt::VlibcSource() + src, "main", vrt::Env::kLong64);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  auto outcome = runtime.Invoke(spec);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.result_word, 0u) << "failed check " << outcome.result_word;
}

TEST(Samples, EchoGuestTerminatesOnEof) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::EchoSource());
  ASSERT_TRUE(image.ok());
  wasp::Runtime runtime;
  wasp::ByteChannel channel;
  channel.host().WriteString("abc");
  channel.host().CloseWrite();  // second recv returns EOF
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.policy = wasp::kPolicyStream;
  spec.channel = &channel.guest();
  auto outcome = runtime.Invoke(spec);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  auto echoed = channel.host().Drain();
  EXPECT_EQ(std::string(echoed.begin(), echoed.end()), "abc");
}

TEST(Env, RawImageStartsAtEntry) {
  auto image = vrt::BuildRawImage("start:\n  mov r0, 9\n  mov r8, 0\n  stw [r8+0], r0\n  hlt\n");
  ASSERT_TRUE(image.ok());
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.word_bytes = 2;
  auto outcome = runtime.Invoke(spec);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.result_word, 9u);
}

}  // namespace
