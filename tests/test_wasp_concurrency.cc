// Concurrency regression tests for the scale-out invocation engine: the
// sharded pool under multi-threaded Acquire/Release, the cleaner crew, the
// executor batch/future paths, and snapshot take/restore races.  The suite
// asserts *conservation* (no shell lost, stats add up) and correctness of
// results under contention; run it under TSan (TSAN=1 ./ci.sh) to check the
// synchronization itself.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/wasp/executor.h"
#include "src/wasp/pool.h"
#include "src/wasp/runtime.h"
#include "src/wasp/vfunc.h"

namespace {

constexpr int kThreads = 8;
constexpr int kItersPerThread = 16;

void HammerPool(wasp::Pool& pool) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      vkvm::VmConfig cfg;
      // Two mem sizes so free lists are keyed, not monolithic.
      cfg.mem_size = (t % 2 == 0) ? (1ULL << 20) : (2ULL << 20);
      for (int i = 0; i < kItersPerThread; ++i) {
        auto vm = pool.Acquire(cfg);
        ASSERT_NE(vm, nullptr);
        uint8_t b = static_cast<uint8_t>(t);
        ASSERT_TRUE(vm->memory().Write(0x9000, &b, 1).ok());
        pool.Release(std::move(vm));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
}

TEST(Concurrency, PoolHammerSyncConservesShells) {
  wasp::Pool pool(wasp::PoolOptions{wasp::CleanMode::kSync, 4, 1});
  HammerPool(pool);
  const wasp::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.acquires, static_cast<uint64_t>(kThreads * kItersPerThread));
  EXPECT_EQ(stats.releases, stats.acquires);
  EXPECT_EQ(stats.acquires, stats.pool_hits + stats.fresh_creates);
  EXPECT_EQ(stats.cleans, stats.releases);
  // Every fresh-created shell must end up parked in some free list.
  EXPECT_EQ(pool.TotalFreeShells(), stats.fresh_creates);
}

TEST(Concurrency, PoolHammerAsyncCleanerCrewConservesShells) {
  wasp::Pool pool(wasp::PoolOptions{wasp::CleanMode::kAsync, 4, 3});
  HammerPool(pool);
  pool.DrainCleaner();
  const wasp::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.acquires, static_cast<uint64_t>(kThreads * kItersPerThread));
  EXPECT_EQ(stats.releases, stats.acquires);
  EXPECT_EQ(stats.acquires, stats.pool_hits + stats.fresh_creates);
  EXPECT_EQ(stats.cleans, stats.releases);
  EXPECT_EQ(pool.TotalFreeShells(), stats.fresh_creates);
}

TEST(Concurrency, CleanerCrewDrainsBeforeStatsRead) {
  wasp::Pool pool(wasp::PoolOptions{wasp::CleanMode::kAsync, 2, 2});
  vkvm::VmConfig cfg;
  for (int i = 0; i < 6; ++i) {
    auto vm = pool.Acquire(cfg);
    uint8_t b = 1;
    ASSERT_TRUE(vm->memory().Write(0x9000, &b, 1).ok());
    pool.Release(std::move(vm));
  }
  pool.DrainCleaner();
  EXPECT_EQ(pool.stats().cleans, 6u);
  EXPECT_EQ(pool.TotalFreeShells(), pool.stats().fresh_creates);
}

TEST(Concurrency, DestructionWithPendingDirtyShellsDoesNotHang) {
  // No DrainCleaner: the destructor itself must shut the crew down with
  // dirty shells still queued — no deadlock, no leak (ASan/TSan cover the
  // memory and ordering; completion of this test body is the assertion).
  wasp::Pool pool(wasp::PoolOptions{wasp::CleanMode::kAsync, 2, 2});
  vkvm::VmConfig cfg;
  for (int i = 0; i < 6; ++i) {
    auto vm = pool.Acquire(cfg);
    uint8_t b = 1;
    ASSERT_TRUE(vm->memory().Write(0x9000, &b, 1).ok());
    pool.Release(std::move(vm));
  }
}

TEST(Concurrency, PrewarmSpreadsShellsAcrossShards) {
  wasp::Pool pool(wasp::PoolOptions{wasp::CleanMode::kSync, 4, 1});
  vkvm::VmConfig cfg;
  pool.Prewarm(cfg, 8);
  ASSERT_EQ(pool.shard_count(), 4u);
  for (size_t s = 0; s < pool.shard_count(); ++s) {
    EXPECT_EQ(pool.FreeShellsInShard(s, cfg.mem_size), 2u) << "shard " << s;
  }
  EXPECT_EQ(pool.FreeShells(cfg.mem_size), 8u);
}

TEST(Concurrency, AcquireStealsFromSiblingShards) {
  wasp::Pool pool(wasp::PoolOptions{wasp::CleanMode::kSync, 4, 1});
  vkvm::VmConfig cfg;
  pool.Prewarm(cfg, 4);  // one shell per shard
  // A single thread acquires all four: three must be stolen cross-shard.
  std::vector<std::unique_ptr<vkvm::Vm>> held;
  for (int i = 0; i < 4; ++i) {
    bool from_pool = false;
    held.push_back(pool.Acquire(cfg, &from_pool));
    EXPECT_TRUE(from_pool) << "acquire " << i << " missed the warm pool";
  }
  EXPECT_EQ(pool.stats().fresh_creates, 0u);
  for (auto& vm : held) {
    pool.Release(std::move(vm));
  }
}

TEST(Concurrency, ConcurrentInvokeComputesCorrectResults) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::Add2Source());
  ASSERT_TRUE(image.ok());
  wasp::RuntimeOptions options;
  options.clean_mode = wasp::CleanMode::kAsync;
  wasp::Runtime runtime(options);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&runtime, &image, &failures, t] {
      wasp::VirtineSpec spec;
      spec.image = &image.value();
      wasp::VirtineFunc<int64_t(int64_t, int64_t)> add(&runtime, spec);
      for (int i = 0; i < kItersPerThread; ++i) {
        auto r = add.Call(t, i);
        if (!r.ok() || *r != t + i) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  runtime.pool().DrainCleaner();
  const wasp::PoolStats stats = runtime.pool().stats();
  EXPECT_EQ(stats.acquires, static_cast<uint64_t>(kThreads * kItersPerThread));
  EXPECT_EQ(stats.acquires, stats.pool_hits + stats.fresh_creates);
  EXPECT_EQ(stats.releases, stats.acquires);
  EXPECT_EQ(runtime.pool().TotalFreeShells(), stats.fresh_creates);
}

// Keyed Acquire racing Release (and ReleaseAffine) on the same snapshot
// generation: shells must be conserved, and an affine hit must always carry
// the parked memory while non-affine paths only ever see cleaned shells.
TEST(Concurrency, KeyedAcquireReleaseRaceConservesShells) {
  wasp::Pool pool(wasp::PoolOptions{wasp::CleanMode::kSync, 4, 1});
  static constexpr uint64_t kGenerations[] = {101, 202};
  std::atomic<int> leaks{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &leaks, t] {
      vkvm::VmConfig cfg;
      const uint64_t generation = kGenerations[t % 2];
      for (int i = 0; i < kItersPerThread; ++i) {
        bool affine = false;
        auto vm = pool.AcquireAffine(cfg, generation, &affine);
        ASSERT_NE(vm, nullptr);
        const uint8_t tag = static_cast<uint8_t>(0x10 + t % 2);
        if (affine) {
          // An affine shell must hold its generation's tag, never the
          // sibling generation's.
          if (vm->memory().data()[0x9000] != tag) {
            leaks.fetch_add(1);
          }
        } else if (vm->memory().data()[0x9000] != 0) {
          leaks.fetch_add(1);  // a clean shell leaked prior memory
        }
        ASSERT_TRUE(vm->memory().Write(0x9000, &tag, 1).ok());
        if (i % 4 == 3) {
          pool.Release(std::move(vm));  // occasionally retire through cleaning
        } else {
          vm->memory().BeginEpoch();
          pool.ReleaseAffine(std::move(vm), generation);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(leaks.load(), 0);
  const wasp::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.acquires, static_cast<uint64_t>(kThreads * kItersPerThread));
  EXPECT_EQ(stats.releases, stats.acquires);
  EXPECT_EQ(stats.acquires, stats.pool_hits + stats.fresh_creates);
  // Conservation: every shell ever created is parked free or affine.
  EXPECT_EQ(pool.TotalFreeShells() + pool.TotalAffineShells(), stats.fresh_creates);
  EXPECT_GT(stats.affine_parks, 0u);
}

// Runtime-level: concurrent snapshot-backed invocations on one key, with the
// affine fast path engaged, must all compute the right answer.
TEST(Concurrency, AffineRestoreRaceComputesCorrectResults) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  ASSERT_TRUE(image.ok());
  wasp::RuntimeOptions options;
  options.clean_mode = wasp::CleanMode::kAsync;
  wasp::Runtime runtime(options);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&runtime, &image, &failures] {
      wasp::VirtineSpec spec;
      spec.image = &image.value();
      spec.key = "affine-race";
      spec.use_snapshot = true;
      wasp::VirtineFunc<int64_t(int64_t)> fib(&runtime, spec);
      for (int i = 0; i < 8; ++i) {
        auto r = fib.Call(10);
        if (!r.ok() || *r != 55) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // Steady state guarantees parks (every successful warm run re-parks its
  // shell); affine hits depend on scheduling but the counters must agree.
  const wasp::PoolStats stats = runtime.pool().stats();
  EXPECT_GT(stats.affine_parks, 0u);
  EXPECT_GE(stats.affine_parks, stats.affine_hits);
}

TEST(Concurrency, SnapshotTakeRestoreRaceIsConsistent) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  ASSERT_TRUE(image.ok());
  wasp::RuntimeOptions options;
  options.clean_mode = wasp::CleanMode::kAsync;
  wasp::Runtime runtime(options);
  const int64_t expected = 55;  // fib(10)
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  // All threads race the first-run snapshot Put on the same key, then keep
  // restoring from it; every run must return fib(10) regardless of which
  // thread's snapshot won.
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&runtime, &image, &failures] {
      wasp::VirtineSpec spec;
      spec.image = &image.value();
      spec.key = "race-key";
      spec.use_snapshot = true;
      wasp::VirtineFunc<int64_t(int64_t)> fib(&runtime, spec);
      for (int i = 0; i < 6; ++i) {
        auto r = fib.Call(10);
        if (!r.ok() || *r != expected) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(runtime.snapshots().size(), 1u);
}

TEST(Concurrency, ExecutorBatchRunsAllSpecs) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::Add2Source());
  ASSERT_TRUE(image.ok());
  wasp::RuntimeOptions options;
  options.clean_mode = wasp::CleanMode::kAsync;
  wasp::Runtime runtime(options);
  std::vector<wasp::VirtineSpec> specs;
  for (int i = 0; i < 32; ++i) {
    wasp::VirtineSpec spec;
    spec.image = &image.value();
    spec.word_bytes = 8;
    wasp::ArgPacker packer(spec.word_bytes);
    packer.AddWord(static_cast<uint64_t>(i));
    packer.AddWord(100);
    spec.args_page = packer.Finish();
    specs.push_back(std::move(spec));
  }
  wasp::Executor::BatchStats stats;
  auto outcomes = wasp::Executor::Run(&runtime, specs, kThreads, &stats);
  ASSERT_EQ(outcomes.size(), specs.size());
  uint64_t total = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].status.ok()) << outcomes[i].status.ToString();
    EXPECT_EQ(outcomes[i].result_word, i + 100) << "outcome order scrambled";
    total += outcomes[i].stats.total_cycles;
  }
  // Lane accounting is conservative: lane busy cycles sum to the batch total.
  ASSERT_EQ(stats.worker_cycles.size(), static_cast<size_t>(kThreads));
  uint64_t lane_sum = 0;
  for (uint64_t lane : stats.worker_cycles) {
    lane_sum += lane;
  }
  EXPECT_EQ(lane_sum, total);
  EXPECT_GE(stats.MakespanCycles(), total / kThreads);
  EXPECT_LT(stats.MakespanCycles(), total);
}

// --- Bounded admission (ExecutorOptions) --------------------------------------

// A task that parks its worker until the gate opens, so tests can fill the
// queue behind it deterministically.
wasp::Executor::Task GateTask(std::shared_future<void> gate) {
  return [gate] {
    gate.wait();
    return wasp::RunOutcome{};
  };
}

// Waits until the (single) worker has dequeued the gate task, i.e. the
// queue is observably empty while the worker is parked.
void AwaitWorkerParked(wasp::Executor& executor) {
  for (int i = 0; i < 5000 && executor.queue_depth() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(executor.queue_depth(), 0u);
}

TEST(Concurrency, ExecutorQueueFillsToDepthThenTrySubmitRejects) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::Add2Source());
  ASSERT_TRUE(image.ok());
  wasp::Runtime runtime;
  wasp::Executor executor(&runtime, wasp::ExecutorOptions{1, 2, /*block_when_full=*/false});
  std::promise<void> gate;
  auto gated = executor.SubmitTask(GateTask(gate.get_future().share()));
  AwaitWorkerParked(executor);

  // Two quick jobs fill the queue to max_queue_depth.
  std::future<wasp::RunOutcome> queued[2];
  for (auto& future : queued) {
    ASSERT_TRUE(executor.TrySubmitTask([] { return wasp::RunOutcome{}; }, &future));
  }
  EXPECT_EQ(executor.queue_depth(), 2u);

  // Both the task and the VirtineSpec entry points must now reject.
  std::future<wasp::RunOutcome> rejected;
  EXPECT_FALSE(executor.TrySubmitTask([] { return wasp::RunOutcome{}; }, &rejected));
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  EXPECT_FALSE(executor.TrySubmit(spec, &rejected));
  const wasp::ExecutorStats mid = executor.stats();
  EXPECT_EQ(mid.rejected, 2u);
  EXPECT_EQ(mid.submitted, 3u);  // gate + two queued; rejects never enqueue
  EXPECT_EQ(mid.peak_queue_depth, 2u);

  gate.set_value();
  gated.get();
  for (auto& future : queued) {
    future.get();
  }
  // Space freed: the same TrySubmit now succeeds and runs a real invocation.
  std::future<wasp::RunOutcome> accepted;
  wasp::ArgPacker packer(8);
  packer.AddWord(20);
  packer.AddWord(22);
  spec.args_page = packer.Finish();
  ASSERT_TRUE(executor.TrySubmit(spec, &accepted));
  wasp::RunOutcome outcome = accepted.get();
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.result_word, 42u);
}

TEST(Concurrency, ExecutorBlockingModeNeverRejects) {
  wasp::Runtime runtime;
  wasp::Executor executor(&runtime, wasp::ExecutorOptions{1, 1, /*block_when_full=*/true});
  std::promise<void> gate;
  auto gated = executor.SubmitTask(GateTask(gate.get_future().share()));
  AwaitWorkerParked(executor);

  // Fill the queue, then hammer TrySubmitTask from several threads: every
  // submission must block for space and eventually be accepted.
  std::future<wasp::RunOutcome> queued;
  ASSERT_TRUE(executor.TrySubmitTask([] { return wasp::RunOutcome{}; }, &queued));
  constexpr int kSubmitters = 4;
  std::atomic<int> accepted{0};
  std::vector<std::thread> threads;
  threads.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&executor, &accepted] {
      std::future<wasp::RunOutcome> future;
      if (executor.TrySubmitTask([] { return wasp::RunOutcome{}; }, &future)) {
        accepted.fetch_add(1);
        future.get();
      }
    });
  }
  // The submitters are blocked on a full queue until the gate opens.
  gate.set_value();
  gated.get();
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(accepted.load(), kSubmitters);
  const wasp::ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kSubmitters) + 2);
}

TEST(Concurrency, ExecutorDestructionDrainsAllAcceptedFutures) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::Add2Source());
  ASSERT_TRUE(image.ok());
  wasp::Runtime runtime;
  constexpr int kJobs = 12;
  std::vector<std::future<wasp::RunOutcome>> futures;
  std::vector<wasp::VirtineSpec> specs(kJobs);
  {
    wasp::Executor executor(&runtime, wasp::ExecutorOptions{2, 0, true});
    for (int i = 0; i < kJobs; ++i) {
      wasp::VirtineSpec& spec = specs[static_cast<size_t>(i)];
      spec.image = &image.value();
      wasp::ArgPacker packer(8);
      packer.AddWord(static_cast<uint64_t>(i));
      packer.AddWord(1000);
      spec.args_page = packer.Finish();
      futures.push_back(executor.Submit(spec));
    }
    // Executor destroyed with most jobs still queued.
  }
  for (int i = 0; i < kJobs; ++i) {
    auto& future = futures[static_cast<size_t>(i)];
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "job " << i << " not drained";
    wasp::RunOutcome outcome = future.get();
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_EQ(outcome.result_word, static_cast<uint64_t>(i) + 1000);
  }
}

TEST(Concurrency, ExecutorRejectionCountersMatchObservedRejections) {
  wasp::Runtime runtime;
  wasp::Executor executor(&runtime, wasp::ExecutorOptions{1, 1, /*block_when_full=*/false});
  std::promise<void> gate;
  auto gated = executor.SubmitTask(GateTask(gate.get_future().share()));
  AwaitWorkerParked(executor);

  uint64_t observed_accepts = 0;
  uint64_t observed_rejects = 0;
  std::vector<std::future<wasp::RunOutcome>> futures;
  for (int i = 0; i < 20; ++i) {
    std::future<wasp::RunOutcome> future;
    if (executor.TrySubmitTask([] { return wasp::RunOutcome{}; }, &future)) {
      ++observed_accepts;
      futures.push_back(std::move(future));
    } else {
      ++observed_rejects;
    }
  }
  EXPECT_EQ(observed_accepts, 1u);  // the queue holds exactly one behind the gate
  gate.set_value();
  gated.get();
  for (auto& future : futures) {
    future.get();
  }
  const wasp::ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.rejected, observed_rejects);
  EXPECT_EQ(stats.submitted, observed_accepts + 1);  // + the gate task
  // completed trails set_value by one increment; poll briefly.
  for (int i = 0; i < 5000 && executor.stats().completed < observed_accepts + 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(executor.stats().completed, observed_accepts + 1);
}

TEST(Concurrency, InvokeAsyncResolvesFutures) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::Add2Source());
  ASSERT_TRUE(image.ok());
  wasp::RuntimeOptions options;
  options.clean_mode = wasp::CleanMode::kAsync;
  options.async_workers = 4;
  wasp::Runtime runtime(options);
  std::vector<std::future<wasp::RunOutcome>> futures;
  std::vector<wasp::VirtineSpec> specs(16);
  for (int i = 0; i < 16; ++i) {
    wasp::VirtineSpec& spec = specs[static_cast<size_t>(i)];
    spec.image = &image.value();
    spec.word_bytes = 8;
    wasp::ArgPacker packer(spec.word_bytes);
    packer.AddWord(static_cast<uint64_t>(i));
    packer.AddWord(7);
    spec.args_page = packer.Finish();
    futures.push_back(runtime.InvokeAsync(spec));
  }
  for (int i = 0; i < 16; ++i) {
    wasp::RunOutcome outcome = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_EQ(outcome.result_word, static_cast<uint64_t>(i + 7));
  }
}

}  // namespace
